"""Ablation A4 — 1-D vs 2-D Lorenzo prediction (extension, paper future work).

The paper's future work proposes tailoring the homomorphic compression to
application data characteristics.  For 2-D fields the tailoring is the 2-D
Lorenzo predictor (`FZLight2D`), which stays linear — and therefore fully
homomorphic — while exploiting the second dimension's smoothness.

Expected shape: on the 2-D CESM-ATM dataset and on stacked-image scenes,
the 2-D predictor's ratio beats 1-D clearly; homomorphic sums remain
bit-exact against the integer oracle.
"""

from __future__ import annotations

import numpy as np

from repro.apps.image_stacking import make_scene
from repro.bench.tables import format_table
from repro.compression import FZLight, FZLight2D, resolve_error_bound
from repro.compression.common import dequantize, quantize
from repro.datasets import generate_field
from repro.homomorphic import HZDynamic

from conftest import BENCH_SCALE, BENCH_SEED

REL = 1e-3


def measure():
    fields = {
        "cesm (climate 2-D)": generate_field(
            "cesm", 0, scale=BENCH_SCALE, seed=BENCH_SEED
        ),
        "deep-sky scene": make_scene((512, 512), seed=BENCH_SEED),
    }
    rows, gains = [], {}
    for name, data in fields.items():
        eb = resolve_error_bound(data, rel_eb=REL)
        r1d = FZLight().compress(data.ravel(), abs_eb=eb).compression_ratio
        r2d = FZLight2D().compress(data, abs_eb=eb).compression_ratio
        gains[name] = r2d / r1d
        rows.append([name, r1d, r2d, r2d / r1d])
    return rows, gains


def test_ablation_2d_ratio(benchmark):
    rows, gains = benchmark.pedantic(measure, rounds=1, iterations=1)
    print()
    print(
        format_table(
            ["field", "1-D ratio", "2-D ratio", "2-D gain"],
            rows,
            title="Ablation A4: 2-D Lorenzo predictor vs 1-D (REL 1e-3)",
        )
    )
    for name, gain in gains.items():
        assert gain > 1.1, name


def test_2d_homomorphic_sum_is_exact():
    """The extension must not cost any homomorphic exactness."""
    a = generate_field("cesm", 0, scale=BENCH_SCALE, seed=BENCH_SEED)
    b = generate_field("cesm", 1, scale=BENCH_SCALE, seed=BENCH_SEED)
    eb = resolve_error_bound(a, rel_eb=REL)
    comp = FZLight2D()
    total = HZDynamic().add(comp.compress(a, abs_eb=eb), comp.compress(b, abs_eb=eb))
    oracle = dequantize(
        quantize(a.ravel(), eb).astype(np.int64)
        + quantize(b.ravel(), eb).astype(np.int64),
        eb,
    ).reshape(a.shape)
    np.testing.assert_array_equal(comp.decompress(total), oracle)
