"""Aggregation-service throughput gate: batched vs per-request serving.

``k`` tenants need same-shaped 64 KB rooted SUM reductions.  Three ways
to serve them, measured end to end:

* **per-request** — the status quo: each tenant calls the facade's
  default ``HZCCL.reduce`` itself, one ring Reduce_scatter + compressed
  gather per session (no service involved);
* **service, unbatched** — every session through the
  :class:`~repro.service.AggregationService` with coalescing disabled
  (``max_batch=1``): each runs alone on the fused direct-reduce plan,
  so this row isolates what the *plan* buys without batching;
* **service, batched** — all sessions submitted concurrently into one
  batching window: one ``batched-reduce`` plan, one compression pass
  per rank covering the whole batch, ``k`` fused k-way folds at the
  root.

Because the fused fold is exact in the integer domain, batching changes
no output byte — the comparison is pure amortisation.  The gate
requires the batched service to clear **``--min-speedup`` (default 2×)
the per-request baseline's per-session throughput** at the 64 KB
payload point, and the report includes the
:data:`~repro.core.pipeline.PLAN_CACHE` hit rate the serving loop
achieved.

Usage::

    PYTHONPATH=src python benchmarks/bench_service.py            # table
    PYTHONPATH=src python benchmarks/bench_service.py --check    # CI gate
    PYTHONPATH=src python benchmarks/bench_service.py -o BENCH_service.json
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
import time

import numpy as np

from repro import HZCCL
from repro.core.pipeline import PLAN_CACHE
from repro.service import AggregationService

N_RANKS = 4
ELEMENTS = 16_384  # 64 KB of float32 — the gate's payload point
SESSIONS = 8
REPEATS = 5
SEED = 20260808


def _make_batch(k: int, n_ranks: int, elements: int):
    rng = np.random.default_rng(SEED)
    return [
        [
            np.cumsum(rng.normal(0, 0.02, elements)).astype(np.float32)
            for _ in range(n_ranks)
        ]
        for _ in range(k)
    ]


def _facade_once(batch) -> tuple[float, int]:
    """Per-request baseline: each session is one plain facade call."""
    lib = HZCCL()
    t0 = time.perf_counter()
    wire = sum(lib.reduce(s).bytes_on_wire for s in batch)
    return time.perf_counter() - t0, wire


def _serve_once(batch, *, coalesce: bool) -> tuple[float, int]:
    """Serve the whole batch through the service once.

    ``coalesce=False`` submits and awaits one session at a time
    (``max_batch=1`` — no window, no overlap); ``coalesce=True``
    submits all sessions concurrently into one batching window.
    """

    async def go():
        svc = AggregationService(
            window_s=0.01,
            max_batch=len(batch) if coalesce else 1,
            max_pending=2 * len(batch),
        )
        async with svc:
            t0 = time.perf_counter()
            if coalesce:
                await asyncio.gather(*(svc.submit(s) for s in batch))
            else:
                for s in batch:
                    await svc.submit(s)
            elapsed = time.perf_counter() - t0
        return elapsed, svc.stats()["wire_bytes"]

    return asyncio.run(go())


def _best_of(fn, repeats: int) -> tuple[float, int]:
    return min(fn() for _ in range(repeats))


def measure(repeats: int = REPEATS) -> dict:
    batch = _make_batch(SESSIONS, N_RANKS, ELEMENTS)
    _facade_once(batch)  # warm kernels + plan cache
    _serve_once(batch, coalesce=False)
    PLAN_CACHE.clear()
    per_request_s, per_request_wire = _best_of(
        lambda: _facade_once(batch), repeats
    )
    unbatched_s, unbatched_wire = _best_of(
        lambda: _serve_once(batch, coalesce=False), repeats
    )
    batched_s, batched_wire = _best_of(
        lambda: _serve_once(batch, coalesce=True), repeats
    )
    return {
        "ranks": N_RANKS,
        "elements": ELEMENTS,
        "payload_bytes": ELEMENTS * 4,
        "sessions": SESSIONS,
        "repeats": repeats,
        "per_request_s": per_request_s,
        "service_unbatched_s": unbatched_s,
        "batched_s": batched_s,
        "speedup": per_request_s / batched_s,
        "speedup_vs_unbatched": unbatched_s / batched_s,
        "per_request_sessions_per_s": SESSIONS / per_request_s,
        "service_unbatched_sessions_per_s": SESSIONS / unbatched_s,
        "batched_sessions_per_s": SESSIONS / batched_s,
        "per_request_wire_bytes": per_request_wire,
        "service_unbatched_wire_bytes": unbatched_wire,
        "batched_wire_bytes": batched_wire,
        "plan_cache": PLAN_CACHE.stats(),
    }


def report(doc: dict) -> str:
    def row(label, secs, per_s):
        return (
            f"  {label:<18}: {secs * 1e3:8.2f} ms "
            f"({per_s:6.1f} sessions/s)"
        )

    return "\n".join(
        [
            f"aggregation service @ {doc['payload_bytes'] >> 10} KB x "
            f"{doc['sessions']} sessions ({doc['ranks']} ranks)",
            row("per-request", doc["per_request_s"],
                doc["per_request_sessions_per_s"]),
            row("service, unbatched", doc["service_unbatched_s"],
                doc["service_unbatched_sessions_per_s"]),
            row("service, batched", doc["batched_s"],
                doc["batched_sessions_per_s"]),
            f"  speedup           : {doc['speedup']:.2f}x vs per-request, "
            f"{doc['speedup_vs_unbatched']:.2f}x vs unbatched service",
            f"  plan cache        : {doc['plan_cache']['hits']} hits / "
            f"{doc['plan_cache']['misses']} misses "
            f"(hit rate {doc['plan_cache']['hit_rate']:.0%})",
        ]
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--check", action="store_true",
                        help="gate: batched must clear --min-speedup")
    parser.add_argument("--min-speedup", type=float, default=2.0)
    parser.add_argument("--repeats", type=int, default=REPEATS)
    parser.add_argument("-o", "--output", default=None,
                        help="write the measurement as JSON")
    args = parser.parse_args(argv)

    doc = measure(repeats=args.repeats)
    print(report(doc))
    if args.output:
        with open(args.output, "w") as f:
            json.dump(doc, f, indent=2, sort_keys=True)
            f.write("\n")
        print(f"wrote {args.output}")
    if args.check and doc["speedup"] < args.min_speedup:
        print(
            f"\nSERVICE GATE FAILED: batched speedup {doc['speedup']:.2f}x "
            f"< required {args.min_speedup:.2f}x"
        )
        return 1
    if args.check:
        print(f"\nservice gate ok (>= {args.min_speedup:.2f}x)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
