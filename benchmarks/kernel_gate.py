"""Kernel roofline gate (CI: the kernel-gate job).

The fast backends exist to move the hot kernels toward the host's memory
bandwidth.  This script enforces that claim with host-independent checks,
so the gate travels between laptops and CI runners without retuning:

1. **availability** — every ``--require`` backend must have loaded; a
   perf job whose backend silently fell back to NumPy measures nothing;
2. **roofline floor** — each gated kernel's throughput, as a *fraction of
   the run's own STREAM-triad baseline*, must not fall below the
   committed floor (``--min-frac``, per ``backend:kernel:frac`` triple);
3. **relative speedup** — a fast backend must actually beat the reference
   on the kernels it reimplements (``--min-speedup fast:ref:kernel:ratio``,
   e.g. ``numba:numpy:classify_encode:5``).

Usage::

    PYTHONPATH=src python benchmarks/kernel_gate.py
        [--mb 8] [--repeats 3]
        [--require numba]
        [--min-frac numba:classify_encode:0.05 ...]
        [--min-speedup numba:numpy:classify_encode:5 ...]

With no ``--min-frac``/``--min-speedup`` the gate still measures and
reports everything (and enforces ``--require``), so the job log always
carries the roofline table.  Exits non-zero on the first violated gate.
"""

from __future__ import annotations

import argparse
import sys

from repro.bench.kernels import (
    format_report,
    require_backend,
    run_kernel_bench,
)


def _parse_triples(specs: list[str], parts: int, flag: str) -> list[list[str]]:
    parsed = []
    for spec in specs:
        fields = spec.split(":")
        if len(fields) != parts:
            raise SystemExit(
                f"{flag} expects {parts} colon-separated fields, got {spec!r}"
            )
        parsed.append(fields)
    return parsed


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--mb", type=float, default=8.0)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument(
        "--require",
        action="append",
        default=[],
        metavar="BACKEND",
        help="backend that must have loaded (repeatable)",
    )
    parser.add_argument(
        "--min-frac",
        action="append",
        default=[],
        metavar="BACKEND:KERNEL:FRAC",
        help="minimum fraction-of-STREAM floor (repeatable)",
    )
    parser.add_argument(
        "--min-speedup",
        action="append",
        default=[],
        metavar="FAST:REF:KERNEL:RATIO",
        help="minimum throughput ratio of FAST over REF (repeatable)",
    )
    args = parser.parse_args(argv)

    frac_gates = _parse_triples(args.min_frac, 3, "--min-frac")
    speedup_gates = _parse_triples(args.min_speedup, 4, "--min-speedup")

    try:
        for name in args.require:
            require_backend(name)
        doc = run_kernel_bench(mb=args.mb, repeats=args.repeats)
    except RuntimeError as exc:
        print(f"KERNEL GATE FAILED\n  - {exc}")
        return 1
    print(format_report(doc))

    backends = doc["backends"]
    failures = []

    def kernel_entry(backend: str, kernel: str):
        entry = backends.get(backend, {}).get(kernel)
        if entry is None:
            failures.append(f"no measurement for {backend}/{kernel}")
        return entry

    for backend, kernel, frac in frac_gates:
        entry = kernel_entry(backend, kernel)
        if entry is None:
            continue
        floor = float(frac)
        if entry["frac_stream"] < floor:
            failures.append(
                f"{backend}/{kernel}: {entry['frac_stream']:.3f} of STREAM, "
                f"floor {floor:.3f} "
                f"({entry['gbps']:.3f} GB/s vs triad {doc['stream']['gbps']:.3f})"
            )

    for fast, ref, kernel, ratio in speedup_gates:
        fast_e = kernel_entry(fast, kernel)
        ref_e = kernel_entry(ref, kernel)
        if fast_e is None or ref_e is None:
            continue
        floor = float(ratio)
        speedup = (
            fast_e["gbps"] / ref_e["gbps"] if ref_e["gbps"] > 0 else float("inf")
        )
        if speedup < floor:
            failures.append(
                f"{fast}/{kernel}: {speedup:.2f}x over {ref}, floor {floor:.2f}x "
                f"({fast_e['gbps']:.3f} vs {ref_e['gbps']:.3f} GB/s)"
            )

    if failures:
        print("\nKERNEL GATE FAILED")
        for f in failures:
            print(f"  - {f}")
        return 1
    print(
        f"\nkernel gate ok ({len(frac_gates)} roofline floors, "
        f"{len(speedup_gates)} speedup floors)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
