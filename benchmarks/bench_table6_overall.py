"""Table VI — overall reduce performance: hZ-dynamic vs fZ-light (DOC).

Paper: hZ-dynamic's overall throughput (two compressed inputs → one
compressed sum) beats the traditional decompress-operate-recompress
workflow on every dataset and error bound, from 2.62× (CESM-ATM) to
36.53× (NYX, 379.08 vs 10.38 GB/s), while its quality (NRMSE) is never
worse — DOC requantises the operated data, hZ-dynamic does not.

Here: identical protocol at bench scale over all five datasets × four
relative bounds.
"""

from __future__ import annotations

import numpy as np

from repro.bench.tables import format_table
from repro.bench.timing import best_of, throughput_gbps
from repro.compression import FZLight, nrmse, resolve_error_bound
from repro.datasets import dataset_names
from repro.homomorphic import HZDynamic

from conftest import REL_BOUNDS, cached_pair


def measure():
    fz = FZLight()
    engine = HZDynamic(collect_stats=False)
    rows, cells = [], {}
    for name in dataset_names():
        a, b = cached_pair(name)
        exact = a.astype(np.float64) + b.astype(np.float64)
        for rel in REL_BOUNDS:
            eb = resolve_error_bound(a, rel_eb=rel)
            ca, cb = fz.compress(a, abs_eb=eb), fz.compress(b, abs_eb=eb)
            t_hz = best_of(lambda: engine.add(ca, cb), repeats=3).seconds

            def doc():
                return fz.compress(fz.decompress(ca) + fz.decompress(cb), abs_eb=eb)

            t_doc = best_of(doc, repeats=3).seconds
            hz_sum = engine.add(ca, cb)
            doc_sum = doc()
            processed = 2 * a.nbytes
            hz_gbps = throughput_gbps(processed, t_hz)
            doc_gbps = throughput_gbps(processed, t_doc)
            q_hz = nrmse(exact, fz.decompress(hz_sum))
            q_doc = nrmse(exact, fz.decompress(doc_sum))
            cells[(name, rel)] = dict(
                hz_gbps=hz_gbps, doc_gbps=doc_gbps,
                hz_nrmse=q_hz, doc_nrmse=q_doc,
                hz_ratio=hz_sum.compression_ratio,
                doc_ratio=doc_sum.compression_ratio,
            )
            rows.append(
                [name, f"{rel:.0e}", hz_gbps, hz_sum.compression_ratio, q_hz,
                 doc_gbps, doc_sum.compression_ratio, q_doc, hz_gbps / doc_gbps]
            )
    return rows, cells


def test_table6_overall(benchmark):
    rows, cells = benchmark.pedantic(measure, rounds=1, iterations=1)
    print()
    print(
        format_table(
            ["dataset", "REL", "hZ GB/s", "hZ ratio", "hZ NRMSE",
             "DOC GB/s", "DOC ratio", "DOC NRMSE", "speedup"],
            rows,
            title="Table VI: hZ-dynamic vs fZ-light(DOC) overall reduce "
            "(paper: 2.6-36.5x)",
        )
    )
    wins = sum(1 for c in cells.values() if c["hz_gbps"] > c["doc_gbps"])
    # paper: hZ-dynamic wins all 20 cells (2.6-36.5x); our NumPy IFE/FE
    # keeps the dense CESM-ATM cells close to parity, so allow two cells
    # within noise of 1.0x (documented in EXPERIMENTS.md)
    assert wins >= len(cells) - 2, f"hZ-dynamic won only {wins}/{len(cells)}"
    for key, c in cells.items():
        assert c["hz_gbps"] > c["doc_gbps"] * 0.85, key
        # no extra quantisation ⇒ hZ-dynamic's NRMSE never (meaningfully) worse
        assert c["hz_nrmse"] <= c["doc_nrmse"] * 1.02, key
    # the gap is data-dependent: constant-heavy NYX ≫ dense CESM-ATM
    nyx = cells[("nyx", 1e-3)]
    cesm = cells[("cesm", 1e-3)]
    assert nyx["hz_gbps"] / nyx["doc_gbps"] > cesm["hz_gbps"] / cesm["doc_gbps"]


def test_doc_workflow_kernel(benchmark):
    fz = FZLight()
    a, b = cached_pair("sim1")
    eb = resolve_error_bound(a, rel_eb=1e-3)
    ca, cb = fz.compress(a, abs_eb=eb), fz.compress(b, abs_eb=eb)
    benchmark(lambda: fz.compress(fz.decompress(ca) + fz.decompress(cb), abs_eb=eb))


if __name__ == "__main__":  # pragma: no cover
    rows, _ = measure()
    print(format_table(["ds", "REL", "hzG", "hzR", "hzN", "docG", "docR", "docN", "X"], rows))
