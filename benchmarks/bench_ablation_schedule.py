"""Ablation A6 — collective schedule: ring vs Rabenseifner.

The paper builds on ring collectives; MPICH's other large-message choice
is Rabenseifner's recursive halving/doubling (2·log2 N rounds instead of
2·(N−1)).  The homomorphic co-design is schedule-agnostic — compressed
blocks fold associatively — so both schedules must produce *byte-identical*
reductions, and the latency structure decides the winner:

* bandwidth-dominated (large messages): both move the same volume, ring
  and Rabenseifner tie to first order;
* latency-dominated (many ranks, small messages): Rabenseifner's
  logarithmic round count wins.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench.tables import format_table
from repro.collectives import (
    hzccl_allreduce,
    hzccl_rabenseifner_allreduce,
    mpi_allreduce,
    rabenseifner_allreduce,
)
from repro.core.config import CollectiveConfig
from repro.runtime.cluster import SimCluster
from repro.runtime.network import NetworkModel

N_RANKS = 16
BANDWIDTH_NET = NetworkModel(latency_s=1e-6, bandwidth_Bps=5e8, congestion_per_log2=0.2)
LATENCY_NET = NetworkModel(latency_s=2e-3, bandwidth_Bps=1e12, congestion_per_log2=0.0)


def _data(rng, size):
    return [
        np.cumsum(rng.normal(0, 0.05, size)).astype(np.float32)
        for _ in range(N_RANKS)
    ]


def measure():
    rng = np.random.default_rng(20240624)
    rows = []
    results = {}
    for regime, net, size in (
        ("bandwidth-bound", BANDWIDTH_NET, 400_000),
        ("latency-bound", LATENCY_NET, 3_200),
    ):
        local = _data(rng, size)
        config = CollectiveConfig(error_bound=1e-4, network=net)
        ring_mpi = mpi_allreduce(SimCluster(N_RANKS, network=net), local)
        rab_mpi = rabenseifner_allreduce(SimCluster(N_RANKS, network=net), local)
        ring_hz = hzccl_allreduce(SimCluster(N_RANKS, network=net), local, config)
        rab_hz = hzccl_rabenseifner_allreduce(
            SimCluster(N_RANKS, network=net), local, config
        )
        results[regime] = (ring_mpi, rab_mpi, ring_hz, rab_hz)
        rows.append(
            [regime, 1e3 * ring_mpi.total_time, 1e3 * rab_mpi.total_time,
             1e3 * ring_hz.total_time, 1e3 * rab_hz.total_time]
        )
    return rows, results


def test_ablation_schedule(benchmark):
    rows, results = benchmark.pedantic(measure, rounds=1, iterations=1)
    print()
    print(
        format_table(
            ["regime", "ring MPI ms", "Rab MPI ms", "ring hZCCL ms", "Rab hZCCL ms"],
            rows,
            title=f"Ablation A6: ring vs Rabenseifner schedules ({N_RANKS} ranks)",
        )
    )
    # byte-identical homomorphic results under both schedules
    for regime, (_, _, ring_hz, rab_hz) in results.items():
        for a, b in zip(ring_hz.outputs, rab_hz.outputs):
            np.testing.assert_array_equal(a, b)
    # latency regime: logarithmic rounds must win clearly for plain MPI
    _, rab_mpi, _, _ = results["latency-bound"]
    ring_mpi = results["latency-bound"][0]
    assert rab_mpi.total_time < 0.7 * ring_mpi.total_time
    # bandwidth regime: same volume moves either way (ties within 25%)
    ring_b, rab_b = results["bandwidth-bound"][0], results["bandwidth-bound"][1]
    assert rab_b.bytes_on_wire == pytest.approx(ring_b.bytes_on_wire, rel=0.02)
