"""Figure 8 — Allreduce: hZCCL vs C-Coll (64 nodes, Sim-1 / Sim-2).

Paper: hZCCL beats C-Coll by 1.78×/1.55× (ST) and 2.10×/2.00× (MT) on the
two simulation settings — larger margins than Reduce_scatter because the
fused Allreduce also removes the Reduce_scatter-stage decompression and
the Allgather-stage compression.

Here: functional 8-rank execution (structure validation) plus the §III-C
model at 64 nodes.  Strict ordering asserted under paper-derived rates;
the fusion advantage is additionally asserted *structurally*: hZCCL's
Allreduce must charge strictly less DPR+CPR than an unfused composition.
"""

from __future__ import annotations

import numpy as np

from repro.bench.tables import format_table
from repro.collectives import (
    ccoll_allreduce,
    hzccl_allgather_compressed,
    hzccl_allreduce,
    hzccl_reduce_scatter,
)
from repro.compression import resolve_error_bound
from repro.core.config import CollectiveConfig
from repro.core.cost_model import (
    PAPER_BROADWELL,
    matched_network,
    model_ccoll_allreduce,
    model_hzccl_allreduce,
)
from repro.runtime.cluster import SimCluster
from repro.runtime.network import OMNIPATH_100G

from conftest import cached_field, measured_rates

N_FUNCTIONAL = 8
N_PAPER = 64


def _snapshots(name: str) -> list[np.ndarray]:
    base = cached_field(name, 0)
    n = min(base.size, 1_200_000)
    return [cached_field(name, r % 3)[:n] for r in range(N_FUNCTIONAL)]


def functional_runs():
    rows, ratios = [], {}
    for name in ("sim1", "sim2"):
        rates = measured_rates(name)
        network = matched_network(OMNIPATH_100G, rates)
        data = _snapshots(name)
        eb = resolve_error_bound(data[0], rel_eb=1e-4)
        for mt in (False, True):
            config = CollectiveConfig(error_bound=eb, network=network, multithread=mt)
            hz = hzccl_allreduce(
                SimCluster(N_FUNCTIONAL, network=network, multithread=mt), data, config
            )
            cc = ccoll_allreduce(
                SimCluster(N_FUNCTIONAL, network=network, multithread=mt), data, config
            )
            ratios[(name, mt)] = cc.total_time / hz.total_time
            rows.append(
                [name, "MT" if mt else "ST", 1e3 * cc.total_time,
                 1e3 * hz.total_time, cc.total_time / hz.total_time]
            )
    return rows, ratios


def test_fig08_functional(benchmark):
    rows, ratios = benchmark.pedantic(functional_runs, rounds=1, iterations=1)
    print()
    print(
        format_table(
            ["dataset", "mode", "C-Coll ms", "hZCCL ms", "hZCCL speedup"],
            rows,
            title=f"Figure 8 (functional, {N_FUNCTIONAL} ranks): Allreduce "
            "hZCCL vs C-Coll (paper at 64 nodes: 1.55-2.10x)",
        )
    )
    # structure-validation band; strict ordering lives in the model test
    for key, speedup in ratios.items():
        assert speedup > 0.4, key


def test_fig08_modelled():
    rows, ratios = [], {}
    total = 646_000_000
    for label, rates in (("paper rates", PAPER_BROADWELL), ("measured rates", measured_rates())):
        network = OMNIPATH_100G if label == "paper rates" else matched_network(
            OMNIPATH_100G, rates
        )
        for mt in (False, True):
            cc = model_ccoll_allreduce(N_PAPER, total, rates, network, mt)
            hz = model_hzccl_allreduce(N_PAPER, total, rates, network, mt)
            ratios[(label, mt)] = cc.total_time / hz.total_time
            rows.append(
                [label, "MT" if mt else "ST", cc.total_time, hz.total_time,
                 cc.total_time / hz.total_time]
            )
    print()
    print(
        format_table(
            ["rates", "mode", "C-Coll s", "hZCCL s", "hZCCL speedup"],
            rows,
            title=f"Figure 8 (modelled, {N_PAPER} nodes, 646 MB)",
        )
    )
    for (label, mt), speedup in ratios.items():
        if label == "paper rates":
            assert speedup > 1.0, (label, mt)
        else:
            assert speedup > 0.65, (label, mt)


def test_fusion_removes_doc_stages():
    """The co-design claim itself: the fused Allreduce charges exactly one
    compression pass (the initial one) and no Allgather-stage compression,
    while C-Coll recompresses at the Allgather boundary."""
    name = "sim1"
    rates = measured_rates(name)
    network = matched_network(OMNIPATH_100G, rates)
    data = _snapshots(name)
    eb = resolve_error_bound(data[0], rel_eb=1e-4)
    config = CollectiveConfig(error_bound=eb, network=network)

    fused_cluster = SimCluster(N_FUNCTIONAL, network=network)
    rs = hzccl_reduce_scatter(fused_cluster, data, config, return_compressed=True)
    cpr_after_rs = fused_cluster.breakdown().buckets["CPR"]
    hzccl_allgather_compressed(fused_cluster, rs.outputs, config)
    cpr_after_ag = fused_cluster.breakdown().buckets["CPR"]
    assert cpr_after_ag == cpr_after_rs, "fused Allgather must not compress"

    cc_cluster = SimCluster(N_FUNCTIONAL, network=network)
    cc = ccoll_allreduce(cc_cluster, data, config)
    # C-Coll compresses in *both* stages: strictly more CPR invocations
    assert cc.breakdown.buckets["CPR"] > cpr_after_ag * 0.99


if __name__ == "__main__":  # pragma: no cover
    print(functional_runs()[0])
