"""Observability overhead gate (CI: the trace-smoke job).

The observability layer promises that *disabled* tracing/metrics cost
nothing measurable on the kernel hot path: ``get_backend`` must hand out
the raw backend object (no wrappers), and the per-site ``METRICS.enabled``
branches must vanish in the noise.  This script enforces both on the same
kernels the bench-smoke job measures:

1. **structural check** — with metrics disabled, dispatch resolves to the
   identical uninstrumented backend object;
2. **timing gate** — encode/decode/decode_selected through the dispatch
   path (metrics disabled) must be within ``--tolerance`` (default 5%) of
   calling the raw backend callables directly, best-of-N on each side;
3. **informational** — the same kernels with metrics *enabled*, so the
   log shows what turning instrumentation on actually costs.

Usage::

    PYTHONPATH=src python benchmarks/overhead_gate.py [--mb 2]
        [--repeats 5] [--tolerance 0.05]

Exits non-zero on the first violated gate.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from repro.bench.kernels import _BLOCK_SIZE, _make_deltas
from repro.bench.timing import best_of
from repro.compression import encoding
from repro.kernels.dispatch import get_backend
from repro.obs.metrics import METRICS, metrics_enabled


def _workload(mb: float, seed: int = 7):
    n_elements = max(
        _BLOCK_SIZE, int(mb * 1e6 / 4) // _BLOCK_SIZE * _BLOCK_SIZE
    )
    blocks = _make_deltas(n_elements, seed=seed)
    lens, payload = encoding.encode_blocks(blocks, _BLOCK_SIZE)
    offsets = encoding.payload_offsets(lens, _BLOCK_SIZE)
    sel = np.random.default_rng(3).permutation(lens.size)[
        : max(1, lens.size // 4)
    ]
    return blocks, lens, payload, offsets, sel


def _time_kernels(fns: dict, repeats: int) -> dict[str, float]:
    return {op: best_of(fn, repeats=repeats).seconds for op, fn in fns.items()}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--mb", type=float, default=2.0)
    parser.add_argument("--repeats", type=int, default=5)
    parser.add_argument("--tolerance", type=float, default=0.05)
    args = parser.parse_args(argv)

    METRICS.disable()
    raw = get_backend()
    if get_backend() is not raw:
        print("FAIL: disabled dispatch does not return a stable raw backend")
        return 1
    with metrics_enabled():
        if get_backend() is raw:
            print("FAIL: enabled dispatch did not swap in instrumentation")
            return 1
    if get_backend() is not raw:
        print("FAIL: disabled dispatch still returns the instrumented twin")
        return 1
    print(f"structural check ok: disabled get_backend() -> raw {raw.name!r}")

    blocks, lens, payload, offsets, sel = _workload(args.mb)

    def fns(encode, decode, decode_selected):
        return {
            "encode": lambda: encode(blocks, _BLOCK_SIZE),
            "decode": lambda: decode(
                lens, payload, _BLOCK_SIZE, offsets=offsets
            ),
            "decode_selected": lambda: decode_selected(
                sel, lens, offsets, payload, _BLOCK_SIZE
            ),
        }

    # pre-observability floor: the raw backend callables, no dispatch
    floor = _time_kernels(
        fns(raw.encode_blocks, raw.decode_blocks, raw.decode_selected),
        args.repeats,
    )
    # production disabled path: through dispatch, metrics off
    disabled = _time_kernels(
        fns(
            encoding.encode_blocks,
            encoding.decode_blocks,
            encoding.decode_selected,
        ),
        args.repeats,
    )
    with metrics_enabled() as registry:
        enabled = _time_kernels(
            fns(
                encoding.encode_blocks,
                encoding.decode_blocks,
                encoding.decode_selected,
            ),
            args.repeats,
        )
        observed = sorted(
            k for k in registry.counters() if k.startswith("kernel.")
        )

    failures = []
    print(
        f"\n{'kernel':<16} {'raw ms':>9} {'disabled ms':>12} "
        f"{'overhead':>9} {'enabled ms':>11}"
    )
    for op in floor:
        overhead = disabled[op] / floor[op] - 1.0
        print(
            f"{op:<16} {floor[op] * 1e3:9.3f} {disabled[op] * 1e3:12.3f} "
            f"{overhead:+8.1%} {enabled[op] * 1e3:11.3f}"
        )
        if overhead > args.tolerance:
            failures.append(
                f"{op}: disabled path {overhead:+.1%} over the raw floor "
                f"(tolerance {args.tolerance:.0%})"
            )
    if not observed:
        failures.append("enabled run recorded no kernel.* metrics")
    else:
        print(f"enabled run recorded {len(observed)} kernel.* counters")

    if failures:
        print("\nOVERHEAD GATE FAILED")
        for f in failures:
            print(f"  - {f}")
        return 1
    print(f"\noverhead gate ok (tolerance {args.tolerance:.0%})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
