"""Reworked kernel hot path vs. the pre-dispatch legacy kernels.

The `repro.kernels` rework replaced the original in-module NumPy kernels
(``np.unique`` + per-``c`` mask grouping, byte-granularity fancy-index
gather/scatter, per-bit Horner residual loops, fresh temporaries every
call) with a grouping-plan + scratch-arena design.  This bench freezes a
verbatim copy of the *old* kernels and races the active backend against
them at a 16 MB field — the acceptance gate is ≥1.3x on encode and decode.

Every timed cell is also a correctness check: the legacy kernels and the
active backend must agree byte-for-byte (the wire format is pinned).

Run directly for the table, or via pytest for the gated assertion::

    PYTHONPATH=src python benchmarks/bench_kernels.py
    PYTHONPATH=src python -m pytest benchmarks/bench_kernels.py -s
"""

from __future__ import annotations

import numpy as np

from repro.bench.tables import format_table
from repro.bench.timing import best_of, throughput_gbps
from repro.compression import encoding as enc

FIELD_MB = 16
BLOCK_SIZE = 32
SELECT_FRACTION = 0.25
SEED = 20240624
SPEEDUP_FLOOR = 1.3


# ---------------------------------------------------------------------- #
# Frozen pre-rework kernels (verbatim legacy reference — do not optimise)
# ---------------------------------------------------------------------- #
def _legacy_required_bits(max_magnitudes: np.ndarray) -> np.ndarray:
    m = np.asarray(max_magnitudes, dtype=np.float64)
    out = np.zeros(m.shape, dtype=np.uint8)
    nz = m > 0
    out[nz] = np.ceil(np.log2(m[nz] + 1.0)).astype(np.uint8)
    return out


def _legacy_offsets(code_lengths: np.ndarray, block_size: int) -> np.ndarray:
    c = np.asarray(code_lengths, dtype=np.int64)
    unit = block_size // 8
    sizes = np.where(c > 0, unit * (1 + c), 0).astype(np.int64)
    offsets = np.empty(sizes.size + 1, dtype=np.int64)
    offsets[0] = 0
    np.cumsum(sizes, out=offsets[1:])
    return offsets


def _legacy_encode_group(mags, signs, c):
    nb, bs = mags.shape
    unit = bs // 8
    out = np.empty((nb, unit * (1 + c)), dtype=np.uint8)
    out[:, :unit] = np.packbits(signs, axis=1)
    byte_count = c // 8
    remainder_bit = c % 8
    pos = unit
    for k in range(byte_count):
        out[:, pos : pos + bs] = (
            (mags >> np.uint32(8 * k)) & np.uint32(0xFF)
        ).astype(np.uint8)
        pos += bs
    if remainder_bit:
        resid = (
            (mags >> np.uint32(8 * byte_count))
            & np.uint32((1 << remainder_bit) - 1)
        ).astype(np.uint8)
        shifts = np.arange(remainder_bit - 1, -1, -1, dtype=np.uint8)
        bits = (resid[:, :, None] >> shifts) & np.uint8(1)
        out[:, pos:] = np.packbits(bits.reshape(nb, bs * remainder_bit), axis=1)
    return out


def _legacy_decode_group(rows, c, block_size, dtype=np.int64):
    nb = rows.shape[0]
    bs = block_size
    unit = bs // 8
    signs = np.unpackbits(rows[:, :unit], axis=1).astype(bool)
    mags = np.zeros((nb, bs), dtype=np.uint32)
    byte_count = c // 8
    remainder_bit = c % 8
    pos = unit
    for k in range(byte_count):
        mags |= rows[:, pos : pos + bs].astype(np.uint32) << np.uint32(8 * k)
        pos += bs
    if remainder_bit:
        packed = rows[:, pos:]
        bits = np.unpackbits(packed, axis=1)[:, : bs * remainder_bit]
        bits = bits.reshape(nb, bs, remainder_bit)
        resid = bits[:, :, 0].astype(np.uint32)
        for j in range(1, remainder_bit):
            resid <<= np.uint32(1)
            resid |= bits[:, :, j]
        mags |= resid << np.uint32(8 * byte_count)
    deltas = mags.astype(dtype)
    np.negative(deltas, out=deltas, where=signs)
    return deltas


def legacy_encode_blocks(deltas, block_size=BLOCK_SIZE):
    mags64 = np.abs(deltas)
    max_mag = mags64.max(axis=1, initial=0)
    code_lengths = _legacy_required_bits(max_mag)
    offsets = _legacy_offsets(code_lengths, block_size)
    payload = np.empty(int(offsets[-1]), dtype=np.uint8)
    signs_all = deltas < 0
    mags = mags64.astype(np.uint32)
    for c in np.unique(code_lengths):
        if c == 0:
            continue
        idx = np.nonzero(code_lengths == c)[0]
        rows = _legacy_encode_group(mags[idx], signs_all[idx], int(c))
        row_nbytes = rows.shape[1]
        dest = offsets[idx][:, None] + np.arange(row_nbytes, dtype=np.int64)
        payload[dest.ravel()] = rows.ravel()
    return code_lengths, payload


def _legacy_decode_into(out, indices, code_lengths, offsets, payload, block_size):
    sel_c = np.asarray(code_lengths, dtype=np.uint8)[indices]
    for c in np.unique(sel_c):
        if c == 0:
            continue
        where = np.nonzero(sel_c == c)[0]
        blocks = indices[where]
        row_nbytes = (block_size // 8) * (1 + int(c))
        src = offsets[blocks][:, None] + np.arange(row_nbytes, dtype=np.int64)
        rows = payload[src.ravel()].reshape(where.size, row_nbytes)
        out[where] = _legacy_decode_group(rows, int(c), block_size, out.dtype)


def legacy_decode_blocks(code_lengths, payload, block_size=BLOCK_SIZE):
    code_lengths = np.asarray(code_lengths, dtype=np.uint8)
    offsets = _legacy_offsets(code_lengths, block_size)
    max_c = int(code_lengths.max(initial=0))
    dtype = np.int32 if max_c <= 31 else np.int64
    out = np.zeros((code_lengths.size, block_size), dtype=dtype)
    _legacy_decode_into(
        out, np.arange(code_lengths.size), code_lengths, offsets, payload, block_size
    )
    return out


def legacy_decode_selected(indices, code_lengths, offsets, payload, block_size=BLOCK_SIZE):
    indices = np.asarray(indices, dtype=np.int64)
    out = np.zeros((indices.size, block_size), dtype=np.int64)
    _legacy_decode_into(out, indices, code_lengths, offsets, payload, block_size)
    return out


# ---------------------------------------------------------------------- #
# harness
# ---------------------------------------------------------------------- #
def make_blocks(n_elements: int, seed: int = SEED) -> np.ndarray:
    """Quantised deltas of a float32 random walk (same family as the CLI)."""
    rng = np.random.default_rng(seed)
    walk = np.cumsum(rng.standard_normal(n_elements)).astype(np.float32)
    q = np.round(walk / (2 * 1e-3)).astype(np.int64)
    deltas = np.empty_like(q)
    deltas[0] = q[0]
    deltas[1:] = q[1:] - q[:-1]
    return deltas.reshape(-1, BLOCK_SIZE)


def measure(field_mb: float = FIELD_MB, repeats: int = 3):
    n_elements = int(field_mb * 1e6 / 4) // BLOCK_SIZE * BLOCK_SIZE
    nbytes = n_elements * 4
    blocks = make_blocks(n_elements)
    lens, payload = enc.encode_blocks(blocks, BLOCK_SIZE)
    offsets = enc.payload_offsets(lens, BLOCK_SIZE)
    rng = np.random.default_rng(3)
    sel = rng.permutation(lens.size)[: max(1, int(lens.size * SELECT_FRACTION))]

    # byte-identical parity between the legacy reference and the backend
    l_lens, l_payload = legacy_encode_blocks(blocks, BLOCK_SIZE)
    assert np.array_equal(lens, l_lens)
    assert np.array_equal(payload, l_payload)
    assert np.array_equal(
        enc.decode_blocks(lens, payload, BLOCK_SIZE, offsets=offsets),
        legacy_decode_blocks(lens, payload, BLOCK_SIZE),
    )
    assert np.array_equal(
        enc.decode_selected(sel, lens, offsets, payload, BLOCK_SIZE),
        legacy_decode_selected(sel, lens, offsets, payload, BLOCK_SIZE),
    )

    cases = [
        (
            "encode",
            lambda: legacy_encode_blocks(blocks, BLOCK_SIZE),
            lambda: enc.encode_blocks(blocks, BLOCK_SIZE),
            nbytes,
        ),
        (
            "decode",
            lambda: legacy_decode_blocks(lens, payload, BLOCK_SIZE),
            lambda: enc.decode_blocks(lens, payload, BLOCK_SIZE, offsets=offsets),
            nbytes,
        ),
        (
            "decode_selected",
            lambda: legacy_decode_selected(sel, lens, offsets, payload, BLOCK_SIZE),
            lambda: enc.decode_selected(sel, lens, offsets, payload, BLOCK_SIZE),
            sel.size * BLOCK_SIZE * 4,
        ),
    ]
    rows, speedups = [], {}
    for name, legacy_fn, new_fn, moved in cases:
        t_old = best_of(legacy_fn, repeats=repeats).seconds
        t_new = best_of(new_fn, repeats=repeats).seconds
        speedups[name] = t_old / t_new
        rows.append(
            [
                name,
                t_old * 1e3,
                t_new * 1e3,
                t_old / t_new,
                throughput_gbps(moved, t_new),
            ]
        )
    return rows, speedups


def test_kernel_rework_speedup(benchmark):
    rows, speedups = benchmark.pedantic(measure, rounds=1, iterations=1)
    print()
    print(
        format_table(
            ["kernel", "legacy ms", "reworked ms", "speedup", "new GB/s"],
            rows,
            title=f"Reworked kernels vs pre-dispatch legacy ({FIELD_MB} MB field)",
        )
    )
    for name in ("encode", "decode"):
        assert speedups[name] >= SPEEDUP_FLOOR, (name, speedups[name])


if __name__ == "__main__":  # pragma: no cover
    rows, _ = measure()
    print(
        format_table(
            ["kernel", "legacy ms", "reworked ms", "speedup", "new GB/s"], rows
        )
    )
