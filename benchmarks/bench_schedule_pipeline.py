"""Schedule-IR pipelining — modelled overlap of the chunked ring.

The pipelined ring reduce-scatter (``pipelined_ring_reduce_scatter``)
splits each block into chunks and folds chunk ``c-1`` while chunk ``c``
is on the wire; under the §III-C model an ``overlap`` round costs
``pack + max(wire, fold)`` instead of their sum.  This harness dry-runs
the *same schedule objects the executor runs* and asserts the payoff:
the pipelined hZCCL Allreduce makespan is strictly below the
unpipelined one at every grid point ≥ 4 MB (best chunk count; small
chunk counts win at small messages where per-invocation overhead and
latency dominate).

Deterministic (pure cost model, paper Broadwell rates, Omni-Path 100G),
so the committed ``BENCH_schedule.json`` is exactly reproducible:

    PYTHONPATH=src python benchmarks/bench_schedule_pipeline.py
"""

from __future__ import annotations

import json
import pathlib

from repro.bench.tables import format_table
from repro.core.cost_model import (
    PAPER_BROADWELL,
    model_hzccl_allreduce,
    model_hzccl_allreduce_pipelined,
)
from repro.runtime.network import OMNIPATH_100G

MB = 1 << 20
SIZES_MB = (4, 16, 64, 256)
NODE_COUNTS = (8, 64)
CHUNK_COUNTS = (2, 4)
BASELINE = pathlib.Path(__file__).resolve().parent.parent / "BENCH_schedule.json"


def sweep() -> dict:
    points = []
    for n in NODE_COUNTS:
        for mb in SIZES_MB:
            for mt in (False, True):
                base = model_hzccl_allreduce(
                    n, mb * MB, PAPER_BROADWELL, OMNIPATH_100G, mt
                )
                piped = {
                    k: model_hzccl_allreduce_pipelined(
                        n, mb * MB, PAPER_BROADWELL, OMNIPATH_100G, mt,
                        n_chunks=k,
                    ).total_time
                    for k in CHUNK_COUNTS
                }
                best_k = min(piped, key=piped.get)
                points.append(
                    {
                        "n_nodes": n,
                        "size_mb": mb,
                        "mode": "MT" if mt else "ST",
                        "unpipelined_s": base.total_time,
                        "pipelined_s": {str(k): t for k, t in piped.items()},
                        "best_chunks": best_k,
                        "speedup": base.total_time / piped[best_k],
                    }
                )
    return {
        "rates": "PAPER_BROADWELL",
        "network": "OMNIPATH_100G",
        "points": points,
    }


def check(doc: dict) -> list[list]:
    rows = []
    for p in doc["points"]:
        best = min(p["pipelined_s"].values())
        assert best < p["unpipelined_s"], (
            f"no modelled overlap win at n={p['n_nodes']} "
            f"{p['size_mb']} MB {p['mode']}"
        )
        rows.append(
            [p["n_nodes"], p["size_mb"], p["mode"],
             1e3 * p["unpipelined_s"], 1e3 * best, p["best_chunks"],
             p["speedup"]]
        )
    return rows


def test_pipelined_allreduce_model_beats_unpipelined(benchmark):
    doc = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = check(doc)
    print()
    print(
        format_table(
            ["nodes", "MB", "mode", "unpipelined ms", "pipelined ms",
             "chunks", "speedup"],
            rows,
            title="Pipelined vs unpipelined hZCCL Allreduce (modelled)",
        )
    )


def test_matches_committed_baseline():
    """The committed JSON is a pure-model artefact: must match exactly."""
    committed = json.loads(BASELINE.read_text())
    assert committed == sweep()


if __name__ == "__main__":  # pragma: no cover
    doc = sweep()
    check(doc)
    BASELINE.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    print(f"wrote {BASELINE} ({len(doc['points'])} grid points, all "
          "pipelined makespans strictly below unpipelined)")
