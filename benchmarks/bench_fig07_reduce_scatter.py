"""Figure 7 — Reduce_scatter: hZCCL vs C-Coll (64 nodes, Sim-1 / Sim-2).

Paper: hZCCL beats C-Coll by 1.82× (ST) / 2.01× (MT) on Sim. Set. 1 and
1.31× / 1.64× on Sim. Set. 2 at 64 Broadwell nodes.

Here, two complementary reproductions:

* **functional** — 16 simulated ranks execute the real algorithms on real
  seismic snapshots (compute measured, link matched to this substrate);
* **modelled** — the §III-C cost formulas at the paper's full 64 nodes
  under both the paper-derived Broadwell rates and this machine's measured
  rates.

Expected shape: hZCCL < C-Coll under the paper-derived rates (the strict
assertion); under this machine's measured NumPy rates HPR is *not* cheaper
than DPR+CPT, so hZCCL only stays within a documented band of C-Coll — see
EXPERIMENTS.md §Fig. 7 for the analysis.
"""

from __future__ import annotations

import numpy as np

from repro.bench.tables import format_table
from repro.collectives import ccoll_reduce_scatter, hzccl_reduce_scatter
from repro.core.config import CollectiveConfig
from repro.core.cost_model import (
    PAPER_BROADWELL,
    matched_network,
    model_ccoll_reduce_scatter,
    model_hzccl_reduce_scatter,
)
from repro.runtime.cluster import SimCluster
from repro.runtime.network import OMNIPATH_100G

from conftest import cached_field, measured_rates

N_FUNCTIONAL = 8
N_PAPER = 64


def _snapshots(name: str, n_ranks: int) -> list[np.ndarray]:
    base = cached_field(name, 0)
    n = min(base.size, 1_200_000)
    return [
        cached_field(name, r % 3)[:n] for r in range(n_ranks)
    ]


def functional_runs():
    rows = []
    ratios = {}
    from repro.compression import resolve_error_bound

    for name in ("sim1", "sim2"):
        rates = measured_rates(name)
        network = matched_network(OMNIPATH_100G, rates)
        data = _snapshots(name, N_FUNCTIONAL)
        eb = resolve_error_bound(data[0], rel_eb=1e-4)  # paper-equivalent bound
        for mt in (False, True):
            config = CollectiveConfig(error_bound=eb, network=network, multithread=mt)
            hz = hzccl_reduce_scatter(
                SimCluster(N_FUNCTIONAL, network=network, multithread=mt), data, config
            )
            cc = ccoll_reduce_scatter(
                SimCluster(N_FUNCTIONAL, network=network, multithread=mt), data, config
            )
            speedup = cc.total_time / hz.total_time
            ratios[(name, mt)] = speedup
            rows.append(
                [name, "MT" if mt else "ST", 1e3 * cc.total_time,
                 1e3 * hz.total_time, speedup]
            )
    return rows, ratios


def modelled_runs():
    rows = []
    ratios = {}
    total = 646_000_000
    for label, rates in (("paper rates", PAPER_BROADWELL), ("measured rates", measured_rates())):
        network = OMNIPATH_100G if label == "paper rates" else matched_network(
            OMNIPATH_100G, rates
        )
        for mt in (False, True):
            cc = model_ccoll_reduce_scatter(N_PAPER, total, rates, network, mt)
            hz = model_hzccl_reduce_scatter(N_PAPER, total, rates, network, mt)
            speedup = cc.total_time / hz.total_time
            ratios[(label, mt)] = speedup
            rows.append(
                [label, "MT" if mt else "ST", cc.total_time, hz.total_time, speedup]
            )
    return rows, ratios


def test_fig07_functional(benchmark):
    rows, ratios = benchmark.pedantic(functional_runs, rounds=1, iterations=1)
    print()
    print(
        format_table(
            ["dataset", "mode", "C-Coll ms", "hZCCL ms", "hZCCL speedup"],
            rows,
            title=f"Figure 7 (functional, {N_FUNCTIONAL} ranks): "
            "Reduce_scatter hZCCL vs C-Coll (paper at 64 nodes: 1.31-2.01x)",
        )
    )
    # Functional runs at this scale are dominated by per-call Python
    # constants and this machine's HPR:DPR balance (see EXPERIMENTS.md):
    # they validate execution and breakdown structure, not the ordering.
    # The paper-rate model below carries the strict ordering assertion.
    for key, speedup in ratios.items():
        assert speedup > 0.4, key


def test_fig07_modelled():
    rows, ratios = modelled_runs()
    print()
    print(
        format_table(
            ["rates", "mode", "C-Coll s", "hZCCL s", "hZCCL speedup"],
            rows,
            title=f"Figure 7 (modelled, {N_PAPER} nodes, 646 MB)",
        )
    )
    for (label, mt), speedup in ratios.items():
        if label == "paper rates":
            assert speedup > 1.0, (label, mt)  # the paper's ordering
        else:
            assert speedup > 0.65, (label, mt)  # documented NumPy deviation


if __name__ == "__main__":  # pragma: no cover
    print(functional_runs()[0])
    print(modelled_runs()[0])
