"""Table III — compression ratio and quality: fZ-light vs ompSZp.

Paper: fZ-light wins the compression ratio in 19 of 20 (dataset, REL)
cells — the exception is Sim. Set. 1 at REL 1e-2, where ompSZp's
zero-block skip edges it out — while NRMSE is never worse.

Here: same grid over the synthetic datasets.  Expected shape: fZ-light's
ratio ≥ ompSZp's in (nearly) every cell with the *largest relative gap on
CESM-ATM* (ompSZp pays four outlier bytes per 32-element block), and
identical-to-better NRMSE everywhere (both use the same quantiser).
"""

from __future__ import annotations


from repro.bench.tables import format_table
from repro.compression import FZLight, OmpSZp, evaluate_quality, resolve_error_bound
from repro.datasets import dataset_names

from conftest import REL_BOUNDS, cached_field


def _cell(comp, data, eb):
    field = comp.compress(data, abs_eb=eb)
    out = comp.decompress(field)
    return evaluate_quality(data, out, field.nbytes)


def build_table():
    fz, omp = FZLight(), OmpSZp()
    rows = []
    cells = {}
    for name in dataset_names():
        data = cached_field(name, 0)
        for rel in REL_BOUNDS:
            eb = resolve_error_bound(data, rel_eb=rel)
            f = _cell(fz, data, eb)
            o = _cell(omp, data, eb)
            cells[(name, rel)] = (f, o)
            rows.append(
                [name, f"{rel:.0e}", f.compression_ratio, f.nrmse, f.std,
                 o.compression_ratio, o.nrmse, o.std]
            )
    return rows, cells


def test_table3_quality(benchmark):
    rows, cells = benchmark.pedantic(build_table, rounds=1, iterations=1)
    print()
    print(
        format_table(
            ["dataset", "REL", "fZ ratio", "fZ NRMSE", "fZ STD",
             "omp ratio", "omp NRMSE", "omp STD"],
            rows,
            title="Table III: fZ-light vs ompSZp (ratio higher is better)",
        )
    )
    wins = sum(
        1 for f, o in cells.values() if f.compression_ratio >= o.compression_ratio
    )
    # paper: 19/20 cells; allow the same one-off inversion
    assert wins >= len(cells) - 2, f"fZ-light won only {wins}/{len(cells)} cells"
    for (name, rel), (f, o) in cells.items():
        assert f.nrmse <= o.nrmse * 1.05, (name, rel)
    # largest relative ratio gap should be a dense-block dataset (CESM-ATM
    # or Hurricane), not the zero-heavy seismic ones
    gaps = {
        k: f.compression_ratio / o.compression_ratio for k, (f, o) in cells.items()
    }
    best = max(gaps, key=gaps.get)
    assert best[0] in {"cesm", "hurricane", "nyx"}, gaps


def test_ratio_monotone_in_bound():
    """Within each dataset, both compressors' ratios fall as REL tightens."""
    fz, omp = FZLight(), OmpSZp()
    for name in dataset_names():
        data = cached_field(name, 0)
        for comp in (fz, omp):
            ratios = [
                comp.compress(
                    data, abs_eb=resolve_error_bound(data, rel_eb=rel)
                ).compression_ratio
                for rel in REL_BOUNDS
            ]
            assert ratios == sorted(ratios, reverse=True), (name, type(comp).__name__)


if __name__ == "__main__":  # pragma: no cover
    rows, _ = build_table()
    print(format_table(["dataset", "REL", "fZ ratio", "fZ NRMSE", "fZ STD",
                        "omp ratio", "omp NRMSE", "omp STD"], rows))
