"""Table IV — memory-bandwidth efficiency of fZ-light vs ompSZp.

Paper: on Sim-2 and NYX at REL 1e-3/1e-4, fZ-light reaches 45–59 %
(compression) and 88–95 % (decompression) of the STREAM peak; ompSZp sits
at 3–7 %.

Here: the same protocol — measure the STREAM peak with the NumPy STREAM
suite, time both kernels, divide.  Expected shape: fZ-light's efficiency
well above ompSZp's in both directions, decompression the more efficient
direction for fZ-light.  (Pure-Python kernels cannot hit 90 % of STREAM;
the *ordering* is the reproduced claim.)
"""

from __future__ import annotations


from repro.bench.stream import memory_bandwidth_efficiency, run_stream
from repro.bench.tables import format_table
from repro.bench.timing import best_of
from repro.compression import FZLight, OmpSZp, resolve_error_bound

from conftest import cached_field

DATASETS = ("sim2", "nyx")
RELS = (1e-3, 1e-4)


def measure():
    stream = run_stream(n_elements=5_000_000, repeats=3)
    fz, omp = FZLight(), OmpSZp()
    rows, cells = [], {}
    for name in DATASETS:
        data = cached_field(name, 0)
        for rel in RELS:
            eb = resolve_error_bound(data, rel_eb=rel)
            f_field = fz.compress(data, abs_eb=eb)
            o_field = omp.compress(data, abs_eb=eb)
            eff = {
                "fz_c": memory_bandwidth_efficiency(
                    data.nbytes,
                    best_of(lambda: fz.compress(data, abs_eb=eb), repeats=2).seconds,
                    stream,
                ),
                "fz_d": memory_bandwidth_efficiency(
                    data.nbytes,
                    best_of(lambda: fz.decompress(f_field), repeats=2).seconds,
                    stream,
                ),
                "omp_c": memory_bandwidth_efficiency(
                    data.nbytes,
                    best_of(lambda: omp.compress(data, abs_eb=eb), repeats=2).seconds,
                    stream,
                ),
                "omp_d": memory_bandwidth_efficiency(
                    data.nbytes,
                    best_of(lambda: omp.decompress(o_field), repeats=2).seconds,
                    stream,
                ),
            }
            cells[(name, rel)] = eff
            rows.append(
                [name, f"{rel:.0e}",
                 100 * eff["omp_c"], 100 * eff["omp_d"],
                 100 * eff["fz_c"], 100 * eff["fz_d"]]
            )
    return stream, rows, cells


def test_table4_membw(benchmark):
    stream, rows, cells = benchmark.pedantic(measure, rounds=1, iterations=1)
    print()
    print(stream)
    print(
        format_table(
            ["dataset", "REL", "omp compr %", "omp decom %", "fZ compr %", "fZ decom %"],
            rows,
            title="Table IV: memory-bandwidth efficiency vs STREAM peak "
            "(paper: fZ 45-94%, omp 3-7%)",
        )
    )
    for key, eff in cells.items():
        assert eff["fz_c"] > eff["omp_c"], key
        assert eff["fz_d"] > eff["omp_d"], key
        # decompression is the fast-or-equal path (on constant-heavy data
        # the fused compressor catches up to within noise)
        assert eff["fz_d"] > eff["fz_c"] * 0.85, key


def test_stream_kernels(benchmark):
    """STREAM peak itself, tracked as a benchmark baseline."""
    result = benchmark.pedantic(
        lambda: run_stream(n_elements=2_000_000, repeats=2), rounds=1, iterations=1
    )
    assert result.peak_Bps > 0


if __name__ == "__main__":  # pragma: no cover
    stream, rows, _ = measure()
    print(stream)
    print(format_table(["ds", "REL", "ompC", "ompD", "fzC", "fzD"], rows))
