"""Ablation A2 — block size and thread-block (outlier) granularity.

DESIGN.md design decision 1.  Two sweeps:

* **block size** — smaller blocks adapt code lengths more finely (better
  entropy fit) but pay one code-length byte per block; 32 is the paper's
  sweet spot.
* **outlier granularity** — fZ-light stores one outlier per *thread-block*;
  ompSZp stores one per *small block*.  Sweeping fZ-light's thread-block
  count shows the outlier overhead directly (more thread-blocks → more
  outliers → marginally lower ratio), the mechanism behind the Table III
  CESM-ATM gap.
"""

from __future__ import annotations


from repro.bench.tables import format_table
from repro.compression import FZLight, check_error_bound, resolve_error_bound

from conftest import cached_field

REL = 1e-3


def sweep_block_size():
    data = cached_field("cesm", 0)
    eb = resolve_error_bound(data, rel_eb=REL)
    rows, ratios = [], {}
    for bs in (8, 16, 32, 64, 128):
        comp = FZLight(block_size=bs)
        field = comp.compress(data, abs_eb=eb)
        assert check_error_bound(data, comp.decompress(field), eb)
        ratios[bs] = field.compression_ratio
        rows.append([bs, field.compression_ratio, field.nbytes])
    return rows, ratios


def sweep_outlier_granularity():
    data = cached_field("cesm", 0)
    eb = resolve_error_bound(data, rel_eb=REL)
    rows, ratios = [], {}
    for n_tb in (1, 18, 36, 360, 3600):
        comp = FZLight(n_threadblocks=n_tb)
        field = comp.compress(data, abs_eb=eb)
        ratios[n_tb] = field.compression_ratio
        rows.append([n_tb, field.outliers.size, field.compression_ratio])
    return rows, ratios


def test_ablation_block_size(benchmark):
    rows, ratios = benchmark.pedantic(sweep_block_size, rounds=1, iterations=1)
    print()
    print(
        format_table(
            ["block size", "ratio", "compressed bytes"],
            rows,
            title="Ablation A2a: block-size sweep (CESM-ATM, REL 1e-3)",
        )
    )
    # extremes lose to the middle: tiny blocks pay metadata, huge blocks
    # lose code-length adaptivity
    best = max(ratios, key=ratios.get)
    assert best in (16, 32, 64), ratios


def test_ablation_outlier_granularity():
    rows, ratios = sweep_outlier_granularity()
    print()
    print(
        format_table(
            ["thread-blocks", "outliers stored", "ratio"],
            rows,
            title="Ablation A2b: outlier granularity (fewer outliers ⇒ "
            "higher ratio — fZ-light's Table III advantage)",
        )
    )
    assert ratios[1] >= ratios[3600], "outlier overhead must show up"
    # the effect is monotone-ish across two orders of magnitude
    assert ratios[18] > ratios[3600]
