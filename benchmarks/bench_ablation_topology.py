"""Ablation A5 — interconnect-topology sensitivity of the co-design.

The paper evaluates on one fabric (fat-tree Omni-Path).  How much of
hZCCL's advantage depends on that topology's congestion law?  This
ablation re-evaluates the Figure-12 sweep on three fabrics with identical
wire speed but different congestion shapes.

Expected shape: the compressed collectives win on every fabric at scale,
but the *growth* of the advantage with node count tracks how quickly the
fabric congests — strongest on the torus, cliff-shaped on the dragonfly.
"""

from __future__ import annotations


from repro.bench.tables import format_table
from repro.core.cost_model import (
    PAPER_BROADWELL,
    model_hzccl_allreduce,
    model_mpi_allreduce,
)
from repro.runtime.fabrics import DragonflyNetwork, FatTreeNetwork, TorusNetwork

TOTAL = 646_000_000
NODES = (8, 64, 512)

FABRICS = {
    "fat-tree": FatTreeNetwork(congestion_per_log2=0.9),
    "3-D torus": TorusNetwork(),
    "dragonfly": DragonflyNetwork(),
}


def sweep():
    rows, series = [], {}
    for name, fabric in FABRICS.items():
        speedups = []
        for n in NODES:
            mpi = model_mpi_allreduce(n, TOTAL, PAPER_BROADWELL, fabric, True).total_time
            hz = model_hzccl_allreduce(n, TOTAL, PAPER_BROADWELL, fabric, True).total_time
            speedups.append(mpi / hz)
        series[name] = speedups
        rows.append([name] + speedups)
    return rows, series


def test_ablation_topology(benchmark):
    rows, series = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print(
        format_table(
            ["fabric"] + [f"{n} nodes" for n in NODES],
            rows,
            title="Ablation A5: hZCCL MT Allreduce speedup over MPI by fabric "
            "(646 MB)",
        )
    )
    # compressed collectives win at scale on every fabric
    for name, speedups in series.items():
        assert speedups[-1] > 1.0, name
    # the torus congests fastest ⇒ largest 512-node gain
    assert series["3-D torus"][-1] >= max(
        series["fat-tree"][-1], series["dragonfly"][-1]
    ) * 0.95
    # (the dragonfly's saturation cliff is asserted on the congestion law
    # itself below — at the speedup level the per-op overhead of 512 ranks
    # partially masks it)


def test_fabric_congestion_shapes():
    """Pin the qualitative congestion laws themselves."""
    torus = TorusNetwork()
    fat = FatTreeNetwork(congestion_per_log2=0.9)
    fly = DragonflyNetwork()
    # torus grows polynomially: doubling nodes at large N grows it more
    # than the fat-tree's constant log increment
    assert (torus.congestion_factor(1024) - torus.congestion_factor(512)) > (
        fat.congestion_factor(1024) - fat.congestion_factor(512)
    )
    # dragonfly is ~flat below saturation, then cliffs
    assert fly.congestion_factor(64) < 1.5
    assert fly.congestion_factor(256) > 2.0
