"""Figure 11 — Allreduce vs MPI and C-Coll across message sizes (64 nodes).

Paper: up to 600 MB; hZCCL reaches 1.96× (ST) and 5.35× (MT) over MPI,
growing with the data size, and beats C-Coll everywhere.
"""

from __future__ import annotations


from repro.bench.tables import format_table
from repro.core.cost_model import (
    PAPER_BROADWELL,
    matched_network,
    model_ccoll_allreduce,
    model_hzccl_allreduce,
    model_mpi_allreduce,
)
from repro.runtime.network import OMNIPATH_100G

from conftest import measured_rates

N_NODES = 64
SIZES_MB = (10, 50, 100, 200, 400, 600)


def sweep(rates, network):
    rows = []
    series = {("hz", False): [], ("hz", True): [], ("cc", False): [], ("cc", True): []}
    for mb in SIZES_MB:
        total = mb * 10**6
        for mt in (False, True):
            mpi = model_mpi_allreduce(N_NODES, total, rates, network, mt).total_time
            cc = model_ccoll_allreduce(N_NODES, total, rates, network, mt).total_time
            hz = model_hzccl_allreduce(N_NODES, total, rates, network, mt).total_time
            series[("cc", mt)].append(mpi / cc)
            series[("hz", mt)].append(mpi / hz)
            rows.append([mb, "MT" if mt else "ST", mpi, cc, hz, mpi / cc, mpi / hz])
    return rows, series


def test_fig11_paper_rates():
    rows, series = sweep(PAPER_BROADWELL, OMNIPATH_100G)
    print()
    print(
        format_table(
            ["MB", "mode", "MPI s", "C-Coll s", "hZCCL s",
             "C-Coll speedup", "hZCCL speedup"],
            rows,
            title=f"Figure 11 (modelled, paper rates, {N_NODES} nodes): "
            "Allreduce vs message size (paper: up to 1.96x ST / 5.35x MT)",
        )
    )
    for (kernel, mt), speedups in series.items():
        for s in speedups[1:]:
            assert s > 1.0, (kernel, mt)
        assert speedups[-1] > speedups[0], (kernel, mt)
        assert speedups == sorted(speedups), (kernel, mt)
    for i in range(len(SIZES_MB)):
        for mt in (False, True):
            assert series[("hz", mt)][i] > series[("cc", mt)][i]
    assert 1.2 < max(series[("hz", False)]) < 2.8
    assert 3.2 < max(series[("hz", True)]) < 7.5


def test_fig11_measured_rates():
    rates = measured_rates()
    rows, series = sweep(rates, matched_network(OMNIPATH_100G, rates))
    print()
    print(
        format_table(
            ["MB", "mode", "MPI s", "C-Coll s", "hZCCL s",
             "C-Coll speedup", "hZCCL speedup"],
            rows,
            title=f"Figure 11 (modelled, measured rates, {N_NODES} nodes)",
        )
    )
    for kernel in ("cc", "hz"):
        assert series[(kernel, True)][-1] > 1.0, kernel
    # hZCCL's fused Allreduce ties-or-beats C-Coll even on this substrate
    # at the largest sizes (fewer DPR passes compensate for costlier HPR)
    assert series[("hz", True)][-1] > series[("cc", True)][-1] * 0.85


if __name__ == "__main__":  # pragma: no cover
    print(sweep(PAPER_BROADWELL, OMNIPATH_100G)[0])
