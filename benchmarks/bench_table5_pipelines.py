"""Table V — hZ-dynamic pipeline-selection percentages and throughput.

Paper (REL 1e-3, reducing two fields per dataset):

=============  ========  ======  ==========================
Dataset        Speedup   GB/s    Dominant pipeline
=============  ========  ======  ==========================
NYX            50.01×    537.41  1 (99.36 %)
Sim. Set. 1    25.95×    156.36  1 + 3 (53.8 % / 46.2 %)
Hurricane      20.58×    79.49   3 (99.25 %)
Sim. Set. 2    8.87×     71.56   1 (84.5 %)
CESM-ATM       2.62×     9.00    4 (88.6 %)
=============  ========  ======  ==========================

Here: the same reduction of two consecutive fields (ordered newer-first so
one-sided blocks land in pipeline 3, matching the paper's convention).
Expected shape: NYX/Sim-2 pipeline-1-dominated with the largest speedups
over the DOC workflow; Hurricane pipeline-3; CESM-ATM pipeline-4 with the
smallest (but > 1) speedup.
"""

from __future__ import annotations


from repro.bench.tables import format_table
from repro.bench.timing import best_of, throughput_gbps
from repro.compression import FZLight, resolve_error_bound
from repro.datasets import dataset_names
from repro.homomorphic import HZDynamic

from conftest import cached_pair

REL = 1e-3


def measure():
    fz = FZLight()
    rows, mixes, speedups = [], {}, {}
    for name in dataset_names():
        a, b = cached_pair(name)
        eb = resolve_error_bound(a, rel_eb=REL)
        # newer snapshot first: one-sided blocks classify as pipeline 3
        ca, cb = fz.compress(b, abs_eb=eb), fz.compress(a, abs_eb=eb)
        engine = HZDynamic()
        t_hpr = best_of(lambda: engine.add(ca, cb), repeats=2).seconds
        da, db = fz.decompress(ca), fz.decompress(cb)

        def doc():
            fz.compress(fz.decompress(ca) + fz.decompress(cb), abs_eb=eb)

        t_doc = best_of(doc, repeats=2).seconds
        processed = 2 * a.nbytes
        engine.reset_stats()
        engine.add(ca, cb)
        pct = engine.stats.percentages
        mixes[name] = pct
        speedups[name] = t_doc / t_hpr
        rows.append(
            [name, t_doc / t_hpr, throughput_gbps(processed, t_hpr),
             pct[0], pct[1], pct[2], pct[3]]
        )
    return rows, mixes, speedups


def test_table5_pipelines(benchmark):
    rows, mixes, speedups = benchmark.pedantic(measure, rounds=1, iterations=1)
    print()
    print(
        format_table(
            ["dataset", "speedup vs DOC", "hZ-dyn GB/s", "P1 %", "P2 %", "P3 %", "P4 %"],
            rows,
            title="Table V: dynamic pipeline selection at REL 1e-3",
        )
    )
    # dominant-pipeline shape (Table V)
    assert mixes["nyx"][0] > 80, "NYX must be pipeline-1 dominated"
    assert mixes["cesm"][3] > 80, "CESM-ATM must be pipeline-4 dominated"
    assert mixes["hurricane"][1] + mixes["hurricane"][2] > 70, (
        "Hurricane must be one-sided dominated"
    )
    assert mixes["sim2"][0] > 50, "Sim-2 must be pipeline-1 heavy"
    # speedup ordering: every dataset beats DOC; CESM-ATM beats it least
    for name, s in speedups.items():
        assert s > 1.0, name
    assert speedups["cesm"] == min(speedups.values())
    assert speedups["nyx"] > speedups["cesm"] * 2


def test_hzdynamic_add_kernel(benchmark):
    fz = FZLight()
    a, b = cached_pair("nyx")
    eb = resolve_error_bound(a, rel_eb=REL)
    ca, cb = fz.compress(a, abs_eb=eb), fz.compress(b, abs_eb=eb)
    engine = HZDynamic(collect_stats=False)
    benchmark(lambda: engine.add(ca, cb))


if __name__ == "__main__":  # pragma: no cover
    rows, _, _ = measure()
    print(format_table(["ds", "speedup", "GB/s", "P1", "P2", "P3", "P4"], rows))
