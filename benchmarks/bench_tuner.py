"""Tuner gate — the tuned pick is never worse than the best static family.

``BENCH_tuner.json`` commits the full autotuning grid (64 KB – 64 MB,
n ∈ {8, 64, 256, 1024}, torus / dragonfly / fat-tree, smooth / rough),
with every candidate's modelled cost per point.  Three layers:

* the pytest gate recomputes the n ≤ 256 points exactly and compares
  them to the committed document bit-for-bit (any cost-model drift fails
  loudly here, with the offending point in the assertion message);
* the committed n=1024 points are re-*checked* against the gate
  invariants (argmin-ness, flat-pick consistency, candidate coverage)
  without rebuilding their ~1-minute flat-ring schedules;
* ``--check`` runs both layers from the command line for the CI
  ``tuner-gate`` job.

Deterministic by construction — every number is a closed-form
:func:`repro.schedule.cost.schedule_cost` dry run:

    PYTHONPATH=src python benchmarks/bench_tuner.py           # regenerate
    PYTHONPATH=src python benchmarks/bench_tuner.py --check   # CI gate
"""

from __future__ import annotations

import json
import pathlib
import sys

from repro.bench.tables import format_table
from repro.bench.tuner import (
    CHECK_RANKS,
    FABRICS,
    GRID_RANKS,
    GRID_SIZES_BYTES,
    ROUGHNESS,
    check_points,
    grid_sweep,
    tuner_rows,
)

BASELINE = pathlib.Path(__file__).resolve().parent.parent / "BENCH_tuner.json"


def _committed() -> list[dict]:
    return json.loads(BASELINE.read_text())["points"]


def test_committed_gate_holds_everywhere():
    """Every committed point — including n=1024 — passes the gate: the
    tuned pick is the argmin over every static family's modelled cost."""
    points = _committed()
    assert {p["n_ranks"] for p in points} == set(GRID_RANKS)
    assert len(points) == (
        len(GRID_RANKS) * len(FABRICS) * len(GRID_SIZES_BYTES) * len(ROUGHNESS)
    )
    check_points(points)


def test_small_grid_reproduces_committed():
    """The n ∈ {8, 64} half of the grid, recomputed exactly."""
    points = grid_sweep(ranks=(8, 64))
    committed = [p for p in _committed() if p["n_ranks"] in (8, 64)]
    assert committed == points
    check_points(points)


def test_n256_grid_reproduces_committed():
    """The n=256 column (the largest CI rebuilds its schedules for)."""
    points = grid_sweep(ranks=(256,))
    committed = [p for p in _committed() if p["n_ranks"] == 256]
    assert committed == points


def _print_rows(points: list[dict]) -> None:
    print(
        format_table(
            ["ranks", "KB", "fabric", "data", "pick", "ms", "vs ring-hz"],
            tuner_rows(points),
            title="Autotuned schedule picks (modelled, 8 ranks/node)",
        )
    )


def main(argv: list[str]) -> int:
    if "--check" in argv:
        points = _committed()
        check_points(points)
        recomputed = grid_sweep(ranks=CHECK_RANKS)
        committed_small = [
            p for p in points if p["n_ranks"] in set(CHECK_RANKS)
        ]
        if committed_small != recomputed:
            print("BENCH_tuner.json is stale: recomputed grid differs")
            return 1
        print(
            f"tuner gate ok: {len(points)} committed points pass, "
            f"n ∈ {CHECK_RANKS} reproduced exactly"
        )
        return 0
    points = grid_sweep()
    check_points(points)
    doc = {
        "rates": "PAPER_BROADWELL",
        "ranks_per_node": 8,
        "points": points,
    }
    BASELINE.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    _print_rows(points)
    print(f"wrote {BASELINE} ({len(points)} grid points)")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main(sys.argv[1:]))
