"""Fused k-way homomorphic reduction vs. sequential pairwise fold.

The fused kernel (``HZDynamic.reduce_fused``) classifies blocks once
across all ``k`` operands, copies single-contributor blocks verbatim, and
for genuinely shared blocks decodes each operand's deltas exactly once
into one int64 accumulator before a single re-encode: ``k`` decodes + 1
encode, versus the pairwise fold's ``(k−1)·(2 decodes + 1 encode)``.  The
advantage therefore grows with both the fan-in ``k`` and the fraction of
blocks that actually accumulate.

Operands are synthetic: each block of each operand is "active" (noisy,
well above the error bound) with probability ``p`` and constant-zero
otherwise, so ``p`` directly controls the block-zero density and which
engine strategy (sparse gather vs. dense full-stream) engages:

* ``sparse`` (p = 0.05) — most blocks constant or single-owner copies;
* ``mixed``  (p = 0.50) — balanced pipeline mix;
* ``dense``  (p = 1.00) — every block accumulates; the fused kernel takes
  its dense full-stream path (accumulate fraction > ``DENSE_THRESHOLD``).

Both schedules must produce byte-identical streams — the homomorphism is
exact in the integer domain and the encoder is deterministic — so each
cell of the table is also a correctness check.
"""

from __future__ import annotations

import numpy as np

from repro.bench.tables import format_table
from repro.bench.timing import best_of, throughput_gbps
from repro.compression import FZLight
from repro.homomorphic import HZDynamic

N_ELEMENTS = 400_000
BLOCK_SIZE = 32
ABS_EB = 1e-3
K_VALUES = (2, 4, 8, 16)
DENSITIES = (("sparse", 0.05), ("mixed", 0.50), ("dense", 1.00))
SEED = 20240624


def make_operands(k: int, p_active: float, rng: np.random.Generator):
    """``k`` compressed fields whose blocks are active with probability p."""
    comp = FZLight(block_size=BLOCK_SIZE)
    n_blocks = (N_ELEMENTS + BLOCK_SIZE - 1) // BLOCK_SIZE
    fields = []
    for _ in range(k):
        active = rng.random(n_blocks) < p_active
        data = np.zeros(N_ELEMENTS, dtype=np.float32)
        for b in np.nonzero(active)[0]:
            lo = int(b) * BLOCK_SIZE
            hi = min(lo + BLOCK_SIZE, N_ELEMENTS)
            data[lo:hi] = rng.normal(0.0, 50.0 * ABS_EB, hi - lo)
        fields.append(comp.compress(data, abs_eb=ABS_EB))
    return fields


def measure():
    rng = np.random.default_rng(SEED)
    rows, speedups = [], {}
    for kind, p in DENSITIES:
        for k in K_VALUES:
            fields = make_operands(k, p, rng)
            engine = HZDynamic(collect_stats=False)
            fold = best_of(
                lambda: engine.reduce(fields, order="sequential"), repeats=3
            ).seconds
            fused = best_of(lambda: engine.reduce_fused(fields), repeats=3).seconds
            # correctness: the two schedules must agree byte for byte
            a = engine.reduce(fields, order="sequential")
            b = engine.reduce_fused(fields)
            assert np.array_equal(a.payload, b.payload), (kind, k)
            assert np.array_equal(a.code_lengths, b.code_lengths), (kind, k)
            assert np.array_equal(a.outliers, b.outliers), (kind, k)
            processed = k * N_ELEMENTS * 4
            speedups[kind, k] = fold / fused
            rows.append(
                [
                    kind,
                    k,
                    fold * 1e3,
                    fused * 1e3,
                    fold / fused,
                    throughput_gbps(processed, fused),
                ]
            )
    return rows, speedups


def test_fused_reduce_speedup(benchmark):
    rows, speedups = benchmark.pedantic(measure, rounds=1, iterations=1)
    print()
    print(
        format_table(
            ["density", "k", "fold ms", "fused ms", "speedup", "fused GB/s"],
            rows,
            title="Fused k-way reduction vs sequential pairwise fold",
        )
    )
    # the fused kernel must clearly beat the fold at full fan-in ...
    for kind, _ in DENSITIES:
        assert speedups[kind, 16] >= 2.0, (kind, speedups[kind, 16])
    # ... and its advantage must grow with k
    for kind, _ in DENSITIES:
        assert speedups[kind, 16] > speedups[kind, 2], kind


if __name__ == "__main__":  # pragma: no cover
    rows, _ = measure()
    print(
        format_table(
            ["density", "k", "fold ms", "fused ms", "speedup", "fused GB/s"], rows
        )
    )
