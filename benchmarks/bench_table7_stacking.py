"""Table VII — image stacking performance analysis.

Paper: with abs eb 1e-4 (on O(1)-range imagery), hZCCL's Allreduce stacks
images 1.81× (ST) / 5.02× (MT) faster than MPI, beating C-Coll (1.45× /
3.34×); hZCCL cuts the CPR+CPT share of the runtime vs C-Coll in both
modes (ST 81.95 → 77.96 %, MT 59.04 → 38.61 %).

Here: functional stacking on simulated ranks for the breakdown columns
(structure) plus the §III-C model for the speedup columns at the paper's
scale.
"""

from __future__ import annotations


from repro.apps.image_stacking import make_exposures, stack_images
from repro.bench.tables import format_table
from repro.compression import resolve_error_bound
from repro.core.config import CollectiveConfig
from repro.core.cost_model import (
    PAPER_BROADWELL,
    matched_network,
    model_ccoll_allreduce,
    model_hzccl_allreduce,
    model_mpi_allreduce,
)
from repro.runtime.network import OMNIPATH_100G

from conftest import measured_rates

N_RANKS = 8
SHAPE = (512, 512)


def functional_breakdowns():
    scene, exposures = make_exposures(N_RANKS, shape=SHAPE, seed=42)
    eb = resolve_error_bound(exposures[0], rel_eb=1e-4)
    network = matched_network(OMNIPATH_100G, measured_rates())
    rows, results = [], {}
    for mt in (False, True):
        config = CollectiveConfig(error_bound=eb, network=network, multithread=mt)
        ref = stack_images(exposures, "mpi", config)
        for method in ("hzccl", "ccoll"):
            res = stack_images(exposures, method, config, reference=ref.stacked)
            pct = res.breakdown.percentages()
            doc = pct["CPR"] + pct["CPT"] + pct["HPR"] + pct["DPR"]
            results[(method, mt)] = (res, doc)
            rows.append(
                [f"{method} ({'MT' if mt else 'ST'})", doc, pct["MPI"],
                 pct["OTHER"], res.psnr, res.nrmse]
            )
    return rows, results


def test_table7_breakdowns(benchmark):
    rows, results = benchmark.pedantic(functional_breakdowns, rounds=1, iterations=1)
    print()
    print(
        format_table(
            ["kernel", "CPR+CPT %", "MPI %", "Others %", "PSNR dB", "NRMSE"],
            rows,
            title="Table VII (functional breakdown + accuracy): image "
            "stacking, 8 ranks (paper: hZCCL cuts the CPR+CPT share)",
        )
    )
    # multi-threading shifts time from compute to MPI for both kernels
    # (the Figure-2-style contrast); the hZCCL-vs-C-Coll share contrast is
    # carried by the model test below — noisy exposures are pipeline-4
    # dense, where this substrate's HPR:DPR balance deviates (EXPERIMENTS.md)
    for method in ("hzccl", "ccoll"):
        _, doc_st = results[(method, False)]
        _, doc_mt = results[(method, True)]
        assert doc_mt < doc_st, method
    # accuracy: paper reports PSNR 62 dB at eb 1e-4 — same order here
    for (method, mt), (res, _) in results.items():
        assert res.psnr > 55, (method, mt)
        assert res.nrmse < 5e-3, (method, mt)


def test_table7_speedups_modelled():
    """Speedup columns at the paper's scale via the cost model."""
    total = SHAPE[0] * SHAPE[1] * 4 * 64  # 64 exposures of this size
    rows, ratios = [], {}
    for mt in (False, True):
        mpi = model_mpi_allreduce(64, total, PAPER_BROADWELL, OMNIPATH_100G, mt).total_time
        cc = model_ccoll_allreduce(64, total, PAPER_BROADWELL, OMNIPATH_100G, mt).total_time
        hz = model_hzccl_allreduce(64, total, PAPER_BROADWELL, OMNIPATH_100G, mt).total_time
        ratios[mt] = (mpi / hz, mpi / cc)
        rows.append([f"hZCCL ({'MT' if mt else 'ST'})", mpi / hz])
        rows.append([f"C-Coll ({'MT' if mt else 'ST'})", mpi / cc])
    print()
    print(
        format_table(
            ["kernel", "speedup over MPI"],
            rows,
            title="Table VII (modelled speedups, 64 nodes; paper: hZCCL "
            "1.81/5.02, C-Coll 1.45/3.34)",
        )
    )
    for mt, (hz_speedup, cc_speedup) in ratios.items():
        assert hz_speedup > cc_speedup, mt
        assert hz_speedup > 1.0, mt


def test_table7_doc_share_contrast_modelled():
    """The paper's share contrast under its own rates: hZCCL spends a
    smaller fraction of its runtime in CPR+CPT than C-Coll (ST: 81.95 →
    77.96 %, MT: 59.04 → 38.61 %)."""
    total = SHAPE[0] * SHAPE[1] * 4 * 64
    for mt in (False, True):
        cc = model_ccoll_allreduce(64, total, PAPER_BROADWELL, OMNIPATH_100G, mt)
        hz = model_hzccl_allreduce(64, total, PAPER_BROADWELL, OMNIPATH_100G, mt)
        assert hz.doc_time / hz.total_time < cc.doc_time / cc.total_time, mt


if __name__ == "__main__":  # pragma: no cover
    print(functional_breakdowns()[0])
