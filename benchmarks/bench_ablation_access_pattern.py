"""Ablation A3 — contiguous vs interleaved block scheduling (memory access).

DESIGN.md design decision 2 / paper §III-B2: cuSZp's GPU-style round-robin
assignment makes CPU "threads" hop between distant small blocks; fZ-light's
multi-layer partitioning keeps every worker on contiguous memory.

ompSZp's ``n_threads`` knob *is* the interleave factor, so sweeping it
isolates the access-pattern cost with everything else held constant:
``n_threads=1`` is fully contiguous; larger values fragment the schedule.
"""

from __future__ import annotations


from repro.bench.tables import format_table
from repro.bench.timing import best_of
from repro.compression import OmpSZp, resolve_error_bound

from conftest import cached_field

REL = 1e-3


def sweep():
    data = cached_field("sim1", 0)
    eb = resolve_error_bound(data, rel_eb=REL)
    rows, times = [], {}
    for n_threads in (1, 4, 36, 144):
        omp = OmpSZp(n_threads=n_threads)
        field = omp.compress(data, abs_eb=eb)
        t_c = best_of(lambda: omp.compress(data, abs_eb=eb), repeats=4).seconds
        t_d = best_of(lambda: omp.decompress(field), repeats=4).seconds
        times[n_threads] = (t_c, t_d)
        rows.append([n_threads, 1e3 * t_c, 1e3 * t_d])
    return rows, times


def test_ablation_access_pattern(benchmark):
    rows, times = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print(
        format_table(
            ["interleave factor", "compress ms", "decompress ms"],
            rows,
            title="Ablation A3: block-schedule interleaving cost in ompSZp "
            "(contiguous=1 vs GPU-style round-robin)",
        )
    )
    # the contiguous schedule is never slower than heavy interleaving
    # beyond measurement noise (the NumPy port groups blocks by code length
    # either way, so the penalty is the gather order, a ~5-10% effect —
    # far smaller than the cache penalty the C code pays)
    t1_c, t1_d = times[1]
    t144_c, t144_d = times[144]
    assert t1_c <= t144_c * 1.3
    assert t1_d <= t144_d * 1.3


def test_interleaving_does_not_change_ratio():
    """The schedule is a pure layout choice — the stream size is identical."""
    data = cached_field("sim1", 0)
    eb = resolve_error_bound(data, rel_eb=REL)
    sizes = {
        n: OmpSZp(n_threads=n).compress(data, abs_eb=eb).nbytes for n in (1, 36)
    }
    assert sizes[1] == sizes[36]
