"""Shared fixtures for the benchmark harness.

Every ``bench_*`` module regenerates one table or figure of the paper (see
DESIGN.md §4).  Two knobs keep runs laptop-friendly:

* ``REPRO_BENCH_SCALE`` — volume fraction of the paper's dataset dims used
  for data-driven benches (default 0.02 ≈ a few-MB field).
* Modeled experiments (Figures 9–12) are instantaneous: they evaluate the
  §III-C cost formulas under both paper-derived and locally measured rates.

Benchmarks print paper-style tables as a side effect, so
``pytest benchmarks/ --benchmark-only -s`` doubles as the reproduction
report generator.
"""

from __future__ import annotations

import os
from functools import lru_cache

import numpy as np
import pytest

from repro.compression import FZLight, OmpSZp
from repro.core.cost_model import CostRates
from repro.datasets import dataset_names, generate_field, generate_pair

BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.02"))
BENCH_SEED = 20240624  # SC'24 submission vintage
REL_BOUNDS = (1e-1, 1e-2, 1e-3, 1e-4)


@lru_cache(maxsize=None)
def cached_field(name: str, index: int) -> np.ndarray:
    """Session-cached flattened dataset field at bench scale."""
    return generate_field(name, index, scale=BENCH_SCALE, seed=BENCH_SEED).ravel()


@lru_cache(maxsize=None)
def cached_pair(name: str) -> tuple[np.ndarray, np.ndarray]:
    a, b = generate_pair(name, scale=BENCH_SCALE, seed=BENCH_SEED)
    return a.ravel(), b.ravel()


@lru_cache(maxsize=None)
def measured_rates(name: str = "sim1", rel_eb: float = 1e-4) -> CostRates:
    """This machine's kernel rates on a dataset sample (used by the
    modelled figures alongside the paper-derived rates).

    The paper's absolute bound of 1e-4 corresponds to ~1e-4 *relative* on
    its O(1)-range RTM fields; our synthetic fields have other ranges, so
    the calibration uses the equivalent relative bound.
    """
    from repro.compression import resolve_error_bound

    a, b = cached_pair(name)
    eb = resolve_error_bound(a, rel_eb=rel_eb)
    return CostRates.measure(a, b, eb, repeats=3)


@pytest.fixture(scope="session")
def fzlight() -> FZLight:
    return FZLight()


@pytest.fixture(scope="session")
def ompszp() -> OmpSZp:
    return OmpSZp()


@pytest.fixture(scope="session", params=dataset_names())
def dataset_name(request) -> str:
    return request.param
