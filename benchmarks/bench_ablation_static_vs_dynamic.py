"""Ablation A1 — dynamic pipeline selection vs static homomorphic pipeline.

DESIGN.md design decision 3.  The static pipeline (HoSZp-style) applies
the IFE→add→FE treatment to *every* block; hZ-dynamic routes constant and
one-sided blocks to (near-)free pipelines.  The ablation quantifies what
the selection heuristic is worth per dataset: large on constant-heavy data
(NYX), nothing on dense data (CESM-ATM — where hZ-dynamic deliberately
falls back to the contiguous static strategy).

Outputs are asserted byte-identical: the heuristic is pure performance.
"""

from __future__ import annotations


from repro.bench.tables import format_table
from repro.bench.timing import best_of
from repro.compression import FZLight, resolve_error_bound
from repro.datasets import dataset_names
from repro.homomorphic import HZDynamic, StaticHomomorphic

from conftest import cached_pair

REL = 1e-3


def measure():
    fz = FZLight()
    dyn = HZDynamic(collect_stats=False)
    sta = StaticHomomorphic()
    rows, gains = [], {}
    for name in dataset_names():
        a, b = cached_pair(name)
        eb = resolve_error_bound(a, rel_eb=REL)
        ca, cb = fz.compress(a, abs_eb=eb), fz.compress(b, abs_eb=eb)
        assert dyn.add(ca, cb).to_bytes() == sta.add(ca, cb).to_bytes()
        t_dyn = best_of(lambda: dyn.add(ca, cb), repeats=3).seconds
        t_sta = best_of(lambda: sta.add(ca, cb), repeats=3).seconds
        gains[name] = t_sta / t_dyn
        rows.append([name, 1e3 * t_sta, 1e3 * t_dyn, t_sta / t_dyn])
    return rows, gains


def test_ablation_static_vs_dynamic(benchmark):
    rows, gains = benchmark.pedantic(measure, rounds=1, iterations=1)
    print()
    print(
        format_table(
            ["dataset", "static ms", "dynamic ms", "dynamic gain"],
            rows,
            title="Ablation A1: dynamic pipeline selection vs static "
            "homomorphic pipeline (REL 1e-3)",
        )
    )
    # constant-heavy data gains a lot; dense data must never lose
    assert gains["nyx"] > 3.0
    assert min(gains.values()) > 0.85
    assert gains["nyx"] > gains["cesm"]


def test_dense_fallback_is_static_equivalent():
    """On pipeline-4-dominated data the dynamic engine selects the
    contiguous strategy, so dynamic ≈ static in time (within noise)."""
    fz = FZLight()
    a, b = cached_pair("cesm")
    eb = resolve_error_bound(a, rel_eb=REL)
    ca, cb = fz.compress(a, abs_eb=eb), fz.compress(b, abs_eb=eb)
    t_dyn = best_of(lambda: HZDynamic(collect_stats=False).add(ca, cb), repeats=3).seconds
    t_sta = best_of(lambda: StaticHomomorphic().add(ca, cb), repeats=3).seconds
    assert 0.7 < t_sta / t_dyn < 1.4
