"""Figure 10 — Reduce_scatter scalability, 2 → 512 nodes, 646 MB RTM data.

Paper: speedup over MPI first *grows* with the node count (congestion
makes volume reduction more valuable), peaks at up to 1.9× (ST) / 5.85×
(MT), then *decreases and stabilises* toward 512 nodes (the scattered
output block shrinks, so per-operation compression overhead bites) —
still 1.46× / 4.12× at 512.

Here: the §III-C model with the paper-derived rates across the same node
axis; all three shape features are asserted.
"""

from __future__ import annotations


from repro.bench.tables import format_table
from repro.core.cost_model import (
    PAPER_BROADWELL,
    model_ccoll_reduce_scatter,
    model_hzccl_reduce_scatter,
    model_mpi_reduce_scatter,
)
from repro.runtime.network import OMNIPATH_100G

from conftest import measured_rates  # noqa: F401  (kept for interactive use)

TOTAL_BYTES = 646_000_000
NODES = (2, 4, 8, 16, 32, 64, 128, 256, 512)


def sweep():
    rows = []
    hz_speedups = {False: [], True: []}
    cc_speedups = {False: [], True: []}
    for n in NODES:
        for mt in (False, True):
            mpi = model_mpi_reduce_scatter(n, TOTAL_BYTES, PAPER_BROADWELL, OMNIPATH_100G, mt).total_time
            cc = model_ccoll_reduce_scatter(n, TOTAL_BYTES, PAPER_BROADWELL, OMNIPATH_100G, mt).total_time
            hz = model_hzccl_reduce_scatter(n, TOTAL_BYTES, PAPER_BROADWELL, OMNIPATH_100G, mt).total_time
            hz_speedups[mt].append(mpi / hz)
            cc_speedups[mt].append(mpi / cc)
            rows.append([n, "MT" if mt else "ST", mpi, cc, hz, mpi / cc, mpi / hz])
    return rows, hz_speedups, cc_speedups


def test_fig10_scalability():
    rows, hz, cc = sweep()
    print()
    print(
        format_table(
            ["nodes", "mode", "MPI s", "C-Coll s", "hZCCL s",
             "C-Coll speedup", "hZCCL speedup"],
            rows,
            title="Figure 10 (modelled, paper rates): Reduce_scatter vs node "
            "count, 646 MB (paper: peak 1.9x ST / 5.85x MT, 512-node "
            "1.46x / 4.12x)",
        )
    )
    for mt in (False, True):
        series = hz[mt]
        peak = max(series)
        peak_at = series.index(peak)
        # Shape 1: grows to an interior peak…
        assert 0 < peak_at < len(NODES) - 1, "peak must be interior"
        assert series[peak_at] > series[0]
        # Shape 2: …then declines toward 512 nodes but stays a win.
        assert series[-1] < peak
        assert series[-1] > 1.0
        # Shape 3: hZCCL above C-Coll on the whole axis (beyond 2 nodes).
        for i in range(1, len(NODES)):
            assert hz[mt][i] > cc[mt][i], NODES[i]
    # Magnitudes within the paper band (±40%)
    assert 1.1 < max(hz[False]) < 2.7
    assert 2.8 < max(hz[True]) < 8.2


def test_fig10_congestion_drives_growth():
    """Ablation on the mechanism: with congestion disabled, the speedup no
    longer grows with the node count (it is flat-to-falling) — evidence
    that the growth in Fig. 10 comes from congestion relief."""
    from dataclasses import replace

    flat_net = replace(OMNIPATH_100G, congestion_per_log2=0.0)
    speedups = []
    for n in (8, 64, 512):
        mpi = model_mpi_reduce_scatter(n, TOTAL_BYTES, PAPER_BROADWELL, flat_net, True).total_time
        hz = model_hzccl_reduce_scatter(n, TOTAL_BYTES, PAPER_BROADWELL, flat_net, True).total_time
        speedups.append(mpi / hz)
    assert speedups[-1] <= speedups[0] * 1.05


if __name__ == "__main__":  # pragma: no cover
    print(sweep()[0])
