"""Figure 9 — Reduce_scatter vs MPI and C-Coll across message sizes.

Paper: 64 Broadwell nodes, data sizes up to ~600 MB; hZCCL reaches up to
1.58× (ST) and 4.04× (MT) over plain MPI, and the advantage *grows with
message size* (larger messages congest the network more, so the volume
reduction pays more).

Here: the §III-C model swept over sizes under paper-derived rates (strict
shape assertions) and this machine's measured rates (reported).
"""

from __future__ import annotations


from repro.bench.tables import format_table
from repro.core.cost_model import (
    PAPER_BROADWELL,
    matched_network,
    model_ccoll_reduce_scatter,
    model_hzccl_reduce_scatter,
    model_mpi_reduce_scatter,
)
from repro.runtime.network import OMNIPATH_100G

from conftest import measured_rates

N_NODES = 64
SIZES_MB = (10, 50, 100, 200, 400, 600)


def sweep(rates, network):
    rows = []
    series = {("hz", False): [], ("hz", True): [], ("cc", False): [], ("cc", True): []}
    for mb in SIZES_MB:
        total = mb * 10**6
        for mt in (False, True):
            mpi = model_mpi_reduce_scatter(N_NODES, total, rates, network, mt).total_time
            cc = model_ccoll_reduce_scatter(N_NODES, total, rates, network, mt).total_time
            hz = model_hzccl_reduce_scatter(N_NODES, total, rates, network, mt).total_time
            series[("cc", mt)].append(mpi / cc)
            series[("hz", mt)].append(mpi / hz)
            rows.append(
                [mb, "MT" if mt else "ST", mpi, cc, hz, mpi / cc, mpi / hz]
            )
    return rows, series


def test_fig09_paper_rates():
    rows, series = sweep(PAPER_BROADWELL, OMNIPATH_100G)
    print()
    print(
        format_table(
            ["MB", "mode", "MPI s", "C-Coll s", "hZCCL s",
             "C-Coll speedup", "hZCCL speedup"],
            rows,
            title=f"Figure 9 (modelled, paper rates, {N_NODES} nodes): "
            "Reduce_scatter vs message size (paper: up to 1.58x ST / 4.04x MT)",
        )
    )
    # Shape 1: hZCCL beats C-Coll beats MPI at every size, both modes
    # (ST C-Coll crosses 1.0 a little later — skip the overhead-dominated
    # small sizes for it).
    for (kernel, mt), speedups in series.items():
        start = 2 if (kernel, mt) == ("cc", False) else 1
        for s in speedups[start:]:
            assert s > 1.0, (kernel, mt)
    for i in range(len(SIZES_MB)):
        for mt in (False, True):
            assert series[("hz", mt)][i] > series[("cc", mt)][i]
    # Shape 2: the speedup grows with the message size.
    for key, speedups in series.items():
        assert speedups[-1] > speedups[0], key
        assert speedups == sorted(speedups), key
    # Shape 3: magnitudes in the paper's band (±40%).
    assert 1.0 < max(series[("hz", False)]) < 2.3
    assert 2.4 < max(series[("hz", True)]) < 5.7


def test_fig09_measured_rates():
    rates = measured_rates()
    rows, series = sweep(rates, matched_network(OMNIPATH_100G, rates))
    print()
    print(
        format_table(
            ["MB", "mode", "MPI s", "C-Coll s", "hZCCL s",
             "C-Coll speedup", "hZCCL speedup"],
            rows,
            title=f"Figure 9 (modelled, measured rates, {N_NODES} nodes)",
        )
    )
    # Under NumPy rates the MT compressed kernels must still beat MPI and
    # grow with size; ST is reported (HPR:DPR deviation, EXPERIMENTS.md).
    for kernel in ("cc", "hz"):
        mt_series = series[(kernel, True)]
        assert mt_series[-1] > 1.0, kernel
        assert mt_series[-1] >= mt_series[0], kernel


if __name__ == "__main__":  # pragma: no cover
    print(sweep(PAPER_BROADWELL, OMNIPATH_100G)[0])
