"""Figure 6 — compression/decompression throughput: fZ-light vs ompSZp.

Paper: fZ-light beats ompSZp by 2.62–9.71× (compression) and
10.09–28.33× (decompression) at 36 threads on Broadwell.

Here: same kernels in NumPy.  Absolute GB/s are substrate-bound; the
expected *shape* is fZ-light > ompSZp in both directions on every dataset,
with the decompression gap at least as large as the compression gap
(ompSZp's interleaved gather/scatter hits its decode path twice).
"""

from __future__ import annotations

import pytest

from repro.bench.tables import format_table
from repro.bench.timing import best_of, throughput_gbps
from repro.compression import FZLight, OmpSZp, resolve_error_bound
from repro.datasets import dataset_names

from conftest import cached_field

RELS = (1e-2, 1e-4)


def sweep():
    fz, omp = FZLight(), OmpSZp()
    rows = []
    speedups = []
    for name in dataset_names():
        data = cached_field(name, 0)
        for rel in RELS:
            eb = resolve_error_bound(data, rel_eb=rel)
            f_field = fz.compress(data, abs_eb=eb)
            o_field = omp.compress(data, abs_eb=eb)
            t = {
                "fz_c": best_of(lambda: fz.compress(data, abs_eb=eb), repeats=3).seconds,
                "fz_d": best_of(lambda: fz.decompress(f_field), repeats=3).seconds,
                "omp_c": best_of(lambda: omp.compress(data, abs_eb=eb), repeats=3).seconds,
                "omp_d": best_of(lambda: omp.decompress(o_field), repeats=3).seconds,
            }
            g = {k: throughput_gbps(data.nbytes, v) for k, v in t.items()}
            rows.append(
                [name, f"{rel:.0e}", g["fz_c"], g["omp_c"], g["fz_c"] / g["omp_c"],
                 g["fz_d"], g["omp_d"], g["fz_d"] / g["omp_d"]]
            )
            speedups.append((name, rel, g["fz_c"] / g["omp_c"], g["fz_d"] / g["omp_d"]))
    return rows, speedups


def test_fig06_throughput(benchmark):
    rows, speedups = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print(
        format_table(
            ["dataset", "REL", "fZ comp GB/s", "omp comp GB/s", "comp speedup",
             "fZ deco GB/s", "omp deco GB/s", "deco speedup"],
            rows,
            title="Figure 6: throughput fZ-light vs ompSZp "
            "(paper: 2.6-9.7x comp, 10-28x deco)",
        )
    )
    comp_wins = sum(1 for _, _, c, _ in speedups if c > 1.0)
    deco_wins = sum(1 for _, _, _, d in speedups if d > 1.0)
    # fZ-light should win (nearly) everywhere.  The dense 2-D/patchy cells
    # (CESM-ATM, Hurricane at loose bounds) sit within ~20% of parity on
    # this substrate and flip under machine noise — allow three such cells
    # for compression while decompression stays a clean sweep.
    assert comp_wins >= len(speedups) - 3, "fZ-light must win compression"
    assert deco_wins >= len(speedups) - 1, "fZ-light must win decompression"
    # (The paper's decompression gap is the larger one — 10-28x vs
    # 2.6-9.7x; in this NumPy port the two gaps land in the same band, so
    # only the win/loss shape is asserted.  See EXPERIMENTS.md.)


def test_fzlight_compress_kernel(benchmark):
    """Raw fZ-light compression kernel timing (pytest-benchmark stats)."""
    fz = FZLight()
    data = cached_field("sim1", 0)
    eb = resolve_error_bound(data, rel_eb=1e-4)
    benchmark(lambda: fz.compress(data, abs_eb=eb))


def test_fzlight_decompress_kernel(benchmark):
    fz = FZLight()
    data = cached_field("sim1", 0)
    field = fz.compress(data, abs_eb=resolve_error_bound(data, rel_eb=1e-4))
    benchmark(lambda: fz.decompress(field))


def test_ompszp_compress_kernel(benchmark):
    omp = OmpSZp()
    data = cached_field("sim1", 0)
    eb = resolve_error_bound(data, rel_eb=1e-4)
    benchmark(lambda: omp.compress(data, abs_eb=eb))


if __name__ == "__main__":  # pragma: no cover
    rows, _ = sweep()
    print(format_table(["dataset", "REL", "fZc", "ompc", "cX", "fZd", "ompd", "dX"], rows))
