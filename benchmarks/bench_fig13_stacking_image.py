"""Figure 13 — visual fidelity of the hZCCL-stacked image.

Paper: at abs eb 1e-4 the hZCCL stack reaches PSNR 62.00 dB and NRMSE
8.0e-4 against the uncompressed MPI stack, with no visible difference.

Here: the same comparison, numerically — per-pixel difference statistics,
PSNR/NRMSE, and an ASCII rendering of the difference map (all differences
sit below the quantisation grid, so the map is visually blank).  The
stacked arrays are also written to ``fig13_*.npy`` for external viewing.
"""

from __future__ import annotations

import os

import numpy as np

from repro.apps.image_stacking import make_exposures, stack_images
from repro.bench.tables import format_table
from repro.compression import resolve_error_bound
from repro.core.config import CollectiveConfig

N_RANKS = 16
SHAPE = (256, 256)


def run():
    scene, exposures = make_exposures(N_RANKS, shape=SHAPE, seed=7)
    # paper-equivalent bound: 1e-4 of the pixel range
    eb = resolve_error_bound(exposures[0], rel_eb=1e-4)
    config = CollectiveConfig(error_bound=eb)
    ref = stack_images(exposures, "mpi", config)
    hz = stack_images(exposures, "hzccl", config, reference=ref.stacked)
    diff = np.abs(hz.stacked.astype(np.float64) - ref.stacked.astype(np.float64))
    return scene, ref, hz, diff, eb


def _ascii_heatmap(diff: np.ndarray, cell: int = 16) -> str:
    """Coarse ASCII rendering of the difference map."""
    h, w = diff.shape
    glyphs = " .:-=+*#%@"
    peak = diff.max() or 1.0
    lines = []
    for y in range(0, h, h // cell):
        row = ""
        for x in range(0, w, w // cell):
            v = diff[y : y + h // cell, x : x + w // cell].mean() / peak
            row += glyphs[min(int(v * (len(glyphs) - 1)), len(glyphs) - 1)]
        lines.append(row)
    return "\n".join(lines)


def test_fig13_visual_fidelity(benchmark):
    scene, ref, hz, diff, eb = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(
        format_table(
            ["metric", "value", "paper"],
            [
                ["PSNR (dB)", hz.psnr, "62.00"],
                ["NRMSE", hz.nrmse, "8.0e-4"],
                ["max |diff|", float(diff.max()), "-"],
                ["mean |diff|", float(diff.mean()), "-"],
                ["pixels over eb", int((diff > eb).sum()), "0 expected"],
            ],
            title="Figure 13: hZCCL stack vs uncompressed MPI stack",
        )
    )
    print("difference map (should be blank / uniform noise):")
    print(_ascii_heatmap(diff))
    # numerical fidelity claims
    assert hz.psnr > 55.0
    assert hz.nrmse < 5e-3
    # every pixel within the quantisation bound → "no visual difference"
    assert float(diff.max()) <= eb * 1.01
    out_dir = os.environ.get("REPRO_FIG13_DIR")
    if out_dir:
        np.save(os.path.join(out_dir, "fig13_mpi_stack.npy"), ref.stacked)
        np.save(os.path.join(out_dir, "fig13_hzccl_stack.npy"), hz.stacked)


def test_fig13_stacking_improves_snr():
    """Sanity: stacking actually denoises relative to one exposure."""
    scene, exposures = make_exposures(N_RANKS, shape=SHAPE, seed=7)
    hz = stack_images(exposures, "hzccl", CollectiveConfig(
        error_bound=resolve_error_bound(exposures[0], rel_eb=1e-4)
    ))
    single_rms = float(np.sqrt(np.mean((exposures[0] - scene) ** 2)))
    stack_rms = float(np.sqrt(np.mean((hz.stacked - scene) ** 2)))
    assert stack_rms < single_rms / 2.5  # ~1/sqrt(16) + compression error
