"""Figure 12 — Allreduce scalability, 2 → 512 nodes, 646 MB RTM data.

Paper: hZCCL peaks at 2.12× (ST) / 6.77× (MT) over MPI; unlike
Reduce_scatter the decline past the peak is only slight because the
Allreduce output size does not shrink with the node count — still 1.88× /
5.58× at 512 nodes.
"""

from __future__ import annotations


from repro.bench.tables import format_table
from repro.core.cost_model import (
    PAPER_BROADWELL,
    model_ccoll_allreduce,
    model_hzccl_allreduce,
    model_hzccl_reduce_scatter,
    model_mpi_allreduce,
    model_mpi_reduce_scatter,
)
from repro.runtime.network import OMNIPATH_100G

TOTAL_BYTES = 646_000_000
NODES = (2, 4, 8, 16, 32, 64, 128, 256, 512)


def sweep():
    rows = []
    hz = {False: [], True: []}
    cc = {False: [], True: []}
    for n in NODES:
        for mt in (False, True):
            t_mpi = model_mpi_allreduce(n, TOTAL_BYTES, PAPER_BROADWELL, OMNIPATH_100G, mt).total_time
            t_cc = model_ccoll_allreduce(n, TOTAL_BYTES, PAPER_BROADWELL, OMNIPATH_100G, mt).total_time
            t_hz = model_hzccl_allreduce(n, TOTAL_BYTES, PAPER_BROADWELL, OMNIPATH_100G, mt).total_time
            hz[mt].append(t_mpi / t_hz)
            cc[mt].append(t_mpi / t_cc)
            rows.append([n, "MT" if mt else "ST", t_mpi, t_cc, t_hz, t_mpi / t_cc, t_mpi / t_hz])
    return rows, hz, cc


def test_fig12_scalability():
    rows, hz, cc = sweep()
    print()
    print(
        format_table(
            ["nodes", "mode", "MPI s", "C-Coll s", "hZCCL s",
             "C-Coll speedup", "hZCCL speedup"],
            rows,
            title="Figure 12 (modelled, paper rates): Allreduce vs node "
            "count, 646 MB (paper: peak 2.12x ST / 6.77x MT, 512-node "
            "1.88x / 5.58x)",
        )
    )
    for mt in (False, True):
        series = hz[mt]
        peak = max(series)
        # grows from small N, wins beyond 4 nodes, holds at 512
        assert series[0] < peak
        for i, n in enumerate(NODES):
            if n >= 8:
                assert series[i] > 1.0, n
                assert series[i] > cc[mt][i], n
        assert series[-1] > 1.0
        # Allreduce's decline past the peak is limited (paper: 18% off
        # peak; our model lands near 25%), and strictly smaller than
        # Reduce_scatter's — the cross-figure contrast is asserted below.
        assert series[-1] > 0.7 * peak
    assert 1.3 < max(hz[False]) < 3.0
    assert 3.5 < max(hz[True]) < 9.0


def test_fig12_ar_declines_less_than_rs():
    """The paper's explicit cross-figure claim: Reduce_scatter loses more
    of its peak speedup at 512 nodes than Allreduce does."""
    def drop(model_kernel, model_mpi):
        speedups = []
        for n in NODES:
            mpi = model_mpi(n, TOTAL_BYTES, PAPER_BROADWELL, OMNIPATH_100G, True).total_time
            ker = model_kernel(n, TOTAL_BYTES, PAPER_BROADWELL, OMNIPATH_100G, True).total_time
            speedups.append(mpi / ker)
        return (max(speedups) - speedups[-1]) / max(speedups)

    rs_drop = drop(model_hzccl_reduce_scatter, model_mpi_reduce_scatter)
    ar_drop = drop(model_hzccl_allreduce, model_mpi_allreduce)
    assert ar_drop < rs_drop


if __name__ == "__main__":  # pragma: no cover
    print(sweep()[0])
