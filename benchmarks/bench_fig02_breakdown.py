"""Figure 2 — performance breakdown of C-Coll-accelerated ring Allreduce.

Paper setup: 16 Broadwell nodes; DPR+CPT+CPR dominates C-Coll's runtime at
78.18 % (single-thread) and 52.26 % (multi-thread), with MPI at 21.56 % /
47.02 %.

Here: a *functional* run on 16 simulated ranks with seismic snapshot data.
Compute times are measured around the real kernels; the link is scaled to
this machine's substrate (see ``matched_network``).  Expected shape: the
DOC share dominates in ST mode and drops substantially in MT mode while
the MPI share rises.
"""

from __future__ import annotations

import numpy as np

from repro.bench.tables import format_table
from repro.collectives import ccoll_allreduce
from repro.core.config import CollectiveConfig
from repro.core.cost_model import matched_network
from repro.runtime.cluster import SimCluster
from repro.runtime.network import OMNIPATH_100G

from conftest import cached_field, measured_rates

N_RANKS = 16


def _local_data() -> list[np.ndarray]:
    base = cached_field("sim1", 0)
    n = min(base.size, 400_000)
    rng = np.random.default_rng(1)
    return [
        (base[:n] * (1.0 + 0.01 * r) + rng.normal(0, 1e-4, n).astype(np.float32))
        for r in range(N_RANKS)
    ]


def _run(multithread: bool) -> dict[str, float]:
    from repro.compression import resolve_error_bound

    network = matched_network(OMNIPATH_100G, measured_rates())
    eb = resolve_error_bound(_local_data()[0], rel_eb=1e-4)
    config = CollectiveConfig(
        error_bound=eb, network=network, multithread=multithread
    )
    cluster = SimCluster(
        N_RANKS, network=network, multithread=multithread,
        thread_speedup=config.thread_speedup,
    )
    res = ccoll_allreduce(cluster, _local_data(), config)
    pct = res.breakdown.percentages()
    doc = pct["CPR"] + pct["DPR"] + pct["CPT"] + pct["HPR"]
    return {"DPR+CPT+CPR": doc, "MPI": pct["MPI"], "OTHER": pct["OTHER"]}


def test_fig02_breakdown(benchmark):
    st = _run(multithread=False)
    mt = benchmark.pedantic(lambda: _run(multithread=True), rounds=1, iterations=1)
    print()
    print(
        format_table(
            ["mode", "DPR+CPT+CPR %", "MPI %", "OTHER %"],
            [
                ["C-Coll (ST)", st["DPR+CPT+CPR"], st["MPI"], st["OTHER"]],
                ["C-Coll (MT)", mt["DPR+CPT+CPR"], mt["MPI"], mt["OTHER"]],
            ],
            title="Figure 2: C-Coll ring Allreduce breakdown, 16 ranks "
            "(paper: ST 78.18/21.56, MT 52.26/47.02)",
        )
    )
    # Shape assertions from the paper
    assert st["DPR+CPT+CPR"] > st["MPI"], "ST mode must be DOC-dominated"
    assert mt["DPR+CPT+CPR"] < st["DPR+CPT+CPR"], "MT shrinks the DOC share"
    assert mt["MPI"] > st["MPI"], "MT raises the MPI share"


if __name__ == "__main__":  # pragma: no cover
    st, mt = _run(False), _run(True)
    print(st, mt)
