"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``info``        — package, registry and calibration summary.
``stream``      — run the STREAM memory benchmark.
``compress``    — compress/roundtrip one dataset field, print the quality row.
``pipelines``   — hZ-dynamic pipeline mix for one dataset (Table V row).
``scaling``     — Figure 10/12 speedup curves from the cost model.
``stacking``    — the image-stacking demo (Table VII / Figure 13 shapes).
``chaos``       — run one collective under a seeded fault plan.
``bench-kernels`` — kernel perf harness; emits/compares BENCH_kernels.json.
``tune``        — schedule autotuner: grid sweep into a persisted tuning
                  table; ``show``/``diff`` to inspect tables.
``mp``          — multi-process data plane: ``run`` one schedule family on
                  real OS processes (verified bit-identical against the
                  simulator), ``calibrate`` to fit measured makespans back
                  into the α–β cost model (emits BENCH_mp.json).
``trace``       — observability: export (Chrome/CSV/schema-v2 JSON),
                  summary, and diff of collective traces.
"""

from __future__ import annotations

import argparse
import os
import sys

import numpy as np

__all__ = ["main", "build_parser"]

#: kept in sync with ``repro.bench.mp.FAMILIES`` (asserted by the test
#: suite) so building the parser never imports the bench stack
_MP_FAMILIES = (
    "ring-rs",
    "ring-rs-hz",
    "ring-rs-doc",
    "pipelined-rs",
    "rabenseifner",
    "direct-reduce",
    "batched-reduce",
    "bcast",
    "hierarchical",
    "hierarchical-hz",
)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="hZCCL (SC'24) reproduction — homomorphic-compression collectives",
    )
    parser.add_argument(
        "--kernel-backend",
        default=None,
        metavar="NAME",
        help="fixed-length kernel backend for this run (auto | numpy | numba; "
             "overrides the REPRO_KERNEL_BACKEND environment variable)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("info", help="package / registry / calibration summary")

    p = sub.add_parser("stream", help="STREAM memory-bandwidth benchmark")
    p.add_argument("--elements", type=int, default=20_000_000)
    p.add_argument("--repeats", type=int, default=5)

    p = sub.add_parser("compress", help="compress one synthetic dataset field")
    p.add_argument("dataset", choices=["sim1", "sim2", "nyx", "cesm", "hurricane"])
    p.add_argument("--rel-eb", type=float, default=1e-3)
    p.add_argument("--scale", type=float, default=0.02)
    p.add_argument("--baseline", action="store_true", help="also run ompSZp")

    p = sub.add_parser("pipelines", help="hZ-dynamic pipeline mix (Table V row)")
    p.add_argument("dataset", choices=["sim1", "sim2", "nyx", "cesm", "hurricane"])
    p.add_argument("--rel-eb", type=float, default=1e-3)
    p.add_argument("--scale", type=float, default=0.02)

    p = sub.add_parser("scaling", help="Figure 10/12 curves from the cost model")
    p.add_argument("--op", choices=["reduce_scatter", "allreduce"], default="allreduce")
    p.add_argument("--mb", type=int, default=646, help="message size in MB")

    p = sub.add_parser("stacking", help="image-stacking demo")
    p.add_argument("--ranks", type=int, default=8)
    p.add_argument("--size", type=int, default=256, help="square image side")

    p = sub.add_parser("chaos", help="run one collective under a seeded fault plan")
    p.add_argument("--op", choices=["allreduce", "reduce_scatter", "reduce", "bcast"],
                   default="allreduce")
    p.add_argument("--kernel", default="hzccl",
                   help="hzccl | ccoll | mpi (op-dependent; see `repro chaos -h`)")
    p.add_argument("--ranks", type=int, default=8)
    p.add_argument("--elements", type=int, default=4096, help="elements per rank")
    p.add_argument("--seed", type=int, default=0, help="fault-plan seed")
    p.add_argument("--drop", type=float, default=0.0, help="message drop rate")
    p.add_argument("--corrupt", type=float, default=0.0, help="payload corruption rate")
    p.add_argument("--truncate", type=float, default=0.0, help="payload truncation rate")
    p.add_argument("--duplicate", type=float, default=0.0, help="duplicate delivery rate")
    p.add_argument("--straggler", type=int, action="append", default=None,
                   metavar="RANK", help="straggler rank (repeatable)")
    p.add_argument("--straggler-factor", type=float, default=4.0,
                   help="compute slowdown for straggler ranks")

    p = sub.add_parser(
        "bench-kernels",
        help="per-kernel perf harness (encode/decode/select/reduce_fused)",
    )
    p.add_argument("--mb", type=float, default=16.0,
                   help="uncompressed field size in MB")
    p.add_argument("--repeats", type=int, default=3, help="best-of repeats")
    p.add_argument("--backend", action="append", default=None,
                   metavar="NAME",
                   help="backend to measure (repeatable; default: all available)")
    p.add_argument("--require", action="append", default=None,
                   metavar="NAME",
                   help="fail (exit 2, with the probe error) unless this "
                        "backend loaded (repeatable)")
    p.add_argument("--json", dest="json_path", default=None, metavar="PATH",
                   help="write the machine-readable document to PATH")
    p.add_argument("--compare", default=None, metavar="BASELINE",
                   help="compare against a committed BENCH_kernels.json; "
                        "non-zero exit on regression")
    p.add_argument("--tolerance", type=float, default=2.0,
                   help="allowed slowdown factor for --compare (default 2.0)")

    p = sub.add_parser(
        "bench-hierarchy",
        help="hierarchical vs flat allreduce sweep (model + executed)",
    )
    p.add_argument("--full", action="store_true",
                   help="include the n=1024 model grid (slow: the flat "
                        "ring schedule at 1024 ranks takes ~1 min to build)")
    p.add_argument("--skip-executed", action="store_true",
                   help="model grid only; skip the functional spot checks")
    p.add_argument("--json", dest="json_path", default=None, metavar="PATH",
                   help="write the machine-readable document to PATH")

    p = sub.add_parser(
        "tune", help="schedule autotuner: sweep a grid into a tuning table"
    )
    usub = p.add_subparsers(dest="tune_command", required=True)

    pr = usub.add_parser(
        "run", help="grid sweep -> tuning table (merged into an existing one)"
    )
    pr.add_argument("--ranks", type=int, action="append", default=None,
                    metavar="N", help="rank count (repeatable; default 8)")
    pr.add_argument("--size-kb", type=int, action="append", default=None,
                    metavar="KB",
                    help="message size in KiB (repeatable; "
                         "default 64 256 1024 4096)")
    pr.add_argument("--fabric", action="append", default=None,
                    choices=["torus", "dragonfly", "fattree"],
                    help="fabric model (repeatable; default: all three)")
    pr.add_argument("--calibration", default=None, metavar="BENCH_MP_JSON",
                    help="score candidates on the α–β network refit from a "
                         "measured BENCH_mp.json document instead of the "
                         "idealized fabrics (mutually exclusive with "
                         "--fabric; entries record the calibrated network)")
    pr.add_argument("--op", action="append", default=None,
                    choices=["allreduce", "reduce", "bcast"],
                    help="collective op to tune (repeatable; "
                         "default allreduce)")
    pr.add_argument("--roughness", action="append", default=None,
                    choices=["smooth", "rough"],
                    help="dataset roughness class (repeatable; default: both)")
    pr.add_argument("--ranks-per-node", type=int, default=8,
                    help="regular placement for the hierarchical candidates "
                         "(default 8; 1 disables them)")
    pr.add_argument("-o", "--output", default=None, metavar="PATH",
                    help="table path (default: config/$REPRO_TUNING_TABLE, "
                         "else TUNING_TABLE.json)")

    ps = usub.add_parser("show", help="print a tuning table")
    ps.add_argument("path", nargs="?", default=None,
                    help="table path (default: $REPRO_TUNING_TABLE)")

    pd = usub.add_parser("diff", help="compare two tuning tables (A -> B)")
    pd.add_argument("a", help="baseline table JSON")
    pd.add_argument("b", help="candidate table JSON")

    p = sub.add_parser(
        "mp", help="multi-process data plane: run schedules on real ranks"
    )
    msub = p.add_subparsers(dest="mp_command", required=True)

    pm = msub.add_parser(
        "run", help="run one schedule family on one OS process per rank"
    )
    pm.add_argument("--family", choices=_MP_FAMILIES, default="ring-rs",
                    help="schedule × codec case (default ring-rs)")
    pm.add_argument("--ranks", type=int, default=4)
    pm.add_argument("--elements", type=int, default=16384,
                    help="float32 elements per rank")
    pm.add_argument("--transport", choices=["shm", "socket"], default="shm",
                    help="shared-memory rings (default) or unix sockets")
    pm.add_argument("--seed", type=int, default=0, help="data seed")
    pm.add_argument("--chaos", type=float, default=0.0, metavar="INTENSITY",
                    help="inject a seeded FaultPlan.chaos at this intensity")
    pm.add_argument("--fault-seed", type=int, default=0,
                    help="fault-plan seed for --chaos")
    pm.add_argument("--no-verify", action="store_true",
                    help="skip the bit-identical check against the simulator")

    pc = msub.add_parser(
        "calibrate",
        help="measure makespans and fit them back into the α–β cost model",
    )
    pc.add_argument("--ranks", type=int, action="append", default=None,
                    metavar="N", help="rank count (repeatable; default 8)")
    pc.add_argument("--elements", type=int, action="append", default=None,
                    metavar="N",
                    help="float32 elements per rank "
                         "(repeatable; default 65536 262144)")
    pc.add_argument("--family", action="append", default=None,
                    choices=_MP_FAMILIES,
                    help="family to measure (repeatable; default: the "
                         "calibration set)")
    pc.add_argument("--transport", choices=["shm", "socket"], default="shm")
    pc.add_argument("--repeats", type=int, default=3,
                    help="best-of repeats per point (default 3)")
    pc.add_argument("-o", "--output", default=None, metavar="PATH",
                    help="write the BENCH_mp.json document to PATH")
    pc.add_argument("--check", action="store_true",
                    help="exit non-zero unless the fit passes the sanity "
                         "gate (finite coefficients, per-family model "
                         "error under the ceiling)")
    pc.add_argument("--ceiling", type=float, default=None,
                    help="model-error ceiling for --check "
                         "(default: the bench module's generous default)")

    p = sub.add_parser(
        "trace", help="trace observability: export / summary / diff"
    )
    tsub = p.add_subparsers(dest="trace_command", required=True)

    pe = tsub.add_parser(
        "export", help="run one traced collective and export its trace"
    )
    _add_trace_run_args(pe)
    pe.add_argument(
        "--format", choices=["chrome", "csv", "trace-json"], default="chrome",
        help="chrome = Perfetto-loadable trace_event JSON (default); "
             "csv = per-round per-bucket table; "
             "trace-json = raw TraceLog schema v2 (for `trace diff`)",
    )
    pe.add_argument("-o", "--output", default=None, metavar="PATH",
                    help="output file (default: trace_<op>_<kernel>.<ext>)")

    ps = tsub.add_parser(
        "summary", help="terminal digest of a saved trace or a fresh run"
    )
    ps.add_argument("path", nargs="?", default=None,
                    help="saved TraceLog JSON (schema v1/v2); "
                         "omit to run a collective instead")
    _add_trace_run_args(ps)
    ps.add_argument("--metrics", action="store_true",
                    help="collect and print the metrics registry "
                         "(fresh runs only)")

    pd = tsub.add_parser(
        "diff", help="compare two saved TraceLog JSON files (A -> B)"
    )
    pd.add_argument("a", help="baseline trace JSON")
    pd.add_argument("b", help="candidate trace JSON")
    return parser


def _add_trace_run_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("--op",
                   choices=["allreduce", "reduce_scatter", "reduce", "bcast"],
                   default="allreduce")
    p.add_argument("--kernel", default="hzccl",
                   help="hzccl | ccoll | mpi (op-dependent)")
    p.add_argument("--ranks", type=int, default=8)
    p.add_argument("--elements", type=int, default=4096,
                   help="elements per rank")
    p.add_argument("--seed", type=int, default=0, help="data seed")
    p.add_argument("--multithread", action="store_true",
                   help="multi-thread compression mode")


def _cmd_info() -> int:
    import repro
    from repro.core.cost_model import PAPER_BROADWELL
    from repro.datasets import DATASETS
    from repro.runtime.network import OMNIPATH_100G

    from repro.kernels.dispatch import backend_status, current_backend_name

    print(f"repro {repro.__version__} — hZCCL (SC 2024) reproduction")
    status = ", ".join(
        f"{name} ({'ok' if msg == 'ok' else 'unavailable'})"
        for name, msg in backend_status().items()
    )
    print(f"kernel backends: {status}; active: {current_backend_name()}")
    print(f"network model: {OMNIPATH_100G.bandwidth_Bps / 1e9:.1f} GB/s link, "
          f"{OMNIPATH_100G.latency_s * 1e6:.0f} µs latency, "
          f"congestion +{OMNIPATH_100G.congestion_per_log2}/log2(N)")
    print(f"paper rates (ST GB/s): CPR {1e-9 / PAPER_BROADWELL.cpr_s_per_byte:.1f} "
          f"DPR {1e-9 / PAPER_BROADWELL.dpr_s_per_byte:.1f} "
          f"HPR {1e-9 / PAPER_BROADWELL.hpr_s_per_byte:.1f}")
    print("datasets:")
    for spec in DATASETS.values():
        print(f"  {spec.name:10} {spec.n_fields:5d} fields of {spec.dims} — {spec.domain}")
    return 0


def _cmd_stream(args) -> int:
    from repro.bench.stream import run_stream

    print(run_stream(n_elements=args.elements, repeats=args.repeats))
    return 0


def _cmd_compress(args) -> int:
    from repro.bench.timing import best_of, throughput_gbps
    from repro.compression import FZLight, OmpSZp, evaluate_quality, resolve_error_bound
    from repro.datasets import generate_field

    data = generate_field(args.dataset, 0, scale=args.scale).ravel()
    eb = resolve_error_bound(data, rel_eb=args.rel_eb)
    compressors = {"fZ-light": FZLight()}
    if args.baseline:
        compressors["ompSZp"] = OmpSZp()
    for name, comp in compressors.items():
        field = comp.compress(data, abs_eb=eb)
        out = comp.decompress(field)
        report = evaluate_quality(data, out, field.nbytes)
        t = best_of(lambda: comp.compress(data, abs_eb=eb), repeats=2)
        print(f"{name:9} | {report} | compress {throughput_gbps(data.nbytes, t.seconds):.2f} GB/s")
    return 0


def _cmd_pipelines(args) -> int:
    from repro.compression import FZLight, resolve_error_bound
    from repro.datasets import generate_pair
    from repro.homomorphic import HZDynamic

    a, b = generate_pair(args.dataset, scale=args.scale)
    a, b = a.ravel(), b.ravel()
    eb = resolve_error_bound(a, rel_eb=args.rel_eb)
    comp = FZLight()
    engine = HZDynamic()
    engine.add(comp.compress(b, abs_eb=eb), comp.compress(a, abs_eb=eb))
    print(f"{args.dataset} @ REL {args.rel_eb:g}: {engine.stats}")
    return 0


def _cmd_scaling(args) -> int:
    from repro.bench.tables import format_table
    from repro.core.cost_model import (
        PAPER_BROADWELL,
        model_ccoll_allreduce,
        model_ccoll_reduce_scatter,
        model_hzccl_allreduce,
        model_hzccl_reduce_scatter,
        model_mpi_allreduce,
        model_mpi_reduce_scatter,
    )
    from repro.runtime.network import OMNIPATH_100G

    models = {
        "reduce_scatter": (
            model_mpi_reduce_scatter, model_ccoll_reduce_scatter, model_hzccl_reduce_scatter
        ),
        "allreduce": (model_mpi_allreduce, model_ccoll_allreduce, model_hzccl_allreduce),
    }[args.op]
    total = args.mb * 10**6
    rows = []
    for n in (2, 4, 8, 16, 32, 64, 128, 256, 512):
        row = [n]
        for mt in (False, True):
            mpi, cc, hz = (
                m(n, total, PAPER_BROADWELL, OMNIPATH_100G, mt).total_time for m in models
            )
            row += [mpi / cc, mpi / hz]
        rows.append(row)
    print(format_table(
        ["nodes", "C-Coll ST", "hZCCL ST", "C-Coll MT", "hZCCL MT"],
        rows,
        title=f"{args.op} speedup over MPI ({args.mb} MB, paper rates)",
    ))
    return 0


def _cmd_stacking(args) -> int:
    from repro.apps import make_exposures, stack_images
    from repro.compression import resolve_error_bound
    from repro.core.config import CollectiveConfig

    scene, exposures = make_exposures(args.ranks, shape=(args.size, args.size), seed=1)
    eb = resolve_error_bound(exposures[0], rel_eb=1e-4)
    config = CollectiveConfig(error_bound=eb)
    ref = stack_images(exposures, "mpi", config)
    hz = stack_images(exposures, "hzccl", config, reference=ref.stacked)
    print(f"{args.ranks} exposures of {args.size}x{args.size}")
    print(f"hZCCL stack: PSNR {hz.psnr:.2f} dB, NRMSE {hz.nrmse:.2e}, "
          f"wire {hz.bytes_on_wire / 1e6:.2f} MB vs MPI {ref.bytes_on_wire / 1e6:.2f} MB")
    single = float(np.sqrt(np.mean((exposures[0] - scene) ** 2)))
    stacked = float(np.sqrt(np.mean((hz.stacked - scene) ** 2)))
    print(f"noise RMS: {single:.3f} -> {stacked:.3f} ({single / stacked:.1f}x cleaner)")
    return 0


def _cmd_chaos(args) -> int:
    from repro.core.api import HZCCL
    from repro.core.config import CollectiveConfig
    from repro.runtime.faults import FaultPlan

    plan = FaultPlan(
        seed=args.seed,
        drop_rate=args.drop,
        corrupt_rate=args.corrupt,
        truncate_rate=args.truncate,
        duplicate_rate=args.duplicate,
        stragglers=tuple(args.straggler or ()),
        straggler_factor=args.straggler_factor if args.straggler else 1.0,
    )
    config = CollectiveConfig().with_faults(plan)
    lib = HZCCL(config)
    healthy = HZCCL(CollectiveConfig())
    rng = np.random.default_rng(args.seed)
    data = [
        np.cumsum(rng.standard_normal(args.elements)).astype(np.float32)
        for _ in range(args.ranks)
    ]
    if args.op == "bcast":
        result = lib.bcast(data[0], args.ranks, kernel=args.kernel)
        baseline = healthy.bcast(data[0], args.ranks, kernel=args.kernel)
    else:
        op = getattr(lib, args.op)
        result = op(data, kernel=args.kernel)
        baseline = getattr(healthy, args.op)(data, kernel=args.kernel)
    print(f"{args.op}/{args.kernel} over {args.ranks} ranks under {plan.describe()}")
    print(f"degraded to plain kernel: {result.degraded}")
    if result.fault_stats is not None:
        counters = {
            k: v for k, v in result.fault_stats.as_dict().items() if v
        }
        print(f"fault stats: {counters}")
    print(
        f"makespan {result.total_time * 1e3:.3f} ms "
        f"(fault-free {baseline.total_time * 1e3:.3f} ms), "
        f"wire {result.bytes_on_wire / 1e6:.2f} MB "
        f"(fault-free {baseline.bytes_on_wire / 1e6:.2f} MB)"
    )
    return 0


def _cmd_bench_kernels(args) -> int:
    import json
    from pathlib import Path

    from repro.bench.kernels import (
        compare_to_baseline,
        dumps,
        format_report,
        run_kernel_bench,
    )

    backends = tuple(args.backend) if args.backend else None
    require = tuple(args.require) if args.require else None
    try:
        doc = run_kernel_bench(
            mb=args.mb, repeats=args.repeats, backends=backends, require=require
        )
    except RuntimeError as exc:
        print(f"bench-kernels: {exc}", file=sys.stderr)
        return 2
    print(format_report(doc))
    if args.json_path:
        Path(args.json_path).write_text(dumps(doc))
        print(f"wrote {args.json_path}")
    if args.compare:
        baseline = json.loads(Path(args.compare).read_text())
        failures = compare_to_baseline(doc, baseline, tolerance=args.tolerance)
        if failures:
            print("PERF REGRESSION:")
            for f in failures:
                print(f"  {f}")
            return 1
        print(f"no regression vs {args.compare} (tolerance {args.tolerance}x)")
    return 0


def _cmd_bench_hierarchy(args) -> int:
    import json
    from pathlib import Path

    from repro.bench.hierarchy import (
        HZ_COMM_RTOL,
        executed_rows,
        executed_sweep,
        model_rows,
        model_sweep,
    )
    from repro.bench.tables import format_table

    ranks = (256, 1024) if args.full else (256,)
    doc = {"rates": "PAPER_BROADWELL", "ranks_per_node": 8,
           "model": model_sweep(ranks=ranks)}
    print(format_table(
        ["ranks", "MB", "fabric", "inter", "flat hz ms", "hier hz ms",
         "hz speedup", "mpi speedup"],
        model_rows(doc["model"]),
        title="Hierarchical vs flat allreduce (modelled, 8 ranks/node)",
    ))
    if not args.skip_executed:
        doc["executed"] = executed_sweep()
        print(format_table(
            ["ranks", "rpn", "mpi exec µs", "mpi model µs", "hz exec µs",
             "hz model µs", "hz exec/model", "wire ratio"],
            executed_rows(doc["executed"]),
            title=f"Executed vs modelled comm (tolerance {HZ_COMM_RTOL:.0%})",
        ))
    if args.json_path:
        Path(args.json_path).write_text(
            json.dumps(doc, indent=2, sort_keys=True) + "\n"
        )
        print(f"wrote {args.json_path}")
    return 0


def _cmd_mp(args) -> int:
    import json
    from pathlib import Path

    from repro.bench.mp import (
        CALIBRATION_FAMILIES,
        DEFAULT_ERROR_CEILING,
        build_case,
        calibrate,
        calibration_rows,
        check_document,
        sim_reference,
        states_equal,
    )
    from repro.bench.tables import format_table
    from repro.core.pipeline import Plan, execute
    from repro.runtime.faults import FaultPlan
    from repro.runtime.mp_cluster import MPCluster

    if args.mp_command == "run":
        plan = None
        if args.chaos > 0.0:
            plan = FaultPlan.chaos(
                args.fault_seed, args.ranks, intensity=args.chaos
            )
        case = build_case(
            args.family, args.ranks, args.elements, seed=args.seed
        )
        # the same schedule-backed Plan drives both data planes: here the
        # MP cluster, in sim_reference the simulated oracle
        plan_ = Plan.from_schedule(case.schedule, case.spec, family=case.family)
        with MPCluster(args.ranks, transport=args.transport) as cluster:
            run = execute(
                plan_, state=case.make_state(), cluster=cluster,
                fault_plan=plan,
            )
        print(
            f"{case.schedule.name} × {case.spec.kind} on {args.ranks} "
            f"processes ({args.transport})"
        )
        print(
            f"  makespan {run.makespan_s * 1e3:.3f} ms  "
            f"compute {run.compute_s * 1e3:.3f} ms  "
            f"wire {run.wire} B  degraded {run.degraded}"
        )
        interesting = {k: v for k, v in sorted(run.stats.items()) if v}
        if interesting:
            print("  " + "  ".join(f"{k} {v}" for k, v in interesting.items()))
        if args.no_verify:
            return 0
        ref = sim_reference(case, plan=plan)
        if run.degraded and ref.degraded:
            # schedule-level degrades abort at rank-dependent points; the
            # contract is the matching degraded flag, not matching state
            print("  verify: both degraded (flags match)")
            return 0
        ok = (
            states_equal(run.state, ref.state)
            and run.wire == ref.wire
            and run.degraded == ref.degraded
        )
        if not ok:
            print(
                f"  verify: MISMATCH vs simulator "
                f"(wire {run.wire} vs {ref.wire}, "
                f"degraded {run.degraded} vs {ref.degraded})"
            )
            return 1
        print(f"  verify: bit-identical to the simulator (wire {ref.wire} B)")
        return 0

    # calibrate
    doc = calibrate(
        ranks=tuple(args.ranks) if args.ranks else (8,),
        elements=tuple(args.elements) if args.elements else (65536, 262144),
        families=tuple(args.family) if args.family else CALIBRATION_FAMILIES,
        transport=args.transport,
        repeats=args.repeats,
    )
    print(format_table(
        ["family", "ranks", "elements", "measured µs", "modelled µs", "err"],
        calibration_rows(doc),
        title=(
            f"α = {doc['alpha_s'] * 1e6:.0f} µs/hop, "
            + (
                f"β⁻¹ = {doc['bandwidth_GBps']:.2f} GB/s, "
                if doc["bandwidth_GBps"]
                else "β⁻¹ = n/a (latency-bound fit), "
            )
            + f"worst family error {doc['max_rel_err']:.0%}"
        ),
    ))
    if args.output:
        Path(args.output).write_text(
            json.dumps(doc, indent=2, sort_keys=True) + "\n"
        )
        print(f"wrote {args.output}")
    if args.check:
        ceiling = (
            args.ceiling if args.ceiling is not None else DEFAULT_ERROR_CEILING
        )
        failures = check_document(doc, ceiling=ceiling)
        if failures:
            print("CALIBRATION GATE FAILED:")
            for f in failures:
                print(f"  {f}")
            return 1
        print(f"calibration gate passed (ceiling {ceiling:.0%})")
    return 0


def _cmd_tune(args) -> int:
    from repro.core.cost_model import PAPER_BROADWELL
    from repro.runtime import NodeMap
    from repro.schedule.tuner import (
        SCHEMA_VERSION,
        TuningTable,
        TuningTableError,
        resolve_table_path,
        tune_point,
    )

    def load_or_exit(path: str) -> TuningTable:
        try:
            return TuningTable.load(path)
        except TuningTableError as exc:
            raise SystemExit(str(exc))

    if args.tune_command == "show":
        path = args.path or resolve_table_path()
        if path is None:
            raise SystemExit("no table path given and $REPRO_TUNING_TABLE unset")
        table = load_or_exit(path)
        print(f"{path}: {len(table)} entries (schema {SCHEMA_VERSION})")
        for key in sorted(table.entries, key=lambda k: k.canonical()):
            e = table.entries[key]
            print(f"  {key.canonical():48s} {e.pick.slug():24s}"
                  f" {e.cost_s * 1e3:10.3f} ms")
        return 0

    if args.tune_command == "diff":
        a, b = load_or_exit(args.a), load_or_exit(args.b)
        print(f"{args.a} -> {args.b}")
        keys_a, keys_b = set(a.entries), set(b.entries)
        for key in sorted(keys_a - keys_b, key=lambda k: k.canonical()):
            print(f"  - {key.canonical()}")
        for key in sorted(keys_b - keys_a, key=lambda k: k.canonical()):
            e = b.entries[key]
            print(f"  + {key.canonical()} -> {e.pick.slug()}")
        changed = 0
        for key in sorted(keys_a & keys_b, key=lambda k: k.canonical()):
            ea, eb = a.entries[key], b.entries[key]
            if ea == eb:
                continue
            changed += 1
            print(f"  ~ {key.canonical()}: {ea.pick.slug()}"
                  f" ({ea.cost_s * 1e3:.3f} ms) -> {eb.pick.slug()}"
                  f" ({eb.cost_s * 1e3:.3f} ms)")
        print(f"{len(keys_b - keys_a)} added, {len(keys_a - keys_b)} removed, "
              f"{changed} changed, "
              f"{len(keys_a & keys_b) - changed} identical")
        return 0

    # run
    from repro.bench.tuner import FABRICS

    ranks = args.ranks or [8]
    sizes_kb = args.size_kb or [64, 256, 1024, 4096]
    roughness = args.roughness or ["smooth", "rough"]
    ops = args.op or ["allreduce"]
    out = args.output or resolve_table_path() or "TUNING_TABLE.json"

    if args.calibration:
        # satellite loop closed: score candidates on the network refit
        # from measured MP makespans, not the idealized fabric models
        if args.fabric:
            raise SystemExit(
                "--calibration and --fabric are mutually exclusive: a "
                "calibrated run scores on the measured network"
            )
        import json
        from pathlib import Path

        from repro.bench.mp import samples_from_document
        from repro.schedule.cost import fit_alpha_beta

        try:
            doc = json.loads(Path(args.calibration).read_text())
            samples = samples_from_document(doc)
        except FileNotFoundError:
            raise SystemExit(f"calibration file not found: {args.calibration}")
        except (ValueError, TypeError) as exc:
            raise SystemExit(
                f"{args.calibration} is not a calibration document: {exc}"
            )
        fit = fit_alpha_beta(samples)
        label = f"calibrated:{os.path.basename(args.calibration)}"
        networks = {label: fit.as_network()}
        print(
            f"calibrated network from {args.calibration}: "
            f"α = {fit.alpha_s * 1e6:.1f} µs/hop, "
            f"β⁻¹ = {1.0 / fit.beta_s_per_byte / 1e9:.2f} GB/s"
            if fit.beta_s_per_byte > 0
            else f"calibrated network from {args.calibration}: "
                 f"α = {fit.alpha_s * 1e6:.1f} µs/hop (latency-bound fit)"
        )
    else:
        fabrics = args.fabric or sorted(FABRICS)
        networks = {f: FABRICS[f] for f in fabrics}

    table = TuningTable()
    for n in ranks:
        rpn = min(args.ranks_per_node, n)
        nodemap = NodeMap.regular(n, rpn) if rpn > 1 else None
        for label, network in networks.items():
            for kb in sizes_kb:
                for rough in roughness:
                    for op in ops:
                        key, entry, _ = tune_point(
                            n, kb << 10, network, rough, PAPER_BROADWELL,
                            nodemap, op=op,
                            network_label=(
                                label if args.calibration else None
                            ),
                        )
                        table.put(key, entry)
                        print(
                            f"  {key.canonical():48s}"
                            f" -> {entry.pick.slug():24s}"
                            f" {entry.cost_s * 1e3:10.3f} ms"
                        )
    if os.path.exists(out):
        table = load_or_exit(out).merge(table)
    table.save(out)
    print(f"wrote {out} ({len(table)} entries)")
    return 0


def _run_traced(args):
    """Run one collective with tracing on; returns its CollectiveResult."""
    from repro.core.api import HZCCL
    from repro.core.config import CollectiveConfig

    config = CollectiveConfig(multithread=args.multithread)
    lib = HZCCL(config, trace=True)
    rng = np.random.default_rng(args.seed)
    data = [
        np.cumsum(rng.standard_normal(args.elements)).astype(np.float32)
        for _ in range(args.ranks)
    ]
    if args.op == "bcast":
        return lib.bcast(data[0], args.ranks, kernel=args.kernel)
    return getattr(lib, args.op)(data, kernel=args.kernel)


def _cmd_trace(args) -> int:
    import json
    from pathlib import Path

    from repro.obs import (
        bucket_csv,
        chrome_trace,
        diff_text,
        metrics_enabled,
        summary_text,
        validate_chrome_trace,
    )
    from repro.runtime.trace import TraceLog

    def load(path: str) -> TraceLog:
        try:
            return TraceLog.from_json(Path(path).read_text())
        except FileNotFoundError:
            raise SystemExit(f"trace file not found: {path}")
        except (ValueError, KeyError, TypeError) as exc:
            raise SystemExit(f"{path} is not a readable trace document: {exc}")

    if args.trace_command == "diff":
        a = load(args.a)
        b = load(args.b)
        print(f"{args.a} -> {args.b}")
        print(diff_text(a, b))
        return 0

    if args.trace_command == "summary":
        if args.path is not None:
            print(summary_text(load(args.path)))
            return 0
        if args.metrics:
            with metrics_enabled() as registry:
                result = _run_traced(args)
            print(summary_text(result.trace, metrics=registry))
        else:
            result = _run_traced(args)
            print(summary_text(result.trace))
        return 0

    # export
    result = _run_traced(args)
    log = result.trace
    ext = {"chrome": "json", "csv": "csv", "trace-json": "json"}[args.format]
    out = Path(args.output or f"trace_{args.op}_{args.kernel}.{ext}")
    if args.format == "chrome":
        document = chrome_trace(log, name=f"{args.op}/{args.kernel}")
        validate_chrome_trace(document)
        out.write_text(json.dumps(document))
    elif args.format == "csv":
        out.write_text(bucket_csv(log))
    else:
        log.to_json(out)
    print(
        f"wrote {out} ({args.format}, {log.n_rounds} rounds, "
        f"{len(log.events)} events)"
    )
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if args.kernel_backend:
        from repro.kernels.dispatch import set_backend

        set_backend(args.kernel_backend)
    handlers = {
        "info": lambda: _cmd_info(),
        "stream": lambda: _cmd_stream(args),
        "compress": lambda: _cmd_compress(args),
        "pipelines": lambda: _cmd_pipelines(args),
        "scaling": lambda: _cmd_scaling(args),
        "stacking": lambda: _cmd_stacking(args),
        "chaos": lambda: _cmd_chaos(args),
        "bench-kernels": lambda: _cmd_bench_kernels(args),
        "bench-hierarchy": lambda: _cmd_bench_hierarchy(args),
        "tune": lambda: _cmd_tune(args),
        "mp": lambda: _cmd_mp(args),
        "trace": lambda: _cmd_trace(args),
    }
    return handlers[args.command]()


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
