"""Input-validation helpers shared across the library.

Centralising the checks keeps error messages consistent and lets hot paths
call a single cheap function instead of sprinkling ad-hoc ``if`` chains.
All validators raise :class:`ValueError` / :class:`TypeError` with messages
that name the offending argument, matching NumPy's conventions.
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

__all__ = [
    "ensure_float_array",
    "ensure_positive",
    "ensure_positive_int",
    "ensure_power_of_two",
    "ensure_in",
    "ensure_same_shape",
]


def ensure_float_array(data: Any, name: str = "data") -> np.ndarray:
    """Return ``data`` as a contiguous 1-D float32 array.

    Accepts any array-like of a real floating dtype.  Multi-dimensional
    inputs are flattened in C order (the compressor is 1-D Lorenzo, like
    fZ-light/cuSZp, so the linearisation order is part of the format).

    Raises
    ------
    TypeError
        If ``data`` is not array-like or has a non-floating dtype.
    ValueError
        If the array is empty or contains non-finite values.
    """
    arr = np.asarray(data)
    if arr.dtype.kind not in "fiu":
        raise TypeError(
            f"{name} must be a numeric array, got dtype {arr.dtype!r}"
        )
    arr = np.ascontiguousarray(arr, dtype=np.float32).ravel()
    if arr.size == 0:
        raise ValueError(f"{name} must be non-empty")
    if not np.isfinite(arr).all():
        raise ValueError(f"{name} contains NaN or infinite values")
    return arr


def ensure_positive(value: float, name: str) -> float:
    """Validate that a scalar is strictly positive and finite."""
    value = float(value)
    if not np.isfinite(value) or value <= 0.0:
        raise ValueError(f"{name} must be a positive finite number, got {value}")
    return value


def ensure_positive_int(value: int, name: str) -> int:
    """Validate that a scalar is a strictly positive integer."""
    ivalue = int(value)
    if ivalue != value or ivalue <= 0:
        raise ValueError(f"{name} must be a positive integer, got {value!r}")
    return ivalue


def ensure_power_of_two(value: int, name: str) -> int:
    """Validate that ``value`` is a positive power of two."""
    ivalue = ensure_positive_int(value, name)
    if ivalue & (ivalue - 1):
        raise ValueError(f"{name} must be a power of two, got {value}")
    return ivalue


def ensure_in(value: Any, options: Sequence[Any], name: str) -> Any:
    """Validate membership in a finite option set."""
    if value not in options:
        raise ValueError(f"{name} must be one of {list(options)}, got {value!r}")
    return value


def ensure_same_shape(a: np.ndarray, b: np.ndarray, what: str = "operands") -> None:
    """Validate that two arrays have identical shapes."""
    if a.shape != b.shape:
        raise ValueError(f"{what} must have the same shape: {a.shape} vs {b.shape}")
