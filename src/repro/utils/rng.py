"""Deterministic random-number utilities.

Every stochastic component in the library (dataset synthesis, failure
injection, workload generators) derives its generator from here so that a
single seed reproduces an entire experiment end-to-end.
"""

from __future__ import annotations

import numpy as np

__all__ = ["make_rng", "derive_rng"]

_DEFAULT_SEED = 0x5A5A_2024  # hZCCL @ SC'24


def make_rng(seed: int | None = None) -> np.random.Generator:
    """Create a :class:`numpy.random.Generator` with a stable default seed."""
    return np.random.default_rng(_DEFAULT_SEED if seed is None else seed)


def derive_rng(rng: np.random.Generator, *keys: int | str) -> np.random.Generator:
    """Derive an independent child generator from ``rng`` and a key path.

    Hashing the keys into the spawn sequence keeps children independent of
    the order in which they are requested — important when benchmarks
    generate dataset fields lazily and in parallel.
    """
    material = [abs(hash(k)) % (2**32) for k in keys]
    seed_seq = np.random.SeedSequence(
        entropy=int(rng.integers(0, 2**63)), spawn_key=tuple(material)
    )
    return np.random.default_rng(seed_seq)
