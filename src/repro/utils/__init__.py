"""Shared low-level utilities (validation, partitioning, deterministic RNG)."""

from .chunking import (
    iter_threadblocks,
    num_blocks,
    pad_to_multiple,
    threadblock_bounds,
    threadblock_slices,
)
from .rng import derive_rng, make_rng
from .validation import (
    ensure_float_array,
    ensure_in,
    ensure_positive,
    ensure_positive_int,
    ensure_power_of_two,
    ensure_same_shape,
)

__all__ = [
    "threadblock_bounds",
    "threadblock_slices",
    "iter_threadblocks",
    "num_blocks",
    "pad_to_multiple",
    "make_rng",
    "derive_rng",
    "ensure_float_array",
    "ensure_positive",
    "ensure_positive_int",
    "ensure_power_of_two",
    "ensure_in",
    "ensure_same_shape",
]
