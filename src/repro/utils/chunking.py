"""Thread-block chunking helpers.

fZ-light's multi-layer partitioning first splits the input into ``N`` large
contiguous *thread-blocks* (one per worker thread) and then subdivides each
thread-block into small fixed-size *blocks*.  These helpers compute the
partition boundaries exactly the way the paper describes (Section III-B2):
each thread gets ``D // N`` elements and the last thread additionally takes
the ``D % N`` remainder.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from .validation import ensure_positive_int

__all__ = [
    "threadblock_bounds",
    "threadblock_slices",
    "iter_threadblocks",
    "num_blocks",
    "pad_to_multiple",
]


def threadblock_bounds(total: int, n_threads: int) -> np.ndarray:
    """Return ``(n_threads + 1,)`` boundary offsets of the thread-blocks.

    The first ``n_threads - 1`` thread-blocks hold ``total // n_threads``
    elements; the last one also takes the remainder (paper: "the last D%N
    data points are managed by the (N-1)-th thread").  If ``total`` is
    smaller than ``n_threads``, trailing thread-blocks are empty.
    """
    total = ensure_positive_int(total, "total")
    n_threads = ensure_positive_int(n_threads, "n_threads")
    base = total // n_threads
    bounds = np.arange(n_threads + 1, dtype=np.int64) * base
    bounds[-1] = total
    return bounds


def threadblock_slices(total: int, n_threads: int) -> list[slice]:
    """Return the per-thread slices implied by :func:`threadblock_bounds`."""
    bounds = threadblock_bounds(total, n_threads)
    return [slice(int(bounds[i]), int(bounds[i + 1])) for i in range(n_threads)]


def iter_threadblocks(data: np.ndarray, n_threads: int) -> Iterator[np.ndarray]:
    """Yield contiguous views (never copies) of each non-empty thread-block."""
    for sl in threadblock_slices(data.size, n_threads):
        view = data[sl]
        if view.size:
            yield view


def num_blocks(length: int, block_size: int) -> int:
    """Number of fixed-size blocks covering ``length`` elements (ceil div)."""
    return -(-length // block_size)


def pad_to_multiple(data: np.ndarray, multiple: int, fill: float = 0.0) -> np.ndarray:
    """Return ``data`` padded at the end so its length divides ``multiple``.

    Returns the input unchanged (no copy) when already aligned.
    """
    rem = data.size % multiple
    if rem == 0:
        return data
    out = np.empty(data.size + (multiple - rem), dtype=data.dtype)
    out[: data.size] = data
    out[data.size:] = fill
    return out
