"""Process-wide cached thread pools for the chunked kernel paths.

``FZLight``'s parallel mode used to build (and tear down) a fresh
:class:`~concurrent.futures.ThreadPoolExecutor` on every compress and
decompress call — thread spawn/join overhead on the order of the kernel
time itself for small fields.  :func:`shared_executor` keeps one lazily
created executor per worker width alive for the life of the process; an
``atexit`` hook (plus :func:`shutdown_executors` for tests) tears them
down cleanly.

Executors are cached per *width* so callers with different ``max_workers``
configurations never contend for a mis-sized pool.  The worker threads are
only ever handed GIL-releasing NumPy kernels, so sharing a pool across
concurrent callers is safe — tasks just queue.
"""

from __future__ import annotations

import atexit
import threading
from concurrent.futures import ThreadPoolExecutor

__all__ = ["shared_executor", "shutdown_executors"]

_lock = threading.Lock()
_pools: dict[int, ThreadPoolExecutor] = {}


def shared_executor(workers: int) -> ThreadPoolExecutor:
    """The process-wide executor with ``workers`` threads (created lazily)."""
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    pool = _pools.get(workers)
    if pool is None:
        with _lock:
            pool = _pools.get(workers)
            if pool is None:
                pool = ThreadPoolExecutor(
                    max_workers=workers,
                    thread_name_prefix=f"repro-kernel-{workers}",
                )
                _pools[workers] = pool
    return pool


def shutdown_executors(wait: bool = True) -> None:
    """Tear down every cached executor (atexit hook; also used by tests)."""
    with _lock:
        pools = list(_pools.values())
        _pools.clear()
    for pool in pools:
        pool.shutdown(wait=wait)


atexit.register(shutdown_executors)
