"""Message-level (point-to-point) collective implementations.

Independent re-implementations of the ring collectives on top of the
MPI-flavoured :class:`~repro.runtime.communicator.Communicator` — written
the way an MPI program is written (``sendrecv`` per rank per round, tags
for rounds) rather than round-synchronously.  They exist to cross-validate
:mod:`repro.collectives.ring` / :mod:`repro.collectives.hzccl`: both
formulations must produce identical reduction results, and the
integration tests hold them to that.

Timing here is message-causal (each rank's virtual clock advances along
its own dependency chain), which also provides an independent check of
the bulk-synchronous round-time approximation.
"""

from __future__ import annotations

import time

import numpy as np

from ..compression.format import CompressedField
from ..compression.fzlight import FZLight
from ..homomorphic.hzdynamic import HZDynamic
from ..runtime.communicator import Communicator
from ..runtime.topology import Ring
from .base import split_blocks, validate_local_data

__all__ = ["p2p_reduce_scatter", "p2p_allreduce", "p2p_hzccl_allreduce"]


def p2p_reduce_scatter(
    comm: Communicator, local_data: list[np.ndarray]
) -> list[np.ndarray]:
    """Plain ring Reduce_scatter via sendrecv; returns per-rank blocks."""
    arrays = validate_local_data(local_data)
    n = comm.n_ranks
    if len(arrays) != n:
        raise ValueError(f"got {len(arrays)} rank arrays for {n} ranks")
    ring = Ring(n)
    bufs = [split_blocks(a, n) for a in arrays]

    for j in range(n - 1):
        # post all sends for this round, then drain receives — the
        # sequential analogue of MPI_Sendrecv on every rank
        for i in range(n):
            block = bufs[i][ring.send_block(i, j)]
            comm.send(i, ring.successor(i), block, block.nbytes, tag=j)
        for i in range(n):
            incoming = comm.recv(i, ring.predecessor(i), tag=j)
            start = time.perf_counter()
            blk = ring.recv_block(i, j)
            bufs[i][blk] = bufs[i][blk] + incoming
            comm.advance(i, time.perf_counter() - start)
    return [bufs[i][ring.owned_block(i)] for i in range(n)]


def p2p_allreduce(
    comm: Communicator, local_data: list[np.ndarray]
) -> list[np.ndarray]:
    """Plain ring Allreduce via sendrecv (reduce-scatter + allgather)."""
    n = comm.n_ranks
    ring = Ring(n)
    chunks = p2p_reduce_scatter(comm, local_data)
    gathered: list[dict[int, np.ndarray]] = [
        {ring.owned_block(i): chunks[i]} for i in range(n)
    ]
    for j in range(n - 1):
        for i in range(n):
            blk = ring.allgather_send_block(i, j)
            data = gathered[i][blk]
            comm.send(i, ring.successor(i), (blk, data), data.nbytes, tag=1000 + j)
        for i in range(n):
            blk, data = comm.recv(i, ring.predecessor(i), tag=1000 + j)
            gathered[i][blk] = data
    return [
        np.concatenate([gathered[i][k] for k in range(n)]) for i in range(n)
    ]


def p2p_hzccl_allreduce(
    comm: Communicator, local_data: list[np.ndarray], config
) -> list[np.ndarray]:
    """hZCCL fused Allreduce at message level.

    Structure mirrors :func:`repro.collectives.hzccl.hzccl_allreduce`:
    compress all blocks once, homomorphically fold incoming compressed
    blocks for ``N − 1`` rounds, forward the compressed reduced blocks
    through the Allgather ring without recompressing, decompress once.
    """
    arrays = validate_local_data(local_data)
    n = comm.n_ranks
    if len(arrays) != n:
        raise ValueError(f"got {len(arrays)} rank arrays for {n} ranks")
    ring = Ring(n)
    comp = FZLight(block_size=config.block_size, n_threadblocks=config.n_threadblocks)
    engine = HZDynamic(collect_stats=False)
    eb = config.error_bound

    partial: list[list[CompressedField]] = []
    for i in range(n):
        start = time.perf_counter()
        partial.append(
            [comp.compress(b, abs_eb=eb) for b in split_blocks(arrays[i], n)]
        )
        comm.advance(i, time.perf_counter() - start)

    for j in range(n - 1):
        for i in range(n):
            field = partial[i][ring.send_block(i, j)]
            comm.send(i, ring.successor(i), field, field.nbytes, tag=j)
        for i in range(n):
            incoming = comm.recv(i, ring.predecessor(i), tag=j)
            start = time.perf_counter()
            blk = ring.recv_block(i, j)
            partial[i][blk] = engine.add(partial[i][blk], incoming)
            comm.advance(i, time.perf_counter() - start)

    gathered: list[dict[int, CompressedField]] = [
        {ring.owned_block(i): partial[i][ring.owned_block(i)]} for i in range(n)
    ]
    for j in range(n - 1):
        for i in range(n):
            blk = ring.allgather_send_block(i, j)
            field = gathered[i][blk]
            comm.send(i, ring.successor(i), (blk, field), field.nbytes, tag=1000 + j)
        for i in range(n):
            blk, field = comm.recv(i, ring.predecessor(i), tag=1000 + j)
            gathered[i][blk] = field

    outputs = []
    for i in range(n):
        start = time.perf_counter()
        outputs.append(
            np.concatenate([comp.decompress(gathered[i][k]) for k in range(n)])
        )
        comm.advance(i, time.perf_counter() - start)
    return outputs
