"""Root-based collectives: Reduce and Bcast (with compressed variants).

The C-Coll framework the paper builds on covers *all* MPI collectives;
this module rounds out the repo's coverage with the two root-based ones
that compose naturally with the ring machinery:

* **Reduce** — ring Reduce_scatter followed by a gather of the reduced
  blocks to the root.  The hZCCL variant gathers the blocks *compressed*
  and decompresses only at the root: non-root ranks never run a single
  decompression, an even stronger asymmetry than the Allreduce fusion.
* **Direct Reduce** — every rank compresses its full vector once, the
  compressed streams gather to the root in one flat exchange, and the root
  folds all ``N`` operands with **one fused k-way homomorphic reduction**
  (``N`` decodes + 1 encode, instead of the ``(N−1)·(2 decodes + 1
  encode)`` a pairwise fold pays) before decompressing once.  The best
  schedule at small/medium scale, where the flat gather's incast is cheaper
  than ``N − 1`` ring latencies.
* **Bcast** — root compresses once, the bytes ride a binomial tree, every
  rank decompresses once: ``1·CPR + (N−1 messages) + N−1 parallel DPR``.
"""

from __future__ import annotations

import numpy as np

from ..compression.format import CompressedField
from ..compression.fzlight import FZLight
from ..homomorphic.hzdynamic import HZDynamic
from ..runtime.cluster import SimCluster
from ..runtime.faults import UnrecoverableStreamError
from ..runtime.topology import Ring
from .base import (
    CollectiveResult,
    channel_stats,
    traced_collective,
    validate_local_data,
)
from .hzccl import hzccl_reduce_scatter
from .ring import mpi_reduce_scatter

__all__ = [
    "mpi_reduce",
    "hzccl_reduce",
    "hzccl_reduce_direct",
    "mpi_bcast",
    "compressed_bcast",
]


def _gather_blocks(cluster, ring, items, nbytes_of, root, compressed=False):
    """Gather per-rank items to the root (direct sends, concurrent).

    The scheduled transfer is charged to each sender (the flat gather's
    incast is concurrent); with ``compressed=True`` every stream is then
    validated through the resilient channel, which may raise
    :class:`UnrecoverableStreamError` for the caller to degrade on.
    """
    channel = cluster.channel
    wire = 0
    max_msg = 0
    for i in range(cluster.n_ranks):
        if i == root:
            continue
        nbytes = nbytes_of(items[i])
        cluster.charge_comm(i, nbytes)
        wire += nbytes
        max_msg = max(max_msg, nbytes)
        if compressed:
            delivery = channel.deliver_compressed(
                i, root, items[i], charge_base=False
            )
            wire += delivery.nbytes
            items[i] = delivery.payload
    cluster.end_round(max_msg)
    return wire


@traced_collective("mpi_reduce")
def mpi_reduce(
    cluster: SimCluster, local_data: list[np.ndarray], root: int = 0
) -> CollectiveResult:
    """Plain Reduce: ring Reduce_scatter + gather of blocks to the root."""
    n = cluster.n_ranks
    if not 0 <= root < n:
        raise IndexError(f"root {root} out of range for {n} ranks")
    ring = Ring(n)
    rs = mpi_reduce_scatter(cluster, local_data)
    with cluster.phase("gather"):
        wire = rs.bytes_on_wire + _gather_blocks(
            cluster, ring, rs.outputs, lambda b: b.nbytes, root
        )
    ordered = [None] * n
    for i in range(n):
        ordered[ring.owned_block(i)] = rs.outputs[i]
    result = np.concatenate(ordered)
    outputs: list = [None] * n
    outputs[root] = result
    return CollectiveResult(
        outputs=outputs,
        breakdown=cluster.breakdown(),
        bytes_on_wire=wire,
        fault_stats=channel_stats(cluster),
    )


@traced_collective("hzccl_reduce")
def hzccl_reduce(
    cluster: SimCluster, local_data: list[np.ndarray], config, root: int = 0
) -> CollectiveResult:
    """hZCCL Reduce: compressed Reduce_scatter, compressed gather, one
    decompression at the root only."""
    n = cluster.n_ranks
    if not 0 <= root < n:
        raise IndexError(f"root {root} out of range for {n} ranks")
    ring = Ring(n)
    channel = cluster.channel
    comp = FZLight(block_size=config.block_size, n_threadblocks=config.n_threadblocks)
    rs = hzccl_reduce_scatter(cluster, local_data, config, return_compressed=True)
    degraded = rs.degraded
    if degraded:
        # Reduce_scatter already fell back: the blocks are plain floats.
        blocks = list(rs.outputs)
        wire = rs.bytes_on_wire + _gather_blocks(
            cluster, ring, blocks, lambda b: b.nbytes, root
        )
    else:
        blocks = list(rs.outputs)
        try:
            wire = rs.bytes_on_wire + _gather_blocks(
                cluster, ring, blocks, lambda f: f.nbytes, root, compressed=True
            )
        except UnrecoverableStreamError:
            # Degrade: decompress at the owners, gather the plain blocks.
            channel.degrade()
            degraded = True
            plain = []
            for i in range(n):
                with cluster.timed(i, "DPR"):
                    plain.append(comp.decompress(rs.outputs[i]))
            cluster.end_compute_phase()
            blocks = plain
            wire = rs.bytes_on_wire + _gather_blocks(
                cluster, ring, blocks, lambda b: b.nbytes, root
            )
    ordered: list = [None] * n
    for i in range(n):
        ordered[ring.owned_block(i)] = blocks[i]
    if degraded:
        result = np.concatenate(ordered)
    else:
        with cluster.timed(root, "DPR"):
            result = np.concatenate([comp.decompress(f) for f in ordered])
        cluster.end_compute_phase()
    outputs: list = [None] * n
    outputs[root] = result
    return CollectiveResult(
        outputs=outputs,
        breakdown=cluster.breakdown(),
        bytes_on_wire=wire,
        pipeline_stats=rs.pipeline_stats,
        degraded=degraded,
        fault_stats=channel_stats(cluster),
    )


@traced_collective("hzccl_reduce_direct")
def hzccl_reduce_direct(
    cluster: SimCluster, local_data: list[np.ndarray], config, root: int = 0
) -> CollectiveResult:
    """hZCCL direct Reduce: flat compressed gather + one fused k-way fold.

    ``N·CPR (parallel) + gather + 1 fused N-way HPR + 1·DPR`` — the fused
    reduction engine folds all operands in a single pass, so the root's
    homomorphic work no longer scales with ``N`` decode/encode round trips.
    The result is byte-identical to any pairwise schedule.
    """
    arrays = validate_local_data(local_data)
    n = cluster.n_ranks
    if len(arrays) != n:
        raise ValueError(f"got {len(arrays)} rank arrays for {n} ranks")
    if not 0 <= root < n:
        raise IndexError(f"root {root} out of range for {n} ranks")
    comp = FZLight(block_size=config.block_size, n_threadblocks=config.n_threadblocks)
    engine = HZDynamic()
    fields: list[CompressedField] = []
    with cluster.phase("compress"):
        for i in range(n):
            with cluster.timed(i, "CPR"):
                fields.append(
                    comp.compress(arrays[i], abs_eb=config.error_bound)
                )
        cluster.end_compute_phase()

    # flat gather of the compressed streams to the root (concurrent sends)
    channel = cluster.channel
    wire = 0
    max_msg = 0
    try:
        with cluster.phase("gather"):
            for i in range(n):
                if i == root:
                    continue
                nbytes = fields[i].nbytes
                cluster.charge_comm(i, nbytes)
                wire += nbytes
                max_msg = max(max_msg, nbytes)
                delivery = channel.deliver_compressed(
                    i, root, fields[i], charge_base=False
                )
                wire += delivery.nbytes
                fields[i] = delivery.payload
            cluster.end_round(max_msg)
    except UnrecoverableStreamError:
        # Degrade: rerun as a plain rooted Reduce.
        channel.degrade()
        fallback = mpi_reduce(cluster, local_data, root)
        return CollectiveResult(
            outputs=fallback.outputs,
            breakdown=cluster.breakdown(),
            bytes_on_wire=wire + fallback.bytes_on_wire,
            pipeline_stats=engine.stats,
            degraded=True,
            fault_stats=channel_stats(cluster),
        )

    with cluster.phase("fused-fold"):
        with cluster.timed(root, "HPR"):
            total = engine.reduce_fused(fields)
        with cluster.timed(root, "DPR"):
            result = comp.decompress(total)
        cluster.end_compute_phase()

    outputs: list = [None] * n
    outputs[root] = result
    return CollectiveResult(
        outputs=outputs,
        breakdown=cluster.breakdown(),
        bytes_on_wire=wire,
        pipeline_stats=engine.stats,
        degraded=False,
        fault_stats=channel_stats(cluster),
    )


def _binomial_rounds(cluster, payload_nbytes: int, root: int) -> int:
    """Charge the binomial-tree dissemination; returns bytes on the wire.

    In round ``k`` every rank that already holds the data sends to one new
    rank, so the tree completes in ``ceil(log2 N)`` rounds.
    """
    n = cluster.n_ranks
    holders = 1
    wire = 0
    while holders < n:
        senders = min(holders, n - holders)
        wire += senders * payload_nbytes
        # all of a round's sends are concurrent; charge the representative
        # flow to the root and close the round on the message size
        cluster.charge_comm(root, payload_nbytes)
        cluster.end_round(payload_nbytes)
        holders += senders
    return wire


@traced_collective("mpi_bcast")
def mpi_bcast(
    cluster: SimCluster, data: np.ndarray, root: int = 0
) -> CollectiveResult:
    """Plain binomial-tree broadcast of ``data`` from the root."""
    data = validate_local_data([data])[0]
    with cluster.phase("tree"):
        wire = _binomial_rounds(cluster, data.nbytes, root)
    outputs = [data.copy() for _ in range(cluster.n_ranks)]
    return CollectiveResult(
        outputs=outputs,
        breakdown=cluster.breakdown(),
        bytes_on_wire=wire,
        fault_stats=channel_stats(cluster),
    )


@traced_collective("compressed_bcast")
def compressed_bcast(
    cluster: SimCluster, data: np.ndarray, config, root: int = 0
) -> CollectiveResult:
    """Compressed broadcast: one CPR at the root, compressed bytes on the
    tree, one DPR per receiving rank (all concurrent)."""
    data = validate_local_data([data])[0]
    channel = cluster.channel
    comp = FZLight(block_size=config.block_size, n_threadblocks=config.n_threadblocks)
    with cluster.phase("compress"):
        with cluster.timed(root, "CPR"):
            field = comp.compress(data, abs_eb=config.error_bound)
        cluster.end_compute_phase()
    with cluster.phase("tree"):
        wire = _binomial_rounds(cluster, field.nbytes, root)
    degraded = False
    outputs = []
    with cluster.phase("decompress"):
        for i in range(cluster.n_ranks):
            if i == root:
                outputs.append(data.copy())
                continue
            try:
                delivery = channel.deliver_compressed(
                    root, i, field, charge_base=False
                )
                wire += delivery.nbytes
                with cluster.timed(i, "DPR"):
                    outputs.append(comp.decompress(delivery.payload))
            except UnrecoverableStreamError:
                # Degrade per rank: the root re-sends that rank's share
                # plain.
                channel.degrade()
                degraded = True
                cluster.charge_comm(i, data.nbytes)
                wire += data.nbytes
                outputs.append(data.copy())
        cluster.end_compute_phase()
    return CollectiveResult(
        outputs=outputs,
        breakdown=cluster.breakdown(),
        bytes_on_wire=wire,
        degraded=degraded,
        fault_stats=channel_stats(cluster),
    )
