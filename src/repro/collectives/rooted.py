"""Root-based collectives: Reduce and Bcast (with compressed variants).

The C-Coll framework the paper builds on covers *all* MPI collectives;
this module rounds out the repo's coverage with the two root-based ones
that compose naturally with the ring machinery:

* **Reduce** — ring Reduce_scatter followed by a gather of the reduced
  blocks to the root.  The hZCCL variant gathers the blocks *compressed*
  and decompresses only at the root: non-root ranks never run a single
  decompression, an even stronger asymmetry than the Allreduce fusion.
* **Direct Reduce** — every rank compresses its full vector once, the
  compressed streams gather to the root in one flat exchange, and the root
  folds all ``N`` operands with **one fused k-way homomorphic reduction**
  (``N`` decodes + 1 encode, instead of the ``(N−1)·(2 decodes + 1
  encode)`` a pairwise fold pays) before decompressing once.  The best
  schedule at small/medium scale, where the flat gather's incast is cheaper
  than ``N − 1`` ring latencies.
* **Bcast** — root compresses once, the bytes ride a binomial tree, every
  rank decompresses once: ``1·CPR + (N−1 messages) + N−1 parallel DPR``.

All schedules come from :mod:`repro.schedule.generators`
(:func:`~repro.schedule.flat_gather`, :func:`~repro.schedule.direct_reduce`,
:func:`~repro.schedule.binomial_bcast`) and run on the shared
:class:`~repro.schedule.ScheduleExecutor`; the compressed gather's two
historical degrade epilogues (mid-gather stream loss vs. an already
degraded Reduce_scatter) now both funnel through the executor's single
``UnrecoverableStreamError`` path and one plain-gather fallback below.
"""

from __future__ import annotations

import numpy as np

from ..runtime.cluster import SimCluster
from ..runtime.topology import Ring
from ..schedule import (
    CompressedBcastCodec,
    HomomorphicCodec,
    PlainCodec,
    ScheduleExecutor,
    binomial_bcast,
    direct_reduce,
    flat_gather,
)
from .base import (
    CollectiveResult,
    channel_stats,
    traced_collective,
    validate_local_data,
)
from .hzccl import hzccl_reduce_scatter
from .ring import mpi_reduce_scatter

__all__ = [
    "mpi_reduce",
    "hzccl_reduce",
    "hzccl_reduce_direct",
    "mpi_bcast",
    "compressed_bcast",
]

#: the compressed rooted reduce historically ran its gather and root
#: decode without opening spans — ``""`` keeps the trace shape intact.
_UNSPANNED_REDUCE_SLOTS = {"setup": None, "gather": "", "finalize": ""}


def _plain_gather(cluster, blocks, root, spanned):
    """Gather plain ``blocks`` (rank-indexed) to the root; returns
    ``(wire, result)`` with the result concatenated in block order."""
    n = cluster.n_ranks
    ring = Ring(n)
    codec = PlainCodec(cluster)
    if not spanned:
        codec.slots = {**PlainCodec.slots, "gather": ""}
    state = [{ring.owned_block(i): blocks[i]} for i in range(n)]
    outcome = ScheduleExecutor(cluster, codec).run(flat_gather(n, root), state)
    return outcome.wire, np.concatenate([state[root][k] for k in range(n)])


@traced_collective("mpi_reduce")
def mpi_reduce(
    cluster: SimCluster, local_data: list[np.ndarray], root: int = 0
) -> CollectiveResult:
    """Plain Reduce: ring Reduce_scatter + gather of blocks to the root."""
    n = cluster.n_ranks
    if not 0 <= root < n:
        raise IndexError(f"root {root} out of range for {n} ranks")
    rs = mpi_reduce_scatter(cluster, local_data)
    wire, result = _plain_gather(cluster, rs.outputs, root, spanned=True)
    outputs: list = [None] * n
    outputs[root] = result
    return CollectiveResult(
        outputs=outputs,
        breakdown=cluster.breakdown(),
        bytes_on_wire=rs.bytes_on_wire + wire,
        fault_stats=channel_stats(cluster),
    )


@traced_collective("hzccl_reduce")
def hzccl_reduce(
    cluster: SimCluster, local_data: list[np.ndarray], config, root: int = 0
) -> CollectiveResult:
    """hZCCL Reduce: compressed Reduce_scatter, compressed gather, one
    decompression at the root only."""
    n = cluster.n_ranks
    if not 0 <= root < n:
        raise IndexError(f"root {root} out of range for {n} ranks")
    ring = Ring(n)
    rs = hzccl_reduce_scatter(cluster, local_data, config, return_compressed=True)
    degraded = rs.degraded
    if degraded:
        # Reduce_scatter already fell back: the blocks are plain floats.
        wire, result = _plain_gather(cluster, rs.outputs, root, spanned=False)
    else:
        codec = HomomorphicCodec(cluster, config, slots=_UNSPANNED_REDUCE_SLOTS)
        state = [{ring.owned_block(i): rs.outputs[i]} for i in range(n)]
        outcome = ScheduleExecutor(cluster, codec).run(
            flat_gather(n, root, finalize=True), state
        )
        if outcome.degraded:
            # Degrade: decompress at the owners, gather the plain blocks
            # (the aborted compressed gather's partial wire is not billed —
            # its transfers never completed as a message).
            degraded = True
            plain = []
            for i in range(n):
                with cluster.timed(i, "DPR"):
                    plain.append(codec.comp.decompress(rs.outputs[i]))
            cluster.end_compute_phase()
            wire, result = _plain_gather(cluster, plain, root, spanned=False)
        else:
            wire = outcome.wire
            result = np.concatenate([state[root][k] for k in range(n)])
    outputs: list = [None] * n
    outputs[root] = result
    return CollectiveResult(
        outputs=outputs,
        breakdown=cluster.breakdown(),
        bytes_on_wire=rs.bytes_on_wire + wire,
        pipeline_stats=rs.pipeline_stats,
        degraded=degraded,
        fault_stats=channel_stats(cluster),
    )


@traced_collective("hzccl_reduce_direct")
def hzccl_reduce_direct(
    cluster: SimCluster, local_data: list[np.ndarray], config, root: int = 0
) -> CollectiveResult:
    """hZCCL direct Reduce: flat compressed gather + one fused k-way fold.

    ``N·CPR (parallel) + gather + 1 fused N-way HPR + 1·DPR`` — the fused
    reduction engine folds all operands in a single pass, so the root's
    homomorphic work no longer scales with ``N`` decode/encode round trips.
    The result is byte-identical to any pairwise schedule.
    """
    arrays = validate_local_data(local_data)
    n = cluster.n_ranks
    if len(arrays) != n:
        raise ValueError(f"got {len(arrays)} rank arrays for {n} ranks")
    if not 0 <= root < n:
        raise IndexError(f"root {root} out of range for {n} ranks")
    codec = HomomorphicCodec(cluster, config)
    state = [{("vec", i): arrays[i]} for i in range(n)]
    outcome = ScheduleExecutor(cluster, codec).run(direct_reduce(n, root), state)
    if outcome.degraded:
        # Degrade: rerun as a plain rooted Reduce.
        fallback = mpi_reduce(cluster, local_data, root)
        return CollectiveResult(
            outputs=fallback.outputs,
            breakdown=cluster.breakdown(),
            bytes_on_wire=outcome.wire + fallback.bytes_on_wire,
            pipeline_stats=codec.engine.stats,
            degraded=True,
            fault_stats=channel_stats(cluster),
        )
    outputs: list = [None] * n
    outputs[root] = state[root]["fused"]
    return CollectiveResult(
        outputs=outputs,
        breakdown=cluster.breakdown(),
        bytes_on_wire=outcome.wire,
        pipeline_stats=codec.engine.stats,
        degraded=False,
        fault_stats=channel_stats(cluster),
    )


@traced_collective("mpi_bcast")
def mpi_bcast(
    cluster: SimCluster, data: np.ndarray, root: int = 0
) -> CollectiveResult:
    """Plain binomial-tree broadcast of ``data`` from the root."""
    data = validate_local_data([data])[0]
    n = cluster.n_ranks
    state: list[dict] = [{} for _ in range(n)]
    state[root]["data"] = data
    outcome = ScheduleExecutor(cluster, PlainCodec(cluster)).run(
        binomial_bcast(n, root), state
    )
    outputs = [data.copy() for _ in range(n)]
    return CollectiveResult(
        outputs=outputs,
        breakdown=cluster.breakdown(),
        bytes_on_wire=outcome.wire,
        fault_stats=channel_stats(cluster),
    )


@traced_collective("compressed_bcast")
def compressed_bcast(
    cluster: SimCluster, data: np.ndarray, config, root: int = 0
) -> CollectiveResult:
    """Compressed broadcast: one CPR at the root, compressed bytes on the
    tree, one DPR per receiving rank (all concurrent).

    Per-rank stream loss degrades *individually*
    (``CommOp(degrade="op")``): the root re-sends that rank's share plain
    while every other rank still decodes the compressed stream.
    """
    data = validate_local_data([data])[0]
    n = cluster.n_ranks
    codec = CompressedBcastCodec(cluster, config, data)
    state: list[dict] = [{} for _ in range(n)]
    state[root]["data"] = data
    outcome = ScheduleExecutor(cluster, codec).run(
        binomial_bcast(n, root, deliver=True), state
    )
    outputs = [
        data.copy() if i == root else state[i]["data"] for i in range(n)
    ]
    return CollectiveResult(
        outputs=outputs,
        breakdown=cluster.breakdown(),
        bytes_on_wire=outcome.wire,
        degraded=outcome.degraded,
        fault_stats=channel_stats(cluster),
    )
