"""Shared types and helpers for the collective implementations.

All three families (plain MPI, C-Coll, hZCCL) share:

* the block split — every rank's local array is cut into ``n_ranks`` blocks
  by index, so block *k* has the same length on every rank (a requirement
  for homomorphic compatibility);
* the :class:`CollectiveResult` report — per-rank outputs plus the timing
  breakdown from the simulated cluster.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass
from typing import Callable, TypeVar

import numpy as np

from ..homomorphic.hzdynamic import PipelineStats
from ..runtime.clock import Breakdown
from ..runtime.cluster import SimCluster
from ..runtime.faults import FaultStats
from ..runtime.trace import TraceLog
from ..utils.validation import ensure_same_shape

__all__ = [
    "CollectiveResult",
    "channel_stats",
    "split_blocks",
    "traced_collective",
    "validate_local_data",
]


@dataclass
class CollectiveResult:
    """Outcome of one simulated collective operation.

    Attributes
    ----------
    outputs : per-rank result arrays (the reduced chunk for
        Reduce_scatter; the full reduced array for Allreduce).
    breakdown : rank-averaged bucket times + critical-path total.
    bytes_on_wire : total bytes sent by all ranks over all rounds — the
        quantity network congestion acts on.
    pipeline_stats : hZ-dynamic pipeline selection counts (hZCCL only).
    degraded : the compressed path hit an unrecoverable stream and fell
        back to the plain uncompressed kernel (outputs are exact, not
        error-bounded-lossy, but the compression win was forfeited).
    fault_stats : fault/retry counters when a fault plan was active.
    trace : this operation's own scoped trace (rounds and span timestamps
        rebased to its start) when the cluster had tracing on; ``None``
        otherwise.  Feed it to :mod:`repro.obs` exporters.
    """

    outputs: list[np.ndarray]
    breakdown: Breakdown
    bytes_on_wire: int = 0
    pipeline_stats: PipelineStats | None = None
    degraded: bool = False
    fault_stats: FaultStats | None = None
    trace: TraceLog | None = None

    @property
    def total_time(self) -> float:
        return self.breakdown.total_time


_CollectiveFn = TypeVar("_CollectiveFn", bound=Callable[..., CollectiveResult])


def traced_collective(name: str) -> Callable[[_CollectiveFn], _CollectiveFn]:
    """Wrap a collective entry point in a ``collective`` trace span.

    The wrapped function runs inside ``cluster.collective(name)``; once it
    returns — through *any* path, including the degrade-and-fall-back early
    returns — the scope's rebased trace slice is attached to the result.
    The decorator expects the cluster as the first positional argument, the
    convention every collective in this package follows.  Nested decorated
    calls (Allreduce = Reduce_scatter + Allgather) each get their own
    scoped slice; the outer span encloses both in the exported hierarchy.
    """

    def decorate(fn: _CollectiveFn) -> _CollectiveFn:
        @functools.wraps(fn)
        def wrapper(cluster: SimCluster, *args, **kwargs):
            with cluster.collective(name) as scope:
                result = fn(cluster, *args, **kwargs)
            result.trace = scope.trace
            return result

        return wrapper  # type: ignore[return-value]

    return decorate


def channel_stats(cluster: SimCluster) -> FaultStats | None:
    """The cluster channel's fault counters, or ``None`` on a healthy run."""
    return cluster.channel.stats if cluster.faults is not None else None


def validate_local_data(local_data: list[np.ndarray]) -> list[np.ndarray]:
    """Check the SPMD inputs: one equal-length float32 array per rank."""
    if not local_data:
        raise ValueError("need at least one rank's data")
    arrays = [np.ascontiguousarray(a, dtype=np.float32).ravel() for a in local_data]
    for a in arrays[1:]:
        ensure_same_shape(arrays[0], a, "per-rank arrays")
    return arrays


def split_blocks(data: np.ndarray, n_ranks: int) -> list[np.ndarray]:
    """Cut one rank's array into ``n_ranks`` blocks (block k same length on
    every rank; lengths differ by at most one element across k)."""
    return [np.ascontiguousarray(b) for b in np.array_split(data, n_ranks)]
