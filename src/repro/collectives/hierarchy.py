"""Two-level hierarchical allreduce entry points.

Both kernels run the same
:func:`~repro.schedule.hierarchical_allreduce_schedule` — per-node
binomial reduce onto leaders, the selected inter-node family over the
leaders, binomial broadcast back down — and differ only in the codec:

* :func:`mpi_hierarchical_allreduce` — plain floats at every level;
* :func:`hzccl_hierarchical_allreduce` — the paper's co-design lifted to
  two levels: each rank compresses its ``n_nodes`` blocks once, *every*
  fold at *both* levels is an exact integer-domain homomorphic reduce,
  and each rank decodes once at the end.  Because quantisation happens
  exactly once per input, the result is bit-identical to a flat fused
  reduction over the same block split — hierarchy changes the time, not
  the answer.

``inter=None`` defers to :func:`~repro.schedule.select_inter_family` on
the cluster's network model — the fabric-aware default.
"""

from __future__ import annotations

import numpy as np

from ..runtime.cluster import SimCluster
from ..runtime.nodemap import NodeMap
from ..schedule import (
    HomomorphicCodec,
    PlainCodec,
    ScheduleExecutor,
    hierarchical_allreduce_schedule,
    select_inter_family,
)
from .base import (
    CollectiveResult,
    channel_stats,
    split_blocks,
    traced_collective,
    validate_local_data,
)
from .ring import mpi_allreduce

__all__ = ["mpi_hierarchical_allreduce", "hzccl_hierarchical_allreduce"]


def _setup(cluster: SimCluster, local_data, nodemap: NodeMap, inter):
    arrays = validate_local_data(local_data)
    n = cluster.n_ranks
    if len(arrays) != n:
        raise ValueError(f"got {len(arrays)} rank arrays for {n} ranks")
    if nodemap.n_ranks != n:
        raise ValueError(
            f"NodeMap places {nodemap.n_ranks} ranks but the cluster has {n}"
        )
    if inter is None:
        inter = select_inter_family(cluster.network, nodemap)
    schedule = hierarchical_allreduce_schedule(nodemap, inter)
    state = [
        dict(enumerate(split_blocks(a, nodemap.n_nodes))) for a in arrays
    ]
    return arrays, schedule, state


def _outputs(state, n_ranks: int, n_nodes: int) -> list[np.ndarray]:
    return [
        np.concatenate([state[i][b] for b in range(n_nodes)])
        for i in range(n_ranks)
    ]


@traced_collective("mpi_hierarchical_allreduce")
def mpi_hierarchical_allreduce(
    cluster: SimCluster,
    local_data: list[np.ndarray],
    nodemap: NodeMap,
    inter: str | None = None,
) -> CollectiveResult:
    """Plain hierarchical Allreduce (float adds at both levels)."""
    _, schedule, state = _setup(cluster, local_data, nodemap, inter)
    outcome = ScheduleExecutor(cluster, PlainCodec(cluster)).run(
        schedule, state
    )
    return CollectiveResult(
        outputs=_outputs(state, cluster.n_ranks, nodemap.n_nodes),
        breakdown=cluster.breakdown(),
        bytes_on_wire=outcome.wire,
        fault_stats=channel_stats(cluster),
    )


@traced_collective("hzccl_hierarchical_allreduce")
def hzccl_hierarchical_allreduce(
    cluster: SimCluster,
    local_data: list[np.ndarray],
    config,
    nodemap: NodeMap,
    inter: str | None = None,
) -> CollectiveResult:
    """Homomorphic hierarchical Allreduce: compressed at every level.

    Cost shape per rank: ``n_nodes·CPR`` once, one HPR fold of the full
    vector per binomial step plus the inter-node family's folds at the
    leaders, and a single batched DPR decode — against the flat fused
    ring's ``n_ranks·CPR + (n_ranks−1)·HPR`` *invocations*, which is
    where the high-rank-count op-overhead dip of Fig. 10 comes from.
    """
    _, schedule, state = _setup(cluster, local_data, nodemap, inter)
    codec = HomomorphicCodec(cluster, config)
    outcome = ScheduleExecutor(cluster, codec).run(schedule, state)
    if outcome.degraded:
        # degrade-to-plain: rerun the whole collective on the flat
        # uncompressed ring (same contract as the other hzccl kernels)
        fallback = mpi_allreduce(cluster, local_data)
        return CollectiveResult(
            outputs=fallback.outputs,
            breakdown=cluster.breakdown(),
            bytes_on_wire=outcome.wire + fallback.bytes_on_wire,
            pipeline_stats=codec.engine.stats,
            degraded=True,
            fault_stats=channel_stats(cluster),
        )
    return CollectiveResult(
        outputs=_outputs(state, cluster.n_ranks, nodemap.n_nodes),
        breakdown=cluster.breakdown(),
        bytes_on_wire=outcome.wire,
        pipeline_stats=codec.engine.stats,
        fault_stats=channel_stats(cluster),
    )
