"""Batched rooted reduce: many same-shaped sessions in one fused schedule.

The aggregation service's batching window coalesces ``k`` concurrent
reduction sessions (same element count, same dtype, same rank count)
into a single :func:`~repro.schedule.batched_fused_reduce` schedule: one
prepare per rank covering all of its session vectors, one incast stream
per rank carrying the whole batch, and ``k`` fused k-way folds on the
root — one per session, each landing in its own ``("f", s)`` state key —
before a single batched decode.

Because the fused homomorphic fold is exact in the integer domain, the
coalesced batch is **bit-identical** to ``k`` independent reductions:
batching amortises the per-message α and the per-call setup without
changing a single decoded byte (pinned by the service property tests).
"""

from __future__ import annotations

import numpy as np

from ..runtime.cluster import SimCluster
from ..schedule import (
    HomomorphicCodec,
    ScheduleExecutor,
    batched_fused_reduce,
)
from .base import (
    CollectiveResult,
    channel_stats,
    traced_collective,
    validate_local_data,
)
from .rooted import mpi_reduce

__all__ = ["hzccl_batched_reduce"]


def _validate_batch(sessions, n_ranks: int) -> list[list[np.ndarray]]:
    """Validate every session and pin the same-shape batching invariant."""
    if not sessions:
        raise ValueError("empty batch: need at least one session")
    batch = [validate_local_data(s) for s in sessions]
    for s, arrays in enumerate(batch):
        if len(arrays) != n_ranks:
            raise ValueError(
                f"session {s}: got {len(arrays)} rank arrays for "
                f"{n_ranks} ranks"
            )
        if arrays[0].shape != batch[0][0].shape:
            raise ValueError(
                f"session {s}: shape {arrays[0].shape} differs from "
                f"session 0 shape {batch[0][0].shape} (batches must be "
                "same-shaped)"
            )
    return batch


@traced_collective("hzccl_batched_reduce")
def hzccl_batched_reduce(
    cluster: SimCluster,
    sessions: list[list[np.ndarray]],
    config,
    root: int = 0,
) -> CollectiveResult:
    """Reduce ``k`` same-shaped sessions to the root in one fused schedule.

    ``sessions[s]`` holds session ``s``'s per-rank contributions.  Unlike
    the per-rank ``outputs`` convention of the single-session collectives,
    the returned ``outputs`` is indexed **by session**: ``outputs[s]`` is
    session ``s``'s reduced vector (held by the root).

    Degrade: an unrecoverable compressed stream aborts the whole batch
    and every session reruns as a plain rooted Reduce (the standard
    degrade-to-plain contract, wire billed for both attempts).
    """
    n = cluster.n_ranks
    if not 0 <= root < n:
        raise IndexError(f"root {root} out of range for {n} ranks")
    batch = _validate_batch(sessions, n)
    k = len(batch)
    codec = HomomorphicCodec(cluster, config)
    state: list[dict] = [
        {("v", s, i): batch[s][i] for s in range(k)} for i in range(n)
    ]
    outcome = ScheduleExecutor(cluster, codec).run(
        batched_fused_reduce(n, k, root), state
    )
    if outcome.degraded:
        wire = outcome.wire
        outputs = []
        for arrays in batch:
            fallback = mpi_reduce(cluster, list(arrays), root)
            outputs.append(fallback.outputs[root])
            wire += fallback.bytes_on_wire
        return CollectiveResult(
            outputs=outputs,
            breakdown=cluster.breakdown(),
            bytes_on_wire=wire,
            pipeline_stats=codec.engine.stats,
            degraded=True,
            fault_stats=channel_stats(cluster),
        )
    outputs = [state[root][("f", s)] for s in range(k)]
    return CollectiveResult(
        outputs=outputs,
        breakdown=cluster.breakdown(),
        bytes_on_wire=outcome.wire,
        pipeline_stats=codec.engine.stats,
        degraded=False,
        fault_stats=channel_stats(cluster),
    )
