"""hZCCL collectives: homomorphic-compression-accelerated ring algorithms.

The paper's co-design (§III-C).  Differences from C-Coll:

* **Reduce_scatter** — every rank compresses its ``N`` blocks *once* in the
  first round (``N·CPR``); afterwards each round reduces the incoming
  compressed block into the local compressed partial with one homomorphic
  operation (HPR) — no per-round decompress/recompress.  The final round
  decompresses only the single owned block:
  ``N·CPR + (N−1)·HPR + 1·DPR`` (§III-C1).
* **Allreduce** — fuses the two stages: the Reduce_scatter stage *skips its
  final decompression* and hands the compressed reduced blocks (and their
  sizes) straight to the Allgather stage, which *skips its compression*,
  forwards bytes, and decompresses everything once at the end:
  ``N·CPR + (N−1)·HPR + N·DPR`` total (the paper books ``N−1`` DPR by not
  counting the own-block decompress; we execute and charge all ``N``).
* **Pipelined Allreduce** — the schedule-IR payoff: every ring round is
  split into chunks so the wire time of chunk ``s`` overlaps the
  homomorphic fold of chunk ``s − 1``
  (:func:`~repro.schedule.pipelined_ring_reduce_scatter`), something no
  monolithic send-then-fold loop could express.

All variants are ring schedules run by the
:class:`~repro.schedule.ScheduleExecutor` under the
:class:`~repro.schedule.HomomorphicCodec` — the collective-specific code
below only seeds state, picks slot names, and handles degrade fallbacks.

Accuracy: each input is quantised exactly once and all reductions are
exact in the integer domain, so the end-to-end error is bounded by
``N·eb`` per element *without* the per-round requantisation C-Coll pays.
"""

from __future__ import annotations

import numpy as np

from ..compression.format import CompressedField
from ..runtime.cluster import SimCluster
from ..runtime.topology import Ring
from ..schedule import (
    SYNC_OVERHEAD_S,
    HomomorphicCodec,
    ScheduleExecutor,
    pipelined_ring_reduce_scatter,
    ring_allgather,
    ring_reduce_scatter,
)
from .base import (
    CollectiveResult,
    channel_stats,
    split_blocks,
    traced_collective,
    validate_local_data,
)
from .ring import mpi_allgather, mpi_allreduce, mpi_reduce_scatter

__all__ = [
    "hzccl_reduce_scatter",
    "hzccl_allgather_compressed",
    "hzccl_allreduce",
    "hzccl_pipelined_allreduce",
]

#: slot map for the fused allreduce's allgather stage: inputs arrive
#: compressed, so there is no setup phase at all.
_GATHER_SLOTS = {"setup": None, "finalize": "decompress"}


@traced_collective("hzccl_reduce_scatter")
def hzccl_reduce_scatter(
    cluster: SimCluster,
    local_data: list[np.ndarray],
    config,
    return_compressed: bool = False,
) -> CollectiveResult:
    """hZCCL ring Reduce_scatter operating on compressed blocks.

    With ``return_compressed=True`` the final decompression is skipped and
    ``outputs`` holds :class:`CompressedField` objects — the fused hand-off
    the hZCCL Allreduce exploits.
    """
    arrays = validate_local_data(local_data)
    n = cluster.n_ranks
    if len(arrays) != n:
        raise ValueError(f"got {len(arrays)} rank arrays for {n} ranks")
    ring = Ring(n)
    codec = HomomorphicCodec(cluster, config)
    state = [dict(enumerate(split_blocks(a, n))) for a in arrays]
    outcome = ScheduleExecutor(cluster, codec).run(
        ring_reduce_scatter(n, finalize=not return_compressed), state
    )
    if outcome.degraded:
        # Degrade: finish on the plain uncompressed kernel (the outputs are
        # then plain float blocks regardless of ``return_compressed``).
        fallback = mpi_reduce_scatter(cluster, local_data)
        return CollectiveResult(
            outputs=fallback.outputs,
            breakdown=cluster.breakdown(),
            bytes_on_wire=outcome.wire + fallback.bytes_on_wire,
            pipeline_stats=codec.engine.stats,
            degraded=True,
            fault_stats=channel_stats(cluster),
        )
    outputs = [state[i][ring.owned_block(i)] for i in range(n)]
    return CollectiveResult(
        outputs=outputs,
        breakdown=cluster.breakdown(),
        bytes_on_wire=outcome.wire,
        pipeline_stats=codec.engine.stats,
        fault_stats=channel_stats(cluster),
    )


@traced_collective("hzccl_allgather_compressed")
def hzccl_allgather_compressed(
    cluster: SimCluster, chunks: list[CompressedField], config
) -> CollectiveResult:
    """hZCCL Allgather stage: inputs are already compressed.

    No compression happens here — sizes are synchronised, compressed bytes
    ride the ring for ``N − 1`` rounds, and each rank decompresses the
    gathered blocks once at the end.
    """
    n = cluster.n_ranks
    if len(chunks) != n:
        raise ValueError(f"got {len(chunks)} compressed chunks for {n} ranks")
    ring = Ring(n)
    codec = HomomorphicCodec(cluster, config, slots=_GATHER_SLOTS)

    for i in range(n):
        cluster.clocks[i].charge("OTHER", SYNC_OVERHEAD_S)  # size sync only

    state = [{ring.owned_block(i): chunks[i]} for i in range(n)]
    outcome = ScheduleExecutor(cluster, codec).run(ring_allgather(n), state)
    if outcome.degraded:
        # Degrade: decompress the local contributions and forward plain.
        plain_chunks = []
        for i in range(n):
            with cluster.timed(i, "DPR"):
                plain_chunks.append(codec.comp.decompress(chunks[i]))
        cluster.end_compute_phase()
        fallback = mpi_allgather(cluster, plain_chunks)
        return CollectiveResult(
            outputs=fallback.outputs,
            breakdown=cluster.breakdown(),
            bytes_on_wire=outcome.wire + fallback.bytes_on_wire,
            degraded=True,
            fault_stats=channel_stats(cluster),
        )
    outputs = [
        np.concatenate([state[i][k] for k in range(n)]) for i in range(n)
    ]
    return CollectiveResult(
        outputs=outputs,
        breakdown=cluster.breakdown(),
        bytes_on_wire=outcome.wire,
        fault_stats=channel_stats(cluster),
    )


@traced_collective("hzccl_allreduce")
def hzccl_allreduce(
    cluster: SimCluster, local_data: list[np.ndarray], config
) -> CollectiveResult:
    """hZCCL fused Allreduce: compressed Reduce_scatter → compressed Allgather.

    The Reduce_scatter stage returns compressed blocks (no decompression),
    the Allgather stage forwards them without compressing — the paper's
    tailored optimisation on top of the per-stage gains.
    """
    rs = hzccl_reduce_scatter(cluster, local_data, config, return_compressed=True)
    if rs.degraded:
        # The Reduce_scatter stage already fell back to plain blocks;
        # finish with the plain allgather.
        ag = mpi_allgather(cluster, rs.outputs)
    else:
        ag = hzccl_allgather_compressed(cluster, rs.outputs, config)
    return CollectiveResult(
        outputs=ag.outputs,
        breakdown=cluster.breakdown(),
        bytes_on_wire=rs.bytes_on_wire + ag.bytes_on_wire,
        pipeline_stats=rs.pipeline_stats,
        degraded=rs.degraded or ag.degraded,
        fault_stats=channel_stats(cluster),
    )


@traced_collective("hzccl_pipelined_allreduce")
def hzccl_pipelined_allreduce(
    cluster: SimCluster,
    local_data: list[np.ndarray],
    config,
    n_chunks: int = 2,
) -> CollectiveResult:
    """Chunk-pipelined hZCCL Allreduce (wire/HPR overlap per ring round).

    Functionally equivalent to :func:`hzccl_allreduce` over finer blocks:
    every block is split into ``n_chunks`` independently compressed chunks
    whose transfers overlap the previous chunk's homomorphic fold.  The
    overlap itself is a *cost-model* property (simulated time cannot
    overlap wall-clock kernel runs); the outputs and the fault behaviour
    exercise the exact staged schedule the model prices.
    """
    arrays = validate_local_data(local_data)
    n = cluster.n_ranks
    if len(arrays) != n:
        raise ValueError(f"got {len(arrays)} rank arrays for {n} ranks")
    ring = Ring(n)
    codec = HomomorphicCodec(cluster, config)
    state = [
        {
            (b, c): chunk
            for b, block in enumerate(split_blocks(a, n))
            for c, chunk in enumerate(split_blocks(block, n_chunks))
        }
        for a in arrays
    ]
    executor = ScheduleExecutor(cluster, codec)
    rs = executor.run(
        pipelined_ring_reduce_scatter(n, n_chunks, finalize=False), state
    )
    if rs.degraded:
        fallback = mpi_allreduce(cluster, local_data)
        return CollectiveResult(
            outputs=fallback.outputs,
            breakdown=cluster.breakdown(),
            bytes_on_wire=rs.wire + fallback.bytes_on_wire,
            pipeline_stats=codec.engine.stats,
            degraded=True,
            fault_stats=channel_stats(cluster),
        )
    # fused hand-off: owned chunks stay compressed into the allgather stage
    for i in range(n):
        cluster.clocks[i].charge("OTHER", SYNC_OVERHEAD_S)  # size sync only
    ag_codec = HomomorphicCodec(
        cluster, config, engine=codec.engine, slots=_GATHER_SLOTS
    )
    ag_state = [
        {
            (ring.owned_block(i), c): state[i][(ring.owned_block(i), c)]
            for c in range(n_chunks)
        }
        for i in range(n)
    ]
    ag = ScheduleExecutor(cluster, ag_codec).run(
        ring_allgather(n, chunks=n_chunks), ag_state
    )
    if ag.degraded:
        fallback = mpi_allreduce(cluster, local_data)
        return CollectiveResult(
            outputs=fallback.outputs,
            breakdown=cluster.breakdown(),
            bytes_on_wire=rs.wire + ag.wire + fallback.bytes_on_wire,
            pipeline_stats=codec.engine.stats,
            degraded=True,
            fault_stats=channel_stats(cluster),
        )
    outputs = [
        np.concatenate(
            [ag_state[i][(k, c)] for k in range(n) for c in range(n_chunks)]
        )
        for i in range(n)
    ]
    return CollectiveResult(
        outputs=outputs,
        breakdown=cluster.breakdown(),
        bytes_on_wire=rs.wire + ag.wire,
        pipeline_stats=codec.engine.stats,
        fault_stats=channel_stats(cluster),
    )
