"""hZCCL collectives: homomorphic-compression-accelerated ring algorithms.

The paper's co-design (§III-C).  Differences from C-Coll:

* **Reduce_scatter** — every rank compresses its ``N`` blocks *once* in the
  first round (``N·CPR``); afterwards each round reduces the incoming
  compressed block into the local compressed partial with one homomorphic
  operation (HPR) — no per-round decompress/recompress.  The final round
  decompresses only the single owned block:
  ``N·CPR + (N−1)·HPR + 1·DPR`` (§III-C1).
* **Allreduce** — fuses the two stages: the Reduce_scatter stage *skips its
  final decompression* and hands the compressed reduced blocks (and their
  sizes) straight to the Allgather stage, which *skips its compression*,
  forwards bytes, and decompresses everything once at the end:
  ``N·CPR + (N−1)·HPR + N·DPR`` total (the paper books ``N−1`` DPR by not
  counting the own-block decompress; we execute and charge all ``N``).

Accuracy: each input is quantised exactly once and all reductions are
exact in the integer domain, so the end-to-end error is bounded by
``N·eb`` per element *without* the per-round requantisation C-Coll pays.
"""

from __future__ import annotations

import numpy as np

from ..compression.format import CompressedField
from ..compression.fzlight import FZLight
from ..homomorphic.hzdynamic import HZDynamic
from ..runtime.cluster import SimCluster
from ..runtime.faults import UnrecoverableStreamError
from ..runtime.topology import Ring
from .base import (
    CollectiveResult,
    channel_stats,
    split_blocks,
    traced_collective,
    validate_local_data,
)
from .ring import mpi_allgather, mpi_reduce_scatter

__all__ = [
    "hzccl_reduce_scatter",
    "hzccl_allgather_compressed",
    "hzccl_allreduce",
]

_SYNC_OVERHEAD_S = 2e-6  # size-synchronisation bookkeeping per rank ("OTHER")


def _compressor(config) -> FZLight:
    return FZLight(
        block_size=config.block_size, n_threadblocks=config.n_threadblocks
    )


@traced_collective("hzccl_reduce_scatter")
def hzccl_reduce_scatter(
    cluster: SimCluster,
    local_data: list[np.ndarray],
    config,
    return_compressed: bool = False,
) -> CollectiveResult:
    """hZCCL ring Reduce_scatter operating on compressed blocks.

    With ``return_compressed=True`` the final decompression is skipped and
    ``outputs`` holds :class:`CompressedField` objects — the fused hand-off
    the hZCCL Allreduce exploits.
    """
    arrays = validate_local_data(local_data)
    n = cluster.n_ranks
    if len(arrays) != n:
        raise ValueError(f"got {len(arrays)} rank arrays for {n} ranks")
    ring = Ring(n)
    comp = _compressor(config)
    engine = HZDynamic()
    eb = config.error_bound
    wire = 0

    # Round 1 setup: each rank compresses all N of its blocks exactly once.
    partial: list[list[CompressedField]] = []
    with cluster.phase("compress"):
        for i in range(n):
            blocks = split_blocks(arrays[i], n)
            compressed_blocks = []
            with cluster.timed(i, "CPR"):
                for blk in blocks:
                    compressed_blocks.append(comp.compress(blk, abs_eb=eb))
            partial.append(compressed_blocks)
        cluster.end_compute_phase()

    channel = cluster.channel
    try:
        with cluster.phase("exchange"):
            for j in range(n - 1):
                outbox = [partial[i][ring.send_block(i, j)] for i in range(n)]
                max_msg = 0
                for i in range(n):
                    pred = ring.predecessor(i)
                    delivery = channel.deliver_compressed(
                        pred, i, outbox[pred]
                    )
                    incoming = delivery.payload
                    wire += delivery.nbytes
                    max_msg = max(max_msg, incoming.nbytes)
                    blk = ring.recv_block(i, j)
                    with cluster.timed(i, "HPR"):
                        # one fused fold of the local partial with the
                        # incoming compressed block (k = 2 instance of the
                        # k-way kernel)
                        partial[i][blk] = engine.reduce_fused(
                            (partial[i][blk], incoming)
                        )
                cluster.end_round(max_msg)
    except UnrecoverableStreamError:
        # Degrade: finish on the plain uncompressed kernel (the outputs are
        # then plain float blocks regardless of ``return_compressed``).
        channel.degrade()
        fallback = mpi_reduce_scatter(cluster, local_data)
        return CollectiveResult(
            outputs=fallback.outputs,
            breakdown=cluster.breakdown(),
            bytes_on_wire=wire + fallback.bytes_on_wire,
            pipeline_stats=engine.stats,
            degraded=True,
            fault_stats=channel_stats(cluster),
        )

    reduced = [partial[i][ring.owned_block(i)] for i in range(n)]
    if return_compressed:
        outputs: list = reduced
    else:
        outputs = []
        with cluster.phase("decompress"):
            for i in range(n):
                with cluster.timed(i, "DPR"):
                    outputs.append(comp.decompress(reduced[i]))
            cluster.end_compute_phase()

    return CollectiveResult(
        outputs=outputs,
        breakdown=cluster.breakdown(),
        bytes_on_wire=wire,
        pipeline_stats=engine.stats,
        fault_stats=channel_stats(cluster),
    )


@traced_collective("hzccl_allgather_compressed")
def hzccl_allgather_compressed(
    cluster: SimCluster, chunks: list[CompressedField], config
) -> CollectiveResult:
    """hZCCL Allgather stage: inputs are already compressed.

    No compression happens here — sizes are synchronised, compressed bytes
    ride the ring for ``N − 1`` rounds, and each rank decompresses the
    gathered blocks once at the end.
    """
    n = cluster.n_ranks
    if len(chunks) != n:
        raise ValueError(f"got {len(chunks)} compressed chunks for {n} ranks")
    ring = Ring(n)
    comp = _compressor(config)
    wire = 0

    for i in range(n):
        cluster.clocks[i].charge("OTHER", _SYNC_OVERHEAD_S)  # size sync only

    channel = cluster.channel
    gathered: list[dict[int, CompressedField]] = [
        {ring.owned_block(i): chunks[i]} for i in range(n)
    ]
    try:
        with cluster.phase("forward"):
            for j in range(n - 1):
                outbox = {}
                for i in range(n):
                    blk = ring.allgather_send_block(i, j)
                    outbox[i] = (blk, gathered[i][blk])
                max_msg = 0
                for i in range(n):
                    pred = ring.predecessor(i)
                    blk, field = outbox[pred]
                    delivery = channel.deliver_compressed(pred, i, field)
                    wire += delivery.nbytes
                    max_msg = max(max_msg, field.nbytes)
                    gathered[i][blk] = delivery.payload
                cluster.end_round(max_msg)
    except UnrecoverableStreamError:
        # Degrade: decompress the local contributions and forward plain.
        channel.degrade()
        plain_chunks = []
        for i in range(n):
            with cluster.timed(i, "DPR"):
                plain_chunks.append(comp.decompress(chunks[i]))
        cluster.end_compute_phase()
        fallback = mpi_allgather(cluster, plain_chunks)
        return CollectiveResult(
            outputs=fallback.outputs,
            breakdown=cluster.breakdown(),
            bytes_on_wire=wire + fallback.bytes_on_wire,
            degraded=True,
            fault_stats=channel_stats(cluster),
        )

    outputs = []
    with cluster.phase("decompress"):
        for i in range(n):
            parts = []
            with cluster.timed(i, "DPR"):
                for k in range(n):
                    parts.append(comp.decompress(gathered[i][k]))
            outputs.append(np.concatenate(parts))
        cluster.end_compute_phase()

    return CollectiveResult(
        outputs=outputs,
        breakdown=cluster.breakdown(),
        bytes_on_wire=wire,
        fault_stats=channel_stats(cluster),
    )


@traced_collective("hzccl_allreduce")
def hzccl_allreduce(
    cluster: SimCluster, local_data: list[np.ndarray], config
) -> CollectiveResult:
    """hZCCL fused Allreduce: compressed Reduce_scatter → compressed Allgather.

    The Reduce_scatter stage returns compressed blocks (no decompression),
    the Allgather stage forwards them without compressing — the paper's
    tailored optimisation on top of the per-stage gains.
    """
    rs = hzccl_reduce_scatter(cluster, local_data, config, return_compressed=True)
    if rs.degraded:
        # The Reduce_scatter stage already fell back to plain blocks;
        # finish with the plain allgather.
        ag = mpi_allgather(cluster, rs.outputs)
    else:
        ag = hzccl_allgather_compressed(cluster, rs.outputs, config)
    return CollectiveResult(
        outputs=ag.outputs,
        breakdown=cluster.breakdown(),
        bytes_on_wire=rs.bytes_on_wire + ag.bytes_on_wire,
        pipeline_stats=rs.pipeline_stats,
        degraded=rs.degraded or ag.degraded,
        fault_stats=channel_stats(cluster),
    )
