"""Rabenseifner's Allreduce (recursive halving + recursive doubling).

MPICH's other large-message Allreduce (Thakur et al. 2005): instead of a
``N − 1``-round ring, reduce-scatter by *recursive vector halving* and
allgather by *recursive doubling* — ``2·log2 N`` rounds total, moving the
same total volume but paying far less latency.  The paper evaluates the
ring form; this module adds the Rabenseifner form for both the plain and
the homomorphic kernels so the harness can show that the co-design is
algorithm-agnostic: blocks are pre-compressed once and folded with
hZ-dynamic regardless of which schedule moves them.

Rank counts must be powers of two (the classic formulation; MPICH's
non-power-of-two pre-step is out of scope and rejected explicitly).
"""

from __future__ import annotations

import numpy as np

from ..compression.format import CompressedField
from ..compression.fzlight import FZLight
from ..homomorphic.hzdynamic import HZDynamic
from ..runtime.cluster import SimCluster
from ..runtime.faults import UnrecoverableStreamError
from .base import (
    CollectiveResult,
    channel_stats,
    split_blocks,
    traced_collective,
    validate_local_data,
)

__all__ = ["rabenseifner_allreduce", "hzccl_rabenseifner_allreduce"]


def _check_power_of_two(n: int) -> int:
    if n < 2 or n & (n - 1):
        raise ValueError(
            f"Rabenseifner's algorithm needs a power-of-two rank count, got {n}"
        )
    return int(np.log2(n))


def _segment_ranges(n: int, rank: int, levels: int):
    """Yield ``(round, partner, keep_range, send_range)`` per halving round.

    Ranges are block-index intervals over the ``n`` segments; at round
    ``k`` the rank keeps the half of its current range containing its own
    final segment and sends the other half to its partner.
    """
    lo, hi = 0, n
    for k in range(levels):
        mid = (lo + hi) // 2
        partner = rank ^ (n >> (k + 1))
        if rank < partner:
            keep, send = (lo, mid), (mid, hi)
        else:
            keep, send = (mid, hi), (lo, mid)
        yield k, partner, keep, send
        lo, hi = keep


@traced_collective("rabenseifner_allreduce")
def rabenseifner_allreduce(
    cluster: SimCluster, local_data: list[np.ndarray]
) -> CollectiveResult:
    """Plain Rabenseifner Allreduce (SUM)."""
    arrays = validate_local_data(local_data)
    n = cluster.n_ranks
    if len(arrays) != n:
        raise ValueError(f"got {len(arrays)} rank arrays for {n} ranks")
    levels = _check_power_of_two(n)
    segs = [split_blocks(a, n) for a in arrays]
    schedules = [list(_segment_ranges(n, i, levels)) for i in range(n)]
    # halving ranges nest, so a segment is folded again in later rounds;
    # once a rank owns a freshly allocated partial it accumulates in place
    # (the initial segments are views into caller arrays and must not be
    # mutated).  Partners read disjoint halves from the snapshot, so the
    # in-place update never races a concurrent reader.
    owned = [[False] * n for _ in range(n)]
    wire = 0

    channel = cluster.channel
    # phase 1: recursive halving reduce-scatter.  All exchanges of a round
    # happen simultaneously, so partners' values are read from a snapshot.
    with cluster.phase("halving"):
        for k in range(levels):
            snapshot = [list(s) for s in segs]
            max_msg = 0
            for i in range(n):
                _, partner, keep, _send = schedules[i][k]
                nbytes = sum(
                    snapshot[partner][j].nbytes
                    for j in range(keep[0], keep[1])
                )
                delivery = channel.deliver_plain(partner, i, None, nbytes)
                wire += delivery.nbytes
                max_msg = max(max_msg, nbytes)
                with cluster.timed(i, "CPT"):
                    for j in range(keep[0], keep[1]):
                        if owned[i][j]:
                            np.add(
                                segs[i][j],
                                snapshot[partner][j],
                                out=segs[i][j],
                            )
                        else:
                            segs[i][j] = snapshot[i][j] + snapshot[partner][j]
                            owned[i][j] = True
            cluster.end_round(max_msg)

    # after halving, rank i holds the full sum of exactly segment i
    gathered = [{i: segs[i][i]} for i in range(n)]

    # phase 2: recursive doubling allgather
    with cluster.phase("doubling"):
        for k in range(levels - 1, -1, -1):
            snapshot = [dict(g) for g in gathered]
            max_msg = 0
            for i in range(n):
                partner = i ^ (n >> (k + 1))
                nbytes = sum(v.nbytes for v in snapshot[partner].values())
                delivery = channel.deliver_plain(partner, i, None, nbytes)
                wire += delivery.nbytes
                max_msg = max(max_msg, nbytes)
                gathered[i].update(snapshot[partner])
            cluster.end_round(max_msg)

    outputs = [
        np.concatenate([gathered[i][j] for j in range(n)]) for i in range(n)
    ]
    return CollectiveResult(
        outputs=outputs,
        breakdown=cluster.breakdown(),
        bytes_on_wire=wire,
        fault_stats=channel_stats(cluster),
    )


@traced_collective("hzccl_rabenseifner_allreduce")
def hzccl_rabenseifner_allreduce(
    cluster: SimCluster, local_data: list[np.ndarray], config
) -> CollectiveResult:
    """Homomorphic Rabenseifner Allreduce: pre-compress once, fold with
    hZ-dynamic through the halving schedule, forward compressed segments
    through the doubling schedule, decompress once."""
    arrays = validate_local_data(local_data)
    n = cluster.n_ranks
    if len(arrays) != n:
        raise ValueError(f"got {len(arrays)} rank arrays for {n} ranks")
    levels = _check_power_of_two(n)
    comp = FZLight(block_size=config.block_size, n_threadblocks=config.n_threadblocks)
    engine = HZDynamic()
    eb = config.error_bound
    wire = 0

    segs: list[list[CompressedField]] = []
    with cluster.phase("compress"):
        for i in range(n):
            with cluster.timed(i, "CPR"):
                segs.append(
                    [
                        comp.compress(b, abs_eb=eb)
                        for b in split_blocks(arrays[i], n)
                    ]
                )
        cluster.end_compute_phase()

    channel = cluster.channel
    schedules = [list(_segment_ranges(n, i, levels)) for i in range(n)]
    try:
        with cluster.phase("halving"):
            for k in range(levels):
                snapshot = [list(s) for s in segs]
                max_msg = 0
                for i in range(n):
                    _, partner, keep, _ = schedules[i][k]
                    # the round's segments travel as one bundled message;
                    # the scheduled transfer is charged in aggregate, then
                    # every segment is validated (faults charge only their
                    # handling)
                    nbytes = sum(
                        snapshot[partner][j].nbytes
                        for j in range(keep[0], keep[1])
                    )
                    channel.charge_link(partner, i, nbytes)
                    wire += nbytes
                    max_msg = max(max_msg, nbytes)
                    received: dict[int, CompressedField] = {}
                    for j in range(keep[0], keep[1]):
                        delivery = channel.deliver_compressed(
                            partner, i, snapshot[partner][j], charge_base=False
                        )
                        wire += delivery.nbytes
                        received[j] = delivery.payload
                    with cluster.timed(i, "HPR"):
                        for j in range(keep[0], keep[1]):
                            segs[i][j] = engine.reduce_fused(
                                (snapshot[i][j], received[j])
                            )
                cluster.end_round(max_msg)

        gathered: list[dict[int, CompressedField]] = [
            {i: segs[i][i]} for i in range(n)
        ]
        with cluster.phase("doubling"):
            for k in range(levels - 1, -1, -1):
                snapshot2 = [dict(g) for g in gathered]
                max_msg = 0
                for i in range(n):
                    partner = i ^ (n >> (k + 1))
                    nbytes = sum(v.nbytes for v in snapshot2[partner].values())
                    channel.charge_link(partner, i, nbytes)
                    wire += nbytes
                    max_msg = max(max_msg, nbytes)
                    for j, seg in snapshot2[partner].items():
                        delivery = channel.deliver_compressed(
                            partner, i, seg, charge_base=False
                        )
                        wire += delivery.nbytes
                        gathered[i][j] = delivery.payload
                cluster.end_round(max_msg)
    except UnrecoverableStreamError:
        # Degrade: rerun on the plain Rabenseifner schedule.
        channel.degrade()
        fallback = rabenseifner_allreduce(cluster, local_data)
        return CollectiveResult(
            outputs=fallback.outputs,
            breakdown=cluster.breakdown(),
            bytes_on_wire=wire + fallback.bytes_on_wire,
            pipeline_stats=engine.stats,
            degraded=True,
            fault_stats=channel_stats(cluster),
        )

    outputs = []
    with cluster.phase("decompress"):
        for i in range(n):
            with cluster.timed(i, "DPR"):
                outputs.append(
                    np.concatenate(
                        [comp.decompress(gathered[i][j]) for j in range(n)]
                    )
                )
        cluster.end_compute_phase()
    return CollectiveResult(
        outputs=outputs,
        breakdown=cluster.breakdown(),
        bytes_on_wire=wire,
        pipeline_stats=engine.stats,
        fault_stats=channel_stats(cluster),
    )
