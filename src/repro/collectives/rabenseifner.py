"""Rabenseifner's Allreduce (recursive halving + recursive doubling).

MPICH's other large-message Allreduce (Thakur et al. 2005): instead of a
``N − 1``-round ring, reduce-scatter by *recursive vector halving* and
allgather by *recursive doubling* — ``2·log2 N`` rounds total, moving the
same total volume but paying far less latency.  The paper evaluates the
ring form; this module adds the Rabenseifner form for both the plain and
the homomorphic kernels so the harness can show that the co-design is
algorithm-agnostic: blocks are pre-compressed once and folded with
hZ-dynamic regardless of which schedule moves them.

The halving/doubling round structure is generated once by
:func:`~repro.schedule.rabenseifner_allreduce_schedule`; both variants
below run that same schedule through the
:class:`~repro.schedule.ScheduleExecutor`, differing only in the payload
codec (plain float adds vs. pre-compress / homomorphic fold / decompress).

Rank counts must be powers of two (the classic formulation; MPICH's
non-power-of-two pre-step is out of scope and rejected explicitly).
"""

from __future__ import annotations

import numpy as np

from ..runtime.cluster import SimCluster
from ..schedule import (
    HomomorphicCodec,
    PlainCodec,
    ScheduleExecutor,
    rabenseifner_allreduce_schedule,
)
from .base import (
    CollectiveResult,
    channel_stats,
    split_blocks,
    traced_collective,
    validate_local_data,
)

__all__ = ["rabenseifner_allreduce", "hzccl_rabenseifner_allreduce"]


@traced_collective("rabenseifner_allreduce")
def rabenseifner_allreduce(
    cluster: SimCluster, local_data: list[np.ndarray]
) -> CollectiveResult:
    """Plain Rabenseifner Allreduce (SUM)."""
    arrays = validate_local_data(local_data)
    n = cluster.n_ranks
    if len(arrays) != n:
        raise ValueError(f"got {len(arrays)} rank arrays for {n} ranks")
    schedule = rabenseifner_allreduce_schedule(n)
    state = [dict(enumerate(split_blocks(a, n))) for a in arrays]
    outcome = ScheduleExecutor(cluster, PlainCodec(cluster)).run(
        schedule, state
    )
    outputs = [
        np.concatenate([state[i][j] for j in range(n)]) for i in range(n)
    ]
    return CollectiveResult(
        outputs=outputs,
        breakdown=cluster.breakdown(),
        bytes_on_wire=outcome.wire,
        fault_stats=channel_stats(cluster),
    )


@traced_collective("hzccl_rabenseifner_allreduce")
def hzccl_rabenseifner_allreduce(
    cluster: SimCluster, local_data: list[np.ndarray], config
) -> CollectiveResult:
    """Homomorphic Rabenseifner Allreduce: pre-compress once, fold with
    hZ-dynamic through the halving schedule, forward compressed segments
    through the doubling schedule, decompress once."""
    arrays = validate_local_data(local_data)
    n = cluster.n_ranks
    if len(arrays) != n:
        raise ValueError(f"got {len(arrays)} rank arrays for {n} ranks")
    schedule = rabenseifner_allreduce_schedule(n)
    codec = HomomorphicCodec(cluster, config)
    state = [dict(enumerate(split_blocks(a, n))) for a in arrays]
    outcome = ScheduleExecutor(cluster, codec).run(schedule, state)
    if outcome.degraded:
        # Degrade: rerun on the plain Rabenseifner schedule.
        fallback = rabenseifner_allreduce(cluster, local_data)
        return CollectiveResult(
            outputs=fallback.outputs,
            breakdown=cluster.breakdown(),
            bytes_on_wire=outcome.wire + fallback.bytes_on_wire,
            pipeline_stats=codec.engine.stats,
            degraded=True,
            fault_stats=channel_stats(cluster),
        )
    outputs = [
        np.concatenate([state[i][j] for j in range(n)]) for i in range(n)
    ]
    return CollectiveResult(
        outputs=outputs,
        breakdown=cluster.breakdown(),
        bytes_on_wire=outcome.wire,
        pipeline_stats=codec.engine.stats,
        fault_stats=channel_stats(cluster),
    )
