"""Collective algorithms over the simulated cluster.

Three families, all ring-based:

* :mod:`~repro.collectives.ring` — plain MPI (no compression) baseline.
* :mod:`~repro.collectives.ccoll` — C-Coll, compression with the DOC
  workflow (the state-of-the-art baseline).
* :mod:`~repro.collectives.hzccl` — the paper's homomorphic co-design.
"""

from .base import CollectiveResult, split_blocks, validate_local_data
from .batch import hzccl_batched_reduce
from .ccoll import ccoll_allgather, ccoll_allreduce, ccoll_reduce_scatter
from .hierarchy import hzccl_hierarchical_allreduce, mpi_hierarchical_allreduce
from .p2p import p2p_allreduce, p2p_hzccl_allreduce, p2p_reduce_scatter
from .rabenseifner import hzccl_rabenseifner_allreduce, rabenseifner_allreduce
from .hzccl import (
    hzccl_allgather_compressed,
    hzccl_allreduce,
    hzccl_pipelined_allreduce,
    hzccl_reduce_scatter,
)
from .ring import mpi_allgather, mpi_allreduce, mpi_reduce_scatter
from .rooted import (
    compressed_bcast,
    hzccl_reduce,
    hzccl_reduce_direct,
    mpi_bcast,
    mpi_reduce,
)
from .tuned import run_candidate, tuned_allreduce

__all__ = [
    "CollectiveResult",
    "split_blocks",
    "validate_local_data",
    "mpi_reduce_scatter",
    "mpi_allgather",
    "mpi_allreduce",
    "ccoll_reduce_scatter",
    "ccoll_allgather",
    "ccoll_allreduce",
    "hzccl_reduce_scatter",
    "hzccl_allgather_compressed",
    "hzccl_allreduce",
    "hzccl_pipelined_allreduce",
    "p2p_reduce_scatter",
    "p2p_allreduce",
    "p2p_hzccl_allreduce",
    "mpi_reduce",
    "hzccl_reduce",
    "hzccl_reduce_direct",
    "mpi_bcast",
    "compressed_bcast",
    "hzccl_batched_reduce",
    "rabenseifner_allreduce",
    "hzccl_rabenseifner_allreduce",
    "mpi_hierarchical_allreduce",
    "hzccl_hierarchical_allreduce",
    "tuned_allreduce",
    "run_candidate",
]
