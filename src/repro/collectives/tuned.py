"""Autotuned Allreduce: consult the tuning table, dispatch the pick.

:func:`tuned_allreduce` closes the loop the tuner opens: classify the
actual data's roughness, build the :class:`~repro.schedule.tuner.TuningKey`
for this call, resolve it (persisted table → in-memory LRU → live
enumeration), and run the picked candidate through the *existing* family
entry point — so the tuned path inherits every family's fault handling
and degrade-to-plain contract unchanged.

Hierarchical picks need placement information: when the caller passes no
:class:`~repro.runtime.nodemap.NodeMap`, the entry's ``flat_pick`` (the
best non-hierarchical candidate, recorded at tuning time) runs instead —
a table built on a placed grid still serves placement-free callers.

Every decision is observable through :mod:`repro.obs`::

    tuner.lookups                 one per tuned collective
    tuner.source.{table,memo,enumerated}
    tuner.pick.<slug>             which candidate actually ran
    tuner.flat_fallback           hierarchical pick demoted (no nodemap)
"""

from __future__ import annotations

import numpy as np

from ..obs.metrics import METRICS
from ..runtime.cluster import SimCluster
from ..runtime.nodemap import NodeMap
from ..schedule.tuner import (
    Candidate,
    TuningKey,
    TuningTable,
    classify_roughness,
    fabric_name,
    load_default_table,
    lookup_entry,
    resolve_table_path,
    size_bucket,
)
from .base import CollectiveResult, validate_local_data
from .hierarchy import hzccl_hierarchical_allreduce, mpi_hierarchical_allreduce
from .hzccl import hzccl_allreduce, hzccl_pipelined_allreduce
from .rabenseifner import hzccl_rabenseifner_allreduce, rabenseifner_allreduce
from .ring import mpi_allreduce

__all__ = ["tuned_allreduce", "run_candidate"]


def _default_rates():
    # Lazy: repro.core imports this package back (api → collectives), so
    # the rates import must not run at collectives import time.
    from ..core.cost_model import PAPER_BROADWELL

    return PAPER_BROADWELL


def run_candidate(
    cand: Candidate,
    cluster: SimCluster,
    local_data: list[np.ndarray],
    config,
    nodemap: NodeMap | None = None,
) -> CollectiveResult:
    """Dispatch one tuner candidate to its family entry point."""
    if cand.hierarchical:
        if nodemap is None:
            raise ValueError(f"candidate {cand.slug()} needs a nodemap")
        inter = cand.family.removeprefix("hier-")
        if cand.codec == "hz":
            return hzccl_hierarchical_allreduce(
                cluster, local_data, config, nodemap, inter
            )
        return mpi_hierarchical_allreduce(cluster, local_data, nodemap, inter)
    if cand.family == "pipelined":
        return hzccl_pipelined_allreduce(
            cluster, local_data, config, n_chunks=cand.chunks
        )
    if cand.family == "rabenseifner":
        if cand.codec == "hz":
            return hzccl_rabenseifner_allreduce(cluster, local_data, config)
        return rabenseifner_allreduce(cluster, local_data)
    if cand.codec == "hz":
        return hzccl_allreduce(cluster, local_data, config)
    return mpi_allreduce(cluster, local_data)


def tuned_allreduce(
    cluster: SimCluster,
    local_data: list[np.ndarray],
    config,
    nodemap: NodeMap | None = None,
    table: TuningTable | None = None,
    rates=None,
) -> CollectiveResult:
    """SUM Allreduce through the schedule autotuner.

    ``table=None`` loads the configured table (``config.tuning_table_path``
    or ``$REPRO_TUNING_TABLE``; missing file ⇒ empty table).  A key miss
    never fails — it falls back to live candidate enumeration, memoised
    process-wide.
    """
    arrays = validate_local_data(local_data)
    if len(arrays) != cluster.n_ranks:
        raise ValueError(
            f"got {len(arrays)} rank arrays for {cluster.n_ranks} ranks"
        )
    if table is None:
        table = load_default_table(resolve_table_path(config))
    if rates is None:
        rates = _default_rates()

    key = TuningKey(
        op="allreduce",
        dtype=str(arrays[0].dtype),
        bucket=size_bucket(int(arrays[0].nbytes)),
        n_ranks=cluster.n_ranks,
        fabric=fabric_name(cluster.network),
        roughness=classify_roughness(arrays[0], config.error_bound),
    )
    entry, source = lookup_entry(key, cluster.network, rates, nodemap, table)

    cand = entry.pick
    flat_fallback = False
    if cand.hierarchical and nodemap is None:
        cand, flat_fallback = entry.flat_pick, True

    if METRICS.enabled:
        METRICS.inc("tuner.lookups")
        METRICS.inc(f"tuner.source.{source}")
        METRICS.inc(f"tuner.pick.{cand.slug()}")
        if flat_fallback:
            METRICS.inc("tuner.flat_fallback")

    return run_candidate(cand, cluster, arrays, config, nodemap)
