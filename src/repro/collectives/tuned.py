"""Autotuned Allreduce: consult the tuning table, dispatch the pick.

:func:`tuned_allreduce` closes the loop the tuner opens: classify the
actual data's roughness, describe the call as a
:class:`~repro.core.pipeline.CollectiveRequest`, and let the pipeline's
``plan()`` resolve it (persisted table → in-memory LRU → live
enumeration) and ``execute()`` run the picked candidate through the
*existing* family entry point (:func:`run_candidate`) — so the tuned
path inherits every family's fault handling and degrade-to-plain
contract unchanged, and repeated shapes hit the process-wide
:class:`~repro.core.pipeline.PlanCache`.

Hierarchical picks need placement information: when the caller passes no
:class:`~repro.runtime.nodemap.NodeMap`, the entry's ``flat_pick`` (the
best non-hierarchical candidate, recorded at tuning time) runs instead —
a table built on a placed grid still serves placement-free callers.

Every decision is observable through :mod:`repro.obs`::

    tuner.lookups                 one per tuned collective
    tuner.source.{table,memo,enumerated}
    tuner.pick.<slug>             which candidate actually ran
    tuner.flat_fallback           hierarchical pick demoted (no nodemap)
"""

from __future__ import annotations

import numpy as np

from ..runtime.cluster import SimCluster
from ..runtime.nodemap import NodeMap
from ..schedule.tuner import Candidate, TuningTable, classify_roughness
from .base import CollectiveResult, validate_local_data
from .hierarchy import hzccl_hierarchical_allreduce, mpi_hierarchical_allreduce
from .hzccl import hzccl_allreduce, hzccl_pipelined_allreduce
from .rabenseifner import hzccl_rabenseifner_allreduce, rabenseifner_allreduce
from .ring import mpi_allreduce

__all__ = ["tuned_allreduce", "run_candidate"]


def run_candidate(
    cand: Candidate,
    cluster: SimCluster,
    local_data: list[np.ndarray],
    config,
    nodemap: NodeMap | None = None,
) -> CollectiveResult:
    """Dispatch one tuner candidate to its family entry point."""
    if cand.hierarchical:
        if nodemap is None:
            raise ValueError(f"candidate {cand.slug()} needs a nodemap")
        inter = cand.family.removeprefix("hier-")
        if cand.codec == "hz":
            return hzccl_hierarchical_allreduce(
                cluster, local_data, config, nodemap, inter
            )
        return mpi_hierarchical_allreduce(cluster, local_data, nodemap, inter)
    if cand.family == "pipelined":
        return hzccl_pipelined_allreduce(
            cluster, local_data, config, n_chunks=cand.chunks
        )
    if cand.family == "rabenseifner":
        if cand.codec == "hz":
            return hzccl_rabenseifner_allreduce(cluster, local_data, config)
        return rabenseifner_allreduce(cluster, local_data)
    if cand.codec == "hz":
        return hzccl_allreduce(cluster, local_data, config)
    return mpi_allreduce(cluster, local_data)


def tuned_allreduce(
    cluster: SimCluster,
    local_data: list[np.ndarray],
    config,
    nodemap: NodeMap | None = None,
    table: TuningTable | None = None,
    rates=None,
) -> CollectiveResult:
    """SUM Allreduce through the schedule autotuner.

    ``table=None`` loads the configured table (``config.tuning_table_path``
    or ``$REPRO_TUNING_TABLE``; missing file ⇒ empty table).  A key miss
    never fails — it falls back to live candidate enumeration, memoised
    process-wide.
    """
    # Lazy: core.pipeline imports this module back (for run_candidate).
    from ..core.pipeline import (
        CollectiveRequest,
        PayloadSpec,
        execute,
        plan,
    )

    arrays = validate_local_data(local_data)
    if len(arrays) != cluster.n_ranks:
        raise ValueError(
            f"got {len(arrays)} rank arrays for {cluster.n_ranks} ranks"
        )
    request = CollectiveRequest(
        op="allreduce",
        n_ranks=cluster.n_ranks,
        payload=PayloadSpec.of(arrays[0]),
        nodemap=nodemap,
        tune=True,
        roughness=classify_roughness(arrays[0], config.error_bound),
    )
    resolved = plan(
        request, config, network=cluster.network, table=table, rates=rates
    )
    return execute(resolved, arrays, cluster=cluster, config=config)
