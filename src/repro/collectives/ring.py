"""Plain (no-compression) ring collectives — the "MPI" baseline.

Literal ring algorithms from Thakur et al. / Patarasuk & Yuan, the ones
MPICH selects for large messages and the ones every compressed variant in
this repo is structured around:

* ``reduce_scatter`` — ``N − 1`` rounds; in round ``j`` rank ``i`` sends its
  running partial of block ``(i − j) mod N`` and folds the incoming partial
  into block ``(i − j − 1) mod N``.  Rank ``i`` ends owning block
  ``(i + 1) mod N`` fully reduced.
* ``allgather`` — ``N − 1`` forwarding rounds.
* ``allreduce`` — reduce-scatter then allgather (bandwidth-optimal).

The round structure lives in :mod:`repro.schedule.generators`; this module
only seeds rank state, runs the :class:`~repro.schedule.ScheduleExecutor`
under the plain codec, and assembles the outputs.  Every rank's arithmetic
executes for real; only the wire time is modelled.
"""

from __future__ import annotations

import numpy as np

from ..runtime.cluster import SimCluster
from ..runtime.topology import Ring
from ..schedule import (
    PlainCodec,
    ScheduleExecutor,
    ring_allgather,
    ring_reduce_scatter,
)
from .base import (
    CollectiveResult,
    channel_stats,
    split_blocks,
    traced_collective,
    validate_local_data,
)

__all__ = ["mpi_reduce_scatter", "mpi_allgather", "mpi_allreduce"]


@traced_collective("mpi_reduce_scatter")
def mpi_reduce_scatter(
    cluster: SimCluster, local_data: list[np.ndarray]
) -> CollectiveResult:
    """Ring Reduce_scatter with SUM; returns each rank's reduced block."""
    arrays = validate_local_data(local_data)
    n = cluster.n_ranks
    if len(arrays) != n:
        raise ValueError(f"got {len(arrays)} rank arrays for {n} ranks")
    ring = Ring(n)
    state = [dict(enumerate(split_blocks(a, n))) for a in arrays]
    outcome = ScheduleExecutor(cluster, PlainCodec(cluster)).run(
        ring_reduce_scatter(n), state
    )
    outputs = [state[i][ring.owned_block(i)] for i in range(n)]
    return CollectiveResult(
        outputs=outputs,
        breakdown=cluster.breakdown(),
        bytes_on_wire=outcome.wire,
        fault_stats=channel_stats(cluster),
    )


@traced_collective("mpi_allgather")
def mpi_allgather(
    cluster: SimCluster, chunks: list[np.ndarray]
) -> CollectiveResult:
    """Ring Allgather: every rank ends with the concatenation of all chunks.

    ``chunks[i]`` is the block rank ``i`` contributes — in the allreduce
    composition this is the reduced block ``(i + 1) mod N`` from
    reduce-scatter, and the output concatenation is in block order.
    """
    n = cluster.n_ranks
    if len(chunks) != n:
        raise ValueError(f"got {len(chunks)} chunks for {n} ranks")
    ring = Ring(n)
    state = [{ring.owned_block(i): np.asarray(chunks[i])} for i in range(n)]
    outcome = ScheduleExecutor(cluster, PlainCodec(cluster)).run(
        ring_allgather(n), state
    )
    outputs = [
        np.concatenate([state[i][k] for k in range(n)]) for i in range(n)
    ]
    return CollectiveResult(
        outputs=outputs,
        breakdown=cluster.breakdown(),
        bytes_on_wire=outcome.wire,
        fault_stats=channel_stats(cluster),
    )


@traced_collective("mpi_allreduce")
def mpi_allreduce(
    cluster: SimCluster, local_data: list[np.ndarray]
) -> CollectiveResult:
    """Ring Allreduce (reduce-scatter + allgather) with SUM."""
    rs = mpi_reduce_scatter(cluster, local_data)
    ag = mpi_allgather(cluster, rs.outputs)
    return CollectiveResult(
        outputs=ag.outputs,
        breakdown=cluster.breakdown(),
        bytes_on_wire=rs.bytes_on_wire + ag.bytes_on_wire,
        fault_stats=channel_stats(cluster),
    )
