"""C-Coll: compression-accelerated collectives with the DOC workflow.

The state-of-the-art baseline (Huang et al., IPDPS'24) the paper improves
on.  Messages travel compressed, but every collective-computation round
pays the full decompression–operation–compression cycle:

* **Reduce_scatter** — in round ``j`` rank ``i`` *compresses* its partial
  block (CPR), sends the bytes, *decompresses* the incoming block (DPR),
  and reduces it in the float domain (CPT): total
  ``(N−1)(CPR + DPR + CPT)`` (§III-C1).
* **Allgather** — contributors compress once (CPR), compressed bytes are
  forwarded ``N − 1`` rounds, and each rank decompresses what it received:
  ``CPR + (N−1)·DPR`` (§III-C2).

Both run the *same* ring schedules as the plain baseline — only the codec
differs (:class:`~repro.schedule.DocReduceCodec` recompresses per round,
:class:`~repro.schedule.DocGatherCodec` compresses once and decodes per
block).

Accuracy note: each DOC round requantises the running partial sum, so the
final error grows with the node count but stays bounded by
``(2N − 3)·eb`` per element — the controlled error propagation the C-Coll
paper proves.
"""

from __future__ import annotations

import numpy as np

from ..runtime.cluster import SimCluster
from ..runtime.topology import Ring
from ..schedule import (
    DocGatherCodec,
    DocReduceCodec,
    ScheduleExecutor,
    ring_allgather,
    ring_reduce_scatter,
)
from .base import (
    CollectiveResult,
    channel_stats,
    split_blocks,
    traced_collective,
    validate_local_data,
)
from .ring import mpi_allgather, mpi_reduce_scatter

__all__ = ["ccoll_reduce_scatter", "ccoll_allgather", "ccoll_allreduce"]


@traced_collective("ccoll_reduce_scatter")
def ccoll_reduce_scatter(
    cluster: SimCluster, local_data: list[np.ndarray], config
) -> CollectiveResult:
    """C-Coll ring Reduce_scatter (DOC workflow each round)."""
    arrays = validate_local_data(local_data)
    n = cluster.n_ranks
    if len(arrays) != n:
        raise ValueError(f"got {len(arrays)} rank arrays for {n} ranks")
    ring = Ring(n)
    state = [dict(enumerate(split_blocks(a, n))) for a in arrays]
    outcome = ScheduleExecutor(cluster, DocReduceCodec(cluster, config)).run(
        ring_reduce_scatter(n), state
    )
    if outcome.degraded:
        # Degrade: rerun the remainder on the plain uncompressed kernel.
        fallback = mpi_reduce_scatter(cluster, local_data)
        return CollectiveResult(
            outputs=fallback.outputs,
            breakdown=cluster.breakdown(),
            bytes_on_wire=outcome.wire + fallback.bytes_on_wire,
            degraded=True,
            fault_stats=channel_stats(cluster),
        )
    outputs = [state[i][ring.owned_block(i)] for i in range(n)]
    return CollectiveResult(
        outputs=outputs,
        breakdown=cluster.breakdown(),
        bytes_on_wire=outcome.wire,
        fault_stats=channel_stats(cluster),
    )


@traced_collective("ccoll_allgather")
def ccoll_allgather(
    cluster: SimCluster, chunks: list[np.ndarray], config
) -> CollectiveResult:
    """C-Coll ring Allgather: compress once, forward bytes, decompress all."""
    n = cluster.n_ranks
    if len(chunks) != n:
        raise ValueError(f"got {len(chunks)} chunks for {n} ranks")
    ring = Ring(n)
    state = [{ring.owned_block(i): chunks[i]} for i in range(n)]
    outcome = ScheduleExecutor(cluster, DocGatherCodec(cluster, config)).run(
        ring_allgather(n), state
    )
    if outcome.degraded:
        fallback = mpi_allgather(cluster, list(chunks))
        return CollectiveResult(
            outputs=fallback.outputs,
            breakdown=cluster.breakdown(),
            bytes_on_wire=outcome.wire + fallback.bytes_on_wire,
            degraded=True,
            fault_stats=channel_stats(cluster),
        )
    outputs = [
        np.concatenate([state[i][k] for k in range(n)]) for i in range(n)
    ]
    return CollectiveResult(
        outputs=outputs,
        breakdown=cluster.breakdown(),
        bytes_on_wire=outcome.wire,
        fault_stats=channel_stats(cluster),
    )


@traced_collective("ccoll_allreduce")
def ccoll_allreduce(
    cluster: SimCluster, local_data: list[np.ndarray], config
) -> CollectiveResult:
    """C-Coll ring Allreduce: DOC Reduce_scatter then compressed Allgather."""
    rs = ccoll_reduce_scatter(cluster, local_data, config)
    ag = ccoll_allgather(cluster, rs.outputs, config)
    return CollectiveResult(
        outputs=ag.outputs,
        breakdown=cluster.breakdown(),
        bytes_on_wire=rs.bytes_on_wire + ag.bytes_on_wire,
        degraded=rs.degraded or ag.degraded,
        fault_stats=channel_stats(cluster),
    )
