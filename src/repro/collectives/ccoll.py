"""C-Coll: compression-accelerated collectives with the DOC workflow.

The state-of-the-art baseline (Huang et al., IPDPS'24) the paper improves
on.  Messages travel compressed, but every collective-computation round
pays the full decompression–operation–compression cycle:

* **Reduce_scatter** — in round ``j`` rank ``i`` *compresses* its partial
  block (CPR), sends the bytes, *decompresses* the incoming block (DPR),
  and reduces it in the float domain (CPT): total
  ``(N−1)(CPR + DPR + CPT)`` (§III-C1).
* **Allgather** — contributors compress once (CPR), compressed bytes are
  forwarded ``N − 1`` rounds, and each rank decompresses what it received:
  ``CPR + (N−1)·DPR`` (§III-C2).

Accuracy note: each DOC round requantises the running partial sum, so the
final error grows with the node count but stays bounded by
``(2N − 3)·eb`` per element — the controlled error propagation the C-Coll
paper proves.
"""

from __future__ import annotations

import numpy as np

from ..compression.format import CompressedField
from ..compression.fzlight import FZLight
from ..runtime.cluster import SimCluster
from ..runtime.faults import UnrecoverableStreamError
from ..runtime.topology import Ring
from .base import (
    CollectiveResult,
    channel_stats,
    split_blocks,
    traced_collective,
    validate_local_data,
)
from .ring import mpi_allgather, mpi_reduce_scatter

__all__ = ["ccoll_reduce_scatter", "ccoll_allgather", "ccoll_allreduce"]

_SYNC_OVERHEAD_S = 2e-6  # size-synchronisation bookkeeping per rank ("OTHER")


def _compressor(config) -> FZLight:
    return FZLight(
        block_size=config.block_size, n_threadblocks=config.n_threadblocks
    )


@traced_collective("ccoll_reduce_scatter")
def ccoll_reduce_scatter(
    cluster: SimCluster, local_data: list[np.ndarray], config
) -> CollectiveResult:
    """C-Coll ring Reduce_scatter (DOC workflow each round)."""
    arrays = validate_local_data(local_data)
    n = cluster.n_ranks
    if len(arrays) != n:
        raise ValueError(f"got {len(arrays)} rank arrays for {n} ranks")
    ring = Ring(n)
    channel = cluster.channel
    comp = _compressor(config)
    eb = config.error_bound
    bufs = [split_blocks(a, n) for a in arrays]
    wire = 0

    try:
        with cluster.phase("doc-exchange"):
            for j in range(n - 1):
                outbox: list[CompressedField] = []
                for i in range(n):
                    with cluster.timed(i, "CPR"):
                        outbox.append(
                            comp.compress(
                                bufs[i][ring.send_block(i, j)], abs_eb=eb
                            )
                        )
                max_msg = 0
                for i in range(n):
                    pred = ring.predecessor(i)
                    delivery = channel.deliver_compressed(
                        pred, i, outbox[pred]
                    )
                    incoming = delivery.payload
                    wire += delivery.nbytes
                    max_msg = max(max_msg, incoming.nbytes)
                    with cluster.timed(i, "DPR"):
                        decoded = comp.decompress(incoming)
                    with cluster.timed(i, "CPT"):
                        blk = ring.recv_block(i, j)
                        bufs[i][blk] = bufs[i][blk] + decoded
                cluster.end_round(max_msg)
    except UnrecoverableStreamError:
        # Degrade: rerun the remainder on the plain uncompressed kernel.
        channel.degrade()
        fallback = mpi_reduce_scatter(cluster, local_data)
        return CollectiveResult(
            outputs=fallback.outputs,
            breakdown=cluster.breakdown(),
            bytes_on_wire=wire + fallback.bytes_on_wire,
            degraded=True,
            fault_stats=channel_stats(cluster),
        )

    outputs = [bufs[i][ring.owned_block(i)] for i in range(n)]
    return CollectiveResult(
        outputs=outputs,
        breakdown=cluster.breakdown(),
        bytes_on_wire=wire,
        fault_stats=channel_stats(cluster),
    )


@traced_collective("ccoll_allgather")
def ccoll_allgather(
    cluster: SimCluster, chunks: list[np.ndarray], config
) -> CollectiveResult:
    """C-Coll ring Allgather: compress once, forward bytes, decompress all."""
    n = cluster.n_ranks
    if len(chunks) != n:
        raise ValueError(f"got {len(chunks)} chunks for {n} ranks")
    ring = Ring(n)
    channel = cluster.channel
    comp = _compressor(config)
    eb = config.error_bound
    wire = 0

    compressed: list[CompressedField] = []
    with cluster.phase("compress"):
        for i in range(n):
            with cluster.timed(i, "CPR"):
                compressed.append(comp.compress(chunks[i], abs_eb=eb))
            cluster.clocks[i].charge("OTHER", _SYNC_OVERHEAD_S)  # size sync
        cluster.end_compute_phase()

    gathered: list[dict[int, CompressedField]] = [
        {ring.owned_block(i): compressed[i]} for i in range(n)
    ]
    try:
        with cluster.phase("forward"):
            for j in range(n - 1):
                outbox = {}
                for i in range(n):
                    blk = ring.allgather_send_block(i, j)
                    outbox[i] = (blk, gathered[i][blk])
                max_msg = 0
                for i in range(n):
                    pred = ring.predecessor(i)
                    blk, field = outbox[pred]
                    delivery = channel.deliver_compressed(pred, i, field)
                    wire += delivery.nbytes
                    max_msg = max(max_msg, field.nbytes)
                    gathered[i][blk] = delivery.payload
                cluster.end_round(max_msg)
    except UnrecoverableStreamError:
        channel.degrade()
        fallback = mpi_allgather(cluster, list(chunks))
        return CollectiveResult(
            outputs=fallback.outputs,
            breakdown=cluster.breakdown(),
            bytes_on_wire=wire + fallback.bytes_on_wire,
            degraded=True,
            fault_stats=channel_stats(cluster),
        )

    outputs = []
    with cluster.phase("decompress"):
        for i in range(n):
            parts = []
            for k in range(n):
                field = gathered[i][k]
                if k == ring.owned_block(i):
                    parts.append(
                        np.asarray(chunks[i], dtype=np.float32)  # local copy
                    )
                else:
                    with cluster.timed(i, "DPR"):
                        parts.append(comp.decompress(field))
            outputs.append(np.concatenate(parts))
        cluster.end_compute_phase()

    return CollectiveResult(
        outputs=outputs,
        breakdown=cluster.breakdown(),
        bytes_on_wire=wire,
        fault_stats=channel_stats(cluster),
    )


@traced_collective("ccoll_allreduce")
def ccoll_allreduce(
    cluster: SimCluster, local_data: list[np.ndarray], config
) -> CollectiveResult:
    """C-Coll ring Allreduce: DOC Reduce_scatter then compressed Allgather."""
    rs = ccoll_reduce_scatter(cluster, local_data, config)
    ag = ccoll_allgather(cluster, rs.outputs, config)
    return CollectiveResult(
        outputs=ag.outputs,
        breakdown=cluster.breakdown(),
        bytes_on_wire=rs.bytes_on_wire + ag.bytes_on_wire,
        degraded=rs.degraded or ag.degraded,
        fault_stats=channel_stats(cluster),
    )
