"""Image stacking — the paper's end-to-end use case (§IV-E, Table VII).

Stacking combines many noisy single exposures of one scene into a
high-SNR image; with one exposure per node the combine *is* an Allreduce
(Gurhem et al.).  This module builds a synthetic deep-sky scene, hands each
simulated rank its own noisy exposure, runs the stack through any of the
three collective families, and reports both the timing breakdown
(Table VII) and the numerical/visual fidelity against the uncompressed MPI
stack (Fig. 13: PSNR / NRMSE).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..collectives import ccoll_allreduce, hzccl_allreduce, mpi_allreduce
from ..compression.metrics import nrmse as nrmse_metric
from ..compression.metrics import psnr as psnr_metric
from ..core.config import CollectiveConfig
from ..runtime.clock import Breakdown
from ..runtime.cluster import SimCluster
from ..utils.rng import make_rng
from ..utils.validation import ensure_positive_int

__all__ = ["make_scene", "make_exposures", "stack_images", "StackingResult"]

METHODS = ("mpi", "ccoll", "hzccl")


def make_scene(
    shape: tuple[int, int] = (512, 512), n_objects: int = 60, seed: int | None = None
) -> np.ndarray:
    """Synthetic deep-sky scene: point sources + diffuse objects + sky glow."""
    ensure_positive_int(n_objects, "n_objects")
    rng = make_rng(seed)
    h, w = shape
    yy, xx = np.mgrid[0:h, 0:w].astype(np.float32)
    scene = np.zeros(shape, dtype=np.float32)
    for _ in range(n_objects):
        cy, cx = rng.uniform(0, h), rng.uniform(0, w)
        brightness = float(10.0 ** rng.uniform(0.5, 3.0))
        sigma = float(rng.uniform(0.8, 6.0))
        scene += brightness * np.exp(
            -(((yy - cy) ** 2 + (xx - cx) ** 2) / (2 * sigma**2))
        )
    # Sky background gradient (moonlight / airglow).
    scene += 5.0 + 3.0 * (xx / w) + 2.0 * (yy / h)
    return scene


def make_exposures(
    n_ranks: int,
    shape: tuple[int, int] = (512, 512),
    noise_sigma: float = 4.0,
    seed: int | None = None,
) -> tuple[np.ndarray, list[np.ndarray]]:
    """One clean scene + ``n_ranks`` independently-noisy exposures of it."""
    ensure_positive_int(n_ranks, "n_ranks")
    scene = make_scene(shape, seed=seed)
    rng = make_rng(None if seed is None else seed + 1)
    exposures = [
        (scene + rng.normal(0.0, noise_sigma, shape)).astype(np.float32)
        for _ in range(n_ranks)
    ]
    return scene, exposures


@dataclass
class StackingResult:
    """Outcome of one stacking run.

    ``stacked`` is the per-pixel mean over exposures; quality metrics are
    computed against the reference stack (uncompressed MPI, i.e. the exact
    float mean) when one is supplied.
    """

    method: str
    stacked: np.ndarray
    breakdown: Breakdown
    bytes_on_wire: int
    psnr: float = float("inf")
    nrmse: float = 0.0

    @property
    def total_time(self) -> float:
        return self.breakdown.total_time


def stack_images(
    exposures: list[np.ndarray],
    method: str = "hzccl",
    config: CollectiveConfig | None = None,
    reference: np.ndarray | None = None,
) -> StackingResult:
    """Stack exposures with the chosen collective family.

    Parameters
    ----------
    exposures : one image per simulated rank (equal shapes).
    method : ``"mpi"`` (uncompressed), ``"ccoll"`` (DOC) or ``"hzccl"``.
    reference : optional exact stack to score PSNR/NRMSE against.
    """
    if method not in METHODS:
        raise ValueError(f"method must be one of {METHODS}, got {method!r}")
    if not exposures:
        raise ValueError("need at least one exposure")
    config = config or CollectiveConfig()
    shape = exposures[0].shape
    n = len(exposures)
    flat = [np.ascontiguousarray(e, dtype=np.float32).ravel() for e in exposures]
    cluster = SimCluster(
        n_ranks=n,
        network=config.network,
        thread_speedup=config.thread_speedup,
        multithread=config.multithread,
    )
    if method == "mpi":
        res = mpi_allreduce(cluster, flat)
    elif method == "ccoll":
        res = ccoll_allreduce(cluster, flat, config)
    else:
        res = hzccl_allreduce(cluster, flat, config)

    stacked = (res.outputs[0].astype(np.float64) / n).astype(np.float32)
    stacked = stacked.reshape(shape)
    out = StackingResult(
        method=method,
        stacked=stacked,
        breakdown=res.breakdown,
        bytes_on_wire=res.bytes_on_wire,
    )
    if reference is not None:
        out.psnr = psnr_metric(reference, stacked)
        out.nrmse = nrmse_metric(reference, stacked)
    return out
