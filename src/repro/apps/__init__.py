"""Example applications built on the hZCCL public API."""

from .image_stacking import StackingResult, make_exposures, make_scene, stack_images

__all__ = ["make_scene", "make_exposures", "stack_images", "StackingResult"]
