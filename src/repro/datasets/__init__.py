"""Synthetic stand-ins for the paper's five application datasets (Table I)."""

from .registry import DATASETS, DatasetSpec, dataset_names, get_spec
from .synthetic import generate_field, generate_pair, snapshot_series

__all__ = [
    "DATASETS",
    "DatasetSpec",
    "dataset_names",
    "get_spec",
    "generate_field",
    "generate_pair",
    "snapshot_series",
]
