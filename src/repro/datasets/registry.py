"""Dataset registry: the five applications of Table I.

Each entry records the paper's field count, per-field dimensions and domain,
plus the synthetic generator that stands in for the real data (the RTM sets
are proprietary; NYX/CESM-ATM/Hurricane come from SDRBench, which is not
bundled).  Benchmarks default to scaled-down dims via
:meth:`DatasetSpec.scaled_dims` so a laptop run finishes in minutes; the
full paper dims remain available by passing ``scale=1``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["DatasetSpec", "DATASETS", "dataset_names", "get_spec"]


@dataclass(frozen=True)
class DatasetSpec:
    """Metadata for one application dataset (one row of Table I)."""

    name: str
    n_fields: int
    dims: tuple[int, ...]
    total_size: str
    domain: str
    generator: str  # attribute name in repro.datasets.synthetic

    @property
    def field_elements(self) -> int:
        return int(np.prod(self.dims))

    def scaled_dims(self, scale: float) -> tuple[int, ...]:
        """Shrink every axis by ``scale**(1/ndim)`` (volume scales ~linearly).

        Axes never drop below 16 so the generators keep meaningful
        structure.
        """
        if not 0 < scale <= 1:
            raise ValueError("scale must be in (0, 1]")
        factor = scale ** (1.0 / len(self.dims))
        return tuple(max(16, int(round(d * factor))) for d in self.dims)


DATASETS: dict[str, DatasetSpec] = {
    spec.name: spec
    for spec in (
        DatasetSpec(
            name="sim1",
            n_fields=3601,
            dims=(449, 449, 235),
            total_size="635.5 GB",
            domain="Seismic Wave (RTM Simulation Setting 1)",
            generator="seismic_setting1",
        ),
        DatasetSpec(
            name="sim2",
            n_fields=151,
            dims=(849, 849, 235),
            total_size="95.3 GB",
            domain="Seismic Wave (RTM Simulation Setting 2)",
            generator="seismic_setting2",
        ),
        DatasetSpec(
            name="nyx",
            n_fields=6,
            dims=(512, 512, 512),
            total_size="3.1 GB",
            domain="Cosmology (NYX)",
            generator="nyx_field",
        ),
        DatasetSpec(
            name="cesm",
            n_fields=79,
            dims=(1800, 3600),
            total_size="2.0 GB",
            domain="Climate Simulation (CESM-ATM)",
            generator="cesm_atm_field",
        ),
        DatasetSpec(
            name="hurricane",
            n_fields=13,
            dims=(100, 500, 500),
            total_size="1.3 GB",
            domain="Weather Simulation (Hurricane Isabel)",
            generator="hurricane_field",
        ),
    )
}


def dataset_names() -> list[str]:
    """Names in the paper's Table I order."""
    return list(DATASETS)


def get_spec(name: str) -> DatasetSpec:
    """Look up a dataset spec; raises ``KeyError`` with the valid names."""
    try:
        return DATASETS[name]
    except KeyError:
        raise KeyError(
            f"unknown dataset {name!r}; choose from {dataset_names()}"
        ) from None
