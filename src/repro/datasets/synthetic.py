"""Synthetic field generators standing in for the paper's five datasets.

The substitution rule: each generator reproduces the *block-statistics*
that drive the paper's results — how many small blocks are constant at a
given error bound, how smooth the non-constant regions are, and how those
properties differ between two consecutive fields/snapshots — because those
statistics determine compression ratios (Table III), hZ-dynamic's pipeline
mix (Table V), and ultimately the collective speedups.

Qualitative targets (from Table V at REL 1e-3, reducing two fields):

* **NYX** — enormous dynamic range with most voxels tiny ⇒ both operands
  almost entirely constant-quantised ⇒ pipeline 1 dominates (paper: 99.4 %).
* **Sim. Set. 1** — expanding wavefront in a quiet volume; a later snapshot
  has signal where an earlier one is still zero ⇒ pipelines 1 + 3.
* **Sim. Set. 2** — smoother, denser wavefield ⇒ pipeline 1 with a 2/3 tail.
* **Hurricane** — one rough operand against one mostly-quiet operand ⇒
  pipeline 3 dominates (paper: 99.25 %).
* **CESM-ATM** — moderate variation everywhere in both operands ⇒
  pipeline 4 dominates (paper: 88.6 %).

Every generator is deterministic in ``(name, field_index, dims, seed)``.
"""

from __future__ import annotations

import numpy as np
from scipy import ndimage

from ..utils.rng import make_rng
from .registry import get_spec

__all__ = [
    "seismic_setting1",
    "seismic_setting2",
    "nyx_field",
    "cesm_atm_field",
    "hurricane_field",
    "generate_field",
    "generate_pair",
    "snapshot_series",
]


def _coords(dims: tuple[int, ...]) -> list[np.ndarray]:
    """Normalised open-grid coordinates in [0, 1] per axis."""
    return list(
        np.ogrid[tuple(slice(0.0, 1.0, complex(0, d)) for d in dims)]
    )


def _gaussian_field(
    dims: tuple[int, ...], rng: np.random.Generator, smooth: float
) -> np.ndarray:
    """White noise smoothed to correlation length ``smooth`` (in cells)."""
    noise = rng.standard_normal(dims).astype(np.float32)
    field = ndimage.gaussian_filter(noise, sigma=smooth, mode="wrap")
    std = float(field.std())
    if std > 0:
        field /= std
    return field


def _ricker(r: np.ndarray, width: float) -> np.ndarray:
    """Ricker (Mexican-hat) wavelet — the canonical seismic source pulse."""
    a = (r / width) ** 2
    return (1.0 - 2.0 * a) * np.exp(-a)


def _wavefront(
    dims: tuple[int, ...],
    rng: np.random.Generator,
    t: float,
    width: float,
    n_sources: int,
    decay_power: float,
    core_radius: float,
    quiet_fraction: float,
    spike_amplitude: float = 0.0,
    aperture: float | None = None,
) -> np.ndarray:
    """Expanding spherical wavefronts over a layered medium.

    ``t`` is the normalised travel time; everything the front has not yet
    reached stays *exactly zero* (the quiet halo that RTM snapshots have and
    that ompSZp's zero-block skip exploits).  ``decay_power`` controls the
    field's dynamic range: geometric spreading ``(core + r)^-p`` makes the
    near-source peak dominate the value range, which is what decides how
    much of the far shell survives quantisation at range-relative bounds.
    """
    grids = _coords(dims)
    field = np.zeros(dims, dtype=np.float32)
    # Depth-dependent velocity (layered Overthrust-style model): the last
    # axis is depth, speed grows with it, so fronts are ellipsoidal.
    depth = grids[-1]
    velocity = 1.0 + 0.8 * depth
    for _ in range(n_sources):
        centre = rng.uniform(0.2, 0.8, size=len(dims))
        r2 = sum((g - c) ** 2 for g, c in zip(grids, centre))
        r = np.sqrt(r2).astype(np.float32)
        phase = r - velocity.astype(np.float32) * t
        amplitude = _ricker(phase, width) / (core_radius + r) ** decay_power
        # Causality: no signal beyond the front (+ a couple of pulse widths).
        amplitude[phase > 2.5 * width] = 0.0
        if aperture is not None:
            # Limited survey aperture: energy confined to a downward cone,
            # like a shot with absorbing side boundaries.  Keeps the signal
            # spatially compact so most blocks stay constant.
            cos_theta = (depth - centre[-1]) / np.maximum(r, 1e-6)
            window = 1.0 / (1.0 + np.exp(-(cos_theta - aperture) * 40.0))
            amplitude *= window
        if spike_amplitude:
            # Residual source-injection spike: RTM snapshots keep a huge
            # near-source amplitude, and range-relative error bounds are
            # taken against it.  This is what flattens Sim-2's ratio curve.
            amplitude += spike_amplitude * np.exp(-((r / (1.5 * width)) ** 2))
        field += amplitude.astype(np.float32)
    peak = float(np.abs(field).max())
    if peak > 0:
        field[np.abs(field) < quiet_fraction * peak] = 0.0
    return field


def seismic_setting1(
    dims: tuple[int, ...], field_index: int, seed: int | None = None
) -> np.ndarray:
    """RTM Simulation Setting 1: early-time snapshots, large zero halo.

    ``field_index`` advances the snapshot time, so consecutive fields differ
    by front position — the source of the pipeline-3 blocks when reducing
    snapshot *k+1* against snapshot *k*.
    """
    rng = make_rng(seed)  # sources fixed across snapshots of one shot
    t = 0.10 + 0.09 * field_index  # large steps: consecutive fronts barely overlap
    return _wavefront(
        dims,
        rng,
        t=t,
        width=0.03,
        n_sources=2,
        decay_power=1.0,
        core_radius=0.10,
        quiet_fraction=1e-3,
        spike_amplitude=40.0,
    )


def seismic_setting2(
    dims: tuple[int, ...], field_index: int, seed: int | None = None
) -> np.ndarray:
    """RTM Simulation Setting 2: later-time, smoother, denser wavefield."""
    rng = make_rng(seed)
    t = 0.30 + 0.06 * field_index
    # Steep geometric spreading gives the ≳10⁴ dynamic range that keeps
    # Sim-2's ratio high (74–130 in the paper) and nearly flat in the error
    # bound: at range-relative bounds the far shell quantises to constants,
    # only the near-source region stays resolved.
    return _wavefront(
        dims,
        rng,
        t=t,
        width=0.04,
        n_sources=2,
        decay_power=3.0,
        core_radius=0.02,
        quiet_fraction=5e-3,
        spike_amplitude=600.0,
        aperture=0.80,
    )


def nyx_field(
    dims: tuple[int, ...], field_index: int, seed: int | None = None
) -> np.ndarray:
    """NYX cosmology: log-normal density with a violent dynamic range.

    The artifact's reference field (``baryon_density``) spans 0.12 to
    2.3e5 — almost six decades — so at range-relative error bounds nearly
    every block quantises to the constant 0 code.
    """
    rng = make_rng(None if seed is None else seed + field_index)
    base = _gaussian_field(dims, rng, smooth=3.0)
    # Heavier exponent for even-indexed fields (density-like); milder for
    # odd (temperature-like), mirroring NYX's field diversity.
    exponent = 5.5 if field_index % 2 == 0 else 3.0
    field = np.exp(exponent * base, dtype=np.float32)
    return field


def cesm_atm_field(
    dims: tuple[int, ...], field_index: int, seed: int | None = None
) -> np.ndarray:
    """CESM-ATM: 2-D climate field with structure at every scale.

    Large-scale zonal banding plus weather-scale noise keeps most blocks
    non-constant at 1e-3 relative bounds — the pipeline-4-heavy case.
    """
    if len(dims) != 2:
        raise ValueError("CESM-ATM fields are 2-D (lat, lon)")
    rng = make_rng(None if seed is None else seed + field_index)
    lat, lon = _coords(dims)
    banding = np.cos(np.pi * (2 + field_index % 3) * lat) * np.sin(
        2 * np.pi * (3 + field_index % 5) * lon
    )
    synoptic = _gaussian_field(dims, rng, smooth=10.0)
    mesoscale = _gaussian_field(dims, rng, smooth=3.0)
    return (banding + 0.8 * synoptic + 0.05 * mesoscale).astype(np.float32)


def hurricane_field(
    dims: tuple[int, ...], field_index: int, seed: int | None = None
) -> np.ndarray:
    """Hurricane Isabel: alternating dense dynamics and sparse moisture.

    Even indices produce wind-like fields (vortex + turbulence, everywhere
    non-constant); odd indices produce cloud/precipitation-like fields that
    are exactly zero outside compact patches.  Reducing an even field with
    the following odd one yields the paper's pipeline-3-dominated mix.
    """
    rng = make_rng(None if seed is None else seed + field_index)
    grids = _coords(dims)
    # Vortex around a column near the domain centre (axes: z, y, x).
    y, x = grids[-2], grids[-1]
    dy, dx = y - 0.5, x - 0.5
    r2 = dy**2 + dx**2
    swirl = np.exp(-12.0 * r2) * np.broadcast_to(
        1.0 - grids[0] * 0.5, np.broadcast_shapes(*(g.shape for g in grids))
    )
    if field_index % 2 == 0:
        turb = _gaussian_field(dims, rng, smooth=3.0)
        return (10.0 * swirl + 2.0 * turb).astype(np.float32)
    moisture = _gaussian_field(dims, rng, smooth=6.0)
    field = np.maximum(moisture - 2.2, 0.0).astype(np.float32)
    return (field * (20.0 * swirl + 1.0)).astype(np.float32)


def generate_field(
    name: str,
    field_index: int = 0,
    dims: tuple[int, ...] | None = None,
    scale: float = 1.0,
    seed: int | None = None,
) -> np.ndarray:
    """Generate one field of a registered dataset.

    Parameters
    ----------
    name : registry key (``sim1``, ``sim2``, ``nyx``, ``cesm``,
        ``hurricane``).
    field_index : which field/snapshot (affects content, not shape).
    dims : explicit dimensions; default is the paper's shape scaled by
        ``scale``.
    seed : deterministic content seed.
    """
    spec = get_spec(name)
    if dims is None:
        dims = spec.scaled_dims(scale)
    generator = globals()[spec.generator]
    return generator(tuple(dims), field_index, seed=seed)


def snapshot_series(
    name: str,
    count: int,
    dims: tuple[int, ...] | None = None,
    scale: float = 1.0,
    seed: int | None = None,
) -> list[np.ndarray]:
    """``count`` consecutive fields/snapshots — the per-rank inputs the
    collective benchmarks feed to an ``count``-rank reduction."""
    if count < 1:
        raise ValueError("count must be >= 1")
    return [
        generate_field(name, i, dims=dims, scale=scale, seed=seed)
        for i in range(count)
    ]


def generate_pair(
    name: str,
    dims: tuple[int, ...] | None = None,
    scale: float = 1.0,
    seed: int | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Two consecutive fields — the operand pair used by Tables V/VI."""
    return (
        generate_field(name, 0, dims=dims, scale=scale, seed=seed),
        generate_field(name, 1, dims=dims, scale=scale, seed=seed),
    )
