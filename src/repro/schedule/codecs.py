"""Payload codecs: the data-plane strategies a schedule executes under.

A :class:`PayloadCodec` supplies the *meaning* of the IR's abstract verbs
— what ``prepare``/``pack``/``fold``/``finalize`` do to rank state, which
kernel runs, and which virtual-clock bucket it is charged to:

===============  ==========  =============================  ============
codec            wire        fold                            decode
===============  ==========  =============================  ============
plain            raw floats  float add (CPT)                —
DOC (C-Coll)     compressed  DPR decode + CPT add per round per block DPR
homomorphic      compressed  HPR ``reduce_fused``           batched DPR
===============  ==========  =============================  ============

Rank state is ``state[rank][block_id]``: plain ``np.ndarray`` blocks for
the plain codec, :class:`~repro.compression.format.CompressedField`
streams for the compressed ones (the homomorphic codec's whole point is
that state *stays* compressed across every fold).

``slots`` maps a phase's abstract slot name to the user-facing span name;
``None`` skips the phase entirely (a plain ring has no compress phase)
and ``""`` runs the phase without opening a span (the rooted reduce's
historical un-spanned gather).
"""

from __future__ import annotations

from typing import Any, Hashable, Sequence

import numpy as np

from ..compression.format import CompressedField
from ..compression.fzlight import FZLight
from ..homomorphic.hzdynamic import HZDynamic
from ..runtime.cluster import SimCluster
from .ir import CommOp

__all__ = [
    "SYNC_OVERHEAD_S",
    "PayloadCodec",
    "PlainCodec",
    "DocReduceCodec",
    "DocGatherCodec",
    "HomomorphicCodec",
    "CompressedBcastCodec",
]

#: size-synchronisation bookkeeping per rank ("OTHER" bucket)
SYNC_OVERHEAD_S = 2e-6

State = list[dict[Hashable, Any]]


class PayloadCodec:
    """Base codec: raw floats on the wire, no per-verb compute.

    Subclasses override the verbs they charge for.  ``items`` returned by
    :meth:`pack` are one wire object per block id (``np.ndarray`` or
    ``CompressedField``) — the executor sums their ``nbytes`` for round
    accounting and hands them back to ``fold``/``store`` on the receive
    side.
    """

    #: compressed streams on the wire → validated channel delivery.
    compressed_wire = False
    #: slot → span name overrides (None = skip phase, "" = no span).
    slots: dict[str, str | None] = {}

    def __init__(self, cluster: SimCluster) -> None:
        self.cluster = cluster

    def phase_name(self, slot: str) -> str | None:
        return self.slots.get(slot, slot)

    # ------------------------------------------------------------------ #
    def prepare(self, rank: int, blocks, state: State) -> None:
        """Pre-schedule encode of ``blocks`` in place (setup phase)."""

    def pack(self, rank: int, blocks, state: State) -> tuple[Any, ...]:
        """Produce the wire items for one comm (may charge encode time)."""
        return tuple(state[rank][b] for b in blocks)

    def fold(self, rank, blocks, items: Sequence[Any], state, fresh=True):
        """Reduce ``items`` into the rank's partials for ``blocks``."""
        raise NotImplementedError

    def store(self, rank: int, blocks, items: Sequence[Any], state) -> None:
        for b, item in zip(blocks, items):
            state[rank][b] = item

    def fold_fused(self, rank: int, blocks, state: State, fanin: int,
                   out: Hashable = "fused") -> None:
        raise NotImplementedError

    def finalize(self, rank: int, blocks, state: State) -> None:
        """Post-schedule decode of ``blocks`` in place."""

    def finalize_local(self, rank: int, blocks, state: State) -> None:
        """Decode/copy the rank's own contribution (uncharged in the model)."""

    def degrade_receive(self, comm: CommOp, state: State) -> int:
        """Per-op fallback for ``degrade="op"`` comms; returns wire bytes."""
        raise NotImplementedError


class PlainCodec(PayloadCodec):
    """The "MPI" baseline: raw float blocks, folds are CPT float adds."""

    slots = {"setup": None, "finalize": None}

    def fold(self, rank, blocks, items, state, fresh=True):
        with self.cluster.timed(rank, "CPT"):
            for b, item in zip(blocks, items):
                # initial blocks are views into caller arrays, so the fold
                # must allocate rather than accumulate in place
                state[rank][b] = state[rank][b] + item


class _CompressedCodec(PayloadCodec):
    compressed_wire = True

    def __init__(self, cluster: SimCluster, config) -> None:
        super().__init__(cluster)
        self.comp = FZLight(
            block_size=config.block_size,
            n_threadblocks=config.n_threadblocks,
        )
        self.eb = config.error_bound


class DocReduceCodec(_CompressedCodec):
    """C-Coll's DOC reduce-scatter: every round pays CPR → wire → DPR → CPT."""

    slots = {"setup": None, "exchange": "doc-exchange", "finalize": None}

    def pack(self, rank, blocks, state):
        with self.cluster.timed(rank, "CPR"):
            return tuple(
                self.comp.compress(state[rank][b], abs_eb=self.eb)
                for b in blocks
            )

    def fold(self, rank, blocks, items, state, fresh=True):
        for b, item in zip(blocks, items):
            with self.cluster.timed(rank, "DPR"):
                decoded = self.comp.decompress(item)
            with self.cluster.timed(rank, "CPT"):
                state[rank][b] = state[rank][b] + decoded


class DocGatherCodec(_CompressedCodec):
    """C-Coll's allgather: compress once, forward bytes, decode per block."""

    slots = {"setup": "compress", "finalize": "decompress"}

    def __init__(self, cluster: SimCluster, config) -> None:
        super().__init__(cluster, config)
        self._plain: dict[tuple[int, Hashable], np.ndarray] = {}

    def prepare(self, rank, blocks, state):
        for b in blocks:
            self._plain[(rank, b)] = state[rank][b]
            with self.cluster.timed(rank, "CPR"):
                state[rank][b] = self.comp.compress(
                    state[rank][b], abs_eb=self.eb
                )
        self.cluster.clocks[rank].charge("OTHER", SYNC_OVERHEAD_S)  # size sync

    def finalize(self, rank, blocks, state):
        # one decode invocation per foreign block — the DOC discipline has
        # no batched decode
        for b in blocks:
            with self.cluster.timed(rank, "DPR"):
                state[rank][b] = self.comp.decompress(state[rank][b])

    def finalize_local(self, rank, blocks, state):
        for b in blocks:
            state[rank][b] = np.asarray(
                self._plain[(rank, b)], dtype=np.float32  # local copy
            )


class HomomorphicCodec(_CompressedCodec):
    """hZCCL: compress once, fold compressed with HPR, decode once.

    ``slots`` varies per family (the fused allreduce's allgather stage
    skips setup because its inputs arrive compressed), so it is an
    instance attribute here.
    """

    def __init__(
        self,
        cluster: SimCluster,
        config,
        engine: HZDynamic | None = None,
        slots: dict[str, str | None] | None = None,
    ) -> None:
        super().__init__(cluster, config)
        self.engine = engine if engine is not None else HZDynamic()
        if slots is not None:
            self.slots = slots
        else:
            self.slots = {"setup": "compress", "finalize": "decompress"}

    def prepare(self, rank, blocks, state):
        with self.cluster.timed(rank, "CPR"):
            for b in blocks:
                state[rank][b] = self.comp.compress(
                    state[rank][b], abs_eb=self.eb
                )

    def fold(self, rank, blocks, items, state, fresh=True):
        with self.cluster.timed(rank, "HPR"):
            for b, item in zip(blocks, items):
                # one fused fold of the local partial with the incoming
                # compressed block (k = 2 instance of the k-way kernel)
                state[rank][b] = self.engine.reduce_fused(
                    (state[rank][b], item)
                )

    def fold_fused(self, rank, blocks, state, fanin, out="fused"):
        with self.cluster.timed(rank, "HPR"):
            state[rank][out] = self.engine.reduce_fused(
                [state[rank][b] for b in blocks]
            )

    def finalize(self, rank, blocks, state):
        with self.cluster.timed(rank, "DPR"):
            for b in blocks:
                state[rank][b] = self.comp.decompress(state[rank][b])

    # executed (and charged) like any decode, but booked as the paper's
    # uncharged own-block decompress by the cost model
    finalize_local = finalize


class CompressedBcastCodec(_CompressedCodec):
    """Compressed broadcast: CPR at the root, per-rank validated DPR.

    A rank whose stream is unrecoverable degrades *individually*: the
    root re-sends that rank's share plain (``degrade_receive``).
    """

    slots = {"setup": "compress", "finalize": "decompress"}

    def __init__(self, cluster: SimCluster, config, data: np.ndarray) -> None:
        super().__init__(cluster, config)
        self.data = data

    def prepare(self, rank, blocks, state):
        with self.cluster.timed(rank, "CPR"):
            for b in blocks:
                state[rank][b] = self.comp.compress(
                    state[rank][b], abs_eb=self.eb
                )

    def store(self, rank, blocks, items, state):
        for b, item in zip(blocks, items):
            with self.cluster.timed(rank, "DPR"):
                state[rank][b] = self.comp.decompress(item)

    def degrade_receive(self, comm, state):
        self.cluster.charge_comm(comm.dst, self.data.nbytes)
        for b in comm.blocks:
            state[comm.dst][b] = self.data.copy()
        return self.data.nbytes
