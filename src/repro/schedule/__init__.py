"""repro.schedule: collective schedules as data (control/data plane split).

* :mod:`~repro.schedule.ir` — the IR: ``CommOp``/``LocalOp`` grouped into
  ``Round``/``Phase``/``Schedule``;
* :mod:`~repro.schedule.generators` — pure schedule generators (ring,
  chunk-pipelined ring, Rabenseifner, rooted trees);
* :mod:`~repro.schedule.codecs` — payload disciplines (plain / DOC /
  homomorphic) the executor pairs a schedule with;
* :mod:`~repro.schedule.executor` — the single engine all collective
  families run on;
* :mod:`~repro.schedule.cost` — analytic dry runs of the same schedule
  objects (the cost model's backend);
* :mod:`~repro.schedule.tuner` — cost-driven candidate enumeration and
  the persisted :class:`~repro.schedule.tuner.TuningTable`.
"""

from .codecs import (
    SYNC_OVERHEAD_S,
    CompressedBcastCodec,
    DocGatherCodec,
    DocReduceCodec,
    HomomorphicCodec,
    PayloadCodec,
    PlainCodec,
)
from .cost import (
    DOC_GATHER,
    DOC_REDUCE,
    HZ_GATHER,
    HZ_REDUCE,
    PLAIN,
    CalibrationFit,
    CalibrationSample,
    Discipline,
    WireSummary,
    combine,
    fit_alpha_beta,
    profile_stats,
    schedule_cost,
    wire_summary,
)
from .executor import Outcome, ScheduleExecutor
from .mp_executor import CodecSpec, MPExecutor
from .generators import (
    INTER_FAMILIES,
    batched_fused_reduce,
    binomial_bcast,
    direct_reduce,
    flat_gather,
    hierarchical_allreduce_schedule,
    pipelined_ring_reduce_scatter,
    rabenseifner_allreduce_schedule,
    rabenseifner_ranges,
    ring_allgather,
    ring_reduce_scatter,
    select_inter_family,
)
from .ir import CommOp, LocalOp, Phase, Round, Schedule
from .tuner import (
    SCHEMA_VERSION,
    Candidate,
    TableEntry,
    TuningKey,
    TuningTable,
    TuningTableError,
    candidate_stages,
    classify_roughness,
    enumerate_candidates,
    fabric_name,
    lookup_entry,
    load_default_table,
    resolve_table_path,
    score_candidate,
    size_bucket,
    tune_point,
)

__all__ = [
    # ir
    "CommOp",
    "LocalOp",
    "Round",
    "Phase",
    "Schedule",
    # generators
    "ring_reduce_scatter",
    "ring_allgather",
    "pipelined_ring_reduce_scatter",
    "rabenseifner_allreduce_schedule",
    "rabenseifner_ranges",
    "flat_gather",
    "direct_reduce",
    "batched_fused_reduce",
    "binomial_bcast",
    "hierarchical_allreduce_schedule",
    "select_inter_family",
    "INTER_FAMILIES",
    # codecs
    "PayloadCodec",
    "PlainCodec",
    "DocReduceCodec",
    "DocGatherCodec",
    "HomomorphicCodec",
    "CompressedBcastCodec",
    "SYNC_OVERHEAD_S",
    # executor
    "ScheduleExecutor",
    "Outcome",
    # mp executor (the real data plane)
    "MPExecutor",
    "CodecSpec",
    # cost
    "Discipline",
    "PLAIN",
    "DOC_REDUCE",
    "DOC_GATHER",
    "HZ_REDUCE",
    "HZ_GATHER",
    "schedule_cost",
    "combine",
    "profile_stats",
    "WireSummary",
    "wire_summary",
    "CalibrationSample",
    "CalibrationFit",
    "fit_alpha_beta",
    # tuner
    "SCHEMA_VERSION",
    "TuningKey",
    "Candidate",
    "TableEntry",
    "TuningTable",
    "TuningTableError",
    "enumerate_candidates",
    "candidate_stages",
    "score_candidate",
    "tune_point",
    "classify_roughness",
    "fabric_name",
    "size_bucket",
    "lookup_entry",
    "resolve_table_path",
    "load_default_table",
]
