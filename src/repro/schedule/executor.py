"""The unified schedule executor: one engine for every collective family.

Everything the five legacy collectives hand-rolled in lock-step lives
here exactly once: channel delivery (plain or validated-compressed),
per-round ``max_msg``/``end_round`` accounting, ``cluster.timed`` compute
charging (delegated to the codec), span recording via ``cluster.phase``,
and the ``UnrecoverableStreamError`` → ``channel.degrade()`` single
degrade path (per-op degradation for ``degrade="op"`` comms).

Round accounting uses the *sent* payload size — the size the sender
scheduled, which the receivers' clocks synchronise on — never the
delivered size, which can transiently diverge under truncate/corrupt
faults.  Fault handling costs (retransmits, waits) are charged by the
channel inside the round and never change the round's wire term.

Execution order within a round replays the legacy loops exactly: first a
pack pass snapshots every sender's outgoing payload, then deliveries run
in comm order (receiver-ascending in the generators), folding or storing
as each arrives — so per-link fault indices, and therefore injected fault
sequences, are unchanged by the refactor.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Hashable

from ..runtime.cluster import SimCluster
from ..runtime.faults import UnrecoverableStreamError
from .codecs import PayloadCodec, State
from .ir import CommOp, LocalOp, Round, Schedule

__all__ = ["Outcome", "ScheduleExecutor"]

#: pending-table sentinel: this staged block was lost to a per-op degrade
#: (``degrade_receive`` already patched state), so the later fold skips it
#: instead of dying on a missing key.
_DEGRADED = object()


@dataclass
class Outcome:
    """What one schedule run produced: final state + wire accounting."""

    state: State
    wire: int = 0
    degraded: bool = False


class ScheduleExecutor:
    """Runs a :class:`Schedule` against a codec on a simulated cluster."""

    def __init__(self, cluster: SimCluster, codec: PayloadCodec) -> None:
        self.cluster = cluster
        self.codec = codec

    # ------------------------------------------------------------------ #
    def run(self, schedule: Schedule, state: State) -> Outcome:
        outcome = Outcome(state=state)
        pending: dict[tuple[int, Hashable], Any] = {}
        try:
            for phase in schedule.phases:
                name = self.codec.phase_name(phase.slot)
                if name is None:
                    continue  # this discipline has nothing to do here
                if name == "":
                    for rnd in phase.rounds:
                        self._round(rnd, state, pending, outcome)
                else:
                    with self.cluster.phase(name):
                        for rnd in phase.rounds:
                            self._round(rnd, state, pending, outcome)
        except UnrecoverableStreamError:
            # the single degrade path: abort the schedule, record the
            # degradation; the entry point reruns on its plain fallback
            self.cluster.channel.degrade()
            outcome.degraded = True
        return outcome

    # ------------------------------------------------------------------ #
    def _round(self, rnd: Round, state, pending, outcome: Outcome) -> None:
        cluster = self.cluster
        codec = self.codec
        # the round's declared congestion context: how many flows contend
        # for the fabric (None = all ranks) and how fast its links are
        flows = rnd.concurrency if rnd.concurrency > 0 else None
        scale = rnd.link_scale
        # pack pass: snapshot every sender's payload before any delivery
        payloads = [
            codec.pack(comm.src, comm.blocks, state) for comm in rnd.comms
        ]
        max_sent = 0
        for comm, items in zip(rnd.comms, payloads):
            sent = sum(int(item.nbytes) for item in items)
            max_sent = max(max_sent, sent)
            try:
                received = self._deliver(comm, items, sent, outcome,
                                         flows, scale)
            except UnrecoverableStreamError:
                if comm.degrade != "op":
                    raise
                cluster.channel.degrade()
                outcome.degraded = True
                outcome.wire += codec.degrade_receive(comm, state)
                if comm.action == "stage":
                    # mark the staged blocks consumed-by-degrade so the
                    # later fold LocalOp skips them cleanly (a truly
                    # missing key still raises — that is a schedule bug)
                    for b in comm.blocks:
                        pending[(comm.dst, b)] = _DEGRADED
                continue
            if comm.action == "fold":
                codec.fold(comm.dst, comm.blocks, received, state,
                           fresh=comm.fresh)
            elif comm.action == "store":
                codec.store(comm.dst, comm.blocks, received, state)
            elif comm.action == "stage":
                for b, item in zip(comm.blocks, received):
                    pending[(comm.dst, b)] = item
            # "account": wire/clock accounting only
        for op in rnd.ops:
            self._local(op, state, pending)
        if rnd.kind == "compute":
            cluster.end_compute_phase()
        else:
            cluster.end_round(max_sent, n_flows=flows, link_scale=scale)

    # ------------------------------------------------------------------ #
    def _deliver(
        self,
        comm: CommOp,
        items: tuple[Any, ...],
        sent: int,
        outcome: Outcome,
        flows: int | None,
        scale: float,
    ):
        """Move one comm's payload, charging per its declared transport."""
        cluster = self.cluster
        channel = cluster.channel
        compressed = self.codec.compressed_wire
        transport = comm.transport

        if transport in ("link", "bundle"):
            if not compressed:
                delivery = channel.deliver_plain(
                    comm.src, comm.dst, items, sent,
                    n_flows=flows, link_scale=scale,
                )
                outcome.wire += delivery.nbytes
                return delivery.payload
            if transport == "link":
                delivery = channel.deliver_compressed(
                    comm.src, comm.dst, items[0],
                    n_flows=flows, link_scale=scale,
                )
                outcome.wire += delivery.nbytes
                return (delivery.payload,)
            # bundle: one aggregate scheduled transfer, then each
            # compressed item validated individually
            channel.charge_link(comm.src, comm.dst, sent,
                                n_flows=flows, link_scale=scale)
            outcome.wire += sent
            received = []
            for item in items:
                delivery = channel.deliver_compressed(
                    comm.src, comm.dst, item, charge_base=False,
                    n_flows=flows, link_scale=scale,
                )
                outcome.wire += delivery.nbytes
                received.append(delivery.payload)
            return tuple(received)

        if transport == "sender":
            # concurrent direct send charged to the sender's clock
            cluster.charge_comm(comm.src, sent, n_flows=flows,
                                link_scale=scale)
            outcome.wire += sent
            if compressed:
                received = []
                for item in items:
                    delivery = channel.deliver_compressed(
                        comm.src, comm.dst, item, charge_base=False,
                        n_flows=flows, link_scale=scale,
                    )
                    outcome.wire += delivery.nbytes
                    received.append(delivery.payload)
                return tuple(received)
            return items

        if transport == "flow":
            # representative-flow accounting (binomial dissemination):
            # wire_count concurrent copies, one representative charge
            cluster.charge_comm(comm.dst, sent, n_flows=flows,
                                link_scale=scale)
            outcome.wire += comm.wire_count * sent
            return items

        # "faults-only": the scheduled transfer was charged elsewhere
        if compressed:
            received = []
            for item in items:
                delivery = channel.deliver_compressed(
                    comm.src, comm.dst, item, charge_base=False,
                    n_flows=flows, link_scale=scale,
                )
                outcome.wire += delivery.nbytes
                received.append(delivery.payload)
            return tuple(received)
        return items

    # ------------------------------------------------------------------ #
    def _local(self, op: LocalOp, state, pending) -> None:
        codec = self.codec
        if op.kind == "prepare":
            codec.prepare(op.rank, op.blocks, state)
        elif op.kind == "fold":
            blocks, items = [], []
            for b in op.blocks:
                item = pending.pop((op.rank, b))
                if item is _DEGRADED:
                    continue  # handled by the per-op degrade path
                blocks.append(b)
                items.append(item)
            if blocks:
                codec.fold(op.rank, tuple(blocks), items, state,
                           fresh=op.fresh)
        elif op.kind == "fold_fused":
            codec.fold_fused(op.rank, op.blocks, state, fanin=op.fanin,
                             out=op.out)
        elif op.kind == "finalize":
            codec.finalize(op.rank, op.blocks, state)
        elif op.kind == "finalize_local":
            codec.finalize_local(op.rank, op.blocks, state)
        else:  # pragma: no cover - validate() rejects unknown kinds
            raise ValueError(f"unhandled local op kind {op.kind!r}")
