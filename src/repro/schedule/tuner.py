"""Cost-driven schedule autotuner with persisted tuning tables.

ZCCL frames compressed collectives as an *algorithm-selection* problem:
which schedule family wins depends on message size, scale, fabric, and
how compressible the data actually is.  PR 5 made :func:`schedule_cost`
dry-run the exact :class:`~repro.schedule.ir.Schedule` objects the
executor runs, and PR 6 added hierarchical generators with per-round
congestion — so the cost model can now *choose* among
generator × codec × chunking × nodemap candidates instead of the caller
hand-picking a family.  This module is that chooser:

* :func:`enumerate_candidates` — every applicable (family, codec, chunks)
  combination for a rank count, plus the hierarchical variants when a
  :class:`~repro.runtime.nodemap.NodeMap` is given;
* :func:`candidate_stages` — the (schedule, discipline) stage pairs a
  candidate prices and executes.  The stage list is ``lru_cache``-d per
  ``(candidate, n, nodemap)``: it pins strong references to the generator
  schedules so :mod:`~repro.schedule.cost`'s per-schedule weak-ref
  profiles survive the whole enumeration loop — one profile build per
  (schedule, discipline), not one per scored message size;
* :func:`tune_point` — score all candidates at one grid point and return
  the winning :class:`TableEntry` (plus the full per-candidate cost map);
* :class:`TuningTable` — the versioned on-disk table (JSON, schema-
  versioned, byte-stable serialisation, commutative/idempotent merge of
  partial tables) with an in-memory LRU memo on top
  (:func:`lookup_entry`);
* :func:`classify_roughness` — maps actual data to the table's roughness
  axis (predicted bits/value under the error bound).

Keys are ``(op, dtype, message-size bucket, n, fabric, roughness)``; the
canonical string form (``allreduce/float32/b22/n256/torus/smooth``) is
the JSON key, so tables diff cleanly in version control.

Layering: this module stays inside :mod:`repro.schedule` and therefore
never imports :mod:`repro.core` — scoring rates
(:class:`~repro.core.cost_model.CostRates`) are always passed in.  The
executable entry point consulting the table lives in
:mod:`repro.collectives.tuned`.
"""

from __future__ import annotations

import json
import math
import os
import re
from collections import OrderedDict
from dataclasses import dataclass, replace
from functools import lru_cache

import numpy as np

from ..runtime.fabrics import (
    DragonflyNetwork,
    FatTreeNetwork,
    TorusNetwork,
)
from ..runtime.network import NetworkModel
from ..runtime.nodemap import NodeMap
from .cost import HZ_BCAST, HZ_GATHER, HZ_REDUCE, PLAIN, schedule_cost
from .generators import (
    binomial_bcast,
    direct_reduce,
    flat_gather,
    hierarchical_allreduce_schedule,
    pipelined_ring_reduce_scatter,
    rabenseifner_allreduce_schedule,
    ring_allgather,
    ring_reduce_scatter,
)

__all__ = [
    "SCHEMA_VERSION",
    "TUNABLE_OPS",
    "PIPELINE_MAX_RANKS",
    "PIPELINE_CHUNKS",
    "ROUGH_RATIO",
    "ROUGHNESS_CLASSES",
    "ROUGHNESS_BITS_THRESHOLD",
    "TuningKey",
    "Candidate",
    "TableEntry",
    "TuningTable",
    "TuningTableError",
    "fabric_name",
    "size_bucket",
    "bucket_bytes",
    "classify_roughness",
    "rates_for_roughness",
    "enumerate_candidates",
    "candidate_stages",
    "score_candidate",
    "tune_point",
    "lookup_entry",
    "resolve_table_path",
    "load_default_table",
]

#: on-disk table schema.  Bump on any incompatible change; loaders reject
#: *newer* schemas with a clean error instead of misreading them.
SCHEMA_VERSION = 1

#: env var consulted when neither an explicit path nor a config path is
#: given (see :func:`resolve_table_path`).
TABLE_ENV_VAR = "REPRO_TUNING_TABLE"

#: chunk-pipelined candidates are enumerated only up to this rank count:
#: a pipelined schedule at ``n`` ranks × ``c`` chunks materialises
#: ``O(n²·c)`` IR objects, which at n=1024 is minutes of build time for a
#: family chunking never wins at that scale (blocks are already tiny).
#: The cap is *logged* in the per-point cost map by simply not listing
#: the candidate — never by silently scoring a stand-in.
PIPELINE_MAX_RANKS = 256
PIPELINE_CHUNKS = (2, 4)

#: the two roughness classes the table is keyed on, and the classifier
#: threshold between them (predicted mean bits/value, see
#: :func:`classify_roughness`).
ROUGHNESS_CLASSES = ("smooth", "rough")
ROUGHNESS_BITS_THRESHOLD = 6.0

#: compression ratio assumed for the "rough" class when scoring
#: compressed-wire candidates (barely compressible data); the "smooth"
#: class uses the rates' own calibrated ratio (the paper's 9.21).
ROUGH_RATIO = 1.6

#: ops the table can key on.  ``allreduce`` enumerates the full
#: family × codec × chunking × placement grid; the rooted ops enumerate
#: their (flat) family × codec grids — ``reduce`` chooses between the
#: ring Reduce_scatter+gather pipelines and the flat fused direct reduce,
#: ``bcast`` between the plain and compressed binomial trees.
TUNABLE_OPS = ("allreduce", "reduce", "bcast")

_FAMILIES = (
    "ring", "pipelined", "rabenseifner", "hier-ring", "hier-rabenseifner",
    "direct", "binomial",
)
_CODECS = ("plain", "hz")


class TuningTableError(ValueError):
    """A tuning table could not be parsed/validated (corrupt, future
    schema, bad entry).  Loading never leaves partial state behind."""


# --------------------------------------------------------------------- #
# keys
# --------------------------------------------------------------------- #
def size_bucket(nbytes: int) -> int:
    """Message-size bucket: ``floor(log2(nbytes))``.

    Power-of-two grid sizes land exactly on bucket boundaries, so a table
    built on the benchmark grid answers those sizes with zero bucketing
    error; odd sizes share the bucket of the nearest power of two below.
    """
    if nbytes <= 0:
        raise ValueError(f"nbytes must be positive, got {nbytes}")
    return nbytes.bit_length() - 1


def bucket_bytes(bucket: int) -> int:
    """The representative (smallest) byte size of a bucket."""
    if bucket < 0:
        raise ValueError(f"bucket must be >= 0, got {bucket}")
    return 1 << bucket


def fabric_name(network: NetworkModel) -> str:
    """The table's fabric axis: the congestion law's family name."""
    if isinstance(network, DragonflyNetwork):
        return "dragonfly"
    if isinstance(network, TorusNetwork):
        return "torus"
    if isinstance(network, FatTreeNetwork):
        return "fattree"
    return "base"


_KEY_RE = re.compile(
    r"^(?P<op>[a-z0-9_]+)/(?P<dtype>[a-z0-9_]+)/b(?P<bucket>\d+)"
    r"/n(?P<n>\d+)/(?P<fabric>[a-z]+)/(?P<roughness>[a-z]+)$"
)


@dataclass(frozen=True, order=True)
class TuningKey:
    """One table key: (op, dtype, size bucket, n, fabric, roughness)."""

    op: str
    dtype: str
    bucket: int
    n_ranks: int
    fabric: str
    roughness: str

    def __post_init__(self) -> None:
        if self.op not in TUNABLE_OPS:
            raise TuningTableError(f"unsupported op {self.op!r}")
        if self.bucket < 0:
            raise TuningTableError(f"negative size bucket {self.bucket}")
        if self.n_ranks < 1:
            raise TuningTableError(f"n_ranks must be >= 1, got {self.n_ranks}")
        if self.roughness not in ROUGHNESS_CLASSES:
            raise TuningTableError(
                f"unknown roughness class {self.roughness!r} "
                f"(expected one of {ROUGHNESS_CLASSES})"
            )

    def canonical(self) -> str:
        return (
            f"{self.op}/{self.dtype}/b{self.bucket}"
            f"/n{self.n_ranks}/{self.fabric}/{self.roughness}"
        )

    @classmethod
    def parse(cls, text: str) -> "TuningKey":
        m = _KEY_RE.match(text)
        if m is None:
            raise TuningTableError(f"malformed tuning key {text!r}")
        return cls(
            op=m.group("op"),
            dtype=m.group("dtype"),
            bucket=int(m.group("bucket")),
            n_ranks=int(m.group("n")),
            fabric=m.group("fabric"),
            roughness=m.group("roughness"),
        )


# --------------------------------------------------------------------- #
# candidates
# --------------------------------------------------------------------- #
_SLUG_FLAT_RE = re.compile(r"^(ring|rabenseifner|direct|binomial)-(plain|hz)$")
_SLUG_PIPE_RE = re.compile(r"^pipelined(\d+)-hz$")
_SLUG_HIER_RE = re.compile(r"^hier-(ring|rabenseifner)(\d+)-(plain|hz)$")


@dataclass(frozen=True, order=True)
class Candidate:
    """One runnable tuning choice: family × codec (× chunks × placement).

    ``chunks`` is the pipeline depth (> 1 only for ``pipelined``);
    ``ranks_per_node`` records the placement a hierarchical candidate was
    scored for (``NodeMap.regular`` geometry — the table assumes regular
    placement), 0 for flat families.
    """

    family: str
    codec: str
    chunks: int = 1
    ranks_per_node: int = 0

    def __post_init__(self) -> None:
        if self.family not in _FAMILIES:
            raise TuningTableError(f"unknown family {self.family!r}")
        if self.codec not in _CODECS:
            raise TuningTableError(f"unknown codec {self.codec!r}")
        if self.family == "pipelined" and (
            self.chunks < 2 or self.codec != "hz"
        ):
            raise TuningTableError(
                "pipelined candidates need chunks >= 2 and the hz codec"
            )
        if self.family == "direct" and self.codec != "hz":
            # the direct rooted reduce only exists as the fused k-way
            # homomorphic schedule — a plain flat gather-and-add is the
            # ring family's job
            raise TuningTableError("direct candidates need the hz codec")
        if self.family != "pipelined" and self.chunks != 1:
            raise TuningTableError("chunks > 1 is pipelined-only")
        if self.hierarchical != (self.ranks_per_node > 0):
            raise TuningTableError(
                "ranks_per_node must be set exactly for hier-* families"
            )

    @property
    def hierarchical(self) -> bool:
        return self.family.startswith("hier-")

    def slug(self) -> str:
        if self.family == "pipelined":
            return f"pipelined{self.chunks}-{self.codec}"
        if self.hierarchical:
            return f"{self.family}{self.ranks_per_node}-{self.codec}"
        return f"{self.family}-{self.codec}"

    @classmethod
    def parse(cls, text: str) -> "Candidate":
        m = _SLUG_FLAT_RE.match(text)
        if m:
            return cls(family=m.group(1), codec=m.group(2))
        m = _SLUG_PIPE_RE.match(text)
        if m:
            return cls(family="pipelined", codec="hz", chunks=int(m.group(1)))
        m = _SLUG_HIER_RE.match(text)
        if m:
            return cls(
                family=f"hier-{m.group(1)}",
                codec=m.group(3),
                ranks_per_node=int(m.group(2)),
            )
        raise TuningTableError(f"malformed candidate slug {text!r}")


def enumerate_candidates(
    n: int, nodemap: NodeMap | None = None, op: str = "allreduce"
) -> tuple[Candidate, ...]:
    """Every applicable candidate for ``n`` ranks, deterministic order.

    * ``ring`` (plain/hz) — always applicable;
    * ``pipelined{c}`` (hz only) — n ≤ :data:`PIPELINE_MAX_RANKS` (the
      schedule-build cap, see the constant's comment) and n ≥ 2;
    * ``rabenseifner`` (plain/hz) — power-of-two n ≥ 2;
    * ``hier-ring`` / ``hier-rabenseifner`` — only with a ``nodemap``
      holding ≥ 2 ranks on some node (otherwise the hierarchy degenerates
      to the flat inter family and would only duplicate it);
      ``hier-rabenseifner`` additionally needs a power-of-two node count.

    The rooted ops enumerate their own (flat) grids: ``reduce`` chooses
    among ``ring-plain`` / ``ring-hz`` (Reduce_scatter + gather) and
    ``direct-hz`` (flat compressed gather + one fused k-way fold);
    ``bcast`` between ``binomial-plain`` and ``binomial-hz``.
    """
    if op not in TUNABLE_OPS:
        raise ValueError(
            f"the tuner supports ops {TUNABLE_OPS}, not {op!r}"
        )
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    if nodemap is not None and nodemap.n_ranks != n:
        raise ValueError(
            f"nodemap covers {nodemap.n_ranks} ranks, expected {n}"
        )
    if op == "reduce":
        return (
            Candidate("ring", "plain"),
            Candidate("ring", "hz"),
            Candidate("direct", "hz"),
        )
    if op == "bcast":
        return (
            Candidate("binomial", "plain"),
            Candidate("binomial", "hz"),
        )
    cands = [Candidate("ring", "plain"), Candidate("ring", "hz")]
    if 2 <= n <= PIPELINE_MAX_RANKS:
        cands += [
            Candidate("pipelined", "hz", chunks=c) for c in PIPELINE_CHUNKS
        ]
    if n >= 2 and (n & (n - 1)) == 0:
        cands += [
            Candidate("rabenseifner", "plain"),
            Candidate("rabenseifner", "hz"),
        ]
    if nodemap is not None and nodemap.max_node_size > 1:
        rpn = nodemap.max_node_size
        cands += [
            Candidate("hier-ring", "plain", ranks_per_node=rpn),
            Candidate("hier-ring", "hz", ranks_per_node=rpn),
        ]
        k = nodemap.n_nodes
        if k >= 2 and (k & (k - 1)) == 0:
            cands += [
                Candidate("hier-rabenseifner", "plain", ranks_per_node=rpn),
                Candidate("hier-rabenseifner", "hz", ranks_per_node=rpn),
            ]
    return tuple(cands)


@lru_cache(maxsize=512)
def candidate_stages(
    cand: Candidate, n: int, nodemap: NodeMap | None = None,
    op: str = "allreduce",
):
    """The (schedule, discipline) stage pairs pricing/running ``cand``.

    This is the profile-reuse hoist: the cache holds *strong* references
    to the generator schedules, so the weak-ref profile cache in
    :mod:`~repro.schedule.cost` keeps one structural profile alive per
    (schedule, discipline) across an entire tuning sweep — every message
    size and roughness class scored against the same ``(cand, n)`` reuses
    it instead of rebuilding (see ``tests/schedule/test_profile_reuse``).

    The rooted ops price against the canonical ``root=0`` schedules —
    their generators are root-isomorphic, so the modelled cost is
    root-independent and the table stays root-agnostic.
    """
    if op == "reduce":
        if cand.family == "direct":
            return ((direct_reduce(n, 0), HZ_REDUCE),)
        if cand.codec == "hz":
            return (
                (ring_reduce_scatter(n, finalize=False), HZ_REDUCE),
                (flat_gather(n, 0, finalize=True), HZ_GATHER),
            )
        return (
            (ring_reduce_scatter(n), PLAIN),
            (flat_gather(n, 0), PLAIN),
        )
    if op == "bcast":
        if cand.codec == "hz":
            return ((binomial_bcast(n, 0, finalize=True), HZ_BCAST),)
        return ((binomial_bcast(n, 0), PLAIN),)
    if cand.hierarchical:
        if nodemap is None:
            raise ValueError(f"candidate {cand.slug()} needs a nodemap")
        inter = cand.family.removeprefix("hier-")
        sched = hierarchical_allreduce_schedule(nodemap, inter)
        return ((sched, HZ_REDUCE if cand.codec == "hz" else PLAIN),)
    if cand.family == "ring":
        if cand.codec == "hz":
            return (
                (ring_reduce_scatter(n, finalize=False), HZ_REDUCE),
                (ring_allgather(n), HZ_GATHER),
            )
        return (
            (ring_reduce_scatter(n), PLAIN),
            (ring_allgather(n), PLAIN),
        )
    if cand.family == "pipelined":
        return (
            (
                pipelined_ring_reduce_scatter(n, cand.chunks, finalize=False),
                HZ_REDUCE,
            ),
            (ring_allgather(n, chunks=cand.chunks), HZ_GATHER),
        )
    # rabenseifner: one halving/doubling schedule covers both stages
    sched = rabenseifner_allreduce_schedule(n)
    return ((sched, HZ_REDUCE if cand.codec == "hz" else PLAIN),)


# --------------------------------------------------------------------- #
# roughness
# --------------------------------------------------------------------- #
def classify_roughness(
    data: np.ndarray, error_bound: float, sample: int = 65536
) -> str:
    """Map actual data to the table's roughness axis.

    fZ-light Lorenzo-predicts each value from its left neighbour, so the
    compressed size tracks the entropy of the quantised first differences.
    The classifier estimates mean bits/value as
    ``log2(1 + |Δ|/eb)`` over (a sample of) the data and splits at
    :data:`ROUGHNESS_BITS_THRESHOLD` — cheap, deterministic, and
    monotone in the error bound like the real compressor.
    """
    if error_bound <= 0:
        raise ValueError("error_bound must be positive")
    flat = np.asarray(data).ravel()[:sample].astype(np.float64)
    if flat.size < 2:
        return "smooth"
    diffs = np.abs(np.diff(flat))
    bits = float(np.mean(np.log2(1.0 + diffs / error_bound)))
    return "smooth" if bits <= ROUGHNESS_BITS_THRESHOLD else "rough"


def rates_for_roughness(rates, roughness: str):
    """Scoring rates for one roughness class.

    ``smooth`` keeps the calibrated compression ratio; ``rough`` clamps
    it to :data:`ROUGH_RATIO` (barely compressible), which is what makes
    plain candidates win back the small/rough corner of the table.
    """
    if roughness not in ROUGHNESS_CLASSES:
        raise ValueError(f"unknown roughness class {roughness!r}")
    if roughness == "rough" and rates.ratio > ROUGH_RATIO:
        return replace(rates, ratio=ROUGH_RATIO)
    return rates


# --------------------------------------------------------------------- #
# scoring
# --------------------------------------------------------------------- #
def score_candidate(
    cand: Candidate,
    n: int,
    size_bytes: int,
    rates,
    network: NetworkModel,
    roughness: str = "smooth",
    nodemap: NodeMap | None = None,
    op: str = "allreduce",
) -> float:
    """Modelled seconds for one candidate at one grid point."""
    r = rates_for_roughness(rates, roughness) if cand.codec == "hz" else rates
    stages = candidate_stages(
        cand, n, nodemap if cand.hierarchical else None, op
    )
    return sum(
        schedule_cost(sched, disc, size_bytes, r, network).total_time
        for sched, disc in stages
    )


@dataclass(frozen=True)
class TableEntry:
    """One tuning decision: the overall pick plus the best *flat* pick.

    ``flat_pick`` is consulted when a caller has no :class:`NodeMap` (no
    placement information ⇒ hierarchical schedules are unavailable), so a
    table built with placement still serves placement-free callers.

    ``network`` records which scoring network produced the entry — the
    fabric name for idealised sweeps, a ``calibrated:<source>`` label
    when the costs came from a measured α–β fit (``repro tune run
    --calibration``).  Provenance only: merge conflict resolution and
    lookups ignore it.
    """

    pick: Candidate
    cost_s: float
    flat_pick: Candidate
    flat_cost_s: float
    network: str = ""

    def __post_init__(self) -> None:
        for name in ("cost_s", "flat_cost_s"):
            v = getattr(self, name)
            if not (isinstance(v, float) and math.isfinite(v) and v > 0):
                raise TuningTableError(
                    f"{name} must be a positive finite float, got {v!r}"
                )
        if self.flat_pick.hierarchical:
            raise TuningTableError("flat_pick must not be hierarchical")

    def as_dict(self) -> dict:
        return {
            "pick": self.pick.slug(),
            "cost_s": self.cost_s,
            "flat_pick": self.flat_pick.slug(),
            "flat_cost_s": self.flat_cost_s,
            "network": self.network,
        }

    @classmethod
    def from_dict(cls, doc: object) -> "TableEntry":
        if not isinstance(doc, dict):
            raise TuningTableError(f"table entry must be an object, got {doc!r}")
        try:
            pick = Candidate.parse(doc["pick"])
            flat_pick = Candidate.parse(doc["flat_pick"])
            cost_s = float(doc["cost_s"])
            flat_cost_s = float(doc["flat_cost_s"])
            network = str(doc.get("network", ""))
        except (KeyError, TypeError, ValueError) as exc:
            if isinstance(exc, TuningTableError):
                raise
            raise TuningTableError(f"malformed table entry {doc!r}") from exc
        return cls(
            pick=pick, cost_s=cost_s,
            flat_pick=flat_pick, flat_cost_s=flat_cost_s,
            network=network,
        )


def tune_point(
    n: int,
    size_bytes: int,
    network: NetworkModel,
    roughness: str,
    rates,
    nodemap: NodeMap | None = None,
    dtype: str = "float32",
    op: str = "allreduce",
    network_label: str | None = None,
) -> tuple[TuningKey, TableEntry, dict[str, float]]:
    """Score every candidate at one grid point.

    Returns the key, the winning entry (argmin of modelled cost, slug
    lexical order breaking exact ties so the pick is deterministic), and
    the full ``slug → cost`` map for gates/fixtures.  ``network_label``
    overrides the provenance recorded on the entry (calibrated sweeps
    label their fit's source document; the default is the fabric name).
    """
    key = TuningKey(
        op=op,
        dtype=dtype,
        bucket=size_bucket(size_bytes),
        n_ranks=n,
        fabric=fabric_name(network),
        roughness=roughness,
    )
    costs: dict[str, float] = {}
    best = flat_best = None
    for cand in enumerate_candidates(n, nodemap, op=op):
        cost = score_candidate(
            cand, n, size_bytes, rates, network, roughness, nodemap, op
        )
        costs[cand.slug()] = cost
        ranked = (cost, cand.slug())
        if best is None or ranked < (best[0], best[1].slug()):
            best = (cost, cand)
        if not cand.hierarchical and (
            flat_best is None or ranked < (flat_best[0], flat_best[1].slug())
        ):
            flat_best = (cost, cand)
    assert best is not None and flat_best is not None
    entry = TableEntry(
        pick=best[1], cost_s=best[0],
        flat_pick=flat_best[1], flat_cost_s=flat_best[0],
        network=(
            network_label if network_label is not None
            else fabric_name(network)
        ),
    )
    return key, entry, costs


# --------------------------------------------------------------------- #
# the persisted table
# --------------------------------------------------------------------- #
def _better(a: TableEntry, b: TableEntry) -> TableEntry:
    """Deterministic merge conflict resolution: lower modelled cost wins,
    slug lexical order breaks exact ties — order-independent, so merge
    stays commutative on overlapping keys."""
    ka = (a.cost_s, a.pick.slug(), a.flat_cost_s, a.flat_pick.slug())
    kb = (b.cost_s, b.pick.slug(), b.flat_cost_s, b.flat_pick.slug())
    return a if ka <= kb else b


class TuningTable:
    """Versioned, mergeable, byte-stable on-disk tuning table.

    * ``dumps``/``saves`` emit sorted-key JSON with a trailing newline, so
      save→load→save is byte-identical (the property tests pin this);
    * ``loads`` fully parses and validates before constructing — a
      corrupt or future-schema document raises :class:`TuningTableError`
      and leaves no partial state;
    * ``merge`` is commutative and idempotent: disjoint keys union,
      overlapping keys resolve by :func:`_better`.
    """

    def __init__(self, entries: dict[TuningKey, TableEntry] | None = None):
        self.entries: dict[TuningKey, TableEntry] = dict(entries or {})

    # -- construction / inspection ------------------------------------ #
    def __len__(self) -> int:
        return len(self.entries)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TuningTable):
            return NotImplemented
        return self.entries == other.entries

    def lookup(self, key: TuningKey) -> TableEntry | None:
        return self.entries.get(key)

    def put(self, key: TuningKey, entry: TableEntry) -> None:
        cur = self.entries.get(key)
        self.entries[key] = entry if cur is None else _better(cur, entry)

    def merge(self, other: "TuningTable") -> "TuningTable":
        merged = dict(self.entries)
        for key, entry in other.entries.items():
            cur = merged.get(key)
            merged[key] = entry if cur is None else _better(cur, entry)
        return TuningTable(merged)

    # -- serialisation ------------------------------------------------- #
    def dumps(self) -> str:
        doc = {
            "schema": SCHEMA_VERSION,
            "entries": {
                key.canonical(): entry.as_dict()
                for key, entry in self.entries.items()
            },
        }
        return json.dumps(doc, sort_keys=True, indent=2) + "\n"

    @classmethod
    def loads(cls, text: str) -> "TuningTable":
        try:
            doc = json.loads(text)
        except json.JSONDecodeError as exc:
            raise TuningTableError(f"tuning table is not JSON: {exc}") from exc
        if not isinstance(doc, dict):
            raise TuningTableError(
                f"tuning table must be a JSON object, got {type(doc).__name__}"
            )
        schema = doc.get("schema")
        if not isinstance(schema, int) or schema < 1:
            raise TuningTableError(f"missing/invalid table schema: {schema!r}")
        if schema > SCHEMA_VERSION:
            raise TuningTableError(
                f"tuning table schema {schema} is newer than the supported "
                f"{SCHEMA_VERSION} — upgrade before loading this table"
            )
        raw = doc.get("entries", {})
        if not isinstance(raw, dict):
            raise TuningTableError("table 'entries' must be an object")
        entries: dict[TuningKey, TableEntry] = {}
        for key_text, entry_doc in raw.items():
            entries[TuningKey.parse(key_text)] = TableEntry.from_dict(entry_doc)
        return cls(entries)

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.dumps())

    @classmethod
    def load(cls, path: str) -> "TuningTable":
        try:
            with open(path, encoding="utf-8") as fh:
                text = fh.read()
        except OSError as exc:
            raise TuningTableError(
                f"cannot read tuning table {path!r}: {exc}"
            ) from exc
        return cls.loads(text)


def resolve_table_path(
    config=None, path: str | None = None
) -> str | None:
    """Explicit path > ``config.tuning_table_path`` > ``$REPRO_TUNING_TABLE``."""
    if path is not None:
        return path
    config_path = getattr(config, "tuning_table_path", None)
    if config_path is not None:
        return config_path
    return os.environ.get(TABLE_ENV_VAR) or None


def load_default_table(path: str | None) -> TuningTable:
    """The table at ``path``; an empty table when no path is configured or
    the file does not exist yet (misses fall back to enumeration)."""
    if path is None or not os.path.exists(path):
        return TuningTable()
    return TuningTable.load(path)


# --------------------------------------------------------------------- #
# lookup: table → LRU memo → enumeration
# --------------------------------------------------------------------- #
class _LRU:
    """Tiny ordered-dict LRU for memoising enumeration results."""

    def __init__(self, maxsize: int = 256):
        if maxsize < 1:
            raise ValueError("maxsize must be >= 1")
        self.maxsize = maxsize
        self._data: OrderedDict = OrderedDict()

    def __len__(self) -> int:
        return len(self._data)

    def get(self, key):
        if key not in self._data:
            return None
        self._data.move_to_end(key)
        return self._data[key]

    def put(self, key, value) -> None:
        self._data[key] = value
        self._data.move_to_end(key)
        while len(self._data) > self.maxsize:
            self._data.popitem(last=False)

    def clear(self) -> None:
        self._data.clear()


#: process-wide memo of enumerated entries; keyed by everything the score
#: depends on, so two different fabrics (or rates) never share an entry.
_ENTRY_MEMO = _LRU(maxsize=256)


def lookup_entry(
    key: TuningKey,
    network: NetworkModel,
    rates,
    nodemap: NodeMap | None = None,
    table: TuningTable | None = None,
) -> tuple[TableEntry, str]:
    """Resolve a key: persisted table, then LRU memo, then enumeration.

    Returns ``(entry, source)`` with source ∈ {"table", "memo",
    "enumerated"} — the entry point feeds the source straight into the
    :mod:`repro.obs` counters.
    """
    if table is not None:
        entry = table.lookup(key)
        if entry is not None:
            return entry, "table"
    memo_key = (key, network, rates, nodemap)
    cached = _ENTRY_MEMO.get(memo_key)
    if cached is not None:
        return cached, "memo"
    _, entry, _ = tune_point(
        key.n_ranks,
        bucket_bytes(key.bucket),
        network,
        key.roughness,
        rates,
        nodemap,
        dtype=key.dtype,
        op=key.op,
    )
    _ENTRY_MEMO.put(memo_key, entry)
    return entry, "enumerated"
