"""Cost-model dry runs over the *same* schedule objects the executor runs.

Where the executor pairs a schedule with a :class:`PayloadCodec` (real
kernels, virtual clocks), :func:`schedule_cost` pairs it with a
:class:`Discipline` — a pure charge table mapping the IR's verbs to
``(bucket, rate)`` pairs — and evaluates the closed-form §III-C costs:

* per round, each clock bucket is charged the **max over ranks** (the
  bulk-synchronous round closes on its slowest participant);
* ``exchange`` rounds add one transfer of the largest in-flight message,
  ``incast`` rounds serialise per-message transfers on the root's link;
* a *fresh* op pays ``op_overhead_s`` per charge entry; continuations
  (``fresh=False``) and batched finalizes don't — the invocation-count
  accounting behind the Fig. 10 high-node-count dip;
* ``overlap`` rounds cost ``pack + max(wire, fold)`` instead of the sum —
  the chunk-pipelined ring's payoff — so a pipelined schedule's
  ``total_time`` is the sum of round *makespans*, deliberately less than
  the sum of its buckets.

Schedules are structurally profiled once per discipline (ranks collapse
to distinct charge rows), so dry-running a 512-rank ring costs roughly a
round loop, not a quarter-million dataclass visits per call.
"""

from __future__ import annotations

import weakref
from collections import defaultdict
from dataclasses import dataclass
from typing import Any

from ..runtime.clock import BUCKETS, Breakdown
from ..runtime.network import NetworkModel
from ..utils.validation import ensure_positive
from .ir import Schedule

__all__ = [
    "Discipline",
    "PLAIN",
    "DOC_REDUCE",
    "DOC_GATHER",
    "HZ_REDUCE",
    "HZ_GATHER",
    "schedule_cost",
    "combine",
    "profile_stats",
    "WireSummary",
    "wire_summary",
    "CalibrationSample",
    "CalibrationFit",
    "fit_alpha_beta",
]

#: charge entries are (clock bucket, rate) with rate one of
#: "cpr"/"dpr"/"hpr"/"cpt" (looked up as ``<rate>_s_per_byte``).
Charge = tuple[tuple[str, str], ...]


@dataclass(frozen=True)
class Discipline:
    """Pure charge table: what each IR verb costs under one payload style.

    The dry-run analogue of a :class:`~repro.schedule.codecs.PayloadCodec`
    — same verbs, rates instead of kernels.  ``finalize_batched`` selects
    one invocation over all of a finalize op's blocks (hZCCL's batched
    decode) versus one per block (C-Coll's per-chunk decodes).
    """

    name: str
    compressed_wire: bool
    prepare: Charge = ()
    pack: Charge = ()
    fold: Charge = ()
    finalize: Charge = ()
    finalize_batched: bool = True


PLAIN = Discipline("plain", compressed_wire=False, fold=(("CPT", "cpt"),))
DOC_REDUCE = Discipline(
    "doc-reduce",
    compressed_wire=True,
    pack=(("CPR", "cpr"),),
    fold=(("DPR", "dpr"), ("CPT", "cpt")),
)
DOC_GATHER = Discipline(
    "doc-gather",
    compressed_wire=True,
    prepare=(("CPR", "cpr"),),
    finalize=(("DPR", "dpr"),),
    finalize_batched=False,
)
HZ_REDUCE = Discipline(
    "hz-reduce",
    compressed_wire=True,
    prepare=(("CPR", "cpr"),),
    fold=(("HPR", "hpr"),),
    finalize=(("DPR", "dpr"),),
)
#: the fused allreduce's allgather stage: inputs arrive compressed (no
#: prepare) and leave through one batched decode.
HZ_GATHER = Discipline(
    "hz-gather",
    compressed_wire=True,
    finalize=(("DPR", "dpr"),),
)
#: compressed broadcast: one encode at the root, compressed bytes on the
#: tree, one decode per receiving rank (the tuner prices the decode via
#: the generator's ``finalize=True`` pricing variant — the executed
#: schedule decodes on the delivery store, which a dry run cannot see).
HZ_BCAST = Discipline(
    "hz-bcast",
    compressed_wire=True,
    prepare=(("CPR", "cpr"),),
    finalize=(("DPR", "dpr"),),
)


# --------------------------------------------------------------------- #
# structural profiles
# --------------------------------------------------------------------- #
# Block sizes are kept symbolic as (n_default, weight_sum): a block with
# no explicit weight contributes total_bytes/n_ranks (the same expression
# the legacy closed forms used, bit-for-bit), a weighted one w*total.
#
# The cache is keyed by object identity for O(1) lookups but holds only a
# weak reference to the schedule: a dead entry is evicted by the weakref
# callback the moment the schedule is collected, so tuning sweeps over
# thousands of throwaway schedules cannot accumulate profiles, and a
# recycled id() can never serve a stale profile (the old entry is gone
# before the id can be reused).  Each live schedule carries one memo of
# profiles keyed by discipline name.
_PROFILE_CACHE: dict[int, tuple[weakref.ref, dict[str, list]]] = {}

# Build/hit counters over the life of the process.  The tuner's candidate
# enumeration depends on profile *reuse* (one build per (schedule,
# discipline), not one per scored message size); the counters make that a
# testable contract instead of a hope (tests/schedule/test_profile_reuse).
_PROFILE_STATS = {"builds": 0, "hits": 0}


def profile_stats() -> dict[str, int]:
    """Snapshot of structural-profile cache traffic (process-wide)."""
    return dict(_PROFILE_STATS)


def _coeff(schedule: Schedule, blocks) -> tuple[int, float]:
    nd, w = 0, 0.0
    for b in blocks:
        bw = schedule.weights.get(b)
        if bw is None:
            nd += 1
        else:
            w += bw
    return nd, w


def _profile(schedule: Schedule, discipline: Discipline) -> list:
    key = id(schedule)
    hit = _PROFILE_CACHE.get(key)
    if hit is not None and hit[0]() is schedule:
        memo = hit[1]
        cached = memo.get(discipline.name)
        if cached is not None:
            _PROFILE_STATS["hits"] += 1
            return cached
    else:
        memo = {}
        ref = weakref.ref(
            schedule, lambda _, key=key: _PROFILE_CACHE.pop(key, None)
        )
        _PROFILE_CACHE[key] = (ref, memo)

    profile = []
    for rnd in schedule.rounds():
        serial: dict[int, dict] = defaultdict(dict)
        over: dict[int, dict] = defaultdict(dict)

        def add(table, rank, bucket, rate, nd, w, n_ov):
            entry = table[rank].setdefault((bucket, rate), [0, 0.0, 0])
            entry[0] += nd
            entry[1] += w
            entry[2] += n_ov

        wire_max: tuple[int, float] | None = None
        incast: list[tuple[int, float]] = []
        tot_nd, tot_w, n_msgs = 0, 0.0, 0
        for comm in rnd.comms:
            nd, w = _coeff(schedule, comm.blocks)
            if comm.transport != "faults-only":
                # all-links totals (calibration): a flow comm stands for
                # wire_count concurrent copies of the same message
                tot_nd += comm.wire_count * nd
                tot_w += comm.wire_count * w
                n_msgs += comm.wire_count
                if rnd.kind == "incast":
                    incast.append((nd, w))
                elif wire_max is None or (
                    nd / schedule.n_ranks + w
                    > wire_max[0] / schedule.n_ranks + wire_max[1]
                ):
                    wire_max = (nd, w)
            for bucket, rate in discipline.pack:
                add(serial, comm.src, bucket, rate, nd, w, 1)
            if comm.action == "fold":
                for bucket, rate in discipline.fold:
                    add(serial, comm.dst, bucket, rate, nd, w,
                        1 if comm.fresh else 0)

        for op in rnd.ops:
            nd, w = _coeff(schedule, op.blocks)
            if op.kind == "prepare":
                for bucket, rate in discipline.prepare:
                    add(serial, op.rank, bucket, rate, nd, w,
                        1 if op.fresh else 0)
            elif op.kind == "fold":
                table = over if rnd.overlap else serial
                for bucket, rate in discipline.fold:
                    add(table, op.rank, bucket, rate, nd, w,
                        1 if op.fresh else 0)
            elif op.kind == "fold_fused":
                # the fused rate (k·IFE + FE) already spans all k operands
                # — the size coefficient is one operand, not their sum
                nd1, w1 = _coeff(schedule, op.blocks[:1])
                add(serial, op.rank, "HPR", ("fused", op.fanin), nd1, w1,
                    1 if op.fresh else 0)
            elif op.kind == "finalize":
                n_inv = 1 if discipline.finalize_batched else len(op.blocks)
                for bucket, rate in discipline.finalize:
                    add(serial, op.rank, bucket, rate, nd, w, n_inv)
            # finalize_local: executed functionally, uncharged here — the
            # paper books N−1 decodes by not counting the own-block one

        # collapse ranks to distinct (serial, overlap) charge rows — in the
        # symmetric ring all 512 ranks become one row
        def canon(table, rank):
            return tuple(
                sorted((k, tuple(v)) for k, v in table.get(rank, {}).items())
            )

        rows = {
            (canon(serial, r), canon(over, r))
            for r in set(serial) | set(over)
        }
        comm_spec: tuple[str, Any] | None = None
        if rnd.kind == "incast":
            if incast:
                comm_spec = ("incast", tuple(incast))
        elif wire_max is not None:
            comm_spec = ("exchange", wire_max)
        profile.append(
            (
                rnd.overlap,
                comm_spec,
                tuple(rows),
                rnd.flows(schedule.n_ranks),
                rnd.link_scale,
                (tot_nd, tot_w, n_msgs),
            )
        )

    memo[discipline.name] = profile
    _PROFILE_STATS["builds"] += 1
    return profile


# --------------------------------------------------------------------- #
def schedule_cost(
    schedule: Schedule,
    discipline: Discipline,
    total_bytes: int,
    rates,
    network: NetworkModel,
    multithread: bool = False,
    thread_speedup: float = 6.0,
) -> Breakdown:
    """Dry-run ``schedule`` under ``discipline``: the analytic Breakdown.

    ``rates`` is a :class:`~repro.core.cost_model.CostRates`; multithread
    divides the compute-family rates by ``thread_speedup`` exactly as the
    functional cluster does.
    """
    ensure_positive(total_bytes, "total_bytes")
    if multithread:
        rates = rates.scaled(thread_speedup)
    n = schedule.n_ranks
    ov = rates.op_overhead_s

    def nbytes(nd: int, w: float) -> float:
        return nd * (total_bytes / n) + w * total_bytes

    def rate_of(rate) -> float:
        if isinstance(rate, tuple):  # ("fused", k)
            return rates.fused_hpr_s_per_byte(rate[1])
        return getattr(rates, rate + "_s_per_byte")

    def transfer(nd: int, w: float, flows: int, scale: float) -> float:
        # ``flows`` comes from the Round's declared concurrency (all ranks
        # for flat schedules) — never from n_ranks directly, so an 8-rank
        # intra-node round on a 1024-rank job pays 8-way congestion.
        wire = nbytes(nd, w)
        if discipline.compressed_wire:
            wire /= rates.ratio
        return network.transfer_time(int(wire), flows) / scale

    buckets: dict[str, float] = defaultdict(float)
    total = 0.0
    for overlap, comm_spec, rows, flows, scale, _wire_tot in _profile(
        schedule, discipline
    ):
        comm_time = 0.0
        if comm_spec is not None:
            kind, data = comm_spec
            if kind == "exchange":
                comm_time = transfer(*data, flows, scale)
            else:
                for nd, w in data:
                    comm_time += transfer(nd, w, flows, scale)

        serial_tot = overlap_tot = 0.0
        bucket_max: dict[str, float] = {}
        for srow, orow in rows:
            by_bucket: dict[str, float] = {}
            ssum = osum = 0.0
            for (bucket, rate), (nd, w, n_ov) in srow:
                t = nbytes(nd, w) * rate_of(rate) + n_ov * ov
                by_bucket[bucket] = by_bucket.get(bucket, 0.0) + t
                ssum += t
            for (bucket, rate), (nd, w, n_ov) in orow:
                t = nbytes(nd, w) * rate_of(rate) + n_ov * ov
                by_bucket[bucket] = by_bucket.get(bucket, 0.0) + t
                osum += t
            for bucket, t in by_bucket.items():
                if t > bucket_max.get(bucket, 0.0):
                    bucket_max[bucket] = t
            serial_tot = max(serial_tot, ssum)
            overlap_tot = max(overlap_tot, osum)

        for bucket, t in bucket_max.items():
            buckets[bucket] += t
        buckets["MPI"] += comm_time
        if overlap:
            total += serial_tot + max(comm_time, overlap_tot)
        else:
            total += serial_tot + overlap_tot + comm_time

    full = {b: buckets.get(b, 0.0) for b in BUCKETS}
    return Breakdown(buckets=full, total_time=total)


def combine(*parts: Breakdown) -> Breakdown:
    """Sum stage Breakdowns (reduce-scatter + allgather compositions)."""
    full = {
        b: sum(p.buckets.get(b, 0.0) for p in parts) for b in BUCKETS
    }
    return Breakdown(
        buckets=full, total_time=sum(p.total_time for p in parts)
    )


# --------------------------------------------------------------------- #
# calibration: fitting measured makespans back into the α–β model
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class WireSummary:
    """Structural wire terms of one schedule at one payload size.

    ``hops``/``crit_bytes`` are the critical-path α/β terms the closed
    form charges (one transfer of the largest message per exchange round,
    serialised per-message transfers per incast round); ``messages`` and
    ``total_bytes`` sum over *all* links, which is the quantity the
    executors' ``bytes_on_wire`` measures.  Byte terms are plain logical
    sizes — a compressed run's measured wire divided by ``total_bytes``
    yields the achieved compression ratio, which callers apply to
    ``crit_bytes`` before fitting (self-calibrating: no assumed ratio).
    """

    hops: int
    crit_bytes: float
    messages: int
    total_bytes: float


def wire_summary(
    schedule: Schedule, discipline: Discipline, total_bytes: int
) -> WireSummary:
    """The α–β wire terms of ``schedule`` at ``total_bytes`` per rank."""
    ensure_positive(total_bytes, "total_bytes")
    n = schedule.n_ranks

    def nbytes(nd: int, w: float) -> float:
        return nd * (total_bytes / n) + w * total_bytes

    hops, crit, messages, total = 0, 0.0, 0, 0.0
    for _overlap, comm_spec, _rows, _flows, _scale, wire_tot in _profile(
        schedule, discipline
    ):
        tot_nd, tot_w, n_msgs = wire_tot
        messages += n_msgs
        total += nbytes(tot_nd, tot_w)
        if comm_spec is None:
            continue
        kind, data = comm_spec
        if kind == "exchange":
            hops += 1
            crit += nbytes(*data)
        else:  # incast: the root serialises one transfer per message
            hops += len(data)
            crit += sum(nbytes(nd, w) for nd, w in data)
    return WireSummary(
        hops=hops, crit_bytes=crit, messages=messages, total_bytes=total
    )


@dataclass(frozen=True)
class CalibrationSample:
    """One measured run: its structural wire terms and wall-clock times.

    ``crit_bytes`` should already carry the achieved compression ratio
    (measured wire / plain total) when the run was compressed, and
    ``compute_s`` is the slowest rank's measured compute, so the residual
    ``comm_s`` isolates the α·hops + β·bytes communication term.
    """

    family: str
    hops: int
    crit_bytes: float
    measured_s: float
    compute_s: float = 0.0

    @property
    def comm_s(self) -> float:
        return max(0.0, self.measured_s - self.compute_s)


@dataclass(frozen=True)
class CalibrationFit:
    """Fitted α–β coefficients plus the per-sample model report."""

    alpha_s: float
    beta_s_per_byte: float
    samples: tuple[CalibrationSample, ...]

    def modelled_s(self, sample: CalibrationSample) -> float:
        """Modelled makespan: measured compute + fitted α–β comm terms."""
        return (
            sample.compute_s
            + self.alpha_s * sample.hops
            + self.beta_s_per_byte * sample.crit_bytes
        )

    def report(self) -> list[dict]:
        """Per-sample measured vs modelled makespans with relative error."""
        rows = []
        for s in self.samples:
            modelled = self.modelled_s(s)
            denom = max(s.measured_s, 1e-12)
            rows.append(
                {
                    "family": s.family,
                    "hops": s.hops,
                    "crit_bytes": s.crit_bytes,
                    "measured_s": s.measured_s,
                    "modelled_s": modelled,
                    "rel_err": abs(modelled - s.measured_s) / denom,
                }
            )
        return rows

    def family_errors(self) -> dict[str, float]:
        """Worst relative model error per schedule family."""
        worst: dict[str, float] = {}
        for row in self.report():
            fam = row["family"]
            worst[fam] = max(worst.get(fam, 0.0), row["rel_err"])
        return worst

    def max_rel_err(self) -> float:
        return max((r["rel_err"] for r in self.report()), default=0.0)

    def as_network(self, congestion_per_log2: float = 0.0) -> NetworkModel:
        """The fitted coefficients as a NetworkModel for dry runs.

        Coefficients are floored at tiny positive values because the
        model rejects zero latency/bandwidth; a floored coefficient means
        the fit attributed that term no measurable cost at these sizes.
        """
        alpha = max(self.alpha_s, 1e-9)
        beta = max(self.beta_s_per_byte, 1e-15)
        return NetworkModel(
            latency_s=alpha,
            bandwidth_Bps=1.0 / beta,
            congestion_per_log2=congestion_per_log2,
        )


def fit_alpha_beta(samples) -> CalibrationFit:
    """Least-squares fit of ``comm_s ≈ α·hops + β·crit_bytes``.

    Plain 2×2 normal equations with non-negativity enforced by clamping:
    if the unconstrained solution turns a coefficient negative, that term
    is dropped and the other refit alone — the textbook active-set step
    for a two-variable NNLS, exact here because there are only two
    constraint patterns to try.
    """
    samples = tuple(samples)
    if not samples:
        raise ValueError("fit_alpha_beta needs at least one sample")
    shh = shb = sbb = sht = sbt = 0.0
    for s in samples:
        h, b, t = float(s.hops), float(s.crit_bytes), s.comm_s
        shh += h * h
        shb += h * b
        sbb += b * b
        sht += h * t
        sbt += b * t

    det = shh * sbb - shb * shb
    if det > 0.0:
        alpha = (sht * sbb - sbt * shb) / det
        beta = (sbt * shh - sht * shb) / det
    else:  # degenerate design (collinear or single sample): 1-D fits
        alpha = -1.0
        beta = -1.0
    if alpha < 0.0 or beta < 0.0:
        alpha_only = sht / shh if shh > 0.0 else 0.0
        beta_only = sbt / sbb if sbb > 0.0 else 0.0

        def sse(a: float, b: float) -> float:
            return sum((a * s.hops + b * s.crit_bytes - s.comm_s) ** 2
                       for s in samples)

        alpha, beta = min(
            (max(alpha_only, 0.0), 0.0),
            (0.0, max(beta_only, 0.0)),
            key=lambda ab: sse(*ab),
        )
    return CalibrationFit(
        alpha_s=max(alpha, 0.0),
        beta_s_per_byte=max(beta, 0.0),
        samples=samples,
    )
