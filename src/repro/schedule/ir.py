"""Schedule IR: the control-plane description of a collective.

A :class:`Schedule` is a pure, discipline-agnostic description of *who
talks to whom, when, about which blocks* — the communication pattern of
Figure 5 and its relatives, with no payload semantics attached.  The same
ring reduce-scatter schedule executes as the plain MPI baseline, as
C-Coll's per-round DOC workflow, or as hZCCL's homomorphic pipeline purely
by pairing it with a different :class:`~repro.schedule.codecs.PayloadCodec`
— the separation of concerns the paper's co-design is built on.

Vocabulary
----------
* **Block ids** are opaque hashables.  Ring schedules use the integers
  ``0 … n−1`` (the standard block indexing of
  :class:`~repro.runtime.topology.Ring`); the chunk-pipelined generator
  uses ``(block, chunk)`` pairs; the direct rooted reduce uses
  ``("vec", rank)`` whole-vector ids.
* A :class:`CommOp` moves the listed blocks ``src → dst`` and declares
  what the receiver does with them (``action``) and how the transfer is
  charged (``transport``).
* A :class:`LocalOp` marks rank-local compute — prepare (pre-schedule
  encode), pack (per-round encode), fold, finalize (decode) — whose
  concrete meaning (kernel + clock bucket) the codec supplies.  ``fresh``
  distinguishes a new kernel invocation from the *continuation* of a
  running one: continuations charge no per-invocation overhead in the
  cost model, which is what makes chunk pipelining profitable (a chunked
  compressor launches once per block; a persistent HPR worker team forks
  once per ring round).
* A :class:`Round` is one bulk-synchronous step with a declared clock
  discipline: ``exchange`` rounds close on the largest in-flight message
  (full-duplex concurrent links), ``incast`` rounds serialise per-message
  transfer charges (rooted gathers), ``compute`` rounds close on compute
  alone.  ``overlap=True`` marks rounds whose local ops are software-
  pipelined against the wire time (cost = max, not sum).
* ``Round.concurrency`` declares how many flows actually contend for the
  shared fabric during the round — the congestion-law argument.  ``0``
  (the default) means *all* ``n_ranks`` flows, which is exactly right for
  the flat families where every rank talks every round; hierarchical
  schedules set it per round so that an 8-rank intra-node exchange on a
  1024-rank job is charged 8-way congestion, not 1024-way.
  ``Round.link_scale`` is the bandwidth multiplier of the links the round
  rides (intra-node links are ``NodeMap.intra_scale`` × faster than the
  inter-node fabric).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Iterator, Mapping

__all__ = ["CommOp", "LocalOp", "Round", "Phase", "Schedule"]

#: CommOp.action values: what the receiver does with the payload.
ACTIONS = ("fold", "store", "stage", "account")
#: CommOp.transport values: how the transfer is charged/validated.
TRANSPORTS = ("link", "bundle", "sender", "flow", "faults-only")
#: LocalOp.kind values.
LOCAL_KINDS = (
    "prepare",
    "pack",
    "fold",
    "fold_fused",
    "finalize",
    "finalize_local",
)
#: Round.kind values: the clock discipline closing the round.
ROUND_KINDS = ("exchange", "incast", "compute")


@dataclass(frozen=True)
class CommOp:
    """One scheduled transfer of ``blocks`` from ``src`` to ``dst``.

    ``action``
        ``fold``   — reduce each block into the receiver's partial;
        ``store``  — the receiver keeps the payload (allgather/bcast);
        ``stage``  — the payload is parked; a later ``fold`` LocalOp
        consumes it (the chunk-pipelined ring's deliver-now-fold-later);
        ``account``— wire/clock accounting only, no payload handling
        (binomial-tree dissemination rounds, where delivery happens in a
        later round).

    ``transport``
        ``link``       — one per-block message through the resilient
        channel (the ring default);
        ``bundle``     — all blocks ride one aggregate message: the
        scheduled transfer is charged once, compressed items are then
        validated individually (Rabenseifner's halving/doubling bundles);
        ``sender``     — concurrent direct send charged to the *sender*'s
        clock (flat-gather incast);
        ``flow``       — representative-flow accounting charged to the
        receiver, with ``wire_count`` copies on the wire (binomial tree);
        ``faults-only``— the scheduled transfer was charged elsewhere;
        only fault handling (validation, retransmits) is charged.

    ``fresh=False`` marks the receive-side fold as the continuation of the
    previous sub-round's kernel invocation (chunk pipelining).

    ``degrade`` selects what an unrecoverable stream does: ``"schedule"``
    aborts the whole schedule (the executor's single degrade path);
    ``"op"`` degrades just this delivery via the codec's per-op fallback
    (compressed bcast re-sends that rank's share plain).
    """

    src: int
    dst: int
    blocks: tuple[Hashable, ...]
    action: str = "fold"
    transport: str = "link"
    wire_count: int = 1
    fresh: bool = True
    degrade: str = "schedule"


@dataclass(frozen=True)
class LocalOp:
    """Rank-local compute marker (kernel + bucket come from the codec)."""

    rank: int
    kind: str
    blocks: tuple[Hashable, ...]
    fresh: bool = True
    #: operand count for ``fold_fused`` (the k of the k-way kernel).
    fanin: int = 0
    #: destination state key for ``fold_fused`` output — batched
    #: schedules fuse several independent sessions on one root, each
    #: landing in its own key.
    out: Hashable = "fused"


@dataclass(frozen=True)
class Round:
    """One bulk-synchronous step: packs, transfers, then local ops."""

    kind: str = "exchange"
    comms: tuple[CommOp, ...] = ()
    ops: tuple[LocalOp, ...] = ()
    #: local ops overlap the round's wire time (pipelined sub-rounds).
    overlap: bool = False
    #: concurrent flows contending for the fabric this round; 0 = all
    #: ``n_ranks`` (the flat-collective default).
    concurrency: int = 0
    #: bandwidth multiplier of the links this round rides (> 1 for
    #: intra-node exchanges over faster local links).
    link_scale: float = 1.0

    def flows(self, n_ranks: int) -> int:
        """The congestion-law argument: declared concurrency or all ranks."""
        return self.concurrency if self.concurrency > 0 else n_ranks


@dataclass(frozen=True)
class Phase:
    """A named group of rounds.

    ``slot`` is the *abstract* name (``setup`` / ``exchange`` /
    ``finalize`` / algorithm-specific names like ``halving``); the codec
    maps slots to the user-facing span names (``compress``,
    ``doc-exchange``, …) or to ``None`` to skip the phase entirely for
    disciplines where it is empty (a plain ring has no setup).
    """

    slot: str
    rounds: tuple[Round, ...]


@dataclass(frozen=True)
class Schedule:
    """A complete collective schedule: phases of rounds over block ids.

    ``weights`` maps each block id to its fraction of the collective's
    total payload (used by the cost model's dry run to size messages and
    kernels); ids absent from the mapping default to ``1 / n_ranks``.
    """

    name: str
    n_ranks: int
    phases: tuple[Phase, ...]
    weights: Mapping[Hashable, float] = field(default_factory=dict, hash=False)

    def rounds(self) -> Iterator[Round]:
        for phase in self.phases:
            yield from phase.rounds

    def comms(self) -> Iterator[CommOp]:
        for rnd in self.rounds():
            yield from rnd.comms

    def weight(self, block: Hashable) -> float:
        return self.weights.get(block, 1.0 / self.n_ranks)

    def validate(self) -> "Schedule":
        """Structural sanity checks; returns self for chaining."""
        for rnd in self.rounds():
            if rnd.kind not in ROUND_KINDS:
                raise ValueError(f"unknown round kind {rnd.kind!r}")
            if rnd.concurrency < 0 or rnd.concurrency > self.n_ranks:
                raise ValueError(
                    f"round concurrency {rnd.concurrency} out of range for "
                    f"{self.n_ranks} ranks"
                )
            if rnd.link_scale <= 0:
                raise ValueError(
                    f"round link_scale must be > 0, got {rnd.link_scale}"
                )
            for comm in rnd.comms:
                if comm.action not in ACTIONS:
                    raise ValueError(f"unknown comm action {comm.action!r}")
                if comm.transport not in TRANSPORTS:
                    raise ValueError(
                        f"unknown comm transport {comm.transport!r}"
                    )
                for end, label in ((comm.src, "src"), (comm.dst, "dst")):
                    if not 0 <= end < self.n_ranks:
                        raise ValueError(
                            f"comm {label} {end} out of range for "
                            f"{self.n_ranks} ranks"
                        )
            for op in rnd.ops:
                if op.kind not in LOCAL_KINDS:
                    raise ValueError(f"unknown local op kind {op.kind!r}")
                if not 0 <= op.rank < self.n_ranks:
                    raise ValueError(
                        f"op rank {op.rank} out of range for "
                        f"{self.n_ranks} ranks"
                    )
        return self
