"""Multi-process execution of the Schedule IR (the real data plane).

:class:`MPExecutor` runs the **same frozen** :class:`~repro.schedule.ir.
Schedule` objects as :class:`~repro.schedule.executor.ScheduleExecutor`,
but for real: one OS process per rank (see
:mod:`repro.runtime.mp_cluster`), payload bytes moving over shared-memory
rings or sockets (see :mod:`repro.runtime.mp_channel`), and wall-clock
receive deadlines derived from the same :class:`~repro.runtime.faults.
RetryPolicy` the simulator models.  The correctness contract is
**bit-identical** ``state`` and **identical** ``wire`` versus the
simulator for every schedule × codec pair, faults included.

How the fault semantics carry over
----------------------------------
The simulator's :class:`~repro.runtime.faults.ResilientChannel` consumes
one deterministic per-link fault index per transmission attempt.  Here
the *sender* owns that sequence: for every managed transfer it walks the
same ``plan.decide(src, dst, index)`` attempts the simulator would, and
emits one frame per non-dropped attempt — flagged ``DAMAGED`` when the
plan corrupts/truncates it (compressed payloads are damaged **for real**
with ``plan.corrupt_stream`` and rejected by the wire format's checksum
at the receiver), flagged ``DUPLICATE`` for the extra wire copy, kind
``FORCED`` for the plain path's reliable-floor escalation, and kind
``FAIL`` when a compressed stream exhausts ``max_attempts`` (the
receiver raises :class:`UnrecoverableStreamError`, same degrade contract
as the simulator).  The receiver accounts ``frame.nbytes`` — the
*scheduled* logical size carried in the header — under exactly the
simulator's charging rules, which is what makes ``bytes_on_wire`` match
to the byte.

Self-deliveries (``src == dst`` comms, e.g. the broadcast tree's
representative flows) and every ``LocalOp`` are executed by delegating
to a rank-local :class:`ScheduleExecutor` over a rank-local
:class:`SimCluster` — zero drift by construction, and the local cluster
doubles as the codec's compute-charge sink, so each rank reports real
measured kernel seconds for the calibration loop.

Deadlock freedom: each worker runs one background sender thread **per
destination** (so a slow receiver can never block frames bound for a
different rank) and receivers drain their incoming comms in schedule
order; since every frame queued in a round is consumed in that same
round, the only waits are true data dependencies.
"""

from __future__ import annotations

import queue
import threading
import time
from dataclasses import dataclass, field
from types import SimpleNamespace
from typing import Any, Hashable

import numpy as np

from ..compression.format import from_bytes
from ..runtime.cluster import SimCluster
from ..runtime.faults import FaultPlan, RetryPolicy, UnrecoverableStreamError
from ..runtime.mp_channel import (
    FLAG_COMPRESSED,
    FLAG_DAMAGED,
    FLAG_DUPLICATE,
    FRAME_DATA,
    FRAME_FAIL,
    FRAME_FORCED,
    FRAME_RAW,
    Frame,
    MPAbortedError,
    dump_items,
    load_items,
    recv_frame,
    send_frame,
)
from ..runtime.mp_cluster import MPCluster, RankResult
from .codecs import (
    CompressedBcastCodec,
    DocGatherCodec,
    DocReduceCodec,
    HomomorphicCodec,
    PlainCodec,
)
from .executor import _DEGRADED, Outcome, ScheduleExecutor
from .ir import Round, Schedule

__all__ = ["CodecSpec", "MPExecutor", "RankJob", "execute_rank"]


# --------------------------------------------------------------------- #
# picklable codec description
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class CodecSpec:
    """Worker-side recipe for a codec.

    Codecs hold clusters, engines and numpy state, so the parent ships
    this small picklable description instead and every worker builds its
    own instance.  Kernel determinism guarantees all ranks produce
    byte-identical streams regardless of who runs the encode.
    """

    kind: str  # plain | doc-reduce | doc-gather | homomorphic | compressed-bcast
    error_bound: float = 1e-3
    block_size: int = 32
    n_threadblocks: int = 8
    #: slot → span-name overrides (``None`` skips the phase), as items so
    #: the spec stays hashable; ``None`` keeps the codec's defaults.
    slots: tuple[tuple[str, str | None], ...] | None = None
    #: full payload for the compressed broadcast's per-rank plain fallback
    bcast_data: Any = None

    _KINDS = (
        "plain",
        "doc-reduce",
        "doc-gather",
        "homomorphic",
        "compressed-bcast",
    )

    def __post_init__(self) -> None:
        if self.kind not in self._KINDS:
            raise ValueError(
                f"unknown codec kind {self.kind!r}; one of {self._KINDS}"
            )
        if self.kind == "compressed-bcast" and self.bcast_data is None:
            raise ValueError("compressed-bcast needs bcast_data")

    def build(self, cluster: SimCluster):
        """Construct the codec bound to ``cluster`` as its charge sink."""
        config = SimpleNamespace(
            block_size=self.block_size,
            n_threadblocks=self.n_threadblocks,
            error_bound=self.error_bound,
        )
        if self.kind == "plain":
            return PlainCodec(cluster)
        if self.kind == "doc-reduce":
            return DocReduceCodec(cluster, config)
        if self.kind == "doc-gather":
            return DocGatherCodec(cluster, config)
        if self.kind == "homomorphic":
            slots = dict(self.slots) if self.slots is not None else None
            return HomomorphicCodec(cluster, config, slots=slots)
        return CompressedBcastCodec(
            cluster, config, np.asarray(self.bcast_data, dtype=np.float32)
        )


@dataclass(frozen=True)
class RankJob:
    """Everything one worker needs to run its slice of a schedule."""

    schedule: Schedule
    spec: CodecSpec
    state: dict
    plan: FaultPlan | None
    retry: RetryPolicy
    time_scale: float
    recv_deadline_s: float


# --------------------------------------------------------------------- #
# per-destination sender threads
# --------------------------------------------------------------------- #
class _SenderPool:
    """One background writer thread per destination rank.

    The main thread enqueues prebuilt frame bytes (and optional pacing
    sleeps); each thread drains its queue into that destination's
    channel.  Per-destination threads mean a full ring toward one slow
    receiver can never delay frames bound for another rank — the
    property that makes arbitrary schedules deadlock-free.
    """

    def __init__(self, channels: dict[int, Any], deadline_s: float) -> None:
        self._deadline_s = deadline_s
        self._abort = threading.Event()
        self._failures: dict[int, str] = {}
        self._queues: dict[int, queue.Queue] = {}
        self._threads: dict[int, threading.Thread] = {}
        for dst, channel in channels.items():
            q: queue.Queue = queue.Queue()
            t = threading.Thread(
                target=self._drain,
                args=(dst, channel, q),
                name=f"repro-mp-send-{dst}",
                daemon=True,
            )
            self._queues[dst] = q
            self._threads[dst] = t
            t.start()

    def _poll(self) -> None:
        if self._abort.is_set():
            raise MPAbortedError("sender pool aborted")

    def _drain(self, dst: int, channel, q: queue.Queue) -> None:
        try:
            while True:
                item = q.get()
                if item is None:
                    return
                kind, value = item
                if kind == "sleep":
                    # paced in small slices so aborts stay responsive
                    end = time.monotonic() + value
                    while time.monotonic() < end:
                        self._poll()
                        time.sleep(min(0.01, max(0.0, end - time.monotonic())))
                else:
                    channel.send_bytes(
                        value, time.monotonic() + self._deadline_s, self._poll
                    )
        except MPAbortedError:
            pass
        except Exception as exc:  # surfaced by flush()
            self._failures[dst] = f"{type(exc).__name__}: {exc}"

    # ------------------------------------------------------------------ #
    def put_frame(self, dst: int, frame: Frame) -> None:
        buf = bytearray()
        send_frame(_Collector(buf), frame, deadline=0.0)
        self._queues[dst].put(("send", bytes(buf)))

    def put_sleep(self, dst: int, seconds: float) -> None:
        if seconds > 0.0:
            self._queues[dst].put(("sleep", seconds))

    def flush(self) -> None:
        """Block until every queued frame is on the wire; raise on failure."""
        for q in self._queues.values():
            q.put(None)
        for t in self._threads.values():
            t.join()
        if self._failures:
            detail = "; ".join(
                f"→{dst}: {msg}" for dst, msg in sorted(self._failures.items())
            )
            raise RuntimeError(f"sender threads failed: {detail}")

    def abort(self) -> None:
        self._abort.set()
        for q in self._queues.values():
            q.put(None)
        for t in self._threads.values():
            t.join(timeout=2.0)


class _Collector:
    """Minimal channel adapter collecting frame bytes into a buffer."""

    def __init__(self, buf: bytearray) -> None:
        self._buf = buf

    def send_bytes(self, data: bytes, deadline, poll=None) -> None:
        self._buf += data


# --------------------------------------------------------------------- #
# worker-side rank interpreter
# --------------------------------------------------------------------- #
class _RankRuntime:
    """Executes one rank's share of a schedule over real channels."""

    def __init__(
        self,
        rank: int,
        n_ranks: int,
        send_channels: dict[int, Any],
        recv_channels: dict[int, Any],
        job: RankJob,
        poll_control,
    ) -> None:
        self.rank = rank
        self.n_ranks = n_ranks
        self.recv_channels = recv_channels
        self.job = job
        self.poll_control = poll_control
        self.pool = _SenderPool(send_channels, job.recv_deadline_s)
        # rank-local simulator: compute-charge sink for the codec, exact
        # self-delivery semantics, and the per-link fault index table
        self.sim = SimCluster(n_ranks, faults=job.plan, retry=job.retry)
        self.codec = job.spec.build(self.sim)
        self.shadow = ScheduleExecutor(self.sim, self.codec)
        self.outcome: Outcome | None = None
        self.pending: dict[tuple[int, Hashable], Any] = {}
        self.stats = {
            "frames_sent": 0,
            "frames_received": 0,
            "retransmits": 0,
            "forced_deliveries": 0,
            "failed_streams": 0,
            "damaged_rejected": 0,
            "duplicates_discarded": 0,
        }

    # ------------------------------------------------------------------ #
    def execute(self) -> RankResult:
        job = self.job
        me = self.rank
        # sparse rank-indexed state: this worker only ever touches its own
        # slice (codec verbs are all rank-local); None elsewhere keeps any
        # accidental cross-rank access loudly fatal
        state: list = [None] * self.n_ranks
        state[me] = job.state
        self.outcome = outcome = Outcome(state=state)
        start = time.perf_counter()
        aborted_schedule = False
        try:
            try:
                for phase in job.schedule.phases:
                    if self.codec.phase_name(phase.slot) is None:
                        continue
                    for rnd in phase.rounds:
                        self._round(rnd, state)
            except UnrecoverableStreamError:
                # degrade="schedule": the whole run is abandoned, exactly
                # like the simulator's top-level catch
                self.sim.channel.degrade()
                outcome.degraded = True
                aborted_schedule = True
            if not aborted_schedule:
                self.pool.flush()
        except BaseException:
            self.pool.abort()
            raise
        else:
            if aborted_schedule:
                self.pool.abort()
        seconds = time.perf_counter() - start
        clock = self.sim.clocks[me]
        compute_s = sum(
            clock.buckets.get(b, 0.0) for b in SimCluster._COMPUTE_BUCKETS
        )
        return RankResult(
            rank=me,
            state=state[me],
            wire=outcome.wire,
            degraded=outcome.degraded,
            schedule_aborted=aborted_schedule,
            seconds=seconds,
            compute_seconds=compute_s,
            stats=self.stats,
        )

    # ------------------------------------------------------------------ #
    def _round(self, rnd: Round, state) -> None:
        me = self.rank
        outcome = self.outcome
        flows = rnd.concurrency if rnd.concurrency > 0 else None
        scale = rnd.link_scale
        # pack pass: snapshot every outgoing payload before any delivery
        # can mutate state (the simulator's pack pass), then ship the
        # cross-rank ones — in comm order, so per-link fault indices
        # follow schedule order exactly like the simulator's delivery loop
        packed: dict[int, tuple[tuple, int]] = {}
        for i, comm in enumerate(rnd.comms):
            if comm.src != me:
                continue
            items = self.codec.pack(me, comm.blocks, state)
            sent = sum(int(item.nbytes) for item in items)
            packed[i] = (items, sent)
            if comm.dst != me:
                self._send_comm(comm, items, sent)
        # delivery pass: everything arriving at this rank (remote receives
        # and self-deliveries alike) applies in comm order — the order the
        # simulator folds/stores in
        for i, comm in enumerate(rnd.comms):
            if comm.dst != me:
                continue
            if comm.src == me:
                items, sent = packed[i]
                self._self_deliver(comm, items, sent, flows, scale, state)
                continue
            try:
                received = self._receive_comm(comm)
            except UnrecoverableStreamError:
                if comm.degrade != "op":
                    raise
                self.sim.channel.degrade()
                outcome.degraded = True
                outcome.wire += self.codec.degrade_receive(comm, state)
                if comm.action == "stage":
                    for b in comm.blocks:
                        self.pending[(me, b)] = _DEGRADED
                continue
            self._apply(comm, received, state)
        for op in rnd.ops:
            if op.rank == me:
                self.shadow._local(op, state, self.pending)

    def _apply(self, comm, received, state) -> None:
        if comm.action == "fold":
            self.codec.fold(
                comm.dst, comm.blocks, received, state, fresh=comm.fresh
            )
        elif comm.action == "store":
            self.codec.store(comm.dst, comm.blocks, received, state)
        elif comm.action == "stage":
            for b, item in zip(comm.blocks, received):
                self.pending[(comm.dst, b)] = item
        # "account": wire accounting only

    def _self_deliver(self, comm, items, sent, flows, scale, state) -> None:
        """A src == dst comm never touches a channel: replay the simulator
        verbatim through the rank-local executor (flows, faults and all)."""
        outcome = self.outcome
        try:
            received = self.shadow._deliver(
                comm, items, sent, outcome, flows, scale
            )
        except UnrecoverableStreamError:
            if comm.degrade != "op":
                raise
            self.sim.channel.degrade()
            outcome.degraded = True
            outcome.wire += self.codec.degrade_receive(comm, state)
            if comm.action == "stage":
                for b in comm.blocks:
                    self.pending[(comm.dst, b)] = _DEGRADED
            return
        self._apply(comm, received, state)

    # ------------------------------------------------------------------ #
    # sender side
    # ------------------------------------------------------------------ #
    def _emit(self, dst: int, frame: Frame) -> None:
        self.pool.put_frame(dst, frame)
        self.stats["frames_sent"] += 1

    def _pace(self, dst: int, seconds: float) -> None:
        if self.job.time_scale > 0.0:
            self.pool.put_sleep(dst, self.job.time_scale * seconds)

    def _next_index(self, dst: int) -> int:
        # one coherent per-link table with the self-delivery path
        return self.sim.channel._next_index(self.rank, dst)

    def _send_comm(self, comm, items, sent: int) -> None:
        compressed = self.codec.compressed_wire
        transport = comm.transport
        dst = comm.dst
        if transport in ("link", "bundle"):
            if not compressed:
                self._send_plain(dst, items, sent)
            elif transport == "link":
                self._send_compressed(dst, items[0])
            else:
                # aggregate manifest first (the simulator charges the
                # scheduled transfer before the per-item validations)
                self._emit(dst, Frame(FRAME_RAW, nbytes=sent))
                for item in items:
                    self._send_compressed(dst, item)
            return
        if transport == "sender":
            if compressed:
                self._emit(dst, Frame(FRAME_RAW, nbytes=sent))
                for item in items:
                    self._send_compressed(dst, item)
            else:
                self._emit(
                    dst, Frame(FRAME_RAW, nbytes=sent, payload=dump_items(items))
                )
            return
        if transport == "flow":
            # non-self flow (no generator emits one today): raw transfer,
            # receiver applies the representative-flow multiplier
            self._emit(
                dst, Frame(FRAME_RAW, nbytes=sent, payload=dump_items(items))
            )
            return
        # "faults-only": the scheduled transfer is charged elsewhere
        if compressed:
            for item in items:
                self._send_compressed(dst, item)
        else:
            self._emit(
                dst, Frame(FRAME_RAW, nbytes=sent, payload=dump_items(items))
            )

    def _send_plain(self, dst: int, items, sent: int) -> None:
        """Reliable plain transfer: mirrors ``ResilientChannel.deliver_plain``
        attempt for attempt (same per-link fault indices, same charges)."""
        plan = self.job.plan
        blob = dump_items(items)
        if plan is None:
            self._emit(dst, Frame(FRAME_DATA, nbytes=sent, payload=blob))
            return
        policy = self.job.retry
        me = self.rank
        for attempt in range(policy.max_attempts):
            decision = plan.decide(me, dst, self._next_index(dst))
            if decision.drop:
                self._pace(dst, policy.timeout_s + policy.delay(attempt))
                continue
            if decision.corrupt or decision.truncate:
                # the transport checksum rejects it; payload intact so the
                # receiver only needs the flag (the plain path is lossless)
                self._emit(
                    dst,
                    Frame(
                        FRAME_DATA,
                        flags=FLAG_DAMAGED,
                        attempt=attempt,
                        nbytes=sent,
                        payload=blob,
                    ),
                )
                self._pace(dst, policy.delay(attempt))
                continue
            if decision.duplicate:
                # wire copy first, deliverable copy second: the receiver
                # counts the duplicate and keeps exactly one payload
                self._emit(
                    dst,
                    Frame(
                        FRAME_DATA,
                        flags=FLAG_DUPLICATE,
                        attempt=attempt,
                        nbytes=sent,
                        payload=blob,
                    ),
                )
            if attempt > 0:
                self.stats["retransmits"] += 1
            self._emit(
                dst,
                Frame(FRAME_DATA, attempt=attempt, nbytes=sent, payload=blob),
            )
            return
        # reliable floor: the transport escalates and delivers anyway
        self.stats["forced_deliveries"] += 1
        self._pace(dst, policy.timeout_s)
        self._emit(
            dst,
            Frame(
                FRAME_FORCED,
                attempt=policy.max_attempts,
                nbytes=sent,
                payload=blob,
            ),
        )

    def _send_compressed(self, dst: int, stream) -> None:
        """Validated compressed transfer: mirrors ``deliver_compressed``.

        Injected corruption damages the serialised bytes **for real**; the
        receiver's checksum validation does the rejecting.  After
        ``max_attempts`` a ``FAIL`` frame tells the receiver to raise
        :class:`UnrecoverableStreamError`.
        """
        plan = self.job.plan
        blob = stream.to_bytes()
        nbytes = int(stream.nbytes)
        base = Frame(
            FRAME_DATA, flags=FLAG_COMPRESSED, nbytes=nbytes, payload=blob
        )
        if plan is None:
            self._emit(dst, base)
            return
        policy = self.job.retry
        me = self.rank
        for attempt in range(policy.max_attempts):
            index = self._next_index(dst)
            decision = plan.decide(me, dst, index)
            if decision.drop:
                self._pace(dst, policy.timeout_s + policy.delay(attempt))
                continue
            if decision.corrupt or decision.truncate:
                damaged = plan.corrupt_stream(
                    blob, me, dst, index, truncate=decision.truncate
                )
                if damaged != blob:
                    self._emit(
                        dst,
                        Frame(
                            FRAME_DATA,
                            flags=FLAG_COMPRESSED | FLAG_DAMAGED,
                            attempt=attempt,
                            nbytes=nbytes,
                            payload=damaged,
                        ),
                    )
                    self._pace(dst, policy.delay(attempt))
                    continue
                # degenerate empty-stream case: damage was a no-op and the
                # simulator accepts the bit-identical bytes — deliver
            if decision.duplicate:
                self._emit(
                    dst,
                    Frame(
                        FRAME_DATA,
                        flags=FLAG_COMPRESSED | FLAG_DUPLICATE,
                        attempt=attempt,
                        nbytes=nbytes,
                        payload=blob,
                    ),
                )
            if attempt > 0:
                self.stats["retransmits"] += 1
            self._emit(
                dst,
                Frame(
                    FRAME_DATA,
                    flags=FLAG_COMPRESSED,
                    attempt=attempt,
                    nbytes=nbytes,
                    payload=blob,
                ),
            )
            return
        self.stats["failed_streams"] += 1
        self._emit(dst, Frame(FRAME_FAIL, attempt=policy.max_attempts))

    # ------------------------------------------------------------------ #
    # receiver side
    # ------------------------------------------------------------------ #
    def _recv_frame(self, src: int) -> Frame:
        frame = recv_frame(
            self.recv_channels[src],
            time.monotonic() + self.job.recv_deadline_s,
            self.poll_control,
        )
        self.stats["frames_received"] += 1
        return frame

    def _receive_comm(self, comm):
        """Receive one comm's payload, accounting wire bytes exactly as the
        simulator's :meth:`ScheduleExecutor._deliver` would."""
        outcome = self.outcome
        compressed = self.codec.compressed_wire
        transport = comm.transport
        if transport in ("link", "bundle"):
            if not compressed:
                items, charged = self._recv_plain(comm)
                outcome.wire += charged
                return items
            if transport == "link":
                stream, charged = self._recv_compressed(comm, charge_base=True)
                outcome.wire += charged
                return (stream,)
            manifest = self._recv_frame(comm.src)
            self._expect_raw(manifest, comm)
            outcome.wire += manifest.nbytes
            received = []
            for _ in comm.blocks:
                stream, charged = self._recv_compressed(
                    comm, charge_base=False
                )
                outcome.wire += charged
                received.append(stream)
            return tuple(received)
        if transport == "sender":
            if compressed:
                manifest = self._recv_frame(comm.src)
                self._expect_raw(manifest, comm)
                outcome.wire += manifest.nbytes
                received = []
                for _ in comm.blocks:
                    stream, charged = self._recv_compressed(
                        comm, charge_base=False
                    )
                    outcome.wire += charged
                    received.append(stream)
                return tuple(received)
            frame = self._recv_frame(comm.src)
            self._expect_raw(frame, comm)
            outcome.wire += frame.nbytes
            return load_items(frame.payload)
        if transport == "flow":
            frame = self._recv_frame(comm.src)
            self._expect_raw(frame, comm)
            outcome.wire += comm.wire_count * frame.nbytes
            return load_items(frame.payload)
        # "faults-only"
        if compressed:
            received = []
            for _ in comm.blocks:
                stream, charged = self._recv_compressed(comm, charge_base=False)
                outcome.wire += charged
                received.append(stream)
            return tuple(received)
        frame = self._recv_frame(comm.src)
        self._expect_raw(frame, comm)
        return load_items(frame.payload)

    @staticmethod
    def _expect_raw(frame: Frame, comm) -> None:
        if frame.kind != FRAME_RAW:
            raise RuntimeError(
                f"channel desync on {comm.src}→{comm.dst}: expected a raw "
                f"transfer, got frame kind {frame.kind}"
            )

    def _recv_plain(self, comm) -> tuple[tuple, int]:
        """Counterpart of :meth:`_send_plain`: every frame of the reliable
        plain path is charged, duplicates and damage included."""
        charged = 0
        while True:
            frame = self._recv_frame(comm.src)
            if frame.kind not in (FRAME_DATA, FRAME_FORCED):
                raise RuntimeError(
                    f"channel desync on {comm.src}→{comm.dst}: unexpected "
                    f"frame kind {frame.kind} on the plain path"
                )
            charged += frame.nbytes
            if frame.flags & FLAG_DUPLICATE:
                self.stats["duplicates_discarded"] += 1
                continue
            if frame.flags & FLAG_DAMAGED:
                self.stats["damaged_rejected"] += 1
                continue
            return load_items(frame.payload), charged

    def _recv_compressed(self, comm, charge_base: bool) -> tuple[Any, int]:
        """Counterpart of :meth:`_send_compressed`: frames are charged under
        the simulator's rule (base charge only when ``charge_base`` or on a
        retransmission; duplicates always), and every payload is validated
        through the wire format's checksummed parser before acceptance."""
        charged = 0
        while True:
            frame = self._recv_frame(comm.src)
            if frame.kind == FRAME_FAIL:
                raise UnrecoverableStreamError(
                    comm.src, comm.dst, self.job.retry.max_attempts
                )
            if frame.kind != FRAME_DATA or not frame.flags & FLAG_COMPRESSED:
                raise RuntimeError(
                    f"channel desync on {comm.src}→{comm.dst}: unexpected "
                    f"frame on the compressed path"
                )
            if frame.flags & FLAG_DUPLICATE or charge_base or frame.attempt > 0:
                charged += frame.nbytes
            if frame.flags & FLAG_DUPLICATE:
                self.stats["duplicates_discarded"] += 1
                continue
            intact = True
            try:
                stream = from_bytes(frame.payload)
            except (ValueError, OverflowError):
                intact = False
            # a parseable-but-flagged frame would mean a checksum collision
            # on damaged bytes; reject it like the simulator (which accepts
            # nothing but bit-identical streams)
            if not intact or frame.flags & FLAG_DAMAGED:
                self.stats["damaged_rejected"] += 1
                continue
            return stream, charged


def execute_rank(
    rank: int,
    n_ranks: int,
    send_channels: dict[int, Any],
    recv_channels: dict[int, Any],
    job: RankJob,
    poll_control,
) -> RankResult:
    """Worker entry point: run one rank's share of one schedule."""
    return _RankRuntime(
        rank, n_ranks, send_channels, recv_channels, job, poll_control
    ).execute()


# --------------------------------------------------------------------- #
# parent-side facade
# --------------------------------------------------------------------- #
class MPExecutor:
    """Drop-in multi-process counterpart of :class:`ScheduleExecutor`.

    ``run`` takes the same ``(schedule, state)`` pair and returns an
    :class:`~repro.runtime.mp_cluster.MPRun` whose ``state`` / ``wire`` /
    ``degraded`` triple matches the simulator bit for bit; the extra
    fields carry the measured wall-clock numbers.
    """

    def __init__(
        self,
        cluster: MPCluster,
        spec: CodecSpec,
        plan: FaultPlan | None = None,
        retry: RetryPolicy | None = None,
    ) -> None:
        self.cluster = cluster
        self.spec = spec
        self.plan = plan
        self.retry = retry

    def run(self, schedule: Schedule, state: list):
        run = self.cluster.run_schedule(
            schedule, self.spec, state, plan=self.plan, retry=self.retry
        )
        # keep the simulator's in-place contract: the caller's state list
        # reflects the run (slices a degraded run aborted stay untouched)
        for rank, result_slice in enumerate(run.state):
            if result_slice is None or state[rank] is result_slice:
                continue
            state[rank].clear()
            state[rank].update(result_slice)
            run.state[rank] = state[rank]
        return run
