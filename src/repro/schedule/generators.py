"""Pure schedule generators: topology in, :class:`Schedule` out.

Each generator is a closed-form description of one communication pattern
— no cluster, no payloads, no kernels.  :class:`~repro.runtime.topology.
Ring` supplies the ring index arithmetic; the Rabenseifner and binomial
trees carry their own.  Generators are cached (schedules are immutable
and discipline-agnostic), so the cost model's dry runs and the functional
executor literally share the same objects.

Block-id conventions
--------------------
* ring / Rabenseifner: integer block index ``0 … n−1``;
* chunk-pipelined ring: ``(block, chunk)`` pairs;
* flat gather: whatever ids the caller's state uses (``block_of``);
* direct rooted reduce: ``("vec", rank)`` whole vectors plus ``"fused"``
  for the folded result;
* broadcast: the single id ``"data"``.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Callable, Hashable

from ..runtime.fabrics import DragonflyNetwork
from ..runtime.network import NetworkModel
from ..runtime.nodemap import NodeMap
from ..runtime.topology import Ring
from .ir import CommOp, LocalOp, Phase, Round, Schedule

__all__ = [
    "ring_reduce_scatter",
    "ring_allgather",
    "pipelined_ring_reduce_scatter",
    "rabenseifner_allreduce_schedule",
    "rabenseifner_ranges",
    "flat_gather",
    "direct_reduce",
    "batched_fused_reduce",
    "binomial_bcast",
    "hierarchical_allreduce_schedule",
    "select_inter_family",
    "INTER_FAMILIES",
]


# --------------------------------------------------------------------- #
# ring
# --------------------------------------------------------------------- #
@lru_cache(maxsize=None)
def ring_reduce_scatter(n: int, finalize: bool = True) -> Schedule:
    """Ring reduce-scatter (Thakur et al. / Patarasuk & Yuan, Figure 5).

    Round ``j``: rank ``i`` sends its partial of block ``(i−j) mod n`` to
    its successor and folds the incoming partial into block
    ``(i−j−1) mod n``; after ``n−1`` rounds rank ``i`` owns block
    ``(i+1) mod n`` fully reduced.  ``finalize=False`` drops the decode
    phase — the fused hand-off the hZCCL allreduce exploits.
    """
    ring = Ring(n)
    setup = Round(
        kind="compute",
        ops=tuple(
            LocalOp(i, "prepare", (b,)) for i in range(n) for b in range(n)
        ),
    )
    exchange = tuple(
        Round(
            kind="exchange",
            comms=tuple(
                CommOp(
                    src=ring.predecessor(i),
                    dst=i,
                    blocks=(ring.recv_block(i, j),),
                    action="fold",
                )
                for i in range(n)
            ),
        )
        for j in range(n - 1)
    )
    phases = [
        Phase("setup", (setup,)),
        Phase("exchange", exchange),
    ]
    if finalize:
        phases.append(
            Phase(
                "finalize",
                (
                    Round(
                        kind="compute",
                        ops=tuple(
                            LocalOp(i, "finalize", (ring.owned_block(i),))
                            for i in range(n)
                        ),
                    ),
                ),
            )
        )
    return Schedule(
        name=f"ring-reduce-scatter(n={n})", n_ranks=n, phases=tuple(phases)
    ).validate()


def _chunk_ids(block: int, chunks: int) -> tuple[Hashable, ...]:
    if chunks == 1:
        return (block,)
    return tuple((block, c) for c in range(chunks))


@lru_cache(maxsize=None)
def ring_allgather(n: int, chunks: int = 1) -> Schedule:
    """Ring allgather: ``n−1`` forwarding rounds, then one decode pass.

    With ``chunks > 1`` every block travels as a bundle of chunk ids
    ``(block, c)`` — the allgather stage of the chunk-pipelined allreduce.
    """
    ring = Ring(n)
    setup = Round(
        kind="compute",
        ops=tuple(
            LocalOp(i, "prepare", _chunk_ids(ring.owned_block(i), chunks))
            for i in range(n)
        ),
    )
    forward = tuple(
        Round(
            kind="exchange",
            comms=tuple(
                CommOp(
                    src=ring.predecessor(i),
                    dst=i,
                    blocks=_chunk_ids(
                        ring.allgather_send_block(ring.predecessor(i), j),
                        chunks,
                    ),
                    action="store",
                    transport="link" if chunks == 1 else "bundle",
                )
                for i in range(n)
            ),
        )
        for j in range(n - 1)
    )
    decode = Round(
        kind="compute",
        ops=tuple(
            op
            for i in range(n)
            for op in (
                LocalOp(
                    i,
                    "finalize",
                    tuple(
                        cid
                        for k in range(n)
                        if k != ring.owned_block(i)
                        for cid in _chunk_ids(k, chunks)
                    ),
                ),
                LocalOp(
                    i,
                    "finalize_local",
                    _chunk_ids(ring.owned_block(i), chunks),
                ),
            )
        ),
    )
    weights = (
        {}
        if chunks == 1
        else {
            (b, c): 1.0 / (n * chunks) for b in range(n) for c in range(chunks)
        }
    )
    return Schedule(
        name=f"ring-allgather(n={n},chunks={chunks})",
        n_ranks=n,
        phases=(
            Phase("setup", (setup,)),
            Phase("forward", forward),
            Phase("finalize", (decode,)),
        ),
        weights=weights,
    ).validate()


@lru_cache(maxsize=None)
def pipelined_ring_reduce_scatter(
    n: int, n_chunks: int = 2, finalize: bool = True
) -> Schedule:
    """Chunk-pipelined ring reduce-scatter — the schedule the seams buy.

    Every ring round ``j`` is split into ``n_chunks`` sub-rounds over
    chunk ids ``(block, c)``.  Sub-round ``s`` puts chunk ``s`` on the
    wire while the receiver folds the chunk *staged in the previous
    sub-round* — so wire time and homomorphic fold time overlap
    (``Round.overlap=True``), which no monolithic send-then-fold family
    could express.  The lag-one fold of the last chunk of round ``j``
    rides sub-round 0 of round ``j+1``; one trailing drain round folds
    the final chunk.

    Invocation accounting: the chunked compressor launches once per
    block (later chunk encodes are continuations) and the HPR worker
    team forks once per ring round (the first chunk folded per round is
    fresh, the rest are continuations), so pipelining adds *no*
    per-invocation overhead over the monolithic schedule.
    """
    if n_chunks < 2:
        # with one chunk the lag-one fold of round j's block would land
        # after round j+1 already packed that block — no pipeline exists
        raise ValueError("pipelining needs n_chunks >= 2")
    ring = Ring(n)
    setup = Round(
        kind="compute",
        ops=tuple(
            LocalOp(i, "prepare", ((b, c),), fresh=(c == 0))
            for i in range(n)
            for b in range(n)
            for c in range(n_chunks)
        ),
    )

    def fold_ops(j: int, c: int) -> tuple[LocalOp, ...]:
        return tuple(
            LocalOp(
                i,
                "fold",
                ((ring.recv_block(i, j), c),),
                fresh=(c == 0),
            )
            for i in range(n)
        )

    exchange: list[Round] = []
    for j in range(n - 1):
        for s in range(n_chunks):
            comms = tuple(
                CommOp(
                    src=ring.predecessor(i),
                    dst=i,
                    blocks=((ring.recv_block(i, j), s),),
                    action="stage",
                )
                for i in range(n)
            )
            if s > 0:
                ops = fold_ops(j, s - 1)
            elif j > 0:
                ops = fold_ops(j - 1, n_chunks - 1)
            else:
                ops = ()
            exchange.append(
                Round(kind="exchange", comms=comms, ops=ops, overlap=True)
            )
    drain = Round(kind="compute", ops=fold_ops(n - 2, n_chunks - 1))
    phases = [
        Phase("setup", (setup,)),
        Phase("exchange", tuple(exchange) + (drain,)),
    ]
    if finalize:
        phases.append(
            Phase(
                "finalize",
                (
                    Round(
                        kind="compute",
                        ops=tuple(
                            LocalOp(
                                i,
                                "finalize",
                                _chunk_ids(ring.owned_block(i), n_chunks),
                            )
                            for i in range(n)
                        ),
                    ),
                ),
            )
        )
    weights = {
        (b, c): 1.0 / (n * n_chunks)
        for b in range(n)
        for c in range(n_chunks)
    }
    return Schedule(
        name=f"pipelined-ring-reduce-scatter(n={n},chunks={n_chunks})",
        n_ranks=n,
        phases=tuple(phases),
        weights=weights,
    ).validate()


# --------------------------------------------------------------------- #
# Rabenseifner (recursive halving + doubling)
# --------------------------------------------------------------------- #
def _check_power_of_two(n: int) -> int:
    if n < 2 or n & (n - 1):
        raise ValueError(
            f"Rabenseifner's algorithm needs a power-of-two rank count, got {n}"
        )
    return n.bit_length() - 1


def rabenseifner_ranges(n: int, rank: int, levels: int):
    """Yield ``(round, partner, keep_range, send_range)`` per halving round.

    At round ``k`` the rank keeps the half of its current block range
    containing its own final segment and sends the other half to its
    partner ``rank XOR n/2^(k+1)``.
    """
    lo, hi = 0, n
    for k in range(levels):
        mid = (lo + hi) // 2
        partner = rank ^ (n >> (k + 1))
        if rank < partner:
            keep, send = (lo, mid), (mid, hi)
        else:
            keep, send = (mid, hi), (lo, mid)
        yield k, partner, keep, send
        lo, hi = keep


@lru_cache(maxsize=None)
def rabenseifner_allreduce_schedule(n: int) -> Schedule:
    """Rabenseifner allreduce: halving reduce-scatter + doubling allgather.

    ``2·log2 n`` rounds; every transfer is a bundled message over a block
    range (``transport="bundle"``), matching MPICH's vector halving.
    """
    levels = _check_power_of_two(n)
    setup = Round(
        kind="compute",
        ops=tuple(
            LocalOp(i, "prepare", (b,)) for i in range(n) for b in range(n)
        ),
    )
    schedules = [list(rabenseifner_ranges(n, i, levels)) for i in range(n)]

    halving = tuple(
        Round(
            kind="exchange",
            comms=tuple(
                CommOp(
                    src=schedules[i][k][1],
                    dst=i,
                    blocks=tuple(
                        range(schedules[i][k][2][0], schedules[i][k][2][1])
                    ),
                    action="fold",
                    transport="bundle",
                )
                for i in range(n)
            ),
        )
        for k in range(levels)
    )

    # doubling: statically evolve each rank's held-segment set (insertion
    # order preserved — it matches the legacy dict.update order)
    holdings: list[list[int]] = [[i] for i in range(n)]
    doubling: list[Round] = []
    for k in range(levels - 1, -1, -1):
        snapshot = [list(h) for h in holdings]
        comms = []
        for i in range(n):
            partner = i ^ (n >> (k + 1))
            comms.append(
                CommOp(
                    src=partner,
                    dst=i,
                    blocks=tuple(snapshot[partner]),
                    action="store",
                    transport="bundle",
                )
            )
            holdings[i] = snapshot[i] + [
                b for b in snapshot[partner] if b not in snapshot[i]
            ]
        doubling.append(Round(kind="exchange", comms=tuple(comms)))

    decode = Round(
        kind="compute",
        ops=tuple(
            LocalOp(i, "finalize", tuple(range(n))) for i in range(n)
        ),
    )
    return Schedule(
        name=f"rabenseifner-allreduce(n={n})",
        n_ranks=n,
        phases=(
            Phase("setup", (setup,)),
            Phase("halving", halving),
            Phase("doubling", tuple(doubling)),
            Phase("finalize", (decode,)),
        ),
    ).validate()


# --------------------------------------------------------------------- #
# rooted trees
# --------------------------------------------------------------------- #
def flat_gather(
    n: int,
    root: int,
    block_of: Callable[[int], Hashable] | None = None,
    finalize: bool = False,
) -> Schedule:
    """Flat gather of one block per rank to the root (concurrent sends).

    The incast is charged to each *sender* (``transport="sender"``); the
    root's optional ``finalize`` decode covers every gathered block in
    one batched invocation.
    """
    ring = Ring(n)
    ids = block_of if block_of is not None else ring.owned_block
    gather = Round(
        kind="incast",
        comms=tuple(
            CommOp(src=i, dst=root, blocks=(ids(i),), action="store",
                   transport="sender")
            for i in range(n)
            if i != root
        ),
    )
    phases = [Phase("gather", (gather,))]
    if finalize:
        phases.append(
            Phase(
                "finalize",
                (
                    Round(
                        kind="compute",
                        ops=(
                            LocalOp(
                                root,
                                "finalize",
                                tuple(sorted(ids(i) for i in range(n))),
                            ),
                        ),
                    ),
                ),
            )
        )
    return Schedule(
        name=f"flat-gather(n={n},root={root})",
        n_ranks=n,
        phases=tuple(phases),
    ).validate()


@lru_cache(maxsize=None)
def direct_reduce(n: int, root: int) -> Schedule:
    """Direct rooted reduce: whole-vector gather + one fused k-way fold.

    Every rank prepares its full vector (``("vec", i)``, weight 1), the
    ``n−1`` streams converge on the root, and the root folds all ``n``
    operands with a single fused reduction before one decode — the
    ``N·IFE + FE`` schedule of the fused engine.
    """
    vec = tuple(("vec", i) for i in range(n))
    setup = Round(
        kind="compute",
        ops=tuple(LocalOp(i, "prepare", (vec[i],)) for i in range(n)),
    )
    gather = Round(
        kind="incast",
        comms=tuple(
            CommOp(src=i, dst=root, blocks=(vec[i],), action="store",
                   transport="sender")
            for i in range(n)
            if i != root
        ),
    )
    fold = Round(
        kind="compute",
        ops=(
            LocalOp(root, "fold_fused", vec, fanin=n),
            LocalOp(root, "finalize", ("fused",)),
        ),
    )
    weights = {v: 1.0 for v in vec}
    weights["fused"] = 1.0
    return Schedule(
        name=f"direct-reduce(n={n},root={root})",
        n_ranks=n,
        phases=(
            Phase("setup", (setup,)),
            Phase("gather", (gather,)),
            Phase("fused-fold", (fold,)),
        ),
        weights=weights,
    ).validate()


@lru_cache(maxsize=None)
def batched_fused_reduce(n: int, sessions: int, root: int = 0) -> Schedule:
    """``sessions`` independent rooted reduces coalesced into one schedule.

    The aggregation service's batching window lands here: each rank
    prepares one vector per session (``("v", s, i)``, weight
    ``1/sessions``), all of a rank's session vectors ride one incast
    stream to the root, and the root runs one fused k-way fold *per
    session* — each landing in its own ``("f", s)`` key via
    ``LocalOp.out`` — before a single batched decode.  Amortises the
    per-message α and the per-call setup across the whole batch while
    keeping every session's arithmetic identical to a standalone
    :func:`direct_reduce` (the fused fold is exact in the integer
    domain, so coalescing cannot change decoded values).
    """
    if sessions < 1:
        raise ValueError(f"sessions must be >= 1, got {sessions}")
    vec = {
        (s, i): ("v", s, i)
        for s in range(sessions)
        for i in range(n)
    }
    out = tuple(("f", s) for s in range(sessions))
    setup = Round(
        kind="compute",
        ops=tuple(
            LocalOp(i, "prepare",
                    tuple(vec[s, i] for s in range(sessions)))
            for i in range(n)
        ),
    )
    gather = Round(
        kind="incast",
        comms=tuple(
            CommOp(src=i, dst=root,
                   blocks=tuple(vec[s, i] for s in range(sessions)),
                   action="store", transport="sender")
            for i in range(n)
            if i != root
        ),
    )
    fold = Round(
        kind="compute",
        ops=tuple(
            LocalOp(root, "fold_fused",
                    tuple(vec[s, i] for i in range(n)),
                    fanin=n, out=out[s])
            for s in range(sessions)
        )
        + (LocalOp(root, "finalize", out),),
    )
    weights: dict[Hashable, float] = {v: 1.0 / sessions for v in vec.values()}
    weights.update({o: 1.0 / sessions for o in out})
    return Schedule(
        name=f"batched-fused-reduce(n={n},k={sessions},root={root})",
        n_ranks=n,
        phases=(
            Phase("setup", (setup,)),
            Phase("gather", (gather,)),
            Phase("fused-fold", (fold,)),
        ),
        weights=weights,
    ).validate()


@lru_cache(maxsize=None)
def binomial_bcast(n: int, root: int, deliver: bool = False,
                   finalize: bool = False) -> Schedule:
    """Binomial-tree broadcast of the single block ``"data"``.

    Dissemination rounds use representative-flow accounting (all of a
    round's sends are concurrent; ``wire_count`` copies hit the wire).
    With ``deliver=True`` a trailing per-rank validated delivery round is
    appended (the compressed broadcast's decode step, which degrades
    *per rank* — the root re-sends that rank's share plain).
    """
    setup = Round(kind="compute", ops=(LocalOp(root, "prepare", ("data",)),))
    tree: list[Round] = []
    holders = 1
    while holders < n:
        senders = min(holders, n - holders)
        tree.append(
            Round(
                kind="exchange",
                comms=(
                    CommOp(
                        src=root,
                        dst=root,
                        blocks=("data",),
                        action="account",
                        transport="flow",
                        wire_count=senders,
                    ),
                ),
            )
        )
        holders += senders
    phases = [Phase("setup", (setup,)), Phase("tree", tuple(tree))]
    if finalize:
        # cost-model pricing variant only: the executed compressed bcast
        # decodes on the delivery round's store (deliver=True), which the
        # dry-run profiler cannot charge — this explicit per-rank decode
        # round prices the same work (all decodes run in parallel).
        phases.append(
            Phase(
                "decode",
                (
                    Round(
                        kind="compute",
                        ops=tuple(
                            LocalOp(i, "finalize", ("data",))
                            for i in range(n)
                            if i != root
                        ),
                    ),
                ),
            )
        )
    if deliver:
        phases.append(
            Phase(
                "finalize",
                (
                    Round(
                        kind="compute",
                        comms=tuple(
                            CommOp(
                                src=root,
                                dst=i,
                                blocks=("data",),
                                action="store",
                                transport="faults-only",
                                degrade="op",
                            )
                            for i in range(n)
                            if i != root
                        ),
                    ),
                ),
            )
        )
    return Schedule(
        name=f"binomial-bcast(n={n},root={root})",
        n_ranks=n,
        phases=tuple(phases),
        weights={"data": 1.0},
    ).validate()


# --------------------------------------------------------------------- #
# two-level hierarchical allreduce
# --------------------------------------------------------------------- #
#: inter-node algorithm families ``hierarchical_allreduce_schedule`` knows.
INTER_FAMILIES = ("ring", "rabenseifner")


def _binomial_steps(size: int) -> list[int]:
    """The doubling step sizes of a ``size``-leaf binomial tree (1,2,4,…)."""
    steps, step = [], 1
    while step < size:
        steps.append(step)
        step *= 2
    return steps


def _intra_rounds(
    nodemap: NodeMap, blocks: tuple[int, ...], direction: str
) -> tuple[Round, ...]:
    """Per-node binomial rounds: ``reduce`` onto each leader or ``bcast``
    from it.

    Every node runs its own tree concurrently inside one Round; the
    round's ``concurrency`` is the *largest per-node* send count, because
    flows on different nodes ride disjoint local fabrics and never
    contend with each other — the whole point of the congestion-law fix.
    """
    steps = _binomial_steps(nodemap.max_node_size)
    rounds = []
    for step in steps if direction == "reduce" else reversed(steps):
        comms: list[CommOp] = []
        busiest = 0
        for node in range(nodemap.n_nodes):
            members = nodemap.members(node)
            sends = 0
            for j in range(0, len(members) - step, 2 * step):
                lo, hi = members[j], members[j + step]
                comms.append(
                    CommOp(
                        src=hi if direction == "reduce" else lo,
                        dst=lo if direction == "reduce" else hi,
                        blocks=blocks,
                        action="fold" if direction == "reduce" else "store",
                        transport="bundle",
                    )
                )
                sends += 1
            busiest = max(busiest, sends)
        rounds.append(
            Round(
                kind="exchange",
                comms=tuple(comms),
                concurrency=busiest,
                link_scale=nodemap.intra_scale,
            )
        )
    return tuple(rounds)


def _inter_ring_rounds(leaders: tuple[int, ...]) -> tuple[Round, ...]:
    """Ring reduce-scatter + allgather over one leader rank per node."""
    k = len(leaders)
    ring = Ring(k)
    rounds = []
    for j in range(k - 1):
        rounds.append(
            Round(
                kind="exchange",
                comms=tuple(
                    CommOp(
                        src=leaders[ring.predecessor(i)],
                        dst=leaders[i],
                        blocks=(ring.recv_block(i, j),),
                        action="fold",
                    )
                    for i in range(k)
                ),
                concurrency=k,
            )
        )
    for j in range(k - 1):
        rounds.append(
            Round(
                kind="exchange",
                comms=tuple(
                    CommOp(
                        src=leaders[ring.predecessor(i)],
                        dst=leaders[i],
                        blocks=(
                            ring.allgather_send_block(ring.predecessor(i), j),
                        ),
                        action="store",
                    )
                    for i in range(k)
                ),
                concurrency=k,
            )
        )
    return tuple(rounds)


def _inter_rabenseifner_rounds(leaders: tuple[int, ...]) -> tuple[Round, ...]:
    """Rabenseifner halving/doubling over one leader rank per node."""
    k = len(leaders)
    levels = _check_power_of_two(k)
    plans = [list(rabenseifner_ranges(k, i, levels)) for i in range(k)]
    rounds = []
    for r in range(levels):
        rounds.append(
            Round(
                kind="exchange",
                comms=tuple(
                    CommOp(
                        src=leaders[plans[i][r][1]],
                        dst=leaders[i],
                        blocks=tuple(range(*plans[i][r][2])),
                        action="fold",
                        transport="bundle",
                    )
                    for i in range(k)
                ),
                concurrency=k,
            )
        )
    holdings: list[list[int]] = [[i] for i in range(k)]
    for r in range(levels - 1, -1, -1):
        snapshot = [list(h) for h in holdings]
        comms = []
        for i in range(k):
            partner = i ^ (k >> (r + 1))
            comms.append(
                CommOp(
                    src=leaders[partner],
                    dst=leaders[i],
                    blocks=tuple(snapshot[partner]),
                    action="store",
                    transport="bundle",
                )
            )
            holdings[i] = snapshot[i] + [
                b for b in snapshot[partner] if b not in snapshot[i]
            ]
        rounds.append(
            Round(kind="exchange", comms=tuple(comms), concurrency=k)
        )
    return tuple(rounds)


@lru_cache(maxsize=None)
def hierarchical_allreduce_schedule(
    nodemap: NodeMap, inter: str = "ring"
) -> Schedule:
    """Two-level allreduce over a :class:`~repro.runtime.nodemap.NodeMap`.

    Blocks are the integers ``0 … n_nodes − 1`` (one block per node,
    weight ``1/n_nodes`` each).  Four stages:

    1. *intra-reduce* — per-node binomial tree folds every rank's full
       vector onto its leader over the fast local links
       (``link_scale = intra_scale``, congestion = per-node sends);
    2. *inter* — the chosen family (``ring`` reduce-scatter + allgather,
       or ``rabenseifner`` halving/doubling, power-of-two node counts
       only) over the ``n_nodes`` leader ranks, charged ``n_nodes``-way
       congestion — the fabric sees one flow per node, not per rank;
    3. *intra-bcast* — the reduce tree reversed, leaders pushing all
       fully-reduced blocks back down;
    4. one batched *finalize* per rank.

    The schedule is codec-agnostic like every other generator: under the
    :class:`~repro.schedule.codecs.HomomorphicCodec` state stays
    compressed from the setup CPR to the final batched DPR (folds are
    exact integer-domain ``reduce_fused`` calls at every level), under
    the plain codec it is a conventional hierarchical float allreduce.

    Degenerate shapes compose away cleanly: one rank per node leaves no
    intra rounds (the schedule *is* the inter family); a single node
    leaves no inter rounds (a pure intra-node reduce + bcast).
    """
    if inter not in INTER_FAMILIES:
        raise ValueError(
            f"unknown inter-node family {inter!r} (choose from "
            f"{INTER_FAMILIES})"
        )
    n = nodemap.n_ranks
    k = nodemap.n_nodes
    blocks = tuple(range(k))
    setup = Round(
        kind="compute",
        ops=tuple(
            LocalOp(i, "prepare", (b,)) for i in range(n) for b in blocks
        ),
    )
    finalize = Round(
        kind="compute",
        ops=tuple(LocalOp(i, "finalize", blocks) for i in range(n)),
    )
    phases = [Phase("setup", (setup,))]
    intra_reduce = _intra_rounds(nodemap, blocks, "reduce")
    if intra_reduce:
        phases.append(Phase("intra-reduce", intra_reduce))
    if k > 1:
        make_inter = (
            _inter_ring_rounds if inter == "ring"
            else _inter_rabenseifner_rounds
        )
        phases.append(Phase(f"inter-{inter}", make_inter(nodemap.leaders())))
    intra_bcast = _intra_rounds(nodemap, blocks, "bcast")
    if intra_bcast:
        phases.append(Phase("intra-bcast", intra_bcast))
    phases.append(Phase("finalize", (finalize,)))
    return Schedule(
        name=(
            f"hierarchical-allreduce(n={n},nodes={k},inter={inter})"
        ),
        n_ranks=n,
        phases=tuple(phases),
        weights={b: 1.0 / k for b in blocks},
    ).validate()


def select_inter_family(network: NetworkModel, nodemap: NodeMap) -> str:
    """Pick the inter-node family from the fabric's congestion structure.

    * **Dragonfly** — past the saturation cliff *every* concurrent flow
      pays the cliff factor, so the winning move is the fewest rounds:
      Rabenseifner's ``2·log2(k)`` beats the ring's ``2·(k−1)`` whenever
      the node count allows it (power of two; otherwise fall back to the
      ring rather than padding).
    * **Torus / fat-tree / base** — the ring: its neighbour exchanges map
      onto torus links, its per-round messages stay at ``1/k`` of the
      vector (Rabenseifner's first halving round moves half the vector,
      which the polynomial torus law punishes), and on the fat-tree's
      gentle log law the bandwidth-optimal ring is the paper's own
      choice.
    """
    k = nodemap.n_nodes
    if isinstance(network, DragonflyNetwork) and k >= 2 and not (k & (k - 1)):
        return "rabenseifner"
    return "ring"
