"""repro — a from-scratch reproduction of *hZCCL: Accelerating Collective
Communication with Co-Designed Homomorphic Compression* (SC 2024).

Quick tour
----------
>>> import numpy as np
>>> from repro import FZLight, HZDynamic
>>> comp = FZLight()
>>> x = np.sin(np.linspace(0, 30, 100_000)).astype(np.float32)
>>> y = np.cos(np.linspace(0, 30, 100_000)).astype(np.float32)
>>> cx, cy = comp.compress(x, abs_eb=1e-4), comp.compress(y, abs_eb=1e-4)
>>> csum = HZDynamic().add(cx, cy)        # reduction on compressed bytes
>>> err = np.abs(comp.decompress(csum) - (x + y)).max()
>>> bool(err <= 2 * 1e-4 + 1e-6)
True

Packages
--------
* :mod:`repro.compression` — fZ-light compressor + ompSZp baseline.
* :mod:`repro.homomorphic` — hZ-dynamic (and the static ablation).
* :mod:`repro.collectives` — MPI / C-Coll / hZCCL ring collectives.
* :mod:`repro.runtime` — simulated cluster (ranks, clocks, network).
* :mod:`repro.core` — facade, config, §III-C cost model.
* :mod:`repro.datasets` — synthetic Table-I datasets.
* :mod:`repro.apps` — image stacking use case.
* :mod:`repro.bench` — STREAM + harness utilities.
* :mod:`repro.service` — asyncio aggregation service (batched reduces).
"""

from .compression import CompressedField, FZLight, OmpSZp
from .core import HZCCL, CollectiveConfig, CostRates, PAPER_BROADWELL
from .homomorphic import HZDynamic, PipelineStats, StaticHomomorphic
from .runtime import NetworkModel, OMNIPATH_100G, SimCluster

__version__ = "1.0.0"

__all__ = [
    "HZCCL",
    "FZLight",
    "OmpSZp",
    "HZDynamic",
    "StaticHomomorphic",
    "PipelineStats",
    "CompressedField",
    "CollectiveConfig",
    "CostRates",
    "PAPER_BROADWELL",
    "SimCluster",
    "NetworkModel",
    "OMNIPATH_100G",
    "__version__",
]
