"""Aggregation service: multiplex concurrent reduction sessions.

Many independent training/analysis jobs ("tenants") ask the same
cluster for rooted SUM reductions at the same time.  Running each
request alone wastes exactly what hZCCL's fused k-way fold amortises:
the per-message α and the per-call setup.  :class:`AggregationService`
is the asyncio front door that closes the gap (DESIGN.md §16):

* **admission control** — a bounded pending count; a submit over the
  bound is refused *immediately* with :class:`ServiceSaturated`
  (backpressure is an error the caller handles, not a silent stall),
  and optional per-tenant in-flight quotas refuse with
  :class:`TenantQuotaExceeded`;
* **batching window** — the first session of a given shape arms a
  ``window_s`` timer; every same-shaped session arriving inside the
  window joins the batch (up to ``max_batch``, which flushes early).
  One :class:`~repro.core.pipeline.CollectiveRequest` with
  ``op="batched-reduce"`` covers the whole batch, so repeated shapes
  hit the process-wide :data:`~repro.core.pipeline.PLAN_CACHE` and the
  fused fold keeps every session **bit-identical** to a lone call;
* **observability** — ``service.*`` counters in :data:`repro.obs.METRICS`
  plus per-tenant submit counters, mirrored by :meth:`stats`;
* **graceful drain** — :meth:`drain` flushes every open window and waits
  for in-flight batches; :meth:`stop` closes admission first.  A caller
  that cancels its ``submit`` before the flush is skipped without
  disturbing the rest of its batch.

Execution happens in worker threads (``asyncio.to_thread``) so the
event loop keeps admitting and coalescing while a batch reduces.

>>> import asyncio, numpy as np
>>> from repro.service import AggregationService
>>> async def main():
...     data = [np.arange(64, dtype=np.float32) + r for r in range(4)]
...     async with AggregationService() as svc:
...         a, b = await asyncio.gather(svc.submit(data), svc.submit(data))
...     return a.batched, np.array_equal(a.output, b.output)
>>> asyncio.run(main())
(2, True)
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field

import numpy as np

from .collectives.base import validate_local_data
from .core.config import CollectiveConfig
from .core.pipeline import (
    PLAN_CACHE,
    CollectiveRequest,
    PayloadSpec,
    execute,
    plan,
)
from .obs.metrics import METRICS

__all__ = [
    "AggregationService",
    "BatchKey",
    "ServiceClosed",
    "ServiceSaturated",
    "SessionResult",
    "TenantQuotaExceeded",
]


class ServiceSaturated(RuntimeError):
    """Admission refused: the bounded pending queue is full."""


class TenantQuotaExceeded(RuntimeError):
    """Admission refused: the tenant is over its in-flight quota."""


class ServiceClosed(RuntimeError):
    """Submit after :meth:`AggregationService.stop`."""


@dataclass(frozen=True)
class BatchKey:
    """Coalescing key: sessions batch only when all four fields match.

    The key carries the full ``shape`` (not just the element count)
    because the fused schedule requires same-shaped session vectors —
    a ``(2, 32)`` and a ``(64,)`` payload must not share a batch.
    """

    n_ranks: int
    dtype: str
    shape: tuple[int, ...]
    root: int

    @classmethod
    def of(cls, arrays: list[np.ndarray], root: int) -> "BatchKey":
        return cls(
            n_ranks=len(arrays),
            dtype=str(arrays[0].dtype),
            shape=tuple(arrays[0].shape),
            root=root,
        )


@dataclass
class SessionResult:
    """One session's slice of a (possibly coalesced) reduction.

    ``bytes_on_wire`` is the *whole batch's* wire traffic — the cost the
    session shared, not a per-session attribution.
    """

    output: np.ndarray
    tenant: str
    batched: int
    bytes_on_wire: int
    degraded: bool


@dataclass
class _Session:
    tenant: str
    arrays: list[np.ndarray]
    future: asyncio.Future


@dataclass
class _Bucket:
    sessions: list[_Session] = field(default_factory=list)
    timer: asyncio.Task | None = None


class AggregationService:
    """Asyncio front door batching rooted reductions onto fused plans.

    Parameters
    ----------
    config : collective configuration for every batch (fault plans ride
        along here — chaos testing injects ``config.fault_plan`` and the
        degrade-to-plain contract covers the whole batch).
    window_s : batching window armed by the first session of a shape.
    max_batch : flush a shape's bucket early at this many sessions;
        ``1`` disables coalescing (every session runs alone).
    max_pending : bound on admitted-but-unresolved sessions across all
        tenants — the backpressure threshold.
    tenant_quota : optional per-tenant in-flight session bound.
    """

    def __init__(
        self,
        config: CollectiveConfig | None = None,
        *,
        window_s: float = 0.002,
        max_batch: int = 8,
        max_pending: int = 64,
        tenant_quota: int | None = None,
    ) -> None:
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if max_pending < 1:
            raise ValueError("max_pending must be >= 1")
        if tenant_quota is not None and tenant_quota < 1:
            raise ValueError("tenant_quota must be >= 1")
        self.config = config or CollectiveConfig()
        self.window_s = window_s
        self.max_batch = max_batch
        self.max_pending = max_pending
        self.tenant_quota = tenant_quota
        self._buckets: dict[BatchKey, _Bucket] = {}
        self._tasks: set[asyncio.Task] = set()
        self._pending = 0
        self._tenant_pending: dict[str, int] = {}
        self._closed = False
        # lifetime counters, mirrored into METRICS when enabled
        self._counts = {
            "submitted": 0,
            "rejected_backpressure": 0,
            "rejected_quota": 0,
            "batches": 0,
            "sessions_batched": 0,
            "cancelled": 0,
            "wire_bytes": 0,
        }

    # ------------------------------------------------------------------ #
    # admission + coalescing (event-loop thread only)
    # ------------------------------------------------------------------ #
    async def submit(
        self,
        local_data,
        *,
        tenant: str = "default",
        root: int = 0,
    ) -> SessionResult:
        """Admit one reduction session and await its reduced vector.

        Raises :class:`ServiceSaturated` / :class:`TenantQuotaExceeded`
        / :class:`ServiceClosed` *synchronously* at admission — a
        refused session never occupies queue space.  Cancelling the
        awaiting task withdraws the session from its batch.
        """
        if self._closed:
            raise ServiceClosed("service is stopped; no new sessions")
        arrays = validate_local_data(local_data)
        if not 0 <= root < len(arrays):
            raise IndexError(
                f"root {root} out of range for {len(arrays)} ranks"
            )
        if self._pending >= self.max_pending:
            self._count("rejected_backpressure")
            raise ServiceSaturated(
                f"{self._pending} sessions pending (bound {self.max_pending})"
            )
        held = self._tenant_pending.get(tenant, 0)
        if self.tenant_quota is not None and held >= self.tenant_quota:
            self._count("rejected_quota")
            raise TenantQuotaExceeded(
                f"tenant {tenant!r} holds {held} in-flight sessions "
                f"(quota {self.tenant_quota})"
            )

        self._pending += 1
        self._tenant_pending[tenant] = held + 1
        self._count("submitted")
        if METRICS.enabled:
            METRICS.inc(f"service.tenant.{tenant}.submitted")

        key = BatchKey.of(arrays, root)
        session = _Session(
            tenant=tenant,
            arrays=arrays,
            future=asyncio.get_running_loop().create_future(),
        )
        bucket = self._buckets.get(key)
        if bucket is None:
            bucket = self._buckets[key] = _Bucket()
            bucket.timer = asyncio.create_task(self._window(key))
        bucket.sessions.append(session)
        if len(bucket.sessions) >= self.max_batch:
            self._flush(key)
        try:
            return await session.future
        finally:
            self._release(session)

    async def _window(self, key: BatchKey) -> None:
        try:
            await asyncio.sleep(self.window_s)
        except asyncio.CancelledError:
            return
        self._flush(key)

    def _flush(self, key: BatchKey) -> None:
        """Close a shape's window and hand its batch to a worker."""
        bucket = self._buckets.pop(key, None)
        if bucket is None:
            return
        if bucket.timer is not None and bucket.timer is not asyncio.current_task():
            bucket.timer.cancel()
        task = asyncio.create_task(self._run_batch(key, bucket.sessions))
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)

    # ------------------------------------------------------------------ #
    # execution (worker thread via asyncio.to_thread)
    # ------------------------------------------------------------------ #
    async def _run_batch(
        self, key: BatchKey, sessions: list[_Session]
    ) -> None:
        live = [s for s in sessions if not s.future.cancelled()]
        dropped = len(sessions) - len(live)
        if dropped:
            self._count("cancelled", dropped)
        if not live:
            return
        request = CollectiveRequest(
            op="batched-reduce",
            n_ranks=key.n_ranks,
            payload=PayloadSpec(
                dtype=key.dtype,
                elements=int(np.prod(key.shape, dtype=np.int64)),
            ),
            root=key.root,
            sessions=len(live),
        )
        batch = [s.arrays for s in live]
        try:
            plan_ = plan(request, self.config)
            result = await asyncio.to_thread(
                execute, plan_, batch, config=self.config
            )
        except Exception as exc:  # noqa: BLE001 — fan the failure out
            for s in live:
                if not s.future.done():
                    s.future.set_exception(exc)
            return
        self._count("batches")
        self._count("sessions_batched", len(live))
        self._count("wire_bytes", result.bytes_on_wire)
        if METRICS.enabled:
            METRICS.observe("service.batch.sessions", len(live))
            if result.degraded:
                METRICS.inc("service.batches.degraded")
        for i, s in enumerate(live):
            if not s.future.done():
                s.future.set_result(
                    SessionResult(
                        output=result.outputs[i],
                        tenant=s.tenant,
                        batched=len(live),
                        bytes_on_wire=result.bytes_on_wire,
                        degraded=result.degraded,
                    )
                )

    def _release(self, session: _Session) -> None:
        self._pending -= 1
        left = self._tenant_pending.get(session.tenant, 1) - 1
        if left <= 0:
            self._tenant_pending.pop(session.tenant, None)
        else:
            self._tenant_pending[session.tenant] = left

    def _count(self, name: str, value: int = 1) -> None:
        self._counts[name] += value
        if METRICS.enabled:
            METRICS.inc(f"service.{name}", value)

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    async def drain(self) -> None:
        """Flush every open window and wait for in-flight batches."""
        while self._buckets or self._tasks:
            for key in list(self._buckets):
                self._flush(key)
            tasks = list(self._tasks)
            if tasks:
                await asyncio.gather(*tasks, return_exceptions=True)

    async def stop(self) -> None:
        """Close admission, then drain (idempotent)."""
        self._closed = True
        await self.drain()

    async def __aenter__(self) -> "AggregationService":
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.stop()

    # ------------------------------------------------------------------ #
    @property
    def pending(self) -> int:
        """Admitted-but-unresolved sessions (the backpressure measure)."""
        return self._pending

    def stats(self) -> dict:
        """Lifetime counters plus the shared plan cache's hit rate."""
        return {
            **self._counts,
            "pending": self._pending,
            "tenants": dict(self._tenant_pending),
            "plan_cache": PLAN_CACHE.stats(),
        }
