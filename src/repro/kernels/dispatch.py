"""Kernel backend registry and dispatch.

A *backend* is a named bundle of the fixed-length kernels the rest of the
stack calls through :mod:`repro.compression.encoding` and the homomorphic
engine:

``encode_blocks`` / ``encode_with_offsets`` / ``decode_blocks`` /
``decode_selected`` plus the fused entry points ``classify_encode``
(single-pass classification + encode) and ``reduce_fused`` (k-way
homomorphic accumulate).  The fused entry points are optional in a
backend module — when absent the registry installs fallbacks built from
the backend's own kernels, so every resolved :class:`KernelBackend`
carries the full surface.

Three backends ship with the repo:

* ``numpy`` — the reworked vectorised reference (always available);
* ``numba`` — fused parallel JIT kernels, available only when the
  optional ``numba`` package is installed (``pip install repro[perf]``);
* ``cupy`` — the GPU-port seam (classification on device, serialisation
  still host-side); probed for status but **never** auto-selected until
  the RawKernel port lands — opt in explicitly.

Resolution order for the active backend:

1. an explicit :func:`set_backend` / :func:`use_backend` call;
2. the ``REPRO_KERNEL_BACKEND`` environment variable;
3. ``"auto"``: ``numba`` if importable, else ``numpy``.

Backends must emit **byte-identical** streams — the homomorphic operators
and the CRC-validated wire format depend on it — so switching backends is
purely a performance decision and ranks are free to disagree on it.
"""

from __future__ import annotations

import importlib
import os
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Iterator

from ..obs.metrics import METRICS

__all__ = [
    "ENV_VAR",
    "KernelBackend",
    "register_backend",
    "available_backends",
    "backend_status",
    "get_backend",
    "current_backend_name",
    "set_backend",
    "use_backend",
]

ENV_VAR = "REPRO_KERNEL_BACKEND"

#: Module paths probed for the built-in backends.
_BUILTIN_MODULES = {
    "numba": "repro.kernels.numba_backend",
    "numpy": "repro.kernels.numpy_backend",
    "cupy": "repro.kernels.cupy_backend",
}
#: "auto" preference order.  ``cupy`` is deliberately absent: until its
#: serialisation runs on the device, host staging makes it a poor default
#: — select it explicitly (see the module docstring).
_AUTO_ORDER = ("numba", "numpy")


@dataclass(frozen=True)
class KernelBackend:
    """The callable surface every kernel backend provides.

    ``classify_encode`` and ``reduce_fused`` may be omitted when
    constructing a backend by hand (custom/test backends): the former
    defaults to ``encode_with_offsets`` (a fused kernel degrades to the
    two-pass path, never the reverse) and the latter to the reference
    k-way accumulate built from this backend's own ``decode_blocks`` and
    ``classify_encode``.
    """

    name: str
    encode_blocks: Callable = field(repr=False)
    encode_with_offsets: Callable = field(repr=False)
    decode_blocks: Callable = field(repr=False)
    decode_selected: Callable = field(repr=False)
    classify_encode: Callable | None = field(default=None, repr=False)
    reduce_fused: Callable | None = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.classify_encode is None:
            object.__setattr__(self, "classify_encode", self.encode_with_offsets)
        if self.reduce_fused is None:
            from .numpy_backend import make_reduce_fused

            object.__setattr__(
                self,
                "reduce_fused",
                make_reduce_fused(self.decode_blocks, self.classify_encode),
            )

    @classmethod
    def from_module(cls, module) -> "KernelBackend":
        return cls(
            name=module.NAME,
            encode_blocks=module.encode_blocks,
            encode_with_offsets=module.encode_with_offsets,
            decode_blocks=module.decode_blocks,
            decode_selected=module.decode_selected,
            classify_encode=getattr(module, "classify_encode", None),
            reduce_fused=getattr(module, "reduce_fused", None),
        )


_lock = threading.RLock()
_registry: dict[str, KernelBackend] = {}
_load_errors: dict[str, str] = {}
_probed = False
_override: str | None = None  # set_backend wins over env/auto
_tls = threading.local()  # use_backend() nesting is per-thread


def _probe_builtins() -> None:
    global _probed
    if _probed:
        return
    with _lock:
        if _probed:
            return
        for name, modpath in _BUILTIN_MODULES.items():
            if name in _registry:
                continue
            try:
                module = importlib.import_module(modpath)
            except ImportError as exc:
                _load_errors[name] = str(exc)
                continue
            _registry[name] = KernelBackend.from_module(module)
        _probed = True


def register_backend(backend: KernelBackend) -> None:
    """Register (or replace) a backend under ``backend.name``."""
    with _lock:
        _registry[backend.name] = backend
        _load_errors.pop(backend.name, None)
        _instrumented_cache.pop(backend.name, None)


def available_backends() -> tuple[str, ...]:
    """Names of backends that loaded successfully."""
    _probe_builtins()
    return tuple(sorted(_registry))


def backend_status() -> dict[str, str]:
    """Per-backend availability: ``"ok"`` or the import error message."""
    _probe_builtins()
    status = {name: "ok" for name in _registry}
    status.update(_load_errors)
    return dict(sorted(status.items()))


def _unknown_backend_error(name: str) -> ValueError:
    detail = _load_errors.get(name)
    hint = f" ({detail})" if detail else ""
    return ValueError(
        f"unknown kernel backend {name!r}{hint}; "
        f"available: {', '.join(available_backends()) or 'none'}"
    )


def _resolve_name(name: str | None) -> str:
    if name is None:
        name = getattr(_tls, "stack", None) and _tls.stack[-1] or None
    if name is None:
        name = _override
    if name is None:
        # strip *before* the fallback so a whitespace-only env value means
        # "unset" (auto) rather than the empty backend name
        env = os.environ.get(ENV_VAR)
        name = (env.strip() if env is not None else "") or "auto"
    name = name.strip().lower()
    if name == "auto":
        for candidate in _AUTO_ORDER:
            if candidate in _registry:
                return candidate
        raise RuntimeError("no kernel backends available")
    if name not in _registry:
        # surface a clear error naming the alternatives instead of letting
        # the registry lookup escape as a bare KeyError
        raise _unknown_backend_error(name)
    return name


def get_backend(name: str | None = None) -> KernelBackend:
    """Resolve a backend by name (``None``/``"auto"`` follow the policy).

    When the process-wide metrics registry is enabled the resolved backend
    is swapped for a cached instrumented twin that reports per-call counts
    and GB/s histograms (``kernel.<backend>.<op>.*``); the disabled path
    returns the raw backend and pays one attribute load.
    """
    _probe_builtins()
    resolved = _resolve_name(name)
    try:
        backend = _registry[resolved]
    except KeyError:  # pragma: no cover - _resolve_name validates first
        raise _unknown_backend_error(resolved) from None
    if METRICS.enabled:
        return _instrumented(backend)
    return backend


_instrumented_cache: dict[str, KernelBackend] = {}


def _instrumented(backend: KernelBackend) -> KernelBackend:
    """A twin of ``backend`` whose kernels report metrics per call.

    Throughput uses the stack-wide byte convention: logical float32 bytes
    of the blocks touched (``n_blocks × block_size × 4``), matching the
    ``repro bench-kernels`` harness, so registry histograms are directly
    comparable with committed bench baselines.
    """
    cached = _instrumented_cache.get(backend.name)
    if cached is not None:
        return cached

    def wrap(fn: Callable, op: str, nbytes_of: Callable) -> Callable:
        calls_key = f"kernel.{backend.name}.{op}.calls"
        gbps_key = f"kernel.{backend.name}.{op}.gbps"

        def call(*args, **kwargs):
            start = time.perf_counter()
            out = fn(*args, **kwargs)
            elapsed = time.perf_counter() - start
            METRICS.inc(calls_key)
            if elapsed > 0.0:
                METRICS.observe(
                    gbps_key, nbytes_of(*args, **kwargs) / elapsed / 1e9
                )
            return out

        return call

    twin = KernelBackend(
        name=backend.name,
        encode_blocks=wrap(
            backend.encode_blocks,
            "encode",
            lambda deltas, block_size, **kw: deltas.size * 4,
        ),
        encode_with_offsets=wrap(
            backend.encode_with_offsets,
            "encode",
            lambda deltas, block_size, **kw: deltas.size * 4,
        ),
        decode_blocks=wrap(
            backend.decode_blocks,
            "decode",
            lambda code_lengths, payload, block_size, **kw: (
                len(code_lengths) * block_size * 4
            ),
        ),
        decode_selected=wrap(
            backend.decode_selected,
            "decode_selected",
            lambda indices, code_lengths, offsets, payload, block_size, **kw: (
                len(indices) * block_size * 4
            ),
        ),
        classify_encode=wrap(
            backend.classify_encode,
            "encode",
            lambda deltas, block_size, **kw: deltas.size * 4,
        ),
        reduce_fused=wrap(
            backend.reduce_fused,
            "reduce_fused",
            lambda lens_mat, offs_mat, payloads, weights, block_size, **kw: (
                lens_mat.shape[0] * lens_mat.shape[1] * block_size * 4
            ),
        ),
    )
    _instrumented_cache[backend.name] = twin
    return twin


def current_backend_name() -> str:
    """The name the next kernel call would dispatch to."""
    return get_backend().name


def set_backend(name: str | None) -> None:
    """Process-wide backend override (``None`` restores env/auto policy)."""
    global _override
    _probe_builtins()
    if name is not None:
        get_backend(name)  # validate eagerly
    with _lock:
        _override = name


@contextmanager
def use_backend(name: str | None) -> Iterator[KernelBackend]:
    """Scoped backend selection for the calling thread.

    ``None``/``"auto"`` defer to the ambient policy, so wrapping code in
    ``use_backend(config.kernel_backend)`` is always safe.
    """
    _probe_builtins()
    backend = get_backend(name)
    stack = getattr(_tls, "stack", None)
    if stack is None:
        stack = _tls.stack = []
    stack.append(backend.name)
    try:
        yield backend
    finally:
        stack.pop()


def _reset_for_tests() -> None:
    """Forget every probe/override so tests can re-drive discovery."""
    global _probed, _override
    with _lock:
        _registry.clear()
        _load_errors.clear()
        _instrumented_cache.clear()
        _probed = False
        _override = None
    _tls.stack = []
