"""Optional CuPy (GPU) kernel backend — the gZCCL-port seam.

Importing this module raises :class:`ImportError` when ``cupy`` is not
installed — the dispatch layer records that as "backend unavailable"
(``pip install repro[gpu]`` on a CUDA host).  The backend is registered
behind the same :mod:`repro.kernels.dispatch` contract as NumPy and Numba,
so the executor, ``HZDynamic.reduce_fused`` and every collective family
can select it with zero call-site changes — that seam, plus the staging
helpers below, is the point of this module.

**Stub status.**  gZCCL ports the fZ-light kernels to fused GPU passes
(classification, serialisation and the k-way accumulate each as one
device sweep).  This backend currently implements:

* block *classification* on the device — per-block max magnitude, code
  lengths and payload offsets run as CuPy reductions over the staged
  deltas (the metadata pass, which is where the GPU layout decisions
  live);
* payload *serialisation / deserialisation* on the host via the shared
  scalar loops of :mod:`repro.kernels._kernels_py` — the same loops the
  Numba backend JIT-compiles, so streams are byte-identical to every
  other backend by construction.

Replacing the host loops with ``cupy.RawKernel`` ports of the fused
sweeps is the intended follow-up; the dispatch contract (and the parity
suite, which exercises this backend whenever CuPy is importable) is
already in place, so that change stays local to this file.

Because every call stages through host memory, this backend is **never**
auto-selected — choose it explicitly via ``set_backend("cupy")``,
``use_backend("cupy")`` or ``REPRO_KERNEL_BACKEND=cupy``.
"""

from __future__ import annotations

import numpy as np

from . import _kernels_py
from .plan import payload_offsets

try:  # pragma: no cover - exercised via dispatch availability tests
    import cupy
except ImportError as exc:  # pragma: no cover
    raise ImportError(
        "the 'cupy' backend requires the cupy package "
        "(pip install repro[gpu] on a CUDA host)"
    ) from exc

__all__ = [
    "NAME",
    "encode_blocks",
    "encode_with_offsets",
    "decode_blocks",
    "decode_selected",
]

NAME = "cupy"

MAX_CODE_LENGTH = 32

_OVERFLOW_MSG = (
    "prediction delta exceeds 32-bit magnitude; the error bound is too "
    "tight for this data's dynamic range"
)


def _device_classify(deltas: np.ndarray) -> tuple[np.ndarray, cupy.ndarray]:
    """Stage deltas and run the classification pass on the device.

    Returns the host code lengths and the staged device array (kept so a
    future fused serialisation kernel reads it without a second upload).
    """
    d_deltas = cupy.asarray(deltas)
    max_mag = cupy.maximum(d_deltas.max(axis=1), -d_deltas.min(axis=1))
    if int(max_mag.max()) >= (1 << MAX_CODE_LENGTH):
        raise OverflowError(_OVERFLOW_MSG)
    # bits(m) = frexp exponent, exactly as the shared plan helper computes
    code_lengths = cupy.frexp(max_mag.astype(cupy.float64))[1].astype(
        cupy.uint8
    )
    return cupy.asnumpy(code_lengths), d_deltas


def encode_with_offsets(
    deltas: np.ndarray, block_size: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    deltas = np.ascontiguousarray(deltas)
    nb, bs = deltas.shape
    if nb == 0:
        lens = np.zeros(0, dtype=np.uint8)
        return lens, np.empty(0, dtype=np.uint8), payload_offsets(lens, bs)
    code_lengths, _d_deltas = _device_classify(deltas)
    offsets = payload_offsets(code_lengths, bs)
    payload = np.empty(int(offsets[-1]), dtype=np.uint8)
    # host serialisation (RawKernel port pending; see module docstring)
    _kernels_py.encode_from_deltas_loop(deltas, code_lengths, offsets, payload)
    return code_lengths, payload, offsets


def encode_blocks(
    deltas: np.ndarray, block_size: int
) -> tuple[np.ndarray, np.ndarray]:
    code_lengths, payload, _ = encode_with_offsets(deltas, block_size)
    return code_lengths, payload


def decode_blocks(
    code_lengths: np.ndarray,
    payload: np.ndarray,
    block_size: int,
    offsets: np.ndarray | None = None,
    out: np.ndarray | None = None,
) -> np.ndarray:
    code_lengths = np.asarray(code_lengths, dtype=np.uint8)
    nb = code_lengths.size
    if offsets is None:
        offsets = payload_offsets(code_lengths, block_size)
    max_c = int(code_lengths.max(initial=0))
    if out is None:
        dtype = np.int32 if max_c <= 31 else np.int64
        out = np.empty((nb, block_size), dtype=dtype)
    else:
        if out.shape != (nb, block_size):
            raise ValueError(
                f"out has shape {out.shape}, expected {(nb, block_size)}"
            )
        if out.dtype == np.int32 and max_c > 31:
            raise ValueError("int32 out cannot hold 32-bit magnitudes")
        if out.dtype not in (np.int32, np.int64):
            raise ValueError(f"out dtype must be int32/int64, got {out.dtype}")
    indices = np.arange(nb, dtype=np.int64)
    sign_buf = np.empty(block_size, dtype=np.uint8)
    _kernels_py.decode_into_loop(
        indices,
        code_lengths,
        np.asarray(offsets, dtype=np.int64),
        payload,
        out,
        sign_buf,
    )
    return out


def decode_selected(
    indices: np.ndarray,
    code_lengths: np.ndarray,
    offsets: np.ndarray,
    payload: np.ndarray,
    block_size: int,
    out: np.ndarray | None = None,
) -> np.ndarray:
    indices = np.ascontiguousarray(indices, dtype=np.int64)
    if out is None:
        out = np.empty((indices.size, block_size), dtype=np.int64)
    elif out.shape != (indices.size, block_size) or out.dtype != np.int64:
        raise ValueError(
            f"out must be {(indices.size, block_size)} int64, got "
            f"{out.shape} {out.dtype}"
        )
    if indices.size == 0:
        return out
    sign_buf = np.empty(block_size, dtype=np.uint8)
    _kernels_py.decode_into_loop(
        indices,
        np.asarray(code_lengths, dtype=np.uint8),
        np.asarray(offsets, dtype=np.int64),
        payload,
        out,
        sign_buf,
    )
    return out
