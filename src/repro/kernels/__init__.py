"""Pluggable fixed-length kernel backends for the compression hot path.

Public surface:

* :mod:`repro.kernels.dispatch` — backend registry, resolution policy
  (explicit override > ``REPRO_KERNEL_BACKEND`` env var > auto), and the
  :func:`use_backend` scoping context manager;
* :mod:`repro.kernels.plan` — the shared argsort-based
  :class:`~repro.kernels.plan.GroupingPlan` and payload-layout geometry;
* :mod:`repro.kernels.arena` — the thread-local scratch-buffer arena.

The stable entry point for callers is still
:mod:`repro.compression.encoding`; it forwards every call to the active
backend.  All backends emit byte-identical streams.
"""

from .arena import ScratchArena, get_arena
from .dispatch import (
    ENV_VAR,
    KernelBackend,
    available_backends,
    backend_status,
    current_backend_name,
    get_backend,
    register_backend,
    set_backend,
    use_backend,
)
from .plan import (
    GroupingPlan,
    block_payload_nbytes,
    payload_offsets,
    required_bits,
)

__all__ = [
    "ENV_VAR",
    "GroupingPlan",
    "KernelBackend",
    "ScratchArena",
    "available_backends",
    "backend_status",
    "block_payload_nbytes",
    "current_backend_name",
    "get_arena",
    "get_backend",
    "payload_offsets",
    "register_backend",
    "required_bits",
    "set_backend",
    "use_backend",
]
