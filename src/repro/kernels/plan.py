"""Shared block-grouping plan and payload-layout geometry.

Every fixed-length kernel (encode, decode, subset decode) needs the same
two pieces of information:

* **layout** — how many payload bytes each block occupies and where each
  block's bytes start (:func:`block_payload_nbytes`, :func:`payload_offsets`);
* **grouping** — which blocks share a code length ``c``, because blocks with
  equal ``c`` are processed by one vectorised (or one JIT) kernel call.

The grouping used to be recomputed per kernel as ``np.unique`` followed by a
full-array ``code_lengths == c`` scan *per distinct c* — up to 33 extra
passes over the code-length array, plus a fancy gather per group.  A
:class:`GroupingPlan` replaces all of that with **one** stable argsort
(radix sort for uint8 keys, O(n)): group ``g`` is simply the contiguous
slice ``order[bounds[g]:bounds[g+1]]``, already sorted by block index
within the group (stability), which is what makes the contiguous-run fast
paths in the backends possible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

__all__ = [
    "GroupingPlan",
    "required_bits",
    "block_payload_nbytes",
    "payload_offsets",
]


def required_bits(max_magnitudes: np.ndarray) -> np.ndarray:
    """Bit width needed to store each magnitude (0 for zero).

    ``bits(m) = floor(log2(m)) + 1`` for ``m > 0``, which is exactly the
    binary exponent ``np.frexp`` returns (float64 represents every uint32
    value exactly, so the result is exact for all magnitudes the format
    admits — and frexp is cheaper than the log2/ceil formulation).
    """
    m = np.asarray(max_magnitudes)
    return np.frexp(m)[1].astype(np.uint8)


def block_payload_nbytes(code_lengths: np.ndarray, block_size: int) -> np.ndarray:
    """Payload bytes per block: ``block_size/8 · (1 + c)``, 0 when constant."""
    c = np.asarray(code_lengths, dtype=np.int64)
    unit = block_size // 8
    return np.where(c > 0, unit * (1 + c), 0).astype(np.int64)


def payload_offsets(code_lengths: np.ndarray, block_size: int) -> np.ndarray:
    """Exclusive prefix sum of payload sizes: ``(n_blocks + 1,)`` offsets."""
    sizes = block_payload_nbytes(code_lengths, block_size)
    offsets = np.empty(sizes.size + 1, dtype=np.int64)
    offsets[0] = 0
    np.cumsum(sizes, out=offsets[1:])
    return offsets


@dataclass(frozen=True)
class GroupingPlan:
    """Equal-code-length block groups from one stable argsort.

    Attributes
    ----------
    order : ``(n,)`` int64 — block positions sorted by code length; within
        a group the positions keep their original ascending order
        (stable sort), so a group whose blocks are consecutive in the
        stream shows up as a consecutive ``order`` slice.
    values : ``(n_groups,)`` — the distinct code lengths, ascending.
    bounds : ``(n_groups + 1,)`` int64 — group ``g`` is
        ``order[bounds[g]:bounds[g+1]]``.
    """

    order: np.ndarray
    values: np.ndarray
    bounds: np.ndarray

    @classmethod
    def from_code_lengths(cls, code_lengths: np.ndarray) -> "GroupingPlan":
        """Build the plan with one O(n) radix argsort of the uint8 keys."""
        keys = np.ascontiguousarray(code_lengths)
        order = np.argsort(keys, kind="stable")
        sorted_c = keys[order]
        if sorted_c.size:
            cuts = np.flatnonzero(sorted_c[1:] != sorted_c[:-1]) + 1
            bounds = np.concatenate(
                (np.zeros(1, dtype=np.int64), cuts, [sorted_c.size])
            )
            values = sorted_c[bounds[:-1]]
        else:
            bounds = np.zeros(1, dtype=np.int64)
            values = sorted_c
        return cls(order=order, values=values, bounds=bounds)

    @property
    def n_groups(self) -> int:
        return int(self.values.size)

    def groups(self) -> Iterator[tuple[int, np.ndarray]]:
        """Yield ``(code_length, block_positions)`` per group, ascending c."""
        for g in range(self.values.size):
            yield (
                int(self.values[g]),
                self.order[int(self.bounds[g]) : int(self.bounds[g + 1])],
            )
