"""Thread-local scratch-buffer arena for the kernel hot path.

The fixed-length kernels need the same family of temporaries on every call
— magnitude planes, sign masks, gather/scatter index matrices, per-group
row buffers.  Allocating them fresh each time pays malloc + first-touch
page-fault cost on tens of megabytes per 16 MB field; the arena keeps one
persistent buffer per *tag* and hands out views, so a steady-state encode
or decode performs **zero** large allocations for its scratch space.

Rules of the road:

* Arenas are **thread-local** (:func:`get_arena`): FZLight's pool workers
  each get their own, so no locking is needed anywhere on the hot path.
* A tag's buffer is clobbered by the next :meth:`~ScratchArena.take` of the
  same tag on the same thread.  Scratch views must therefore never escape
  the kernel call that took them — anything *returned* to a caller
  (payloads, code lengths, decoded blocks the caller keeps) is allocated
  normally, unless the caller explicitly passes its own ``out=`` buffer.
* Buffers only grow (geometrically, to amortise creeping sizes); call
  :meth:`~ScratchArena.clear` to release them (tests, memory-pressure
  hooks).
"""

from __future__ import annotations

import threading

import numpy as np

__all__ = ["ScratchArena", "get_arena"]


class ScratchArena:
    """A pool of named, growable scratch buffers backing kernel temporaries."""

    def __init__(self) -> None:
        self._buffers: dict[str, np.ndarray] = {}
        #: Count of backing-buffer creations/growths since construction (or
        #: the last :meth:`clear`).  A warmed steady state must not move
        #: this — the allocation-freedom tests pin exactly that.
        self.allocations = 0

    def take(
        self,
        tag: str,
        shape: int | tuple[int, ...],
        dtype: np.dtype | type = np.uint8,
        zero: bool = False,
    ) -> np.ndarray:
        """Return a ``shape``/``dtype`` view over the buffer named ``tag``.

        The view aliases previous contents for that tag (the caller is
        expected to overwrite every element it reads, or pass
        ``zero=True`` to get a cleared view).  The backing buffer grows
        geometrically when the request exceeds its capacity, so repeated
        slightly-larger requests do not reallocate every call.
        """
        if isinstance(shape, (int, np.integer)):
            shape = (int(shape),)
        dtype = np.dtype(dtype)
        n = 1
        for dim in shape:
            if dim < 0:
                raise ValueError(f"negative dimension in shape {shape}")
            n *= int(dim)
        nbytes = n * dtype.itemsize
        buf = self._buffers.get(tag)
        if buf is None or buf.nbytes < nbytes:
            capacity = nbytes if buf is None else max(nbytes, 2 * buf.nbytes)
            buf = np.empty(capacity, dtype=np.uint8)
            self._buffers[tag] = buf
            self.allocations += 1
        view = buf[:nbytes].view(dtype).reshape(shape)
        if zero:
            view.fill(0)
        return view

    @property
    def nbytes(self) -> int:
        """Total bytes currently held across all tags."""
        return sum(b.nbytes for b in self._buffers.values())

    @property
    def tags(self) -> tuple[str, ...]:
        return tuple(self._buffers)

    def clear(self) -> None:
        """Drop every buffer (memory is released to the allocator)."""
        self._buffers.clear()
        self.allocations = 0


_TLS = threading.local()


def get_arena() -> ScratchArena:
    """The calling thread's arena (created on first use)."""
    arena = getattr(_TLS, "arena", None)
    if arena is None:
        arena = ScratchArena()
        _TLS.arena = arena
    return arena
