"""Reference NumPy kernel backend (the default, always available).

This is the reworked hot path behind :mod:`repro.compression.encoding`.
Relative to the original in-module kernels it

* builds one :class:`~repro.kernels.plan.GroupingPlan` (a single stable
  radix argsort) instead of ``np.unique`` plus a full ``code_lengths == c``
  scan and fancy gather per distinct code length;
* serves every temporary (magnitude planes, sign masks, index matrices,
  per-group row buffers) from the thread-local scratch
  :class:`~repro.kernels.arena.ScratchArena`, so steady-state calls make no
  large allocations;
* moves payload bytes at word granularity: when ``block_size % 32 == 0``
  every row size and offset is a multiple of 4, so gathers/scatters run on
  a ``uint32`` view with 4× smaller index matrices — and groups whose
  blocks are consecutive in the stream collapse to plain slice copies
  (zero-copy views on the decode side);
* replaces the per-bit Horner loops of the residual-bit codec with
  ``packbits``/sliding-``uint16``-window kernels, and the masked
  ``np.negative(..., where=signs)`` with a branchless xor/subtract;
* keeps gather/scatter index matrices in ``int32`` whenever the payload is
  under 2 GiB, halving the index-construction traffic.

The emitted streams are byte-identical to the original implementation (and
to the Numba backend) — the wire format is pinned by the parity suite.
"""

from __future__ import annotations

import numpy as np

from .arena import ScratchArena, get_arena
from .plan import GroupingPlan, payload_offsets, required_bits

__all__ = [
    "NAME",
    "MAX_CODE_LENGTH",
    "encode_blocks",
    "encode_with_offsets",
    "classify_encode",
    "decode_blocks",
    "decode_selected",
    "reduce_fused",
    "make_reduce_fused",
]

NAME = "numpy"

#: Magnitudes are stored in at most 32 bits, mirroring the 32-bit unsigned
#: integer arrays of fZ-light/cuSZp.
MAX_CODE_LENGTH = 32

_OVERFLOW_MSG = (
    "prediction delta exceeds 32-bit magnitude; the error bound is too "
    "tight for this data's dynamic range"
)


# --------------------------------------------------------------------- #
# row movement: slice fast paths + word-granularity gather/scatter
# --------------------------------------------------------------------- #
def _run_cuts(idx: np.ndarray) -> np.ndarray | None:
    """Split points between maximal consecutive-ascending runs of ``idx``.

    Returns ``None`` when ``idx`` is one consecutive ascending run.
    """
    cuts = np.flatnonzero(np.diff(idx) != 1)
    return None if cuts.size == 0 else cuts + 1


def _word_view(payload: np.ndarray, block_size: int) -> np.ndarray | None:
    """``uint32`` view of ``payload`` when the geometry/alignment allows it.

    With ``block_size % 32 == 0`` every row occupies ``(bs//8)·(1+c)``
    bytes — a multiple of 4 — so all offsets are word-aligned; the only
    runtime requirement left is that the buffer itself starts on a 4-byte
    boundary (NumPy allocations do; arbitrary caller slices may not).
    """
    if block_size % 32 or payload.size % 4 or not payload.flags.c_contiguous:
        return None
    if payload.ctypes.data % 4:
        return None
    return payload.view(np.uint32)


def _row_index_matrix(
    starts: np.ndarray,
    row_len: int,
    arena: ScratchArena,
    tag: str,
    idx_dtype: type,
) -> np.ndarray:
    """``(len(starts), row_len)`` flat indices ``starts[i] + j``."""
    mat = arena.take(tag, (starts.size, row_len), idx_dtype)
    np.add(
        starts.astype(idx_dtype)[:, None],
        np.arange(row_len, dtype=idx_dtype),
        out=mat,
    )
    return mat


def _gather_rows(
    payload: np.ndarray,
    pay32: np.ndarray | None,
    offsets: np.ndarray,
    idx: np.ndarray,
    row_nbytes: int,
    arena: ScratchArena,
    idx_dtype: type,
) -> np.ndarray:
    """Collect ``(len(idx), row_nbytes)`` payload rows for blocks ``idx``."""
    ng = idx.size
    cuts = _run_cuts(idx)
    if cuts is None:
        lo = int(offsets[idx[0]])
        return payload[lo : lo + ng * row_nbytes].reshape(ng, row_nbytes)
    rows = arena.take("mv.rows", (ng, row_nbytes), np.uint8)
    if cuts.size + 1 <= max(ng // 8, 1):
        # few long runs: plain slice copies, no index matrices at all
        bounds = np.concatenate(([0], cuts, [ng]))
        for r in range(bounds.size - 1):
            s, e = int(bounds[r]), int(bounds[r + 1])
            lo = int(offsets[idx[s]])
            rows[s:e].reshape(-1)[:] = payload[lo : lo + (e - s) * row_nbytes]
        return rows
    starts = offsets[idx]
    if pay32 is not None:
        src = _row_index_matrix(
            starts >> 2, row_nbytes // 4, arena, "mv.idx", idx_dtype
        )
        np.take(pay32, src.reshape(-1), out=rows.view(np.uint32).reshape(-1))
    else:
        src = _row_index_matrix(starts, row_nbytes, arena, "mv.idx", idx_dtype)
        np.take(payload, src.reshape(-1), out=rows.reshape(-1))
    return rows


def _scatter_rows(
    payload: np.ndarray,
    pay32: np.ndarray | None,
    offsets: np.ndarray,
    idx: np.ndarray,
    rows: np.ndarray,
    row_nbytes: int,
    arena: ScratchArena,
    idx_dtype: type,
) -> None:
    """Place ``rows`` into the payload at blocks ``idx`` (inverse gather)."""
    ng = idx.size
    cuts = _run_cuts(idx)
    if cuts is None:
        lo = int(offsets[idx[0]])
        payload[lo : lo + ng * row_nbytes] = rows.reshape(-1)
        return
    if cuts.size + 1 <= max(ng // 8, 1):
        bounds = np.concatenate(([0], cuts, [ng]))
        for r in range(bounds.size - 1):
            s, e = int(bounds[r]), int(bounds[r + 1])
            lo = int(offsets[idx[s]])
            payload[lo : lo + (e - s) * row_nbytes] = rows[s:e].reshape(-1)
        return
    starts = offsets[idx]
    if pay32 is not None:
        dest = _row_index_matrix(
            starts >> 2, row_nbytes // 4, arena, "mv.idx", idx_dtype
        )
        pay32[dest.reshape(-1)] = rows.view(np.uint32).reshape(-1)
    else:
        dest = _row_index_matrix(starts, row_nbytes, arena, "mv.idx", idx_dtype)
        payload[dest.reshape(-1)] = rows.reshape(-1)


# --------------------------------------------------------------------- #
# per-group codecs
# --------------------------------------------------------------------- #
def _encode_group(
    mags: np.ndarray,
    signs: np.ndarray,
    c: int,
    out: np.ndarray,
    arena: ScratchArena,
) -> None:
    """Encode equal-code-length blocks into ``(ng, bs//8·(1+c))`` rows."""
    ng, bs = mags.shape
    unit = bs // 8
    out[:, :unit] = np.packbits(signs, axis=1)
    byte_count, rem = c // 8, c % 8
    pos = unit
    for k in range(byte_count):
        if k == 0:
            out[:, pos : pos + bs] = mags  # unsafe cast keeps the low byte
        else:
            t = arena.take("cg.t32", (ng, bs), np.uint32)
            np.right_shift(mags, np.uint32(8 * k), out=t)
            out[:, pos : pos + bs] = t
        pos += bs
    if rem:
        t = arena.take("cg.t32", (ng, bs), np.uint32)
        np.right_shift(mags, np.uint32(8 * byte_count), out=t)
        np.bitwise_and(t, np.uint32((1 << rem) - 1), out=t)
        r8 = arena.take("cg.r8", (ng, bs), np.uint8)
        if rem == 1:
            r8[...] = t
            out[:, pos:] = np.packbits(r8, axis=1)
        else:
            # left-align the residual in its byte, then unpackbits exposes
            # exactly the rem leading bits of each element for one packbits
            np.left_shift(t, np.uint32(8 - rem), out=t)
            r8[...] = t
            bits = np.unpackbits(r8, axis=1).reshape(ng, bs, 8)[:, :, :rem]
            out[:, pos:] = np.packbits(bits.reshape(ng, bs * rem), axis=1)


def _decode_group(
    rows: np.ndarray,
    c: int,
    bs: int,
    target: np.ndarray,
    arena: ScratchArena,
) -> None:
    """Decode equal-code-length rows into signed ``target`` ``(ng, bs)``."""
    ng = rows.shape[0]
    unit = bs // 8
    byte_count, rem = c // 8, c % 8
    pos = unit
    if target.dtype == np.int32:
        # magnitudes < 2**31 here, so the int32 rows double as the u32
        # accumulator — one full write pass saved
        acc = target.view(np.uint32)
    else:
        acc = arena.take("cg.acc", (ng, bs), np.uint32)
    filled = False
    for k in range(byte_count):
        if k == 0:
            acc[...] = rows[:, pos : pos + bs]
            filled = True
        else:
            t = arena.take("cg.t32", (ng, bs), np.uint32)
            t[...] = rows[:, pos : pos + bs]
            np.left_shift(t, np.uint32(8 * k), out=t)
            np.bitwise_or(acc, t, out=acc)
        pos += bs
    if rem:
        if rem == 1:
            bits = np.unpackbits(np.ascontiguousarray(rows[:, pos:]), axis=1)
            high = bits
        else:
            # sliding uint16 window over the packed residual bytes: each
            # element's rem bits live in (at most) two adjacent bytes, so
            # one gather + one variable shift recovers every value
            packed = rows[:, pos:]
            w = arena.take("cg.w16", packed.shape, np.uint16)
            w[...] = packed
            np.left_shift(w, np.uint16(8), out=w)
            w[:, :-1] |= packed[:, 1:]
            bitpos = np.arange(bs, dtype=np.int64) * rem
            shift = (16 - rem - (bitpos & 7)).astype(np.uint16)
            g16 = arena.take("cg.g16", (ng, bs), np.uint16)
            np.take(w, bitpos >> 3, axis=1, out=g16)
            np.right_shift(g16, shift, out=g16)
            np.bitwise_and(g16, np.uint16((1 << rem) - 1), out=g16)
            high = g16
        if byte_count:
            t = arena.take("cg.t32", (ng, bs), np.uint32)
            t[...] = high
            np.left_shift(t, np.uint32(8 * byte_count), out=t)
            np.bitwise_or(acc, t, out=acc)
        else:
            acc[...] = high
            filled = True
    if not filled:  # c == 0 never reaches here; defensive only
        acc.fill(0)
    if target.dtype != np.int32:
        target[...] = acc
    # branchless sign: x -> (x ^ -s) - (-s)·... i.e. (x ^ m) - m, m = -s
    sign_bits = np.unpackbits(np.ascontiguousarray(rows[:, :unit]), axis=1)
    m = arena.take("cg.sgn", (ng, bs), target.dtype)
    m[...] = sign_bits
    np.negative(m, out=m)
    np.bitwise_xor(target, m, out=target)
    np.subtract(target, m, out=target)


# --------------------------------------------------------------------- #
# public kernels
# --------------------------------------------------------------------- #
def encode_with_offsets(
    deltas: np.ndarray, block_size: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Fixed-length-encode ``(n_blocks, bs)`` deltas; offsets come free."""
    arena = get_arena()
    deltas = np.ascontiguousarray(deltas)
    nb, bs = deltas.shape
    if nb == 0:
        lens = np.zeros(0, dtype=np.uint8)
        return lens, np.empty(0, dtype=np.uint8), payload_offsets(lens, bs)
    # per-block max |delta| without materialising the abs array
    max_mag = np.maximum(deltas.max(axis=1), -deltas.min(axis=1))
    global_max = int(max_mag.max())
    if global_max >= (1 << MAX_CODE_LENGTH):
        raise OverflowError(_OVERFLOW_MSG)
    code_lengths = required_bits(max_mag)
    offsets = payload_offsets(code_lengths, bs)
    total = int(offsets[-1])
    payload = np.empty(total, dtype=np.uint8)
    if total == 0:
        return code_lengths, payload, offsets
    signs = arena.take("enc.signs", deltas.shape, np.bool_)
    np.less(deltas, 0, out=signs)
    if global_max <= 0x7FFFFFFF:
        # |delta| < 2**31: the int64 -> int32 cast is exact, and abs can
        # run in-place at half the memory traffic
        m32 = arena.take("enc.mags", deltas.shape, np.int32)
        m32[...] = deltas
        np.abs(m32, out=m32)
        mags = m32.view(np.uint32)
    else:
        m64 = arena.take("enc.mags64", deltas.shape, np.int64)
        np.abs(deltas, out=m64, casting="unsafe")
        mags = arena.take("enc.mags", deltas.shape, np.uint32)
        mags[...] = m64
    plan = GroupingPlan.from_code_lengths(code_lengths)
    idx_dtype = np.int32 if total < 2**31 else np.int64
    pay32 = _word_view(payload, bs)
    for c, idx in plan.groups():
        if c == 0:
            continue
        ng = idx.size
        row_nbytes = (bs // 8) * (1 + c)
        if idx[-1] - idx[0] == ng - 1:  # plan order is ascending per group
            lo = int(idx[0])
            gm, gs = mags[lo : lo + ng], signs[lo : lo + ng]
        else:
            gm = arena.take("enc.gmags", (ng, bs), np.uint32)
            np.take(mags, idx, axis=0, out=gm)
            gs = arena.take("enc.gsigns", (ng, bs), np.bool_)
            np.take(signs, idx, axis=0, out=gs)
        rows = arena.take("enc.rows", (ng, row_nbytes), np.uint8)
        _encode_group(gm, gs, c, rows, arena)
        _scatter_rows(
            payload, pay32, offsets, idx, rows, row_nbytes, arena, idx_dtype
        )
    return code_lengths, payload, offsets


def encode_blocks(
    deltas: np.ndarray, block_size: int
) -> tuple[np.ndarray, np.ndarray]:
    code_lengths, payload, _ = encode_with_offsets(deltas, block_size)
    return code_lengths, payload


def decode_blocks(
    code_lengths: np.ndarray,
    payload: np.ndarray,
    block_size: int,
    offsets: np.ndarray | None = None,
    out: np.ndarray | None = None,
) -> np.ndarray:
    """Decode the full block set; see :func:`repro.compression.encoding.decode_blocks`."""
    arena = get_arena()
    code_lengths = np.asarray(code_lengths, dtype=np.uint8)
    nb = code_lengths.size
    if offsets is None:
        offsets = payload_offsets(code_lengths, block_size)
    max_c = int(code_lengths.max(initial=0))
    if out is None:
        dtype = np.int32 if max_c <= 31 else np.int64
        out = np.empty((nb, block_size), dtype=dtype)
    else:
        if out.shape != (nb, block_size):
            raise ValueError(
                f"out has shape {out.shape}, expected {(nb, block_size)}"
            )
        if out.dtype == np.int32 and max_c > 31:
            raise ValueError("int32 out cannot hold 32-bit magnitudes")
        if out.dtype not in (np.int32, np.int64):
            raise ValueError(f"out dtype must be int32/int64, got {out.dtype}")
    plan = GroupingPlan.from_code_lengths(code_lengths)
    _decode_grouped(plan, None, code_lengths, offsets, payload, block_size, out, arena)
    return out


def decode_selected(
    indices: np.ndarray,
    code_lengths: np.ndarray,
    offsets: np.ndarray,
    payload: np.ndarray,
    block_size: int,
    out: np.ndarray | None = None,
) -> np.ndarray:
    """Decode only ``indices`` blocks (any order, duplicates allowed).

    ``out``, when given, must be ``(len(indices), block_size)`` int64 and
    is fully overwritten — the homomorphic hot loop passes an arena view
    here so steady-state subset decodes allocate nothing.
    """
    arena = get_arena()
    indices = np.asarray(indices, dtype=np.int64)
    code_lengths = np.asarray(code_lengths, dtype=np.uint8)
    if out is None:
        out = np.empty((indices.size, block_size), dtype=np.int64)
    elif out.shape != (indices.size, block_size) or out.dtype != np.int64:
        raise ValueError(
            f"out must be {(indices.size, block_size)} int64, got "
            f"{out.shape} {out.dtype}"
        )
    if indices.size == 0:
        return out
    plan = GroupingPlan.from_code_lengths(code_lengths[indices])
    _decode_grouped(
        plan, indices, code_lengths, offsets, payload, block_size, out, arena
    )
    return out


def _decode_grouped(
    plan: GroupingPlan,
    indices: np.ndarray | None,
    code_lengths: np.ndarray,
    offsets: np.ndarray,
    payload: np.ndarray,
    block_size: int,
    out: np.ndarray,
    arena: ScratchArena,
) -> None:
    """Shared decode driver; ``indices`` maps output rows to block ids."""
    total = int(offsets[-1])
    idx_dtype = np.int32 if total < 2**31 else np.int64
    pay32 = _word_view(payload, block_size)
    for c, pos in plan.groups():
        blocks = pos if indices is None else indices[pos]
        ng = pos.size
        if c == 0:
            if ng and pos[-1] - pos[0] == ng - 1:
                out[int(pos[0]) : int(pos[0]) + ng] = 0
            else:
                out[pos] = 0
            continue
        row_nbytes = (block_size // 8) * (1 + c)
        rows = _gather_rows(
            payload, pay32, offsets, blocks, row_nbytes, arena, idx_dtype
        )
        if pos[-1] - pos[0] == ng - 1:  # output rows contiguous: in place
            target = out[int(pos[0]) : int(pos[0]) + ng]
            _decode_group(rows, c, block_size, target, arena)
        else:
            dec = arena.take("dec.rows", (ng, block_size), out.dtype)
            _decode_group(rows, c, block_size, dec, arena)
            out[pos] = dec


# --------------------------------------------------------------------- #
# fused entry points (classification + encode, k-way reduce)
# --------------------------------------------------------------------- #
#: The NumPy backend *is* the two-pass reference: classification runs as a
#: vectorised metadata pass and serialisation as grouped kernels, so the
#: fused entry point simply aliases :func:`encode_with_offsets`.  JIT/GPU
#: backends override this with a genuinely single-sweep kernel; the parity
#: suite pins all of them byte-identical to this function.
classify_encode = encode_with_offsets


def make_reduce_fused(decode_blocks_fn, classify_encode_fn):
    """Build a reference k-way ``reduce_fused`` from a backend's own kernels.

    The returned callable implements the dense full-stream strategy —
    decode each operand contiguously, accumulate with integer weights,
    re-encode once — on top of whatever ``decode_blocks`` /
    ``classify_encode`` the backend provides.  The dispatch layer installs
    this as the fallback for backends (custom or stub) that do not ship a
    native fused kernel, so ``HZDynamic.reduce_fused`` can rely on the
    entry point existing everywhere.
    """

    def reduce_fused(
        lens_mat: np.ndarray,
        offs_mat: np.ndarray,
        payloads: list[np.ndarray],
        weights: np.ndarray,
        block_size: int,
        acc: np.ndarray | None = None,
        track: bool = False,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray | None]:
        arena = get_arena()
        k, nb = lens_mat.shape
        if acc is None:
            acc = np.zeros((nb, block_size), dtype=np.int64)
        else:
            if acc.shape != (nb, block_size) or acc.dtype != np.int64:
                raise ValueError(
                    f"acc must be {(nb, block_size)} int64, got "
                    f"{acc.shape} {acc.dtype}"
                )
            acc.fill(0)
        zero_after = np.empty((k, nb), dtype=bool) if track else None
        scratch = arena.take("rf.dec", (nb, block_size), np.int64)
        for j in range(k):
            w = int(weights[j])
            if w != 0:
                decoded = decode_blocks_fn(
                    lens_mat[j],
                    payloads[j],
                    block_size,
                    offsets=offs_mat[j],
                    out=scratch,
                )
                if w != 1:
                    decoded *= w
                acc += decoded
            if track:
                np.logical_not(acc.any(axis=1), out=zero_after[j])
        out_lengths, payload, offsets = classify_encode_fn(acc, block_size)
        return out_lengths, payload, offsets, zero_after

    return reduce_fused


#: Dense k-way homomorphic accumulate for the reference backend.  See
#: :func:`make_reduce_fused` for the contract; the Numba backend replaces
#: this with a single-sweep JIT kernel (one pass over each block across all
#: k operands, ``prange`` over thread-blocks).
reduce_fused = make_reduce_fused(decode_blocks, classify_encode)
