"""Optional Numba-JIT kernel backend.

Importing this module raises :class:`ImportError` when ``numba`` is not
installed — the dispatch layer treats that as "backend unavailable" and
falls back to NumPy.  Install the extra with ``pip install repro[perf]``.

The JIT kernels are the scalar loops from :mod:`repro.kernels._kernels_py`,
compiled in ``nopython`` mode with on-disk caching.  Block-level metadata
(max magnitudes, code lengths, offsets) is still computed with vectorised
NumPy — those passes are already memory-bound — while the per-block
serialise/deserialise inner loops, where NumPy pays per-group temporaries
and gather/scatter index matrices, run as native code.

Streams are byte-identical to the NumPy backend; the parity suite pins this.
"""

from __future__ import annotations

import numpy as np

from . import _kernels_py
from .plan import payload_offsets, required_bits

try:  # pragma: no cover - exercised via dispatch availability tests
    import numba
except ImportError as exc:  # pragma: no cover
    raise ImportError(
        "the 'numba' backend requires the numba package "
        "(pip install repro[perf])"
    ) from exc

__all__ = [
    "NAME",
    "encode_blocks",
    "encode_with_offsets",
    "decode_blocks",
    "decode_selected",
]

NAME = "numba"

MAX_CODE_LENGTH = 32

_OVERFLOW_MSG = (
    "prediction delta exceeds 32-bit magnitude; the error bound is too "
    "tight for this data's dynamic range"
)

_jit = numba.njit(cache=True, nogil=True)

_encode_payload_loop = _jit(_kernels_py.encode_payload_loop)
_decode_into_loop = _jit(_kernels_py.decode_into_loop)


def encode_with_offsets(
    deltas: np.ndarray, block_size: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    deltas = np.ascontiguousarray(deltas)
    nb, bs = deltas.shape
    if nb == 0:
        lens = np.zeros(0, dtype=np.uint8)
        return lens, np.empty(0, dtype=np.uint8), payload_offsets(lens, bs)
    max_mag = np.maximum(deltas.max(axis=1), -deltas.min(axis=1))
    if int(max_mag.max()) >= (1 << MAX_CODE_LENGTH):
        raise OverflowError(_OVERFLOW_MSG)
    code_lengths = required_bits(max_mag)
    offsets = payload_offsets(code_lengths, bs)
    payload = np.empty(int(offsets[-1]), dtype=np.uint8)
    mags = np.abs(deltas).astype(np.uint32, copy=False)
    signs = deltas < 0
    _encode_payload_loop(mags, signs, code_lengths, offsets, payload)
    return code_lengths, payload, offsets


def encode_blocks(
    deltas: np.ndarray, block_size: int
) -> tuple[np.ndarray, np.ndarray]:
    code_lengths, payload, _ = encode_with_offsets(deltas, block_size)
    return code_lengths, payload


def decode_blocks(
    code_lengths: np.ndarray,
    payload: np.ndarray,
    block_size: int,
    offsets: np.ndarray | None = None,
    out: np.ndarray | None = None,
) -> np.ndarray:
    code_lengths = np.asarray(code_lengths, dtype=np.uint8)
    nb = code_lengths.size
    if offsets is None:
        offsets = payload_offsets(code_lengths, block_size)
    max_c = int(code_lengths.max(initial=0))
    if out is None:
        dtype = np.int32 if max_c <= 31 else np.int64
        out = np.empty((nb, block_size), dtype=dtype)
    else:
        if out.shape != (nb, block_size):
            raise ValueError(
                f"out has shape {out.shape}, expected {(nb, block_size)}"
            )
        if out.dtype == np.int32 and max_c > 31:
            raise ValueError("int32 out cannot hold 32-bit magnitudes")
        if out.dtype not in (np.int32, np.int64):
            raise ValueError(f"out dtype must be int32/int64, got {out.dtype}")
    indices = np.arange(nb, dtype=np.int64)
    sign_buf = np.empty(block_size, dtype=np.uint8)
    _decode_into_loop(
        indices,
        code_lengths,
        np.asarray(offsets, dtype=np.int64),
        payload,
        out,
        sign_buf,
    )
    return out


def decode_selected(
    indices: np.ndarray,
    code_lengths: np.ndarray,
    offsets: np.ndarray,
    payload: np.ndarray,
    block_size: int,
) -> np.ndarray:
    indices = np.ascontiguousarray(indices, dtype=np.int64)
    out = np.empty((indices.size, block_size), dtype=np.int64)
    if indices.size == 0:
        return out
    sign_buf = np.empty(block_size, dtype=np.uint8)
    _decode_into_loop(
        indices,
        np.asarray(code_lengths, dtype=np.uint8),
        np.asarray(offsets, dtype=np.int64),
        payload,
        out,
        sign_buf,
    )
    return out
