"""Optional Numba-JIT kernel backend (fused parallel hot paths).

Importing this module raises :class:`ImportError` when ``numba`` is not
installed — the dispatch layer treats that as "backend unavailable" and
falls back to NumPy.  Install the extra with ``pip install repro[perf]``.

The JIT kernels are the scalar loops from :mod:`repro.kernels._kernels_py`,
compiled in ``nopython`` mode with on-disk caching, ``nogil`` (FZLight's
pool workers run them truly in parallel) and ``parallel=True`` so the
per-block outer loops fan out over thread-blocks with ``prange``:

* ``classify_encode`` — the fused single-pass encode: one sweep computes
  the block classification (code lengths) and a second ``prange`` sweep
  emits the compressed stream straight from the deltas.  No ``abs`` array,
  no sign mask, no per-group gathers — the temporaries the NumPy backend
  pays for vanish entirely (the HoSZp-style classify+encode fusion).
* ``reduce_fused`` — the k-way homomorphic accumulate: each block is
  decoded, weighted, accumulated *and* re-classified in one visit across
  all ``k`` operands (gZCCL's fused GPU pass, on CPU threads), then one
  fused encode emits the result stream.
* ``decode_blocks`` / ``decode_selected`` — the per-block deserialise
  loops, as before.

Streams are byte-identical to the NumPy backend; the parity suite pins
this, and the uncompiled loops are exercised by CI even without numba.
"""

from __future__ import annotations

import numpy as np

from . import _kernels_py
from .arena import get_arena
from .plan import payload_offsets

try:  # pragma: no cover - exercised via dispatch availability tests
    import numba
except ImportError as exc:  # pragma: no cover
    raise ImportError(
        "the 'numba' backend requires the numba package "
        "(pip install repro[perf])"
    ) from exc

__all__ = [
    "NAME",
    "encode_blocks",
    "encode_with_offsets",
    "classify_encode",
    "decode_blocks",
    "decode_selected",
    "reduce_fused",
]

NAME = "numba"

MAX_CODE_LENGTH = 32

_OVERFLOW_MSG = (
    "prediction delta exceeds 32-bit magnitude; the error bound is too "
    "tight for this data's dynamic range"
)

_jit = numba.njit(cache=True, nogil=True)
_pjit = numba.njit(cache=True, nogil=True, parallel=True)

_encode_payload_loop = _jit(_kernels_py.encode_payload_loop)
_decode_into_loop = _jit(_kernels_py.decode_into_loop)
_classify_blocks_loop = _pjit(_kernels_py.classify_blocks_loop)
_encode_from_deltas_loop = _pjit(_kernels_py.encode_from_deltas_loop)
_reduce_accumulate_loop = _pjit(_kernels_py.reduce_accumulate_loop)


def classify_encode(
    deltas: np.ndarray, block_size: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Fused single-pass classification + encode (see module docstring)."""
    deltas = np.ascontiguousarray(deltas)
    nb, bs = deltas.shape
    code_lengths = np.empty(nb, dtype=np.uint8)
    if nb == 0:
        return code_lengths, np.empty(0, dtype=np.uint8), payload_offsets(
            code_lengths, bs
        )
    _classify_blocks_loop(deltas, code_lengths)
    if int(code_lengths.max(initial=0)) > MAX_CODE_LENGTH:
        raise OverflowError(_OVERFLOW_MSG)
    offsets = payload_offsets(code_lengths, bs)
    payload = np.empty(int(offsets[-1]), dtype=np.uint8)
    _encode_from_deltas_loop(deltas, code_lengths, offsets, payload)
    return code_lengths, payload, offsets


#: The fused kernel *is* this backend's encode — the two entry points are
#: one function here (the NumPy backend keeps them distinct because its
#: two-pass path is the bit-layout reference).
encode_with_offsets = classify_encode


def encode_blocks(
    deltas: np.ndarray, block_size: int
) -> tuple[np.ndarray, np.ndarray]:
    code_lengths, payload, _ = classify_encode(deltas, block_size)
    return code_lengths, payload


def decode_blocks(
    code_lengths: np.ndarray,
    payload: np.ndarray,
    block_size: int,
    offsets: np.ndarray | None = None,
    out: np.ndarray | None = None,
) -> np.ndarray:
    code_lengths = np.asarray(code_lengths, dtype=np.uint8)
    nb = code_lengths.size
    if offsets is None:
        offsets = payload_offsets(code_lengths, block_size)
    max_c = int(code_lengths.max(initial=0))
    if out is None:
        dtype = np.int32 if max_c <= 31 else np.int64
        out = np.empty((nb, block_size), dtype=dtype)
    else:
        if out.shape != (nb, block_size):
            raise ValueError(
                f"out has shape {out.shape}, expected {(nb, block_size)}"
            )
        if out.dtype == np.int32 and max_c > 31:
            raise ValueError("int32 out cannot hold 32-bit magnitudes")
        if out.dtype not in (np.int32, np.int64):
            raise ValueError(f"out dtype must be int32/int64, got {out.dtype}")
    indices = np.arange(nb, dtype=np.int64)
    sign_buf = np.empty(block_size, dtype=np.uint8)
    _decode_into_loop(
        indices,
        code_lengths,
        np.asarray(offsets, dtype=np.int64),
        payload,
        out,
        sign_buf,
    )
    return out


def decode_selected(
    indices: np.ndarray,
    code_lengths: np.ndarray,
    offsets: np.ndarray,
    payload: np.ndarray,
    block_size: int,
    out: np.ndarray | None = None,
) -> np.ndarray:
    indices = np.ascontiguousarray(indices, dtype=np.int64)
    if out is None:
        out = np.empty((indices.size, block_size), dtype=np.int64)
    elif out.shape != (indices.size, block_size) or out.dtype != np.int64:
        raise ValueError(
            f"out must be {(indices.size, block_size)} int64, got "
            f"{out.shape} {out.dtype}"
        )
    if indices.size == 0:
        return out
    sign_buf = np.empty(block_size, dtype=np.uint8)
    _decode_into_loop(
        indices,
        np.asarray(code_lengths, dtype=np.uint8),
        np.asarray(offsets, dtype=np.int64),
        payload,
        out,
        sign_buf,
    )
    return out


def reduce_fused(
    lens_mat: np.ndarray,
    offs_mat: np.ndarray,
    payloads: list[np.ndarray],
    weights: np.ndarray,
    block_size: int,
    acc: np.ndarray | None = None,
    track: bool = False,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray | None]:
    """Single-sweep k-way homomorphic accumulate (dense strategy).

    Operand payloads are concatenated once (a straight ``memcpy``) so the
    JIT kernel sees one flat buffer; the ``prange`` block loop then decodes
    and accumulates all ``k`` operands per block in one visit and writes
    the result's code length, and a second fused pass serialises the
    output.  ``zero_after`` (returned when ``track``) carries the
    pairwise-fold "partial sum is constant" flags the pipeline statistics
    are derived from — computed in the same sweep, not as extra passes.
    """
    k, nb = lens_mat.shape
    lens_mat = np.ascontiguousarray(lens_mat, dtype=np.uint8)
    offs_mat = np.ascontiguousarray(offs_mat, dtype=np.int64)
    weights = np.ascontiguousarray(weights, dtype=np.int64)
    if acc is None:
        acc = np.empty((nb, block_size), dtype=np.int64)
    elif acc.shape != (nb, block_size) or acc.dtype != np.int64:
        raise ValueError(
            f"acc must be {(nb, block_size)} int64, got {acc.shape} {acc.dtype}"
        )
    sizes = np.array([p.size for p in payloads], dtype=np.int64)
    bases = np.zeros(k, dtype=np.int64)
    np.cumsum(sizes[:-1], out=bases[1:])
    if k == 1:
        payload_cat = np.ascontiguousarray(payloads[0])
    else:
        payload_cat = get_arena().take("rf.cat", int(sizes.sum()), np.uint8)
        for j in range(k):
            payload_cat[bases[j] : bases[j] + sizes[j]] = payloads[j]
    out_lengths = np.empty(nb, dtype=np.uint8)
    zero_after = np.empty((k, nb), dtype=np.uint8)
    _reduce_accumulate_loop(
        lens_mat,
        offs_mat,
        payload_cat,
        bases,
        weights,
        acc,
        out_lengths,
        zero_after,
        track,
    )
    if int(out_lengths.max(initial=0)) > MAX_CODE_LENGTH:
        raise OverflowError(_OVERFLOW_MSG)
    offsets = payload_offsets(out_lengths, block_size)
    payload = np.empty(int(offsets[-1]), dtype=np.uint8)
    _encode_from_deltas_loop(acc, out_lengths, offsets, payload)
    return out_lengths, payload, offsets, zero_after.view(np.bool_) if track else None


def warm_jit_cache(block_size: int = 32) -> None:
    """Compile every JIT kernel on a tiny workload (CI cache warming)."""
    deltas = np.arange(2 * block_size, dtype=np.int64).reshape(2, block_size)
    deltas[0] = 0
    lens, payload, offsets = classify_encode(deltas, block_size)
    decode_blocks(lens, payload, block_size, offsets=offsets)
    decode_selected(
        np.arange(2, dtype=np.int64), lens, offsets, payload, block_size
    )
    reduce_fused(
        np.stack([lens, lens]),
        np.stack([offsets, offsets]),
        [payload, payload],
        np.ones(2, dtype=np.int64),
        block_size,
        track=True,
    )
