"""Per-block scalar kernels: the JIT-compilable reference implementation.

These functions are written in the restricted subset of Python that Numba's
``nopython`` mode compiles — plain loops, scalar arithmetic, no fancy
indexing.  They serve two roles:

* :mod:`repro.kernels.numba_backend` JIT-compiles them verbatim into the
  optional high-performance backend;
* the parity test suite runs them **uncompiled** on small inputs, so the
  exact bit layout they implement is exercised by CI even on hosts without
  Numba.

The byte layout per non-constant block (code length ``c``, block size
``bs``, ``unit = bs // 8``) is fZ-light's, identical to the NumPy backend:

1. ``unit`` sign bytes — one bit per element, MSB-first;
2. ``c // 8`` full byte planes — plane ``k`` holds byte ``k`` (little-
   endian) of every element's magnitude, elements in order;
3. if ``c % 8 != 0``: the residual ``c % 8`` bits of every element,
   bit-packed MSB-first into ``unit * (c % 8)`` bytes.
"""

from __future__ import annotations

__all__ = ["encode_payload_loop", "decode_into_loop"]


def encode_payload_loop(mags, signs, code_lengths, offsets, payload):
    """Serialise every non-constant block's payload bytes.

    Parameters
    ----------
    mags : ``(n_blocks, bs)`` uint32 magnitudes.
    signs : ``(n_blocks, bs)`` bool, True for negative deltas.
    code_lengths : ``(n_blocks,)`` uint8.
    offsets : ``(n_blocks + 1,)`` int64 payload offsets.
    payload : ``(offsets[-1],)`` uint8 output buffer.
    """
    n_blocks, bs = mags.shape
    unit = bs // 8
    for i in range(n_blocks):
        c = int(code_lengths[i])
        if c == 0:
            continue
        pos = int(offsets[i])
        for b in range(unit):
            byte = 0
            base = b * 8
            for j in range(8):
                byte = (byte << 1) | (1 if signs[i, base + j] else 0)
            payload[pos] = byte
            pos += 1
        byte_count = c // 8
        rem = c % 8
        for k in range(byte_count):
            shift = 8 * k
            for e in range(bs):
                payload[pos] = (int(mags[i, e]) >> shift) & 0xFF
                pos += 1
        if rem:
            shift = 8 * byte_count
            mask = (1 << rem) - 1
            accum = 0
            nbits = 0
            for e in range(bs):
                accum = (accum << rem) | ((int(mags[i, e]) >> shift) & mask)
                nbits += rem
                while nbits >= 8:
                    nbits -= 8
                    payload[pos] = (accum >> nbits) & 0xFF
                    pos += 1


def decode_into_loop(indices, code_lengths, offsets, payload, out, sign_buf):
    """Decode blocks ``indices`` into the rows of ``out``.

    Parameters
    ----------
    indices : ``(n_sel,)`` int64 block positions (any order, duplicates ok).
    code_lengths : ``(n_blocks,)`` uint8 for the full stream.
    offsets : ``(n_blocks + 1,)`` int64 for the full stream.
    payload : ``(offsets[-1],)`` uint8.
    out : ``(n_sel, bs)`` signed integer output, fully overwritten.
    sign_buf : ``(bs,)`` uint8 scratch row (hoisted so the loop allocates
        nothing).
    """
    n_sel = indices.shape[0]
    bs = out.shape[1]
    unit = bs // 8
    for s in range(n_sel):
        i = int(indices[s])
        c = int(code_lengths[i])
        if c == 0:
            for e in range(bs):
                out[s, e] = 0
            continue
        pos = int(offsets[i])
        for b in range(unit):
            byte = int(payload[pos])
            pos += 1
            base = b * 8
            for j in range(8):
                sign_buf[base + j] = (byte >> (7 - j)) & 1
        for e in range(bs):
            out[s, e] = 0
        byte_count = c // 8
        rem = c % 8
        for k in range(byte_count):
            shift = 8 * k
            for e in range(bs):
                out[s, e] |= int(payload[pos]) << shift
                pos += 1
        if rem:
            shift = 8 * byte_count
            mask = (1 << rem) - 1
            accum = 0
            nbits = 0
            for e in range(bs):
                while nbits < rem:
                    accum = (accum << 8) | int(payload[pos])
                    pos += 1
                    nbits += 8
                nbits -= rem
                out[s, e] |= ((accum >> nbits) & mask) << shift
        for e in range(bs):
            if sign_buf[e]:
                out[s, e] = -out[s, e]
