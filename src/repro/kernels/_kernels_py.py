"""Per-block scalar kernels: the JIT-compilable reference implementation.

These functions are written in the restricted subset of Python that Numba's
``nopython`` mode compiles — plain loops, scalar arithmetic, no fancy
indexing.  They serve two roles:

* :mod:`repro.kernels.numba_backend` JIT-compiles them verbatim into the
  optional high-performance backend;
* the parity test suite runs them **uncompiled** on small inputs, so the
  exact bit layout they implement is exercised by CI even on hosts without
  Numba.

The byte layout per non-constant block (code length ``c``, block size
``bs``, ``unit = bs // 8``) is fZ-light's, identical to the NumPy backend:

1. ``unit`` sign bytes — one bit per element, MSB-first;
2. ``c // 8`` full byte planes — plane ``k`` holds byte ``k`` (little-
   endian) of every element's magnitude, elements in order;
3. if ``c % 8 != 0``: the residual ``c % 8`` bits of every element,
   bit-packed MSB-first into ``unit * (c % 8)`` bytes.
"""

from __future__ import annotations

try:  # pragma: no cover - the JIT path is exercised in the numba CI job
    from numba import prange
except ImportError:  # uncompiled: prange degrades to a plain serial range
    prange = range

__all__ = [
    "encode_payload_loop",
    "decode_into_loop",
    "classify_blocks_loop",
    "encode_from_deltas_loop",
    "reduce_accumulate_loop",
]


def encode_payload_loop(mags, signs, code_lengths, offsets, payload):
    """Serialise every non-constant block's payload bytes.

    Parameters
    ----------
    mags : ``(n_blocks, bs)`` uint32 magnitudes.
    signs : ``(n_blocks, bs)`` bool, True for negative deltas.
    code_lengths : ``(n_blocks,)`` uint8.
    offsets : ``(n_blocks + 1,)`` int64 payload offsets.
    payload : ``(offsets[-1],)`` uint8 output buffer.
    """
    n_blocks, bs = mags.shape
    unit = bs // 8
    for i in range(n_blocks):
        c = int(code_lengths[i])
        if c == 0:
            continue
        pos = int(offsets[i])
        for b in range(unit):
            byte = 0
            base = b * 8
            for j in range(8):
                byte = (byte << 1) | (1 if signs[i, base + j] else 0)
            payload[pos] = byte
            pos += 1
        byte_count = c // 8
        rem = c % 8
        for k in range(byte_count):
            shift = 8 * k
            for e in range(bs):
                payload[pos] = (int(mags[i, e]) >> shift) & 0xFF
                pos += 1
        if rem:
            shift = 8 * byte_count
            mask = (1 << rem) - 1
            accum = 0
            nbits = 0
            for e in range(bs):
                accum = (accum << rem) | ((int(mags[i, e]) >> shift) & mask)
                nbits += rem
                while nbits >= 8:
                    nbits -= 8
                    payload[pos] = (accum >> nbits) & 0xFF
                    pos += 1


def decode_into_loop(indices, code_lengths, offsets, payload, out, sign_buf):
    """Decode blocks ``indices`` into the rows of ``out``.

    Parameters
    ----------
    indices : ``(n_sel,)`` int64 block positions (any order, duplicates ok).
    code_lengths : ``(n_blocks,)`` uint8 for the full stream.
    offsets : ``(n_blocks + 1,)`` int64 for the full stream.
    payload : ``(offsets[-1],)`` uint8.
    out : ``(n_sel, bs)`` signed integer output, fully overwritten.
    sign_buf : ``(bs,)`` uint8 scratch row (hoisted so the loop allocates
        nothing).
    """
    n_sel = indices.shape[0]
    bs = out.shape[1]
    unit = bs // 8
    for s in range(n_sel):
        i = int(indices[s])
        c = int(code_lengths[i])
        if c == 0:
            for e in range(bs):
                out[s, e] = 0
            continue
        pos = int(offsets[i])
        for b in range(unit):
            byte = int(payload[pos])
            pos += 1
            base = b * 8
            for j in range(8):
                sign_buf[base + j] = (byte >> (7 - j)) & 1
        for e in range(bs):
            out[s, e] = 0
        byte_count = c // 8
        rem = c % 8
        for k in range(byte_count):
            shift = 8 * k
            for e in range(bs):
                out[s, e] |= int(payload[pos]) << shift
                pos += 1
        if rem:
            shift = 8 * byte_count
            mask = (1 << rem) - 1
            accum = 0
            nbits = 0
            for e in range(bs):
                while nbits < rem:
                    accum = (accum << 8) | int(payload[pos])
                    pos += 1
                    nbits += 8
                nbits -= rem
                out[s, e] |= ((accum >> nbits) & mask) << shift
        for e in range(bs):
            if sign_buf[e]:
                out[s, e] = -out[s, e]


# --------------------------------------------------------------------- #
# fused single-pass kernels (classification + serialisation, k-way reduce)
# --------------------------------------------------------------------- #
def classify_blocks_loop(deltas, code_lengths):
    """Per-block classification: write each block's code length.

    One sweep over ``deltas`` computes the max magnitude and its bit width
    per block with no materialised ``abs``/``max`` temporaries.  Thread-
    blocks (rows) are independent, so the outer loop parallelises with
    ``prange`` under the JIT.

    Parameters
    ----------
    deltas : ``(n_blocks, bs)`` signed integer deltas.
    code_lengths : ``(n_blocks,)`` uint8 output, fully overwritten.  Values
        may exceed 32; the caller is responsible for the overflow check
        (``code_lengths.max() > MAX_CODE_LENGTH``).
    """
    n_blocks, bs = deltas.shape
    for i in prange(n_blocks):
        m = 0
        for e in range(bs):
            v = int(deltas[i, e])
            if v < 0:
                v = -v
            if v > m:
                m = v
        c = 0
        while m > 0:
            c += 1
            m >>= 1
        code_lengths[i] = c


def encode_from_deltas_loop(deltas, code_lengths, offsets, payload):
    """Fused serialisation: emit every block's payload straight from deltas.

    Signs and magnitudes are computed inline per element — no ``abs``
    array, no sign mask, no per-group gathers.  Combined with
    :func:`classify_blocks_loop` this is the single-sweep
    ``classify_encode`` kernel: one cheap metadata pass, one payload pass,
    zero full-size temporaries.  Blocks are independent (each writes its
    own ``[offsets[i], offsets[i+1])`` byte range), so the outer loop is a
    ``prange`` under the JIT.

    The byte layout is identical to :func:`encode_payload_loop`.
    """
    n_blocks, bs = deltas.shape
    unit = bs // 8
    for i in prange(n_blocks):
        c = int(code_lengths[i])
        if c == 0:
            continue
        pos = int(offsets[i])
        for b in range(unit):
            byte = 0
            base = b * 8
            for j in range(8):
                byte <<= 1
                if deltas[i, base + j] < 0:
                    byte |= 1
            payload[pos] = byte
            pos += 1
        byte_count = c // 8
        rem = c % 8
        for k in range(byte_count):
            shift = 8 * k
            for e in range(bs):
                v = int(deltas[i, e])
                if v < 0:
                    v = -v
                payload[pos] = (v >> shift) & 0xFF
                pos += 1
        if rem:
            shift = 8 * byte_count
            mask = (1 << rem) - 1
            accum = 0
            nbits = 0
            for e in range(bs):
                v = int(deltas[i, e])
                if v < 0:
                    v = -v
                accum = (accum << rem) | ((v >> shift) & mask)
                nbits += rem
                while nbits >= 8:
                    nbits -= 8
                    payload[pos] = (accum >> nbits) & 0xFF
                    pos += 1


def reduce_accumulate_loop(
    lens_mat,
    offs_mat,
    payload_cat,
    bases,
    weights,
    acc,
    out_lengths,
    zero_after,
    track,
):
    """Fused k-way homomorphic accumulate + classification, one block sweep.

    For every block the loop decodes each contributing operand's elements
    *in place* (sign bits and magnitude planes are random-accessed straight
    from the payload bytes — no scratch rows), accumulates the weighted
    integer predictions into ``acc``, and classifies the result's code
    length — so a block's working set is touched once across all ``k``
    operands instead of once per operand.  Blocks are independent; the
    outer loop is a ``prange`` over thread-blocks under the JIT.

    Parameters
    ----------
    lens_mat : ``(k, n_blocks)`` uint8 code lengths per operand.
    offs_mat : ``(k, n_blocks + 1)`` int64 payload offsets per operand.
    payload_cat : concatenated uint8 payloads of all operands.
    bases : ``(k,)`` int64 — operand ``j``'s payload starts at ``bases[j]``.
    weights : ``(k,)`` int64 integer weights (0 drops the operand).
    acc : ``(n_blocks, bs)`` int64 accumulator, fully overwritten.
    out_lengths : ``(n_blocks,)`` uint8 result code lengths, fully
        overwritten (caller checks the > 32 overflow).
    zero_after : ``(k, n_blocks)`` uint8 — when ``track`` is true, entry
        ``[j, i]`` records whether block ``i``'s partial sum through
        operands ``0..j`` is identically zero (the pairwise-fold
        "constant partial" flag the pipeline statistics are derived from).
    track : bool — skip the ``zero_after`` row scans when false.
    """
    k, n_blocks = lens_mat.shape
    bs = acc.shape[1]
    unit = bs // 8
    for i in prange(n_blocks):
        for e in range(bs):
            acc[i, e] = 0
        for j in range(k):
            w = int(weights[j])
            c = int(lens_mat[j, i])
            if w != 0 and c != 0:
                pos = int(bases[j]) + int(offs_mat[j, i])
                data_base = pos + unit
                byte_count = c // 8
                rem = c % 8
                resid_base = data_base + byte_count * bs
                shift_hi = 8 * byte_count
                mask = (1 << rem) - 1
                for e in range(bs):
                    m = 0
                    for kk in range(byte_count):
                        m |= int(payload_cat[data_base + kk * bs + e]) << (
                            8 * kk
                        )
                    if rem:
                        bitpos = e * rem
                        b0 = resid_base + (bitpos >> 3)
                        off = bitpos & 7
                        if off + rem <= 8:
                            hi = (int(payload_cat[b0]) >> (8 - off - rem)) & mask
                        else:
                            w16 = (int(payload_cat[b0]) << 8) | int(
                                payload_cat[b0 + 1]
                            )
                            hi = (w16 >> (16 - off - rem)) & mask
                        m |= hi << shift_hi
                    sbyte = int(payload_cat[pos + (e >> 3)])
                    if (sbyte >> (7 - (e & 7))) & 1:
                        m = -m
                    acc[i, e] += w * m
            if track:
                z = 1
                for e in range(bs):
                    if acc[i, e] != 0:
                        z = 0
                        break
                zero_after[j, i] = z
        m = 0
        for e in range(bs):
            v = acc[i, e]
            if v < 0:
                v = -v
            if v > m:
                m = v
        c = 0
        while m > 0:
            c += 1
            m >>= 1
        out_lengths[i] = c
