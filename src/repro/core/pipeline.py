"""The request → plan → execute pipeline behind every collective call.

Before this module, every entry point (`HZCCL.allreduce/reduce/bcast`,
``tuned_allreduce``, ``repro mp run``) re-derived the same
config → cluster → codec → schedule → executor wiring inline, so there
was no single object a service could cache, batch, or multiplex.  The
pipeline makes the three stages explicit:

* :class:`CollectiveRequest` — a frozen description of *what* the caller
  wants: op, payload spec, rank count, placement, kernel/codec choice,
  tuning intent.  Hashable, so repeated shapes share plans.
* :class:`Plan` — the resolved *how*: the runner (an existing family
  entry point, chosen by the same dispatch rules the facade used),
  optionally the explicit :class:`~repro.schedule.Schedule` +
  :class:`~repro.schedule.CodecSpec` pair for schedule-backed plans, the
  tuner's pick and cost estimate when tuning.  One :func:`plan` function
  subsumes the static-family dispatch, the tuner lookup, and the
  hierarchical/flat demotion — with identical error messages, picks, and
  (via :func:`execute`) identical ``tuner.*`` counters.
* :func:`execute` — runs a plan: family runners over a
  :class:`~repro.runtime.cluster.SimCluster`, or schedule-backed plans
  on either the simulated :class:`~repro.schedule.ScheduleExecutor` or
  the real multi-process :class:`~repro.schedule.MPExecutor` — same
  ``Plan``, caller's choice of data plane.

:class:`PlanCache` keys plans on (request, network, planning-relevant
config fields, table file stamp), so repeated shapes skip dispatch and
tuner work entirely; hits/misses surface as ``plan.cache.*`` counters
and the cache reports its hit rate (the aggregation service and
``BENCH_service`` read it).  Execution-only config — fault plan, retry,
thread mode, tracing — is *not* part of the key: :func:`execute` reads
it at run time, so a cached plan can never revive a stale fault plan.
"""

from __future__ import annotations

import os
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Callable, Hashable

import numpy as np

from ..collectives import (
    CollectiveResult,
    ccoll_allreduce,
    ccoll_reduce_scatter,
    compressed_bcast,
    hzccl_allreduce,
    hzccl_batched_reduce,
    hzccl_hierarchical_allreduce,
    hzccl_reduce,
    hzccl_reduce_direct,
    hzccl_reduce_scatter,
    mpi_allreduce,
    mpi_bcast,
    mpi_hierarchical_allreduce,
    mpi_reduce,
    mpi_reduce_scatter,
)
from ..kernels.dispatch import use_backend
from ..obs.metrics import METRICS
from ..runtime.cluster import SimCluster
from ..runtime.nodemap import NodeMap
from ..runtime.trace import TraceLog
from ..schedule import (
    CodecSpec,
    Schedule,
    ScheduleExecutor,
    batched_fused_reduce,
    select_inter_family,
)
from ..schedule.tuner import (
    Candidate,
    TuningKey,
    TuningTable,
    fabric_name,
    load_default_table,
    lookup_entry,
    resolve_table_path,
    size_bucket,
)
from .config import DEFAULT_CONFIG, CollectiveConfig

__all__ = [
    "PayloadSpec",
    "CollectiveRequest",
    "Plan",
    "PlanCache",
    "PLAN_CACHE",
    "REQUEST_OPS",
    "plan",
    "execute",
]

_KERNELS = ("hzccl", "ccoll", "mpi")

#: ops a request can carry.  ``batched-reduce`` is the aggregation
#: service's fused coalescing plan; the rest mirror the facade methods.
REQUEST_OPS = (
    "allreduce", "reduce", "bcast", "reduce_scatter", "batched-reduce",
)

_TUNED_OPS = ("allreduce", "reduce", "bcast")


@dataclass(frozen=True)
class PayloadSpec:
    """Shape of one rank's contribution (dtype + element count).

    Static plans dispatch without looking at it (leave the default so
    every payload size shares one cached plan); tuned plans need it for
    the size bucket, batched plans for the cost estimate.
    """

    dtype: str = "float32"
    elements: int = 0

    @property
    def nbytes(self) -> int:
        return self.elements * np.dtype(self.dtype).itemsize

    @classmethod
    def of(cls, array: np.ndarray) -> "PayloadSpec":
        return cls(dtype=str(array.dtype), elements=int(array.size))


@dataclass(frozen=True)
class CollectiveRequest:
    """Frozen description of one collective call (hashable — plans key
    on it).

    ``roughness`` is the classified roughness of the actual data, only
    required when ``tune=True`` (the tuning key needs it); ``sessions``
    is the batch width of a ``batched-reduce`` request.
    """

    op: str
    n_ranks: int
    payload: PayloadSpec = PayloadSpec()
    kernel: str = "hzccl"
    root: int = 0
    nodemap: NodeMap | None = None
    inter: str | None = None
    tune: bool = False
    roughness: str | None = None
    sessions: int = 1

    def __post_init__(self) -> None:
        if self.op not in REQUEST_OPS:
            raise ValueError(
                f"op must be one of {REQUEST_OPS}, got {self.op!r}"
            )
        if self.n_ranks < 1:
            raise ValueError(f"n_ranks must be >= 1, got {self.n_ranks}")
        if self.sessions < 1:
            raise ValueError(f"sessions must be >= 1, got {self.sessions}")
        if self.tune and self.op not in _TUNED_OPS:
            raise ValueError(f"op {self.op!r} is not tunable")


@dataclass
class Plan:
    """A resolved collective: a runner and/or a (schedule, codec spec).

    ``runner(cluster, data) -> CollectiveResult`` wraps an existing
    family entry point, so the plan inherits every family's fault
    handling and degrade contract unchanged; schedule-backed plans also
    carry the explicit ``schedule``/``spec`` pair and run on either
    executor through :func:`execute`.  ``pick`` / ``source`` /
    ``flat_fallback`` record a tuned plan's decision for the ``tuner.*``
    counters; ``cost_s`` is the modelled estimate where the resolution
    produced one (the tuner's entry, the batched plan's dry run).
    """

    request: CollectiveRequest
    config: CollectiveConfig
    family: str
    runner: Callable[[SimCluster, Any], CollectiveResult] | None = None
    schedule: Schedule | None = None
    spec: CodecSpec | None = None
    cost_s: float | None = None
    source: str = "static"
    pick: Candidate | None = None
    flat_fallback: bool = False

    @classmethod
    def from_schedule(
        cls,
        schedule: Schedule,
        spec: CodecSpec,
        config: CollectiveConfig | None = None,
        family: str = "",
    ) -> "Plan":
        """Wrap an explicit (schedule, codec spec) pair — the ``repro
        mp`` path and ad-hoc schedule-backed callers."""
        return cls(
            request=CollectiveRequest(
                op="reduce_scatter", n_ranks=schedule.n_ranks
            ),
            config=config or DEFAULT_CONFIG,
            family=family or schedule.name,
            schedule=schedule,
            spec=spec,
            source="schedule",
        )


class PlanCache:
    """Thread-safe LRU of resolved plans, keyed by request shape.

    Plans are stateless (runners close over frozen config and pure
    entry points), so sharing one across calls — and across the
    service's worker threads — is safe.  Hits/misses are counted both
    locally (``hit_rate()``, reported by ``BENCH_service.json``) and in
    the global registry (``plan.cache.hit`` / ``plan.cache.miss``).
    """

    def __init__(self, maxsize: int = 128):
        if maxsize < 1:
            raise ValueError("maxsize must be >= 1")
        self.maxsize = maxsize
        self._plans: OrderedDict = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._plans)

    def get(self, key: Hashable) -> Plan | None:
        with self._lock:
            cached = self._plans.get(key)
            if cached is not None:
                self._plans.move_to_end(key)
                self.hits += 1
            else:
                self.misses += 1
        if METRICS.enabled:
            METRICS.inc("plan.cache.hit" if cached else "plan.cache.miss")
        return cached

    def put(self, key: Hashable, plan_: Plan) -> None:
        with self._lock:
            self._plans[key] = plan_
            self._plans.move_to_end(key)
            while len(self._plans) > self.maxsize:
                self._plans.popitem(last=False)

    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> dict:
        return {
            "size": len(self),
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hit_rate(),
        }

    def clear(self) -> None:
        with self._lock:
            self._plans.clear()
            self.hits = 0
            self.misses = 0


#: the process-wide default cache every facade call goes through.
PLAN_CACHE = PlanCache()


def _plan_key(request, config, network, rates):
    """Everything the *planning* decision depends on.

    Execution-only config (fault plan, retry, thread mode, tracing) is
    deliberately excluded — :func:`execute` reads it at run time.
    """
    parts = [
        request,
        network,
        config.error_bound,
        config.block_size,
        config.n_threadblocks,
        rates,
    ]
    if request.tune:
        # the resolved table file is part of the decision: key on its
        # identity and stamp so swapping or rewriting it invalidates
        path = resolve_table_path(config)
        stamp = None
        if path is not None and os.path.exists(path):
            st = os.stat(path)
            stamp = (st.st_mtime_ns, st.st_size)
        parts.append((path, stamp))
    return tuple(parts)


def _default_rates():
    # Lazy: core.cost_model imports back into this package's siblings
    # and plan() may never need rates at all.
    from .cost_model import PAPER_BROADWELL

    return PAPER_BROADWELL


# --------------------------------------------------------------------- #
# plan(): one resolver for every entry point
# --------------------------------------------------------------------- #
def _candidate_runner(op, cand, config, request):
    """Map a tuner candidate to its family entry point (one closure)."""
    if op == "allreduce":
        # lazy: tuned.py is a thin wrapper over this module
        from ..collectives.tuned import run_candidate

        nodemap = request.nodemap

        def run(cluster, data):
            return run_candidate(cand, cluster, data, config, nodemap)

        return run
    root = request.root
    if op == "reduce":
        if cand.family == "direct":
            return lambda cl, d: hzccl_reduce_direct(cl, d, config, root=root)
        if cand.codec == "hz":
            return lambda cl, d: hzccl_reduce(cl, d, config, root=root)
        return lambda cl, d: mpi_reduce(cl, d, root=root)
    if op == "bcast":
        if cand.codec == "hz":
            return lambda cl, d: compressed_bcast(cl, d, config, root=root)
        return lambda cl, d: mpi_bcast(cl, d, root=root)
    raise ValueError(f"no tuned dispatch for op {op!r}")


def _tuned_plan(request, config, network, table, rates) -> Plan:
    """The tuner path: table → memo → enumeration, then demotion."""
    if request.roughness is None:
        raise ValueError("tune=True requests need a classified roughness")
    if rates is None:
        rates = _default_rates()
    if table is None:
        table = load_default_table(resolve_table_path(config))
    key = TuningKey(
        op=request.op,
        dtype=request.payload.dtype,
        bucket=size_bucket(request.payload.nbytes),
        n_ranks=request.n_ranks,
        fabric=fabric_name(network),
        roughness=request.roughness,
    )
    entry, source = lookup_entry(key, network, rates, request.nodemap, table)

    cand, cost, flat_fallback = entry.pick, entry.cost_s, False
    if cand.hierarchical and request.nodemap is None:
        cand, cost, flat_fallback = entry.flat_pick, entry.flat_cost_s, True
    return Plan(
        request=request,
        config=config,
        family=cand.slug(),
        runner=_candidate_runner(request.op, cand, config, request),
        cost_s=cost,
        source=source,
        pick=cand,
        flat_fallback=flat_fallback,
    )


def _batched_plan(request, config, rates, network) -> Plan:
    root = request.root
    schedule = batched_fused_reduce(request.n_ranks, request.sessions, root)
    spec = CodecSpec(
        kind="homomorphic",
        error_bound=config.error_bound,
        block_size=config.block_size,
        n_threadblocks=config.n_threadblocks,
    )
    cost = None
    if request.payload.nbytes > 0:
        from ..schedule.cost import HZ_REDUCE, schedule_cost

        cost = schedule_cost(
            schedule,
            HZ_REDUCE,
            request.payload.nbytes * request.sessions,
            rates if rates is not None else _default_rates(),
            network,
        ).total_time
    return Plan(
        request,
        config,
        "batched-fused",
        runner=lambda cl, batch: hzccl_batched_reduce(
            cl, batch, config, root=root
        ),
        schedule=schedule,
        spec=spec,
        cost_s=cost,
    )


def _plan_uncached(request, config, network, table, rates) -> Plan:
    op, kernel = request.op, request.kernel

    if request.tune:
        return _tuned_plan(request, config, network, table, rates)

    if op == "reduce_scatter":
        if kernel == "hzccl":
            return Plan(request, config, "hzccl",
                        lambda cl, d: hzccl_reduce_scatter(cl, d, config))
        if kernel == "ccoll":
            return Plan(request, config, "ccoll",
                        lambda cl, d: ccoll_reduce_scatter(cl, d, config))
        if kernel == "mpi":
            return Plan(request, config, "mpi",
                        lambda cl, d: mpi_reduce_scatter(cl, d))
        raise ValueError(f"kernel must be one of {_KERNELS}, got {kernel!r}")

    if op == "allreduce":
        if request.nodemap is not None:
            nodemap = request.nodemap
            inter = request.inter
            if inter is None:
                # the hierarchical decision point: resolve the inter-node
                # family now so the plan is fully explicit
                inter = select_inter_family(network, nodemap)
            if kernel == "hzccl":
                return Plan(
                    request, config, f"hier-{inter}",
                    lambda cl, d: hzccl_hierarchical_allreduce(
                        cl, d, config, nodemap, inter
                    ),
                )
            if kernel == "mpi":
                return Plan(
                    request, config, f"hier-{inter}",
                    lambda cl, d: mpi_hierarchical_allreduce(
                        cl, d, nodemap, inter
                    ),
                )
            raise ValueError(
                "hierarchical allreduce supports kernels 'hzccl' and "
                f"'mpi', got {kernel!r}"
            )
        if kernel == "hzccl":
            return Plan(request, config, "hzccl",
                        lambda cl, d: hzccl_allreduce(cl, d, config))
        if kernel == "ccoll":
            return Plan(request, config, "ccoll",
                        lambda cl, d: ccoll_allreduce(cl, d, config))
        if kernel == "mpi":
            return Plan(request, config, "mpi",
                        lambda cl, d: mpi_allreduce(cl, d))
        raise ValueError(f"kernel must be one of {_KERNELS}, got {kernel!r}")

    if op == "reduce":
        root = request.root
        if kernel == "hzccl":
            return Plan(request, config, "hzccl",
                        lambda cl, d: hzccl_reduce(cl, d, config, root=root))
        if kernel == "hzccl-direct":
            return Plan(
                request, config, "hzccl-direct",
                lambda cl, d: hzccl_reduce_direct(cl, d, config, root=root),
            )
        if kernel == "mpi":
            return Plan(request, config, "mpi",
                        lambda cl, d: mpi_reduce(cl, d, root=root))
        raise ValueError(
            f"kernel must be 'hzccl', 'hzccl-direct' or 'mpi', got {kernel!r}"
        )

    if op == "bcast":
        root = request.root
        if kernel == "hzccl":
            return Plan(
                request, config, "hzccl",
                lambda cl, d: compressed_bcast(cl, d, config, root=root),
            )
        if kernel == "mpi":
            return Plan(request, config, "mpi",
                        lambda cl, d: mpi_bcast(cl, d, root=root))
        raise ValueError(f"kernel must be 'hzccl' or 'mpi', got {kernel!r}")

    return _batched_plan(request, config, rates, network)


def plan(
    request: CollectiveRequest,
    config: CollectiveConfig | None = None,
    *,
    network=None,
    table: TuningTable | None = None,
    rates=None,
    cache: PlanCache | None = PLAN_CACHE,
) -> Plan:
    """Resolve a request into a :class:`Plan`.

    ``network`` defaults to the config's fabric (pass the cluster's
    when planning for an existing cluster).  An explicit ``table``
    bypasses the cache — its contents are not part of the key;
    ``cache=None`` disables caching for this call.
    """
    config = config or DEFAULT_CONFIG
    if network is None:
        network = config.network
    key = None
    if cache is not None and table is None:
        try:
            key = _plan_key(request, config, network, rates)
        except TypeError:
            key = None  # unhashable rates/network: plan uncached
        if key is not None:
            cached = cache.get(key)
            if cached is not None:
                return cached
    resolved = _plan_uncached(request, config, network, table, rates)
    if key is not None:
        cache.put(key, resolved)
    return resolved


# --------------------------------------------------------------------- #
# execute(): one dispatcher for every data plane
# --------------------------------------------------------------------- #
def _sim_cluster(n_ranks, config, trace):
    return SimCluster(
        n_ranks=n_ranks,
        network=config.network,
        thread_speedup=config.thread_speedup,
        multithread=config.multithread,
        trace=TraceLog() if trace else None,
        faults=config.fault_plan,
        retry=config.retry,
    )


def _mp_cluster_type():
    from ..runtime.mp_cluster import MPCluster

    return MPCluster


def execute(
    plan_: Plan,
    local_data=None,
    *,
    state=None,
    cluster=None,
    config: CollectiveConfig | None = None,
    trace: bool = False,
    fault_plan=None,
    retry=None,
):
    """Run a plan.

    Two calling shapes:

    * ``execute(plan, local_data)`` — the facade path: builds a
      :class:`SimCluster` from the execute-time ``config`` (default:
      the plan's), runs the plan's family runner under the configured
      kernel backend, and emits the tuned path's ``tuner.*`` counters.
      Returns the family's :class:`CollectiveResult`.
    * ``execute(plan, state=..., cluster=...)`` — the schedule path:
      runs the plan's explicit (schedule, spec) pair on whichever data
      plane ``cluster`` is — an ``MPCluster`` dispatches to
      :class:`~repro.schedule.MPExecutor`, anything else (``None``
      builds a fresh simulated cluster) to the simulated
      :class:`~repro.schedule.ScheduleExecutor`.  Returns the
      executor's outcome (state, wire bytes, degraded flag).
    """
    config = config or plan_.config
    if state is not None:
        if plan_.schedule is None or plan_.spec is None:
            raise ValueError(
                "state-based execution needs a schedule-backed plan"
            )
        if isinstance(cluster, _mp_cluster_type()):
            from ..schedule import MPExecutor

            return MPExecutor(
                cluster, plan_.spec, plan=fault_plan, retry=retry
            ).run(plan_.schedule, state)
        if cluster is None:
            if retry is not None:
                cluster = SimCluster(
                    plan_.schedule.n_ranks, faults=fault_plan, retry=retry
                )
            else:
                cluster = SimCluster(plan_.schedule.n_ranks, faults=fault_plan)
        codec = plan_.spec.build(cluster)
        return ScheduleExecutor(cluster, codec).run(plan_.schedule, state)

    if plan_.runner is None:
        raise ValueError("data-based execution needs a runner-backed plan")
    if cluster is None:
        cluster = _sim_cluster(plan_.request.n_ranks, config, trace)
    if plan_.pick is not None and METRICS.enabled:
        METRICS.inc("tuner.lookups")
        METRICS.inc(f"tuner.source.{plan_.source}")
        METRICS.inc(f"tuner.pick.{plan_.pick.slug()}")
        if plan_.flat_fallback:
            METRICS.inc("tuner.flat_fallback")
    with use_backend(config.kernel_backend):
        return plan_.runner(cluster, local_data)
