"""Closed-form cost and error analysis (paper §III-C formulas, symbolic).

The paper derives its co-design advantage analytically:

* Reduce_scatter — ``T_CColl − T_hZCCL = (N−1)(DPR + CPT − HPR) − CPR −
  DPR`` per block (§III-C1): the win is ``(N−1)``-amplified whenever one
  homomorphic fold is cheaper than a decompress-plus-add.
* Allreduce — ``T_CColl − T_hZCCL = (N−1)(DPR − HPR) + (N−1)·CPT``
  (§III-C2).

This module evaluates those operation-count identities on a
:class:`~repro.core.cost_model.CostRates` instance (so the break-even
condition can be inspected directly), and provides the companion *error*
analysis: worst-case and RMS error bounds for the three kernels, which the
integration tests validate against Monte-Carlo functional runs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..utils.validation import ensure_positive, ensure_positive_int
from .cost_model import CostRates

__all__ = [
    "OperationCounts",
    "reduce_scatter_counts",
    "allreduce_counts",
    "cost_advantage_reduce_scatter",
    "cost_advantage_allreduce",
    "hzccl_breakeven_hpr",
    "ErrorBounds",
    "error_bounds",
]


@dataclass(frozen=True)
class OperationCounts:
    """Per-block operation counts of one collective (per rank)."""

    cpr: int
    dpr: int
    cpt: int
    hpr: int

    def cost(self, rates: CostRates, block_bytes: float) -> float:
        """Total compute seconds implied by the counts."""
        return block_bytes * (
            self.cpr * rates.cpr_s_per_byte
            + self.dpr * rates.dpr_s_per_byte
            + self.cpt * rates.cpt_s_per_byte
            + self.hpr * rates.hpr_s_per_byte
        ) + (self.cpr + self.dpr + self.cpt + self.hpr) * rates.op_overhead_s


def reduce_scatter_counts(n: int, kernel: str) -> OperationCounts:
    """§III-C1 operation counts for Reduce_scatter."""
    ensure_positive_int(n, "n")
    if kernel == "ccoll":
        return OperationCounts(cpr=n - 1, dpr=n - 1, cpt=n - 1, hpr=0)
    if kernel == "hzccl":
        return OperationCounts(cpr=n, dpr=1, cpt=0, hpr=n - 1)
    if kernel == "mpi":
        return OperationCounts(cpr=0, dpr=0, cpt=n - 1, hpr=0)
    raise ValueError(f"unknown kernel {kernel!r}")


def allreduce_counts(n: int, kernel: str) -> OperationCounts:
    """§III-C2 operation counts for Allreduce (fused for hZCCL)."""
    ensure_positive_int(n, "n")
    if kernel == "ccoll":
        return OperationCounts(cpr=n, dpr=2 * (n - 1), cpt=n - 1, hpr=0)
    if kernel == "hzccl":
        return OperationCounts(cpr=n, dpr=n - 1, cpt=0, hpr=n - 1)
    if kernel == "mpi":
        return OperationCounts(cpr=0, dpr=0, cpt=n - 1, hpr=0)
    raise ValueError(f"unknown kernel {kernel!r}")


def cost_advantage_reduce_scatter(
    n: int, rates: CostRates, block_bytes: float
) -> float:
    """``T_CColl − T_hZCCL`` for Reduce_scatter (positive ⇒ hZCCL wins).

    Identical to the paper's ``(N−1)(DPR + CPT − HPR) − 1·CPR − 1·DPR``
    (evaluated per block, ignoring the shared network term).
    """
    cc = reduce_scatter_counts(n, "ccoll").cost(rates, block_bytes)
    hz = reduce_scatter_counts(n, "hzccl").cost(rates, block_bytes)
    return cc - hz


def cost_advantage_allreduce(n: int, rates: CostRates, block_bytes: float) -> float:
    """``T_CColl − T_hZCCL`` for Allreduce: ``(N−1)(DPR − HPR) + (N−1)·CPT``."""
    cc = allreduce_counts(n, "ccoll").cost(rates, block_bytes)
    hz = allreduce_counts(n, "hzccl").cost(rates, block_bytes)
    return cc - hz


def hzccl_breakeven_hpr(rates: CostRates) -> float:
    """The HPR rate (s/byte) at which hZCCL stops beating C-Coll.

    From the asymptotic (large-``N``) form of both advantages: hZCCL wins
    iff ``HPR < DPR + CPT``.  Returns that threshold so callers can test a
    measured rate set: ``rates.hpr_s_per_byte < hzccl_breakeven_hpr(rates)``
    is the paper's co-design precondition.  (This is exactly the condition
    our pure-NumPy substrate violates — see EXPERIMENTS.md.)
    """
    return rates.dpr_s_per_byte + rates.cpt_s_per_byte


# ---------------------------------------------------------------------- #
# error propagation
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class ErrorBounds:
    """Worst-case and statistical error bounds for one collective result.

    ``max_error`` is the deterministic guarantee; ``rms_estimate`` models
    each quantisation error as independent Uniform(−eb, eb), giving RMS
    ``eb · sqrt(k/3)`` for ``k`` accumulated quantisations.
    """

    kernel: str
    n: int
    error_bound: float
    max_error: float
    rms_estimate: float


def error_bounds(n: int, error_bound: float, kernel: str) -> ErrorBounds:
    """Error bounds for an ``n``-rank SUM collective at absolute bound eb.

    * ``mpi`` — exact up to float32 summation rounding: both bounds 0 in
      the quantisation model.
    * ``hzccl`` — each input quantised exactly once, reductions exact:
      worst case ``N·eb``; RMS ``eb·sqrt(N/3)``.
    * ``ccoll`` — the running partial is requantised every round, adding
      one more bounded error per round on top of the ``N`` input
      quantisations: worst case ``(2N − 3)·eb`` (N inputs + N−2 requantise
      steps before the final block is produced, with the final round's
      requantisation... folded conservatively); RMS
      ``eb·sqrt((2N − 3)/3)``.
    """
    ensure_positive_int(n, "n")
    ensure_positive(error_bound, "error_bound")
    if kernel == "mpi":
        return ErrorBounds(kernel, n, error_bound, 0.0, 0.0)
    if kernel == "hzccl":
        worst = n * error_bound
        return ErrorBounds(
            kernel, n, error_bound, worst, error_bound * math.sqrt(n / 3.0)
        )
    if kernel == "ccoll":
        k = max(2 * n - 3, 1)
        return ErrorBounds(
            kernel, n, error_bound, k * error_bound, error_bound * math.sqrt(k / 3.0)
        )
    raise ValueError(f"unknown kernel {kernel!r}")
