"""Core public API: facade, configuration, and the §III-C cost model."""

from .analysis import (
    ErrorBounds,
    OperationCounts,
    allreduce_counts,
    cost_advantage_allreduce,
    cost_advantage_reduce_scatter,
    error_bounds,
    hzccl_breakeven_hpr,
    reduce_scatter_counts,
)
from .api import HZCCL
from .config import DEFAULT_CONFIG, CollectiveConfig
from .cost_model import (
    PAPER_BROADWELL,
    CostRates,
    calibrated_config,
    matched_network,
    model_ccoll_allreduce,
    model_ccoll_reduce_scatter,
    model_hzccl_allreduce,
    model_hzccl_hierarchical_allreduce,
    model_hzccl_reduce_scatter,
    model_mpi_allreduce,
    model_mpi_hierarchical_allreduce,
    model_mpi_reduce_scatter,
)

__all__ = [
    "HZCCL",
    "CollectiveConfig",
    "DEFAULT_CONFIG",
    "CostRates",
    "PAPER_BROADWELL",
    "matched_network",
    "calibrated_config",
    "model_mpi_reduce_scatter",
    "model_mpi_allreduce",
    "model_ccoll_reduce_scatter",
    "model_ccoll_allreduce",
    "model_hzccl_reduce_scatter",
    "model_hzccl_allreduce",
    "model_mpi_hierarchical_allreduce",
    "model_hzccl_hierarchical_allreduce",
    "OperationCounts",
    "reduce_scatter_counts",
    "allreduce_counts",
    "cost_advantage_reduce_scatter",
    "cost_advantage_allreduce",
    "hzccl_breakeven_hpr",
    "ErrorBounds",
    "error_bounds",
]
