"""The hZCCL public facade.

One object wires together the compressor, the homomorphic engine, the
simulated cluster, and the three collective families:

>>> import numpy as np
>>> from repro import HZCCL
>>> lib = HZCCL()
>>> data = [np.sin(np.linspace(0, 9, 4096) + r).astype(np.float32)
...         for r in range(4)]
>>> result = lib.allreduce(data)          # homomorphic-compressed ring
>>> baseline = lib.allreduce(data, kernel="mpi")
>>> result.outputs[0].shape == baseline.outputs[0].shape
True
"""

from __future__ import annotations

import numpy as np

from ..collectives import CollectiveResult
from ..collectives.base import validate_local_data
from ..compression.format import CompressedField
from ..compression.fzlight import FZLight
from ..homomorphic.hzdynamic import HZDynamic
from ..kernels.dispatch import use_backend
from ..runtime.cluster import SimCluster
from ..runtime.nodemap import NodeMap
from ..runtime.trace import TraceLog
from ..schedule.tuner import classify_roughness
from .config import CollectiveConfig
from .pipeline import CollectiveRequest, PayloadSpec, execute, plan

__all__ = ["HZCCL"]


class HZCCL:
    """High-level entry point for homomorphic-compressed collectives.

    Parameters
    ----------
    config : collective/testbed configuration; defaults to the paper's
        setup (abs eb 1e-4, 18 compression thread-blocks, Omni-Path model).
    trace : attach a :class:`TraceLog` to every simulated cluster so each
        :class:`CollectiveResult` carries its own scoped trace (``.trace``)
        ready for the :mod:`repro.obs` exporters.  Off by default — the
        disabled path adds no per-charge work.
    """

    def __init__(
        self, config: CollectiveConfig | None = None, trace: bool = False
    ) -> None:
        self.config = config or CollectiveConfig()
        self.trace = trace
        self._compressor = FZLight(
            block_size=self.config.block_size,
            n_threadblocks=self.config.n_threadblocks,
        )
        self._engine = HZDynamic()

    # ------------------------------------------------------------------ #
    # compression surface
    # ------------------------------------------------------------------ #
    def compress(
        self,
        data: np.ndarray,
        abs_eb: float | None = None,
        rel_eb: float | None = None,
    ) -> CompressedField:
        """fZ-light compression (defaults to the config's error bound)."""
        if abs_eb is None and rel_eb is None:
            abs_eb = self.config.error_bound
        with use_backend(self.config.kernel_backend):
            return self._compressor.compress(data, abs_eb=abs_eb, rel_eb=rel_eb)

    def decompress(self, compressed: CompressedField) -> np.ndarray:
        """fZ-light decompression."""
        with use_backend(self.config.kernel_backend):
            return self._compressor.decompress(compressed)

    def homomorphic_sum(
        self, a: CompressedField, b: CompressedField
    ) -> CompressedField:
        """hZ-dynamic reduction directly on two compressed fields."""
        with use_backend(self.config.kernel_backend):
            return self._engine.add(a, b)

    # ------------------------------------------------------------------ #
    # collectives
    # ------------------------------------------------------------------ #
    def _cluster(self, n_ranks: int) -> SimCluster:
        return SimCluster(
            n_ranks=n_ranks,
            network=self.config.network,
            thread_speedup=self.config.thread_speedup,
            multithread=self.config.multithread,
            trace=TraceLog() if self.trace else None,
            faults=self.config.fault_plan,
            retry=self.config.retry,
        )

    def _run(self, request: CollectiveRequest, data) -> CollectiveResult:
        """plan → execute with this facade's config/trace settings."""
        return execute(
            plan(request, self.config), data,
            config=self.config, trace=self.trace,
        )

    def _tuned_request(
        self, op: str, arrays: list[np.ndarray], **extra
    ) -> CollectiveRequest:
        """Build a ``tune=True`` request keyed on the actual data."""
        return CollectiveRequest(
            op=op,
            n_ranks=len(arrays),
            payload=PayloadSpec.of(arrays[0]),
            tune=True,
            roughness=classify_roughness(arrays[0], self.config.error_bound),
            **extra,
        )

    def reduce_scatter(
        self, local_data: list[np.ndarray], kernel: str = "hzccl"
    ) -> CollectiveResult:
        """SUM Reduce_scatter across ``len(local_data)`` simulated ranks."""
        return self._run(
            CollectiveRequest(
                op="reduce_scatter", n_ranks=len(local_data), kernel=kernel
            ),
            local_data,
        )

    def allreduce(
        self,
        local_data: list[np.ndarray],
        kernel: str = "hzccl",
        nodemap: "NodeMap | None" = None,
        inter: str | None = None,
        tune: bool = False,
    ) -> CollectiveResult:
        """SUM Allreduce across ``len(local_data)`` simulated ranks.

        Passing a :class:`~repro.runtime.NodeMap` switches the ``hzccl``
        and ``mpi`` kernels to the two-level hierarchical schedule
        (per-node binomial trees around an inter-node stage over one
        leader per node).  ``inter`` picks the inter-node family
        (``"ring"`` / ``"rabenseifner"``); ``None`` lets
        :func:`~repro.schedule.select_inter_family` read the configured
        fabric.

        ``tune=True`` hands family selection to the schedule autotuner
        (DESIGN.md §13): the pick comes from the persisted tuning table
        (``config.tuning_table_path`` / ``$REPRO_TUNING_TABLE``) or live
        candidate enumeration, keyed on message size, rank count, fabric,
        and the data's measured roughness; ``kernel`` and ``inter`` are
        ignored, ``nodemap`` enables the hierarchical candidates.
        """
        if tune:
            arrays = validate_local_data(local_data)
            return self._run(
                self._tuned_request("allreduce", arrays, nodemap=nodemap),
                arrays,
            )
        return self._run(
            CollectiveRequest(
                op="allreduce",
                n_ranks=len(local_data),
                kernel=kernel,
                nodemap=nodemap,
                inter=inter,
            ),
            local_data,
        )

    def reduce(
        self,
        local_data: list[np.ndarray],
        root: int = 0,
        kernel: str = "hzccl",
        tune: bool = False,
    ) -> CollectiveResult:
        """SUM Reduce to ``root`` (non-root outputs are ``None``).

        ``hzccl`` runs the ring Reduce_scatter + compressed gather;
        ``hzccl-direct`` gathers whole compressed vectors and folds them at
        the root with one fused k-way homomorphic reduction (best at
        small/medium rank counts); ``mpi`` is the plain baseline.
        ``tune=True`` asks the autotuner instead (``kernel`` is ignored).
        """
        if tune:
            arrays = validate_local_data(local_data)
            return self._run(
                self._tuned_request("reduce", arrays, root=root), arrays
            )
        return self._run(
            CollectiveRequest(
                op="reduce", n_ranks=len(local_data), kernel=kernel, root=root
            ),
            local_data,
        )

    def bcast(
        self,
        data: np.ndarray,
        n_ranks: int,
        root: int = 0,
        kernel: str = "hzccl",
        tune: bool = False,
    ) -> CollectiveResult:
        """Broadcast ``data`` from ``root`` to ``n_ranks`` simulated ranks.

        The ``hzccl`` kernel broadcasts the compressed stream (lossy within
        the configured error bound on non-root ranks); ``mpi`` is exact.
        ``tune=True`` asks the autotuner instead (``kernel`` is ignored).
        """
        if tune:
            array = np.ascontiguousarray(data)
            request = CollectiveRequest(
                op="bcast",
                n_ranks=n_ranks,
                payload=PayloadSpec.of(array),
                root=root,
                tune=True,
                roughness=classify_roughness(array, self.config.error_bound),
            )
            return self._run(request, array)
        return self._run(
            CollectiveRequest(
                op="bcast", n_ranks=n_ranks, kernel=kernel, root=root
            ),
            data,
        )

    def batched_reduce(
        self, batch: list[list[np.ndarray]], root: int = 0
    ) -> CollectiveResult:
        """Fused SUM Reduce of several same-shaped sessions in one pass.

        ``batch[s][i]`` is session ``s``'s contribution on rank ``i``.
        Every rank compresses each session vector once, the root folds
        each session with one fused k-way homomorphic reduction, and
        ``outputs[s]`` is session ``s``'s reduced vector — bit-identical
        to ``len(batch)`` independent ``reduce`` calls (the aggregation
        service's coalescing path).
        """
        if not batch:
            raise ValueError("batched_reduce needs at least one session")
        first = validate_local_data(batch[0])
        request = CollectiveRequest(
            op="batched-reduce",
            n_ranks=len(first),
            payload=PayloadSpec.of(first[0]),
            root=root,
            sessions=len(batch),
        )
        return self._run(request, batch)
