"""The hZCCL public facade.

One object wires together the compressor, the homomorphic engine, the
simulated cluster, and the three collective families:

>>> import numpy as np
>>> from repro import HZCCL
>>> lib = HZCCL()
>>> data = [np.sin(np.linspace(0, 9, 4096) + r).astype(np.float32)
...         for r in range(4)]
>>> result = lib.allreduce(data)          # homomorphic-compressed ring
>>> baseline = lib.allreduce(data, kernel="mpi")
>>> result.outputs[0].shape == baseline.outputs[0].shape
True
"""

from __future__ import annotations

import numpy as np

from ..collectives import (
    CollectiveResult,
    ccoll_allreduce,
    ccoll_reduce_scatter,
    compressed_bcast,
    hzccl_allreduce,
    hzccl_hierarchical_allreduce,
    hzccl_reduce,
    hzccl_reduce_direct,
    hzccl_reduce_scatter,
    mpi_allreduce,
    mpi_hierarchical_allreduce,
    mpi_bcast,
    mpi_reduce,
    mpi_reduce_scatter,
    tuned_allreduce,
)
from ..compression.format import CompressedField
from ..compression.fzlight import FZLight
from ..homomorphic.hzdynamic import HZDynamic
from ..kernels.dispatch import use_backend
from ..runtime.cluster import SimCluster
from ..runtime.nodemap import NodeMap
from ..runtime.trace import TraceLog
from .config import CollectiveConfig

__all__ = ["HZCCL"]

_KERNELS = ("hzccl", "ccoll", "mpi")


class HZCCL:
    """High-level entry point for homomorphic-compressed collectives.

    Parameters
    ----------
    config : collective/testbed configuration; defaults to the paper's
        setup (abs eb 1e-4, 18 compression thread-blocks, Omni-Path model).
    trace : attach a :class:`TraceLog` to every simulated cluster so each
        :class:`CollectiveResult` carries its own scoped trace (``.trace``)
        ready for the :mod:`repro.obs` exporters.  Off by default — the
        disabled path adds no per-charge work.
    """

    def __init__(
        self, config: CollectiveConfig | None = None, trace: bool = False
    ) -> None:
        self.config = config or CollectiveConfig()
        self.trace = trace
        self._compressor = FZLight(
            block_size=self.config.block_size,
            n_threadblocks=self.config.n_threadblocks,
        )
        self._engine = HZDynamic()

    # ------------------------------------------------------------------ #
    # compression surface
    # ------------------------------------------------------------------ #
    def compress(
        self,
        data: np.ndarray,
        abs_eb: float | None = None,
        rel_eb: float | None = None,
    ) -> CompressedField:
        """fZ-light compression (defaults to the config's error bound)."""
        if abs_eb is None and rel_eb is None:
            abs_eb = self.config.error_bound
        with use_backend(self.config.kernel_backend):
            return self._compressor.compress(data, abs_eb=abs_eb, rel_eb=rel_eb)

    def decompress(self, compressed: CompressedField) -> np.ndarray:
        """fZ-light decompression."""
        with use_backend(self.config.kernel_backend):
            return self._compressor.decompress(compressed)

    def homomorphic_sum(
        self, a: CompressedField, b: CompressedField
    ) -> CompressedField:
        """hZ-dynamic reduction directly on two compressed fields."""
        with use_backend(self.config.kernel_backend):
            return self._engine.add(a, b)

    # ------------------------------------------------------------------ #
    # collectives
    # ------------------------------------------------------------------ #
    def _cluster(self, n_ranks: int) -> SimCluster:
        return SimCluster(
            n_ranks=n_ranks,
            network=self.config.network,
            thread_speedup=self.config.thread_speedup,
            multithread=self.config.multithread,
            trace=TraceLog() if self.trace else None,
            faults=self.config.fault_plan,
            retry=self.config.retry,
        )

    def reduce_scatter(
        self, local_data: list[np.ndarray], kernel: str = "hzccl"
    ) -> CollectiveResult:
        """SUM Reduce_scatter across ``len(local_data)`` simulated ranks."""
        cluster = self._cluster(len(local_data))
        with use_backend(self.config.kernel_backend):
            if kernel == "hzccl":
                return hzccl_reduce_scatter(cluster, local_data, self.config)
            if kernel == "ccoll":
                return ccoll_reduce_scatter(cluster, local_data, self.config)
            if kernel == "mpi":
                return mpi_reduce_scatter(cluster, local_data)
        raise ValueError(f"kernel must be one of {_KERNELS}, got {kernel!r}")

    def allreduce(
        self,
        local_data: list[np.ndarray],
        kernel: str = "hzccl",
        nodemap: "NodeMap | None" = None,
        inter: str | None = None,
        tune: bool = False,
    ) -> CollectiveResult:
        """SUM Allreduce across ``len(local_data)`` simulated ranks.

        Passing a :class:`~repro.runtime.NodeMap` switches the ``hzccl``
        and ``mpi`` kernels to the two-level hierarchical schedule
        (per-node binomial trees around an inter-node stage over one
        leader per node).  ``inter`` picks the inter-node family
        (``"ring"`` / ``"rabenseifner"``); ``None`` lets
        :func:`~repro.schedule.select_inter_family` read the configured
        fabric.

        ``tune=True`` hands family selection to the schedule autotuner
        (DESIGN.md §13): the pick comes from the persisted tuning table
        (``config.tuning_table_path`` / ``$REPRO_TUNING_TABLE``) or live
        candidate enumeration, keyed on message size, rank count, fabric,
        and the data's measured roughness; ``kernel`` and ``inter`` are
        ignored, ``nodemap`` enables the hierarchical candidates.
        """
        cluster = self._cluster(len(local_data))
        with use_backend(self.config.kernel_backend):
            if tune:
                return tuned_allreduce(
                    cluster, local_data, self.config, nodemap=nodemap
                )
            if nodemap is not None:
                if kernel == "hzccl":
                    return hzccl_hierarchical_allreduce(
                        cluster, local_data, self.config, nodemap, inter
                    )
                if kernel == "mpi":
                    return mpi_hierarchical_allreduce(
                        cluster, local_data, nodemap, inter
                    )
                raise ValueError(
                    "hierarchical allreduce supports kernels 'hzccl' and "
                    f"'mpi', got {kernel!r}"
                )
            if kernel == "hzccl":
                return hzccl_allreduce(cluster, local_data, self.config)
            if kernel == "ccoll":
                return ccoll_allreduce(cluster, local_data, self.config)
            if kernel == "mpi":
                return mpi_allreduce(cluster, local_data)
        raise ValueError(f"kernel must be one of {_KERNELS}, got {kernel!r}")

    def reduce(
        self, local_data: list[np.ndarray], root: int = 0, kernel: str = "hzccl"
    ) -> CollectiveResult:
        """SUM Reduce to ``root`` (non-root outputs are ``None``).

        ``hzccl`` runs the ring Reduce_scatter + compressed gather;
        ``hzccl-direct`` gathers whole compressed vectors and folds them at
        the root with one fused k-way homomorphic reduction (best at
        small/medium rank counts); ``mpi`` is the plain baseline.
        """
        cluster = self._cluster(len(local_data))
        with use_backend(self.config.kernel_backend):
            if kernel == "hzccl":
                return hzccl_reduce(cluster, local_data, self.config, root=root)
            if kernel == "hzccl-direct":
                return hzccl_reduce_direct(
                    cluster, local_data, self.config, root=root
                )
            if kernel == "mpi":
                return mpi_reduce(cluster, local_data, root=root)
        raise ValueError(
            f"kernel must be 'hzccl', 'hzccl-direct' or 'mpi', got {kernel!r}"
        )

    def bcast(
        self, data: np.ndarray, n_ranks: int, root: int = 0, kernel: str = "hzccl"
    ) -> CollectiveResult:
        """Broadcast ``data`` from ``root`` to ``n_ranks`` simulated ranks.

        The ``hzccl`` kernel broadcasts the compressed stream (lossy within
        the configured error bound on non-root ranks); ``mpi`` is exact.
        """
        cluster = self._cluster(n_ranks)
        with use_backend(self.config.kernel_backend):
            if kernel == "hzccl":
                return compressed_bcast(cluster, data, self.config, root=root)
            if kernel == "mpi":
                return mpi_bcast(cluster, data, root=root)
        raise ValueError(f"kernel must be 'hzccl' or 'mpi', got {kernel!r}")
