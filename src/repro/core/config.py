"""Configuration for hZCCL collectives and the simulated testbed."""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from ..runtime.faults import FaultPlan, RetryPolicy
from ..runtime.network import OMNIPATH_100G, NetworkModel
from ..utils.validation import ensure_positive, ensure_positive_int

__all__ = ["CollectiveConfig", "DEFAULT_CONFIG"]


@dataclass(frozen=True)
class CollectiveConfig:
    """Knobs shared by every collective run.

    Defaults follow the paper's experimental setup (§IV-A): absolute error
    bound 1e-4, 32-element blocks, 18 compression threads (one Broadwell
    socket) inside collectives, 100 Gbps Omni-Path.

    ``fault_plan`` (``None`` = healthy fabric) injects seeded faults on
    every delivery; ``retry`` governs the timeout/backoff retransmission
    schedule (see DESIGN.md §8).

    ``kernel_backend`` selects the fixed-length kernel implementation
    (``"auto"``, ``"numpy"``, or ``"numba"`` — see DESIGN.md §9); every
    backend emits byte-identical streams, so ranks may disagree on it.

    ``tuning_table_path`` points autotuned collectives
    (``HZCCL.allreduce(tune=True)``, :func:`repro.collectives.tuned_allreduce`)
    at a persisted :class:`~repro.schedule.tuner.TuningTable`; ``None``
    falls back to ``$REPRO_TUNING_TABLE``, then to live enumeration
    (see DESIGN.md §13).
    """

    error_bound: float = 1e-4  # absolute, like the paper's collectives
    block_size: int = 32
    n_threadblocks: int = 18
    multithread: bool = False
    thread_speedup: float = 6.0  # MT-vs-ST compressor scaling (DESIGN.md §1)
    network: NetworkModel = field(default_factory=lambda: OMNIPATH_100G)
    fault_plan: FaultPlan | None = None
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    kernel_backend: str = "auto"
    tuning_table_path: str | None = None

    def __post_init__(self) -> None:
        ensure_positive(self.error_bound, "error_bound")
        ensure_positive_int(self.n_threadblocks, "n_threadblocks")
        ensure_positive(self.thread_speedup, "thread_speedup")
        if self.block_size % 8 or self.block_size <= 0:
            raise ValueError("block_size must be a positive multiple of 8")
        if not isinstance(self.kernel_backend, str) or not self.kernel_backend:
            raise ValueError("kernel_backend must be a non-empty string")
        if self.tuning_table_path is not None and (
            not isinstance(self.tuning_table_path, str)
            or not self.tuning_table_path
        ):
            raise ValueError("tuning_table_path must be None or a non-empty string")

    def with_mode(self, multithread: bool) -> "CollectiveConfig":
        """Same config in the other thread mode."""
        return replace(self, multithread=multithread)

    def with_faults(
        self, plan: FaultPlan | None, retry: RetryPolicy | None = None
    ) -> "CollectiveConfig":
        """Same config with a fault plan (and optionally a retry policy)."""
        return replace(
            self, fault_plan=plan, retry=retry if retry is not None else self.retry
        )


DEFAULT_CONFIG = CollectiveConfig()
