"""Analytic cost model for the collectives (paper §III-C formulas).

The figure-scale experiments (64–512 nodes, up to 646 MB messages) cannot
be executed functionally in Python in reasonable time, and the absolute
speed of our NumPy kernels differs from the paper's C/OpenMP kernels.  The
model closes both gaps:

* the **per-round cost formulas** are the paper's own (Section III-C):
  C-Coll Reduce_scatter pays ``(N−1)(CPR+DPR+CPT)``, hZCCL pays
  ``N·CPR + (N−1)·HPR + DPR``, etc.;
* the **charge rates** (seconds per input byte for CPR/DPR/HPR/CPT) come
  either from :meth:`CostRates.measure` — measured on *this* machine with
  *this* repo's kernels on a data sample — or from
  :data:`PAPER_BROADWELL`, rates back-derived from the paper's published
  throughput numbers;
* the **network** is the α–β–congestion model.  When combining *measured*
  Python rates with the network, use :func:`matched_network` to scale link
  bandwidth by the substrate-speed ratio, preserving the compute:network
  balance of the paper's testbed (the balance, not the absolute GB/s, is
  what decides who wins — DESIGN.md §1).

Thread modes: rates are single-thread; multi-thread divides the
compute-family rates by ``thread_speedup``.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from ..compression.fzlight import FZLight
from ..homomorphic.hzdynamic import HZDynamic
from ..runtime.clock import Breakdown
from ..runtime.network import NetworkModel
from ..runtime.nodemap import NodeMap
from ..schedule import (
    DOC_GATHER,
    DOC_REDUCE,
    HZ_GATHER,
    HZ_REDUCE,
    PLAIN,
    combine,
    direct_reduce,
    hierarchical_allreduce_schedule,
    pipelined_ring_reduce_scatter,
    ring_allgather,
    ring_reduce_scatter,
    schedule_cost,
    select_inter_family,
)
from ..utils.validation import ensure_positive, ensure_positive_int

__all__ = [
    "CostRates",
    "PAPER_BROADWELL",
    "matched_network",
    "calibrated_config",
    "model_mpi_reduce_scatter",
    "model_mpi_allreduce",
    "model_ccoll_reduce_scatter",
    "model_ccoll_allreduce",
    "model_hzccl_reduce_scatter",
    "model_hzccl_allreduce",
    "model_hzccl_allreduce_pipelined",
    "model_hzccl_reduce",
    "model_mpi_hierarchical_allreduce",
    "model_hzccl_hierarchical_allreduce",
]


@dataclass(frozen=True)
class CostRates:
    """Per-byte single-thread charge rates plus the compression ratio.

    All rates are seconds per byte of *uncompressed* input processed;
    ``ratio`` converts message sizes.  ``hpr_s_per_byte`` is the time to
    homomorphically fold one incoming compressed block, per byte of the
    block's uncompressed size.
    """

    cpr_s_per_byte: float
    dpr_s_per_byte: float
    hpr_s_per_byte: float
    cpt_s_per_byte: float
    ratio: float
    #: Fixed cost per kernel invocation (setup, thread fork/join).  This is
    #: what makes Reduce_scatter speedups *dip* at very high node counts
    #: (Fig. 10): blocks shrink with N while the per-op count grows, so the
    #: compression-frequency overhead the paper describes starts to bite.
    op_overhead_s: float = 1e-4
    #: Per-operand decode (inverse fixed-length encode) and one-shot encode
    #: rates behind the fused k-way fold: a fused reduce of ``k`` operands
    #: charges ``k·IFE + 1·FE`` per byte instead of ``(k−1)·HPR``.  When
    #: left ``None`` they are derived from ``hpr_s_per_byte`` so that the
    #: pairwise case is unchanged: ``fused_hpr_s_per_byte(2) == hpr``.
    ife_s_per_byte: float | None = None
    fe_s_per_byte: float | None = None

    def __post_init__(self) -> None:
        for name in ("cpr_s_per_byte", "dpr_s_per_byte", "hpr_s_per_byte", "cpt_s_per_byte"):
            ensure_positive(getattr(self, name), name)
        ensure_positive(self.ratio, "ratio")
        if self.op_overhead_s < 0:
            raise ValueError("op_overhead_s must be >= 0")
        if self.ife_s_per_byte is None:
            object.__setattr__(self, "ife_s_per_byte", self.hpr_s_per_byte / 4.0)
        if self.fe_s_per_byte is None:
            object.__setattr__(self, "fe_s_per_byte", self.hpr_s_per_byte / 2.0)
        ensure_positive(self.ife_s_per_byte, "ife_s_per_byte")
        ensure_positive(self.fe_s_per_byte, "fe_s_per_byte")

    def fused_hpr_s_per_byte(self, k: int) -> float:
        """Per-byte charge for one fused ``k``-way homomorphic fold.

        The fused kernel decodes each operand's deltas once and re-encodes
        the accumulated sum once — ``k·IFE + 1·FE`` — versus the pairwise
        fold's ``(k−1)·(2·IFE + FE) = (k−1)·HPR``.  With the derived
        default split the two agree at ``k = 2`` and the fused charge grows
        sub-linearly in ``k`` relative to the fold.
        """
        ensure_positive_int(k, "k")
        return k * self.ife_s_per_byte + self.fe_s_per_byte

    def scaled(self, thread_speedup: float) -> "CostRates":
        """Multi-thread rates (compute family divided by the speedup)."""
        ensure_positive(thread_speedup, "thread_speedup")
        return replace(
            self,
            cpr_s_per_byte=self.cpr_s_per_byte / thread_speedup,
            dpr_s_per_byte=self.dpr_s_per_byte / thread_speedup,
            hpr_s_per_byte=self.hpr_s_per_byte / thread_speedup,
            cpt_s_per_byte=self.cpt_s_per_byte / thread_speedup,
            ife_s_per_byte=self.ife_s_per_byte / thread_speedup,
            fe_s_per_byte=self.fe_s_per_byte / thread_speedup,
        )

    # ------------------------------------------------------------------ #
    @classmethod
    def measure(
        cls,
        sample_a: np.ndarray,
        sample_b: np.ndarray,
        error_bound: float,
        block_size: int = 32,
        n_threadblocks: int = 18,
        repeats: int = 3,
    ) -> "CostRates":
        """Measure this repo's kernels on an operand pair.

        The sample should be a representative slice of the experiment's
        dataset — rates (and the ratio) are data-dependent, exactly like
        the paper's per-dataset throughput tables.
        """
        import time

        a = np.ascontiguousarray(sample_a, dtype=np.float32).ravel()
        b = np.ascontiguousarray(sample_b, dtype=np.float32).ravel()
        comp = FZLight(block_size=block_size, n_threadblocks=n_threadblocks)
        engine = HZDynamic(collect_stats=False)
        nbytes = a.nbytes

        def best(fn) -> float:
            times = []
            for _ in range(repeats):
                t0 = time.perf_counter()
                fn()
                times.append(time.perf_counter() - t0)
            return min(times)

        ca = comp.compress(a, abs_eb=error_bound)
        cb = comp.compress(b, abs_eb=error_bound)
        da = comp.decompress(ca)
        db = comp.decompress(cb)
        t_cpr = best(lambda: comp.compress(a, abs_eb=error_bound))
        t_dpr = best(lambda: comp.decompress(ca))
        t_hpr = best(lambda: engine.add(ca, cb))
        t_cpt = best(lambda: np.add(da, db))
        # the fused k-way fold's IFE/FE split, measured on the raw codec
        from ..compression.encoding import decode_blocks, encode_blocks

        deltas = decode_blocks(ca.code_lengths, ca.payload, block_size)
        t_ife = best(lambda: decode_blocks(ca.code_lengths, ca.payload, block_size))
        t_fe = best(lambda: encode_blocks(deltas, block_size))
        return cls(
            cpr_s_per_byte=t_cpr / nbytes,
            dpr_s_per_byte=t_dpr / nbytes,
            hpr_s_per_byte=t_hpr / nbytes,
            cpt_s_per_byte=t_cpt / nbytes,
            ratio=ca.compression_ratio,
            ife_s_per_byte=t_ife / nbytes,
            fe_s_per_byte=t_fe / nbytes,
        )


#: Rates back-derived from the paper's Broadwell numbers (single-thread).
#:
#: Derivation, all at abs eb 1e-4 on the RTM data.  The kernels are
#: memory-bound, so one core sustains a disproportionate share of the
#: socket's bandwidth (Table IV shows fZ-light at 59–94 % of STREAM peak
#: with 36 threads; 18-thread scaling is therefore ~6×, the default
#: ``thread_speedup``, not 18×):
#:   * fZ-light compression: 59 % of one-core STREAM share ≈ 5 GB/s ST
#:   * fZ-light decompression: ~90 % memory efficiency ≈ 12 GB/s ST
#:   * hZ-dynamic: Table VI Sim-1 64.3 GB/s over two inputs at 36T
#:     → 32.2 GB/s per input byte → ST ≈ 32.2/3 ≈ 10.7 GB/s (HPR is
#:     dominated by the lightweight copy pipelines, which scale worse
#:     than 6× because they are already at the copy-bandwidth floor)
#:   * float add: one-core STREAM add ≈ 8 GB/s
#:   * ratio 9.21 (Table VI, Sim-1, 1e-4)
#:   * per-invocation overhead 100 µs (OpenMP fork/join + buffer setup;
#:     this is what reproduces the high-node-count speedup dip of Fig. 10)
PAPER_BROADWELL = CostRates(
    cpr_s_per_byte=1.0 / 5.0e9,
    dpr_s_per_byte=1.0 / 12.0e9,
    hpr_s_per_byte=1.0 / 10.7e9,
    cpt_s_per_byte=1.0 / 8.0e9,
    ratio=9.21,
)


def calibrated_config(
    sample: np.ndarray,
    error_bound: float,
    multithread: bool = False,
    reference: "CostRates | None" = None,
):
    """Build a :class:`~repro.core.config.CollectiveConfig` whose network is
    matched to this machine's kernel speed.

    Measures the kernels on ``sample`` (split into an operand pair) and
    scales the Omni-Path model so the compute:network balance matches the
    paper's testbed — the right setting for *functional* collective runs
    whose simulated times should be meaningful (see DESIGN.md §1).
    """
    from ..runtime.network import OMNIPATH_100G
    from .config import CollectiveConfig

    flat = np.ascontiguousarray(sample, dtype=np.float32).ravel()
    half = flat.size // 2
    if half < 1024:
        raise ValueError("sample too small to calibrate (need ≥ 2048 elements)")
    rates = CostRates.measure(flat[:half], flat[half : 2 * half], error_bound, repeats=2)
    network = matched_network(
        OMNIPATH_100G, rates, reference or PAPER_BROADWELL
    )
    return CollectiveConfig(
        error_bound=error_bound, network=network, multithread=multithread
    )


def matched_network(
    network: NetworkModel, measured: CostRates, reference: CostRates = PAPER_BROADWELL
) -> NetworkModel:
    """Scale link bandwidth so compute:network balance matches the testbed.

    When rates are *measured* on this machine (Python kernels, one stream),
    running them against a full-speed 100 Gbps model would make compression
    look uniformly useless — the opposite end of the substitution error
    would make it look uniformly great.  Scaling bandwidth by the ratio of
    measured to reference compression speed keeps the balance that decides
    every crossover in Figures 9–12.
    """
    scale = reference.cpr_s_per_byte / measured.cpr_s_per_byte
    if not 1e-6 <= scale <= 1e3:
        raise ValueError(f"implausible substrate scale {scale}")
    return replace(network, bandwidth_Bps=network.bandwidth_Bps * scale)


# ---------------------------------------------------------------------- #
# §III-C round models — analytic dry runs of the executor's schedules
# ---------------------------------------------------------------------- #
# Every model below prices the *same* Schedule object the functional
# executor runs (repro.schedule.generators), paired with the matching
# charge Discipline instead of a PayloadCodec.  The closed forms of
# §III-C — (N−1)(CPR+DPR+CPT) for C-Coll, N·CPR+(N−1)·HPR+1·DPR for
# hZCCL, and so on — fall out of the round walk instead of being
# hand-derived per family, so a new schedule generator is priced for
# free (see model_hzccl_allreduce_pipelined).


def _args(n_nodes: int, total_bytes: int) -> None:
    ensure_positive_int(n_nodes, "n_nodes")
    ensure_positive(total_bytes, "total_bytes")


def model_mpi_reduce_scatter(
    n_nodes: int,
    total_bytes: int,
    rates: CostRates,
    network: NetworkModel,
    multithread: bool = False,
    thread_speedup: float = 6.0,
) -> Breakdown:
    """Plain ring Reduce_scatter: ``(N−1)`` rounds of send + local add."""
    _args(n_nodes, total_bytes)
    return schedule_cost(
        ring_reduce_scatter(n_nodes), PLAIN, total_bytes, rates, network,
        multithread, thread_speedup,
    )


def model_mpi_allreduce(
    n_nodes: int,
    total_bytes: int,
    rates: CostRates,
    network: NetworkModel,
    multithread: bool = False,
    thread_speedup: float = 6.0,
) -> Breakdown:
    """Plain ring Allreduce = Reduce_scatter + Allgather."""
    _args(n_nodes, total_bytes)
    return combine(
        schedule_cost(
            ring_reduce_scatter(n_nodes), PLAIN, total_bytes, rates,
            network, multithread, thread_speedup,
        ),
        schedule_cost(
            ring_allgather(n_nodes), PLAIN, total_bytes, rates, network,
            multithread, thread_speedup,
        ),
    )


def model_ccoll_reduce_scatter(
    n_nodes: int,
    total_bytes: int,
    rates: CostRates,
    network: NetworkModel,
    multithread: bool = False,
    thread_speedup: float = 6.0,
) -> Breakdown:
    """C-Coll: ``(N−1)(CPR + DPR + CPT)`` plus compressed transfers."""
    _args(n_nodes, total_bytes)
    return schedule_cost(
        ring_reduce_scatter(n_nodes), DOC_REDUCE, total_bytes, rates,
        network, multithread, thread_speedup,
    )


def model_ccoll_allreduce(
    n_nodes: int,
    total_bytes: int,
    rates: CostRates,
    network: NetworkModel,
    multithread: bool = False,
    thread_speedup: float = 6.0,
) -> Breakdown:
    """C-Coll Allreduce: ``N·CPR + 2(N−1)·DPR + (N−1)·CPT`` (§III-C2)."""
    _args(n_nodes, total_bytes)
    return combine(
        schedule_cost(
            ring_reduce_scatter(n_nodes), DOC_REDUCE, total_bytes, rates,
            network, multithread, thread_speedup,
        ),
        schedule_cost(
            ring_allgather(n_nodes), DOC_GATHER, total_bytes, rates,
            network, multithread, thread_speedup,
        ),
    )


def model_hzccl_reduce_scatter(
    n_nodes: int,
    total_bytes: int,
    rates: CostRates,
    network: NetworkModel,
    multithread: bool = False,
    thread_speedup: float = 6.0,
) -> Breakdown:
    """hZCCL: ``N·CPR + (N−1)·HPR + 1·DPR`` plus compressed transfers."""
    _args(n_nodes, total_bytes)
    return schedule_cost(
        ring_reduce_scatter(n_nodes), HZ_REDUCE, total_bytes, rates,
        network, multithread, thread_speedup,
    )


def model_hzccl_allreduce(
    n_nodes: int,
    total_bytes: int,
    rates: CostRates,
    network: NetworkModel,
    multithread: bool = False,
    thread_speedup: float = 6.0,
) -> Breakdown:
    """hZCCL fused Allreduce: ``N·CPR + (N−1)·HPR + (N−1)·DPR`` (§III-C2).

    The Reduce_scatter stage runs with ``finalize=False`` (the fused
    hand-off: its output stays compressed) and the Allgather stage's final
    decompression covers all gathered chunks in one batched kernel call.
    """
    _args(n_nodes, total_bytes)
    return combine(
        schedule_cost(
            ring_reduce_scatter(n_nodes, finalize=False), HZ_REDUCE,
            total_bytes, rates, network, multithread, thread_speedup,
        ),
        schedule_cost(
            ring_allgather(n_nodes), HZ_GATHER, total_bytes, rates,
            network, multithread, thread_speedup,
        ),
    )


def model_hzccl_allreduce_pipelined(
    n_nodes: int,
    total_bytes: int,
    rates: CostRates,
    network: NetworkModel,
    multithread: bool = False,
    thread_speedup: float = 6.0,
    n_chunks: int = 2,
) -> Breakdown:
    """Chunk-pipelined hZCCL Allreduce: wire time overlaps the HPR folds.

    Prices :func:`~repro.schedule.pipelined_ring_reduce_scatter`: every
    ring round is split into ``n_chunks`` sub-rounds whose transfers
    overlap the previous chunk's homomorphic fold, so each sub-round
    costs ``max(wire, HPR)`` instead of ``wire + HPR``.  The buckets
    still report the full charged work — ``total_time`` is the sum of
    round *makespans* and is deliberately below the bucket sum whenever
    the overlap hides anything.
    """
    _args(n_nodes, total_bytes)
    return combine(
        schedule_cost(
            pipelined_ring_reduce_scatter(n_nodes, n_chunks, finalize=False),
            HZ_REDUCE, total_bytes, rates, network, multithread,
            thread_speedup,
        ),
        schedule_cost(
            ring_allgather(n_nodes, chunks=n_chunks), HZ_GATHER,
            total_bytes, rates, network, multithread, thread_speedup,
        ),
    )


def model_hzccl_reduce(
    n_nodes: int,
    total_bytes: int,
    rates: CostRates,
    network: NetworkModel,
    multithread: bool = False,
    thread_speedup: float = 6.0,
) -> Breakdown:
    """hZCCL direct rooted Reduce: flat gather + one fused ``N``-way fold.

    Every rank compresses its full vector in parallel (one CPR over
    ``total_bytes``), the ``N − 1`` compressed streams converge on the root
    (incast: the root's link serialises the messages), and the root pays a
    single fused homomorphic reduction — ``N·IFE + 1·FE`` per byte via
    :meth:`CostRates.fused_hpr_s_per_byte` instead of the pairwise fold's
    ``(N−1)·HPR`` — followed by one decompression.
    """
    _args(n_nodes, total_bytes)
    return schedule_cost(
        direct_reduce(n_nodes, 0), HZ_REDUCE, total_bytes, rates, network,
        multithread, thread_speedup,
    )


def _hierarchical_schedule(
    nodemap: NodeMap, network: NetworkModel, inter: str | None
):
    if inter is None:
        inter = select_inter_family(network, nodemap)
    return hierarchical_allreduce_schedule(nodemap, inter)


def model_mpi_hierarchical_allreduce(
    nodemap: NodeMap,
    total_bytes: int,
    rates: CostRates,
    network: NetworkModel,
    inter: str | None = None,
    multithread: bool = False,
    thread_speedup: float = 6.0,
) -> Breakdown:
    """Plain two-level hierarchical Allreduce over a :class:`NodeMap`.

    One priced schedule end-to-end (no stage combination): binomial
    intra-node reduce on ``intra_scale``-fast links at per-node
    concurrency, the inter-node family over ``n_nodes`` leader flows,
    binomial broadcast back.  The congestion law is evaluated with each
    round's *declared* flow count — the whole point of the hierarchy is
    that the fabric never sees ``n_ranks`` concurrent flows.
    """
    _args(nodemap.n_ranks, total_bytes)
    return schedule_cost(
        _hierarchical_schedule(nodemap, network, inter), PLAIN,
        total_bytes, rates, network, multithread, thread_speedup,
    )


def model_hzccl_hierarchical_allreduce(
    nodemap: NodeMap,
    total_bytes: int,
    rates: CostRates,
    network: NetworkModel,
    inter: str | None = None,
    multithread: bool = False,
    thread_speedup: float = 6.0,
) -> Breakdown:
    """Homomorphic hierarchical Allreduce: ``n_nodes·CPR`` once per rank,
    HPR folds at both levels, one batched DPR.

    Against the flat fused ring this trades larger HPR byte volume
    (full-vector folds in the binomial trees) for ~``log`` rounds instead
    of ``2(n−1)``, ``n_nodes``-way instead of ``n_ranks``-way congestion
    on the fabric, and far fewer kernel invocations — which is exactly
    the regime (Fig. 10's dip) where the flat schedules fall over.
    """
    _args(nodemap.n_ranks, total_bytes)
    return schedule_cost(
        _hierarchical_schedule(nodemap, network, inter), HZ_REDUCE,
        total_bytes, rates, network, multithread, thread_speedup,
    )
