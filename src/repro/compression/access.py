"""Random access and concatenation on compressed streams.

Two capabilities the fZ-light layout supports *structurally*, exposed as
first-class operations:

* :func:`decompress_range` — reconstruct ``[start, stop)`` of a 1-D stream
  by decoding only the thread-blocks that cover it.  Each thread-block
  carries its own outlier, so its prefix-sum chain restarts there — the
  format is random-access at thread-block granularity by design (that is
  *why* cuSZp/fZ-light keep outliers at all).
* :func:`concat_fields` — concatenate compressed streams into one
  compressed stream **without decompressing**: thread-block boundaries,
  outliers, code lengths and payloads simply chain.  This is what lets a
  gathered set of compressed chunks (the hZCCL Allgather hand-off) be
  treated as a single compressed object downstream.
"""

from __future__ import annotations

import numpy as np

from .common import dequantize
from .encoding import decode_blocks
from .format import (
    PREDICTOR_LORENZO_1D,
    BlockStructure,
    CompressedField,
)

__all__ = ["decompress_range", "concat_fields"]


def decompress_range(
    compressed: CompressedField, start: int, stop: int
) -> np.ndarray:
    """Reconstruct elements ``[start, stop)`` of a 1-D compressed stream.

    Decodes only the thread-blocks overlapping the range — for a request
    covering a fraction ``f`` of the data, roughly ``f`` of the decode work
    (plus at most one thread-block of slack on each side).
    """
    if compressed.predictor != PREDICTOR_LORENZO_1D:
        raise ValueError("random access is defined for 1-D Lorenzo streams")
    if not 0 <= start < stop <= compressed.n:
        raise IndexError(
            f"range [{start}, {stop}) out of bounds for length {compressed.n}"
        )
    structure: BlockStructure = compressed.structure
    bounds = structure.bounds
    # thread-blocks intersecting [start, stop)
    first_tb = int(np.searchsorted(bounds, start, side="right") - 1)
    last_tb = int(np.searchsorted(bounds, stop, side="left") - 1)
    last_tb = min(max(last_tb, first_tb), structure.n_threadblocks - 1)

    out = np.empty(stop - start, dtype=np.float32)
    block_starts = structure.block_starts
    offsets = compressed.offsets
    bs = compressed.block_size
    for t in range(first_tb, last_tb + 1):
        lo, hi = int(bounds[t]), int(bounds[t + 1])
        if lo == hi:
            continue
        blo, bhi = int(block_starts[t]), int(block_starts[t + 1])
        rows = decode_blocks(
            compressed.code_lengths[blo:bhi],
            compressed.payload[int(offsets[blo]) : int(offsets[bhi])],
            bs,
        )
        deltas = rows.reshape(-1)[: hi - lo]
        codes = np.cumsum(deltas, dtype=np.int64)
        codes += int(compressed.outliers[t])
        # intersect this thread-block with the requested range
        s = max(lo, start)
        e = min(hi, stop)
        out[s - start : e - start] = dequantize(
            codes[s - lo : e - lo], compressed.error_bound
        )
    return out


def concat_fields(fields: list[CompressedField]) -> CompressedField:
    """Concatenate compressed 1-D streams without decompressing.

    Requirements: same ``block_size``, ``error_bound`` and predictor
    (1-D).  The result behaves exactly like compressing the concatenated
    original arrays with thread-block boundaries at the junctions — each
    input's thread-blocks keep their outliers, so reconstruction chains
    restart correctly at every seam.
    """
    if not fields:
        raise ValueError("need at least one field")
    head = fields[0]
    for f in fields[1:]:
        if f.block_size != head.block_size:
            raise ValueError("mismatched block sizes")
        if f.error_bound != head.error_bound:
            raise ValueError("mismatched error bounds")
        if (
            f.predictor != PREDICTOR_LORENZO_1D
            or head.predictor != PREDICTOR_LORENZO_1D
        ):
            raise ValueError("concatenation is defined for 1-D Lorenzo streams")

    # Junction-correct only if every input's last thread-block is
    # block-aligned OR the input simply keeps its own padding.  Padding
    # deltas are zeros that reconstruct as trailing repeats *inside that
    # thread-block only* and are sliced off by `n` bookkeeping — but once
    # concatenated, the slice offsets shift.  The clean construction keeps
    # each input's geometry intact by tracking cumulative `n` per piece.
    total_n = sum(f.n for f in fields)
    n_tb = sum(f.n_threadblocks for f in fields)
    out = CompressedField(
        n=total_n,
        error_bound=head.error_bound,
        block_size=head.block_size,
        n_threadblocks=n_tb,
        outliers=np.concatenate([f.outliers for f in fields]),
        code_lengths=np.concatenate([f.code_lengths for f in fields]),
        payload=np.concatenate([f.payload for f in fields]),
    )
    # Geometry check: `CompressedField.structure` derives thread-block
    # bounds from (n, n_threadblocks) assuming the uniform split; the
    # concatenated pieces' actual bounds must coincide exactly, or the
    # decoder would mis-slice.  Reject rather than silently corrupt.
    actual_lengths = np.concatenate(
        [np.diff(f.structure.bounds) for f in fields]
    )
    expected_lengths = np.diff(out.structure.bounds)
    if not np.array_equal(actual_lengths, expected_lengths):
        raise ValueError(
            "streams do not concatenate into a uniform thread-block geometry; "
            "compress equal-length, block-aligned pieces (per-piece length a "
            "multiple of n_threadblocks·block_size) to make them chainable"
        )
    return out
