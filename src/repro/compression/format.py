"""Compressed-stream container and wire format.

A :class:`CompressedField` is the in-memory form of one fZ-light-compressed
array: per-thread-block outliers, per-block code lengths, and the
fixed-length-encoded payload.  The homomorphic engine operates on this
structure directly (the whole point of the paper), and :meth:`to_bytes` /
:func:`from_bytes` give the byte stream that actually travels through the
collectives and defines the compression ratio.

Block layout
------------
The input is split into ``n_threadblocks`` large contiguous chunks (one per
worker thread), each chunk's delta stream is padded with zeros to a multiple
of ``block_size``, and blocks are numbered thread-block-major.  Two fields
compressed with the same ``(n, block_size, n_threadblocks)`` triple
therefore have *identical* block geometry — which is what lets hZ-dynamic
walk the two code-length arrays in lockstep without any decompression.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass, field
from functools import cached_property

import numpy as np

from ..utils.chunking import num_blocks, threadblock_bounds
from .encoding import payload_offsets

__all__ = [
    "BlockStructure",
    "block_structure",
    "deltas_to_blocks",
    "blocks_to_deltas",
    "CompressedField",
    "from_bytes",
]

_MAGIC = b"HZCC"
_VERSION = 4
#: magic, version, predictor, block_size, n, n_tb, n_blocks, payload, rows,
#: cols, eb — followed by a CRC32 of (this prefix + body), so any single
#: corrupted byte anywhere in the stream is detected before parsing digs in.
_HEADER_PREFIX = struct.Struct("<4sBBHQIQQIId")
_CRC = struct.Struct("<I")
_HEADER_SIZE = _HEADER_PREFIX.size + _CRC.size

#: Predictor identifiers (homomorphic operations require equal predictors —
#: deltas from different predictors live in different linear bases).
PREDICTOR_LORENZO_1D = 0
PREDICTOR_LORENZO_2D = 1
PREDICTOR_LORENZO_3D = 2


@dataclass(frozen=True)
class BlockStructure:
    """Derived block geometry for a ``(n, block_size, n_threadblocks)`` triple."""

    n: int
    block_size: int
    n_threadblocks: int
    bounds: np.ndarray  # (n_tb + 1,) element offsets of thread-blocks
    blocks_per_tb: np.ndarray  # (n_tb,) block counts
    block_starts: np.ndarray  # (n_tb + 1,) block-index offsets

    @property
    def total_blocks(self) -> int:
        return int(self.block_starts[-1])

    @cached_property
    def element_to_slot(self) -> np.ndarray:
        """Flat index of each input element inside the padded block array.

        Element at local offset ``l`` of thread-block ``t`` lands at padded
        position ``block_starts[t]·block_size + l``; the map is therefore a
        repeat-plus-arange, no per-element Python work.
        """
        lengths = np.diff(self.bounds)
        local = np.arange(self.n, dtype=np.int64) - np.repeat(
            self.bounds[:-1], lengths
        )
        return np.repeat(self.block_starts[:-1] * self.block_size, lengths) + local


_STRUCTURE_CACHE: dict[tuple[int, int, int], BlockStructure] = {}


def block_structure(n: int, block_size: int, n_threadblocks: int) -> BlockStructure:
    """Compute (and memoise) the block geometry for a field shape.

    Geometry depends only on the triple, and collectives compress thousands
    of same-shaped chunks, so the cache removes redundant prefix-sum work.
    """
    key = (n, block_size, n_threadblocks)
    cached = _STRUCTURE_CACHE.get(key)
    if cached is not None:
        return cached
    bounds = threadblock_bounds(n, n_threadblocks)
    lengths = np.diff(bounds)
    blocks_per_tb = np.array(
        [num_blocks(int(ln), block_size) if ln else 0 for ln in lengths],
        dtype=np.int64,
    )
    block_starts = np.empty(n_threadblocks + 1, dtype=np.int64)
    block_starts[0] = 0
    np.cumsum(blocks_per_tb, out=block_starts[1:])
    structure = BlockStructure(
        n=n,
        block_size=block_size,
        n_threadblocks=n_threadblocks,
        bounds=bounds,
        blocks_per_tb=blocks_per_tb,
        block_starts=block_starts,
    )
    if len(_STRUCTURE_CACHE) > 256:  # unbounded growth guard for sweeps
        _STRUCTURE_CACHE.clear()
    _STRUCTURE_CACHE[key] = structure
    return structure


def deltas_to_blocks(deltas: np.ndarray, structure: BlockStructure) -> np.ndarray:
    """Scatter a 1-D delta stream into the padded ``(total_blocks, bs)`` grid.

    One contiguous copy per thread-block (a few dozen) instead of a fancy
    scatter over every element — the thread-blocks *are* contiguous, only
    their padded tails shift, so this is the cache-friendly formulation the
    paper's multi-layer partitioning is designed to enable.
    """
    bs = structure.block_size
    grid = np.zeros(structure.total_blocks * bs, dtype=deltas.dtype)
    bounds, starts = structure.bounds, structure.block_starts
    for t in range(structure.n_threadblocks):
        lo, hi = int(bounds[t]), int(bounds[t + 1])
        if lo == hi:
            continue
        dst = int(starts[t]) * bs
        grid[dst : dst + (hi - lo)] = deltas[lo:hi]
    return grid.reshape(structure.total_blocks, bs)


def blocks_to_deltas(blocks: np.ndarray, structure: BlockStructure) -> np.ndarray:
    """Gather the padded block grid back into the 1-D delta stream."""
    bs = structure.block_size
    flat = blocks.reshape(-1)
    out = np.empty(structure.n, dtype=blocks.dtype)
    bounds, starts = structure.bounds, structure.block_starts
    for t in range(structure.n_threadblocks):
        lo, hi = int(bounds[t]), int(bounds[t + 1])
        if lo == hi:
            continue
        src = int(starts[t]) * bs
        out[lo:hi] = flat[src : src + (hi - lo)]
    return out


@dataclass
class CompressedField:
    """One compressed array: metadata + outliers + code lengths + payload."""

    n: int
    error_bound: float
    block_size: int
    n_threadblocks: int
    outliers: np.ndarray  # (n_threadblocks,) int64
    code_lengths: np.ndarray  # (total_blocks,) uint8
    payload: np.ndarray  # (payload_nbytes,) uint8
    #: which linear predictor produced the deltas (PREDICTOR_*)
    predictor: int = PREDICTOR_LORENZO_1D
    #: leading dimension for 2-D/3-D predictors (0 for 1-D streams)
    rows: int = 0
    #: second dimension for 3-D predictors (0 otherwise)
    cols: int = 0
    _offsets: np.ndarray | None = field(default=None, repr=False, compare=False)

    @property
    def structure(self) -> BlockStructure:
        return block_structure(self.n, self.block_size, self.n_threadblocks)

    @property
    def offsets(self) -> np.ndarray:
        """Per-block payload offsets (lazily computed, then cached)."""
        if self._offsets is None:
            self._offsets = payload_offsets(self.code_lengths, self.block_size)
        return self._offsets

    @property
    def nbytes(self) -> int:
        """Size of the serialised stream — the network-visible message size."""
        return (
            _HEADER_SIZE
            + self.code_lengths.size
            + self.outliers.size * 8
            + self.payload.size
        )

    @property
    def original_nbytes(self) -> int:
        return self.n * 4  # float32 input

    @property
    def compression_ratio(self) -> float:
        return self.original_nbytes / self.nbytes

    def compatible_with(self, other: "CompressedField") -> bool:
        """True when homomorphic operations between the two are defined."""
        return (
            self.n == other.n
            and self.block_size == other.block_size
            and self.n_threadblocks == other.n_threadblocks
            and self.error_bound == other.error_bound
            and self.predictor == other.predictor
            and self.rows == other.rows
            and self.cols == other.cols
        )

    def validate(self) -> None:
        """Check internal consistency; raises ``ValueError`` on corruption."""
        if self.code_lengths.size and int(self.code_lengths.max()) > 32:
            raise ValueError("corrupt stream: code length exceeds 32 bits")
        structure = self.structure
        if self.code_lengths.size != structure.total_blocks:
            raise ValueError(
                f"code_lengths has {self.code_lengths.size} entries, geometry "
                f"implies {structure.total_blocks}"
            )
        if self.outliers.size != self.n_threadblocks:
            raise ValueError("outliers length does not match n_threadblocks")
        expected = int(self.offsets[-1])
        if self.payload.size != expected:
            raise ValueError(
                f"payload has {self.payload.size} bytes, code lengths imply {expected}"
            )

    def to_bytes(self) -> bytes:
        """Serialise to the wire format used by the collectives.

        The header carries a CRC32 over the header prefix and the body, so
        a receiver detects any corruption in flight with one cheap pass
        (``from_bytes`` verifies it before touching the geometry).
        """
        prefix = _HEADER_PREFIX.pack(
            _MAGIC,
            _VERSION,
            self.predictor,
            self.block_size,
            self.n,
            self.n_threadblocks,
            self.code_lengths.size,
            self.payload.size,
            self.rows,
            self.cols,
            self.error_bound,
        )
        code_lengths = self.code_lengths.tobytes()
        outliers = self.outliers.astype("<i8").tobytes()
        payload = self.payload.tobytes()
        crc = zlib.crc32(prefix)
        crc = zlib.crc32(code_lengths, crc)
        crc = zlib.crc32(outliers, crc)
        crc = zlib.crc32(payload, crc)
        return b"".join(
            (prefix, _CRC.pack(crc), code_lengths, outliers, payload)
        )

    def copy(self) -> "CompressedField":
        return CompressedField(
            n=self.n,
            error_bound=self.error_bound,
            block_size=self.block_size,
            n_threadblocks=self.n_threadblocks,
            outliers=self.outliers.copy(),
            code_lengths=self.code_lengths.copy(),
            payload=self.payload.copy(),
            predictor=self.predictor,
            rows=self.rows,
            cols=self.cols,
        )


def from_bytes(stream: bytes | memoryview) -> CompressedField:
    """Parse the wire format back into a :class:`CompressedField`.

    Raises ``ValueError`` on a bad magic number, version, truncation, or a
    checksum mismatch (any corrupted byte in header or body).
    """
    stream = memoryview(stream)
    if len(stream) < _HEADER_SIZE:
        raise ValueError("stream shorter than header")
    (
        magic,
        version,
        predictor,
        block_size,
        n,
        n_tb,
        n_blocks,
        payload_nbytes,
        rows,
        cols,
        eb,
    ) = _HEADER_PREFIX.unpack(stream[: _HEADER_PREFIX.size])
    if magic != _MAGIC:
        raise ValueError(f"bad magic {magic!r}")
    if version != _VERSION:
        raise ValueError(f"unsupported version {version}")
    pos = _HEADER_SIZE
    expected = pos + n_blocks + n_tb * 8 + payload_nbytes
    if len(stream) != expected:
        raise ValueError(f"stream has {len(stream)} bytes, header implies {expected}")
    (stored_crc,) = _CRC.unpack(stream[_HEADER_PREFIX.size : _HEADER_SIZE])
    crc = zlib.crc32(stream[: _HEADER_PREFIX.size])
    crc = zlib.crc32(stream[_HEADER_SIZE:], crc)
    if crc != stored_crc:
        raise ValueError(
            f"corrupt stream: checksum mismatch (stored {stored_crc:#010x}, "
            f"computed {crc:#010x})"
        )
    # Header sanity: a crafted stream with a valid checksum must still fail
    # cleanly here, not with an arithmetic error deeper in the geometry
    # computations.
    if block_size <= 0 or block_size % 8:
        raise ValueError(f"corrupt header: block_size {block_size}")
    if n < 1:
        raise ValueError(f"corrupt header: n {n}")
    if n_tb < 1:
        raise ValueError(f"corrupt header: n_threadblocks {n_tb}")
    if predictor not in (
        PREDICTOR_LORENZO_1D,
        PREDICTOR_LORENZO_2D,
        PREDICTOR_LORENZO_3D,
    ):
        raise ValueError(f"corrupt header: unknown predictor {predictor}")
    if predictor == PREDICTOR_LORENZO_2D and (rows < 1 or n % rows):
        raise ValueError(f"corrupt header: rows {rows} for n {n}")
    if predictor == PREDICTOR_LORENZO_3D and (
        rows < 1 or cols < 1 or n % max(rows * cols, 1)
    ):
        raise ValueError(f"corrupt header: dims ({rows}, {cols}) for n {n}")
    if not (eb > 0 and np.isfinite(eb)):
        raise ValueError(f"corrupt header: error bound {eb}")
    code_lengths = np.frombuffer(stream, dtype=np.uint8, count=n_blocks, offset=pos).copy()
    pos += n_blocks
    outliers = np.frombuffer(stream, dtype="<i8", count=n_tb, offset=pos).astype(
        np.int64
    )
    pos += n_tb * 8
    payload = np.frombuffer(
        stream, dtype=np.uint8, count=payload_nbytes, offset=pos
    ).copy()
    out = CompressedField(
        n=n,
        error_bound=eb,
        block_size=block_size,
        n_threadblocks=n_tb,
        outliers=outliers,
        code_lengths=code_lengths,
        payload=payload,
        predictor=predictor,
        rows=rows,
        cols=cols,
    )
    out.validate()
    return out
