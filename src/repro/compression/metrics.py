"""Compression-quality metrics used throughout the paper's tables.

Conventions follow SDRBench / the SZ family (and the paper's artifact
output): errors are normalised by the original field's value range, PSNR
uses the range as the peak signal, and the compression ratio is
``original bytes / compressed bytes``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..utils.validation import ensure_same_shape

__all__ = [
    "nrmse",
    "psnr",
    "max_abs_error",
    "max_rel_error",
    "error_std",
    "QualityReport",
    "evaluate_quality",
    "check_error_bound",
]


def _as_f64(a: np.ndarray) -> np.ndarray:
    return np.asarray(a, dtype=np.float64).ravel()


def nrmse(original: np.ndarray, reconstructed: np.ndarray) -> float:
    """Root-mean-square error normalised by the original value range."""
    x, y = _as_f64(original), _as_f64(reconstructed)
    ensure_same_shape(x, y)
    value_range = x.max() - x.min()
    rmse = float(np.sqrt(np.mean((x - y) ** 2)))
    if value_range == 0.0:
        return 0.0 if rmse == 0.0 else float("inf")
    return rmse / value_range


def psnr(original: np.ndarray, reconstructed: np.ndarray) -> float:
    """Peak signal-to-noise ratio in dB (peak = value range)."""
    err = nrmse(original, reconstructed)
    if err == 0.0:
        return float("inf")
    return -20.0 * float(np.log10(err))


def max_abs_error(original: np.ndarray, reconstructed: np.ndarray) -> float:
    """Largest pointwise absolute error."""
    x, y = _as_f64(original), _as_f64(reconstructed)
    ensure_same_shape(x, y)
    return float(np.abs(x - y).max())


def max_rel_error(original: np.ndarray, reconstructed: np.ndarray) -> float:
    """Largest absolute error divided by the value range."""
    x = _as_f64(original)
    value_range = x.max() - x.min()
    if value_range == 0.0:
        return 0.0
    return max_abs_error(original, reconstructed) / value_range


def error_std(original: np.ndarray, reconstructed: np.ndarray) -> float:
    """Standard deviation of the pointwise error, range-normalised.

    This is the STD column the paper reports next to each NRMSE.
    """
    x, y = _as_f64(original), _as_f64(reconstructed)
    ensure_same_shape(x, y)
    value_range = x.max() - x.min()
    if value_range == 0.0:
        return 0.0
    return float(np.std(np.abs(x - y))) / value_range


@dataclass(frozen=True)
class QualityReport:
    """One row of a Table III / Table VI style quality report."""

    nrmse: float
    psnr: float
    std: float
    max_abs_error: float
    max_rel_error: float
    compression_ratio: float

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ratio={self.compression_ratio:.2f} NRMSE={self.nrmse:.3e} "
            f"PSNR={self.psnr:.2f} STD={self.std:.0e} "
            f"maxAbs={self.max_abs_error:.3e}"
        )


def evaluate_quality(
    original: np.ndarray,
    reconstructed: np.ndarray,
    compressed_nbytes: int,
) -> QualityReport:
    """Compute the full quality row for one (dataset, error-bound) cell."""
    original = np.asarray(original)
    return QualityReport(
        nrmse=nrmse(original, reconstructed),
        psnr=psnr(original, reconstructed),
        std=error_std(original, reconstructed),
        max_abs_error=max_abs_error(original, reconstructed),
        max_rel_error=max_rel_error(original, reconstructed),
        compression_ratio=original.size * original.itemsize / compressed_nbytes,
    )


def check_error_bound(
    original: np.ndarray, reconstructed: np.ndarray, error_bound: float
) -> bool:
    """True when every pointwise error respects the absolute bound.

    The bound is enforced in exact integer arithmetic; the only slack
    allowed here is the final float32 store of the dequantised value, which
    rounds by at most one ulp at the field's magnitude.
    """
    peak = float(np.abs(np.asarray(reconstructed, dtype=np.float64)).max())
    ulp = float(np.spacing(np.float32(peak)))
    tol = error_bound + ulp + np.finfo(np.float32).tiny
    return bool(max_abs_error(original, reconstructed) <= tol)
