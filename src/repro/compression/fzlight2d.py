"""fZ-light-2D: a 2-D Lorenzo variant of the compressor (extension).

The paper's future work proposes "tailoring homomorphic compression
algorithms to the specific data characteristics of various applications".
For 2-D fields (CESM-ATM-style climate slices, stacked images) the natural
tailoring is the 2-D Lorenzo predictor

    d[r, c] = q[r, c] − q[r−1, c] − q[r, c−1] + q[r−1, c−1]

with 1-D chains along the first row/column and a single outlier
``q[0, 0]``.  Like its 1-D sibling the predictor is **linear in the
quantisation codes**, so the compressed stream is a drop-in operand for
:class:`~repro.homomorphic.hzdynamic.HZDynamic` — the homomorphic sum of
two 2-D-compressed fields decompresses to the exact code-domain sum, with
no changes to the engine.  Streams carry ``predictor=PREDICTOR_LORENZO_2D``
and their row count, and refuse to mix with 1-D streams (different linear
bases).

Reconstruction is two prefix sums: with the boundary encoding above,
``q = q[0,0] + cumsum_rows(cumsum_cols(d))`` exactly (the cross terms
telescope), so decompression stays a couple of vectorised passes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..utils.validation import ensure_positive
from .common import quantize, resolve_error_bound
from .encoding import DEFAULT_BLOCK_SIZE, decode_blocks, encode_blocks
from .format import (
    PREDICTOR_LORENZO_2D,
    CompressedField,
    block_structure,
)

__all__ = ["FZLight2D"]


@dataclass(frozen=True)
class FZLight2D:
    """2-D Lorenzo compressor producing homomorphic-compatible streams.

    Uses a single thread-block (one outlier, ``q[0, 0]``) — the 2-D
    predictor's chains span the whole plane, so per-thread-block restarts
    would break the prefix-sum inversion.

    Examples
    --------
    >>> import numpy as np
    >>> comp = FZLight2D()
    >>> yy, xx = np.mgrid[0:64, 0:96]
    >>> img = np.sin(yy / 9.0) * np.cos(xx / 7.0)
    >>> fld = comp.compress(img.astype(np.float32), abs_eb=1e-3)
    >>> out = comp.decompress(fld)
    >>> bool(np.abs(out - img).max() <= 1e-3 + 1e-6)
    True
    """

    block_size: int = DEFAULT_BLOCK_SIZE

    def __post_init__(self) -> None:
        if self.block_size % 8 or self.block_size <= 0:
            raise ValueError("block_size must be a positive multiple of 8")

    # ------------------------------------------------------------------ #
    def compress(
        self,
        data: np.ndarray,
        abs_eb: float | None = None,
        rel_eb: float | None = None,
    ) -> CompressedField:
        """Compress a 2-D float array under an absolute/relative bound."""
        data = np.asarray(data)
        if data.ndim != 2 or data.shape[0] < 1 or data.shape[1] < 1:
            raise ValueError(f"FZLight2D needs a 2-D array, got shape {data.shape}")
        rows, cols = data.shape
        flat = np.ascontiguousarray(data, dtype=np.float32).ravel()
        if not np.isfinite(flat).all():
            raise ValueError("data contains NaN or infinite values")
        error_bound = resolve_error_bound(flat, abs_eb=abs_eb, rel_eb=rel_eb)
        ensure_positive(error_bound, "error_bound")
        q = quantize(flat, error_bound).reshape(rows, cols)

        deltas = np.empty_like(q)
        deltas[0, 0] = 0
        # first row / first column: 1-D chains
        np.subtract(q[0, 1:], q[0, :-1], out=deltas[0, 1:])
        np.subtract(q[1:, 0], q[:-1, 0], out=deltas[1:, 0])
        # interior: full 2-D Lorenzo
        if rows > 1 and cols > 1:
            deltas[1:, 1:] = q[1:, 1:] - q[:-1, 1:] - q[1:, :-1] + q[:-1, :-1]
        outlier = np.array([int(q[0, 0])], dtype=np.int64)

        structure = block_structure(flat.size, self.block_size, 1)
        grid = np.zeros(structure.total_blocks * self.block_size, dtype=q.dtype)
        grid[: flat.size] = deltas.ravel()
        code_lengths, payload = encode_blocks(
            grid.reshape(structure.total_blocks, self.block_size), self.block_size
        )
        return CompressedField(
            n=flat.size,
            error_bound=error_bound,
            block_size=self.block_size,
            n_threadblocks=1,
            outliers=outlier,
            code_lengths=code_lengths,
            payload=payload,
            predictor=PREDICTOR_LORENZO_2D,
            rows=rows,
        )

    # ------------------------------------------------------------------ #
    def decompress(self, compressed: CompressedField) -> np.ndarray:
        """Reconstruct the 2-D float32 array (shape ``(rows, n // rows)``)."""
        if compressed.predictor != PREDICTOR_LORENZO_2D:
            raise ValueError("stream was not produced by a 2-D Lorenzo compressor")
        rows = compressed.rows
        if rows <= 0 or compressed.n % rows:
            raise ValueError("corrupt 2-D stream: invalid row count")
        cols = compressed.n // rows
        blocks = decode_blocks(
            compressed.code_lengths, compressed.payload, compressed.block_size
        )
        deltas = blocks.reshape(-1)[: compressed.n].reshape(rows, cols)
        # invert: q = q00 + cumsum over columns, then over rows (int64 to
        # keep the partial sums exact)
        codes = np.cumsum(deltas, axis=1, dtype=np.int64)
        np.cumsum(codes, axis=0, out=codes)
        codes += int(compressed.outliers[0])
        scaled = np.multiply(codes, 2.0 * compressed.error_bound, dtype=np.float64)
        return scaled.astype(np.float32)
