"""Quantisation and prediction primitives shared by all compressors.

This module implements the two linear stages of the fZ-light pipeline
(paper §III-B2):

* **Quantisation** — ``q = round(x / (2·eb))`` so that reconstruction
  ``x̂ = 2·eb·q`` satisfies ``|x − x̂| ≤ eb``.  This is the *only* lossy
  stage; everything downstream (prediction, encoding, homomorphic sums) is
  exact, which is why hZ-dynamic "does not introduce additional errors
  beyond those inherent to the original compression process".
* **1-D Lorenzo prediction** — per thread-block deltas
  ``d[i] = q[i] − q[i−1]`` with the thread-block's first quantised value
  kept aside as the **outlier**.  Both maps are linear in ``q``, which is
  exactly the property the homomorphic pipelines exploit.
"""

from __future__ import annotations

import numpy as np

from ..utils.chunking import threadblock_bounds
from ..utils.validation import ensure_float_array, ensure_positive

__all__ = [
    "resolve_error_bound",
    "quantize",
    "dequantize",
    "lorenzo_encode",
    "lorenzo_decode",
]


def resolve_error_bound(
    data: np.ndarray,
    abs_eb: float | None = None,
    rel_eb: float | None = None,
) -> float:
    """Turn a user error-bound specification into an absolute bound.

    Exactly one of ``abs_eb`` / ``rel_eb`` must be given.  A relative bound
    is scaled by the field's value range (max − min), the SDRBench / SZ
    convention the paper uses for its REL columns.  A zero-range field with
    a relative bound resolves to a tiny positive bound so quantisation stays
    well defined.
    """
    if (abs_eb is None) == (rel_eb is None):
        raise ValueError("specify exactly one of abs_eb or rel_eb")
    if abs_eb is not None:
        return ensure_positive(abs_eb, "abs_eb")
    rel = ensure_positive(rel_eb, "rel_eb")
    data = np.asarray(data)
    value_range = float(data.max()) - float(data.min())
    if value_range == 0.0:
        return np.finfo(np.float32).tiny
    return rel * value_range


def quantize(data: np.ndarray, error_bound: float) -> np.ndarray:
    """Quantise float data to integer codes with ``|x − x̂| ≤ error_bound``.

    Returns int32 codes when the dynamic range allows (halving the memory
    traffic of every downstream stage — the fZ-light "lightweight" path),
    int64 otherwise.  float64 intermediates keep the rounding exact where
    float32 would already be integer-inexact.
    """
    data = ensure_float_array(data)
    error_bound = ensure_positive(error_bound, "error_bound")
    scaled = np.multiply(data, 1.0 / (2.0 * error_bound), dtype=np.float64)
    peak = max(abs(float(scaled.max())), abs(float(scaled.min())))
    if peak >= 2**62:
        raise OverflowError("error bound too small: quantised codes overflow int64")
    np.rint(scaled, out=scaled)
    # < 2**30 leaves headroom so consecutive-code differences fit int32 too.
    dtype = np.int32 if peak < 2**30 else np.int64
    return scaled.astype(dtype)


def dequantize(codes: np.ndarray, error_bound: float) -> np.ndarray:
    """Reconstruct float32 data from quantisation codes."""
    scaled = np.multiply(codes, 2.0 * error_bound, dtype=np.float64)
    return scaled.astype(np.float32)


def lorenzo_encode(
    codes: np.ndarray, n_threadblocks: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Fused per-thread-block Lorenzo prediction.

    Parameters
    ----------
    codes : 1-D int64 quantisation codes.
    n_threadblocks : number of large chunks (one per worker thread).

    Returns
    -------
    deltas : integer array (same dtype as ``codes``), same length; the
        element at each thread-block start is 0 (its value lives in
        ``outliers``).
    outliers : ``(n_threadblocks,)`` int64 — first code of each thread-block
        (0 for empty thread-blocks, which occur when ``codes.size <
        n_threadblocks``).
    bounds : the ``(n_threadblocks + 1,)`` boundary offsets used.
    """
    codes = np.ascontiguousarray(codes)
    bounds = threadblock_bounds(codes.size, n_threadblocks)
    deltas = np.empty_like(codes)
    deltas[0] = 0
    np.subtract(codes[1:], codes[:-1], out=deltas[1:])
    starts = bounds[:-1]
    nonempty = starts < bounds[1:]
    outliers = np.zeros(n_threadblocks, dtype=np.int64)
    outliers[nonempty] = codes[starts[nonempty]]
    deltas[starts[nonempty]] = 0
    return deltas, outliers, bounds


def lorenzo_decode(
    deltas: np.ndarray, outliers: np.ndarray, bounds: np.ndarray
) -> np.ndarray:
    """Invert :func:`lorenzo_encode` (per-thread-block prefix sums).

    A single global ``cumsum`` plus a per-thread-block base correction
    reconstructs every chunk without a Python-level loop over elements:
    within a thread-block starting at ``s``, ``q[i] = outlier + cs[i] −
    cs[s]`` because the delta at ``s`` itself is stored as 0.
    """
    # int64 accumulator: partial sums can exceed int32 even when every
    # individual code fits (the per-thread-block base correction restores
    # the true values afterwards).
    cs = np.cumsum(deltas, dtype=np.int64)
    starts = bounds[:-1]
    lengths = np.diff(bounds)
    nonempty = lengths > 0
    base = np.zeros_like(outliers)
    base[nonempty] = outliers[nonempty] - cs[starts[nonempty]]
    return cs + np.repeat(base, lengths)
