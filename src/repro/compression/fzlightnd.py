"""fZ-light-ND: N-dimensional Lorenzo prediction (2-D and 3-D).

Generalises :mod:`~repro.compression.fzlight2d`'s idea to any dimension
with a cleaner formulation: apply the first-difference operator along each
axis in turn (zero-padded at the leading boundary),

    d = Δ_xN … Δ_x2 Δ_x1 q,      (Δ_ax q)[i] = q[i] − q[i − 1, along ax]

which is exactly the N-D Lorenzo predictor (inclusion–exclusion over the
2^N preceding corners).  The inverse is a prefix sum along each axis in
the opposite order — a handful of vectorised ``cumsum`` passes.  Because
the zero-padded boundary makes the operator *linear and invertible with no
side information*, no outlier is stored at all: ``d[0, …, 0] = q[0, …, 0]``
simply rides in the delta stream.

Linear ⇒ every stream remains a first-class operand for
:class:`~repro.homomorphic.hzdynamic.HZDynamic`.  The wire format carries
the predictor id and the leading dimensions so decompression is
self-describing and streams of different geometry refuse to mix.

For the paper's datasets this is the "tailor compression to the data
characteristics" future-work direction applied to its own Table I: four of
the five datasets are 3-D fields.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .common import quantize, resolve_error_bound
from .encoding import DEFAULT_BLOCK_SIZE, decode_blocks, encode_blocks
from .format import (
    PREDICTOR_LORENZO_2D,
    PREDICTOR_LORENZO_3D,
    CompressedField,
    block_structure,
)

__all__ = ["FZLightND"]

_PREDICTOR_BY_NDIM = {2: PREDICTOR_LORENZO_2D, 3: PREDICTOR_LORENZO_3D}


def _forward_lorenzo(q: np.ndarray) -> np.ndarray:
    """Successive zero-padded first differences along every axis."""
    d = q
    for ax in range(q.ndim):
        shifted = np.zeros_like(d)
        src = [slice(None)] * q.ndim
        dst = [slice(None)] * q.ndim
        src[ax] = slice(None, -1)
        dst[ax] = slice(1, None)
        shifted[tuple(dst)] = d[tuple(src)]
        d = d - shifted
    return d


def _inverse_lorenzo(d: np.ndarray) -> np.ndarray:
    """Prefix sums along every axis (int64 to keep partials exact)."""
    q = d.astype(np.int64, copy=True)
    for ax in range(d.ndim):
        np.cumsum(q, axis=ax, out=q)
    return q


@dataclass(frozen=True)
class FZLightND:
    """N-dimensional Lorenzo compressor (2-D and 3-D fields).

    Examples
    --------
    >>> import numpy as np
    >>> comp = FZLightND()
    >>> zz, yy, xx = np.mgrid[0:24, 0:20, 0:16]
    >>> vol = np.sin(zz / 5.0) * np.cos(yy / 4.0) * np.sin(xx / 3.0)
    >>> fld = comp.compress(vol.astype(np.float32), abs_eb=1e-3)
    >>> out = comp.decompress(fld)
    >>> bool(np.abs(out - vol).max() <= 1e-3 + 1e-6)
    True
    """

    block_size: int = DEFAULT_BLOCK_SIZE

    def __post_init__(self) -> None:
        if self.block_size % 8 or self.block_size <= 0:
            raise ValueError("block_size must be a positive multiple of 8")

    def compress(
        self,
        data: np.ndarray,
        abs_eb: float | None = None,
        rel_eb: float | None = None,
    ) -> CompressedField:
        """Compress a 2-D or 3-D float array under an error bound."""
        data = np.asarray(data)
        if data.ndim not in _PREDICTOR_BY_NDIM:
            raise ValueError(
                f"FZLightND supports 2-D and 3-D arrays, got {data.ndim}-D"
            )
        flat = np.ascontiguousarray(data, dtype=np.float32).ravel()
        if not np.isfinite(flat).all():
            raise ValueError("data contains NaN or infinite values")
        error_bound = resolve_error_bound(flat, abs_eb=abs_eb, rel_eb=rel_eb)
        q = quantize(flat, error_bound).reshape(data.shape)
        deltas = _forward_lorenzo(q.astype(np.int64))

        structure = block_structure(flat.size, self.block_size, 1)
        grid = np.zeros(structure.total_blocks * self.block_size, dtype=np.int64)
        grid[: flat.size] = deltas.ravel()
        code_lengths, payload = encode_blocks(
            grid.reshape(structure.total_blocks, self.block_size), self.block_size
        )
        rows = data.shape[0]
        cols = data.shape[1] if data.ndim == 3 else 0
        return CompressedField(
            n=flat.size,
            error_bound=error_bound,
            block_size=self.block_size,
            n_threadblocks=1,
            outliers=np.zeros(1, dtype=np.int64),  # boundary rides the deltas
            code_lengths=code_lengths,
            payload=payload,
            predictor=_PREDICTOR_BY_NDIM[data.ndim],
            rows=rows,
            cols=cols,
        )

    def decompress(self, compressed: CompressedField) -> np.ndarray:
        """Reconstruct the 2-D/3-D float32 array."""
        shape = self._shape_of(compressed)
        blocks = decode_blocks(
            compressed.code_lengths, compressed.payload, compressed.block_size
        )
        deltas = blocks.reshape(-1)[: compressed.n].reshape(shape)
        codes = _inverse_lorenzo(deltas)
        codes += int(compressed.outliers[0])
        scaled = np.multiply(codes, 2.0 * compressed.error_bound, dtype=np.float64)
        return scaled.astype(np.float32)

    @staticmethod
    def _shape_of(compressed: CompressedField) -> tuple[int, ...]:
        if compressed.predictor == PREDICTOR_LORENZO_2D:
            rows = compressed.rows
            if rows <= 0 or compressed.n % rows:
                raise ValueError("corrupt 2-D stream: invalid row count")
            return (rows, compressed.n // rows)
        if compressed.predictor == PREDICTOR_LORENZO_3D:
            rows, cols = compressed.rows, compressed.cols
            if rows <= 0 or cols <= 0 or compressed.n % (rows * cols):
                raise ValueError("corrupt 3-D stream: invalid dims")
            return (rows, cols, compressed.n // (rows * cols))
        raise ValueError("stream was not produced by an N-D Lorenzo compressor")
