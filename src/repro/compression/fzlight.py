"""fZ-light: the ultra-fast error-bounded lossy compressor (paper §III-B).

fZ-light is the paper's from-scratch CPU compressor, built on three ideas:

1. **Multi-layer partitioning** — the input is first split into one large
   contiguous *thread-block* per worker, then into small fixed-size blocks,
   so workers always touch contiguous memory (unlike cuSZp's CPU port,
   where threads hop between distant small blocks).
2. **Fused quantisation + prediction** — a single pass turns floats into
   integer Lorenzo deltas, with only the *first* quantised value of each
   thread-block kept as a four-byte outlier (cuSZp pays one outlier per
   small block).
3. **Ultra-fast fixed-length encoding** — see
   :mod:`repro.compression.encoding`.

This Python port keeps the algorithm and data layout bit-for-bit faithful;
the "threads" of the paper map onto thread-blocks processed either in one
vectorised sweep (default — NumPy already saturates memory bandwidth) or on
a real :class:`~concurrent.futures.ThreadPoolExecutor` (``parallel=True``;
NumPy kernels release the GIL).
"""

from __future__ import annotations

import os
from dataclasses import dataclass

import numpy as np

from ..utils.pool import shared_executor
from ..utils.validation import (
    ensure_float_array,
    ensure_positive_int,
)
from .common import quantize, resolve_error_bound
from .encoding import DEFAULT_BLOCK_SIZE, decode_blocks, encode_blocks
from .format import BlockStructure, CompressedField, block_structure

__all__ = [
    "FZLight",
    "compress",
    "decompress",
    "resolve_workers",
    "DEFAULT_THREADBLOCKS",
]

#: The paper fixes compression at 36 threads (two Broadwell sockets) for the
#: compressor studies and 18 (one socket) inside collectives.
DEFAULT_THREADBLOCKS = 36


def resolve_workers(n_tasks: int, max_workers: int | None = None) -> int:
    """Thread-pool width for ``n_tasks`` per-thread-block chunks.

    Defaults to the host's CPU count — the previous silent hard cap of 16
    workers ignored both the machine and configurations like the paper's
    ``n_threadblocks=36`` two-socket runs.  Pass ``max_workers`` to pin the
    width explicitly (e.g. 36 to mirror the paper's compressor studies on a
    wide enough host).
    """
    if max_workers is None:
        max_workers = os.cpu_count() or 1
    ensure_positive_int(max_workers, "max_workers")
    return max(1, min(int(n_tasks), max_workers))


@dataclass(frozen=True)
class FZLight:
    """fZ-light compressor configured for a block geometry.

    Parameters
    ----------
    block_size : elements per small block (multiple of 8; paper uses 32).
    n_threadblocks : number of large chunks, i.e. the simulated OpenMP
        thread count.
    parallel : when True, encode/decode thread-blocks on a thread pool
        (multi-thread mode); when False, one vectorised sweep
        (single-thread mode).
    max_workers : thread-pool cap in parallel mode; ``None`` (default)
        derives it from ``os.cpu_count()`` via :func:`resolve_workers`.

    Examples
    --------
    >>> import numpy as np
    >>> comp = FZLight()
    >>> data = np.sin(np.linspace(0, 20, 10_000)).astype(np.float32)
    >>> fld = comp.compress(data, rel_eb=1e-3)
    >>> out = comp.decompress(fld)
    >>> bool(np.max(np.abs(out - data)) <= fld.error_bound)
    True
    """

    block_size: int = DEFAULT_BLOCK_SIZE
    n_threadblocks: int = DEFAULT_THREADBLOCKS
    parallel: bool = False
    max_workers: int | None = None

    def __post_init__(self) -> None:
        ensure_positive_int(self.n_threadblocks, "n_threadblocks")
        if self.max_workers is not None:
            ensure_positive_int(self.max_workers, "max_workers")
        if self.block_size % 8 or self.block_size <= 0:
            raise ValueError("block_size must be a positive multiple of 8")

    # ------------------------------------------------------------------ #
    # compression
    # ------------------------------------------------------------------ #
    def compress(
        self,
        data: np.ndarray,
        abs_eb: float | None = None,
        rel_eb: float | None = None,
    ) -> CompressedField:
        """Compress ``data`` under an absolute or relative error bound."""
        data = ensure_float_array(data)
        error_bound = resolve_error_bound(data, abs_eb=abs_eb, rel_eb=rel_eb)
        codes = quantize(data, error_bound)
        structure = block_structure(data.size, self.block_size, self.n_threadblocks)
        blocks, outliers = self._fused_predict(codes, structure)
        code_lengths, payload = self._encode(blocks, structure)
        return CompressedField(
            n=data.size,
            error_bound=error_bound,
            block_size=self.block_size,
            n_threadblocks=self.n_threadblocks,
            outliers=outliers,
            code_lengths=code_lengths,
            payload=payload,
        )

    def _fused_predict(
        self, codes: np.ndarray, structure: BlockStructure
    ) -> tuple[np.ndarray, np.ndarray]:
        """Fused Lorenzo prediction straight into the padded block grid.

        Equivalent to ``lorenzo_encode`` followed by ``deltas_to_blocks``
        but writes the deltas directly where the encoder reads them — one
        full memory pass fewer, the fusion the paper credits for fZ-light's
        edge over the unfused cuSZp port.
        """
        bs = self.block_size
        grid = np.zeros(structure.total_blocks * bs, dtype=codes.dtype)
        outliers = np.zeros(self.n_threadblocks, dtype=np.int64)
        bounds, starts = structure.bounds, structure.block_starts
        for t in range(self.n_threadblocks):
            lo, hi = int(bounds[t]), int(bounds[t + 1])
            if lo == hi:
                continue
            view = codes[lo:hi]
            dst = int(starts[t]) * bs
            out = grid[dst : dst + (hi - lo)]
            out[0] = 0
            np.subtract(view[1:], view[:-1], out=out[1:])
            outliers[t] = view[0]
        return grid.reshape(structure.total_blocks, bs), outliers

    def _encode(
        self, blocks: np.ndarray, structure: BlockStructure
    ) -> tuple[np.ndarray, np.ndarray]:
        if not self.parallel or self.n_threadblocks == 1:
            return encode_blocks(blocks, self.block_size)
        starts = structure.block_starts
        chunks = [
            blocks[int(starts[t]) : int(starts[t + 1])]
            for t in range(self.n_threadblocks)
            if starts[t] < starts[t + 1]
        ]
        workers = resolve_workers(len(chunks), self.max_workers)
        pool = shared_executor(workers)
        parts = list(pool.map(lambda b: encode_blocks(b, self.block_size), chunks))
        code_lengths = np.concatenate([p[0] for p in parts])
        payload = np.concatenate([p[1] for p in parts])
        return code_lengths, payload

    # ------------------------------------------------------------------ #
    # decompression
    # ------------------------------------------------------------------ #
    def decompress(self, compressed: CompressedField) -> np.ndarray:
        """Reconstruct float32 data; error is bounded by ``error_bound``.

        Works one thread-block at a time on *contiguous* views of the
        decoded delta grid (each thread-block's real deltas sit in one run;
        padding only trails it), so the prefix sum, outlier add and
        dequantise never pay a gather — the memory-access property the
        paper's multi-layer partitioning exists to provide.
        """
        structure = compressed.structure
        blocks = self._decode(compressed, structure)
        flat = blocks.reshape(-1)
        twice_eb = 2.0 * compressed.error_bound
        out = np.empty(compressed.n, dtype=np.float32)
        bounds, starts = structure.bounds, structure.block_starts
        for t in range(self.n_threadblocks):
            lo, hi = int(bounds[t]), int(bounds[t + 1])
            if lo == hi:
                continue
            src = int(starts[t]) * self.block_size
            codes = np.cumsum(flat[src : src + (hi - lo)], dtype=np.int64)
            codes += int(compressed.outliers[t])
            out[lo:hi] = np.multiply(codes, twice_eb, dtype=np.float64)
        return out

    def _decode(
        self, compressed: CompressedField, structure: BlockStructure
    ) -> np.ndarray:
        if not self.parallel or self.n_threadblocks == 1:
            return decode_blocks(
                compressed.code_lengths,
                compressed.payload,
                self.block_size,
                offsets=compressed.offsets,
            )
        starts = structure.block_starts
        offsets = compressed.offsets
        tasks = []
        for t in range(self.n_threadblocks):
            lo, hi = int(starts[t]), int(starts[t + 1])
            if lo == hi:
                continue
            chunk_codes = compressed.code_lengths[lo:hi]
            chunk_payload = compressed.payload[int(offsets[lo]) : int(offsets[hi])]
            tasks.append((chunk_codes, chunk_payload))
        workers = resolve_workers(len(tasks), self.max_workers)
        pool = shared_executor(workers)
        parts = list(
            pool.map(lambda t: decode_blocks(t[0], t[1], self.block_size), tasks)
        )
        return np.concatenate(parts, axis=0)


def compress(
    data: np.ndarray,
    abs_eb: float | None = None,
    rel_eb: float | None = None,
    block_size: int = DEFAULT_BLOCK_SIZE,
    n_threadblocks: int = DEFAULT_THREADBLOCKS,
) -> CompressedField:
    """One-shot fZ-light compression with default geometry."""
    return FZLight(block_size=block_size, n_threadblocks=n_threadblocks).compress(
        data, abs_eb=abs_eb, rel_eb=rel_eb
    )


def decompress(compressed: CompressedField) -> np.ndarray:
    """One-shot fZ-light decompression."""
    return FZLight(
        block_size=compressed.block_size, n_threadblocks=compressed.n_threadblocks
    ).decompress(compressed)
