"""Ultra-fast fixed-length encoding (paper §III-B3).

fZ-light encodes each small block of integer prediction deltas with a
*fixed* number of bits ``c`` — the bit width of the largest magnitude in the
block — preceded by one sign bit per element.  The paper's layout is kept:

* ``c == 0`` ⇒ a **constant block**; nothing is stored beyond the code
  length itself (this is what makes hZ-dynamic's pipeline 1 nearly free).
* ``c > 0`` ⇒ ``block_size`` sign bits, then the **complete bytes** of every
  element's magnitude (``c // 8`` byte planes), then the **residual bits**
  (``c % 8`` per element) bit-packed — the "ultra-fast bit-shifting" scheme
  of the paper, which maps directly onto NumPy shift-and-mask kernels here.

With ``block_size = 32`` (the paper default) a non-constant block occupies
exactly ``4 + 4·c`` bytes, so the whole payload is byte-aligned and every
group of equal-``c`` blocks can be encoded/decoded with a handful of
vectorised operations.

This module is the stable entry point; the actual kernels live in
:mod:`repro.kernels` behind a backend dispatch layer (reference NumPy
backend, optional Numba-JIT backend — select with
``repro.kernels.set_backend``/``use_backend`` or the
``REPRO_KERNEL_BACKEND`` environment variable).  All backends emit
byte-identical streams, so backend choice never affects the wire format or
the homomorphic invariants.

Everything here is *block-shape agnostic*: callers hand in a 2-D
``(n_blocks, block_size)`` array of integer deltas and get back per-block
code lengths plus a single contiguous payload.  The subset variants used by
the homomorphic pipelines (decode/encode only the block indices a pipeline
touches) avoid materialising the full prediction array — the memory-
efficiency point the paper makes about hZ-dynamic vs. static homomorphic
compression.
"""

from __future__ import annotations

import numpy as np

from ..kernels.dispatch import get_backend
from ..kernels.plan import (  # noqa: F401  (canonical home; re-exported API)
    block_payload_nbytes,
    payload_offsets,
    required_bits,
)
from ..utils.validation import ensure_positive_int

__all__ = [
    "DEFAULT_BLOCK_SIZE",
    "MAX_CODE_LENGTH",
    "required_bits",
    "block_payload_nbytes",
    "payload_offsets",
    "encode_blocks",
    "decode_blocks",
    "decode_selected",
    "encode_into",
]

DEFAULT_BLOCK_SIZE = 32
#: Magnitudes are stored in at most 32 bits, mirroring the 32-bit unsigned
#: integer arrays of fZ-light/cuSZp.  Exceeding it means the error bound is
#: too tight for the data's dynamic range (same failure mode as the C code).
MAX_CODE_LENGTH = 32


def _check_block_size(block_size: int) -> int:
    block_size = ensure_positive_int(block_size, "block_size")
    if block_size % 8:
        raise ValueError(f"block_size must be a multiple of 8, got {block_size}")
    return block_size


def _check_deltas(deltas: np.ndarray, block_size: int) -> np.ndarray:
    deltas = np.asarray(deltas)
    if deltas.ndim != 2 or deltas.shape[1] != block_size:
        raise ValueError(
            f"deltas must have shape (n_blocks, {block_size}), got {deltas.shape}"
        )
    return deltas


def encode_blocks(
    deltas: np.ndarray, block_size: int = DEFAULT_BLOCK_SIZE
) -> tuple[np.ndarray, np.ndarray]:
    """Fixed-length-encode ``(n_blocks, block_size)`` integer deltas.

    Returns
    -------
    code_lengths : ``(n_blocks,)`` uint8
    payload : contiguous uint8 array; block *i* occupies
        ``payload[offsets[i]:offsets[i+1]]`` with ``offsets`` from
        :func:`payload_offsets`.

    Raises
    ------
    OverflowError
        If any magnitude needs more than :data:`MAX_CODE_LENGTH` bits.
    """
    block_size = _check_block_size(block_size)
    deltas = _check_deltas(deltas, block_size)
    return get_backend().encode_blocks(deltas, block_size)


def decode_blocks(
    code_lengths: np.ndarray,
    payload: np.ndarray,
    block_size: int = DEFAULT_BLOCK_SIZE,
    offsets: np.ndarray | None = None,
    out: np.ndarray | None = None,
) -> np.ndarray:
    """Inverse fixed-length encoding for the full block set.

    Constant blocks decode to all-zero deltas.  Returns
    ``(n_blocks, block_size)``, int32 when every code length fits (halving
    the memory traffic of the downstream prefix sums), int64 otherwise.

    Parameters
    ----------
    offsets : optional precomputed :func:`payload_offsets` for the stream
        (e.g. ``CompressedField.offsets``); passing it skips the redundant
        prefix sum.
    out : optional ``(n_blocks, block_size)`` int32/int64 buffer to decode
        into (int32 only when every code length ≤ 31); callers on the
        homomorphic hot path use this to recycle an accumulator-sized
        scratch buffer across operands.
    """
    block_size = _check_block_size(block_size)
    return get_backend().decode_blocks(
        code_lengths, payload, block_size, offsets=offsets, out=out
    )


def decode_selected(
    indices: np.ndarray,
    code_lengths: np.ndarray,
    offsets: np.ndarray,
    payload: np.ndarray,
    block_size: int = DEFAULT_BLOCK_SIZE,
    out: np.ndarray | None = None,
) -> np.ndarray:
    """Decode only ``indices`` blocks (pipeline-4 gather path).

    ``offsets`` must be the array from :func:`payload_offsets` for the full
    stream.  ``indices`` may be unsorted and may contain duplicates; rows
    come back in the order of ``indices``.  Returns
    ``(len(indices), block_size)`` int64 deltas — written into ``out``
    (same shape/dtype, fully overwritten) when provided, so hot-path
    callers can recycle an arena buffer across calls.
    """
    block_size = _check_block_size(block_size)
    return get_backend().decode_selected(
        indices, code_lengths, offsets, payload, block_size, out=out
    )


def encode_into(
    deltas: np.ndarray, block_size: int = DEFAULT_BLOCK_SIZE
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Like :func:`encode_blocks` but also returns the payload offsets.

    Convenience for callers (the homomorphic engine, the wire format) that
    need the offsets anyway — the backend computes them as part of laying
    out the payload, so nothing is recomputed.  Dispatches to the backend's
    ``classify_encode`` — the fused single-pass classification + encode on
    backends that ship one (Numba), the two-pass reference otherwise.
    """
    block_size = _check_block_size(block_size)
    deltas = _check_deltas(deltas, block_size)
    return get_backend().classify_encode(deltas, block_size)
