"""Ultra-fast fixed-length encoding (paper §III-B3).

fZ-light encodes each small block of integer prediction deltas with a
*fixed* number of bits ``c`` — the bit width of the largest magnitude in the
block — preceded by one sign bit per element.  The paper's layout is kept:

* ``c == 0`` ⇒ a **constant block**; nothing is stored beyond the code
  length itself (this is what makes hZ-dynamic's pipeline 1 nearly free).
* ``c > 0`` ⇒ ``block_size`` sign bits, then the **complete bytes** of every
  element's magnitude (``c // 8`` byte planes), then the **residual bits**
  (``c % 8`` per element) bit-packed — the "ultra-fast bit-shifting" scheme
  of the paper, which maps directly onto NumPy shift-and-mask kernels here.

With ``block_size = 32`` (the paper default) a non-constant block occupies
exactly ``4 + 4·c`` bytes, so the whole payload is byte-aligned and every
group of equal-``c`` blocks can be encoded/decoded with a handful of
vectorised operations.

Everything in this module is *block-shape agnostic*: callers hand in a 2-D
``(n_blocks, block_size)`` array of int64 deltas and get back per-block code
lengths plus a single contiguous payload.  The subset variants used by the
homomorphic pipelines (decode/encode only the block indices a pipeline
touches) avoid materialising the full prediction array — the memory-
efficiency point the paper makes about hZ-dynamic vs. static homomorphic
compression.
"""

from __future__ import annotations

import numpy as np

from ..utils.validation import ensure_positive_int

__all__ = [
    "DEFAULT_BLOCK_SIZE",
    "MAX_CODE_LENGTH",
    "required_bits",
    "block_payload_nbytes",
    "payload_offsets",
    "encode_blocks",
    "decode_blocks",
    "decode_selected",
    "encode_into",
]

DEFAULT_BLOCK_SIZE = 32
#: Magnitudes are stored in at most 32 bits, mirroring the 32-bit unsigned
#: integer arrays of fZ-light/cuSZp.  Exceeding it means the error bound is
#: too tight for the data's dynamic range (same failure mode as the C code).
MAX_CODE_LENGTH = 32


def _check_block_size(block_size: int) -> int:
    block_size = ensure_positive_int(block_size, "block_size")
    if block_size % 8:
        raise ValueError(f"block_size must be a multiple of 8, got {block_size}")
    return block_size


def required_bits(max_magnitudes: np.ndarray) -> np.ndarray:
    """Bit width needed to store each magnitude (0 for zero).

    ``bits(m) = floor(log2(m)) + 1`` for ``m > 0``.  float64 represents all
    uint32 values exactly, so the log-based formulation is exact here and
    vectorises, unlike a Python-level ``int.bit_length`` loop.
    """
    m = np.asarray(max_magnitudes, dtype=np.float64)
    out = np.zeros(m.shape, dtype=np.uint8)
    nz = m > 0
    # ceil(log2(m + 1)) == floor(log2(m)) + 1 for integer m >= 1.
    out[nz] = np.ceil(np.log2(m[nz] + 1.0)).astype(np.uint8)
    return out


def block_payload_nbytes(code_lengths: np.ndarray, block_size: int) -> np.ndarray:
    """Payload bytes per block: ``block_size/8 · (1 + c)``, 0 when constant."""
    c = np.asarray(code_lengths, dtype=np.int64)
    unit = block_size // 8
    return np.where(c > 0, unit * (1 + c), 0).astype(np.int64)


def payload_offsets(code_lengths: np.ndarray, block_size: int) -> np.ndarray:
    """Exclusive prefix sum of payload sizes: ``(n_blocks + 1,)`` offsets."""
    sizes = block_payload_nbytes(code_lengths, block_size)
    offsets = np.empty(sizes.size + 1, dtype=np.int64)
    offsets[0] = 0
    np.cumsum(sizes, out=offsets[1:])
    return offsets


def _encode_group(mags: np.ndarray, signs: np.ndarray, c: int) -> np.ndarray:
    """Encode a group of equal-code-length blocks.

    Parameters
    ----------
    mags : ``(nb, bs)`` uint32 magnitudes, all < 2**c.
    signs : ``(nb, bs)`` bool, True for negative deltas.
    c : shared code length, ``1 <= c <= 32``.

    Returns ``(nb, bs//8 * (1 + c))`` uint8 payload rows.
    """
    nb, bs = mags.shape
    unit = bs // 8
    out = np.empty((nb, unit * (1 + c)), dtype=np.uint8)
    # Sign plane first (bit-packed, MSB-first like np.packbits' default).
    out[:, :unit] = np.packbits(signs, axis=1)
    byte_count = c // 8
    remainder_bit = c % 8
    pos = unit
    # Complete byte planes: plane k holds byte k of every element, a pure
    # shift-and-mask per plane (the paper's "full bytes ... stored into a
    # byte array utilizing the ultra-fast bit-shifting method").
    for k in range(byte_count):
        out[:, pos : pos + bs] = ((mags >> np.uint32(8 * k)) & np.uint32(0xFF)).astype(
            np.uint8
        )
        pos += bs
    if remainder_bit:
        # Residual bits: the paper left-shifts by (32 - remainder_bit) then
        # right-shifts back to isolate them; the equivalent mask form below
        # feeds a single packbits call per group.  Dropping to uint8 before
        # the per-bit expansion keeps the temporary at one byte per bit.
        resid = (
            (mags >> np.uint32(8 * byte_count)) & np.uint32((1 << remainder_bit) - 1)
        ).astype(np.uint8)
        shifts = np.arange(remainder_bit - 1, -1, -1, dtype=np.uint8)
        bits = (resid[:, :, None] >> shifts) & np.uint8(1)
        out[:, pos:] = np.packbits(bits.reshape(nb, bs * remainder_bit), axis=1)
    return out


def _decode_group(
    rows: np.ndarray, c: int, block_size: int, dtype: np.dtype = np.int64
) -> np.ndarray:
    """Inverse of :func:`_encode_group`; returns ``(nb, bs)`` signed deltas."""
    nb = rows.shape[0]
    bs = block_size
    unit = bs // 8
    signs = np.unpackbits(rows[:, :unit], axis=1).astype(bool)
    mags = np.zeros((nb, bs), dtype=np.uint32)
    byte_count = c // 8
    remainder_bit = c % 8
    pos = unit
    for k in range(byte_count):
        mags |= rows[:, pos : pos + bs].astype(np.uint32) << np.uint32(8 * k)
        pos += bs
    if remainder_bit:
        packed = rows[:, pos:]
        bits = np.unpackbits(packed, axis=1)[:, : bs * remainder_bit]
        # Horner-style accumulation: ~5× faster than a broadcasted
        # shift-and-reduce because every pass is a plain elementwise op.
        bits = bits.reshape(nb, bs, remainder_bit)
        resid = bits[:, :, 0].astype(np.uint32)
        for j in range(1, remainder_bit):
            resid <<= np.uint32(1)
            resid |= bits[:, :, j]
        mags |= resid << np.uint32(8 * byte_count)
    deltas = mags.astype(dtype)
    np.negative(deltas, out=deltas, where=signs)
    return deltas


def encode_blocks(
    deltas: np.ndarray, block_size: int = DEFAULT_BLOCK_SIZE
) -> tuple[np.ndarray, np.ndarray]:
    """Fixed-length-encode ``(n_blocks, block_size)`` int64 deltas.

    Returns
    -------
    code_lengths : ``(n_blocks,)`` uint8
    payload : contiguous uint8 array; block *i* occupies
        ``payload[offsets[i]:offsets[i+1]]`` with ``offsets`` from
        :func:`payload_offsets`.

    Raises
    ------
    OverflowError
        If any magnitude needs more than :data:`MAX_CODE_LENGTH` bits.
    """
    block_size = _check_block_size(block_size)
    deltas = np.asarray(deltas)
    if deltas.ndim != 2 or deltas.shape[1] != block_size:
        raise ValueError(
            f"deltas must have shape (n_blocks, {block_size}), got {deltas.shape}"
        )
    mags64 = np.abs(deltas)
    max_mag = mags64.max(axis=1, initial=0)
    if max_mag.size and int(max_mag.max()) >= (1 << MAX_CODE_LENGTH):
        raise OverflowError(
            "prediction delta exceeds 32-bit magnitude; the error bound is too "
            "tight for this data's dynamic range"
        )
    code_lengths = required_bits(max_mag)
    offsets = payload_offsets(code_lengths, block_size)
    payload = np.empty(int(offsets[-1]), dtype=np.uint8)
    signs_all = deltas < 0
    mags = mags64.astype(np.uint32)
    for c in np.unique(code_lengths):
        if c == 0:
            continue
        idx = np.nonzero(code_lengths == c)[0]
        rows = _encode_group(mags[idx], signs_all[idx], int(c))
        row_nbytes = rows.shape[1]
        dest = offsets[idx][:, None] + np.arange(row_nbytes, dtype=np.int64)
        payload[dest.ravel()] = rows.ravel()
    return code_lengths, payload


def decode_blocks(
    code_lengths: np.ndarray,
    payload: np.ndarray,
    block_size: int = DEFAULT_BLOCK_SIZE,
) -> np.ndarray:
    """Inverse fixed-length encoding for the full block set.

    Constant blocks decode to all-zero deltas.  Returns
    ``(n_blocks, block_size)``, int32 when every code length fits (halving
    the memory traffic of the downstream prefix sums), int64 otherwise.
    """
    block_size = _check_block_size(block_size)
    code_lengths = np.asarray(code_lengths, dtype=np.uint8)
    offsets = payload_offsets(code_lengths, block_size)
    max_c = int(code_lengths.max(initial=0))
    dtype = np.int32 if max_c <= 31 else np.int64
    out = np.zeros((code_lengths.size, block_size), dtype=dtype)
    _decode_into(out, np.arange(code_lengths.size), code_lengths, offsets, payload, block_size)
    return out


def decode_selected(
    indices: np.ndarray,
    code_lengths: np.ndarray,
    offsets: np.ndarray,
    payload: np.ndarray,
    block_size: int = DEFAULT_BLOCK_SIZE,
) -> np.ndarray:
    """Decode only ``indices`` blocks (pipeline-4 gather path).

    ``offsets`` must be the array from :func:`payload_offsets` for the full
    stream.  Returns ``(len(indices), block_size)`` int64 deltas in the
    order of ``indices``.
    """
    block_size = _check_block_size(block_size)
    indices = np.asarray(indices, dtype=np.int64)
    out = np.zeros((indices.size, block_size), dtype=np.int64)
    _decode_into(out, indices, code_lengths, offsets, payload, block_size)
    return out


def _decode_into(
    out: np.ndarray,
    indices: np.ndarray,
    code_lengths: np.ndarray,
    offsets: np.ndarray,
    payload: np.ndarray,
    block_size: int,
) -> None:
    """Decode ``indices`` blocks into pre-allocated ``out`` rows."""
    sel_c = np.asarray(code_lengths, dtype=np.uint8)[indices]
    for c in np.unique(sel_c):
        if c == 0:
            continue
        where = np.nonzero(sel_c == c)[0]
        blocks = indices[where]
        row_nbytes = (block_size // 8) * (1 + int(c))
        src = offsets[blocks][:, None] + np.arange(row_nbytes, dtype=np.int64)
        rows = payload[src.ravel()].reshape(where.size, row_nbytes)
        out[where] = _decode_group(rows, int(c), block_size, out.dtype)


def encode_into(
    deltas: np.ndarray, block_size: int = DEFAULT_BLOCK_SIZE
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Like :func:`encode_blocks` but also returns the payload offsets.

    Convenience for callers (the homomorphic engine, the wire format) that
    need the offsets anyway — avoids recomputing the prefix sum.
    """
    code_lengths, payload = encode_blocks(deltas, block_size)
    return code_lengths, payload, payload_offsets(code_lengths, block_size)
