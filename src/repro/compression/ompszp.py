"""ompSZp: CPU port of cuSZp's parallelism strategy (the paper's baseline).

cuSZp is a GPU compressor; the paper evaluates against *ompSZp*, its
OpenMP/CPU translation, and attributes fZ-light's wins to four concrete
design differences, all of which are reproduced here:

* **Single-layer partitioning** — the input is cut directly into small
  blocks, and each "thread" is assigned blocks round-robin (thread ``t``
  gets blocks ``t, t+N, t+2N, …``), so consecutive work items are far apart
  in memory.  We execute blocks in that interleaved order through real
  gather/scatter passes, which costs genuine extra memory traffic.
* **One outlier per small block** — every non-skipped block stores its
  first quantised value as a raw four-byte outlier (fZ-light stores one per
  large thread-block), which is what caps ompSZp's ratio on datasets with
  many blocks, e.g. CESM-ATM.
* **Unfused quantisation and prediction** — two full passes with a
  materialised intermediate array, plus a separate code-length pass with a
  global synchronisation before encoding (cuSZp's layout needs all block
  sizes before it can place any output), i.e. four sweeps over the data
  instead of fZ-light's fused ones.
* **Bit-shuffle encoding** — magnitudes are stored plane-major (all blocks'
  bit 0, then bit 1, …) instead of fZ-light's byte-plane + residual-bit
  layout.
* **Zero-block skip** — blocks whose *original* data is exactly zero are
  recorded with a marker byte and nothing else; this is the one mechanism
  that lets ompSZp beat fZ-light on RTM Simulation Setting 1, which has a
  large quiet halo.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass

import numpy as np

from ..kernels.plan import GroupingPlan
from ..utils.chunking import num_blocks, pad_to_multiple
from ..utils.validation import ensure_float_array, ensure_positive_int
from .common import dequantize, quantize, resolve_error_bound
from .encoding import DEFAULT_BLOCK_SIZE, MAX_CODE_LENGTH, required_bits

__all__ = ["OmpSZpField", "OmpSZp", "ompszp_from_bytes"]

#: Marker stored in the code-length byte for a skipped all-zero data block.
ZERO_BLOCK_MARKER = 0xFF

_OSZP_MAGIC = b"OSZP"
_OSZP_VERSION = 1
#: magic, version, block_size, n, eb, 5 pad bytes, CRC32 — 32 bytes total,
#: matching the header size the ``nbytes`` accounting has always assumed.
_OSZP_HEADER_PREFIX = struct.Struct("<4sBHQd5x")
_OSZP_CRC = struct.Struct("<I")
_OSZP_HEADER_SIZE = _OSZP_HEADER_PREFIX.size + _OSZP_CRC.size


@dataclass
class OmpSZpField:
    """Compressed stream in cuSZp's single-layer layout."""

    n: int
    error_bound: float
    block_size: int
    code_lengths: np.ndarray  # (n_blocks,) uint8; ZERO_BLOCK_MARKER = skipped
    outliers: np.ndarray  # (n_blocks,) int64; valid where not skipped
    payload: np.ndarray  # uint8

    @property
    def n_blocks(self) -> int:
        return self.code_lengths.size

    @property
    def nbytes(self) -> int:
        """Serialised size: header + 1 B/block marker + 4 B/outlier + payload.

        Outliers are four bytes each (int32), matching cuSZp; skipped blocks
        store only their marker byte.
        """
        header = 32
        n_stored = int((self.code_lengths != ZERO_BLOCK_MARKER).sum())
        return header + self.n_blocks + 4 * n_stored + self.payload.size

    @property
    def original_nbytes(self) -> int:
        return self.n * 4

    @property
    def compression_ratio(self) -> float:
        return self.original_nbytes / self.nbytes

    def to_bytes(self) -> bytes:
        """Serialise to the cuSZp-style wire layout (checksummed).

        Skipped (all-zero) blocks store only their marker byte; outliers are
        four bytes each and present for stored blocks only — exactly the
        layout ``nbytes`` has always accounted for, so
        ``len(field.to_bytes()) == field.nbytes``.
        """
        stored = self.code_lengths != ZERO_BLOCK_MARKER
        prefix = _OSZP_HEADER_PREFIX.pack(
            _OSZP_MAGIC, _OSZP_VERSION, self.block_size, self.n, self.error_bound
        )
        markers = self.code_lengths.astype(np.uint8).tobytes()
        outliers = self.outliers[stored].astype("<i4").tobytes()
        payload = self.payload.tobytes()
        crc = zlib.crc32(prefix)
        crc = zlib.crc32(markers, crc)
        crc = zlib.crc32(outliers, crc)
        crc = zlib.crc32(payload, crc)
        return b"".join((prefix, _OSZP_CRC.pack(crc), markers, outliers, payload))


def ompszp_from_bytes(stream: bytes | memoryview) -> OmpSZpField:
    """Parse the ompSZp wire layout back into an :class:`OmpSZpField`.

    Raises ``ValueError`` on bad magic/version, truncation, checksum
    mismatch, or any structurally inconsistent geometry.
    """
    stream = memoryview(stream)
    if len(stream) < _OSZP_HEADER_SIZE:
        raise ValueError("stream shorter than header")
    magic, version, block_size, n, eb = _OSZP_HEADER_PREFIX.unpack(
        stream[: _OSZP_HEADER_PREFIX.size]
    )
    if magic != _OSZP_MAGIC:
        raise ValueError(f"bad magic {magic!r}")
    if version != _OSZP_VERSION:
        raise ValueError(f"unsupported version {version}")
    if block_size <= 0 or block_size % 8:
        raise ValueError(f"corrupt header: block_size {block_size}")
    if n < 1:
        raise ValueError(f"corrupt header: n {n}")
    if not (eb > 0 and np.isfinite(eb)):
        raise ValueError(f"corrupt header: error bound {eb}")
    n_blocks = num_blocks(n, block_size)
    pos = _OSZP_HEADER_SIZE
    if len(stream) < pos + n_blocks:
        raise ValueError("stream truncated inside block markers")
    code_lengths = np.frombuffer(
        stream, dtype=np.uint8, count=n_blocks, offset=pos
    ).copy()
    pos += n_blocks
    stored = code_lengths != ZERO_BLOCK_MARKER
    bad = stored & (code_lengths > MAX_CODE_LENGTH)
    if bad.any():
        raise ValueError("corrupt stream: code length exceeds 32 bits")
    n_stored = int(stored.sum())
    eff = np.where(stored, code_lengths, 0).astype(np.int64)
    payload_nbytes = int(
        np.where(eff > 0, (block_size // 8) * (1 + eff), 0).sum()
    )
    expected = pos + 4 * n_stored + payload_nbytes
    if len(stream) != expected:
        raise ValueError(
            f"stream has {len(stream)} bytes, markers imply {expected}"
        )
    crc = zlib.crc32(stream[: _OSZP_HEADER_PREFIX.size])
    crc = zlib.crc32(stream[_OSZP_HEADER_SIZE:], crc)
    (stored_crc,) = _OSZP_CRC.unpack(
        stream[_OSZP_HEADER_PREFIX.size : _OSZP_HEADER_SIZE]
    )
    if crc != stored_crc:
        raise ValueError(
            f"corrupt stream: checksum mismatch (stored {stored_crc:#010x}, "
            f"computed {crc:#010x})"
        )
    outliers = np.zeros(n_blocks, dtype=np.int64)
    outliers[stored] = np.frombuffer(
        stream, dtype="<i4", count=n_stored, offset=pos
    ).astype(np.int64)
    pos += 4 * n_stored
    payload = np.frombuffer(
        stream, dtype=np.uint8, count=payload_nbytes, offset=pos
    ).copy()
    return OmpSZpField(
        n=n,
        error_bound=eb,
        block_size=block_size,
        code_lengths=code_lengths,
        outliers=outliers,
        payload=payload,
    )


class OmpSZp:
    """cuSZp's CPU parallelism strategy, reproduced warts and all.

    Parameters
    ----------
    block_size : elements per block (multiple of 8; cuSZp uses 32).
    n_threads : round-robin interleave factor — determines how far apart a
        "thread's" consecutive blocks are in memory.
    """

    def __init__(
        self, block_size: int = DEFAULT_BLOCK_SIZE, n_threads: int = 36
    ) -> None:
        if block_size % 8 or block_size <= 0:
            raise ValueError("block_size must be a positive multiple of 8")
        self.block_size = block_size
        self.n_threads = ensure_positive_int(n_threads, "n_threads")

    # ------------------------------------------------------------------ #
    def _interleave_order(self, n_blocks: int) -> np.ndarray:
        """GPU-style block→thread assignment order (thread-major)."""
        idx = np.arange(n_blocks, dtype=np.int64)
        # Sort by (block % n_threads, block // n_threads): thread 0's blocks
        # first, then thread 1's, etc. — the "hop between distant small
        # blocks" pattern the paper calls out.
        return np.lexsort((idx // self.n_threads, idx % self.n_threads))

    def compress(
        self,
        data: np.ndarray,
        abs_eb: float | None = None,
        rel_eb: float | None = None,
    ) -> OmpSZpField:
        data = ensure_float_array(data)
        error_bound = resolve_error_bound(data, abs_eb=abs_eb, rel_eb=rel_eb)
        bs = self.block_size
        padded = pad_to_multiple(data, bs)
        n_blocks = padded.size // bs
        raw_blocks = padded.reshape(n_blocks, bs)

        # Zero-data skip operates on the *original* values, pre-quantisation.
        zero_mask = ~raw_blocks.any(axis=1)

        # Pass 1 (unfused): quantise everything, materialising the codes.
        codes = quantize(padded, error_bound).reshape(n_blocks, bs)
        # Pass 2 (unfused): block-local prediction; d[0] = 0, outlier = q[0].
        deltas = np.empty_like(codes)
        deltas[:, 0] = 0
        np.subtract(codes[:, 1:], codes[:, :-1], out=deltas[:, 1:])
        outliers = codes[:, 0].copy()

        # Pass 3: block-wise code lengths, then a "global synchronisation"
        # (the prefix sum that places each block's output).
        mags64 = np.abs(deltas)
        max_mag = mags64.max(axis=1, initial=0)
        if max_mag.size and int(max_mag.max()) >= (1 << MAX_CODE_LENGTH):
            raise OverflowError(
                "prediction delta exceeds 32-bit magnitude; the error bound "
                "is too tight for this data's dynamic range"
            )
        code_lengths = required_bits(max_mag)
        sizes = np.where(code_lengths > 0, (bs // 8) * (1 + code_lengths.astype(np.int64)), 0)
        sizes[zero_mask] = 0
        offsets = np.empty(n_blocks + 1, dtype=np.int64)
        offsets[0] = 0
        np.cumsum(sizes, out=offsets[1:])

        # Pass 4: encode in thread-interleaved order (gather → encode →
        # scatter), the memory-access pattern of the GPU port.
        order = self._interleave_order(n_blocks)
        payload = np.empty(int(offsets[-1]), dtype=np.uint8)
        mags = mags64.astype(np.uint32)[order]
        signs = (deltas < 0)[order]
        lens = code_lengths.copy()
        lens[zero_mask] = 0
        ordered_lens = lens[order]
        ordered_offsets = offsets[:-1][order]
        for c, sel in GroupingPlan.from_code_lengths(ordered_lens).groups():
            if c == 0:
                continue
            rows = _bitshuffle_encode(mags[sel], signs[sel], int(c))
            dest = ordered_offsets[sel][:, None] + np.arange(
                rows.shape[1], dtype=np.int64
            )
            payload[dest.ravel()] = rows.ravel()

        code_lengths = code_lengths.astype(np.uint8)
        code_lengths[zero_mask] = ZERO_BLOCK_MARKER
        return OmpSZpField(
            n=data.size,
            error_bound=error_bound,
            block_size=bs,
            code_lengths=code_lengths,
            outliers=outliers.astype(np.int64),
            payload=payload,
        )

    # ------------------------------------------------------------------ #
    def decompress(self, compressed: OmpSZpField) -> np.ndarray:
        bs = compressed.block_size
        n_blocks = compressed.n_blocks
        lens = compressed.code_lengths
        zero_mask = lens == ZERO_BLOCK_MARKER
        eff_lens = np.where(zero_mask, 0, lens).astype(np.int64)
        sizes = np.where(eff_lens > 0, (bs // 8) * (1 + eff_lens), 0)
        offsets = np.empty(n_blocks + 1, dtype=np.int64)
        offsets[0] = 0
        np.cumsum(sizes, out=offsets[1:])

        deltas = np.zeros((n_blocks, bs), dtype=np.int64)
        order = self._interleave_order(n_blocks)
        ordered_lens = eff_lens[order]
        ordered_offsets = offsets[:-1][order]
        for c, sel in GroupingPlan.from_code_lengths(ordered_lens).groups():
            if c == 0:
                continue
            row_nbytes = (bs // 8) * (1 + int(c))
            src = ordered_offsets[sel][:, None] + np.arange(row_nbytes, dtype=np.int64)
            rows = compressed.payload[src.ravel()].reshape(sel.size, row_nbytes)
            deltas[order[sel]] = _bitshuffle_decode(rows, int(c), bs)

        # Block-local prefix sum from each block's own outlier.
        codes = np.cumsum(deltas, axis=1)
        codes += compressed.outliers[:, None]
        out = dequantize(codes.reshape(-1), compressed.error_bound)
        out = out[: compressed.n]
        if zero_mask.any():
            # Skipped blocks reconstruct as exact zeros regardless of eb.
            flat_zero = np.repeat(zero_mask, bs)[: compressed.n]
            out[flat_zero] = 0.0
        return out


# ---------------------------------------------------------------------- #
# plane-major ("bit-shuffle") codec
# ---------------------------------------------------------------------- #
def _bitshuffle_encode(mags: np.ndarray, signs: np.ndarray, c: int) -> np.ndarray:
    """Encode equal-length blocks plane-major: signs, then bits 0..c−1."""
    nb, bs = mags.shape
    unit = bs // 8
    out = np.empty((nb, unit * (1 + c)), dtype=np.uint8)
    out[:, :unit] = np.packbits(signs, axis=1)
    for j in range(c):
        plane = ((mags >> np.uint32(j)) & np.uint32(1)).astype(np.uint8)
        out[:, unit * (1 + j) : unit * (2 + j)] = np.packbits(plane, axis=1)
    return out


def _bitshuffle_decode(rows: np.ndarray, c: int, block_size: int) -> np.ndarray:
    """Inverse of :func:`_bitshuffle_encode`."""
    nb = rows.shape[0]
    unit = block_size // 8
    signs = np.unpackbits(rows[:, :unit], axis=1).astype(bool)
    mags = np.zeros((nb, block_size), dtype=np.uint32)
    for j in range(c):
        plane = np.unpackbits(rows[:, unit * (1 + j) : unit * (2 + j)], axis=1)
        mags |= plane.astype(np.uint32) << np.uint32(j)
    deltas = mags.astype(np.int64)
    np.negative(deltas, out=deltas, where=signs)
    return deltas
