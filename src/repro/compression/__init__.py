"""Error-bounded lossy compression substrate.

Contents:

* :mod:`~repro.compression.fzlight` — fZ-light, the paper's ultra-fast CPU
  compressor (multi-layer partitioning, fused quantise+predict, fixed-length
  encoding).
* :mod:`~repro.compression.ompszp` — ompSZp, the cuSZp-on-CPU baseline.
* :mod:`~repro.compression.format` — the compressed container / wire format.
* :mod:`~repro.compression.encoding` — the fixed-length bit codec.
* :mod:`~repro.compression.metrics` — NRMSE / PSNR / ratio reporting.
"""

from .access import concat_fields, decompress_range
from .common import dequantize, lorenzo_decode, lorenzo_encode, quantize, resolve_error_bound
from .encoding import DEFAULT_BLOCK_SIZE, MAX_CODE_LENGTH
from .format import CompressedField, block_structure, from_bytes
from .fzlight import DEFAULT_THREADBLOCKS, FZLight, compress, decompress
from .fzlight2d import FZLight2D
from .fzlightnd import FZLightND
from .metrics import (
    QualityReport,
    check_error_bound,
    evaluate_quality,
    max_abs_error,
    max_rel_error,
    nrmse,
    psnr,
)
from .ompszp import OmpSZp, OmpSZpField, ompszp_from_bytes

__all__ = [
    "FZLight",
    "FZLight2D",
    "FZLightND",
    "OmpSZp",
    "OmpSZpField",
    "ompszp_from_bytes",
    "CompressedField",
    "from_bytes",
    "block_structure",
    "compress",
    "decompress",
    "quantize",
    "dequantize",
    "lorenzo_encode",
    "lorenzo_decode",
    "resolve_error_bound",
    "nrmse",
    "psnr",
    "max_abs_error",
    "max_rel_error",
    "QualityReport",
    "evaluate_quality",
    "check_error_bound",
    "decompress_range",
    "concat_fields",
    "DEFAULT_BLOCK_SIZE",
    "DEFAULT_THREADBLOCKS",
    "MAX_CODE_LENGTH",
]
