"""Process-wide metrics registry (counters, gauges, histograms).

The observability layer's numeric side: code anywhere in the stack reports
what it did (bytes put on the wire, homomorphic pipeline selections, retry
storms, kernel throughput) into one registry that the CLI and tests can
snapshot.  The registry is **disabled by default** and every hot path is
expected to guard its report with the one-attribute check

>>> from repro.obs.metrics import METRICS
>>> if METRICS.enabled:
...     METRICS.inc("wire.bytes", 4096)

so a production run that never asks for metrics pays a single branch per
instrumentation site and allocates nothing.  This module must stay free of
``repro`` imports — it sits below every other layer.

Metric kinds
------------
* **counter** — monotonically accumulating float (``inc``);
* **gauge** — last-write-wins value (``gauge``);
* **histogram** — running ``count/total/min/max`` summary plus a coarse
  power-of-two bucket sketch (``observe``), enough for throughput
  distributions without unbounded storage.
"""

from __future__ import annotations

import math
import threading
from contextlib import contextmanager
from typing import Iterator

__all__ = [
    "HistogramStats",
    "MetricsRegistry",
    "METRICS",
    "metrics_enabled",
]


class HistogramStats:
    """Bounded-memory summary of one observed distribution."""

    __slots__ = ("count", "total", "vmin", "vmax", "buckets")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.vmin = math.inf
        self.vmax = -math.inf
        #: power-of-two magnitude sketch: floor(log2(v)) -> count
        self.buckets: dict[int, int] = {}

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.vmin:
            self.vmin = value
        if value > self.vmax:
            self.vmax = value
        exponent = math.frexp(value)[1] - 1 if value > 0 else -1074
        self.buckets[exponent] = self.buckets.get(exponent, 0) + 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def copy(self) -> "HistogramStats":
        """Independent snapshot (readers must never share the live
        object with concurrently-observing writers)."""
        out = HistogramStats()
        out.count = self.count
        out.total = self.total
        out.vmin = self.vmin
        out.vmax = self.vmax
        out.buckets = dict(self.buckets)
        return out

    def as_dict(self) -> dict[str, float]:
        return {
            "count": self.count,
            "total": self.total,
            "min": self.vmin if self.count else 0.0,
            "max": self.vmax if self.count else 0.0,
            "mean": self.mean,
        }


class MetricsRegistry:
    """Thread-safe named counters/gauges/histograms with a no-op fast path.

    ``enabled`` is a plain attribute on purpose: the disabled check at an
    instrumentation site is one attribute load, no call, no lock.  All
    mutating methods still honour ``enabled`` themselves, so an unguarded
    call is correct — just a few nanoseconds slower.
    """

    def __init__(self, enabled: bool = False) -> None:
        self.enabled = enabled
        self._lock = threading.Lock()
        self._counters: dict[str, float] = {}
        self._gauges: dict[str, float] = {}
        self._histograms: dict[str, HistogramStats] = {}

    # ------------------------------------------------------------------ #
    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def inc(self, name: str, value: float = 1.0) -> None:
        """Add ``value`` to counter ``name`` (created at zero)."""
        if not self.enabled:
            return
        with self._lock:
            self._counters[name] = self._counters.get(name, 0.0) + value

    def gauge(self, name: str, value: float) -> None:
        """Set gauge ``name`` to ``value`` (last write wins)."""
        if not self.enabled:
            return
        with self._lock:
            self._gauges[name] = float(value)

    def observe(self, name: str, value: float) -> None:
        """Record one sample into histogram ``name``."""
        if not self.enabled:
            return
        with self._lock:
            hist = self._histograms.get(name)
            if hist is None:
                hist = self._histograms[name] = HistogramStats()
            hist.observe(value)

    # ------------------------------------------------------------------ #
    # Readers take the same lock as writers and return copies, so a
    # thread (or the aggregation service's event loop) polling counters
    # mid-run never sees torn histogram state or a mutating dict.
    def counter(self, name: str) -> float:
        with self._lock:
            return self._counters.get(name, 0.0)

    def counters(self) -> dict[str, float]:
        with self._lock:
            return dict(self._counters)

    def gauges(self) -> dict[str, float]:
        with self._lock:
            return dict(self._gauges)

    def histogram(self, name: str) -> HistogramStats | None:
        with self._lock:
            hist = self._histograms.get(name)
            return hist.copy() if hist is not None else None

    def snapshot(self) -> dict[str, dict]:
        """One JSON-ready view of everything recorded so far."""
        with self._lock:
            return {
                "counters": dict(self._counters),
                "gauges": dict(self._gauges),
                "histograms": {
                    k: h.as_dict() for k, h in self._histograms.items()
                },
            }

    def reset(self) -> None:
        """Drop every recorded value (the enabled flag is untouched)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()


#: The process-wide registry every built-in instrumentation site reports to.
METRICS = MetricsRegistry()


@contextmanager
def metrics_enabled(
    registry: MetricsRegistry = METRICS, reset: bool = True
) -> Iterator[MetricsRegistry]:
    """Scoped enable (used by the CLI and tests); restores the prior state."""
    previous = registry.enabled
    if reset:
        registry.reset()
    registry.enabled = True
    try:
        yield registry
    finally:
        registry.enabled = previous
