"""Span-tree reconstruction from a flat :class:`TraceLog`.

The trace layer records flat events (cheap at run time); this module folds
them back into the hierarchy the exporters and summaries want::

    collective
    └── phase
        └── round
            └── charge (per-rank compute / comm / wait leaves)

Timestamps are virtual seconds.  Round *r* occupies the interval starting
at the cumulative duration of rounds ``0..r-1`` — in the bulk-synchronous
model virtual time only advances at round boundaries, which is also
exactly how ``collective``/``phase`` markers are stamped, so the two
sources of time agree by construction.  Within a round each rank's charges
are laid out back-to-back from the round's start: the per-rank lane shows
*what* the rank spent its round on, not a claim about sub-round ordering
(the simulator has none).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from ..runtime.trace import TraceEvent, TraceLog

__all__ = ["Span", "build_spans"]


@dataclass
class Span:
    """One node of the reconstructed hierarchy.

    ``kind`` is one of ``trace`` (synthetic root), ``collective``,
    ``phase``, ``round``, ``compute``, ``comm``, ``wait``, or ``fault``
    (zero-width marker).  Leaf charge spans carry the owning ``rank`` and,
    for transfers, the payload ``nbytes``.
    """

    kind: str
    name: str
    start: float
    end: float
    rank: int = -1
    nbytes: int = 0
    children: list["Span"] = field(default_factory=list)

    @property
    def duration(self) -> float:
        return self.end - self.start

    def walk(self) -> Iterator["Span"]:
        """Depth-first iteration over this span and all descendants."""
        yield self
        for child in self.children:
            yield from child.walk()


def build_spans(log: TraceLog) -> Span:
    """Fold ``log`` into a span tree rooted at a synthetic ``trace`` span.

    Robust to imperfect logs: an unmatched ``end`` is ignored, unmatched
    ``begin`` spans are closed at the final timestamp, and charges of a
    trailing never-closed round become a zero-duration ``round (open)``
    node so nothing recorded is dropped.
    """
    root = Span("trace", "trace", 0.0, 0.0)
    stack = [root]
    pending: dict[int, list[TraceEvent]] = {}
    now = 0.0
    for e in log.events:
        if e.kind == "begin":
            span = Span(e.bucket, e.label, e.seconds, e.seconds)
            stack[-1].children.append(span)
            stack.append(span)
        elif e.kind == "end":
            if len(stack) > 1:
                stack[-1].end = e.seconds
                stack.pop()
        elif e.kind == "round":
            span = Span(
                "round", f"round {e.round_index}", now, now + e.seconds
            )
            span.children = _charge_spans(
                pending.pop(e.round_index, []), now
            )
            stack[-1].children.append(span)
            now += e.seconds
        else:
            pending.setdefault(e.round_index, []).append(e)
    for r in sorted(pending):
        span = Span("round", f"round {r} (open)", now, now)
        span.children = _charge_spans(pending[r], now)
        root.children.append(span)
    root.end = now
    while len(stack) > 1:
        stack[-1].end = max(stack[-1].end, now)
        stack.pop()
    return root


def _charge_spans(events: list[TraceEvent], start: float) -> list[Span]:
    """Lay one round's charges out as per-rank back-to-back leaves."""
    cursors: dict[int, float] = {}
    out = []
    for e in events:
        begin = cursors.get(e.rank, start)
        end = begin + max(e.seconds, 0.0)
        if e.kind == "fault":
            kind = "wait" if e.seconds > 0.0 else "fault"
        else:
            kind = e.kind
        out.append(
            Span(kind, e.bucket, begin, end, rank=e.rank, nbytes=e.nbytes)
        )
        cursors[e.rank] = end
    return out
