"""Trace exporters: Chrome ``trace_event`` JSON, per-bucket CSV, terminal.

The Chrome format (the JSON array flavour wrapped in ``traceEvents``) is
what ``chrome://tracing`` and Perfetto's legacy importer read: span
begin/end pairs and rounds go on thread 0 of process 0, each simulated
rank gets its own thread lane for charge rectangles, per-round bytes ride
on a counter track, and zero-duration fault markers become instants.
Timestamps are microseconds (the format's unit) of *virtual* time.
"""

from __future__ import annotations

import io
import json
from pathlib import Path

from ..runtime.clock import BUCKETS
from ..runtime.trace import TraceLog
from .metrics import MetricsRegistry
from .spans import Span, build_spans

__all__ = [
    "chrome_trace",
    "write_chrome_trace",
    "validate_chrome_trace",
    "bucket_csv",
    "summary_text",
    "diff_text",
]

_US = 1e6  # virtual seconds -> trace_event microseconds


def chrome_trace(log: TraceLog, name: str = "repro") -> dict:
    """Render ``log`` as a Chrome ``trace_event`` JSON document (a dict)."""
    root = build_spans(log)
    ranks = sorted(
        {s.rank for s in root.walk() if s.rank >= 0}
    )
    events: list[dict] = [
        _meta("process_name", 0, 0, name),
        _meta("thread_name", 0, 0, "collective"),
    ]
    for rank in ranks:
        events.append(_meta("thread_name", 0, rank + 1, f"rank {rank}"))
    for span in root.walk():
        if span.kind in ("collective", "phase"):
            events.append(_duration_event("B", span))
            events.append(_duration_event("E", span))
        elif span.kind == "round":
            events.append(_complete_event(span, tid=0))
            events.append(
                {
                    "name": "bytes_moved",
                    "ph": "C",
                    "ts": span.start * _US,
                    "pid": 0,
                    "tid": 0,
                    "args": {
                        "bytes": sum(c.nbytes for c in span.children)
                    },
                }
            )
        elif span.kind == "fault":
            events.append(
                {
                    "name": span.name,
                    "ph": "i",
                    "ts": span.start * _US,
                    "pid": 0,
                    "tid": span.rank + 1,
                    "s": "t",
                }
            )
        elif span.kind in ("compute", "comm", "wait"):
            events.append(_complete_event(span, tid=span.rank + 1))
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def _meta(name: str, pid: int, tid: int, value: str) -> dict:
    return {
        "name": name,
        "ph": "M",
        "pid": pid,
        "tid": tid,
        "args": {"name": value},
    }


def _duration_event(ph: str, span: Span) -> dict:
    return {
        "name": span.name,
        "cat": span.kind,
        "ph": ph,
        "ts": (span.start if ph == "B" else span.end) * _US,
        "pid": 0,
        "tid": 0,
    }


def _complete_event(span: Span, tid: int) -> dict:
    event = {
        "name": span.name,
        "cat": span.kind,
        "ph": "X",
        "ts": span.start * _US,
        "dur": span.duration * _US,
        "pid": 0,
        "tid": tid,
    }
    if span.nbytes:
        event["args"] = {"nbytes": span.nbytes}
    return event


def write_chrome_trace(
    log: TraceLog, path: str | Path, name: str = "repro"
) -> Path:
    path = Path(path)
    path.write_text(json.dumps(chrome_trace(log, name=name)))
    return path


_REQUIRED_BY_PHASE = {
    "M": ("name", "pid", "tid", "args"),
    "B": ("name", "ts", "pid", "tid"),
    "E": ("ts", "pid", "tid"),
    "X": ("name", "ts", "dur", "pid", "tid"),
    "C": ("name", "ts", "args"),
    "i": ("name", "ts", "s"),
}


def validate_chrome_trace(document: dict) -> None:
    """Structurally validate a Chrome ``trace_event`` document.

    Checks the subset of the format specification the exporter emits:
    phase-appropriate required keys, numeric non-negative timestamps and
    durations, and balanced B/E nesting per (pid, tid).  Raises
    ``ValueError`` on the first violation; used by the CI smoke job.
    """
    if not isinstance(document, dict) or "traceEvents" not in document:
        raise ValueError("document must be a dict with a traceEvents list")
    events = document["traceEvents"]
    if not isinstance(events, list):
        raise ValueError("traceEvents must be a list")
    depth: dict[tuple, int] = {}
    for i, e in enumerate(events):
        if not isinstance(e, dict):
            raise ValueError(f"event {i} is not an object")
        ph = e.get("ph")
        required = _REQUIRED_BY_PHASE.get(ph)
        if required is None:
            raise ValueError(f"event {i}: unknown phase {ph!r}")
        for key in required:
            if key not in e:
                raise ValueError(f"event {i} (ph={ph}): missing {key!r}")
        if "ts" in e and (
            not isinstance(e["ts"], (int, float)) or e["ts"] < 0
        ):
            raise ValueError(f"event {i}: bad ts {e['ts']!r}")
        if "dur" in e and (
            not isinstance(e["dur"], (int, float)) or e["dur"] < 0
        ):
            raise ValueError(f"event {i}: bad dur {e['dur']!r}")
        if ph in ("B", "E"):
            lane = (e.get("pid"), e.get("tid"))
            depth[lane] = depth.get(lane, 0) + (1 if ph == "B" else -1)
            if depth[lane] < 0:
                raise ValueError(f"event {i}: E without matching B")
    unbalanced = {lane: d for lane, d in depth.items() if d}
    if unbalanced:
        raise ValueError(f"unbalanced B/E spans: {unbalanced}")


# ---------------------------------------------------------------------- #
# CSV
# ---------------------------------------------------------------------- #
def bucket_csv(log: TraceLog) -> str:
    """Per-round CSV: summary columns plus rank-summed seconds per bucket."""
    per_round: dict[int, dict[str, float]] = {}
    for e in log.events:
        if e.kind == "compute":
            row = per_round.setdefault(e.round_index, {})
            row[e.bucket] = row.get(e.bucket, 0.0) + e.seconds
        elif e.kind == "comm":
            row = per_round.setdefault(e.round_index, {})
            row["MPI"] = row.get("MPI", 0.0) + e.seconds
        elif e.kind == "fault" and e.seconds > 0.0:
            row = per_round.setdefault(e.round_index, {})
            row["WAIT"] = row.get("WAIT", 0.0) + e.seconds
    columns = list(BUCKETS) + ["WAIT"]
    out = io.StringIO()
    out.write(
        "round,duration,max_compute,comm_time,wait_time,bytes_moved,"
        + ",".join(columns)
        + "\n"
    )
    for s in log.round_summaries():
        row = per_round.get(s.round_index, {})
        out.write(
            f"{s.round_index},{s.duration:.9g},{s.max_compute:.9g},"
            f"{s.comm_time:.9g},{s.wait_time:.9g},{s.bytes_moved}"
        )
        for bucket in columns:
            out.write(f",{row.get(bucket, 0.0):.9g}")
        out.write("\n")
    return out.getvalue()


# ---------------------------------------------------------------------- #
# terminal summary / diff
# ---------------------------------------------------------------------- #
def summary_text(
    log: TraceLog, metrics: MetricsRegistry | None = None
) -> str:
    """Human-readable digest of one trace (plus optional metrics)."""
    summaries = log.round_summaries()
    total = sum(s.duration for s in summaries)
    lines = [
        f"rounds: {log.n_rounds}   total: {total * 1e3:.3f} ms",
    ]
    if summaries:
        compute_bound = sum(1 for s in summaries if s.compute_bound)
        lines.append(
            f"compute-bound rounds: {compute_bound}/{len(summaries)}   "
            f"bytes moved: {sum(s.bytes_moved for s in summaries)}"
        )
        wait = sum(s.wait_time for s in summaries)
        if wait > 0.0:
            lines.append(f"fault-wait on critical path: {wait * 1e3:.3f} ms")
    totals = log.bucket_totals()
    if totals:
        rendered = "  ".join(
            f"{bucket}={seconds * 1e3:.3f}ms"
            for bucket, seconds in sorted(totals.items())
        )
        lines.append(f"bucket seconds (rank-summed): {rendered}")
    faults = log.fault_summary()
    if faults:
        rendered = "  ".join(
            f"{label}={count}" for label, count in sorted(faults.items())
        )
        lines.append(f"faults: {rendered}")
    if summaries:
        slowest = sorted(summaries, key=lambda s: -s.duration)[:3]
        lines.append("slowest rounds:")
        for s in slowest:
            side = "compute" if s.compute_bound else "comm"
            lines.append(
                f"  #{s.round_index}: {s.duration * 1e3:.3f} ms "
                f"({side}-bound, {s.bytes_moved} B)"
            )
    if metrics is not None:
        snap = metrics.snapshot()
        if snap["counters"]:
            lines.append("counters:")
            for key, value in sorted(snap["counters"].items()):
                lines.append(f"  {key} = {value:g}")
        for key, hist in sorted(snap["histograms"].items()):
            lines.append(
                f"  {key}: n={hist['count']} mean={hist['mean']:.3g} "
                f"min={hist['min']:.3g} max={hist['max']:.3g}"
            )
    return "\n".join(lines)


def diff_text(a: TraceLog, b: TraceLog) -> str:
    """Compare two traces (A → B): totals, buckets, bytes, faults."""
    sa, sb = a.round_summaries(), b.round_summaries()
    ta = sum(s.duration for s in sa)
    tb = sum(s.duration for s in sb)
    lines = [
        f"rounds: {a.n_rounds} -> {b.n_rounds}",
        f"total:  {ta * 1e3:.3f} ms -> {tb * 1e3:.3f} ms ({_pct(ta, tb)})",
        f"bytes:  {sum(s.bytes_moved for s in sa)} -> "
        f"{sum(s.bytes_moved for s in sb)}",
    ]
    buckets_a, buckets_b = a.bucket_totals(), b.bucket_totals()
    for bucket in sorted(buckets_a.keys() | buckets_b.keys()):
        va = buckets_a.get(bucket, 0.0)
        vb = buckets_b.get(bucket, 0.0)
        lines.append(
            f"{bucket:>5}:  {va * 1e3:.3f} ms -> {vb * 1e3:.3f} ms "
            f"({_pct(va, vb)})"
        )
    faults_a, faults_b = a.fault_summary(), b.fault_summary()
    if faults_a or faults_b:
        for label in sorted(faults_a.keys() | faults_b.keys()):
            lines.append(
                f"fault {label}: {faults_a.get(label, 0)} -> "
                f"{faults_b.get(label, 0)}"
            )
    return "\n".join(lines)


def _pct(a: float, b: float) -> str:
    if a == 0.0:
        return "n/a" if b == 0.0 else "+inf"
    return f"{(b - a) / a * 100.0:+.1f}%"
