"""Observability: metrics registry, span reconstruction, trace exporters.

Layering (import-cycle contract): :mod:`.metrics` is stdlib-only and is
the *only* submodule lower layers (:mod:`repro.runtime`,
:mod:`repro.kernels`) may import.  :mod:`.spans` and :mod:`.export` sit
above :mod:`repro.runtime.trace` and are therefore loaded lazily here —
an eager import would close the cycle
``kernels.dispatch → obs → spans → runtime → compression → kernels``.
"""

from .metrics import METRICS, HistogramStats, MetricsRegistry, metrics_enabled

__all__ = [
    "METRICS",
    "HistogramStats",
    "MetricsRegistry",
    "metrics_enabled",
    "Span",
    "build_spans",
    "bucket_csv",
    "chrome_trace",
    "diff_text",
    "summary_text",
    "validate_chrome_trace",
    "write_chrome_trace",
]

_LAZY = {
    "Span": "spans",
    "build_spans": "spans",
    "bucket_csv": "export",
    "chrome_trace": "export",
    "diff_text": "export",
    "summary_text": "export",
    "validate_chrome_trace": "export",
    "write_chrome_trace": "export",
}


def __getattr__(name: str):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    module = importlib.import_module(f".{module_name}", __name__)
    value = getattr(module, name)
    globals()[name] = value
    return value
