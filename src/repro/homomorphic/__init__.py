"""Homomorphic compression: reductions performed directly on compressed data.

* :class:`~repro.homomorphic.hzdynamic.HZDynamic` — the paper's hZ-dynamic
  engine with four adaptively-selected pipelines.
* :class:`~repro.homomorphic.static_pipeline.StaticHomomorphic` — the static
  (always partial-decompress) baseline used for ablation.
* :class:`~repro.homomorphic.hzdynamic.PipelineStats` — Table V accounting.
"""

from .hzdynamic import HZDynamic, PipelineStats, homomorphic_sum
from .ops import difference_energy, linear_combination, mean_of, supported_ops
from .static_pipeline import StaticHomomorphic

__all__ = [
    "HZDynamic",
    "StaticHomomorphic",
    "PipelineStats",
    "homomorphic_sum",
    "linear_combination",
    "mean_of",
    "difference_energy",
    "supported_ops",
]
