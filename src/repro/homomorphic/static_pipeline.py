"""Static homomorphic pipeline (HoSZp-style) — ablation baseline.

The static approach the paper contrasts against (§III-B4, Figure 4): *every*
block is inverse fixed-length encoded into a full integer prediction array,
the reduction is applied, and the whole array is re-encoded.  It is still
homomorphic (no quantisation, no extra error) but pays the "partial"
decompression/recompression for constant and copyable blocks too, and must
allocate the full-size integer prediction arrays hZ-dynamic avoids.

Used by ``benchmarks/bench_ablation_static_vs_dynamic.py`` to quantify what
the dynamic pipeline selection is worth.
"""

from __future__ import annotations

import numpy as np

from ..compression.encoding import decode_blocks, encode_blocks, payload_offsets
from ..compression.format import CompressedField

__all__ = ["StaticHomomorphic"]


class StaticHomomorphic:
    """Always-IFE/FE homomorphic operator (pipeline 4 applied everywhere)."""

    def add(self, a: CompressedField, b: CompressedField) -> CompressedField:
        """Homomorphic sum via full inverse/forward fixed-length encoding."""
        if not a.compatible_with(b):
            raise ValueError(
                "operands are not homomorphically compatible (need identical "
                "length, block geometry and error bound)"
            )
        bs = a.block_size
        # The large materialised integer prediction arrays are the point:
        # this is the memory footprint hZ-dynamic's block-local walk avoids.
        da = decode_blocks(a.code_lengths, a.payload, bs).astype(np.int64)
        db = decode_blocks(b.code_lengths, b.payload, bs)
        da += db
        code_lengths, payload = encode_blocks(da, bs)
        return CompressedField(
            n=a.n,
            error_bound=a.error_bound,
            block_size=bs,
            n_threadblocks=a.n_threadblocks,
            outliers=a.outliers + b.outliers,
            predictor=a.predictor,
            rows=a.rows,
            cols=a.cols,
            code_lengths=code_lengths,
            payload=payload,
            _offsets=payload_offsets(code_lengths, bs),
        )

    def reduce(self, fields: list[CompressedField]) -> CompressedField:
        """Sequential homomorphic sum of ≥ 1 fields."""
        if not fields:
            raise ValueError("reduce requires at least one field")
        acc = fields[0]
        for nxt in fields[1:]:
            acc = self.add(acc, nxt)
        return acc
