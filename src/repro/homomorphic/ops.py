"""Higher-level homomorphic operations built on hZ-dynamic's linearity.

The paper demonstrates ``sum`` and notes the principles extend to other
reductions.  Everything *linear with integer coefficients* is exact in the
compressed domain:

* :func:`linear_combination` — ``Σ wᵢ·xᵢ`` for integer weights ``wᵢ``;
* :func:`mean_of` — the exact ensemble mean, obtained without any division
  in the compressed domain: the integer code sum is dequantised on a grid
  ``N×`` finer (``eb/N``), so ``mean = (2·eb/N)·Σq`` exactly;
* :func:`difference_energy` — ‖x − y‖² of two compressed operands, a
  common convergence/validation statistic, computed via one homomorphic
  subtract and one decompression.

Non-linear reductions (min/max/prod) are *not* homomorphic in this
representation; :func:`supported_ops` documents the boundary.
"""

from __future__ import annotations

import numpy as np

from ..compression.common import dequantize, lorenzo_decode
from ..compression.encoding import decode_blocks
from ..compression.format import CompressedField, blocks_to_deltas
from ..compression.fzlight import FZLight
from .hzdynamic import HZDynamic

__all__ = [
    "supported_ops",
    "linear_combination",
    "mean_of",
    "difference_energy",
]


def supported_ops() -> dict[str, bool]:
    """Which reduction semantics survive the compressed domain."""
    return {
        "sum": True,
        "subtract": True,
        "integer-weighted linear combination": True,
        "mean (exact, via grid refinement)": True,
        "min": False,
        "max": False,
        "prod": False,
    }


def linear_combination(
    fields: list[CompressedField],
    weights: list[int],
    engine: HZDynamic | None = None,
) -> CompressedField:
    """Exact ``Σ wᵢ·xᵢ`` on compressed operands, integer weights only."""
    if len(fields) != len(weights):
        raise ValueError("fields and weights must have the same length")
    if not fields:
        raise ValueError("need at least one field")
    engine = engine or HZDynamic(collect_stats=False)
    acc: CompressedField | None = None
    for field, weight in zip(fields, weights):
        term = engine.scale(field, int(weight))
        acc = term if acc is None else engine.add(acc, term)
    assert acc is not None
    return acc


def _decode_codes(field: CompressedField) -> np.ndarray:
    """Integer quantisation codes of a compressed field (no dequantise)."""
    from ..compression.format import PREDICTOR_LORENZO_1D

    if field.predictor != PREDICTOR_LORENZO_1D:
        raise ValueError(
            "code-level access is implemented for 1-D Lorenzo streams; "
            "decompress N-D streams and operate in the float domain"
        )
    structure = field.structure
    blocks = decode_blocks(field.code_lengths, field.payload, field.block_size)
    deltas = blocks_to_deltas(blocks, structure)
    return lorenzo_decode(deltas, field.outliers, structure.bounds)


def mean_of(fields: list[CompressedField], engine: HZDynamic | None = None) -> np.ndarray:
    """Exact ensemble mean of compressed operands.

    The homomorphic sum's codes are ``Σ qᵢ``; dequantising them with a
    bound of ``eb/N`` yields ``(2·eb/N)·Σqᵢ = mean(dequantised inputs)``
    exactly — no compressed-domain division, no extra rounding beyond the
    single float32 store.
    """
    if not fields:
        raise ValueError("need at least one field")
    engine = engine or HZDynamic(collect_stats=False)
    total = engine.reduce(list(fields))
    codes = _decode_codes(total)
    return dequantize(codes, total.error_bound / len(fields))


def difference_energy(
    a: CompressedField,
    b: CompressedField,
    engine: HZDynamic | None = None,
) -> float:
    """‖x̂_a − x̂_b‖₂² computed through the compressed domain.

    One homomorphic subtraction + one decode; exact in the integer codes
    (the energy of the code difference on the quantisation grid).
    """
    engine = engine or HZDynamic(collect_stats=False)
    diff = engine.subtract(a, b)
    values = FZLight(
        block_size=diff.block_size, n_threadblocks=diff.n_threadblocks
    ).decompress(diff)
    return float(np.dot(values.astype(np.float64), values.astype(np.float64)))
