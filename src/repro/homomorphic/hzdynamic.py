"""hZ-dynamic: the dynamic homomorphic compression pipeline (paper §III-B4).

Reductions run *directly* on two fZ-light compressed streams.  For every
small block the engine inspects the pair of code lengths ``(x, y)`` and
routes the block to the cheapest possible pipeline:

=========  ==================  =================================================
Pipeline   Condition           Work performed
=========  ==================  =================================================
1          ``x = 0, y = 0``    record a ``0`` code length — nothing else
2          ``x = 0, y ≠ 0``    copy block 2's bytes verbatim
3          ``x ≠ 0, y = 0``    copy block 1's bytes verbatim
4          ``x ≠ 0, y ≠ 0``    inverse fixed-length encode both, add the
                               integer predictions, re-encode (the only
                               "partial decompress" case — what a *static*
                               homomorphic pipeline does for every block)
=========  ==================  =================================================

Thread-block outliers are simply added.  Correctness rests on linearity:
quantisation codes and Lorenzo deltas are both linear in the input, so the
homomorphic sum decompresses to exactly the sum of the two operands'
decompressed values — no additional quantisation, hence no additional error
(§III-B4, last paragraph).

Besides ``sum`` the same linearity gives ``subtract`` and scalar ``scale``
for free; non-linear reductions (min/max) are *not* homomorphic in this
representation and are rejected explicitly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..compression.encoding import (
    decode_selected,
    encode_blocks,
    payload_offsets,
)
from ..compression.format import CompressedField

__all__ = ["PipelineStats", "HZDynamic", "homomorphic_sum"]


@dataclass
class PipelineStats:
    """Per-pipeline block counts for one or more homomorphic operations.

    ``percentages`` reproduces the Table V columns.
    """

    counts: np.ndarray = field(
        default_factory=lambda: np.zeros(4, dtype=np.int64)
    )

    @property
    def total(self) -> int:
        return int(self.counts.sum())

    @property
    def percentages(self) -> np.ndarray:
        """Share of blocks routed to pipelines 1–4, in percent."""
        total = self.total
        if total == 0:
            return np.zeros(4)
        return 100.0 * self.counts / total

    def merge(self, other: "PipelineStats") -> "PipelineStats":
        self.counts += other.counts
        return self

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        p = self.percentages
        return " ".join(f"P{i + 1}={p[i]:.2f}%" for i in range(4))


def _row_copy_indices(
    starts: np.ndarray, lengths: np.ndarray
) -> np.ndarray:
    """Flat indices covering variable-length rows ``[starts_i, starts_i+len_i)``.

    The classic repeat/arange trick: one vectorised gather replaces a Python
    loop over blocks (pipelines 2/3 reduce to exactly this copy).
    """
    total = int(lengths.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    row_of = np.repeat(np.arange(lengths.size, dtype=np.int64), lengths)
    ends = np.cumsum(lengths)
    within = np.arange(total, dtype=np.int64) - np.repeat(ends - lengths, lengths)
    return starts[row_of] + within


def _count_runs(idx: np.ndarray) -> int:
    """Number of maximal consecutive runs in sorted block indices (cheap)."""
    if idx.size == 0:
        return 0
    return int((np.diff(idx) != 1).sum()) + 1


def _block_runs(idx: np.ndarray) -> list[tuple[int, int]]:
    """Split sorted block indices into maximal consecutive runs.

    Consecutive blocks occupy *contiguous* byte ranges in every payload
    involved, so each run collapses to one slice copy — the Python-level
    analogue of the block-wise ``memcpy`` the C implementation gets for
    free.  Returns ``(start_pos, end_pos)`` positions into ``idx``.
    Callers should gate on :func:`_count_runs` first; materialising the
    list is only worth it when runs are long.
    """
    if idx.size == 0:
        return []
    splits = np.flatnonzero(np.diff(idx) != 1) + 1
    bounds = np.concatenate(([0], splits, [idx.size]))
    return [(int(bounds[i]), int(bounds[i + 1])) for i in range(bounds.size - 1)]


class HZDynamic:
    """Dynamic homomorphic operator over :class:`CompressedField` pairs.

    Parameters
    ----------
    collect_stats : record pipeline-selection counts (Table V); a hair of
        overhead, on by default because the collectives report it.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.compression import FZLight
    >>> comp = FZLight()
    >>> x = np.linspace(0, 1, 4096).astype(np.float32)
    >>> y = np.cos(np.linspace(0, 9, 4096)).astype(np.float32)
    >>> eb = 1e-4
    >>> cx, cy = comp.compress(x, abs_eb=eb), comp.compress(y, abs_eb=eb)
    >>> hz = HZDynamic()
    >>> csum = hz.add(cx, cy)
    >>> lhs = comp.decompress(csum)
    >>> rhs = comp.decompress(cx) + comp.decompress(cy)
    >>> # exact in the integer-code domain; the float32 stores of the two
    >>> # sides may differ by one ulp (sum-then-scale vs scale-then-sum)
    >>> bool(np.abs(lhs - rhs).max() <= np.spacing(np.abs(rhs).max()))
    True
    """

    #: When pipeline 4 would cover more than this fraction of blocks, the
    #: engine processes the whole stream through one contiguous
    #: IFE→add→FE pass instead of per-pipeline gathers: with almost no
    #: copyable blocks to exploit, the gather bookkeeping costs more than
    #: it saves.  This is part of the run-time heuristic — the dynamic
    #: selector picks the cheapest *execution strategy*, not just the
    #: cheapest per-block pipeline.
    DENSE_THRESHOLD = 0.75

    def __init__(self, collect_stats: bool = True) -> None:
        self.collect_stats = collect_stats
        self.stats = PipelineStats()

    def reset_stats(self) -> None:
        self.stats = PipelineStats()

    # ------------------------------------------------------------------ #
    def add(self, a: CompressedField, b: CompressedField) -> CompressedField:
        """Homomorphic sum of two compatible compressed fields."""
        if not a.compatible_with(b):
            raise ValueError(
                "operands are not homomorphically compatible (need identical "
                "length, block geometry and error bound)"
            )
        bs = a.block_size
        ca = a.code_lengths
        cb = b.code_lengths
        a_zero = ca == 0
        b_zero = cb == 0

        p2 = a_zero & ~b_zero
        p3 = ~a_zero & b_zero
        p4 = ~a_zero & ~b_zero

        # Pipeline statistics are defined by the block classification,
        # independent of which execution strategy computes the result.
        if self.collect_stats:
            self.stats.counts += np.array(
                [
                    int((a_zero & b_zero).sum()),
                    int(p2.sum()),
                    int(p3.sum()),
                    int(p4.sum()),
                ],
                dtype=np.int64,
            )

        if int(p4.sum()) > self.DENSE_THRESHOLD * ca.size:
            return self._add_dense(a, b)

        out_lengths = np.zeros_like(ca)
        out_lengths[p2] = cb[p2]
        out_lengths[p3] = ca[p3]

        # Pipeline 4 first: its re-encoded code lengths decide output sizes.
        idx4 = np.nonzero(p4)[0]
        if idx4.size:
            da = decode_selected(idx4, ca, a.offsets, a.payload, bs)
            db = decode_selected(idx4, cb, b.offsets, b.payload, bs)
            da += db  # int64 accumulation; overflow detected on re-encode
            lens4, payload4, offsets4 = _encode_with_offsets(da, bs)
            out_lengths[idx4] = lens4

        out_offsets = payload_offsets(out_lengths, bs)
        payload = np.empty(int(out_offsets[-1]), dtype=np.uint8)

        self._copy_pipeline(payload, out_offsets, p2, b, out_lengths, bs)
        self._copy_pipeline(payload, out_offsets, p3, a, out_lengths, bs)
        if idx4.size:
            # payload4 rows are consecutive for consecutive idx4 entries,
            # so each run is one contiguous slice on both sides.
            if _count_runs(idx4) <= idx4.size // 8 + 64:
                for s, e in _block_runs(idx4):
                    dst_lo = int(out_offsets[idx4[s]])
                    dst_hi = int(out_offsets[idx4[e - 1] + 1])
                    payload[dst_lo:dst_hi] = payload4[
                        int(offsets4[s]) : int(offsets4[e])
                    ]
            else:
                sizes4 = np.diff(offsets4)
                dst = _row_copy_indices(out_offsets[idx4], sizes4)
                payload[dst] = payload4

        return CompressedField(
            n=a.n,
            error_bound=a.error_bound,
            block_size=bs,
            n_threadblocks=a.n_threadblocks,
            outliers=a.outliers + b.outliers,
            predictor=a.predictor,
            rows=a.rows,
            cols=a.cols,
            code_lengths=out_lengths,
            payload=payload,
            _offsets=out_offsets,
        )

    @staticmethod
    def _add_dense(a: CompressedField, b: CompressedField) -> CompressedField:
        """Contiguous full-stream IFE→add→FE pass (dense operand pairs)."""
        from ..compression.encoding import decode_blocks

        bs = a.block_size
        da = decode_blocks(a.code_lengths, a.payload, bs).astype(np.int64)
        db = decode_blocks(b.code_lengths, b.payload, bs)
        da += db
        code_lengths, payload, offsets = _encode_with_offsets(da, bs)
        return CompressedField(
            n=a.n,
            error_bound=a.error_bound,
            block_size=bs,
            n_threadblocks=a.n_threadblocks,
            outliers=a.outliers + b.outliers,
            predictor=a.predictor,
            rows=a.rows,
            cols=a.cols,
            code_lengths=code_lengths,
            payload=payload,
            _offsets=offsets,
        )

    @staticmethod
    def _copy_pipeline(
        payload: np.ndarray,
        out_offsets: np.ndarray,
        mask: np.ndarray,
        source: CompressedField,
        out_lengths: np.ndarray,
        block_size: int,
    ) -> None:
        """Pipelines 2/3: verbatim byte copy of the non-constant operand.

        Runs of consecutive blocks copy as single slices (quiet/active
        regions are spatially coherent in real fields); heavily fragmented
        masks fall back to one vectorised gather/scatter.
        """
        idx = np.nonzero(mask)[0]
        if not idx.size:
            return
        src_offsets = source.offsets
        if _count_runs(idx) <= idx.size // 8 + 64:
            for s, e in _block_runs(idx):
                lo, hi = int(idx[s]), int(idx[e - 1] + 1)
                payload[int(out_offsets[lo]) : int(out_offsets[hi])] = source.payload[
                    int(src_offsets[lo]) : int(src_offsets[hi])
                ]
        else:
            sizes = (block_size // 8) * (1 + out_lengths[idx].astype(np.int64))
            src = _row_copy_indices(src_offsets[idx], sizes)
            dst = _row_copy_indices(out_offsets[idx], sizes)
            payload[dst] = source.payload[src]

    # ------------------------------------------------------------------ #
    def scale(self, a: CompressedField, factor: int) -> CompressedField:
        """Homomorphic integer scaling (linearity extension).

        Only integer factors keep the representation exact; use
        ``subtract(zero, a)`` via ``factor=-1`` for negation.
        """
        if int(factor) != factor:
            raise ValueError("homomorphic scaling requires an integer factor")
        factor = int(factor)
        if factor == 1:
            return a.copy()
        bs = a.block_size
        nonconst = np.nonzero(a.code_lengths != 0)[0]
        out_lengths = np.zeros_like(a.code_lengths)
        if nonconst.size and factor != 0:
            deltas = decode_selected(nonconst, a.code_lengths, a.offsets, a.payload, bs)
            deltas *= factor
            lens, payload_rows, offs = _encode_with_offsets(deltas, bs)
            out_lengths[nonconst] = lens
            out_offsets = payload_offsets(out_lengths, bs)
            payload = np.empty(int(out_offsets[-1]), dtype=np.uint8)
            dst = _row_copy_indices(out_offsets[nonconst], np.diff(offs))
            payload[dst] = payload_rows
        else:
            out_offsets = payload_offsets(out_lengths, bs)
            payload = np.empty(0, dtype=np.uint8)
        return CompressedField(
            n=a.n,
            error_bound=a.error_bound,
            block_size=bs,
            n_threadblocks=a.n_threadblocks,
            outliers=a.outliers * factor,
            predictor=a.predictor,
            rows=a.rows,
            cols=a.cols,
            code_lengths=out_lengths,
            payload=payload,
            _offsets=out_offsets,
        )

    def subtract(self, a: CompressedField, b: CompressedField) -> CompressedField:
        """Homomorphic difference ``a − b``."""
        return self.add(a, self.scale(b, -1))

    def reduce(
        self, fields: list[CompressedField], order: str = "sequential"
    ) -> CompressedField:
        """Homomorphic sum of ≥ 1 fields.

        ``order``: ``"sequential"`` (ring-reduction order, left fold) or
        ``"tree"`` (pairwise combining — the schedule tree-based collectives
        use).  The compressed result is *byte-identical* either way:
        integer addition is associative, so the schedule is pure execution
        policy.
        """
        if not fields:
            raise ValueError("reduce requires at least one field")
        if order == "sequential":
            acc = fields[0]
            for nxt in fields[1:]:
                acc = self.add(acc, nxt)
            return acc
        if order == "tree":
            level = list(fields)
            while len(level) > 1:
                nxt_level = [
                    self.add(level[i], level[i + 1])
                    for i in range(0, len(level) - 1, 2)
                ]
                if len(level) % 2:
                    nxt_level.append(level[-1])
                level = nxt_level
            return level[0]
        raise ValueError(f"order must be 'sequential' or 'tree', got {order!r}")


def _encode_with_offsets(
    deltas: np.ndarray, block_size: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    lens, payload = encode_blocks(deltas, block_size)
    return lens, payload, payload_offsets(lens, block_size)


def homomorphic_sum(
    a: CompressedField, b: CompressedField
) -> CompressedField:
    """Module-level convenience: one homomorphic addition, stats discarded."""
    return HZDynamic(collect_stats=False).add(a, b)
