"""hZ-dynamic: the dynamic homomorphic compression pipeline (paper §III-B4).

Reductions run *directly* on fZ-light compressed streams.  For every small
block the engine inspects the operands' code lengths and routes the block
to the cheapest possible pipeline.  For a pair ``(x, y)``:

=========  ==================  =================================================
Pipeline   Condition           Work performed
=========  ==================  =================================================
1          ``x = 0, y = 0``    record a ``0`` code length — nothing else
2          ``x = 0, y ≠ 0``    copy block 2's bytes verbatim
3          ``x ≠ 0, y = 0``    copy block 1's bytes verbatim
4          ``x ≠ 0, y ≠ 0``    inverse fixed-length encode both, add the
                               integer predictions, re-encode (the only
                               "partial decompress" case — what a *static*
                               homomorphic pipeline does for every block)
=========  ==================  =================================================

The same classification generalises to ``k`` operands (:meth:`HZDynamic.
reduce_fused`): blocks that are constant in *every* operand cost nothing
(pipeline 1), blocks that are non-constant in *exactly one* operand copy
that operand's bytes verbatim (pipelines 2/3), and only blocks with two or
more non-constant operands pay the IFE→accumulate→FE round trip — and they
pay it **once** for all ``k`` operands (``k`` decodes + 1 encode) instead
of the ``(k−1)·(2 decodes + 1 encode)`` a pairwise left fold costs.

Thread-block outliers are simply added.  Correctness rests on linearity:
quantisation codes and Lorenzo deltas are both linear in the input, so the
homomorphic sum decompresses to exactly the sum of the operands'
decompressed values — no additional quantisation, hence no additional error
(§III-B4, last paragraph).

Besides ``sum`` the same linearity gives ``subtract`` and scalar ``scale``
for free; :meth:`HZDynamic.reduce_fused` accepts per-operand integer
weights so a weighted combination (including negation) fuses into the
single accumulation pass.  Non-linear reductions (min/max) are *not*
homomorphic in this representation and are rejected explicitly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..compression.encoding import (
    decode_selected,
    encode_into,
    payload_offsets,
)
from ..compression.format import CompressedField
from ..kernels.arena import get_arena
from ..kernels.dispatch import get_backend
from ..obs.metrics import METRICS

__all__ = ["PipelineStats", "HZDynamic", "homomorphic_sum"]


@dataclass
class PipelineStats:
    """Per-pipeline block counts for one or more homomorphic operations.

    ``counts`` holds the classic pairwise pipeline 1–4 block counts
    (``percentages`` reproduces the Table V columns).  A fused k-way
    reduction records the counts its *pairwise-fold equivalent* would have
    recorded — one classification per block per fold step, cancellation
    included — so the statistics are comparable across execution
    strategies.

    ``kway`` additionally records the fused classification itself:
    ``[constant, copy, accumulate]`` block counts, i.e. how many blocks
    were constant in every operand, non-constant in exactly one operand
    (verbatim copy), or accumulated through the shared int64 buffer.
    ``fused_calls`` / ``fused_operands`` count engine invocations and
    their total operand count (``fused_operands / fused_calls`` is the
    mean reduction width k).
    """

    counts: np.ndarray = field(
        default_factory=lambda: np.zeros(4, dtype=np.int64)
    )
    kway: np.ndarray = field(
        default_factory=lambda: np.zeros(3, dtype=np.int64)
    )
    fused_calls: int = 0
    fused_operands: int = 0

    @property
    def total(self) -> int:
        return int(self.counts.sum())

    @property
    def percentages(self) -> np.ndarray:
        """Share of blocks routed to pipelines 1–4, in percent."""
        total = self.total
        if total == 0:
            return np.zeros(4)
        return 100.0 * self.counts / total

    @property
    def mean_fanin(self) -> float:
        """Mean operand count per fused engine invocation (2 = pairwise)."""
        if self.fused_calls == 0:
            return 0.0
        return self.fused_operands / self.fused_calls

    def merge(self, other: "PipelineStats") -> "PipelineStats":
        self.counts += other.counts
        self.kway += other.kway
        self.fused_calls += other.fused_calls
        self.fused_operands += other.fused_operands
        return self

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        p = self.percentages
        return " ".join(f"P{i + 1}={p[i]:.2f}%" for i in range(4))


def _row_copy_indices(
    starts: np.ndarray, lengths: np.ndarray
) -> np.ndarray:
    """Flat indices covering variable-length rows ``[starts_i, starts_i+len_i)``.

    The classic repeat/arange trick: one vectorised gather replaces a Python
    loop over blocks (pipelines 2/3 reduce to exactly this copy).
    """
    total = int(lengths.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    row_of = np.repeat(np.arange(lengths.size, dtype=np.int64), lengths)
    ends = np.cumsum(lengths)
    within = np.arange(total, dtype=np.int64) - np.repeat(ends - lengths, lengths)
    return starts[row_of] + within


def _count_runs(idx: np.ndarray) -> int:
    """Number of maximal consecutive runs in sorted block indices (cheap)."""
    if idx.size == 0:
        return 0
    return int((np.diff(idx) != 1).sum()) + 1


def _block_runs(idx: np.ndarray) -> list[tuple[int, int]]:
    """Split sorted block indices into maximal consecutive runs.

    Consecutive blocks occupy *contiguous* byte ranges in every payload
    involved, so each run collapses to one slice copy — the Python-level
    analogue of the block-wise ``memcpy`` the C implementation gets for
    free.  Returns ``(start_pos, end_pos)`` positions into ``idx``.
    Callers should gate on :func:`_count_runs` first; materialising the
    list is only worth it when runs are long.
    """
    if idx.size == 0:
        return []
    splits = np.flatnonzero(np.diff(idx) != 1) + 1
    bounds = np.concatenate(([0], splits, [idx.size]))
    return [(int(bounds[i]), int(bounds[i + 1])) for i in range(bounds.size - 1)]


class HZDynamic:
    """Dynamic homomorphic operator over :class:`CompressedField` operands.

    Parameters
    ----------
    collect_stats : record pipeline-selection counts (Table V); a hair of
        overhead, on by default because the collectives report it.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.compression import FZLight
    >>> comp = FZLight()
    >>> x = np.linspace(0, 1, 4096).astype(np.float32)
    >>> y = np.cos(np.linspace(0, 9, 4096)).astype(np.float32)
    >>> eb = 1e-4
    >>> cx, cy = comp.compress(x, abs_eb=eb), comp.compress(y, abs_eb=eb)
    >>> hz = HZDynamic()
    >>> csum = hz.add(cx, cy)
    >>> lhs = comp.decompress(csum)
    >>> rhs = comp.decompress(cx) + comp.decompress(cy)
    >>> # exact in the integer-code domain; the float32 stores of the two
    >>> # sides may differ by one ulp (sum-then-scale vs scale-then-sum)
    >>> bool(np.abs(lhs - rhs).max() <= np.spacing(np.abs(rhs).max()))
    True
    """

    #: When the accumulate class (generalised pipeline 4) would cover more
    #: than this fraction of blocks, the engine processes the whole stream
    #: through one contiguous IFE→accumulate→FE pass per operand instead of
    #: per-pipeline gathers: with almost no copyable blocks to exploit, the
    #: gather bookkeeping costs more than it saves.  This is part of the
    #: run-time heuristic — the dynamic selector picks the cheapest
    #: *execution strategy*, not just the cheapest per-block pipeline.
    DENSE_THRESHOLD = 0.75

    def __init__(self, collect_stats: bool = True) -> None:
        self.collect_stats = collect_stats
        self.stats = PipelineStats()

    def reset_stats(self) -> None:
        self.stats = PipelineStats()

    # ------------------------------------------------------------------ #
    def add(self, a: CompressedField, b: CompressedField) -> CompressedField:
        """Homomorphic sum of two compatible compressed fields."""
        return self.reduce_fused((a, b))

    def subtract(self, a: CompressedField, b: CompressedField) -> CompressedField:
        """Homomorphic difference ``a − b``.

        The negation fuses into the accumulation pass (weight −1): no
        scaled intermediate copy of ``b`` is ever materialised.
        """
        return self.reduce_fused((a, b), weights=(1, -1))

    # ------------------------------------------------------------------ #
    def scale(self, a: CompressedField, factor: int) -> CompressedField:
        """Homomorphic integer scaling (linearity extension).

        Only integer factors keep the representation exact.  For fused
        weighted combinations prefer :meth:`reduce_fused` with a
        ``weights`` vector — it never materialises the scaled copy this
        method returns.
        """
        if int(factor) != factor:
            raise ValueError("homomorphic scaling requires an integer factor")
        factor = int(factor)
        if factor == 1:
            return a.copy()
        bs = a.block_size
        nonconst = np.nonzero(a.code_lengths != 0)[0]
        out_lengths = np.zeros_like(a.code_lengths)
        if nonconst.size and factor != 0:
            deltas = decode_selected(nonconst, a.code_lengths, a.offsets, a.payload, bs)
            deltas *= factor
            lens, payload_rows, offs = _encode_with_offsets(deltas, bs)
            out_lengths[nonconst] = lens
            out_offsets = payload_offsets(out_lengths, bs)
            payload = np.empty(int(out_offsets[-1]), dtype=np.uint8)
            dst = _row_copy_indices(out_offsets[nonconst], np.diff(offs))
            payload[dst] = payload_rows
        else:
            out_offsets = payload_offsets(out_lengths, bs)
            payload = np.empty(0, dtype=np.uint8)
        return CompressedField(
            n=a.n,
            error_bound=a.error_bound,
            block_size=bs,
            n_threadblocks=a.n_threadblocks,
            outliers=a.outliers * factor,
            predictor=a.predictor,
            rows=a.rows,
            cols=a.cols,
            code_lengths=out_lengths,
            payload=payload,
            _offsets=out_offsets,
        )

    # ------------------------------------------------------------------ #
    def reduce_fused(
        self,
        fields: Sequence[CompressedField],
        weights: Sequence[int] | None = None,
    ) -> CompressedField:
        """Fused k-way homomorphic reduction ``Σ wᵢ·xᵢ`` (default ``wᵢ = 1``).

        Classifies every block **once** across all ``k`` operands:

        * constant in every (weight-contributing) operand → pipeline 1,
          nothing stored;
        * non-constant in exactly one operand with weight 1 → pipelines
          2/3, that operand's bytes are copied verbatim;
        * everything else → one shared int64 accumulation: each
          contributing operand's deltas are decoded **once**, scaled by
          their weight, accumulated, and the result re-encoded **once** —
          ``O(k)`` decodes + 1 encode, versus ``(k−1)·(2 decodes +
          1 encode)`` for the pairwise left fold.

        When the accumulate class exceeds :data:`DENSE_THRESHOLD` of the
        blocks, the whole stream goes through one contiguous full-stream
        pass per operand (dense strategy), mirroring the pairwise dense
        heuristic.  Both strategies produce **byte-identical** streams to
        the sequential pairwise fold: integer addition is exact and
        fixed-length encoding is deterministic, so the schedule and the
        execution strategy are pure execution policy.

        Weights must be integers; weight 0 drops an operand entirely.
        With a single field and weight 1 the input object itself is
        returned (matching :meth:`reduce`).

        Recorded pipeline statistics are *fold-equivalent*: the 4-way
        ``counts`` match what the sequential pairwise fold would have
        recorded (including blocks whose partial sums cancel to a constant
        mid-fold), while ``kway`` records the fused classification.
        """
        k = len(fields)
        if k == 0:
            raise ValueError("reduce requires at least one field")
        if weights is None:
            w = np.ones(k, dtype=np.int64)
        else:
            if len(weights) != k:
                raise ValueError(
                    f"got {len(weights)} weights for {k} fields"
                )
            for x in weights:
                if int(x) != x:
                    raise ValueError("homomorphic weights must be integers")
            w = np.asarray([int(x) for x in weights], dtype=np.int64)
        a = fields[0]
        for f in fields[1:]:
            if not a.compatible_with(f):
                raise ValueError(
                    "operands are not homomorphically compatible (need "
                    "identical length, block geometry and error bound)"
                )
        if k == 1:
            return a if w[0] == 1 else self.scale(a, int(w[0]))

        bs = a.block_size
        nb = a.code_lengths.size
        # (k, nb) contribution matrix: operand j contributes to a block iff
        # the block is non-constant there and the weight is non-zero
        # (scaling by a non-zero integer preserves zero-ness exactly).
        nzmat = np.stack([f.code_lengths != 0 for f in fields])
        nzmat &= (w != 0)[:, None]
        contrib = nzmat.sum(axis=0)

        # first (and, for copy blocks, only) contributing operand per block
        owner = np.argmax(nzmat, axis=0)
        single = contrib == 1
        copy_mask = single & (w[owner] == 1)
        acc_mask = (contrib >= 2) | (single & ~copy_mask)
        const_count = nb - int(copy_mask.sum()) - int(acc_mask.sum())

        if self.collect_stats:
            self.stats.fused_calls += 1
            self.stats.fused_operands += k
            self.stats.kway += np.array(
                [const_count, int(copy_mask.sum()), int(acc_mask.sum())],
                dtype=np.int64,
            )
        if METRICS.enabled:
            METRICS.inc("hz.fused_calls")
            METRICS.inc("hz.fused_operands", k)
            METRICS.inc("hz.blocks.constant", const_count)
            METRICS.inc("hz.blocks.copy", int(copy_mask.sum()))
            METRICS.inc("hz.blocks.accumulate", int(acc_mask.sum()))

        out_outliers = np.zeros_like(a.outliers)
        for j, f in enumerate(fields):
            if w[j]:
                out_outliers += w[j] * f.outliers

        dense = int(acc_mask.sum()) > self.DENSE_THRESHOLD * nb
        if dense:
            code_lengths, payload, out_offsets = self._accumulate_dense(
                fields, w, nzmat, bs
            )
        else:
            code_lengths, payload, out_offsets = self._accumulate_sparse(
                fields, w, nzmat, owner, copy_mask, acc_mask, const_count, bs
            )

        return CompressedField(
            n=a.n,
            error_bound=a.error_bound,
            block_size=bs,
            n_threadblocks=a.n_threadblocks,
            outliers=out_outliers,
            predictor=a.predictor,
            rows=a.rows,
            cols=a.cols,
            code_lengths=code_lengths,
            payload=payload,
            _offsets=out_offsets,
        )

    # ------------------------------------------------------------------ #
    def _accumulate_dense(
        self,
        fields: Sequence[CompressedField],
        w: np.ndarray,
        nzmat: np.ndarray,
        bs: int,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Full-stream strategy: one fused k-way backend sweep.

        With nearly every block in the accumulate class there is nothing
        to gain from per-pipeline gathers, so the whole reduction is handed
        to the active backend's ``reduce_fused`` kernel — each block is
        decoded, weighted, accumulated and re-classified in one visit
        across all ``k`` operands (a single ``prange`` sweep on the Numba
        backend).  Constant and single-owner blocks re-encode to
        byte-identical output (decoding a constant block yields zeros;
        fixed-length encoding is deterministic), so the strategy switch is
        invisible downstream.

        The accumulator and every decode temporary come from the
        thread-local arena — a warmed steady state allocates nothing
        beyond the output stream itself.  Pipeline statistics come back as
        the ``zero_after`` Z-matrix ("partial sum through operands 0..j is
        identically zero" per block), computed inside the same sweep and
        reduced to fold-equivalent counts afterwards.
        """
        nb = fields[0].code_lengths.size
        track = self.collect_stats
        lens_mat = np.stack([f.code_lengths for f in fields])
        offs_mat = np.stack([f.offsets for f in fields])
        acc = get_arena().take("hz.acc", (nb, bs), np.int64)
        out_lengths, payload, out_offsets, zero_after = get_backend().reduce_fused(
            lens_mat,
            offs_mat,
            [f.payload for f in fields],
            w,
            bs,
            acc=acc,
            track=track,
        )
        if track:
            self._record_fold_stats(zero_after, nzmat)
        return out_lengths, payload, out_offsets

    def _accumulate_sparse(
        self,
        fields: Sequence[CompressedField],
        w: np.ndarray,
        nzmat: np.ndarray,
        owner: np.ndarray,
        copy_mask: np.ndarray,
        acc_mask: np.ndarray,
        const_count: int,
        bs: int,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Gather strategy: verbatim copies + subset accumulation."""
        k = len(fields)
        track = self.collect_stats
        copy_idx = np.nonzero(copy_mask)[0]
        acc_idx = np.nonzero(acc_mask)[0]

        if track:
            # Closed-form fold-equivalent counts for the no-cancellation
            # classes.  A block constant everywhere is pipeline 1 at every
            # fold step.  A block owned by operand o alone is pipeline 1
            # until o arrives (o−1 steps), pipeline 2 when it does, and
            # pipeline 3 afterwards (o = 0 skips straight to pipeline 3).
            steps = k - 1
            self.stats.counts[0] += const_count * steps
            if copy_idx.size:
                o = owner[copy_idx].astype(np.int64)
                later = o >= 1
                self.stats.counts[0] += int((o[later] - 1).sum())
                self.stats.counts[1] += int(later.sum())
                self.stats.counts[2] += int(
                    np.where(later, steps - o, steps).sum()
                )

        out_lengths = np.zeros_like(fields[0].code_lengths)
        if copy_idx.size:
            lengths_mat = np.stack([f.code_lengths for f in fields])
            out_lengths[copy_idx] = lengths_mat[owner[copy_idx], copy_idx]

        lens_acc = payload_acc = offsets_acc = None
        if acc_idx.size:
            # Accumulator and decode rows come from the thread-local arena:
            # a warmed steady state allocates nothing here (distinct tags
            # never alias, and neither buffer escapes this call).
            arena = get_arena()
            acc = arena.take("hz.acc", (acc_idx.size, bs), np.int64, zero=True)
            azero = ~nzmat[0][acc_idx] if track else None
            for j, f in enumerate(fields):
                p4 = None
                if track and j > 0:
                    p4 = self._record_fold_step(azero, ~nzmat[j][acc_idx])
                if w[j]:
                    sel = np.nonzero(nzmat[j][acc_idx])[0]
                    if sel.size:
                        dj = decode_selected(
                            acc_idx[sel],
                            f.code_lengths,
                            f.offsets,
                            f.payload,
                            bs,
                            out=arena.take("hz.dj", (sel.size, bs), np.int64),
                        )
                        if w[j] != 1:
                            dj *= w[j]
                        acc[sel] += dj
                if p4 is not None and p4.size:
                    azero[p4] = ~acc[p4].any(axis=1)
            lens_acc, payload_acc, offsets_acc = _encode_with_offsets(acc, bs)
            out_lengths[acc_idx] = lens_acc

        out_offsets = payload_offsets(out_lengths, bs)
        payload = np.empty(int(out_offsets[-1]), dtype=np.uint8)

        if copy_idx.size:
            for j in np.unique(owner[copy_idx]):
                self._copy_pipeline(
                    payload,
                    out_offsets,
                    copy_mask & (owner == j),
                    fields[j],
                    out_lengths,
                    bs,
                )
        if acc_idx.size:
            self._scatter_rows(payload, out_offsets, acc_idx, payload_acc, offsets_acc)
        return out_lengths, payload, out_offsets

    def _record_fold_stats(
        self, zero_after: np.ndarray, nzmat: np.ndarray
    ) -> None:
        """Fold-equivalent pipeline counts from the fused sweep's Z-matrix.

        ``zero_after[j, i]`` is "block *i*'s partial sum through operands
        ``0..j`` is identically zero" — exactly the running ``azero`` flag
        the stepwise :meth:`_record_fold_step` maintains (a non-constant
        contribution with a non-zero integer weight can never be zero, and
        the fused kernel re-scans the accumulator after every operand).
        The pairwise fold's step-*j* classification therefore reads
        ``zero_after[j-1]`` against operand *j*'s constancy, and all
        ``k − 1`` steps reduce in one vectorised pass.
        """
        az = zero_after[:-1]
        bz = ~nzmat[1:]
        nz_a = ~az
        nz_b = nzmat[1:]
        self.stats.counts += np.array(
            [
                int((az & bz).sum()),
                int((az & nz_b).sum()),
                int((nz_a & bz).sum()),
                int((nz_a & nz_b).sum()),
            ],
            dtype=np.int64,
        )

    def _record_fold_step(self, azero: np.ndarray, bzero: np.ndarray) -> np.ndarray:
        """Record one fold step's pipeline counts; returns pipeline-4 rows.

        ``azero`` is the running "accumulated partial is constant" flag per
        tracked block and is updated in place for the copy classes; the
        caller refreshes the returned pipeline-4 rows from the accumulator
        *after* folding the operand in, which is the only point where a
        partial sum can newly cancel to a constant — exactly when the
        pairwise fold would have re-encoded a zero code length.
        """
        nz_a = ~azero
        nz_b = ~bzero
        p4_mask = nz_a & nz_b
        self.stats.counts += np.array(
            [
                int((azero & bzero).sum()),
                int((azero & nz_b).sum()),
                int((nz_a & bzero).sum()),
                int(p4_mask.sum()),
            ],
            dtype=np.int64,
        )
        # pipeline 2 partials become non-constant; 1 stays constant, 3 stays
        # non-constant, 4 is refreshed from the accumulator by the caller.
        np.logical_and(azero, bzero, out=azero)
        return np.nonzero(p4_mask)[0]

    @staticmethod
    def _scatter_rows(
        payload: np.ndarray,
        out_offsets: np.ndarray,
        idx: np.ndarray,
        rows_payload: np.ndarray,
        rows_offsets: np.ndarray,
    ) -> None:
        """Place re-encoded rows for blocks ``idx`` into the output payload.

        Rows are consecutive for consecutive ``idx`` entries, so each run
        of adjacent blocks collapses to one contiguous slice on both sides;
        heavily fragmented index sets fall back to a vectorised scatter.
        """
        if _count_runs(idx) <= idx.size // 8 + 64:
            for s, e in _block_runs(idx):
                dst_lo = int(out_offsets[idx[s]])
                dst_hi = int(out_offsets[idx[e - 1] + 1])
                payload[dst_lo:dst_hi] = rows_payload[
                    int(rows_offsets[s]) : int(rows_offsets[e])
                ]
        else:
            sizes = np.diff(rows_offsets)
            dst = _row_copy_indices(out_offsets[idx], sizes)
            payload[dst] = rows_payload

    @staticmethod
    def _copy_pipeline(
        payload: np.ndarray,
        out_offsets: np.ndarray,
        mask: np.ndarray,
        source: CompressedField,
        out_lengths: np.ndarray,
        block_size: int,
    ) -> None:
        """Pipelines 2/3: verbatim byte copy of the non-constant operand.

        Runs of consecutive blocks copy as single slices (quiet/active
        regions are spatially coherent in real fields); heavily fragmented
        masks fall back to one vectorised gather/scatter.
        """
        idx = np.nonzero(mask)[0]
        if not idx.size:
            return
        src_offsets = source.offsets
        if _count_runs(idx) <= idx.size // 8 + 64:
            for s, e in _block_runs(idx):
                lo, hi = int(idx[s]), int(idx[e - 1] + 1)
                payload[int(out_offsets[lo]) : int(out_offsets[hi])] = source.payload[
                    int(src_offsets[lo]) : int(src_offsets[hi])
                ]
        else:
            sizes = (block_size // 8) * (1 + out_lengths[idx].astype(np.int64))
            src = _row_copy_indices(src_offsets[idx], sizes)
            dst = _row_copy_indices(out_offsets[idx], sizes)
            payload[dst] = source.payload[src]

    # ------------------------------------------------------------------ #
    def reduce(
        self, fields: list[CompressedField], order: str = "fused"
    ) -> CompressedField:
        """Homomorphic sum of ≥ 1 fields.

        ``order`` selects the execution schedule:

        * ``"fused"`` (default) — the k-way kernel of
          :meth:`reduce_fused`: one classification, ``O(k)`` decodes,
          one encode;
        * ``"sequential"`` — pairwise left fold in ring-reduction order;
        * ``"tree"`` — pairwise combining, the schedule tree-based
          collectives use.

        The compressed result is *byte-identical* across all three:
        integer addition is associative and exact, and fixed-length
        encoding is deterministic, so both the schedule and the fused
        execution strategy are pure execution policy — they decide cost,
        never bytes.
        """
        if not fields:
            raise ValueError("reduce requires at least one field")
        if order == "fused":
            return self.reduce_fused(fields)
        if order == "sequential":
            acc = fields[0]
            for nxt in fields[1:]:
                acc = self.add(acc, nxt)
            return acc
        if order == "tree":
            level = list(fields)
            while len(level) > 1:
                nxt_level = [
                    self.add(level[i], level[i + 1])
                    for i in range(0, len(level) - 1, 2)
                ]
                if len(level) % 2:
                    nxt_level.append(level[-1])
                level = nxt_level
            return level[0]
        raise ValueError(
            f"order must be 'fused', 'sequential' or 'tree', got {order!r}"
        )


def _encode_with_offsets(
    deltas: np.ndarray, block_size: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    # The backend lays out offsets while sizing the payload; nothing is
    # recomputed here.
    return encode_into(deltas, block_size)


def homomorphic_sum(
    a: CompressedField, b: CompressedField
) -> CompressedField:
    """Module-level convenience: one homomorphic addition, stats discarded."""
    return HZDynamic(collect_stats=False).add(a, b)
