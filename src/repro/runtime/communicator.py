"""Point-to-point message passing between virtual ranks.

The paper's collectives are built on MPI point-to-point primitives; the
bulk-synchronous implementations in :mod:`repro.collectives` model each
ring round as one step.  This module provides the *message-level* view —
an MPI-flavoured :class:`Communicator` with ``send``/``recv``/``sendrecv``
over per-rank mailboxes, with virtual time attached to every message — so
that alternative collective implementations (see
:mod:`repro.collectives.p2p`) can be written the way MPI programs actually
are and cross-validated against the round-synchronous ones.

Timing semantics: each rank owns a scalar virtual clock.  ``send`` stamps
the message with the sender's clock plus the modelled transfer time;
``recv`` advances the receiver to at least that stamp (waiting on the
wire), so causality is preserved without real threads.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any

from ..utils.validation import ensure_positive_int
from .faults import FaultPlan, FaultStats, RetryPolicy
from .network import NetworkModel, OMNIPATH_100G

__all__ = ["Message", "Communicator", "RankEndpoint", "CommTimeoutError"]


class CommTimeoutError(LookupError):
    """``recv`` waited past its timeout with no matching message in flight.

    Subclasses :class:`LookupError` so existing deadlock handling still
    catches it, while giving callers a precise error to match on.
    """

    def __init__(self, dest: int, source: int, tag: int, timeout_s: float) -> None:
        super().__init__(
            f"timeout: rank {dest} waited {timeout_s * 1e6:.0f} µs for "
            f"(source={source}, tag={tag}) but no such message is in flight"
        )
        self.dest = dest
        self.source = source
        self.tag = tag
        self.timeout_s = timeout_s


@dataclass(frozen=True)
class Message:
    """One in-flight message: payload + wire metadata."""

    source: int
    dest: int
    tag: int
    payload: Any
    nbytes: int
    arrival_time: float  # virtual seconds at which it is available
    seq: int = 0  # per-link sequence number (fault decisions key on it)
    lost: bool = False  # dropped/damaged on the wire; triggers retransmit
    duplicate: bool = False  # redundant copy; receiver discards it
    attempt: int = 0  # how many transmissions preceded this one


@dataclass
class Communicator:
    """Mailbox-based point-to-point layer over ``n_ranks`` virtual ranks.

    The communicator is deliberately sequential (one Python process):
    deterministic, debuggable, and sufficient because virtual time, not
    wall time, orders events.

    With a :class:`~repro.runtime.faults.FaultPlan` attached, ``send`` may
    mark messages lost (drop/corrupt/truncate — the plain transport is
    checksummed, so damage is detected and handled identically to a drop)
    or enqueue duplicate copies; ``recv`` then pays the timeout plus the
    bounded-backoff retransmission schedule in virtual time before the
    payload arrives intact.  After ``retry.max_attempts`` transmissions the
    transport escalates and delivers — point-to-point delivery is reliable,
    faults only cost time.
    """

    n_ranks: int
    network: NetworkModel = field(default_factory=lambda: OMNIPATH_100G)
    faults: FaultPlan | None = None
    retry: RetryPolicy = field(default_factory=RetryPolicy)

    def __post_init__(self) -> None:
        ensure_positive_int(self.n_ranks, "n_ranks")
        self._mailboxes: dict[tuple[int, int, int], deque[Message]] = {}
        self.clocks = [0.0] * self.n_ranks
        self.bytes_sent = [0] * self.n_ranks
        self.fault_stats = FaultStats()
        self._link_seq: dict[tuple[int, int], int] = {}

    def _next_seq(self, source: int, dest: int) -> int:
        key = (source, dest)
        seq = self._link_seq.get(key, 0)
        self._link_seq[key] = seq + 1
        return seq

    # ------------------------------------------------------------------ #
    def _check_rank(self, rank: int) -> None:
        if not 0 <= rank < self.n_ranks:
            raise IndexError(f"rank {rank} out of range (size {self.n_ranks})")

    def advance(self, rank: int, seconds: float) -> None:
        """Charge local (compute) time to a rank's virtual clock."""
        self._check_rank(rank)
        if seconds < 0:
            raise ValueError("cannot advance time backwards")
        self.clocks[rank] += seconds

    def send(
        self, source: int, dest: int, payload: Any, nbytes: int, tag: int = 0
    ) -> None:
        """Non-blocking send: enqueue with a modelled arrival stamp.

        Under a fault plan the message may be marked lost (drop, or
        corruption caught by the transport checksum — both surface as a
        receiver timeout) or be followed by a duplicate copy that also
        pays wire time.
        """
        self._check_rank(source)
        self._check_rank(dest)
        if source == dest:
            raise ValueError("self-sends are not supported (use local state)")
        transfer = self.network.transfer_time(nbytes, self.n_ranks)
        plan = self.faults
        seq = 0
        lost = False
        duplicated = False
        if plan is not None:
            factor = plan.bandwidth_factor(source, dest)
            if factor != 1.0:
                transfer /= factor
            seq = self._next_seq(source, dest)
            decision = plan.decide(source, dest, seq)
            self.fault_stats.messages += 1
            if decision.drop:
                self.fault_stats.drops += 1
                lost = True
            elif decision.corrupt:
                self.fault_stats.corruptions += 1
                lost = True
            elif decision.truncate:
                self.fault_stats.truncations += 1
                lost = True
            elif decision.duplicate:
                duplicated = True
        arrival = self.clocks[source] + transfer
        message = Message(
            source=source,
            dest=dest,
            tag=tag,
            payload=payload,
            nbytes=nbytes,
            arrival_time=arrival,
            seq=seq,
            lost=lost,
        )
        queue = self._mailboxes.setdefault((dest, source, tag), deque())
        queue.append(message)
        self.bytes_sent[source] += nbytes
        if duplicated:
            self.fault_stats.duplicates += 1
            queue.append(
                Message(
                    source=source,
                    dest=dest,
                    tag=tag,
                    payload=payload,
                    nbytes=nbytes,
                    arrival_time=arrival + transfer,
                    seq=seq,
                    duplicate=True,
                )
            )
            self.bytes_sent[source] += nbytes

    def recv(
        self, dest: int, source: int, tag: int = 0, timeout_s: float | None = None
    ) -> Any:
        """Blocking receive: advances the receiver's clock to the arrival.

        If no matching message was ever sent: with ``timeout_s`` set the
        receiver waits that long in virtual time and raises
        :class:`CommTimeoutError`; without it, raises ``LookupError``
        immediately — in a sequential simulation that is a deadlock, i.e.
        a caller bug.

        Lost messages are detected by timeout and retransmitted with
        bounded exponential backoff (every wait charged to the receiver's
        virtual clock); after ``retry.max_attempts`` transmissions the
        transport escalates and the payload is delivered regardless.
        Duplicate copies are matched by sequence number and discarded.
        """
        self._check_rank(dest)
        self._check_rank(source)
        queue = self._mailboxes.get((dest, source, tag))
        policy = self.retry
        while True:
            if not queue:
                if timeout_s is not None:
                    self.clocks[dest] += timeout_s
                    self.fault_stats.timeouts += 1
                    raise CommTimeoutError(dest, source, tag, timeout_s)
                raise LookupError(
                    f"deadlock: rank {dest} waits for (source={source}, "
                    f"tag={tag}) but no such message is in flight"
                )
            message = queue.popleft()
            if message.duplicate:
                # Redundant copy of an already-delivered sequence number;
                # it cost wire time at the sender, nothing to do here.
                continue
            if message.lost:
                # Receiver times out, sender backs off and retransmits.
                wait = policy.timeout_s + policy.delay(message.attempt)
                self.clocks[dest] += wait
                self.fault_stats.timeouts += 1
                self.fault_stats.retransmissions += 1
                attempt = message.attempt + 1
                lost = False
                # The final allowed attempt always goes through: p2p
                # delivery is reliable, faults only cost time.
                if self.faults is not None and attempt < policy.max_attempts - 1:
                    redo = self.faults.decide(
                        source, dest, self._next_seq(source, dest)
                    )
                    if redo.drop or redo.corrupt or redo.truncate:
                        self.fault_stats.drops += redo.drop
                        self.fault_stats.corruptions += redo.corrupt
                        self.fault_stats.truncations += redo.truncate
                        lost = True
                transfer = self.network.transfer_time(message.nbytes, self.n_ranks)
                queue.appendleft(
                    Message(
                        source=source,
                        dest=dest,
                        tag=tag,
                        payload=message.payload,
                        nbytes=message.nbytes,
                        arrival_time=self.clocks[dest] + transfer,
                        seq=message.seq,
                        lost=lost,
                        attempt=attempt,
                    )
                )
                self.bytes_sent[source] += message.nbytes
                continue
            self.clocks[dest] = max(self.clocks[dest], message.arrival_time)
            # Eagerly drain duplicate copies of this sequence number so
            # they can never be mistaken for a later payload.
            while queue and queue[0].duplicate and queue[0].seq == message.seq:
                queue.popleft()
            return message.payload

    def sendrecv(
        self,
        rank: int,
        dest: int,
        payload: Any,
        nbytes: int,
        source: int,
        tag: int = 0,
    ) -> Any:
        """MPI_Sendrecv: simultaneous exchange, full-duplex semantics."""
        self.send(rank, dest, payload, nbytes, tag)
        return self.recv(rank, source, tag)

    def pending(self, dest: int) -> int:
        """Number of undelivered messages addressed to ``dest``."""
        return sum(
            len(q) for (d, _s, _t), q in self._mailboxes.items() if d == dest
        )

    @property
    def makespan(self) -> float:
        """Virtual completion time: the slowest rank's clock."""
        return max(self.clocks)

    def endpoint(self, rank: int) -> "RankEndpoint":
        """A rank-scoped view for SPMD-style code."""
        self._check_rank(rank)
        return RankEndpoint(self, rank)


@dataclass
class RankEndpoint:
    """One rank's view of a :class:`Communicator` (like ``MPI.COMM_WORLD``
    seen from inside a rank)."""

    comm: Communicator
    rank: int

    @property
    def size(self) -> int:
        return self.comm.n_ranks

    def send(self, dest: int, payload: Any, nbytes: int, tag: int = 0) -> None:
        self.comm.send(self.rank, dest, payload, nbytes, tag)

    def recv(self, source: int, tag: int = 0) -> Any:
        return self.comm.recv(self.rank, source, tag)

    def sendrecv(
        self, dest: int, payload: Any, nbytes: int, source: int, tag: int = 0
    ) -> Any:
        return self.comm.sendrecv(self.rank, dest, payload, nbytes, source, tag)

    def advance(self, seconds: float) -> None:
        self.comm.advance(self.rank, seconds)
