"""Point-to-point message passing between virtual ranks.

The paper's collectives are built on MPI point-to-point primitives; the
bulk-synchronous implementations in :mod:`repro.collectives` model each
ring round as one step.  This module provides the *message-level* view —
an MPI-flavoured :class:`Communicator` with ``send``/``recv``/``sendrecv``
over per-rank mailboxes, with virtual time attached to every message — so
that alternative collective implementations (see
:mod:`repro.collectives.p2p`) can be written the way MPI programs actually
are and cross-validated against the round-synchronous ones.

Timing semantics: each rank owns a scalar virtual clock.  ``send`` stamps
the message with the sender's clock plus the modelled transfer time;
``recv`` advances the receiver to at least that stamp (waiting on the
wire), so causality is preserved without real threads.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any

from ..utils.validation import ensure_positive_int
from .network import NetworkModel, OMNIPATH_100G

__all__ = ["Message", "Communicator", "RankEndpoint"]


@dataclass(frozen=True)
class Message:
    """One in-flight message: payload + wire metadata."""

    source: int
    dest: int
    tag: int
    payload: Any
    nbytes: int
    arrival_time: float  # virtual seconds at which it is available


@dataclass
class Communicator:
    """Mailbox-based point-to-point layer over ``n_ranks`` virtual ranks.

    The communicator is deliberately sequential (one Python process):
    deterministic, debuggable, and sufficient because virtual time, not
    wall time, orders events.
    """

    n_ranks: int
    network: NetworkModel = field(default_factory=lambda: OMNIPATH_100G)

    def __post_init__(self) -> None:
        ensure_positive_int(self.n_ranks, "n_ranks")
        self._mailboxes: dict[tuple[int, int, int], deque[Message]] = {}
        self.clocks = [0.0] * self.n_ranks
        self.bytes_sent = [0] * self.n_ranks

    # ------------------------------------------------------------------ #
    def _check_rank(self, rank: int) -> None:
        if not 0 <= rank < self.n_ranks:
            raise IndexError(f"rank {rank} out of range (size {self.n_ranks})")

    def advance(self, rank: int, seconds: float) -> None:
        """Charge local (compute) time to a rank's virtual clock."""
        self._check_rank(rank)
        if seconds < 0:
            raise ValueError("cannot advance time backwards")
        self.clocks[rank] += seconds

    def send(
        self, source: int, dest: int, payload: Any, nbytes: int, tag: int = 0
    ) -> None:
        """Non-blocking send: enqueue with a modelled arrival stamp."""
        self._check_rank(source)
        self._check_rank(dest)
        if source == dest:
            raise ValueError("self-sends are not supported (use local state)")
        transfer = self.network.transfer_time(nbytes, self.n_ranks)
        message = Message(
            source=source,
            dest=dest,
            tag=tag,
            payload=payload,
            nbytes=nbytes,
            arrival_time=self.clocks[source] + transfer,
        )
        self._mailboxes.setdefault((dest, source, tag), deque()).append(message)
        self.bytes_sent[source] += nbytes

    def recv(self, dest: int, source: int, tag: int = 0) -> Any:
        """Blocking receive: advances the receiver's clock to the arrival.

        Raises ``LookupError`` if no matching message was ever sent — in a
        sequential simulation that is a deadlock, i.e. a caller bug.
        """
        self._check_rank(dest)
        self._check_rank(source)
        queue = self._mailboxes.get((dest, source, tag))
        if not queue:
            raise LookupError(
                f"deadlock: rank {dest} waits for (source={source}, tag={tag}) "
                "but no such message is in flight"
            )
        message = queue.popleft()
        self.clocks[dest] = max(self.clocks[dest], message.arrival_time)
        return message.payload

    def sendrecv(
        self,
        rank: int,
        dest: int,
        payload: Any,
        nbytes: int,
        source: int,
        tag: int = 0,
    ) -> Any:
        """MPI_Sendrecv: simultaneous exchange, full-duplex semantics."""
        self.send(rank, dest, payload, nbytes, tag)
        return self.recv(rank, source, tag)

    def pending(self, dest: int) -> int:
        """Number of undelivered messages addressed to ``dest``."""
        return sum(
            len(q) for (d, _s, _t), q in self._mailboxes.items() if d == dest
        )

    @property
    def makespan(self) -> float:
        """Virtual completion time: the slowest rank's clock."""
        return max(self.clocks)

    def endpoint(self, rank: int) -> "RankEndpoint":
        """A rank-scoped view for SPMD-style code."""
        self._check_rank(rank)
        return RankEndpoint(self, rank)


@dataclass
class RankEndpoint:
    """One rank's view of a :class:`Communicator` (like ``MPI.COMM_WORLD``
    seen from inside a rank)."""

    comm: Communicator
    rank: int

    @property
    def size(self) -> int:
        return self.comm.n_ranks

    def send(self, dest: int, payload: Any, nbytes: int, tag: int = 0) -> None:
        self.comm.send(self.rank, dest, payload, nbytes, tag)

    def recv(self, source: int, tag: int = 0) -> Any:
        return self.comm.recv(self.rank, source, tag)

    def sendrecv(
        self, dest: int, payload: Any, nbytes: int, source: int, tag: int = 0
    ) -> Any:
        return self.comm.sendrecv(self.rank, dest, payload, nbytes, source, tag)

    def advance(self, seconds: float) -> None:
        self.comm.advance(self.rank, seconds)
