"""Virtual time accounting for the simulated cluster.

Every rank owns a :class:`VirtualClock`; each charge lands in a named
bucket.  The buckets follow the paper's breakdown vocabulary (Figure 2,
Table VII):

* ``CPR`` — compression
* ``DPR`` — decompression
* ``CPT`` — computation on decompressed data (the reduction itself)
* ``HPR`` — homomorphic processing of one compressed block
* ``MPI`` — communication
* ``OTHER`` — framework overhead (size synchronisation, bookkeeping)
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["BUCKETS", "VirtualClock", "Breakdown"]

BUCKETS = ("CPR", "DPR", "CPT", "HPR", "MPI", "OTHER")


@dataclass
class VirtualClock:
    """Accumulates per-bucket virtual seconds for one rank."""

    buckets: dict[str, float] = field(
        default_factory=lambda: {b: 0.0 for b in BUCKETS}
    )

    def charge(self, bucket: str, seconds: float) -> None:
        """Add ``seconds`` to ``bucket`` (must be one of :data:`BUCKETS`)."""
        if bucket not in self.buckets:
            raise KeyError(f"unknown bucket {bucket!r}; valid: {BUCKETS}")
        if seconds < 0:
            raise ValueError("cannot charge negative time")
        self.buckets[bucket] += seconds

    @property
    def total(self) -> float:
        return sum(self.buckets.values())

    def copy(self) -> "VirtualClock":
        return VirtualClock(dict(self.buckets))


@dataclass
class Breakdown:
    """Aggregated timing breakdown for a whole collective run.

    ``total_time`` is the bulk-synchronous critical-path estimate (sum over
    rounds of the slowest rank plus the round's communication); the buckets
    are rank-averaged, which is how the paper reports its percentage
    breakdowns.
    """

    buckets: dict[str, float] = field(
        default_factory=lambda: {b: 0.0 for b in BUCKETS}
    )
    total_time: float = 0.0

    @property
    def doc_time(self) -> float:
        """The DOC-related share: decompression + computation + compression."""
        return (
            self.buckets["CPR"]
            + self.buckets["DPR"]
            + self.buckets["CPT"]
            + self.buckets["HPR"]
        )

    @property
    def mpi_time(self) -> float:
        return self.buckets["MPI"]

    def percentages(self) -> dict[str, float]:
        """Bucket shares of the rank-averaged total, in percent."""
        denom = sum(self.buckets.values())
        if denom == 0:
            return {b: 0.0 for b in BUCKETS}
        return {b: 100.0 * v / denom for b, v in self.buckets.items()}

    @classmethod
    def from_clocks(
        cls, clocks: list[VirtualClock], total_time: float
    ) -> "Breakdown":
        """Rank-average the clocks into one report."""
        n = max(len(clocks), 1)
        buckets = {b: sum(c.buckets[b] for c in clocks) / n for b in BUCKETS}
        return cls(buckets=buckets, total_time=total_time)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        pct = self.percentages()
        parts = " ".join(f"{b}={pct[b]:.1f}%" for b in BUCKETS if pct[b] > 0.05)
        return f"total={self.total_time * 1e3:.3f} ms ({parts})"
