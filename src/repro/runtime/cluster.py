"""In-process SPMD cluster simulator.

The paper evaluates on up to 512 physical nodes; here the ranks are virtual
— each holds its own buffers and virtual clock, and the collective
algorithms execute every rank's computation *for real* (bit-exact results)
while **communication time is modelled** by :class:`~repro.runtime.network.
NetworkModel` and **computation time is measured** around the actual
kernel invocations.

Time advances bulk-synchronously: ring collectives proceed in rounds, a
round costs the slowest rank's compute plus the modelled exchange, and the
per-bucket ledgers feed the paper-style breakdowns (Figure 2, Table VII).

Thread modes: the physical testbed runs the compressor on 1 ("single-
thread") or 18 ("multi-thread") cores.  Python measurements are inherently
single-stream, so multi-thread mode divides measured *compression-family*
times (CPR/DPR/HPR/CPT) by a configurable ``thread_speedup`` — the
substitution documented in DESIGN.md.  Communication time is never scaled.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator

from ..utils.validation import ensure_positive, ensure_positive_int
from .clock import Breakdown, VirtualClock
from .faults import FaultPlan, ResilientChannel, RetryPolicy
from .network import NetworkModel, OMNIPATH_100G
from .trace import Recorder, TraceLog

# .trace must be imported before repro.obs (spans depends on it); keeping
# obs.metrics dependency-free closes the cycle the other way.
from ..obs.metrics import METRICS

__all__ = ["SimCluster", "TraceScope", "measured"]


@contextmanager
def measured() -> Iterator[list[float]]:
    """Measure a code block's wall time; result lands in the yielded list."""
    out = [0.0]
    start = time.perf_counter()
    try:
        yield out
    finally:
        out[0] = time.perf_counter() - start


@dataclass
class TraceScope:
    """Handle yielded by :meth:`SimCluster.collective`.

    After the ``with`` block exits, ``trace`` holds the collective's own
    scoped :class:`TraceLog` slice (or ``None`` when tracing is off).
    """

    name: str
    trace: TraceLog | None = None


@dataclass
class SimCluster:
    """N virtual ranks + a network model + per-rank virtual clocks.

    Parameters
    ----------
    n_ranks : number of simulated nodes (one process per node, as in the
        paper's runs).
    network : interconnect model; defaults to the paper's 100 Gbps
        Omni-Path.
    thread_speedup : divisor applied to compute-family charges in
        multi-thread mode (see module docstring).
    multithread : whether collectives run in multi-thread mode.
    faults : optional seeded fault plan injected on every channel delivery
        (see :mod:`repro.runtime.faults`); ``None`` means a healthy fabric.
    retry : timeout/backoff policy governing retransmissions under faults.
    """

    n_ranks: int
    network: NetworkModel = OMNIPATH_100G
    thread_speedup: float = 6.0
    multithread: bool = False
    clocks: list[VirtualClock] = field(default_factory=list)
    total_time: float = 0.0
    #: optional execution trace (per-charge events + round boundaries);
    #: anything satisfying the :class:`~repro.runtime.trace.Recorder`
    #: protocol works — :class:`TraceLog` is the shipped implementation.
    trace: Recorder | None = None
    faults: FaultPlan | None = None
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    _round_compute: list[float] = field(default_factory=list)
    _channel: ResilientChannel | None = field(default=None, repr=False)

    _COMPUTE_BUCKETS = frozenset({"CPR", "DPR", "CPT", "HPR"})

    def __post_init__(self) -> None:
        ensure_positive_int(self.n_ranks, "n_ranks")
        ensure_positive(self.thread_speedup, "thread_speedup")
        if not self.clocks:
            self.clocks = [VirtualClock() for _ in range(self.n_ranks)]
        if len(self.clocks) != self.n_ranks:
            raise ValueError("clocks length must equal n_ranks")
        self._round_compute = [0.0] * self.n_ranks

    @property
    def channel(self) -> ResilientChannel:
        """The fault-aware delivery layer (lazily built, reset-aware).

        Link indices and fault statistics persist across collective stages
        within one cluster lifetime, so a Reduce_scatter → Allgather pair
        experiences one continuous fault sequence.
        """
        if self._channel is None:
            self._channel = ResilientChannel(self)
        return self._channel

    # ------------------------------------------------------------------ #
    # charging
    # ------------------------------------------------------------------ #
    def charge_compute(self, rank: int, bucket: str, seconds: float) -> None:
        """Charge measured compute time to a rank (thread-mode scaled).

        Straggler ranks in the active fault plan run proportionally slower:
        their charges are multiplied by the plan's ``straggler_factor``.
        """
        if bucket in self._COMPUTE_BUCKETS and self.multithread:
            seconds /= self.thread_speedup
        if self.faults is not None:
            seconds *= self.faults.slowdown(rank)
        self.clocks[rank].charge(bucket, seconds)
        self._round_compute[rank] += seconds
        if self.trace is not None:
            self.trace.record_compute(rank, bucket, seconds)

    def charge_comm(
        self,
        rank: int,
        nbytes: int,
        bandwidth_factor: float = 1.0,
        n_flows: int | None = None,
        link_scale: float = 1.0,
    ) -> float:
        """Charge one rank's modelled transfer; returns the seconds charged.

        ``bandwidth_factor`` (0 < f ≤ 1) stretches the transfer for
        degraded links: effective time = modelled time / factor.
        ``n_flows`` is the congestion-law argument — how many flows contend
        for the fabric during this transfer (``None`` = all ``n_ranks``,
        the flat-collective default); ``link_scale`` > 1 speeds the
        transfer up for rounds riding faster intra-node links.
        """
        seconds = self.network.transfer_time(
            nbytes, self.n_ranks if n_flows is None else n_flows
        )
        if link_scale != 1.0:
            seconds /= link_scale
        if bandwidth_factor != 1.0:
            seconds /= bandwidth_factor
        self.clocks[rank].charge("MPI", seconds)
        if self.trace is not None:
            self.trace.record_comm(rank, seconds, nbytes)
        if METRICS.enabled:
            METRICS.inc("wire.bytes", nbytes)
            METRICS.inc("wire.transfers")
        return seconds

    def charge_wait(self, rank: int, seconds: float, label: str) -> None:
        """Charge fault-handling wait time (timeouts, backoff) to a rank.

        Waits land in the OTHER bucket — they are neither useful compute
        nor modelled transfer — and count toward the round's critical path,
        so retransmission storms visibly stretch the makespan.
        """
        self.clocks[rank].charge("OTHER", seconds)
        self._round_compute[rank] += seconds
        self.record_fault(rank, label, seconds=seconds)

    def record_fault(
        self, rank: int, label: str, seconds: float = 0.0, nbytes: int = 0
    ) -> None:
        """Record a fault event (DROP/CORRUPT/…/DEGRADE) in the trace."""
        if self.trace is not None:
            self.trace.record_fault(rank, label, seconds=seconds, nbytes=nbytes)
        if METRICS.enabled:
            METRICS.inc(f"faults.{label.lower()}")
            if seconds > 0.0:
                METRICS.inc("faults.wait_s", seconds)

    @contextmanager
    def timed(self, rank: int, bucket: str) -> Iterator[None]:
        """Measure the enclosed kernel call and charge it to ``rank``."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.charge_compute(rank, bucket, time.perf_counter() - start)

    # ------------------------------------------------------------------ #
    # round synchronisation
    # ------------------------------------------------------------------ #
    def end_round(
        self,
        max_message_bytes: int,
        n_flows: int | None = None,
        link_scale: float = 1.0,
    ) -> float:
        """Close a bulk-synchronous round; returns the round's duration.

        Round time = slowest rank's compute this round + the modelled ring
        exchange of the largest in-flight message (full-duplex links).
        ``n_flows`` is the number of flows concurrently on the fabric
        (``None`` = all ranks — the flat-collective default); hierarchical
        schedules pass the round's declared concurrency so an intra-node
        exchange is not charged job-wide congestion.  ``link_scale``
        speeds up rounds riding faster intra-node links.
        """
        comm = (
            self.network.ring_round_time(
                max_message_bytes,
                self.n_ranks if n_flows is None else n_flows,
            )
            / link_scale
            if max_message_bytes >= 0
            else 0.0
        )
        duration = max(self._round_compute, default=0.0) + comm
        self.total_time += duration
        self._round_compute = [0.0] * self.n_ranks
        if self.trace is not None:
            self.trace.record_round(duration, comm=comm)
        return duration

    def end_compute_phase(self) -> float:
        """Close a compute-only phase (no exchange), e.g. initial compression."""
        duration = max(self._round_compute, default=0.0)
        self.total_time += duration
        self._round_compute = [0.0] * self.n_ranks
        if self.trace is not None:
            self.trace.record_round(duration, comm=0.0)
        return duration

    # ------------------------------------------------------------------ #
    # span scopes
    # ------------------------------------------------------------------ #
    @contextmanager
    def collective(self, name: str) -> Iterator[TraceScope]:
        """Scope one collective operation; the yielded handle receives the
        operation's own rebased trace slice when the block exits.

        No-ops (yielding an empty scope) when tracing is off, so collectives
        can wrap themselves unconditionally.
        """
        scope = TraceScope(name)
        if self.trace is None:
            yield scope
            return
        mark = self.trace.mark()
        time_start = self.total_time
        self.trace.begin_span("collective", name, time_start)
        try:
            yield scope
        finally:
            self.trace.end_span("collective", name, self.total_time)
            scope.trace = self.trace.scoped(mark, time_start)

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Scope one algorithmic phase (``compress``, ``exchange``, …)."""
        if self.trace is None:
            yield
            return
        self.trace.begin_span("phase", name, self.total_time)
        try:
            yield
        finally:
            self.trace.end_span("phase", name, self.total_time)

    # ------------------------------------------------------------------ #
    def breakdown(self) -> Breakdown:
        """Paper-style rank-averaged breakdown with critical-path total."""
        return Breakdown.from_clocks(self.clocks, self.total_time)

    def reset(self) -> None:
        """Clear all clocks and accumulated time (fresh collective).

        The trace is *rotated* — replaced with a fresh log rather than
        cleared in place — so references handed out before the reset (e.g.
        a ``CollectiveResult``'s scoped slice source) stay intact while the
        next run starts from round 0 with no stale events.
        """
        self.clocks = [VirtualClock() for _ in range(self.n_ranks)]
        self.total_time = 0.0
        self._round_compute = [0.0] * self.n_ranks
        self._channel = None
        if self.trace is not None:
            self.trace = TraceLog()
