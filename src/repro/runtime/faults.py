"""Fault injection and resilient delivery for the simulated cluster.

The paper's claim is that compressed collectives stay *correct*; this
module supplies the adversary that claim is tested against.  A
:class:`FaultPlan` is a seeded, purely functional description of what goes
wrong on the virtual fabric — message drops, payload corruption or
truncation, duplicate delivery, per-rank stragglers, and per-link
bandwidth degradation.  Decisions depend only on ``(seed, source, dest,
message_index)``, never on wall time or call interleaving, so any run
replays bit-identically from its seed.

Delivery goes through a :class:`ResilientChannel` owned by the
:class:`~repro.runtime.cluster.SimCluster`:

* a **dropped** message is detected by receiver timeout; the sender
  retransmits after a bounded exponential backoff, and every wait is
  charged to the receiver's virtual clock (``OTHER`` bucket) and recorded
  in the trace;
* a **corrupted/truncated** compressed stream is damaged at the byte
  level and fails the wire format's checksum on decode; the receiver
  NACKs and the sender retransmits (same backoff schedule);
* a **duplicated** message pays wire time twice; the receiver discards
  the copy;
* when ``max_attempts`` transmissions of a compressed stream all fail,
  the channel raises :class:`UnrecoverableStreamError` and the collective
  **degrades**: it falls back to the plain uncompressed kernel for the
  remainder of the operation (recorded as a ``DEGRADE`` trace event and
  on the result's ``degraded`` flag) — never a hang, never silently wrong
  data;
* the **plain** path models a transport with reliable checksummed
  delivery: faults cost time (timeouts, retransmissions), but the payload
  always arrives intact, which is why it is a safe fallback floor.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, fields as dataclass_fields
from typing import TYPE_CHECKING, Any

from ..compression.format import from_bytes
from ..obs.metrics import METRICS

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .cluster import SimCluster

__all__ = [
    "NO_FAULT",
    "FaultDecision",
    "FaultPlan",
    "RetryPolicy",
    "FaultStats",
    "Delivery",
    "ResilientChannel",
    "UnrecoverableStreamError",
]

_MASK = (1 << 64) - 1
_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3


def _mix(*parts: int) -> int:
    """Deterministic 64-bit hash of integer parts (FNV-1a + avalanche).

    Python's ``hash`` is stable for ints but ``random.Random`` refuses
    tuple seeds; this keeps fault decisions platform- and process-stable
    without constructing an RNG per message.
    """
    h = _FNV_OFFSET
    for p in parts:
        h ^= p & _MASK
        h = (h * _FNV_PRIME) & _MASK
        h ^= h >> 29
    h = (h * 0xBF58476D1CE4E5B9) & _MASK
    h ^= h >> 32
    return h


def _unit(*parts: int) -> float:
    """Uniform float in ``[0, 1)`` derived from the parts."""
    return _mix(*parts) / float(1 << 64)


@dataclass(frozen=True)
class FaultDecision:
    """What happens to one transmission attempt (at most one fault kind)."""

    drop: bool = False
    corrupt: bool = False
    truncate: bool = False
    duplicate: bool = False

    @property
    def faulty(self) -> bool:
        return self.drop or self.corrupt or self.truncate or self.duplicate


NO_FAULT = FaultDecision()
_DROP = FaultDecision(drop=True)
_CORRUPT = FaultDecision(corrupt=True)
_TRUNCATE = FaultDecision(truncate=True)
_DUPLICATE = FaultDecision(duplicate=True)


@dataclass(frozen=True)
class FaultPlan:
    """Seeded, deterministic description of fabric misbehaviour.

    Rates are per-transmission-attempt probabilities; at most one fault
    fires per attempt (rates must sum to ≤ 1).  ``stragglers`` ranks have
    their compute charges scaled by ``straggler_factor``; ``degraded_links``
    lists ``(source, dest, factor)`` triples with ``0 < factor ≤ 1``
    multiplying the link's effective bandwidth.

    The plan is immutable and purely functional: every decision is a hash
    of ``(seed, source, dest, index)``, so two runs over the same message
    sequence inject byte-identical faults.
    """

    seed: int = 0
    drop_rate: float = 0.0
    corrupt_rate: float = 0.0
    truncate_rate: float = 0.0
    duplicate_rate: float = 0.0
    stragglers: tuple[int, ...] = ()
    straggler_factor: float = 1.0
    degraded_links: tuple[tuple[int, int, float], ...] = ()

    def __post_init__(self) -> None:
        rates = (
            self.drop_rate,
            self.corrupt_rate,
            self.truncate_rate,
            self.duplicate_rate,
        )
        for r in rates:
            if not 0.0 <= r <= 1.0:
                raise ValueError(f"fault rates must be in [0, 1], got {r}")
        if sum(rates) > 1.0 + 1e-12:
            raise ValueError("fault rates must sum to at most 1")
        if self.straggler_factor < 1.0:
            raise ValueError("straggler_factor must be >= 1")
        object.__setattr__(self, "stragglers", tuple(self.stragglers))
        object.__setattr__(
            self, "degraded_links", tuple(tuple(x) for x in self.degraded_links)
        )
        for src, dst, factor in self.degraded_links:
            if not 0.0 < factor <= 1.0:
                raise ValueError(
                    f"link ({src}, {dst}) bandwidth factor must be in (0, 1], "
                    f"got {factor}"
                )

    # ------------------------------------------------------------------ #
    def decide(self, source: int, dest: int, index: int) -> FaultDecision:
        """Fault (if any) for the ``index``-th attempt on link src→dest."""
        total = (
            self.drop_rate
            + self.corrupt_rate
            + self.truncate_rate
            + self.duplicate_rate
        )
        if total == 0.0:
            return NO_FAULT
        u = _unit(self.seed, 0x01, source, dest, index)
        if u < self.drop_rate:
            return _DROP
        u -= self.drop_rate
        if u < self.corrupt_rate:
            return _CORRUPT
        u -= self.corrupt_rate
        if u < self.truncate_rate:
            return _TRUNCATE
        u -= self.truncate_rate
        if u < self.duplicate_rate:
            return _DUPLICATE
        return NO_FAULT

    def slowdown(self, rank: int) -> float:
        """Compute-time multiplier for ``rank`` (1.0 = healthy)."""
        return self.straggler_factor if rank in self.stragglers else 1.0

    def bandwidth_factor(self, source: int, dest: int) -> float:
        """Effective-bandwidth multiplier for the src→dest link (≤ 1)."""
        factor = 1.0
        for src, dst, f in self.degraded_links:
            if src == source and dst == dest:
                factor = min(factor, f)
        return factor

    def corrupt_stream(
        self, blob: bytes, source: int, dest: int, index: int, truncate: bool = False
    ) -> bytes:
        """Deterministically damage a serialised stream.

        Corruption XORs one byte with a non-zero mask (so the stream always
        actually changes); truncation cuts the stream strictly shorter.
        """
        if not blob:
            return blob
        r = _mix(self.seed, 0x02, source, dest, index)
        if truncate:
            return bytes(blob[: r % len(blob)])
        damaged = bytearray(blob)
        pos = r % len(damaged)
        flip = 1 + (_mix(self.seed, 0x03, source, dest, index) % 255)
        damaged[pos] ^= flip
        return bytes(damaged)

    # ------------------------------------------------------------------ #
    @classmethod
    def chaos(
        cls, seed: int, n_ranks: int, intensity: float = 0.05
    ) -> "FaultPlan":
        """A mixed plan derived entirely from the seed: moderate drop and
        corruption rates, one straggler rank, one degraded link."""
        if n_ranks < 2:
            raise ValueError("chaos plans need at least 2 ranks")
        straggler = _mix(seed, 0x10) % n_ranks
        src = _mix(seed, 0x11) % n_ranks
        dst = (src + 1 + _mix(seed, 0x12) % (n_ranks - 1)) % n_ranks
        return cls(
            seed=seed,
            drop_rate=intensity,
            corrupt_rate=intensity,
            truncate_rate=intensity / 4,
            duplicate_rate=intensity / 4,
            stragglers=(straggler,),
            straggler_factor=4.0,
            degraded_links=((src, dst, 0.5),),
        )

    def describe(self) -> str:
        parts = [f"seed={self.seed}"]
        for name, value in (
            ("drop", self.drop_rate),
            ("corrupt", self.corrupt_rate),
            ("truncate", self.truncate_rate),
            ("duplicate", self.duplicate_rate),
        ):
            if value:
                parts.append(f"{name}={value:g}")
        if self.stragglers:
            parts.append(
                f"stragglers={list(self.stragglers)}×{self.straggler_factor:g}"
            )
        if self.degraded_links:
            parts.append(f"degraded_links={list(self.degraded_links)}")
        return "FaultPlan(" + ", ".join(parts) + ")"


@dataclass(frozen=True)
class RetryPolicy:
    """Timeout + bounded exponential backoff for retransmissions.

    ``timeout_s`` is how long a receiver waits before declaring a message
    lost; retransmission ``k`` (0-based) is delayed by
    ``min(base_delay_s · backoff^k, max_delay_s)``.  ``max_attempts`` caps
    total transmissions of one message; a compressed stream that fails
    every attempt is unrecoverable (the collective degrades to plain).
    """

    timeout_s: float = 100e-6
    base_delay_s: float = 10e-6
    backoff: float = 2.0
    max_delay_s: float = 1e-3
    max_attempts: int = 4

    def __post_init__(self) -> None:
        if self.timeout_s < 0 or self.base_delay_s < 0:
            raise ValueError("retry delays must be >= 0")
        if self.max_delay_s < 0:
            raise ValueError("max_delay_s must be >= 0")
        if self.backoff < 1.0:
            raise ValueError("backoff must be >= 1")
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.max_delay_s < self.base_delay_s:
            # legal (delay() clamps every retransmission to max_delay_s)
            # but almost certainly a swapped-argument mistake
            warnings.warn(
                f"max_delay_s ({self.max_delay_s:g}) < base_delay_s "
                f"({self.base_delay_s:g}): every backoff delay will clamp "
                f"to max_delay_s",
                stacklevel=3,
            )

    def max_transfer_wait_s(self) -> float:
        """Upper bound on one delivery's total timeout + backoff wait.

        Every attempt waits at most ``timeout_s`` before declaring loss and
        at most ``max_delay_s`` before retransmitting, so ``max_attempts``
        transmissions can never wait longer than this — the bound the
        multi-process data plane derives its *real* receive deadlines from.
        """
        return self.max_attempts * (self.timeout_s + self.max_delay_s)

    def delay(self, attempt: int) -> float:
        """Backoff delay before retransmission ``attempt`` (0-based)."""
        if self.base_delay_s == 0.0:
            return 0.0
        try:
            raw = self.base_delay_s * self.backoff**attempt
        except OverflowError:
            # backoff**attempt exceeded float range: the clamp would have
            # won anyway, so apply it instead of blowing up the retry loop
            return self.max_delay_s
        return min(raw, self.max_delay_s)


@dataclass
class FaultStats:
    """Counters for one channel's (or communicator's) fault history."""

    messages: int = 0
    drops: int = 0
    corruptions: int = 0
    truncations: int = 0
    duplicates: int = 0
    timeouts: int = 0
    retransmissions: int = 0
    forced_deliveries: int = 0
    degraded_ops: int = 0
    retry_seconds: float = 0.0

    @property
    def total_faults(self) -> int:
        return self.drops + self.corruptions + self.truncations + self.duplicates

    def as_dict(self) -> dict[str, float]:
        return {f.name: getattr(self, f.name) for f in dataclass_fields(self)}

    def merge(self, other: "FaultStats") -> "FaultStats":
        for f in dataclass_fields(self):
            setattr(self, f.name, getattr(self, f.name) + getattr(other, f.name))
        return self


class UnrecoverableStreamError(RuntimeError):
    """Raised when every transmission attempt of a compressed stream failed.

    The collective catching this must degrade to its plain kernel — it is
    a *control-flow* signal, never an answer.
    """

    def __init__(self, source: int, dest: int, attempts: int) -> None:
        super().__init__(
            f"compressed stream {source}→{dest} undeliverable after "
            f"{attempts} attempts"
        )
        self.source = source
        self.dest = dest
        self.attempts = attempts


@dataclass(frozen=True)
class Delivery:
    """Outcome of one (possibly retransmitted) delivery.

    ``nbytes`` counts the bytes this delivery put on the wire *through the
    channel* — with ``charge_base=False`` only the retransmissions, since
    the caller charged the scheduled transfer itself.
    """

    payload: Any
    nbytes: int
    attempts: int = 1


class ResilientChannel:
    """Fault-aware delivery layer bound to one :class:`SimCluster`.

    Per-link message indices live here (the plan itself is pure), as do the
    accumulated :class:`FaultStats`, so a multi-stage collective (e.g.
    Reduce_scatter → Allgather) sees one continuous fault sequence.
    """

    def __init__(self, cluster: "SimCluster") -> None:
        self.cluster = cluster
        self.stats = FaultStats()
        self._link_index: dict[tuple[int, int], int] = {}

    @property
    def plan(self) -> FaultPlan | None:
        return self.cluster.faults

    @property
    def retry(self) -> RetryPolicy:
        return self.cluster.retry

    # ------------------------------------------------------------------ #
    def _next_index(self, source: int, dest: int) -> int:
        key = (source, dest)
        idx = self._link_index.get(key, 0)
        self._link_index[key] = idx + 1
        return idx

    def _wait(self, rank: int, seconds: float, label: str) -> None:
        self.stats.retry_seconds += seconds
        if METRICS.enabled:
            METRICS.inc("channel.retries")
        self.cluster.charge_wait(rank, seconds, label)

    def charge_link(
        self,
        source: int,
        dest: int,
        nbytes: int,
        n_flows: int | None = None,
        link_scale: float = 1.0,
    ) -> float:
        """Charge one scheduled transfer, honouring link degradation.

        ``n_flows``/``link_scale`` carry the surrounding round's declared
        concurrency and link speed into the congestion law (see
        :meth:`SimCluster.charge_comm`).
        """
        factor = (
            self.plan.bandwidth_factor(source, dest) if self.plan is not None else 1.0
        )
        return self.cluster.charge_comm(
            dest,
            nbytes,
            bandwidth_factor=factor,
            n_flows=n_flows,
            link_scale=link_scale,
        )

    # ------------------------------------------------------------------ #
    def deliver_plain(
        self,
        source: int,
        dest: int,
        payload: Any,
        nbytes: int,
        n_flows: int | None = None,
        link_scale: float = 1.0,
    ) -> Delivery:
        """Deliver over the reliable (checksummed, retrying) plain path.

        Faults cost virtual time and show up in the stats/trace, but the
        payload always arrives intact — plain delivery is the floor the
        compressed paths degrade to, so it can never fail itself.
        """
        self.stats.messages += 1

        def charge(factor: float = 1.0) -> float:
            return self.cluster.charge_comm(
                dest,
                nbytes,
                bandwidth_factor=factor,
                n_flows=n_flows,
                link_scale=link_scale,
            )

        plan = self.plan
        if plan is None:
            charge()
            return Delivery(payload, nbytes)
        policy = self.retry
        factor = plan.bandwidth_factor(source, dest)
        charged = 0
        for attempt in range(policy.max_attempts):
            decision = plan.decide(source, dest, self._next_index(source, dest))
            if decision.drop:
                self.stats.drops += 1
                self.stats.timeouts += 1
                self.cluster.record_fault(dest, "DROP", nbytes=nbytes)
                self._wait(dest, policy.timeout_s + policy.delay(attempt), "TIMEOUT")
                continue
            charge(factor)
            charged += nbytes
            if decision.corrupt or decision.truncate:
                # transport checksum catches the damage; NACK and retry
                if decision.truncate:
                    self.stats.truncations += 1
                else:
                    self.stats.corruptions += 1
                self.cluster.record_fault(
                    dest, "TRUNCATE" if decision.truncate else "CORRUPT", nbytes=nbytes
                )
                self._wait(
                    dest,
                    self.cluster.network.latency_s + policy.delay(attempt),
                    "RETRY",
                )
                continue
            if decision.duplicate:
                self.stats.duplicates += 1
                self.cluster.record_fault(dest, "DUPLICATE", nbytes=nbytes)
                charge(factor)
                charged += nbytes
            self.stats.retransmissions += attempt
            return Delivery(payload, charged, attempt + 1)
        # Reliable floor: after max_attempts the transport escalates (think
        # a slow verified path) and the payload arrives with one final
        # penalty charge — plain delivery must terminate, never raise.
        self.stats.retransmissions += policy.max_attempts
        self.stats.forced_deliveries += 1
        self._wait(dest, policy.timeout_s, "TIMEOUT")
        charge(factor)
        return Delivery(payload, charged + nbytes, policy.max_attempts + 1)

    def deliver_compressed(
        self,
        source: int,
        dest: int,
        stream,
        charge_base: bool = True,
        n_flows: int | None = None,
        link_scale: float = 1.0,
    ) -> Delivery:
        """Deliver a :class:`CompressedField`, validating the byte stream.

        Corruption is injected on the *serialised* bytes and detected by the
        wire format's checksum on decode, exactly as a real receiver would
        see it.  Each failure costs a NACK round-trip plus backoff; after
        ``max_attempts`` failures the stream is declared unrecoverable and
        :class:`UnrecoverableStreamError` is raised for the collective to
        degrade on.

        With ``charge_base=False`` the caller has already charged the
        scheduled transfer (aggregate-message schedules like Rabenseifner's
        bundles or the broadcast tree); the channel then charges only the
        fault handling (timeouts, retransmissions).
        """
        self.stats.messages += 1
        nbytes = stream.nbytes
        cluster = self.cluster

        def charge(factor: float = 1.0) -> float:
            return cluster.charge_comm(
                dest,
                nbytes,
                bandwidth_factor=factor,
                n_flows=n_flows,
                link_scale=link_scale,
            )

        plan = self.plan
        if plan is None:
            if charge_base:
                charge()
                return Delivery(stream, nbytes)
            return Delivery(stream, 0)
        policy = self.retry
        factor = plan.bandwidth_factor(source, dest)
        charged = 0
        for attempt in range(policy.max_attempts):
            index = self._next_index(source, dest)
            decision = plan.decide(source, dest, index)
            if decision.drop:
                self.stats.drops += 1
                self.stats.timeouts += 1
                cluster.record_fault(dest, "DROP", nbytes=nbytes)
                self._wait(dest, policy.timeout_s + policy.delay(attempt), "TIMEOUT")
                continue
            if charge_base or attempt > 0:
                charge(factor)
                charged += nbytes
            if decision.corrupt or decision.truncate:
                blob = stream.to_bytes()
                damaged = plan.corrupt_stream(
                    blob, source, dest, index, truncate=decision.truncate
                )
                if decision.truncate:
                    self.stats.truncations += 1
                else:
                    self.stats.corruptions += 1
                cluster.record_fault(
                    dest, "TRUNCATE" if decision.truncate else "CORRUPT", nbytes=nbytes
                )
                intact = False
                try:
                    from_bytes(damaged)
                    # The parse only succeeds if the damage happened to be
                    # reverted (impossible for our injector, which always
                    # changes bytes) — accept nothing but bit-identical.
                    intact = damaged == blob
                except (ValueError, OverflowError):
                    intact = False
                if not intact:
                    self._wait(
                        dest,
                        cluster.network.latency_s + policy.delay(attempt),
                        "RETRY",
                    )
                    continue
            if decision.duplicate:
                self.stats.duplicates += 1
                cluster.record_fault(dest, "DUPLICATE", nbytes=nbytes)
                charge(factor)
                charged += nbytes
            self.stats.retransmissions += attempt
            return Delivery(stream, charged, attempt + 1)
        self.stats.retransmissions += policy.max_attempts - 1
        raise UnrecoverableStreamError(source, dest, policy.max_attempts)

    # ------------------------------------------------------------------ #
    def degrade(self, reason: str = "stream-unrecoverable") -> None:
        """Record that the running collective fell back to the plain kernel."""
        self.stats.degraded_ops += 1
        if METRICS.enabled:
            METRICS.inc("channel.degrades")
        self.cluster.record_fault(-1, "DEGRADE")
