"""Process lifecycle for the multi-process data plane.

An :class:`MPCluster` owns one OS process per rank plus a full mesh of
directed point-to-point channels (shared-memory rings by default, AF_UNIX
socket pairs as the fallback — see :mod:`repro.runtime.mp_channel`).  The
parent is pure *control plane*: it forks the workers once, then per
schedule sends each worker its rank-local job over a ``Pipe``, collects
per-rank results, and merges them.  All data-plane traffic flows worker
↔ worker over the channels; the parent never touches payload bytes.

Fail-clean is the design rule real OS processes force on us:

* every blocking receive in a worker carries a real wall-clock deadline
  (derived from the job's :class:`~repro.runtime.faults.RetryPolicy` via
  ``max_transfer_wait_s``), so a dead peer becomes an exception, not a
  hang;
* the parent's collect loop watches worker liveness — a crashed rank
  turns into an ``MPClusterError`` naming the rank and exit code;
* any error or schedule-level degrade triggers an **abort broadcast**:
  pending workers see ``("abort",)`` on their job pipe (polled inside
  every channel spin loop), unwind with
  :class:`~repro.runtime.mp_channel.MPAbortedError`, acknowledge, and
  return to the job loop;
* aborted runs can leave undelivered frames in the channels, so the
  cluster marks itself *poisoned* and refuses further jobs — restart it
  (cheap: one ``fork`` per rank) rather than risk desynchronised rings.

Shutdown sends every worker ``("abort",)`` then ``("stop",)`` — a worker
mid-run aborts first, an idle worker ignores the stale abort — joins with
a timeout, terminates stragglers, and unlinks every shared-memory
segment.  ``MPCluster`` is a context manager; the ``with`` block is the
recommended lifecycle.

The worker's schedule interpreter lives in
:mod:`repro.schedule.mp_executor` and is imported lazily inside the
worker main, keeping ``runtime`` free of a module-level dependency on
``schedule`` (the same layering the simulator observes).
"""

from __future__ import annotations

import os
import secrets
import socket
import time
import traceback
from dataclasses import dataclass, field
from typing import Any

import multiprocessing as mp

from .faults import FaultPlan, RetryPolicy
from .mp_channel import MPAbortedError, ShmRing, SocketChannel

__all__ = ["MPCluster", "MPClusterError", "MPRun", "RankResult"]

#: floor on a worker's per-frame receive deadline — generous enough for a
#: loaded CI box, small enough that a wedged run fails in seconds.
DEFAULT_RECV_TIMEOUT_S = 10.0
DEFAULT_JOB_TIMEOUT_S = 120.0
DEFAULT_RING_CAPACITY = 1 << 20


class MPClusterError(RuntimeError):
    """A worker crashed, timed out, or the cluster cannot run jobs."""


@dataclass
class RankResult:
    """One worker's answer for one schedule job."""

    rank: int
    state: dict
    wire: int = 0
    degraded: bool = False
    #: True when an ``UnrecoverableStreamError`` escaped the whole
    #: schedule (``degrade="schedule"``) — peers may be stuck waiting and
    #: the parent must abort them.
    schedule_aborted: bool = False
    seconds: float = 0.0
    compute_seconds: float = 0.0
    stats: dict = field(default_factory=dict)


@dataclass
class MPRun:
    """Merged outcome of one schedule across all ranks.

    Mirrors :class:`repro.schedule.executor.Outcome` (``state`` /
    ``wire`` / ``degraded``) and adds the measured wall-clock numbers the
    calibration loop consumes.  On a degraded run the state is partial —
    exactly like the simulator, callers rerun a plain fallback.
    """

    state: list
    wire: int = 0
    degraded: bool = False
    #: slowest rank's wall-clock for the schedule = the measured makespan
    makespan_s: float = 0.0
    rank_seconds: tuple = ()
    #: slowest rank's measured kernel time (CPR/DPR/CPT/HPR buckets)
    compute_s: float = 0.0
    stats: dict = field(default_factory=dict)


# --------------------------------------------------------------------- #
# worker side
# --------------------------------------------------------------------- #
def _worker_main(rank, n_ranks, conn, send_channels, recv_channels) -> None:
    # Lazy import: the worker interprets schedules, but the runtime layer
    # must not depend on repro.schedule at import time.
    from ..schedule.mp_executor import execute_rank

    def poll_control() -> None:
        """Raise MPAbortedError if the parent broadcast an abort."""
        while conn.poll(0):
            try:
                msg = conn.recv()
            except EOFError:
                raise MPAbortedError("control pipe closed") from None
            if msg[0] in ("abort", "stop"):
                raise MPAbortedError("aborted by control plane")

    while True:
        try:
            msg = conn.recv()
        except (EOFError, KeyboardInterrupt):
            break
        if msg[0] == "stop":
            break
        if msg[0] == "abort":  # stale abort from a finished job
            continue
        job = msg[1]
        try:
            result = execute_rank(
                rank, n_ranks, send_channels, recv_channels, job, poll_control
            )
            conn.send(("ok", rank, result))
        except MPAbortedError:
            conn.send(("aborted", rank))
        except BaseException as exc:  # report, never die silently
            conn.send(
                (
                    "error",
                    rank,
                    f"{type(exc).__name__}: {exc}",
                    traceback.format_exc(),
                )
            )


# --------------------------------------------------------------------- #
# parent side
# --------------------------------------------------------------------- #
class MPCluster:
    """One process per rank + a full mesh of directed channels.

    Parameters
    ----------
    n_ranks : worker count (one OS process each).
    transport : ``"shm"`` (shared-memory rings) or ``"socket"``.
    ring_capacity : per-directed-pair ring size in bytes (shm only).
    recv_timeout_s : floor on a worker's per-frame receive deadline; the
        effective deadline also honours the job's scaled
        ``RetryPolicy.max_transfer_wait_s()``.
    job_timeout_s : parent-side ceiling on one schedule end to end.
    time_scale : seconds of real sleep per modelled second of fault
        pacing (timeout/backoff).  0 (default) injects faults without
        pacing — deterministic replay at full speed.
    """

    def __init__(
        self,
        n_ranks: int,
        transport: str = "shm",
        ring_capacity: int = DEFAULT_RING_CAPACITY,
        recv_timeout_s: float = DEFAULT_RECV_TIMEOUT_S,
        job_timeout_s: float = DEFAULT_JOB_TIMEOUT_S,
        time_scale: float = 0.0,
    ) -> None:
        if n_ranks < 1:
            raise ValueError("n_ranks must be >= 1")
        if transport not in ("shm", "socket"):
            raise ValueError(f"unknown transport {transport!r}")
        self.n_ranks = n_ranks
        self.transport = transport
        self.ring_capacity = ring_capacity
        self.recv_timeout_s = recv_timeout_s
        self.job_timeout_s = job_timeout_s
        self.time_scale = time_scale
        self._procs: list = []
        self._conns: list = []
        self._rings: list[ShmRing] = []
        self._sockets: list = []
        self._started = False
        self._closed = False
        self._poisoned: str | None = None

    # ------------------------------------------------------------------ #
    def __enter__(self) -> "MPCluster":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()

    def start(self) -> None:
        """Create the channel mesh and fork one worker per rank."""
        if self._started:
            return
        try:
            ctx = mp.get_context("fork")
        except ValueError as exc:  # pragma: no cover - non-POSIX platform
            raise MPClusterError(
                "the multi-process data plane needs the 'fork' start "
                "method (channels are inherited, not pickled)"
            ) from exc
        n = self.n_ranks
        # send_channels[i][j] : channel rank i writes to reach rank j;
        # recv_channels[j][i] is the same underlying pipe, read side.
        send_channels: list[dict[int, Any]] = [{} for _ in range(n)]
        recv_channels: list[dict[int, Any]] = [{} for _ in range(n)]
        uid = secrets.token_hex(4)
        for i in range(n):
            for j in range(n):
                if i == j:
                    continue
                if self.transport == "shm":
                    ring = ShmRing.create(
                        f"repro-mp-{os.getpid()}-{uid}-{i}-{j}",
                        self.ring_capacity,
                    )
                    self._rings.append(ring)
                    send_channels[i][j] = ring
                    recv_channels[j][i] = ring
                else:
                    a, b = socket.socketpair()
                    self._sockets.extend((a, b))
                    send_channels[i][j] = SocketChannel(a)
                    recv_channels[j][i] = SocketChannel(b)
        try:
            for rank in range(n):
                parent_conn, child_conn = ctx.Pipe()
                proc = ctx.Process(
                    target=_worker_main,
                    args=(
                        rank,
                        n,
                        child_conn,
                        send_channels[rank],
                        recv_channels[rank],
                    ),
                    name=f"repro-mp-rank{rank}",
                    daemon=True,
                )
                proc.start()
                child_conn.close()  # the worker holds its copy
                self._procs.append(proc)
                self._conns.append(parent_conn)
        except BaseException:
            self._teardown(force=True)
            raise
        self._started = True

    # ------------------------------------------------------------------ #
    def run_schedule(
        self,
        schedule,
        spec,
        state: list,
        plan: FaultPlan | None = None,
        retry: RetryPolicy | None = None,
    ) -> MPRun:
        """Execute one schedule across the workers and merge the results.

        ``state`` is the usual rank-indexed list of block dicts; each
        worker receives only its own slice.  ``spec`` is a
        :class:`~repro.schedule.mp_executor.CodecSpec` — codecs hold
        numpy arrays and engines, so they are rebuilt worker-side from
        this picklable description rather than shipped.
        """
        if not self._started or self._closed:
            raise MPClusterError("cluster is not running (call start())")
        if self._poisoned is not None:
            raise MPClusterError(
                f"cluster poisoned by a previous aborted run "
                f"({self._poisoned}); start a fresh MPCluster"
            )
        if schedule.n_ranks != self.n_ranks:
            raise MPClusterError(
                f"schedule wants {schedule.n_ranks} ranks, "
                f"cluster has {self.n_ranks}"
            )
        if len(state) != self.n_ranks:
            raise MPClusterError(
                f"state has {len(state)} rank slices for "
                f"{self.n_ranks} ranks"
            )
        for rank, proc in enumerate(self._procs):
            if not proc.is_alive():
                self.shutdown()
                raise MPClusterError(
                    f"worker {rank} died before dispatch "
                    f"(exitcode {proc.exitcode}); start a fresh MPCluster"
                )
        retry = retry if retry is not None else RetryPolicy()
        deadline_s = max(
            self.recv_timeout_s,
            # honour paced fault waits: a fully faulted transfer sleeps
            # this long for real before its final attempt resolves
            4.0 * self.time_scale * retry.max_transfer_wait_s(),
        )
        from ..schedule.mp_executor import RankJob  # lazy, see module doc

        for rank in range(self.n_ranks):
            job = RankJob(
                schedule=schedule,
                spec=spec,
                state=state[rank],
                plan=plan,
                retry=retry,
                time_scale=self.time_scale,
                recv_deadline_s=deadline_s,
            )
            try:
                self._conns[rank].send(("run", job))
            except OSError as exc:
                # a worker died between the liveness check and dispatch
                self.shutdown()
                raise MPClusterError(
                    f"worker {rank} unreachable at dispatch ({exc}); "
                    "start a fresh MPCluster"
                ) from exc
        return self._collect()

    # ------------------------------------------------------------------ #
    def _collect(self) -> MPRun:
        n = self.n_ranks
        results: dict[int, RankResult] = {}
        failures: dict[int, str] = {}
        first_traceback: str | None = None
        aborted: set[int] = set()
        pending = set(range(n))
        abort_sent = False
        deadline = time.monotonic() + self.job_timeout_s

        def broadcast_abort() -> None:
            nonlocal abort_sent
            if abort_sent:
                return
            abort_sent = True
            for r in sorted(pending):
                try:
                    self._conns[r].send(("abort",))
                except (OSError, BrokenPipeError):
                    pass

        while pending:
            progressed = False
            for r in sorted(pending):
                conn = self._conns[r]
                if conn.poll(0):
                    msg = conn.recv()
                    progressed = True
                    pending.discard(r)
                    if msg[0] == "ok":
                        results[r] = msg[2]
                        if msg[2].schedule_aborted:
                            # peers may block forever on frames this rank
                            # will never send — release them now
                            broadcast_abort()
                    elif msg[0] == "aborted":
                        aborted.add(r)
                    else:  # ("error", rank, summary, traceback)
                        failures[r] = msg[2]
                        if first_traceback is None:
                            first_traceback = msg[3]
                        broadcast_abort()
                elif not self._procs[r].is_alive():
                    # catch a result racing the exit before declaring death
                    if conn.poll(0.2):
                        continue
                    pending.discard(r)
                    failures[r] = (
                        f"worker died without reporting "
                        f"(exitcode {self._procs[r].exitcode})"
                    )
                    progressed = True
                    broadcast_abort()
            if pending and time.monotonic() > deadline:
                for r in sorted(pending):
                    failures[r] = (
                        f"no result within the {self.job_timeout_s:.0f}s "
                        f"job deadline"
                    )
                pending.clear()
            if pending and not progressed:
                time.sleep(0.002)

        if failures:
            # a failed run leaves channels in an unknown state: tear the
            # whole cluster down so nothing can reuse them
            detail = "; ".join(
                f"rank {r}: {m}" for r, m in sorted(failures.items())
            )
            self.shutdown()
            if first_traceback:
                detail += "\n--- first worker traceback ---\n" + first_traceback
            raise MPClusterError(f"schedule run failed: {detail}")

        degraded = any(res.degraded for res in results.values())
        if aborted or any(res.schedule_aborted for res in results.values()):
            self._poisoned = "schedule-level degrade aborted the run"
            degraded = True

        state: list = [None] * n
        stats: dict[str, int] = {}
        for r, res in results.items():
            state[r] = res.state
            for key, val in res.stats.items():
                stats[key] = stats.get(key, 0) + val
        return MPRun(
            state=state,
            wire=sum(res.wire for res in results.values()),
            degraded=degraded,
            makespan_s=max(
                (res.seconds for res in results.values()), default=0.0
            ),
            rank_seconds=tuple(
                results[r].seconds if r in results else float("nan")
                for r in range(n)
            ),
            compute_s=max(
                (res.compute_seconds for res in results.values()), default=0.0
            ),
            stats=stats,
        )

    # ------------------------------------------------------------------ #
    def shutdown(self, join_timeout_s: float = 5.0) -> None:
        """Stop the workers and release every OS resource (idempotent)."""
        if self._closed:
            return
        self._closed = True
        for conn in self._conns:
            try:
                conn.send(("abort",))
                conn.send(("stop",))
            except (OSError, BrokenPipeError):
                pass
        per_join = join_timeout_s / max(len(self._procs), 1)
        for proc in self._procs:
            proc.join(timeout=per_join)
        self._teardown(force=True)

    def _teardown(self, force: bool) -> None:
        for proc in self._procs:
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=1.0)
                if proc.is_alive():  # pragma: no cover - last resort
                    proc.kill()
                    proc.join(timeout=1.0)
        for conn in self._conns:
            try:
                conn.close()
            except OSError:  # pragma: no cover - teardown race
                pass
        for ring in self._rings:
            ring.close()
            ring.unlink()
        for sock in self._sockets:
            try:
                sock.close()
            except OSError:  # pragma: no cover - teardown race
                pass
        self._procs = []
        self._conns = []
        self._rings = []
        self._sockets = []

    def __del__(self) -> None:  # pragma: no cover - GC-order dependent
        if self._started and not self._closed:
            try:
                self.shutdown(join_timeout_s=1.0)
            except Exception:
                pass
