"""Execution tracing for simulated collectives.

A :class:`TraceLog` attached to a :class:`~repro.runtime.cluster.SimCluster`
records every compute charge, transfer, and round boundary.  Traces back
the breakdown figures with per-round detail (which round was
compute-bound? how did message sizes shrink as the reduction compressed
better?) and export to JSON for external timeline viewers.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from pathlib import Path

__all__ = ["TraceEvent", "RoundSummary", "TraceLog"]


@dataclass(frozen=True)
class TraceEvent:
    """One traced occurrence inside a collective."""

    kind: str  # "compute" | "comm" | "round" | "fault"
    round_index: int
    rank: int  # -1 for round boundaries and cluster-wide fault events
    bucket: str  # CPR/DPR/CPT/HPR/MPI; "ROUND" for boundaries; for fault
    # events the *label* (DROP/CORRUPT/TRUNCATE/DUPLICATE/TIMEOUT/RETRY/
    # DEGRADE) rides in this slot
    seconds: float
    nbytes: int = 0


@dataclass(frozen=True)
class RoundSummary:
    """Aggregated view of one bulk-synchronous round."""

    round_index: int
    duration: float
    max_compute: float
    comm_time: float
    bytes_moved: int

    @property
    def compute_bound(self) -> bool:
        return self.max_compute > self.comm_time


@dataclass
class TraceLog:
    """Append-only event log with round bookkeeping."""

    events: list[TraceEvent] = field(default_factory=list)
    _round: int = 0

    def record_compute(self, rank: int, bucket: str, seconds: float) -> None:
        self.events.append(
            TraceEvent("compute", self._round, rank, bucket, seconds)
        )

    def record_comm(self, rank: int, seconds: float, nbytes: int) -> None:
        self.events.append(
            TraceEvent("comm", self._round, rank, "MPI", seconds, nbytes)
        )

    def record_round(self, duration: float) -> None:
        self.events.append(
            TraceEvent("round", self._round, -1, "ROUND", duration)
        )
        self._round += 1

    def record_fault(
        self, rank: int, label: str, seconds: float = 0.0, nbytes: int = 0
    ) -> None:
        """Record a fault-injection event (drop, corruption, degrade, …)."""
        self.events.append(
            TraceEvent("fault", self._round, rank, label, seconds, nbytes)
        )

    # ------------------------------------------------------------------ #
    @property
    def n_rounds(self) -> int:
        return self._round

    def round_summaries(self) -> list[RoundSummary]:
        """Per-round digest: duration, bottleneck side, bytes moved.

        One grouped sweep over the event list — O(events), independent of
        the round count.  (A per-round rescan is O(rounds × events), which
        dominated trace post-processing for long collectives.)
        """
        durations: dict[int, float] = {}
        max_compute: dict[int, dict[int, float]] = {}
        comm: dict[int, float] = {}
        moved: dict[int, int] = {}
        for e in self.events:
            r = e.round_index
            if e.kind == "round":
                durations[r] = e.seconds
            elif e.kind == "compute":
                ranks = max_compute.setdefault(r, {})
                ranks[e.rank] = ranks.get(e.rank, 0.0) + e.seconds
            elif e.kind == "comm":
                comm[r] = max(comm.get(r, 0.0), e.seconds)
                moved[r] = moved.get(r, 0) + e.nbytes
        return [
            RoundSummary(
                round_index=r,
                duration=durations[r],
                max_compute=max(max_compute.get(r, {}).values(), default=0.0),
                comm_time=comm.get(r, 0.0),
                bytes_moved=moved.get(r, 0),
            )
            for r in range(self._round)
        ]

    def bytes_per_round(self) -> list[int]:
        """Total bytes moved in each round (shows compression-size drift)."""
        return [s.bytes_moved for s in self.round_summaries()]

    @property
    def fault_events(self) -> list[TraceEvent]:
        """All fault-injection events, in occurrence order."""
        return [e for e in self.events if e.kind == "fault"]

    def fault_summary(self) -> dict[str, int]:
        """Fault label → occurrence count (empty for a healthy run)."""
        counts: dict[str, int] = {}
        for e in self.events:
            if e.kind == "fault":
                counts[e.bucket] = counts.get(e.bucket, 0) + 1
        return counts

    def to_json(self, path: str | Path | None = None) -> str:
        """Serialise the trace; optionally also write it to ``path``."""
        document = json.dumps(
            {"schema": 1, "events": [asdict(e) for e in self.events]}, indent=2
        )
        if path is not None:
            Path(path).write_text(document)
        return document

    @classmethod
    def from_json(cls, document: str) -> "TraceLog":
        data = json.loads(document)
        if data.get("schema") != 1:
            raise ValueError("unsupported trace schema")
        log = cls()
        for raw in data["events"]:
            log.events.append(TraceEvent(**raw))
        log._round = sum(1 for e in log.events if e.kind == "round")
        return log
