"""Execution tracing for simulated collectives.

A :class:`TraceLog` attached to a :class:`~repro.runtime.cluster.SimCluster`
records every compute charge, transfer, fault wait, and round boundary.
Traces back the breakdown figures with per-round detail (which round was
compute-bound? how did message sizes shrink as the reduction compressed
better?) and feed the :mod:`repro.obs` exporters (Chrome ``trace_event``
JSON, per-bucket CSV, terminal summaries).

Besides flat charge events the log carries *span* markers
(``collective``/``phase`` begin/end pairs stamped with virtual time), from
which :func:`repro.obs.spans.build_spans` reconstructs the hierarchy
``collective → phase → round → charge``.  Collectives run inside
:meth:`SimCluster.collective <repro.runtime.cluster.SimCluster.collective>`
scopes, and every :class:`~repro.collectives.base.CollectiveResult` carries
its own *scoped* slice of the log (rounds and span timestamps rebased to
the collective's start), so back-to-back operations on one cluster no
longer share one undifferentiated event soup.

Time accounting invariant
-------------------------
For every closed round,

``duration == max_compute + comm_time + wait_time``  (up to float ulps)

where ``max_compute`` is the slowest rank's useful compute, ``comm_time``
is the round's modelled exchange (recorded on the round boundary event
itself), and ``wait_time`` is the critical-path stretch caused by
fault-handling waits (timeouts, retransmission backoff).  Waits used to be
charged to the makespan but invisible to the summaries, which misclassified
rounds under retry storms.

Serialisation schema
--------------------
Version 2 persists the round counter explicitly (``"rounds"``) alongside
the events, so a log whose trailing round is still open — or whose event
list was filtered by an external tool — round-trips exactly.  Version 1
documents (no ``rounds`` field, events without ``label``/``comm_s``) are
still accepted; the counter is then recovered by counting boundary events.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Protocol, runtime_checkable

__all__ = [
    "TraceEvent",
    "RoundSummary",
    "TraceLog",
    "TraceMark",
    "Recorder",
    "SCHEMA_VERSION",
]

SCHEMA_VERSION = 2

#: event kinds whose ``seconds`` field is a virtual *timestamp* (span
#: markers) rather than a duration — scoped slices rebase these.
_SPAN_KINDS = frozenset({"begin", "end"})


@dataclass(frozen=True)
class TraceEvent:
    """One traced occurrence inside a collective."""

    kind: str  # "compute" | "comm" | "round" | "fault" | "begin" | "end"
    round_index: int
    rank: int  # -1 for round boundaries, span markers and cluster faults
    bucket: str  # CPR/DPR/CPT/HPR/MPI; "ROUND" for boundaries; for fault
    # events the *label* (DROP/CORRUPT/TRUNCATE/DUPLICATE/TIMEOUT/RETRY/
    # DEGRADE) rides in this slot; for span markers the span kind
    # ("collective" | "phase")
    seconds: float  # duration; for span markers the virtual timestamp
    nbytes: int = 0
    label: str = ""  # span name ("hzccl_allreduce", "compress", ...)
    comm_s: float | None = None  # round events: the modelled exchange term


@dataclass(frozen=True)
class RoundSummary:
    """Aggregated view of one bulk-synchronous round.

    ``duration == max_compute + comm_time + wait_time`` holds (up to float
    rounding) for rounds closed by the cluster; ``wait_time`` is the
    critical-path stretch from fault-handling waits — the slowest rank's
    compute-plus-wait total minus the slowest rank's compute alone.
    """

    round_index: int
    duration: float
    max_compute: float
    comm_time: float
    bytes_moved: int
    wait_time: float = 0.0

    @property
    def compute_bound(self) -> bool:
        return self.max_compute > self.comm_time


@dataclass(frozen=True)
class TraceMark:
    """Opaque position in a recorder's stream (see :meth:`TraceLog.mark`)."""

    event_index: int
    round_index: int


@runtime_checkable
class Recorder(Protocol):
    """What :class:`~repro.runtime.cluster.SimCluster` needs from a trace.

    :class:`TraceLog` is the shipped implementation; anything honouring
    this surface (a streaming writer, a sampling recorder) can be attached
    to a cluster instead.
    """

    def record_compute(self, rank: int, bucket: str, seconds: float) -> None: ...

    def record_comm(self, rank: int, seconds: float, nbytes: int) -> None: ...

    def record_round(self, duration: float, comm: float | None = None) -> None: ...

    def record_fault(
        self, rank: int, label: str, seconds: float = 0.0, nbytes: int = 0
    ) -> None: ...

    def begin_span(self, kind: str, name: str, at: float) -> None: ...

    def end_span(self, kind: str, name: str, at: float) -> None: ...

    def mark(self) -> TraceMark: ...

    def scoped(self, mark: TraceMark, time_start: float) -> "TraceLog": ...


@dataclass
class TraceLog:
    """Append-only event log with round bookkeeping."""

    events: list[TraceEvent] = field(default_factory=list)
    _round: int = 0

    def record_compute(self, rank: int, bucket: str, seconds: float) -> None:
        self.events.append(
            TraceEvent("compute", self._round, rank, bucket, seconds)
        )

    def record_comm(self, rank: int, seconds: float, nbytes: int) -> None:
        self.events.append(
            TraceEvent("comm", self._round, rank, "MPI", seconds, nbytes)
        )

    def record_round(self, duration: float, comm: float | None = None) -> None:
        """Close the current round.

        ``comm`` is the modelled exchange component of ``duration`` (0 for
        compute-only phases); summaries report it as the round's
        ``comm_time`` so the accounting invariant holds exactly.  Logs
        built by hand may omit it — the summary then falls back to the
        largest observed transfer.
        """
        self.events.append(
            TraceEvent("round", self._round, -1, "ROUND", duration, comm_s=comm)
        )
        self._round += 1

    def record_fault(
        self, rank: int, label: str, seconds: float = 0.0, nbytes: int = 0
    ) -> None:
        """Record a fault-injection event (drop, corruption, degrade, …).

        A non-zero ``seconds`` marks a *wait* charged to the rank's clock
        (timeout, retransmission backoff) and is folded into the round
        summary's ``wait_time``.
        """
        self.events.append(
            TraceEvent("fault", self._round, rank, label, seconds, nbytes)
        )

    # ------------------------------------------------------------------ #
    # spans and scoped slices
    # ------------------------------------------------------------------ #
    def begin_span(self, kind: str, name: str, at: float) -> None:
        """Open a ``collective``/``phase`` span at virtual time ``at``."""
        self.events.append(
            TraceEvent("begin", self._round, -1, kind, at, label=name)
        )

    def end_span(self, kind: str, name: str, at: float) -> None:
        """Close the innermost span of ``kind``/``name`` at time ``at``."""
        self.events.append(
            TraceEvent("end", self._round, -1, kind, at, label=name)
        )

    def mark(self) -> TraceMark:
        """Current position, for a later :meth:`scoped` slice."""
        return TraceMark(len(self.events), self._round)

    def scoped(self, mark: TraceMark, time_start: float) -> "TraceLog":
        """Standalone log of everything recorded since ``mark``.

        Round indices and span timestamps are rebased so the slice reads
        as a complete trace of its own (round 0 at virtual time 0); the
        frozen events themselves are shared, never copied deep.
        """
        events = []
        for e in self.events[mark.event_index:]:
            seconds = (
                e.seconds - time_start if e.kind in _SPAN_KINDS else e.seconds
            )
            events.append(
                replace(
                    e,
                    round_index=e.round_index - mark.round_index,
                    seconds=seconds,
                )
            )
        log = TraceLog(events=events)
        log._round = self._round - mark.round_index
        return log

    # ------------------------------------------------------------------ #
    @property
    def n_rounds(self) -> int:
        return self._round

    def round_summaries(self) -> list[RoundSummary]:
        """Per-round digest: duration, bottleneck side, waits, bytes moved.

        One grouped sweep over the event list — O(events), independent of
        the round count.  (A per-round rescan is O(rounds × events), which
        dominated trace post-processing for long collectives.)
        """
        durations: dict[int, float] = {}
        round_comm: dict[int, float] = {}
        compute: dict[int, dict[int, float]] = {}
        waits: dict[int, dict[int, float]] = {}
        comm_max: dict[int, float] = {}
        moved: dict[int, int] = {}
        for e in self.events:
            r = e.round_index
            if e.kind == "round":
                durations[r] = e.seconds
                if e.comm_s is not None:
                    round_comm[r] = e.comm_s
            elif e.kind == "compute":
                ranks = compute.setdefault(r, {})
                ranks[e.rank] = ranks.get(e.rank, 0.0) + e.seconds
            elif e.kind == "comm":
                comm_max[r] = max(comm_max.get(r, 0.0), e.seconds)
                moved[r] = moved.get(r, 0) + e.nbytes
            elif e.kind == "fault" and e.seconds > 0.0 and e.rank >= 0:
                ranks = waits.setdefault(r, {})
                ranks[e.rank] = ranks.get(e.rank, 0.0) + e.seconds
        summaries = []
        for r in range(self._round):
            comp = compute.get(r, {})
            wait = waits.get(r, {})
            max_compute = max(comp.values(), default=0.0)
            # the makespan charges each rank its compute *plus* its waits;
            # wait_time is how much the slowest such total exceeds the
            # slowest pure-compute total — the critical-path stretch.
            combined = max(
                (
                    comp.get(rank, 0.0) + wait.get(rank, 0.0)
                    for rank in comp.keys() | wait.keys()
                ),
                default=0.0,
            )
            summaries.append(
                RoundSummary(
                    round_index=r,
                    duration=durations[r],
                    max_compute=max_compute,
                    comm_time=round_comm.get(r, comm_max.get(r, 0.0)),
                    bytes_moved=moved.get(r, 0),
                    wait_time=max(0.0, combined - max_compute),
                )
            )
        return summaries

    def bytes_per_round(self) -> list[int]:
        """Total bytes moved in each round (shows compression-size drift)."""
        return [s.bytes_moved for s in self.round_summaries()]

    def bucket_totals(self) -> dict[str, float]:
        """Rank-summed virtual seconds per breakdown bucket.

        Compute charges land in their own bucket, transfers in ``MPI``,
        and fault waits in ``WAIT`` — the trace-side mirror of the
        per-rank clock ledgers.
        """
        totals: dict[str, float] = {}
        for e in self.events:
            if e.kind == "compute":
                totals[e.bucket] = totals.get(e.bucket, 0.0) + e.seconds
            elif e.kind == "comm":
                totals["MPI"] = totals.get("MPI", 0.0) + e.seconds
            elif e.kind == "fault" and e.seconds > 0.0:
                totals["WAIT"] = totals.get("WAIT", 0.0) + e.seconds
        return totals

    @property
    def fault_events(self) -> list[TraceEvent]:
        """All fault-injection events, in occurrence order."""
        return [e for e in self.events if e.kind == "fault"]

    def fault_summary(self) -> dict[str, int]:
        """Fault label → occurrence count (empty for a healthy run)."""
        counts: dict[str, int] = {}
        for e in self.events:
            if e.kind == "fault":
                counts[e.bucket] = counts.get(e.bucket, 0) + 1
        return counts

    # ------------------------------------------------------------------ #
    def to_json(self, path: str | Path | None = None) -> str:
        """Serialise the trace (schema v2); optionally write it to ``path``."""
        document = json.dumps(
            {
                "schema": SCHEMA_VERSION,
                "rounds": self._round,
                "events": [_event_dict(e) for e in self.events],
            },
            indent=2,
        )
        if path is not None:
            Path(path).write_text(document)
        return document

    @classmethod
    def from_json(cls, document: str) -> "TraceLog":
        data = json.loads(document)
        schema = data.get("schema")
        if schema not in (1, SCHEMA_VERSION):
            raise ValueError(
                f"unsupported trace schema {schema!r} "
                f"(this build reads versions 1 and {SCHEMA_VERSION})"
            )
        log = cls()
        for raw in data["events"]:
            log.events.append(TraceEvent(**raw))
        if schema >= 2:
            # v2 persists the counter: a trailing open round (or an event
            # list filtered by an external tool) survives the round trip.
            log._round = int(data["rounds"])
        else:
            log._round = sum(1 for e in log.events if e.kind == "round")
        return log


def _event_dict(e: TraceEvent) -> dict:
    """Compact event serialisation: default-valued fields are omitted."""
    d = {
        "kind": e.kind,
        "round_index": e.round_index,
        "rank": e.rank,
        "bucket": e.bucket,
        "seconds": e.seconds,
    }
    if e.nbytes:
        d["nbytes"] = e.nbytes
    if e.label:
        d["label"] = e.label
    if e.comm_s is not None:
        d["comm_s"] = e.comm_s
    return d
