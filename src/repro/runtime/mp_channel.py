"""Byte transport for the multi-process data plane.

This module is *pure transport*: fixed-header frames moved between OS
processes over one of two interchangeable channel kinds, with **real**
wall-clock deadlines on every blocking operation.  What a frame *means*
(fault injection, retransmission accounting, codec actions) lives in
:mod:`repro.schedule.mp_executor`; process lifecycle lives in
:mod:`repro.runtime.mp_cluster`.

Channel kinds
-------------
* :class:`ShmRing` — a single-producer/single-consumer byte ring in one
  ``multiprocessing.shared_memory`` segment per directed rank pair.
  Layout: ``head`` (u64, written only by the reader) · ``tail`` (u64,
  written only by the writer) · ``capacity`` data bytes.  Cursors are
  monotonic (position = cursor mod capacity), so full/empty are never
  ambiguous and each side mutates exactly one cursor — the classic SPSC
  discipline that needs no lock.  Writers and readers spin-sleep with an
  exponentially backed-off poll (≤ ~1 ms) until space/data appears, the
  deadline expires (:class:`MPTimeoutError`) or the supplied ``poll``
  callback raises (the abort path).
* :class:`SocketChannel` — the fallback when shared memory is undesired:
  one ``socket.socketpair()`` (AF_UNIX stream) per directed pair,
  inherited across ``fork``.  Same deadline/poll semantics via short
  ``settimeout`` slices.

Frames
------
``RPMP`` magic + kind + flags + attempt + scheduled-nbytes + length,
then the payload bytes.  ``nbytes`` carries the *logical* payload size
(``ndarray.nbytes`` / ``CompressedField.nbytes``) — the number the
simulator's wire accounting uses — which is deliberately independent of
the serialised length, so the data plane reproduces ``bytes_on_wire``
bit-for-bit regardless of serialisation overhead.

Payloads are either a pickled tuple of wire items (plain deliveries,
bundles) or the raw checksummed ``CompressedField.to_bytes()`` stream
(compressed deliveries) so that injected byte damage is detected by the
same wire-format CRC a real receiver would use.
"""

from __future__ import annotations

import pickle
import struct
import time
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Any, Callable, Sequence

__all__ = [
    "FRAME_DATA",
    "FRAME_FORCED",
    "FRAME_FAIL",
    "FRAME_RAW",
    "FLAG_DUPLICATE",
    "FLAG_DAMAGED",
    "FLAG_COMPRESSED",
    "Frame",
    "MPChannelError",
    "MPTimeoutError",
    "MPAbortedError",
    "ShmRing",
    "SocketChannel",
    "send_frame",
    "recv_frame",
    "dump_items",
    "load_items",
]

_MAGIC = b"RPMP"
#: magic(4) · kind(u8) · flags(u8) · attempt(u16) · nbytes(u64) · length(u64)
_HEADER = struct.Struct("<4sBBHQQ")
_CURSOR = struct.Struct("<Q")
_DATA_OFFSET = 16  # two u64 cursors

#: frame kinds
FRAME_DATA = 1    # one transmission attempt's payload
FRAME_FORCED = 2  # plain path's escalated delivery after max_attempts
FRAME_FAIL = 3    # compressed stream unrecoverable; no payload
FRAME_RAW = 4     # unmanaged transfer (no fault machinery)

#: frame flags
FLAG_DUPLICATE = 1  # extra wire copy; receiver counts and discards
FLAG_DAMAGED = 2    # sender injected byte damage; fails validation
FLAG_COMPRESSED = 4  # payload is a CompressedField.to_bytes() stream

_POLL_MIN_S = 50e-6
_POLL_MAX_S = 2e-3


class MPChannelError(RuntimeError):
    """Transport-level failure on a multi-process channel."""


class MPTimeoutError(MPChannelError):
    """A blocking channel operation exceeded its real wall-clock deadline.

    This is the data plane's *fail-clean* signal: a dead or wedged peer
    turns into this exception at the waiting rank, never into a hang.
    """

    def __init__(self, what: str, waited_s: float) -> None:
        super().__init__(
            f"{what} exceeded its {waited_s:.3f}s real deadline"
        )
        self.waited_s = waited_s


class MPAbortedError(MPChannelError):
    """The control plane told this rank to abandon the running schedule."""


@dataclass(frozen=True)
class Frame:
    """One framed message: metadata header + opaque payload bytes."""

    kind: int
    flags: int = 0
    attempt: int = 0
    nbytes: int = 0  # scheduled *logical* payload size (wire accounting)
    payload: bytes = b""


def _sleep_poll(waited: int) -> float:
    """Exponentially backed-off poll interval for spin loops."""
    return min(_POLL_MIN_S * (1 << min(waited, 6)), _POLL_MAX_S)


class ShmRing:
    """SPSC byte ring over one shared-memory segment (see module doc)."""

    def __init__(self, shm: shared_memory.SharedMemory, capacity: int) -> None:
        self.shm = shm
        self.capacity = capacity

    @classmethod
    def create(cls, name: str, capacity: int) -> "ShmRing":
        if capacity < 64:
            raise ValueError("ring capacity must be >= 64 bytes")
        shm = shared_memory.SharedMemory(
            name=name, create=True, size=_DATA_OFFSET + capacity
        )
        shm.buf[:_DATA_OFFSET] = b"\x00" * _DATA_OFFSET
        return cls(shm, capacity)

    # ------------------------------------------------------------------ #
    def _head(self) -> int:
        return _CURSOR.unpack_from(self.shm.buf, 0)[0]

    def _tail(self) -> int:
        return _CURSOR.unpack_from(self.shm.buf, 8)[0]

    def send_bytes(
        self,
        data: bytes,
        deadline: float,
        poll: Callable[[], None] | None = None,
    ) -> None:
        """Write ``data`` fully, spinning while the ring is full."""
        mv = memoryview(data)
        buf = self.shm.buf
        cap = self.capacity
        waited = 0
        while mv.nbytes:
            free = cap - (self._tail() - self._head())
            if free == 0:
                if poll is not None:
                    poll()
                now = time.monotonic()
                if now >= deadline:
                    raise MPTimeoutError("shm ring write", waited_s=0.0)
                time.sleep(_sleep_poll(waited))
                waited += 1
                continue
            waited = 0
            tail = self._tail()
            n = min(mv.nbytes, free)
            pos = tail % cap
            first = min(n, cap - pos)
            buf[_DATA_OFFSET + pos:_DATA_OFFSET + pos + first] = mv[:first]
            if n > first:
                buf[_DATA_OFFSET:_DATA_OFFSET + n - first] = mv[first:n]
            _CURSOR.pack_into(buf, 8, tail + n)
            mv = mv[n:]

    def recv_bytes(
        self,
        n: int,
        deadline: float,
        poll: Callable[[], None] | None = None,
    ) -> bytes:
        """Read exactly ``n`` bytes, spinning while the ring is empty."""
        out = bytearray(n)
        buf = self.shm.buf
        cap = self.capacity
        got = 0
        waited = 0
        while got < n:
            avail = self._tail() - self._head()
            if avail == 0:
                if poll is not None:
                    poll()
                now = time.monotonic()
                if now >= deadline:
                    raise MPTimeoutError("shm ring read", waited_s=0.0)
                time.sleep(_sleep_poll(waited))
                waited += 1
                continue
            waited = 0
            head = self._head()
            take = min(n - got, avail)
            pos = head % cap
            first = min(take, cap - pos)
            out[got:got + first] = buf[
                _DATA_OFFSET + pos:_DATA_OFFSET + pos + first
            ]
            if take > first:
                out[got + first:got + take] = buf[
                    _DATA_OFFSET:_DATA_OFFSET + take - first
                ]
            _CURSOR.pack_into(buf, 0, head + take)
            got += take
        return bytes(out)

    # ------------------------------------------------------------------ #
    def close(self) -> None:
        try:
            self.shm.close()
        except (OSError, BufferError):  # pragma: no cover - teardown race
            pass

    def unlink(self) -> None:
        try:
            self.shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass


class SocketChannel:
    """Stream-socket channel with sliced timeouts (the shm fallback)."""

    #: settimeout slice; keeps abort polling responsive without busy-wait
    _SLICE_S = 0.02

    def __init__(self, sock) -> None:
        self.sock = sock

    def send_bytes(
        self,
        data: bytes,
        deadline: float,
        poll: Callable[[], None] | None = None,
    ) -> None:
        import socket as _socket

        mv = memoryview(data)
        while mv.nbytes:
            if poll is not None:
                poll()
            if time.monotonic() >= deadline:
                raise MPTimeoutError("socket write", waited_s=0.0)
            self.sock.settimeout(self._SLICE_S)
            try:
                sent = self.sock.send(mv)
            except _socket.timeout:
                continue
            except OSError as exc:
                raise MPChannelError(f"socket write failed: {exc}") from exc
            mv = mv[sent:]

    def recv_bytes(
        self,
        n: int,
        deadline: float,
        poll: Callable[[], None] | None = None,
    ) -> bytes:
        import socket as _socket

        out = bytearray()
        while len(out) < n:
            if poll is not None:
                poll()
            if time.monotonic() >= deadline:
                raise MPTimeoutError("socket read", waited_s=0.0)
            self.sock.settimeout(self._SLICE_S)
            try:
                chunk = self.sock.recv(n - len(out))
            except _socket.timeout:
                continue
            except OSError as exc:
                raise MPChannelError(f"socket read failed: {exc}") from exc
            if not chunk:
                raise MPChannelError("peer closed the socket mid-frame")
            out += chunk
        return bytes(out)

    def close(self) -> None:
        try:
            self.sock.close()
        except OSError:  # pragma: no cover - teardown race
            pass


# --------------------------------------------------------------------- #
# framing
# --------------------------------------------------------------------- #
def send_frame(
    channel,
    frame: Frame,
    deadline: float,
    poll: Callable[[], None] | None = None,
) -> None:
    header = _HEADER.pack(
        _MAGIC,
        frame.kind,
        frame.flags,
        frame.attempt,
        frame.nbytes,
        len(frame.payload),
    )
    channel.send_bytes(header + frame.payload, deadline, poll)


def recv_frame(
    channel,
    deadline: float,
    poll: Callable[[], None] | None = None,
) -> Frame:
    raw = channel.recv_bytes(_HEADER.size, deadline, poll)
    magic, kind, flags, attempt, nbytes, length = _HEADER.unpack(raw)
    if magic != _MAGIC:
        raise MPChannelError(
            f"bad frame magic {magic!r}: channel desynchronised"
        )
    payload = channel.recv_bytes(length, deadline, poll) if length else b""
    return Frame(kind, flags, attempt, nbytes, payload)


# --------------------------------------------------------------------- #
# payload serialisation
# --------------------------------------------------------------------- #
def dump_items(items: Sequence[Any]) -> bytes:
    """Serialise a tuple of wire items (ndarrays / CompressedFields)."""
    return pickle.dumps(tuple(items), protocol=pickle.HIGHEST_PROTOCOL)


def load_items(blob: bytes) -> tuple[Any, ...]:
    return pickle.loads(blob)
