"""Rank-to-node placement for hierarchical collectives.

The paper's testbed runs one MPI rank per physical node, so its flat ring
collectives see a uniform fabric.  Real deployments pack many ranks onto
one node (gZCCL/NCCLZ: 4–8 GPUs behind NVLink, one NIC per node), and the
two-level schedules in :mod:`repro.schedule.generators` exploit exactly
that structure: intra-node exchanges ride links that are
``intra_scale`` × faster than the inter-node fabric and contend only with
the node's own flows, while the inter-node stage runs over one *leader*
rank per node.

A :class:`NodeMap` is pure placement data — it knows nothing about
schedules or networks.  It is hashable (ranks are stored as a tuple), so
the cached schedule generators can key on it directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["NodeMap"]


@dataclass(frozen=True)
class NodeMap:
    """Placement of ``n_ranks`` ranks onto nodes, plus the link-rate split.

    Parameters
    ----------
    node_of_rank : tuple mapping rank → node id.  Node ids must be the
        contiguous integers ``0 … n_nodes − 1`` (any order across ranks).
    intra_scale : how many times faster an intra-node link is than one
        inter-node fabric link (NVLink/shared-memory vs NIC).  ``1.0``
        models a cluster with no locality advantage at all — the
        hierarchical schedules still win on congestion alone.
    """

    node_of_rank: tuple[int, ...]
    intra_scale: float = 4.0
    #: rank lists per node, derived in ``__post_init__`` (leader first).
    _members: tuple[tuple[int, ...], ...] = field(
        init=False, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if not self.node_of_rank:
            raise ValueError("NodeMap needs at least one rank")
        if self.intra_scale <= 0:
            raise ValueError("intra_scale must be > 0")
        nodes = sorted(set(self.node_of_rank))
        if nodes != list(range(len(nodes))):
            raise ValueError(
                f"node ids must be contiguous 0…k−1, got {nodes}"
            )
        members: list[list[int]] = [[] for _ in nodes]
        for rank, node in enumerate(self.node_of_rank):
            members[node].append(rank)
        object.__setattr__(
            self, "_members", tuple(tuple(m) for m in members)
        )

    # ------------------------------------------------------------------ #
    @classmethod
    def regular(
        cls, n_ranks: int, ranks_per_node: int, intra_scale: float = 4.0
    ) -> "NodeMap":
        """Even block placement: ranks ``[k·r, (k+1)·r)`` share node ``k``.

        ``n_ranks`` must be a multiple of ``ranks_per_node``.
        ``ranks_per_node=1`` degenerates to the paper's one-rank-per-node
        flat layout (the hierarchical schedule then *is* the inter-node
        algorithm).
        """
        if n_ranks < 1 or ranks_per_node < 1:
            raise ValueError("n_ranks and ranks_per_node must be >= 1")
        if n_ranks % ranks_per_node:
            raise ValueError(
                f"{n_ranks} ranks do not fill {ranks_per_node}-rank nodes "
                "evenly"
            )
        return cls(
            tuple(r // ranks_per_node for r in range(n_ranks)),
            intra_scale=intra_scale,
        )

    # ------------------------------------------------------------------ #
    @property
    def n_ranks(self) -> int:
        return len(self.node_of_rank)

    @property
    def n_nodes(self) -> int:
        return len(self._members)

    @property
    def max_node_size(self) -> int:
        return max(len(m) for m in self._members)

    def node_of(self, rank: int) -> int:
        return self.node_of_rank[rank]

    def members(self, node: int) -> tuple[int, ...]:
        """Ranks on ``node``, ascending (the leader is ``members[0]``)."""
        return self._members[node]

    def leader(self, node: int) -> int:
        """The node's representative in the inter-node stage (lowest rank)."""
        return self._members[node][0]

    def leaders(self) -> tuple[int, ...]:
        """One leader per node, in node order."""
        return tuple(m[0] for m in self._members)

    def is_leader(self, rank: int) -> bool:
        return self.leader(self.node_of(rank)) == rank

    def local_index(self, rank: int) -> int:
        """The rank's position within its node (leader = 0)."""
        return self._members[self.node_of(rank)].index(rank)
