"""Simulated multi-node cluster substrate.

Replaces the paper's 512-node Broadwell/Omni-Path testbed: virtual ranks
execute collective computation bit-exactly in-process while an α–β–
congestion model supplies communication time (see DESIGN.md §1).
"""

from .clock import BUCKETS, Breakdown, VirtualClock
from .communicator import CommTimeoutError, Communicator, Message, RankEndpoint
from .cluster import SimCluster, measured
from .fabrics import DragonflyNetwork, FatTreeNetwork, TorusNetwork
from .faults import (
    Delivery,
    FaultDecision,
    FaultPlan,
    FaultStats,
    NO_FAULT,
    ResilientChannel,
    RetryPolicy,
    UnrecoverableStreamError,
)
from .mp_channel import MPAbortedError, MPChannelError, MPTimeoutError
from .mp_cluster import MPCluster, MPClusterError, MPRun
from .network import OMNIPATH_100G, NetworkModel
from .nodemap import NodeMap
from .topology import Ring
from .trace import RoundSummary, TraceEvent, TraceLog

__all__ = [
    "SimCluster",
    "measured",
    "NetworkModel",
    "OMNIPATH_100G",
    "NodeMap",
    "Ring",
    "VirtualClock",
    "Breakdown",
    "Communicator",
    "CommTimeoutError",
    "Message",
    "RankEndpoint",
    "FatTreeNetwork",
    "TorusNetwork",
    "DragonflyNetwork",
    "TraceLog",
    "TraceEvent",
    "RoundSummary",
    "BUCKETS",
    "FaultPlan",
    "FaultDecision",
    "FaultStats",
    "NO_FAULT",
    "RetryPolicy",
    "ResilientChannel",
    "Delivery",
    "UnrecoverableStreamError",
    "MPCluster",
    "MPClusterError",
    "MPRun",
    "MPChannelError",
    "MPTimeoutError",
    "MPAbortedError",
]
