"""Interconnect-topology variants of the network model.

The base :class:`~repro.runtime.network.NetworkModel` uses a logarithmic
congestion law fitted to the paper's fat-tree Omni-Path fabric.  Real
deployments differ, and the *shape* of the congestion law is exactly what
decides how much a compressed collective gains at scale (Figures 10/12),
so the benchmark harness includes a topology-sensitivity ablation.  Each
variant only overrides :meth:`congestion_factor`:

* :class:`FatTreeNetwork` — the baseline logarithmic law (over-subscription
  grows with the number of switch levels ≈ log N).
* :class:`TorusNetwork` — ``k``-dimensional torus: bisection per node falls
  as ``N^(1/k)``, so per-flow slowdown grows polynomially.
* :class:`DragonflyNetwork` — nearly flat until the global links saturate,
  then a step up (minimal-routing cliff).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .network import NetworkModel

__all__ = ["FatTreeNetwork", "TorusNetwork", "DragonflyNetwork"]


@dataclass(frozen=True)
class FatTreeNetwork(NetworkModel):
    """Alias of the base logarithmic law, named for the ablation tables."""


@dataclass(frozen=True)
class TorusNetwork(NetworkModel):
    """``dimensions``-D torus: congestion ∝ N^(1/dimensions)."""

    dimensions: int = 3
    torus_coefficient: float = 1.5

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.dimensions < 1:
            raise ValueError("dimensions must be >= 1")
        if self.torus_coefficient < 0:
            raise ValueError("torus_coefficient must be >= 0")

    def congestion_factor(self, n_nodes: int) -> float:
        if n_nodes <= 2:
            return 1.0
        return 1.0 + self.torus_coefficient * (
            n_nodes ** (1.0 / self.dimensions) - 2 ** (1.0 / self.dimensions)
        )


@dataclass(frozen=True)
class DragonflyNetwork(NetworkModel):
    """Dragonfly: flat until ``saturation_nodes``, then a routing cliff."""

    saturation_nodes: int = 128
    cliff_factor: float = 2.5

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.saturation_nodes < 2:
            raise ValueError("saturation_nodes must be >= 2")
        if self.cliff_factor < 1.0:
            raise ValueError("cliff_factor must be >= 1")

    def congestion_factor(self, n_nodes: int) -> float:
        if n_nodes <= 2:
            # base-class contract (network.py): two nodes see the full
            # physical wire speed on every fabric
            return 1.0
        if n_nodes <= self.saturation_nodes:
            return 1.0 + 0.05 * math.log2(n_nodes)
        # past saturation: the cliff plus a gentle continuing slope
        excess = math.log2(n_nodes / self.saturation_nodes)
        return self.cliff_factor * (1.0 + 0.1 * excess)
