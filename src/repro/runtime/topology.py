"""Ring topology helpers for the collective algorithms.

The paper's collectives are the classic bandwidth-optimal ring algorithms
(Thakur et al.; Patarasuk & Yuan): in round ``j`` every rank sends one data
block to its successor and receives one from its predecessor.  These
helpers centralise the index arithmetic so the three collective
implementations (MPI / C-Coll / hZCCL) stay literal transcriptions of the
paper's Figure 5.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Ring"]


@dataclass(frozen=True)
class Ring:
    """Ring of ``n`` ranks with the standard reduce-scatter block schedule."""

    n: int

    def __post_init__(self) -> None:
        if self.n < 1:
            raise ValueError("ring needs at least one rank")

    def successor(self, rank: int) -> int:
        return (rank + 1) % self.n

    def predecessor(self, rank: int) -> int:
        return (rank - 1) % self.n

    def send_block(self, rank: int, round_index: int) -> int:
        """Block index rank ``rank`` sends in round ``round_index`` (0-based).

        Standard ring reduce-scatter: in round ``j`` rank ``i`` sends block
        ``(i − j) mod n`` and receives block ``(i − j − 1) mod n``; after
        ``n − 1`` rounds rank ``i`` owns the fully reduced block
        ``(i + 1) mod n``.
        """
        self._check(rank, round_index)
        return (rank - round_index) % self.n

    def recv_block(self, rank: int, round_index: int) -> int:
        """Block index rank ``rank`` receives (and reduces) in a round."""
        self._check(rank, round_index)
        return (rank - round_index - 1) % self.n

    def owned_block(self, rank: int) -> int:
        """Block each rank holds fully reduced after reduce-scatter."""
        return (rank + 1) % self.n

    def allgather_send_block(self, rank: int, round_index: int) -> int:
        """Block sent in round ``j`` of the ring allgather that follows.

        Rank ``i`` starts by sending its owned block and then forwards what
        it received in the previous round.
        """
        self._check(rank, round_index)
        return (rank + 1 - round_index) % self.n

    def _check(self, rank: int, round_index: int) -> None:
        if not 0 <= rank < self.n:
            raise IndexError(f"rank {rank} out of range for ring of {self.n}")
        # a ring of n ranks has exactly n − 1 rounds, so a 1-rank ring has
        # none at all — round 0 must be rejected there, not accepted
        if not 0 <= round_index < self.n - 1:
            raise IndexError(
                f"round {round_index} out of range (ring of {self.n} has "
                f"{self.n - 1} rounds)"
            )
