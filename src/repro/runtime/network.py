"""Interconnect model for the simulated cluster.

The paper's testbed is 100 Gbps Intel Omni-Path between Broadwell nodes.
We model point-to-point transfers with the standard α–β (latency–bandwidth)
model plus a congestion term that grows with the number of concurrent
flows: in ring collectives every node sends simultaneously, and on a real
fat-tree the effective per-flow bandwidth degrades slowly as the job
spreads over more switches.  That degradation is exactly why the paper's
speedups *grow* with node count before stabilising (Figures 10/12): the
compressed collectives move fewer bytes through the congested phase.

The default constants correspond to the paper's fabric; tests use smaller
synthetic values.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..utils.validation import ensure_positive

__all__ = ["NetworkModel", "OMNIPATH_100G"]


@dataclass(frozen=True)
class NetworkModel:
    """α–β–congestion model of one full-duplex link per node.

    Parameters
    ----------
    latency_s : per-message software+wire latency (α).
    bandwidth_Bps : peak point-to-point bandwidth in bytes/second (1/β).
    congestion_per_log2 : fractional per-flow slowdown added per doubling
        of concurrently communicating nodes (0 disables congestion).
    min_message_bytes : messages are padded to this floor (headers, MTU).
    """

    latency_s: float = 5e-6
    bandwidth_Bps: float = 12.5e9  # 100 Gbps
    congestion_per_log2: float = 0.09
    min_message_bytes: int = 64

    def __post_init__(self) -> None:
        ensure_positive(self.latency_s, "latency_s")
        ensure_positive(self.bandwidth_Bps, "bandwidth_Bps")
        if self.congestion_per_log2 < 0:
            raise ValueError("congestion_per_log2 must be >= 0")

    def congestion_factor(self, n_nodes: int) -> float:
        """Multiplier on byte time when ``n_nodes`` communicate at once."""
        if n_nodes <= 2:
            return 1.0
        return 1.0 + self.congestion_per_log2 * math.log2(n_nodes)

    def transfer_time(self, nbytes: int, n_nodes: int = 2) -> float:
        """Seconds to move one ``nbytes`` message during an ``n_nodes`` round.

        Zero-byte messages still pay α (an MPI send is never free).
        """
        if nbytes < 0:
            raise ValueError("nbytes must be >= 0")
        nbytes = max(int(nbytes), self.min_message_bytes)
        return self.latency_s + nbytes / self.bandwidth_Bps * self.congestion_factor(
            n_nodes
        )

    def ring_round_time(self, max_message_bytes: int, n_nodes: int) -> float:
        """Duration of one ring round (all nodes exchange concurrently).

        Full-duplex links let each node send and receive in parallel; the
        round is gated by the largest message in flight.
        """
        return self.transfer_time(max_message_bytes, n_nodes)


#: The paper's fabric: 100 Gbps Omni-Path.  The congestion coefficient is
#: calibrated so that the *effective* per-flow bandwidth at 512 concurrently
#: communicating ranks lands near 1.4 GB/s — the regime the paper's own
#: explanation of Figures 10/12 ("network congestion grows with more nodes
#: participating") implies, and the value that reproduces its speedup
#: magnitudes (see EXPERIMENTS.md §calibration).  Physical wire speed is
#: still the full 12.5 GB/s at two nodes.
OMNIPATH_100G = NetworkModel(congestion_per_log2=0.9)
