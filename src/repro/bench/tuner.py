"""Tuner grid sweep + gate logic (shared by CLI, benchmark, and tests).

The acceptance claim of the autotuner is simple: **the tuned pick is
never worse than the best static family** at any grid point — by
construction it is the argmin over the same candidate costs, so the gate
is really pinning that (a) enumeration covers every static family a
caller could have hand-picked, (b) the per-candidate costs are
reproducible, and (c) nothing silently drops out of the candidate set
(the pipelined rank cap is *visible* in the per-point cost map).

Deterministic by construction — every number is a closed-form
:func:`~repro.schedule.cost.schedule_cost` dry run, so the committed
``BENCH_tuner.json`` is exactly reproducible:

    PYTHONPATH=src python benchmarks/bench_tuner.py

The n=1024 column costs ~1 min (the flat ring schedule build); CI
recomputes the n ≤ 256 grid exactly and re-*checks* the committed
n=1024 points (same split as ``bench_hierarchy``).
"""

from __future__ import annotations

from ..core.cost_model import PAPER_BROADWELL
from ..runtime import (
    DragonflyNetwork,
    FatTreeNetwork,
    NodeMap,
    TorusNetwork,
)
from ..schedule.tuner import (
    Candidate,
    TuningKey,
    TuningTable,
    tune_point,
)

__all__ = [
    "FABRICS",
    "GRID_RANKS",
    "CHECK_RANKS",
    "GRID_SIZES_BYTES",
    "ROUGHNESS",
    "RANKS_PER_NODE",
    "grid_sweep",
    "check_points",
    "table_from_points",
    "tuner_rows",
]

KB = 1 << 10
MB = 1 << 20

FABRICS = {
    "torus": TorusNetwork(),
    "dragonfly": DragonflyNetwork(),
    "fattree": FatTreeNetwork(),
}
#: the committed grid: 64 KB – 64 MB (each size its own log2 bucket),
#: figure-scale rank counts, all three fabrics, both roughness classes.
GRID_SIZES_BYTES = (64 * KB, 256 * KB, MB, 4 * MB, 16 * MB, 64 * MB)
GRID_RANKS = (8, 64, 256, 1024)
#: recomputed exactly in CI; the n=1024 points are re-checked only
#: (building the flat 1024-rank ring schedule costs ~1 min).
CHECK_RANKS = (8, 64, 256)
ROUGHNESS = ("smooth", "rough")
RANKS_PER_NODE = 8


def grid_sweep(ranks: tuple[int, ...] = GRID_RANKS) -> list[dict]:
    """Score the full candidate set at every grid point.

    Returns one JSON-ready record per point, carrying the pick, the best
    flat (non-hierarchical) pick, and the complete ``slug → modelled
    seconds`` map so the gate can verify argmin-ness offline.
    """
    points = []
    for n in ranks:
        nodemap = NodeMap.regular(n, min(RANKS_PER_NODE, n))
        for fabric in sorted(FABRICS):
            network = FABRICS[fabric]
            for size in GRID_SIZES_BYTES:
                for roughness in ROUGHNESS:
                    key, entry, costs = tune_point(
                        n, size, network, roughness, PAPER_BROADWELL, nodemap
                    )
                    points.append(
                        {
                            "key": key.canonical(),
                            "n_ranks": n,
                            "size_bytes": size,
                            "fabric": fabric,
                            "roughness": roughness,
                            "pick": entry.pick.slug(),
                            "pick_cost_s": entry.cost_s,
                            "flat_pick": entry.flat_pick.slug(),
                            "flat_cost_s": entry.flat_cost_s,
                            "static_costs": dict(sorted(costs.items())),
                        }
                    )
    return points


def check_points(points: list[dict]) -> None:
    """The gate: every point's pick is the argmin of its static costs."""
    assert points, "empty tuner grid"
    for p in points:
        costs = p["static_costs"]
        assert costs, f"{p['key']}: no candidates scored"
        best_cost = min(costs.values())
        # the tuned pick is never worse than the best static family
        assert p["pick_cost_s"] <= best_cost * (1 + 1e-12), (
            f"{p['key']}: tuned pick {p['pick']} ({p['pick_cost_s']:.6g}s) "
            f"worse than best static ({best_cost:.6g}s)"
        )
        # ...and its recorded cost is the candidate's own entry
        assert p["pick"] in costs and costs[p["pick"]] == p["pick_cost_s"], (
            f"{p['key']}: pick {p['pick']} inconsistent with its static cost"
        )
        flat = {
            slug: c for slug, c in costs.items()
            if not Candidate.parse(slug).hierarchical
        }
        assert flat, f"{p['key']}: no flat candidates"
        assert p["flat_pick"] in flat, (
            f"{p['key']}: flat pick {p['flat_pick']} is not flat"
        )
        assert p["flat_cost_s"] == flat[p["flat_pick"]] == min(flat.values()), (
            f"{p['key']}: flat pick {p['flat_pick']} is not the flat argmin"
        )
        # ring candidates are unconditional — they anchor every cost map
        assert "ring-plain" in costs and "ring-hz" in costs


def table_from_points(points: list[dict]) -> TuningTable:
    """Rehydrate a :class:`TuningTable` from sweep records (the committed
    ``BENCH_tuner.json`` doubles as a full-grid tuning table)."""
    from ..schedule.tuner import TableEntry

    table = TuningTable()
    for p in points:
        table.put(
            TuningKey.parse(p["key"]),
            TableEntry(
                pick=Candidate.parse(p["pick"]),
                cost_s=p["pick_cost_s"],
                flat_pick=Candidate.parse(p["flat_pick"]),
                flat_cost_s=p["flat_cost_s"],
            ),
        )
    return table


def tuner_rows(points: list[dict]) -> list[list[str]]:
    """Human-readable rows for the CLI/benchmark tables."""
    rows = []
    for p in points:
        costs = p["static_costs"]
        flat_ring = costs["ring-hz"]
        rows.append(
            [
                str(p["n_ranks"]),
                f"{p['size_bytes'] // KB}",
                p["fabric"],
                p["roughness"],
                p["pick"],
                f"{p['pick_cost_s'] * 1e3:.3f}",
                f"{flat_ring / p['pick_cost_s']:.2f}x",
            ]
        )
    return rows
