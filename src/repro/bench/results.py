"""Machine-readable experiment records.

The benchmark harness prints human tables; this module gives every
experiment a durable JSON form so runs can be archived, diffed across
machines, and re-plotted without re-running (the artifact-evaluation
workflow the paper's appendix describes).
"""

from __future__ import annotations

import json
import platform
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Any

__all__ = ["ExperimentRecord", "save_records", "load_records"]

_SCHEMA_VERSION = 1


@dataclass
class ExperimentRecord:
    """One (experiment, configuration) measurement."""

    experiment: str  # e.g. "table3", "fig10"
    kernel: str  # e.g. "hzccl", "ccoll", "mpi", "fzlight"
    parameters: dict[str, Any] = field(default_factory=dict)
    metrics: dict[str, float] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        out = asdict(self)
        out["schema_version"] = _SCHEMA_VERSION
        return out

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "ExperimentRecord":
        version = data.get("schema_version", 0)
        if version != _SCHEMA_VERSION:
            raise ValueError(f"unsupported record schema version {version}")
        return cls(
            experiment=data["experiment"],
            kernel=data["kernel"],
            parameters=dict(data.get("parameters", {})),
            metrics=dict(data.get("metrics", {})),
        )


def save_records(
    records: list[ExperimentRecord], path: str | Path, note: str = ""
) -> None:
    """Write records plus environment metadata as one JSON document."""
    document = {
        "schema_version": _SCHEMA_VERSION,
        "note": note,
        "environment": {
            "python": platform.python_version(),
            "machine": platform.machine(),
            "system": platform.system(),
        },
        "records": [r.to_dict() for r in records],
    }
    Path(path).write_text(json.dumps(document, indent=2, sort_keys=True))


def load_records(path: str | Path) -> list[ExperimentRecord]:
    """Parse a document written by :func:`save_records`."""
    document = json.loads(Path(path).read_text())
    if document.get("schema_version") != _SCHEMA_VERSION:
        raise ValueError("unsupported document schema version")
    return [ExperimentRecord.from_dict(r) for r in document["records"]]
