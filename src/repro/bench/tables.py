"""Plain-text table rendering for the benchmark harness.

The benchmarks print paper-style rows; this keeps the formatting in one
place so every ``bench_*`` module emits consistent, diffable output.
"""

from __future__ import annotations

from typing import Sequence

__all__ = ["format_table", "print_table"]


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render an aligned ASCII table; floats get sensible precision."""

    def cell(v: object) -> str:
        if isinstance(v, float):
            if v == 0:
                return "0"
            if abs(v) >= 1000 or abs(v) < 1e-3:
                return f"{v:.3e}"
            return f"{v:.3f}".rstrip("0").rstrip(".")
        return str(v)

    grid = [[cell(h) for h in headers]] + [[cell(v) for v in row] for row in rows]
    widths = [max(len(r[i]) for r in grid) for i in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(grid[0], widths)))
    lines.append(sep)
    for row in grid[1:]:
        lines.append(" | ".join(v.ljust(w) for v, w in zip(row, widths)))
    return "\n".join(lines)


def print_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> None:
    """Print :func:`format_table` with a trailing blank line."""
    print(format_table(headers, rows, title))
    print()
