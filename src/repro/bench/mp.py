"""Multi-process data-plane benchmark + α–β calibration harness.

Shared backend for ``repro mp run`` / ``repro mp calibrate`` and the
committed ``BENCH_mp.json``.  Two jobs:

* :func:`build_case` — a registry of small, seeded schedule × codec ×
  initial-state cases covering every collective family the Schedule IR
  generates, so the CLI, the equivalence tests and the calibration loop
  all run the *same* configurations;
* :func:`calibrate` — runs the cases on a real :class:`MPCluster`,
  measures wall-clock makespans, and fits them back into the cost
  model's α–β terms via :func:`repro.schedule.cost.fit_alpha_beta`,
  reporting per-family model error.

Calibration methodology: each sample's communication residual is
``makespan − measured compute`` (the codec charges real kernel seconds
into the rank-local clock, so compute is measured, not modelled).  The
structural wire terms come from :func:`wire_summary`; compressed runs
scale the critical-path bytes by the *achieved* ratio (measured wire ÷
plain total), so no compression ratio is ever assumed.  Makespans on a
shared-memory data plane are microseconds-scale and noisy, hence
``repeats`` with best-of selection and a deliberately generous CI
ceiling — the gate catches a broken model (orders of magnitude), not
scheduler jitter.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

from ..collectives.ring import split_blocks
from ..runtime.faults import FaultPlan, RetryPolicy
from ..runtime.mp_cluster import MPCluster, MPRun
from ..runtime.nodemap import NodeMap
from ..schedule.cost import (
    DOC_GATHER,
    DOC_REDUCE,
    HZ_REDUCE,
    PLAIN,
    CalibrationSample,
    Discipline,
    fit_alpha_beta,
    wire_summary,
)
from ..schedule.executor import Outcome
from ..schedule.generators import (
    batched_fused_reduce,
    binomial_bcast,
    direct_reduce,
    hierarchical_allreduce_schedule,
    pipelined_ring_reduce_scatter,
    rabenseifner_allreduce_schedule,
    ring_reduce_scatter,
)
from ..schedule.ir import Schedule
from ..schedule.mp_executor import CodecSpec, MPExecutor

__all__ = [
    "FAMILIES",
    "CALIBRATION_FAMILIES",
    "DEFAULT_ERROR_CEILING",
    "MPCase",
    "build_case",
    "sim_reference",
    "states_equal",
    "calibrate",
    "calibration_rows",
    "samples_from_document",
    "check_document",
]

#: families ``repro mp run`` accepts (name → codec kind it uses)
FAMILIES = {
    "ring-rs": "plain",
    "ring-rs-hz": "homomorphic",
    "ring-rs-doc": "doc-reduce",
    "pipelined-rs": "plain",
    "rabenseifner": "plain",
    # direct-reduce's root does a k-way fused fold: homomorphic only
    "direct-reduce": "homomorphic",
    # the aggregation service's coalesced plan: several sessions share
    # one incast, the root folds each with its own fused reduction
    "batched-reduce": "homomorphic",
    "bcast": "compressed-bcast",
    "hierarchical": "plain",
    "hierarchical-hz": "homomorphic",
}

#: the calibration sweep's family set (every wire style: plain exchange,
#: pipelined overlap, recursive halving, incast, tree flows, compressed)
CALIBRATION_FAMILIES = (
    "ring-rs",
    "pipelined-rs",
    "rabenseifner",
    "direct-reduce",
    "bcast",
    "ring-rs-hz",
)

#: CI gate on worst per-family relative model error.  Generous on
#: purpose: millisecond-scale makespans on an oversubscribed (often
#: single-core) CI host carry scheduler jitter the two-coefficient model
#: cannot (and should not) absorb; the gate exists to catch a *broken*
#: fit — wrong units, wrong sign, wrong wire terms — which shows up as
#: multiple-× error, not tens of percent.
DEFAULT_ERROR_CEILING = 1.5

_DISCIPLINES: dict[str, Discipline] = {
    "plain": PLAIN,
    "homomorphic": HZ_REDUCE,
    "doc-reduce": DOC_REDUCE,
    "doc-gather": DOC_GATHER,
    "compressed-bcast": PLAIN,  # wire terms are discipline-independent
}


@dataclass
class MPCase:
    """One runnable configuration: schedule + codec spec + fresh states."""

    family: str
    n_ranks: int
    elements: int
    schedule: Schedule
    spec: CodecSpec
    make_state: Callable[[], list] = field(repr=False)
    #: per-rank plain payload size the wire summary is evaluated at
    payload_bytes: int = 0

    @property
    def discipline(self) -> Discipline:
        return _DISCIPLINES[self.spec.kind]


def _smooth_field(elements: int, seed: int) -> np.ndarray:
    """A compressible-but-not-trivial float32 field (seeded)."""
    rng = np.random.default_rng(seed)
    x = np.linspace(0.0, 8.0 * np.pi, elements, dtype=np.float32)
    field_ = np.sin(x) + 0.01 * rng.standard_normal(elements)
    return field_.astype(np.float32)


def _rank_fields(n: int, elements: int, seed: int) -> list[np.ndarray]:
    return [_smooth_field(elements, seed + 17 * r) for r in range(n)]


def build_case(
    family: str, n: int, elements: int, seed: int = 0
) -> MPCase:
    """Build one seeded case; ``make_state`` returns a fresh initial state
    each call so a case can be run repeatedly (MP and sim alike)."""
    if family not in FAMILIES:
        raise ValueError(
            f"unknown family {family!r}; one of {', '.join(sorted(FAMILIES))}"
        )
    kind = FAMILIES[family]
    arrays = _rank_fields(n, elements, seed)
    payload = elements * 4
    spec = CodecSpec(kind) if kind != "compressed-bcast" else None

    if family in ("ring-rs", "ring-rs-hz", "ring-rs-doc"):
        schedule = ring_reduce_scatter(n)

        def make_state() -> list:
            return [dict(enumerate(split_blocks(a, n))) for a in arrays]

    elif family == "pipelined-rs":
        n_chunks = 2
        schedule = pipelined_ring_reduce_scatter(n, n_chunks=n_chunks)

        def make_state() -> list:
            return [
                {
                    (b, c): chunk
                    for b, block in enumerate(split_blocks(a, n))
                    for c, chunk in enumerate(split_blocks(block, n_chunks))
                }
                for a in arrays
            ]

    elif family == "rabenseifner":
        schedule = rabenseifner_allreduce_schedule(n)

        def make_state() -> list:
            return [dict(enumerate(split_blocks(a, n))) for a in arrays]

    elif family == "direct-reduce":
        schedule = direct_reduce(n, root=0)

        def make_state() -> list:
            return [{("vec", r): arrays[r].copy()} for r in range(n)]

    elif family == "batched-reduce":
        sessions = 3
        batch = [
            _rank_fields(n, elements, seed + 101 * s) for s in range(sessions)
        ]
        schedule = batched_fused_reduce(n, sessions, root=0)
        # each rank contributes `sessions` whole vectors, so the plain
        # payload the wire summary prices is the batch total
        payload = elements * 4 * sessions

        def make_state() -> list:
            return [
                {("v", s, r): batch[s][r].copy() for s in range(sessions)}
                for r in range(n)
            ]

    elif family == "bcast":
        data = arrays[0]
        schedule = binomial_bcast(n, root=0, deliver=True)
        spec = CodecSpec(kind, bcast_data=data)

        def make_state() -> list:
            return [{"data": data.copy()} if r == 0 else {}
                    for r in range(n)]

    elif family in ("hierarchical", "hierarchical-hz"):
        per_node = 2 if n % 2 == 0 and n >= 4 else 1
        nodemap = NodeMap.regular(n, per_node)
        schedule = hierarchical_allreduce_schedule(nodemap, inter="ring")

        def make_state() -> list:
            return [
                dict(enumerate(split_blocks(a, nodemap.n_nodes)))
                for a in arrays
            ]

    else:  # pragma: no cover - FAMILIES is checked above
        raise AssertionError(family)

    return MPCase(
        family=family,
        n_ranks=n,
        elements=elements,
        schedule=schedule,
        spec=spec,
        make_state=make_state,
        payload_bytes=payload,
    )


# --------------------------------------------------------------------- #
# sim reference + state comparison (shared by tests and `mp run --verify`)
# --------------------------------------------------------------------- #
def sim_reference(
    case: MPCase,
    plan: FaultPlan | None = None,
    retry: RetryPolicy | None = None,
) -> Outcome:
    """Run the same case on the simulated executor (the oracle).

    Goes through the pipeline's schedule path so the oracle and the MP
    run dispatch from the same :class:`~repro.core.pipeline.Plan` shape.
    """
    from ..core.pipeline import Plan, execute

    plan_ = Plan.from_schedule(case.schedule, case.spec, family=case.family)
    return execute(
        plan_, state=case.make_state(), fault_plan=plan, retry=retry
    )


def _values_equal(a: Any, b: Any) -> bool:
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        return (
            isinstance(a, np.ndarray)
            and isinstance(b, np.ndarray)
            and a.dtype == b.dtype
            and a.shape == b.shape
            and bool(np.array_equal(a, b))
        )
    to_bytes = getattr(a, "to_bytes", None)
    if callable(to_bytes) and callable(getattr(b, "to_bytes", None)):
        return a.to_bytes() == b.to_bytes()
    return bool(a == b)


def states_equal(a: list, b: list) -> bool:
    """Bit-exact comparison of two rank-state lists."""
    if len(a) != len(b):
        return False
    for sa, sb in zip(a, b):
        if set(sa) != set(sb):
            return False
        if not all(_values_equal(sa[k], sb[k]) for k in sa):
            return False
    return True


# --------------------------------------------------------------------- #
# calibration
# --------------------------------------------------------------------- #
def _measure(
    cluster: MPCluster, case: MPCase, repeats: int
) -> MPRun:
    """Best-of-``repeats`` run of one case (minimum makespan wins)."""
    best: MPRun | None = None
    for _ in range(repeats):
        run = MPExecutor(cluster, case.spec).run(
            case.schedule, case.make_state()
        )
        if best is None or run.makespan_s < best.makespan_s:
            best = run
    assert best is not None
    return best


def calibrate(
    ranks: tuple[int, ...] = (8,),
    elements: tuple[int, ...] = (65536, 262144),
    families: tuple[str, ...] = CALIBRATION_FAMILIES,
    transport: str = "shm",
    repeats: int = 3,
    seed: int = 0,
) -> dict:
    """Measure every family × ranks × size point and fit α–β.

    Returns the ``BENCH_mp.json`` document: fitted coefficients, one row
    per measured point (measured vs modelled makespan, relative error)
    and the worst error per family.  Prefer one rank count per fit: on an
    oversubscribed host the makespan partly serialises across ranks, so
    rank counts shift the effective per-hop cost in a way a single α
    cannot absorb.
    """
    measured: list[tuple[MPCase, MPRun]] = []
    for n in ranks:
        with MPCluster(n, transport=transport) as cluster:
            for family in families:
                for elems in elements:
                    case = build_case(family, n, elems, seed=seed)
                    measured.append((case, _measure(cluster, case, repeats)))

    samples = []
    for case, run in measured:
        ws = wire_summary(case.schedule, case.discipline, case.payload_bytes)
        # achieved wire scale: 1.0 for plain runs (measured wire equals
        # the plain total exactly), the real compression ratio otherwise
        scale = run.wire / ws.total_bytes if ws.total_bytes > 0 else 1.0
        samples.append(
            CalibrationSample(
                family=case.family,
                hops=ws.hops,
                crit_bytes=ws.crit_bytes * scale,
                measured_s=run.makespan_s,
                compute_s=run.compute_s,
            )
        )
    fit = fit_alpha_beta(samples)

    rows = []
    for (case, run), report in zip(measured, fit.report()):
        rows.append(
            {
                "family": case.family,
                "ranks": case.n_ranks,
                "elements": case.elements,
                "codec": case.spec.kind,
                "hops": report["hops"],
                "crit_bytes": report["crit_bytes"],
                "wire_bytes": run.wire,
                "compute_s": run.compute_s,
                "measured_s": report["measured_s"],
                "modelled_s": report["modelled_s"],
                "rel_err": report["rel_err"],
            }
        )
    return {
        "transport": transport,
        "ranks": list(ranks),
        "elements": list(elements),
        "repeats": repeats,
        "alpha_s": fit.alpha_s,
        "beta_s_per_byte": fit.beta_s_per_byte,
        "bandwidth_GBps": (
            1.0 / fit.beta_s_per_byte / 1e9
            if fit.beta_s_per_byte > 0
            else None
        ),
        "rows": rows,
        "family_errors": fit.family_errors(),
        "max_rel_err": fit.max_rel_err(),
    }


def samples_from_document(doc: dict) -> list[CalibrationSample]:
    """Rebuild the fit's samples from a saved ``BENCH_mp.json`` document.

    ``repro tune run --calibration`` refits α–β from these to score
    candidates against the *measured* fabric instead of the idealized
    model (the rows already carry the achieved-compression wire terms).
    """
    rows = doc.get("rows")
    if not rows:
        raise ValueError("calibration document has no measured rows")
    try:
        return [
            CalibrationSample(
                family=r["family"],
                hops=int(r["hops"]),
                crit_bytes=float(r["crit_bytes"]),
                measured_s=float(r["measured_s"]),
                compute_s=float(r["compute_s"]),
            )
            for r in rows
        ]
    except (KeyError, TypeError, ValueError) as exc:
        raise ValueError(
            f"calibration document rows are malformed: {exc}"
        ) from exc


def calibration_rows(doc: dict) -> list[list[str]]:
    """Table rows for :func:`repro.bench.tables.format_table`."""
    out = []
    for r in doc["rows"]:
        out.append(
            [
                r["family"],
                str(r["ranks"]),
                str(r["elements"]),
                f"{r['measured_s'] * 1e6:.0f}",
                f"{r['modelled_s'] * 1e6:.0f}",
                f"{r['rel_err']:.0%}",
            ]
        )
    return out


def check_document(
    doc: dict, ceiling: float = DEFAULT_ERROR_CEILING
) -> list[str]:
    """Sanity-gate a calibration document; returns failure messages."""
    failures = []
    alpha = doc.get("alpha_s")
    beta = doc.get("beta_s_per_byte")
    if not isinstance(alpha, (int, float)) or not np.isfinite(alpha) or alpha < 0:
        failures.append(f"alpha_s is not a finite non-negative number: {alpha!r}")
    if not isinstance(beta, (int, float)) or not np.isfinite(beta) or beta < 0:
        failures.append(
            f"beta_s_per_byte is not a finite non-negative number: {beta!r}"
        )
    if (alpha or 0.0) == 0.0 and (beta or 0.0) == 0.0:
        failures.append("degenerate fit: both coefficients are zero")
    for family, err in sorted(doc.get("family_errors", {}).items()):
        if not np.isfinite(err) or err > ceiling:
            failures.append(
                f"{family}: model error {err:.0%} exceeds the "
                f"{ceiling:.0%} ceiling"
            )
    if not doc.get("rows"):
        failures.append("document has no measured rows")
    return failures
