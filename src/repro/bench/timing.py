"""Timing helpers for the benchmark harness."""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable

__all__ = ["TimedResult", "best_of", "throughput_gbps"]


@dataclass(frozen=True)
class TimedResult:
    """Best-of-N timing of one kernel."""

    seconds: float
    repeats: int

    def throughput_Bps(self, nbytes: int) -> float:
        return nbytes / self.seconds


def best_of(fn: Callable[[], object], repeats: int = 3, warmup: int = 1) -> TimedResult:
    """Best wall time of ``repeats`` runs after ``warmup`` throwaway runs.

    Best-of (not mean) is the right statistic for throughput claims on a
    shared machine: every source of interference only ever adds time.
    """
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    for _ in range(warmup):
        fn()
    times = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        times.append(time.perf_counter() - t0)
    return TimedResult(seconds=min(times), repeats=repeats)


def throughput_gbps(nbytes: int, seconds: float) -> float:
    """Bytes over seconds, in GB/s (decimal, like the paper)."""
    if seconds <= 0:
        raise ValueError("seconds must be positive")
    return nbytes / 1e9 / seconds
