"""Hierarchical-vs-flat allreduce sweep (model + executed spot checks).

Shared backend for ``repro bench-hierarchy`` and
``benchmarks/bench_hierarchy.py``.  Two deterministic parts:

* :func:`model_sweep` — closed-form §III-C dry runs at figure scale
  (hundreds to thousands of ranks) across fabric topologies, comparing
  the flat fused ring against the two-level hierarchical schedule for
  both the plain and the homomorphic kernel;
* :func:`executed_sweep` — functional runs at small rank counts whose
  *deterministic* outputs (wire bytes; per-round modelled comm seconds,
  read back from the trace) are compared against the cost model's MPI
  bucket for the *same* schedule.  Measured compute times are
  wall-clock noise and are deliberately excluded, so the committed
  ``BENCH_hierarchy.json`` is exactly reproducible.

The plain kernel's executed comm must match the model to float
rounding (both charge ``transfer_time`` of identical message sizes);
the homomorphic kernel is compared with the model re-rated to the
data's *actual* compression ratio and a tolerance covering per-block
ratio variance.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np

from ..collectives import (
    hzccl_hierarchical_allreduce,
    mpi_hierarchical_allreduce,
)
from ..compression.fzlight import FZLight
from ..core.config import CollectiveConfig
from ..core.cost_model import (
    PAPER_BROADWELL,
    model_hzccl_allreduce,
    model_hzccl_hierarchical_allreduce,
    model_mpi_allreduce,
    model_mpi_hierarchical_allreduce,
)
from ..runtime import (
    DragonflyNetwork,
    FatTreeNetwork,
    NodeMap,
    SimCluster,
    TorusNetwork,
    TraceLog,
)
from ..schedule import select_inter_family

__all__ = [
    "FABRICS",
    "MODEL_RANKS",
    "SIZES_MB",
    "RANKS_PER_NODE",
    "EXEC_SHAPES",
    "HZ_COMM_RTOL",
    "model_sweep",
    "executed_sweep",
    "model_rows",
    "executed_rows",
]

MB = 1 << 20
#: modelled grid — figure scale, one NIC-sharing 8-rank node per switch port
MODEL_RANKS = (256, 1024)
RANKS_PER_NODE = 8
SIZES_MB = (4, 64)
FABRICS = {
    "torus": TorusNetwork(),
    "dragonfly": DragonflyNetwork(),
    "fattree": FatTreeNetwork(),
}
#: executed spot checks — (n_ranks, ranks_per_node); kept ≤ 64 ranks
EXEC_SHAPES = ((32, 4), (64, 8))
EXEC_ELEMENTS = 16384
EXEC_SEED = 11
#: allowed executed/modelled comm disagreement for the compressed kernel
#: (the model prices every block at the mean compression ratio)
HZ_COMM_RTOL = 0.15


def model_sweep(ranks=MODEL_RANKS) -> list[dict]:
    """Flat-vs-hierarchical closed forms over the fabric × size grid."""
    points = []
    for n in ranks:
        nodemap = NodeMap.regular(n, RANKS_PER_NODE)
        for mb in SIZES_MB:
            total = mb * MB
            for fabric, network in FABRICS.items():
                inter = select_inter_family(network, nodemap)
                points.append(
                    {
                        "n_ranks": n,
                        "ranks_per_node": RANKS_PER_NODE,
                        "size_mb": mb,
                        "fabric": fabric,
                        "inter": inter,
                        "flat_hzccl_s": model_hzccl_allreduce(
                            n, total, PAPER_BROADWELL, network
                        ).total_time,
                        "hier_hzccl_s": model_hzccl_hierarchical_allreduce(
                            nodemap, total, PAPER_BROADWELL, network
                        ).total_time,
                        "flat_mpi_s": model_mpi_allreduce(
                            n, total, PAPER_BROADWELL, network
                        ).total_time,
                        "hier_mpi_s": model_mpi_hierarchical_allreduce(
                            nodemap, total, PAPER_BROADWELL, network
                        ).total_time,
                    }
                )
    return points


def _exec_data(n: int) -> list[np.ndarray]:
    rng = np.random.default_rng(EXEC_SEED)
    return [
        np.cumsum(rng.standard_normal(EXEC_ELEMENTS)).astype(np.float32)
        for _ in range(n)
    ]


def _trace_comm(cluster: SimCluster) -> float:
    return sum(s.comm_time for s in cluster.trace.round_summaries())


def executed_sweep() -> list[dict]:
    """Functional hierarchical runs vs the model, deterministic parts only."""
    network = TorusNetwork()
    config = CollectiveConfig(network=network)
    points = []
    for n, rpn in EXEC_SHAPES:
        nodemap = NodeMap.regular(n, rpn)
        data = _exec_data(n)
        total = data[0].nbytes
        exact = np.sum(np.stack(data), axis=0)

        cluster = SimCluster(n, network=network, trace=TraceLog())
        plain = mpi_hierarchical_allreduce(cluster, data, nodemap, inter="ring")
        plain_comm = _trace_comm(cluster)
        # float32 sums associate differently across the two trees; the
        # disagreement is bounded by accumulation rounding, not algorithm
        np.testing.assert_allclose(
            plain.outputs[0], exact, rtol=1e-4,
            atol=1e-5 * float(np.max(np.abs(exact))),
        )
        plain_model = model_mpi_hierarchical_allreduce(
            nodemap, total, PAPER_BROADWELL, network, inter="ring"
        ).buckets["MPI"]

        # re-rate the model at the data's actual mean compression ratio so
        # the comparison isolates the *schedule* pricing, not the ratio
        ratio = FZLight().compress(
            data[0], abs_eb=config.error_bound
        ).compression_ratio
        cluster = SimCluster(n, network=network, trace=TraceLog())
        hz = hzccl_hierarchical_allreduce(
            cluster, data, config, nodemap, inter="ring"
        )
        hz_comm = _trace_comm(cluster)
        assert not hz.degraded
        err = max(float(np.max(np.abs(o - exact))) for o in hz.outputs)
        assert err <= n * config.error_bound + 1e-12
        hz_model = model_hzccl_hierarchical_allreduce(
            nodemap, total, replace(PAPER_BROADWELL, ratio=ratio), network,
            inter="ring",
        ).buckets["MPI"]

        points.append(
            {
                "n_ranks": n,
                "ranks_per_node": rpn,
                "elements": EXEC_ELEMENTS,
                "inter": "ring",
                "plain_wire_bytes": plain.bytes_on_wire,
                "plain_comm_s": plain_comm,
                "plain_model_comm_s": plain_model,
                "hzccl_wire_bytes": hz.bytes_on_wire,
                "hzccl_comm_s": hz_comm,
                "hzccl_model_comm_s": hz_model,
                "compression_ratio": ratio,
            }
        )
    return points


# --------------------------------------------------------------------- #
# invariant checks + table rows (shared by CLI and pytest harness)
# --------------------------------------------------------------------- #
def model_rows(points: list[dict]) -> list[list]:
    """Assert the tentpole claim on each point; return printable rows.

    Hierarchical must *strictly* beat the flat fused ring for the
    homomorphic kernel on every fabric at every grid point (the
    acceptance bar is torus/dragonfly at n ≥ 256, ≥ 4 MB; the win is in
    fact uniform on this grid).
    """
    rows = []
    for p in points:
        assert p["hier_hzccl_s"] < p["flat_hzccl_s"], (
            f"hierarchical hzccl lost to flat ring at n={p['n_ranks']} "
            f"{p['size_mb']} MB on {p['fabric']}"
        )
        rows.append(
            [
                p["n_ranks"], p["size_mb"], p["fabric"], p["inter"],
                1e3 * p["flat_hzccl_s"], 1e3 * p["hier_hzccl_s"],
                p["flat_hzccl_s"] / p["hier_hzccl_s"],
                p["flat_mpi_s"] / p["hier_mpi_s"],
            ]
        )
    return rows


def executed_rows(points: list[dict]) -> list[list]:
    """Assert executed/modelled agreement; return printable rows."""
    rows = []
    for p in points:
        assert abs(p["plain_comm_s"] - p["plain_model_comm_s"]) <= (
            1e-9 * p["plain_model_comm_s"]
        ), f"plain comm mismatch at n={p['n_ranks']}"
        ratio = p["hzccl_comm_s"] / p["hzccl_model_comm_s"]
        assert 1 - HZ_COMM_RTOL <= ratio <= 1 + HZ_COMM_RTOL, (
            f"hzccl comm off model by {ratio:.3f}x at n={p['n_ranks']}"
        )
        assert p["hzccl_wire_bytes"] < p["plain_wire_bytes"]
        rows.append(
            [
                p["n_ranks"], p["ranks_per_node"],
                1e6 * p["plain_comm_s"], 1e6 * p["plain_model_comm_s"],
                1e6 * p["hzccl_comm_s"], 1e6 * p["hzccl_model_comm_s"],
                ratio, p["hzccl_wire_bytes"] / p["plain_wire_bytes"],
            ]
        )
    return rows
