"""Benchmark harness utilities: STREAM, timing, table rendering."""

from .results import ExperimentRecord, load_records, save_records
from .stream import StreamResult, memory_bandwidth_efficiency, run_stream
from .tables import format_table, print_table
from .timing import TimedResult, best_of, throughput_gbps

__all__ = [
    "StreamResult",
    "run_stream",
    "memory_bandwidth_efficiency",
    "TimedResult",
    "best_of",
    "throughput_gbps",
    "format_table",
    "print_table",
    "ExperimentRecord",
    "save_records",
    "load_records",
]
