"""Kernel-level perf-regression harness (``repro bench-kernels``).

Measures the throughput of the hot kernels — ``encode_blocks``, the fused
``classify_encode``, ``decode_blocks``, ``decode_selected`` and the fused
k-way ``reduce_fused`` at k ∈ {2, 8, 16} — per available backend, on the
same random-walk field family every run, and emits the machine-readable
``BENCH_kernels.json`` that CI diffs against the committed baseline.

Throughput is **uncompressed** bytes over best-of-N wall time (GB/s,
decimal), the figure of merit the paper reports for its compression and
homomorphic kernels.  Absolute numbers are host-dependent, so every run
also measures a local **STREAM triad** baseline (``a = b + s·c`` over
arrays far larger than cache, 24 bytes of traffic per element — the
textbook memory-bandwidth roofline) and records each kernel additionally
as a *fraction of STREAM*.  The fraction is the roofline position: it is
comparable across hosts in a way raw GB/s never is, and it is what
``benchmarks/kernel_gate.py`` gates on.  The committed baseline is only
used for *relative* regression checks (default gate: >2x slower fails).
"""

from __future__ import annotations

import json
import platform
from typing import Any

import numpy as np

from ..compression.encoding import (
    decode_blocks,
    decode_selected,
    encode_blocks,
    encode_into,
    payload_offsets,
)
from ..compression.format import CompressedField
from ..homomorphic.hzdynamic import HZDynamic
from ..kernels.dispatch import available_backends, backend_status, use_backend
from .timing import best_of, throughput_gbps

__all__ = [
    "REDUCE_KS",
    "stream_triad_gbps",
    "require_backend",
    "run_kernel_bench",
    "compare_to_baseline",
    "format_report",
]

#: Operand counts for the fused-reduction measurements.
REDUCE_KS = (2, 8, 16)

_BLOCK_SIZE = 32
_SELECT_FRACTION = 0.25


def stream_triad_gbps(mb: float = 16.0, repeats: int = 3) -> dict[str, Any]:
    """Measure the host's STREAM-triad bandwidth (the roofline denominator).

    ``a = b + s·c`` over contiguous float64 arrays sized well past cache;
    the conventional STREAM accounting charges 24 bytes per element (two
    reads + one write).  Best-of-N like every other measurement here.
    """
    n = max(1, int(mb * 1e6 / 8))
    b = np.full(n, 1.5)
    c = np.full(n, 0.25)
    a = np.empty(n)

    def triad() -> None:
        np.multiply(c, 3.0, out=a)
        np.add(a, b, out=a)

    t = best_of(triad, repeats=repeats)
    return {
        "seconds": t.seconds,
        "gbps": throughput_gbps(24 * n, t.seconds),
        "mb": n * 8 / 1e6,
    }


def require_backend(name: str) -> None:
    """Raise ``RuntimeError`` (with the probe error) unless ``name`` loaded.

    Backs ``repro bench-kernels --require <backend>``: CI perf jobs must
    fail loudly when the backend they exist to measure silently fell back
    to NumPy.
    """
    status = backend_status()
    state = status.get(name)
    if state is None:
        raise RuntimeError(
            f"unknown kernel backend {name!r}; known: {', '.join(sorted(status))}"
        )
    if state != "ok":
        raise RuntimeError(f"required kernel backend {name!r} unavailable: {state}")


def _make_deltas(n_elements: int, seed: int = 7) -> np.ndarray:
    """Quantised Lorenzo deltas of a float32 random walk (the bench field)."""
    rng = np.random.default_rng(seed)
    walk = np.cumsum(rng.standard_normal(n_elements)).astype(np.float32)
    q = np.round(walk / (2 * 1e-3)).astype(np.int64)
    deltas = np.empty_like(q)
    deltas[0] = q[0]
    deltas[1:] = q[1:] - q[:-1]
    return deltas.reshape(-1, _BLOCK_SIZE)


def _make_fields(k: int, n_elements: int, seed: int = 11) -> list[CompressedField]:
    """k homomorphically compatible operands with mixed block classes."""
    rng = np.random.default_rng(seed)
    nb = n_elements // _BLOCK_SIZE
    fields = []
    for j in range(k):
        blocks = _make_deltas(n_elements, seed=seed + j)
        # zero out a changing ~30% of blocks so constant / single-owner /
        # accumulate classes all show up, like real partially-sparse ranks
        zero = rng.random(nb) < 0.3
        blocks[zero] = 0
        lens, payload = encode_blocks(blocks, _BLOCK_SIZE)
        fields.append(
            CompressedField(
                n=n_elements,
                error_bound=1e-3,
                block_size=_BLOCK_SIZE,
                n_threadblocks=1,
                outliers=np.zeros(1, dtype=np.int64),
                code_lengths=lens,
                payload=payload,
            )
        )
    return fields


def _bench_backend(
    backend: str, n_elements: int, repeats: int
) -> dict[str, Any]:
    nbytes = n_elements * 4  # the field is a float32 array on the wire
    blocks = _make_deltas(n_elements)
    with use_backend(backend):
        lens, payload = encode_blocks(blocks, _BLOCK_SIZE)
        offsets = payload_offsets(lens, _BLOCK_SIZE)
        sel = np.random.default_rng(3).permutation(lens.size)[
            : max(1, int(lens.size * _SELECT_FRACTION))
        ]
        kernels: dict[str, Any] = {}

        t = best_of(lambda: encode_blocks(blocks, _BLOCK_SIZE), repeats=repeats)
        kernels["encode"] = {
            "seconds": t.seconds,
            "gbps": throughput_gbps(nbytes, t.seconds),
        }
        t = best_of(lambda: encode_into(blocks, _BLOCK_SIZE), repeats=repeats)
        kernels["classify_encode"] = {
            "seconds": t.seconds,
            "gbps": throughput_gbps(nbytes, t.seconds),
        }
        t = best_of(
            lambda: decode_blocks(lens, payload, _BLOCK_SIZE, offsets=offsets),
            repeats=repeats,
        )
        kernels["decode"] = {
            "seconds": t.seconds,
            "gbps": throughput_gbps(nbytes, t.seconds),
        }
        t = best_of(
            lambda: decode_selected(sel, lens, offsets, payload, _BLOCK_SIZE),
            repeats=repeats,
        )
        sel_bytes = sel.size * _BLOCK_SIZE * 4
        kernels["decode_selected"] = {
            "seconds": t.seconds,
            "gbps": throughput_gbps(sel_bytes, t.seconds),
        }

        engine = HZDynamic(collect_stats=False)
        for k in REDUCE_KS:
            fields = _make_fields(k, n_elements)
            t = best_of(lambda: engine.reduce_fused(fields), repeats=repeats)
            kernels[f"reduce_fused_k{k}"] = {
                "seconds": t.seconds,
                "gbps": throughput_gbps(k * nbytes, t.seconds),
            }
    return kernels


def run_kernel_bench(
    mb: float = 16.0,
    repeats: int = 3,
    backends: tuple[str, ...] | None = None,
    require: tuple[str, ...] | None = None,
) -> dict[str, Any]:
    """Run the harness; returns the ``BENCH_kernels.json`` document.

    ``require`` names backends that must have loaded — a missing one
    raises :class:`RuntimeError` with its probe error before anything is
    measured.  Every kernel entry carries both ``gbps`` and
    ``frac_stream`` (its GB/s over the run's own STREAM-triad baseline).
    """
    for name in require or ():
        require_backend(name)
    n_elements = max(_BLOCK_SIZE, int(mb * 1e6 / 4) // _BLOCK_SIZE * _BLOCK_SIZE)
    if backends is None:
        backends = available_backends()
    stream = stream_triad_gbps(mb=mb, repeats=repeats)
    results = {
        name: _bench_backend(name, n_elements, repeats) for name in backends
    }
    for kernels in results.values():
        for entry in kernels.values():
            entry["frac_stream"] = (
                entry["gbps"] / stream["gbps"] if stream["gbps"] > 0 else 0.0
            )
    return {
        "bench": "kernels",
        "field_mb": n_elements * 4 / 1e6,
        "block_size": _BLOCK_SIZE,
        "repeats": repeats,
        "reduce_ks": list(REDUCE_KS),
        "host": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
        },
        "stream": stream,
        "backend_status": backend_status(),
        "backends": results,
    }


def compare_to_baseline(
    current: dict[str, Any], baseline: dict[str, Any], tolerance: float = 2.0
) -> list[str]:
    """Regressions (``> tolerance×`` slower than baseline), empty if clean.

    Only kernels present in both documents are compared, so adding a
    backend or a kernel never fails the gate by itself.
    """
    failures = []
    for backend, base_kernels in baseline.get("backends", {}).items():
        cur_kernels = current.get("backends", {}).get(backend)
        if cur_kernels is None:
            continue
        for kernel, base in base_kernels.items():
            cur = cur_kernels.get(kernel)
            if cur is None or base["gbps"] <= 0:
                continue
            slowdown = base["gbps"] / cur["gbps"] if cur["gbps"] > 0 else float("inf")
            if slowdown > tolerance:
                failures.append(
                    f"{backend}/{kernel}: {cur['gbps']:.3f} GB/s vs baseline "
                    f"{base['gbps']:.3f} GB/s ({slowdown:.2f}x slower, "
                    f"tolerance {tolerance:.2f}x)"
                )
    return failures


def format_report(doc: dict[str, Any]) -> str:
    """Human-readable table of a harness document."""
    lines = [
        f"kernel bench @ {doc['field_mb']:.1f} MB field, "
        f"best of {doc['repeats']} (GB/s of uncompressed bytes)"
    ]
    stream = doc.get("stream")
    if stream:
        lines.append(
            f"STREAM triad baseline: {stream['gbps']:.3f} GB/s "
            f"(roofline denominator)"
        )
    for backend, kernels in doc["backends"].items():
        lines.append(f"[{backend}]")
        for kernel, r in kernels.items():
            frac = (
                f"  {100 * r['frac_stream']:5.1f}% of STREAM"
                if "frac_stream" in r
                else ""
            )
            lines.append(
                f"  {kernel:18} {r['gbps']:8.3f} GB/s  "
                f"({r['seconds'] * 1e3:8.2f} ms){frac}"
            )
    unavailable = {
        k: v for k, v in doc.get("backend_status", {}).items() if v != "ok"
    }
    for name, err in unavailable.items():
        lines.append(f"[{name}] unavailable: {err}")
    return "\n".join(lines)


def dumps(doc: dict[str, Any]) -> str:
    return json.dumps(doc, indent=2, sort_keys=True) + "\n"
