"""STREAM memory-bandwidth benchmark (McCalpin) — NumPy edition.

The paper validates fZ-light's memory efficiency against the STREAM suite
(Table IV): compressor throughput is divided by the *highest* of the four
STREAM kernel bandwidths.  This module reproduces the four kernels with
the standard byte-counting conventions:

=========  =======================  ==================
Kernel     Operation                Bytes per element
=========  =======================  ==================
copy       ``c = a``                16
scale      ``b = s·c``              16
add        ``c = a + b``            24
triad      ``a = b + s·c``          24
=========  =======================  ==================
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from ..utils.validation import ensure_positive_int

__all__ = ["StreamResult", "run_stream", "memory_bandwidth_efficiency"]


@dataclass(frozen=True)
class StreamResult:
    """Bandwidths of the four STREAM kernels, in bytes/second."""

    copy_Bps: float
    scale_Bps: float
    add_Bps: float
    triad_Bps: float

    @property
    def peak_Bps(self) -> float:
        """The paper's convention: the best of the four."""
        return max(self.copy_Bps, self.scale_Bps, self.add_Bps, self.triad_Bps)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        gb = 1e9
        return (
            f"STREAM copy={self.copy_Bps / gb:.2f} scale={self.scale_Bps / gb:.2f} "
            f"add={self.add_Bps / gb:.2f} triad={self.triad_Bps / gb:.2f} GB/s "
            f"(peak {self.peak_Bps / gb:.2f})"
        )


def run_stream(n_elements: int = 20_000_000, repeats: int = 5) -> StreamResult:
    """Run the four kernels; per-kernel bandwidth is the best of ``repeats``.

    Arrays are float64 like the reference STREAM; ``n_elements`` should
    comfortably exceed the last-level cache (the default is 160 MB/array).
    """
    ensure_positive_int(n_elements, "n_elements")
    ensure_positive_int(repeats, "repeats")
    a = np.full(n_elements, 1.0)
    b = np.full(n_elements, 2.0)
    c = np.zeros(n_elements)
    scalar = 3.0
    itemsize = a.itemsize

    def best(fn, moved_bytes: int) -> float:
        times = []
        for _ in range(repeats):
            t0 = time.perf_counter()
            fn()
            times.append(time.perf_counter() - t0)
        return moved_bytes / min(times)

    two = 2 * n_elements * itemsize
    three = 3 * n_elements * itemsize
    return StreamResult(
        copy_Bps=best(lambda: np.copyto(c, a), two),
        scale_Bps=best(lambda: np.multiply(c, scalar, out=b), two),
        add_Bps=best(lambda: np.add(a, b, out=c), three),
        triad_Bps=best(lambda: np.add(b, scalar * c, out=a), three),
    )


def memory_bandwidth_efficiency(
    data_nbytes: int, elapsed_s: float, stream: StreamResult, passes: float = 2.0
) -> float:
    """Fraction of STREAM peak a kernel achieved (Table IV's percentages).

    ``passes`` counts how many times the kernel logically moves the data
    through memory (compression reads the input and writes the compressed
    output ⇒ ~2 input-sized passes at low ratios, which is the convention
    the paper's efficiency numbers imply).
    """
    if elapsed_s <= 0:
        raise ValueError("elapsed_s must be positive")
    achieved = passes * data_nbytes / elapsed_s
    return achieved / stream.peak_Bps
