"""Scaling study: regenerate the paper's Figure 10/12 curves from the model.

Evaluates the §III-C cost formulas under the paper-derived Broadwell rates
across node counts and prints the speedup-over-MPI series for all four
kernels — the data behind Figures 10 and 12.  Add ``--csv`` to emit
machine-readable output for plotting.

Run:  python examples/scaling_study.py [--csv]
"""

import sys

from repro.bench.tables import format_table
from repro.core.cost_model import (
    PAPER_BROADWELL,
    model_ccoll_allreduce,
    model_ccoll_reduce_scatter,
    model_hzccl_allreduce,
    model_hzccl_reduce_scatter,
    model_mpi_allreduce,
    model_mpi_reduce_scatter,
)
from repro.runtime.network import OMNIPATH_100G

NODES = (2, 4, 8, 16, 32, 64, 128, 256, 512)
TOTAL = 646_000_000  # the full RTM dataset message of the paper


def series(op: str):
    models = {
        "reduce_scatter": (
            model_mpi_reduce_scatter,
            model_ccoll_reduce_scatter,
            model_hzccl_reduce_scatter,
        ),
        "allreduce": (model_mpi_allreduce, model_ccoll_allreduce, model_hzccl_allreduce),
    }[op]
    rows = []
    for n in NODES:
        row = [n]
        for mt in (False, True):
            mpi, cc, hz = (
                m(n, TOTAL, PAPER_BROADWELL, OMNIPATH_100G, mt).total_time
                for m in models
            )
            row += [mpi / cc, mpi / hz]
        rows.append(row)
    return rows


def main() -> None:
    as_csv = "--csv" in sys.argv
    headers = ["nodes", "C-Coll ST", "hZCCL ST", "C-Coll MT", "hZCCL MT"]
    for op, fig in (("reduce_scatter", "Figure 10"), ("allreduce", "Figure 12")):
        rows = series(op)
        if as_csv:
            print(f"# {fig}: {op} speedup over MPI, 646 MB")
            print(",".join(headers))
            for row in rows:
                print(",".join(f"{v:.4f}" if isinstance(v, float) else str(v) for v in row))
        else:
            print(
                format_table(
                    headers, rows,
                    title=f"{fig}: {op} speedup over MPI "
                    "(646 MB, paper-derived rates)",
                )
            )
            print()


if __name__ == "__main__":
    main()
