"""Climate-ensemble averaging with hZCCL Reduce_scatter.

The CESM-style scenario from the paper's dataset table: ensemble members
(simulated ranks) hold one 2-D atmosphere field each; computing the
ensemble mean, partitioned across the members for subsequent per-region
analysis, is a Reduce_scatter.

CESM-ATM is the paper's hardest dataset for homomorphic compression —
nearly every block is non-constant (pipeline 4) — so this example also
shows the honest worst case and prints the pipeline mix to prove it.

Run:  python examples/climate_ensemble_reduce.py
"""

import numpy as np

from repro import HZCCL
from repro.collectives import split_blocks
from repro.core import calibrated_config
from repro.compression import resolve_error_bound
from repro.datasets import generate_field
from repro.runtime.topology import Ring


def main() -> None:
    n_members = 6
    members = [
        generate_field("cesm", i, scale=0.05, seed=99).ravel()
        for i in range(n_members)
    ]
    print(f"{n_members} ensemble members, {members[0].size / 1e6:.2f}M cells each")

    eb = resolve_error_bound(members[0], rel_eb=1e-3)
    lib = HZCCL(calibrated_config(members[0], error_bound=eb))

    exact = np.sum(np.stack(members).astype(np.float64), axis=0)
    ring = Ring(n_members)
    exact_blocks = split_blocks(exact, n_members)

    for kernel in ("mpi", "hzccl"):
        res = lib.reduce_scatter(members, kernel=kernel)
        worst = max(
            float(np.abs(res.outputs[i].astype(np.float64)
                         - exact_blocks[ring.owned_block(i)]).max())
            for i in range(n_members)
        )
        line = (
            f"{kernel:6}: {res.total_time * 1e3:8.2f} ms simulated | "
            f"wire {res.bytes_on_wire / 1e6:6.2f} MB | worst-rank max err "
            f"{worst:.2e} (bound {n_members * eb:.2e})"
        )
        if res.pipeline_stats is not None:
            line += f"\n        pipeline mix: {res.pipeline_stats}"
        print(line)

    # each rank finishes with the ensemble MEAN of its region
    res = lib.reduce_scatter(members)
    region_means = [out / n_members for out in res.outputs]
    print("\nper-region ensemble means (first 3 cells of each rank's region):")
    for i, mean in enumerate(region_means):
        print(f"  rank {i}: {np.array2string(mean[:3], precision=4)}")


if __name__ == "__main__":
    main()
