"""Image stacking with hZCCL — the paper's end-to-end use case (§IV-E).

Sixteen simulated nodes each hold one noisy exposure of a deep-sky scene;
stacking them is an Allreduce.  The demo compares the uncompressed MPI
stack with the hZCCL stack in time, wire volume, and fidelity.

Run:  python examples/image_stacking_demo.py
"""

import numpy as np

from repro.apps import make_exposures, stack_images
from repro.compression import resolve_error_bound
from repro.core import calibrated_config


def main() -> None:
    n_ranks = 16
    scene, exposures = make_exposures(n_ranks, shape=(512, 512), seed=2024)
    print(f"{n_ranks} exposures of {exposures[0].shape}, "
          f"pixel range [{scene.min():.1f}, {scene.max():.1f}]")

    # paper setting: absolute bound equivalent to 1e-4 of the pixel range
    eb = resolve_error_bound(exposures[0], rel_eb=1e-4)
    config = calibrated_config(exposures[0], error_bound=eb)

    reference = stack_images(exposures, "mpi", config)
    for method in ("ccoll", "hzccl"):
        res = stack_images(exposures, method, config, reference=reference.stacked)
        pct = res.breakdown.percentages()
        print(
            f"{method:6}: {res.total_time * 1e3:8.2f} ms simulated | "
            f"wire {res.bytes_on_wire / 1e6:7.2f} MB | "
            f"PSNR {res.psnr:6.2f} dB | NRMSE {res.nrmse:.2e} | "
            f"compute {pct['CPR'] + pct['CPT'] + pct['DPR'] + pct['HPR']:5.1f}% "
            f"MPI {pct['MPI']:5.1f}%"
        )
    print(
        f"mpi   : {reference.total_time * 1e3:8.2f} ms simulated | "
        f"wire {reference.bytes_on_wire / 1e6:7.2f} MB | exact reference"
    )

    # Denoising sanity: the stack should beat any single exposure.
    hz = stack_images(exposures, "hzccl", config)
    single = float(np.sqrt(np.mean((exposures[0] - scene) ** 2)))
    stacked = float(np.sqrt(np.mean((hz.stacked - scene) ** 2)))
    print(f"noise RMS: single exposure {single:.3f} → stacked {stacked:.3f} "
          f"({single / stacked:.1f}x cleaner)")


if __name__ == "__main__":
    main()
