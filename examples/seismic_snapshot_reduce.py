"""Seismic snapshot accumulation with a root-based compressed Reduce.

The RTM workflow from the paper's motivation: imaging conditions sum
wavefield snapshots across shots, and the sum is only needed on the node
that writes the image.  That is a Reduce, not an Allreduce — and hZCCL's
root-based Reduce is maximally asymmetric: *only the root ever runs a
decompression*; every other node touches nothing but compressed bytes.

Run:  python examples/seismic_snapshot_reduce.py
"""

import numpy as np

from repro import HZCCL
from repro.core import calibrated_config
from repro.compression import resolve_error_bound
from repro.datasets import snapshot_series


def main() -> None:
    n_shots = 6
    snapshots = [s.ravel() for s in snapshot_series("sim1", n_shots, scale=0.02, seed=5)]
    print(f"{n_shots} RTM snapshots, {snapshots[0].size / 1e6:.2f}M cells each, "
          f"{np.mean([float((s == 0).mean()) for s in snapshots]) * 100:.0f}% quiet")

    eb = resolve_error_bound(snapshots[0], rel_eb=1e-4)
    lib = HZCCL(calibrated_config(snapshots[0], error_bound=eb))

    exact = np.sum(np.stack(snapshots).astype(np.float64), axis=0)
    for kernel in ("mpi", "hzccl"):
        res = lib.reduce(snapshots, root=0, kernel=kernel)
        err = float(np.abs(res.outputs[0].astype(np.float64) - exact).max())
        line = (
            f"{kernel:6}: wire {res.bytes_on_wire / 1e6:6.2f} MB | "
            f"root max err {err:.2e} (bound {n_shots * eb:.2e})"
        )
        if res.pipeline_stats is not None:
            line += f"\n        pipeline mix: {res.pipeline_stats}"
        print(line)

    # only rank 0 decompresses — show the ledger
    res = lib.reduce(snapshots, root=0)
    print("\nwho decompressed? (the co-design's asymmetry)")
    # re-run on an explicit cluster to inspect per-rank clocks
    from repro.collectives import hzccl_reduce
    from repro.runtime import SimCluster

    cluster = SimCluster(n_shots, network=lib.config.network)
    hzccl_reduce(cluster, snapshots, lib.config, root=0)
    for i, clock in enumerate(cluster.clocks):
        print(f"  rank {i}: DPR {clock.buckets['DPR'] * 1e3:6.2f} ms, "
              f"HPR {clock.buckets['HPR'] * 1e3:6.2f} ms")


if __name__ == "__main__":
    main()
