"""Serve many concurrent reductions through the aggregation service.

Three tenants ("climate", "gradients", "seismic") fire rooted SUM
reductions at the service at once.  Same-shaped sessions landing inside
the batching window coalesce into one fused ``batched-reduce`` plan —
one compression pass per rank covering the whole batch, fused k-way
folds at the root — while odd-shaped sessions run alone; either way
every tenant's result is bit-identical to a lone ``HZCCL.reduce`` call.

The run also injects a chaos fault plan (dropped + corrupted packets on
the simulated data plane) to show the degrade-to-plain contract riding
through the service untouched: a batch whose compressed stream becomes
unrecoverable reruns plain, exact, and reports ``degraded=True``.

Run:  PYTHONPATH=src python examples/aggregation_service.py
"""

import asyncio

import numpy as np

from repro import CollectiveConfig, HZCCL
from repro.obs.metrics import METRICS, metrics_enabled
from repro.runtime.faults import FaultPlan
from repro.service import AggregationService

N_RANKS = 4
ELEMENTS = 8192


def make_session(seed: int, elements: int = ELEMENTS) -> list[np.ndarray]:
    rng = np.random.default_rng(seed)
    return [
        np.cumsum(rng.normal(0, 0.02, elements)).astype(np.float32)
        for _ in range(N_RANKS)
    ]


async def tenant(svc, name: str, sessions: list[list[np.ndarray]]):
    results = []
    for i, data in enumerate(sessions):
        r = await svc.submit(data, tenant=name)
        results.append((data, r))
        flags = ", degraded -> exact plain rerun" if r.degraded else ""
        print(
            f"  [{name}] session {i}: coalesced with "
            f"{r.batched - 1} other(s), batch wire "
            f"{r.bytes_on_wire / 1e3:.1f} KB{flags}"
        )
    return results


async def serve(config: CollectiveConfig, label: str):
    print(f"\n=== {label} ===")
    svc = AggregationService(
        config, window_s=0.02, max_batch=8, max_pending=32, tenant_quota=8
    )
    async with svc:
        outcomes = await asyncio.gather(
            tenant(svc, "climate", [make_session(s) for s in range(3)]),
            tenant(svc, "gradients", [make_session(10 + s) for s in range(3)]),
            # odd shape: never shares a batch with the others
            tenant(svc, "seismic", [make_session(99, ELEMENTS // 2)]),
        )
    stats = svc.stats()
    print(
        f"  served {stats['submitted']} sessions in {stats['batches']} "
        f"batches ({stats['sessions_batched'] / stats['batches']:.1f} "
        f"sessions/batch), wire {stats['wire_bytes'] / 1e3:.1f} KB, "
        f"plan-cache hit rate {stats['plan_cache']['hit_rate']:.0%}"
    )

    if config.fault_plan is None:
        # batching must not change a single byte vs a lone facade reduce
        lib = HZCCL(config)
        for per_tenant in outcomes:
            for data, r in per_tenant:
                independent = lib.reduce(data).outputs[0]
                assert np.array_equal(r.output, independent), (
                    "batching changed bytes!"
                )
        print("  verify: every session bit-identical to a lone reduce")
    else:
        # under faults: degraded batches rerun plain and must match the
        # plain kernel bit for bit; surviving compressed batches stay
        # within the error bound
        plain = HZCCL()
        for per_tenant in outcomes:
            for data, r in per_tenant:
                reference = plain.reduce(data, kernel="mpi").outputs[0]
                if r.degraded:
                    np.testing.assert_array_equal(r.output, reference)
                else:
                    bound = len(data) * config.error_bound + 1e-6
                    assert float(np.abs(r.output - reference).max()) <= bound
        print("  verify: degraded batches exact, the rest within the bound")


def main() -> None:
    with metrics_enabled():
        asyncio.run(serve(CollectiveConfig(), "clean run, batching on"))
        chaos = CollectiveConfig(
            fault_plan=FaultPlan(seed=1, drop_rate=0.1, corrupt_rate=0.5)
        )
        asyncio.run(
            serve(chaos, "chaos run (10% drops, 50% payload corruption)")
        )
        degraded = METRICS.counter("service.batches.degraded")
        print(
            f"\nchaos summary: {int(degraded)} degraded batch(es); "
            "degraded results are exact plain reruns, never silently wrong"
        )


if __name__ == "__main__":
    main()
