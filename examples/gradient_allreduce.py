"""Gradient synchronisation for data-parallel training with hZCCL.

The deep-learning motivation from the paper's introduction: data-parallel
workers hold per-replica gradients that must be summed every step
(Allreduce).  Gradients tolerate bounded lossy compression, and their
long tails of near-zero entries are exactly the constant-block pattern
hZ-dynamic's pipeline 1 eats for free.

The demo trains nothing — it synthesises realistic layered gradients
(dense early layers, sparse embedding-style layers), runs one synchronisation
step under all three kernels, and reports time / volume / error and the
pipeline mix.

Run:  python examples/gradient_allreduce.py
"""

import numpy as np

from repro import HZCCL
from repro.core import calibrated_config
from repro.compression import resolve_error_bound


def synth_gradients(rng: np.random.Generator, n_params: int) -> np.ndarray:
    """One worker's flattened gradient: dense conv part + sparse embedding."""
    dense = rng.normal(0, 1e-2, n_params // 2).astype(np.float32)
    sparse = np.zeros(n_params - n_params // 2, dtype=np.float32)
    hot = rng.choice(sparse.size, size=sparse.size // 200, replace=False)
    sparse[hot] = rng.normal(0, 5e-2, hot.size).astype(np.float32)
    return np.concatenate([dense, sparse])


def main() -> None:
    rng = np.random.default_rng(7)
    n_workers, n_params = 8, 2_000_000
    grads = [synth_gradients(rng, n_params) for _ in range(n_workers)]
    exact = np.sum(np.stack(grads).astype(np.float64), axis=0)

    eb = resolve_error_bound(grads[0], rel_eb=1e-3)
    lib = HZCCL(calibrated_config(grads[0], error_bound=eb, multithread=True))
    print(f"{n_workers} workers x {n_params / 1e6:.1f}M params, "
          f"gradient error bound {eb:.2e}\n")

    for kernel in ("mpi", "ccoll", "hzccl"):
        res = lib.allreduce(grads, kernel=kernel)
        err = np.abs(res.outputs[0].astype(np.float64) - exact).max()
        line = (
            f"{kernel:6}: {res.total_time * 1e3:8.2f} ms simulated | "
            f"wire {res.bytes_on_wire / 1e6:7.1f} MB | max err {err:.2e}"
        )
        if res.pipeline_stats is not None:
            line += f" | {res.pipeline_stats}"
        print(line)

    # Relative accuracy of the averaged gradient
    res = lib.allreduce(grads)
    avg = res.outputs[0] / n_workers
    exact_avg = exact / n_workers
    rel = float(
        np.linalg.norm(avg - exact_avg) / (np.linalg.norm(exact_avg) + 1e-30)
    )
    print(f"\naveraged-gradient relative L2 error: {rel:.2e} "
          "(bounded noise ≪ SGD's own stochastic noise)")


if __name__ == "__main__":
    main()
