"""Quickstart: compress, reduce homomorphically, run a collective.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import FZLight, HZCCL, HZDynamic
from repro.core import calibrated_config


def main() -> None:
    rng = np.random.default_rng(0)

    # ------------------------------------------------------------------ #
    # 1. Error-bounded lossy compression with fZ-light
    # ------------------------------------------------------------------ #
    data = np.cumsum(rng.normal(0, 0.01, 1_000_000)).astype(np.float32)
    comp = FZLight()
    field = comp.compress(data, rel_eb=1e-3)
    restored = comp.decompress(field)
    print(f"compression ratio : {field.compression_ratio:8.2f}")
    print(f"max abs error     : {np.abs(restored - data).max():.3e} "
          f"(bound {field.error_bound:.3e})")

    # ------------------------------------------------------------------ #
    # 2. Homomorphic reduction — sum two arrays WITHOUT decompressing
    # ------------------------------------------------------------------ #
    other = np.cumsum(rng.normal(0, 0.01, 1_000_000)).astype(np.float32)
    cx = comp.compress(data, abs_eb=field.error_bound)
    cy = comp.compress(other, abs_eb=field.error_bound)
    engine = HZDynamic()
    csum = engine.add(cx, cy)  # operates directly on compressed bytes
    total = comp.decompress(csum)
    exact = data.astype(np.float64) + other.astype(np.float64)
    print(f"homomorphic sum   : max err {np.abs(total - exact).max():.3e} "
          f"(≤ 2·eb = {2 * field.error_bound:.3e})")
    print(f"pipeline mix      : {engine.stats}")

    # ------------------------------------------------------------------ #
    # 3. A compressed collective across simulated ranks
    # ------------------------------------------------------------------ #
    # Scientific-field-like rank data: a shared smooth background plus a
    # compact per-rank active region (most blocks quantise to constants —
    # the regime homomorphic compression was built for).
    n = 1_500_000
    t = np.linspace(0, 40, n)
    rank_data = []
    for r in range(8):
        field = (5.0 * np.sin(t) * np.exp(-t / 30)).astype(np.float32)
        # every member is active in the same storm region (ensemble-style)
        field[700_000:780_000] += rng.normal(0, 0.5, 80_000).astype(np.float32)
        rank_data.append(field)
    # calibrate the simulated link to this machine's kernel speed so the
    # simulated times are meaningful (DESIGN.md §1)
    lib = HZCCL(calibrated_config(rank_data[0], error_bound=1e-3))
    hz = lib.allreduce(rank_data)                  # hZCCL (homomorphic)
    mpi = lib.allreduce(rank_data, kernel="mpi")   # uncompressed baseline
    err = np.abs(hz.outputs[0] - mpi.outputs[0]).max()
    print(f"hZCCL allreduce   : {hz.bytes_on_wire / 1e6:6.2f} MB on the wire, "
          f"max deviation from exact {err:.2e}")
    print(f"MPI   allreduce   : {mpi.bytes_on_wire / 1e6:6.2f} MB on the wire")
    print(f"wire-volume saving: {mpi.bytes_on_wire / hz.bytes_on_wire:.1f}x")

    # ------------------------------------------------------------------ #
    # 4. What that buys at the paper's scale (§III-C cost model)
    # ------------------------------------------------------------------ #
    from repro.core import PAPER_BROADWELL, model_hzccl_allreduce, model_mpi_allreduce
    from repro.runtime import OMNIPATH_100G

    total = 646_000_000  # the paper's full RTM message
    for n_nodes in (64, 512):
        t_mpi = model_mpi_allreduce(
            n_nodes, total, PAPER_BROADWELL, OMNIPATH_100G, multithread=True
        ).total_time
        t_hz = model_hzccl_allreduce(
            n_nodes, total, PAPER_BROADWELL, OMNIPATH_100G, multithread=True
        ).total_time
        print(f"modelled {n_nodes:3d}-node Allreduce (646 MB, MT): "
              f"hZCCL {t_mpi / t_hz:.2f}x faster than MPI")


if __name__ == "__main__":
    main()
