"""Per-round trace analysis of a compressed collective.

Attaches a :class:`~repro.runtime.trace.TraceLog` to the simulated cluster
and dissects a hZCCL Reduce_scatter round by round: is each round compute-
or communication-bound, and how do message sizes drift as partial sums
accumulate (summed fields are rougher, so they compress slightly worse —
visible as growing per-round byte counts)?

Run:  python examples/round_trace_analysis.py
"""

import numpy as np

from repro.collectives import hzccl_reduce_scatter
from repro.core import calibrated_config
from repro.compression import resolve_error_bound
from repro.datasets import snapshot_series
from repro.runtime import SimCluster, TraceLog


def main() -> None:
    n_ranks = 8
    snapshots = [
        s.ravel() for s in snapshot_series("sim1", n_ranks, scale=0.01, seed=3)
    ]
    eb = resolve_error_bound(snapshots[0], rel_eb=1e-4)
    config = calibrated_config(snapshots[0], error_bound=eb)

    cluster = SimCluster(n_ranks, network=config.network, trace=TraceLog())
    res = hzccl_reduce_scatter(cluster, snapshots, config)
    print(f"hZCCL Reduce_scatter over {n_ranks} ranks: "
          f"{res.total_time * 1e3:.2f} ms simulated, "
          f"{cluster.trace.n_rounds} rounds\n")

    print(f"{'round':>5} | {'duration ms':>11} | {'compute ms':>10} | "
          f"{'comm ms':>8} | {'KB moved':>8} | bound by")
    for s in cluster.trace.round_summaries():
        print(
            f"{s.round_index:5d} | {s.duration * 1e3:11.3f} | "
            f"{s.max_compute * 1e3:10.3f} | {s.comm_time * 1e3:8.3f} | "
            f"{s.bytes_moved / 1e3:8.1f} | "
            f"{'compute' if s.compute_bound else 'network'}"
        )

    moved = cluster.trace.bytes_per_round()
    ring_rounds = [b for b in moved if b > 0][1:-1]  # exchange rounds only
    if len(ring_rounds) >= 2:
        drift = ring_rounds[-1] / ring_rounds[0]
        print(f"\nmessage-size drift across the ring: {drift:.2f}x "
              "(partial sums are rougher, so they compress a bit worse)")

    # export for external timeline tools
    path = "/tmp/hzccl_trace.json"
    cluster.trace.to_json(path)
    print(f"full trace written to {path} "
          f"({len(cluster.trace.events)} events)")


if __name__ == "__main__":
    main()
