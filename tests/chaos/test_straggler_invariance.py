"""Stragglers and degraded links change *timing*, never *values*.

The integration guarantee behind the fault model's layering: compute
slowdowns and bandwidth degradation act purely on the virtual clocks, so
a collective under a straggler plan must produce byte-identical outputs
to the fault-free run — with a strictly larger makespan.
"""

import numpy as np
import pytest

from repro.collectives.ccoll import ccoll_allreduce
from repro.collectives.hzccl import hzccl_allreduce, hzccl_reduce_scatter
from repro.collectives.rabenseifner import hzccl_rabenseifner_allreduce
from repro.collectives.ring import mpi_allreduce, mpi_reduce_scatter
from repro.core.config import CollectiveConfig
from repro.runtime import FaultPlan, NetworkModel, SimCluster

N_RANKS = 4
NET = NetworkModel(latency_s=1e-6, bandwidth_Bps=1e9, congestion_per_log2=0.1)
CONFIG = CollectiveConfig(
    error_bound=1e-3, block_size=8, n_threadblocks=3, network=NET
)
STRAGGLER = FaultPlan(seed=0, stragglers=(1,), straggler_factor=50.0)
SLOW_LINK = FaultPlan(seed=0, degraded_links=((0, 1, 0.01),))

OPS = {
    "mpi-allreduce": lambda cl, d: mpi_allreduce(cl, d),
    "mpi-reduce-scatter": lambda cl, d: mpi_reduce_scatter(cl, d),
    "ccoll-allreduce": lambda cl, d: ccoll_allreduce(cl, d, CONFIG),
    "hzccl-allreduce": lambda cl, d: hzccl_allreduce(cl, d, CONFIG),
    "hzccl-reduce-scatter": lambda cl, d: hzccl_reduce_scatter(cl, d, CONFIG),
    "hzccl-rabenseifner": lambda cl, d: hzccl_rabenseifner_allreduce(
        cl, d, CONFIG
    ),
}


@pytest.fixture()
def data():
    rng = np.random.default_rng(0xFA57)
    return [
        np.cumsum(rng.normal(0, 0.05, 720)).astype(np.float32)
        for _ in range(N_RANKS)
    ]


@pytest.mark.parametrize("op_name", sorted(OPS))
def test_straggler_changes_timing_not_values(op_name, data):
    healthy = SimCluster(N_RANKS, network=NET)
    slow = SimCluster(N_RANKS, network=NET, faults=STRAGGLER)
    ref = OPS[op_name](healthy, data)
    out = OPS[op_name](slow, data)

    assert not out.degraded
    for a, b in zip(ref.outputs, out.outputs):
        np.testing.assert_array_equal(a, b)  # byte-identical values
    assert out.bytes_on_wire == ref.bytes_on_wire
    # a 50x straggler must dominate the critical path
    assert out.total_time > ref.total_time


@pytest.mark.parametrize("op_name", ["mpi-allreduce", "hzccl-allreduce"])
def test_degraded_link_changes_timing_not_values(op_name, data):
    healthy = SimCluster(N_RANKS, network=NET)
    slow = SimCluster(N_RANKS, network=NET, faults=SLOW_LINK)
    ref = OPS[op_name](healthy, data)
    out = OPS[op_name](slow, data)

    assert not out.degraded
    for a, b in zip(ref.outputs, out.outputs):
        np.testing.assert_array_equal(a, b)
    # the 100x-slower link stretches communication time
    slow_mpi = sum(c.buckets["MPI"] for c in slow.clocks)
    ref_mpi = sum(c.buckets["MPI"] for c in healthy.clocks)
    assert slow_mpi > ref_mpi
