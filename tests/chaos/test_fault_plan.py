"""Unit tests for the seeded fault plan (`repro.runtime.faults`).

The plan must be a pure function of ``(seed, source, dest, index)`` —
independent of wall time, call interleaving, or process — and its
validation must reject nonsensical configurations up front.
"""

import pytest

from repro.compression import from_bytes
from repro.runtime.faults import FaultPlan, NO_FAULT, RetryPolicy


class TestDeterminism:
    def test_same_inputs_same_decision(self):
        plan = FaultPlan(seed=42, drop_rate=0.3, corrupt_rate=0.3)
        first = [plan.decide(0, 1, i) for i in range(200)]
        second = [plan.decide(0, 1, i) for i in range(200)]
        assert first == second

    def test_two_plan_instances_agree(self):
        a = FaultPlan(seed=7, drop_rate=0.5)
        b = FaultPlan(seed=7, drop_rate=0.5)
        assert [a.decide(2, 3, i) for i in range(100)] == [
            b.decide(2, 3, i) for i in range(100)
        ]

    def test_seed_changes_decisions(self):
        a = FaultPlan(seed=1, drop_rate=0.5)
        b = FaultPlan(seed=2, drop_rate=0.5)
        assert [a.decide(0, 1, i) for i in range(64)] != [
            b.decide(0, 1, i) for i in range(64)
        ]

    def test_links_are_independent(self):
        plan = FaultPlan(seed=9, drop_rate=0.5)
        assert [plan.decide(0, 1, i) for i in range(64)] != [
            plan.decide(1, 0, i) for i in range(64)
        ]


class TestRates:
    def test_zero_rates_never_fault(self):
        plan = FaultPlan(seed=5)
        assert all(
            plan.decide(s, d, i) is NO_FAULT
            for s in range(3)
            for d in range(3)
            for i in range(50)
        )

    def test_rate_one_always_faults(self):
        plan = FaultPlan(seed=5, corrupt_rate=1.0)
        assert all(plan.decide(0, 1, i).corrupt for i in range(100))

    def test_empirical_rate_tracks_nominal(self):
        plan = FaultPlan(seed=11, drop_rate=0.25)
        drops = sum(plan.decide(0, 1, i).drop for i in range(4000))
        assert 0.20 < drops / 4000 < 0.30

    def test_at_most_one_fault_kind_per_decision(self):
        plan = FaultPlan(
            seed=3,
            drop_rate=0.25,
            corrupt_rate=0.25,
            truncate_rate=0.25,
            duplicate_rate=0.25,
        )
        for i in range(500):
            d = plan.decide(0, 1, i)
            assert sum((d.drop, d.corrupt, d.truncate, d.duplicate)) <= 1


class TestValidation:
    @pytest.mark.parametrize("bad", [-0.1, 1.5])
    def test_rates_out_of_range_rejected(self, bad):
        with pytest.raises(ValueError):
            FaultPlan(drop_rate=bad)

    def test_rates_summing_past_one_rejected(self):
        with pytest.raises(ValueError):
            FaultPlan(drop_rate=0.6, corrupt_rate=0.6)

    def test_straggler_factor_below_one_rejected(self):
        with pytest.raises(ValueError):
            FaultPlan(straggler_factor=0.5)

    @pytest.mark.parametrize("factor", [0.0, 1.5, -1.0])
    def test_bad_link_factor_rejected(self, factor):
        with pytest.raises(ValueError):
            FaultPlan(degraded_links=((0, 1, factor),))

    def test_retry_policy_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(backoff=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(timeout_s=-1.0)


class TestStragglersAndLinks:
    def test_slowdown(self):
        plan = FaultPlan(stragglers=(1, 3), straggler_factor=8.0)
        assert plan.slowdown(1) == 8.0
        assert plan.slowdown(3) == 8.0
        assert plan.slowdown(0) == 1.0

    def test_bandwidth_factor_is_directional(self):
        plan = FaultPlan(degraded_links=((0, 1, 0.25),))
        assert plan.bandwidth_factor(0, 1) == 0.25
        assert plan.bandwidth_factor(1, 0) == 1.0


class TestCorruptStream:
    def test_corruption_always_changes_bytes(self, small_compressor, rng):
        import numpy as np

        data = np.cumsum(rng.normal(0, 0.1, 640)).astype(np.float32)
        blob = small_compressor.compress(data, abs_eb=1e-3).to_bytes()
        plan = FaultPlan(seed=17)
        for i in range(64):
            damaged = plan.corrupt_stream(blob, 0, 1, i)
            assert damaged != blob
            assert len(damaged) == len(blob)
            with pytest.raises(ValueError):
                from_bytes(damaged)

    def test_truncation_always_shortens(self):
        plan = FaultPlan(seed=17)
        blob = bytes(range(256))
        for i in range(64):
            cut = plan.corrupt_stream(blob, 0, 1, i, truncate=True)
            assert len(cut) < len(blob)
            assert blob.startswith(cut)

    def test_corruption_is_deterministic(self):
        plan = FaultPlan(seed=23)
        blob = bytes(range(200))
        assert plan.corrupt_stream(blob, 0, 1, 5) == plan.corrupt_stream(
            blob, 0, 1, 5
        )
        assert plan.corrupt_stream(blob, 0, 1, 5) != plan.corrupt_stream(
            blob, 0, 1, 6
        )


class TestRetryPolicy:
    def test_backoff_is_bounded_exponential(self):
        policy = RetryPolicy(
            base_delay_s=10e-6, backoff=2.0, max_delay_s=50e-6, max_attempts=8
        )
        delays = [policy.delay(a) for a in range(8)]
        assert delays[:3] == [10e-6, 20e-6, 40e-6]
        assert all(d == 50e-6 for d in delays[3:])


class TestChaosFactory:
    def test_chaos_plan_is_seed_deterministic(self):
        assert FaultPlan.chaos(4, 8) == FaultPlan.chaos(4, 8)
        assert FaultPlan.chaos(4, 8) != FaultPlan.chaos(5, 8)

    def test_chaos_plan_is_valid_and_mixed(self):
        plan = FaultPlan.chaos(123, 16, intensity=0.08)
        assert plan.drop_rate == 0.08
        assert len(plan.stragglers) == 1
        assert 0 <= plan.stragglers[0] < 16
        ((src, dst, factor),) = plan.degraded_links
        assert src != dst and 0 < factor <= 1

    def test_chaos_needs_two_ranks(self):
        with pytest.raises(ValueError):
            FaultPlan.chaos(0, 1)
