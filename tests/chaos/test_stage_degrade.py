"""Per-op degrade of a *staged* comm must not kill the later fold.

Regression: ``degrade="op"`` on an ``action="stage"`` comm patches state
via ``degrade_receive`` but delivers nothing to the pending table.  The
executor must park a ``_DEGRADED`` sentinel so the downstream ``fold``
LocalOp skips those blocks instead of dying on ``pending.pop`` with a
``KeyError`` (the pre-fix behaviour).  A genuinely missing key — a
schedule bug — must still raise.
"""

import numpy as np
import pytest

from repro.core.config import CollectiveConfig
from repro.runtime import FaultPlan, SimCluster
from repro.schedule import HomomorphicCodec, ScheduleExecutor
from repro.schedule.ir import CommOp, LocalOp, Phase, Round, Schedule

pytestmark = pytest.mark.chaos

CONFIG = CollectiveConfig(error_bound=1e-3, block_size=8, n_threadblocks=3)


class PatchingHZ(HomomorphicCodec):
    """Homomorphic codec with a bcast-style per-op fallback.

    An unrecoverable staged stream is replaced by re-delivering the
    reduced block out-of-band (compressed, so the schedule's finalize
    still decodes it like any other block).
    """

    def __init__(self, cluster, config, fallback: np.ndarray) -> None:
        super().__init__(cluster, config)
        self.fallback = fallback
        self.degrades = 0

    def degrade_receive(self, comm, state):
        self.degrades += 1
        self.cluster.charge_comm(comm.dst, self.fallback.nbytes)
        for b in comm.blocks:
            state[comm.dst][b] = self.comp.compress(
                self.fallback, abs_eb=self.eb
            )
        return self.fallback.nbytes


def _stage_then_fold() -> Schedule:
    """2-rank schedule: stage 0 → 1, fold later, finalize at rank 1."""
    return Schedule(
        name="stage-degrade-regression",
        n_ranks=2,
        phases=(
            Phase(
                "setup",
                (
                    Round(
                        kind="compute",
                        ops=(
                            LocalOp(0, "prepare", (0,)),
                            LocalOp(1, "prepare", (0,)),
                        ),
                    ),
                ),
            ),
            Phase(
                "exchange",
                (
                    Round(
                        kind="exchange",
                        comms=(
                            CommOp(0, 1, (0,), action="stage", degrade="op"),
                        ),
                        ops=(LocalOp(1, "fold", (0,)),),
                    ),
                ),
            ),
            Phase(
                "finalize",
                (Round(kind="compute", ops=(LocalOp(1, "finalize", (0,)),)),),
            ),
        ),
    ).validate()


def _blocks():
    rng = np.random.default_rng(0x57A6E)
    a = np.cumsum(rng.normal(0, 0.05, 256)).astype(np.float32)
    b = np.cumsum(rng.normal(0, 0.05, 256)).astype(np.float32)
    return a, b


def _run(plan, fallback):
    a, b = _blocks()
    cluster = SimCluster(2, faults=plan)
    codec = PatchingHZ(cluster, CONFIG, fallback)
    state = [{0: a.copy()}, {0: b.copy()}]
    outcome = ScheduleExecutor(cluster, codec).run(_stage_then_fold(), state)
    return outcome, codec, state


def test_healthy_run_folds_staged_block():
    a, b = _blocks()
    outcome, codec, state = _run(None, np.zeros_like(a))
    assert outcome.degraded is False
    assert codec.degrades == 0
    np.testing.assert_allclose(state[1][0], a + b, atol=0.05)


def test_stage_degrade_parks_sentinel_and_skips_fold():
    a, b = _blocks()
    # every attempt corrupted: the compressed stream never validates, the
    # per-op degrade fires, and the fold must skip the staged block
    plan = FaultPlan(seed=7, corrupt_rate=1.0)
    outcome, codec, state = _run(plan, a + b)
    assert outcome.degraded is True
    assert codec.degrades == 1
    assert outcome.wire >= (a + b).nbytes
    # finalize still ran on the patched block: plain floats, right value
    assert isinstance(state[1][0], np.ndarray)
    np.testing.assert_allclose(state[1][0], a + b, atol=0.05)


def test_missing_staged_block_still_raises():
    # a fold with no matching stage is a schedule bug, not a degrade:
    # the sentinel must not paper over it
    bad = Schedule(
        name="fold-without-stage",
        n_ranks=2,
        phases=(
            Phase(
                "exchange",
                (Round(kind="exchange", ops=(LocalOp(1, "fold", (0,)),)),),
            ),
        ),
    ).validate()
    a, _ = _blocks()
    cluster = SimCluster(2)
    codec = PatchingHZ(cluster, CONFIG, a)
    with pytest.raises(KeyError):
        ScheduleExecutor(cluster, codec).run(bad, [{0: a.copy()}, {}])
