"""Round accounting is pinned to *sent* bytes (schedule-IR satellite).

``ScheduleExecutor`` closes every exchange round on the size the sender
scheduled — never on what a faulty link happened to deliver mid-retry.
Fault handling (retransmits, waits) is charged to the affected rank's
compute/OTHER clock inside the round, so under recoverable corrupt and
truncate faults the per-round **comm** components of the trace must be
byte-for-byte identical to a healthy run of the same collective; only
round durations may stretch.
"""

import numpy as np
import pytest

from repro.collectives import (
    ccoll_allreduce,
    hzccl_allreduce,
    hzccl_rabenseifner_allreduce,
    mpi_allreduce,
)
from repro.core.config import CollectiveConfig
from repro.runtime import FaultPlan, NetworkModel, SimCluster, TraceLog

pytestmark = pytest.mark.chaos

N_RANKS = 4
NET = NetworkModel(latency_s=1e-6, bandwidth_Bps=1e9, congestion_per_log2=0.1)
CONFIG = CollectiveConfig(
    error_bound=1e-3, block_size=8, n_threadblocks=3, network=NET
)
OPS = {
    "mpi-allreduce": lambda cl, d: mpi_allreduce(cl, d),
    "ccoll-allreduce": lambda cl, d: ccoll_allreduce(cl, d, CONFIG),
    "hzccl-allreduce": lambda cl, d: hzccl_allreduce(cl, d, CONFIG),
    "hzccl-rabenseifner": lambda cl, d: hzccl_rabenseifner_allreduce(
        cl, d, CONFIG
    ),
}


def _data() -> list[np.ndarray]:
    rng = np.random.default_rng(0xACC7)
    return [
        np.cumsum(rng.normal(0, 0.05, 360)).astype(np.float32)
        for _ in range(N_RANKS)
    ]


def _round_comms(op, plan):
    trace = TraceLog()
    cluster = SimCluster(N_RANKS, network=NET, trace=trace, faults=plan)
    result = op(cluster, _data())
    comms = [e.comm_s for e in trace.events if e.kind == "round"]
    return result, comms


@pytest.mark.parametrize("op_name", sorted(OPS))
@pytest.mark.parametrize("seed", range(5))
def test_round_comm_terms_invariant_under_recoverable_faults(op_name, seed):
    op = OPS[op_name]
    healthy, healthy_comms = _round_comms(op, None)
    assert not healthy.degraded
    faulty, faulty_comms = _round_comms(
        op, FaultPlan(seed=seed, corrupt_rate=0.15, truncate_rate=0.05)
    )
    if faulty.degraded:
        pytest.skip("stream unrecoverable at this seed — fallback path")
    # retransmits legitimately add wire *bytes*, but the per-round comm
    # charge closes on the scheduled (sent) size, so it must not move
    assert faulty_comms == healthy_comms, (
        "per-round comm terms moved under faults: round accounting is "
        "leaking delivered (not sent) sizes"
    )


def test_enough_recoverable_scenarios_actually_compared():
    """Guard the parametrised test against silently skipping everything."""
    recovered = 0
    for op in OPS.values():
        for seed in range(5):
            result, _ = _round_comms(
                op, FaultPlan(seed=seed, corrupt_rate=0.15, truncate_rate=0.05)
            )
            if not result.degraded:
                recovered += 1
    assert recovered >= 10
