"""Seeded chaos sweep across collectives × fault plans × seeds.

The acceptance bar for the resilience layer: **every** scenario completes
(no hang, no unhandled exception), the results stay within the configured
error bound *or* the collective is explicitly marked degraded, and
re-running with the same seed reproduces byte-identical outputs and an
identical fault-event trace.

13 operations × 4 plan families × 5 seeds = 260 scenarios, each executed
twice (run + replay).  Data is tiny (360 elements/rank, 4 ranks) so the
sweep stays CI-friendly; the ``chaos`` marker lets CI run it as its own
job with ``--durations`` visibility.
"""

import numpy as np
import pytest

from repro.collectives.ccoll import ccoll_allreduce
from repro.collectives.hierarchy import (
    hzccl_hierarchical_allreduce,
    mpi_hierarchical_allreduce,
)
from repro.collectives.hzccl import hzccl_allreduce, hzccl_reduce_scatter
from repro.collectives.rabenseifner import (
    hzccl_rabenseifner_allreduce,
    rabenseifner_allreduce,
)
from repro.collectives.ring import mpi_allreduce
from repro.collectives.rooted import (
    compressed_bcast,
    hzccl_reduce,
    hzccl_reduce_direct,
    mpi_reduce,
)
from repro.collectives.tuned import tuned_allreduce
from repro.core.config import CollectiveConfig
from repro.runtime import FaultPlan, NetworkModel, NodeMap, SimCluster, TraceLog
from repro.runtime.topology import Ring

pytestmark = pytest.mark.chaos

N_RANKS = 4
N_ELEMENTS = 360
EB = 1e-3
NET = NetworkModel(latency_s=1e-6, bandwidth_Bps=1e9, congestion_per_log2=0.1)
CONFIG = CollectiveConfig(
    error_bound=EB, block_size=8, n_threadblocks=3, network=NET
)

# op name → callable(cluster, data, config) -> CollectiveResult
OPS = {
    "ring-mpi-allreduce": lambda cl, d, c: mpi_allreduce(cl, d),
    "ring-ccoll-allreduce": ccoll_allreduce,
    "ring-hzccl-allreduce": hzccl_allreduce,
    "ring-hzccl-reduce-scatter": hzccl_reduce_scatter,
    "rabenseifner-mpi": lambda cl, d, c: rabenseifner_allreduce(cl, d),
    "rabenseifner-hzccl": hzccl_rabenseifner_allreduce,
    "rooted-mpi-reduce": lambda cl, d, c: mpi_reduce(cl, d),
    "rooted-hzccl-reduce": hzccl_reduce,
    "rooted-hzccl-reduce-direct": hzccl_reduce_direct,
    "rooted-hzccl-bcast": lambda cl, d, c: compressed_bcast(cl, d[0], c),
    "hierarchical-mpi": lambda cl, d, c: mpi_hierarchical_allreduce(
        cl, d, NodeMap.regular(N_RANKS, 2)
    ),
    "hierarchical-hzccl": lambda cl, d, c: hzccl_hierarchical_allreduce(
        cl, d, c, NodeMap.regular(N_RANKS, 2)
    ),
    # the autotuner's pick is deterministic per (shape, fabric, data), so
    # replay holds; the picked family's own degrade-to-plain path is what
    # keeps faulted runs correct.
    "tuned-hzccl": tuned_allreduce,
}

# plan family → seed-parameterised FaultPlan factory
PLANS = {
    "drop": lambda seed: FaultPlan(seed=seed, drop_rate=0.15),
    "corrupt": lambda seed: FaultPlan(
        seed=seed, corrupt_rate=0.2, truncate_rate=0.05
    ),
    "straggler": lambda seed: FaultPlan(
        seed=seed,
        drop_rate=0.05,
        stragglers=(seed % N_RANKS,),
        straggler_factor=6.0,
    ),
    "chaos": lambda seed: FaultPlan.chaos(seed, N_RANKS, intensity=0.08),
}

SEEDS = (0, 1, 2, 3, 4)


def _make_data(seed: int) -> list[np.ndarray]:
    rng = np.random.default_rng(0xABC0 + seed)
    return [
        np.cumsum(rng.normal(0, 0.05, N_ELEMENTS)).astype(np.float32)
        for _ in range(N_RANKS)
    ]


def _run(op_name: str, plan: FaultPlan, data: list[np.ndarray]):
    cluster = SimCluster(
        N_RANKS, network=NET, faults=plan, trace=TraceLog()
    )
    result = OPS[op_name](cluster, data, CONFIG)
    return cluster, result


def _fault_signature(trace: TraceLog):
    """The replay-comparable part of the trace: fault events only.

    Fault-event seconds are policy constants (timeouts, backoff, latency),
    so they replay exactly; compute-event seconds are *measured* and are
    deliberately excluded.
    """
    return [
        (e.round_index, e.rank, e.bucket, e.seconds, e.nbytes)
        for e in trace.fault_events
    ]


def _check_values(op_name: str, result, data: list[np.ndarray]) -> None:
    """Completed scenarios are either within the error bound or degraded
    (and then exact up to plain-kernel float associativity)."""
    exact = np.sum(np.stack(data), axis=0, dtype=np.float64).astype(np.float32)
    # lossy bound: one quantisation per input + per-round requantisation
    # headroom for the C-Coll DOC path
    tol = (2 * N_RANKS + 1) * EB if not result.degraded else 1e-4
    if op_name == "ring-hzccl-reduce-scatter":
        ring = Ring(N_RANKS)
        blocks = np.array_split(exact, N_RANKS)
        for i, out in enumerate(result.outputs):
            np.testing.assert_allclose(
                out, blocks[ring.owned_block(i)], atol=tol
            )
    elif op_name.startswith("rooted-") and "bcast" not in op_name:
        assert result.outputs[0] is not None  # root holds the answer
        np.testing.assert_allclose(result.outputs[0], exact, atol=tol)
        assert all(o is None for o in result.outputs[1:])
    elif "bcast" in op_name:
        for out in result.outputs:
            np.testing.assert_allclose(out, data[0], atol=2 * EB)
    else:
        for out in result.outputs:
            np.testing.assert_allclose(out, exact, atol=tol)


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("plan_name", sorted(PLANS))
@pytest.mark.parametrize("op_name", sorted(OPS))
def test_chaos_scenario(op_name: str, plan_name: str, seed: int):
    plan = PLANS[plan_name](seed)
    data = _make_data(seed)

    cluster, result = _run(op_name, plan, data)

    # 1. the scenario completed and the values are accounted for
    _check_values(op_name, result, data)

    # 2. degradation is never silent: the flag and the trace agree
    degrade_events = [
        e for e in cluster.trace.fault_events if e.bucket == "DEGRADE"
    ]
    assert bool(degrade_events) == result.degraded

    # 3. fault accounting made it to the result
    assert result.fault_stats is not None
    assert result.fault_stats.messages > 0

    # 4. same seed ⇒ byte-identical outputs and identical fault trace
    cluster2, result2 = _run(op_name, plan, data)
    assert result2.degraded == result.degraded
    for a, b in zip(result.outputs, result2.outputs):
        if a is None:
            assert b is None
        else:
            np.testing.assert_array_equal(a, b)
    assert _fault_signature(cluster.trace) == _fault_signature(cluster2.trace)


def test_sweep_covers_at_least_200_scenarios():
    assert len(OPS) * len(PLANS) * len(SEEDS) >= 200


def test_high_corruption_degrades_but_stays_correct():
    """A pathological plan (90 % corruption) must force the degrade path —
    and the degraded result is exact, never silently wrong."""
    plan = FaultPlan(seed=1, corrupt_rate=0.9)
    data = _make_data(0)
    cluster, result = _run("ring-hzccl-allreduce", plan, data)
    assert result.degraded
    exact = np.sum(np.stack(data), axis=0, dtype=np.float64).astype(np.float32)
    for out in result.outputs:
        np.testing.assert_allclose(out, exact, atol=1e-4)
    assert cluster.trace.fault_summary().get("DEGRADE", 0) >= 1
