"""Transport-layer tests: rings, sockets, framing, deadlines."""

from __future__ import annotations

import socket
import threading
import time

import pytest

from repro.runtime.mp_channel import (
    FLAG_COMPRESSED,
    FRAME_DATA,
    Frame,
    MPAbortedError,
    MPChannelError,
    MPTimeoutError,
    ShmRing,
    SocketChannel,
    dump_items,
    load_items,
    recv_frame,
    send_frame,
)


@pytest.fixture()
def ring():
    r = ShmRing.create("repro-test-ring", capacity=128)
    yield r
    r.close()
    r.unlink()


def _deadline(seconds: float = 2.0) -> float:
    return time.monotonic() + seconds


class TestShmRing:
    def test_roundtrip(self, ring):
        ring.send_bytes(b"hello world", _deadline())
        assert ring.recv_bytes(11, _deadline()) == b"hello world"

    def test_wraparound(self, ring):
        # payloads cross the 128-byte boundary many times; cursors are
        # monotonic so every crossing exercises the two-part copy
        for i in range(10):
            blob = bytes([i]) * 100
            ring.send_bytes(blob, _deadline())
            assert ring.recv_bytes(100, _deadline()) == blob

    def test_payload_larger_than_capacity(self, ring):
        # a writer thread streams 1000 bytes through a 128-byte ring
        blob = bytes(range(256)) * 4  # 1024 bytes
        t = threading.Thread(
            target=ring.send_bytes, args=(blob, _deadline(5.0))
        )
        t.start()
        got = ring.recv_bytes(len(blob), _deadline(5.0))
        t.join()
        assert got == blob

    def test_read_deadline_raises(self, ring):
        with pytest.raises(MPTimeoutError):
            ring.recv_bytes(1, _deadline(0.05))

    def test_write_deadline_raises_when_full(self, ring):
        ring.send_bytes(b"x" * 128, _deadline())
        with pytest.raises(MPTimeoutError):
            ring.send_bytes(b"y", _deadline(0.05))

    def test_poll_callback_can_abort(self, ring):
        def poll():
            raise MPAbortedError("test abort")

        with pytest.raises(MPAbortedError):
            ring.recv_bytes(1, _deadline(5.0), poll)

    def test_minimum_capacity_enforced(self):
        with pytest.raises(ValueError, match=">= 64"):
            ShmRing.create("repro-test-tiny", capacity=16)


class TestFraming:
    def test_frame_roundtrip(self, ring):
        frame = Frame(
            FRAME_DATA,
            flags=FLAG_COMPRESSED,
            attempt=3,
            nbytes=123456,
            payload=b"payload-bytes",
        )
        send_frame(ring, frame, _deadline())
        got = recv_frame(ring, _deadline())
        assert got == frame

    def test_empty_payload(self, ring):
        send_frame(ring, Frame(FRAME_DATA, nbytes=7), _deadline())
        got = recv_frame(ring, _deadline())
        assert got.payload == b"" and got.nbytes == 7

    def test_bad_magic_detected(self, ring):
        ring.send_bytes(b"XXXX" + b"\x00" * 20, _deadline())
        with pytest.raises(MPChannelError, match="magic"):
            recv_frame(ring, _deadline())

    def test_dump_load_items(self):
        import numpy as np

        items = (np.arange(5, dtype=np.float32), np.zeros(3))
        out = load_items(dump_items(items))
        assert len(out) == 2
        assert np.array_equal(out[0], items[0])


class TestSocketChannel:
    def test_roundtrip(self):
        a, b = socket.socketpair()
        ca, cb = SocketChannel(a), SocketChannel(b)
        try:
            ca.send_bytes(b"over the wire", _deadline())
            assert cb.recv_bytes(13, _deadline()) == b"over the wire"
        finally:
            ca.close()
            cb.close()

    def test_read_deadline_raises(self):
        a, b = socket.socketpair()
        ca, cb = SocketChannel(a), SocketChannel(b)
        try:
            with pytest.raises(MPTimeoutError):
                cb.recv_bytes(1, _deadline(0.05))
        finally:
            ca.close()
            cb.close()

    def test_peer_close_raises_not_hangs(self):
        a, b = socket.socketpair()
        ca, cb = SocketChannel(a), SocketChannel(b)
        ca.close()
        try:
            with pytest.raises(MPChannelError, match="closed"):
                cb.recv_bytes(1, _deadline())
        finally:
            cb.close()
