"""Sim-vs-MP equivalence: the data plane's correctness anchor.

Every schedule family must produce **bit-identical** final state and
**identical** ``bytes_on_wire`` on real processes as on the simulator.
The fast matrix here runs every family at n ≤ 4 (the CI ``mp-smoke``
shape); the full n = 8 sweep lives in the chaos-marked suite.
"""

from __future__ import annotations

import pytest

from repro.bench.mp import (
    FAMILIES,
    build_case,
    sim_reference,
    states_equal,
)
from repro.runtime.mp_cluster import MPCluster
from repro.schedule.mp_executor import MPExecutor


@pytest.fixture(scope="module")
def cluster2():
    with MPCluster(2) as c:
        yield c


@pytest.fixture(scope="module")
def cluster4():
    with MPCluster(4) as c:
        yield c


def _assert_equivalent(cluster, case):
    run = MPExecutor(cluster, case.spec).run(case.schedule, case.make_state())
    ref = sim_reference(case)
    assert run.degraded == ref.degraded is False
    assert run.wire == ref.wire
    assert states_equal(run.state, ref.state)


@pytest.mark.parametrize("family", sorted(FAMILIES))
def test_family_matches_simulator_n4(cluster4, family):
    _assert_equivalent(cluster4, build_case(family, 4, 8192, seed=11))


@pytest.mark.parametrize("family", ["ring-rs", "ring-rs-hz", "bcast"])
def test_family_matches_simulator_n2(cluster2, family):
    _assert_equivalent(cluster2, build_case(family, 2, 4096, seed=5))


def test_socket_transport_matches_simulator():
    case = build_case("rabenseifner", 2, 4096, seed=7)
    with MPCluster(2, transport="socket") as cluster:
        _assert_equivalent(cluster, case)


def test_cluster_runs_many_schedules_back_to_back(cluster4):
    # one cluster, several jobs: channels must come back empty each time
    for family in ("ring-rs", "pipelined-rs", "ring-rs"):
        _assert_equivalent(cluster4, build_case(family, 4, 4096, seed=3))


def test_executor_updates_caller_state_in_place(cluster4):
    case = build_case("ring-rs", 4, 4096, seed=2)
    state = case.make_state()
    slices = list(state)
    run = MPExecutor(cluster4, case.spec).run(case.schedule, state)
    for rank in range(4):
        assert state[rank] is slices[rank]  # same dict objects, refilled
        assert run.state[rank] is state[rank]


def test_measured_numbers_are_sane(cluster4):
    case = build_case("ring-rs", 4, 4096, seed=2)
    run = MPExecutor(cluster4, case.spec).run(case.schedule, case.make_state())
    assert run.makespan_s > 0.0
    assert len(run.rank_seconds) == 4
    assert run.stats["frames_sent"] == run.stats["frames_received"]
    assert run.stats["frames_sent"] > 0


def test_cli_family_list_stays_in_sync():
    from repro.cli import _MP_FAMILIES

    assert set(_MP_FAMILIES) == set(FAMILIES)
