"""MP data plane under seeded faults + fail-clean failure modes.

Chaos-marked: the seeded-fault matrix and the full n = 8 family sweep
run in the chaos CI job, keeping the main matrix fast.
"""

from __future__ import annotations

import pytest

from repro.bench.mp import (
    FAMILIES,
    build_case,
    sim_reference,
    states_equal,
)
from repro.runtime.faults import FaultPlan
from repro.runtime.mp_cluster import MPCluster, MPClusterError
from repro.schedule.mp_executor import MPExecutor

pytestmark = pytest.mark.chaos


@pytest.fixture(scope="module")
def cluster4():
    with MPCluster(4) as c:
        yield c


@pytest.fixture(scope="module")
def cluster8():
    with MPCluster(8) as c:
        yield c


@pytest.mark.parametrize("family", sorted(FAMILIES))
def test_family_matches_simulator_n8(cluster8, family):
    case = build_case(family, 8, 16384, seed=23)
    run = MPExecutor(cluster8, case.spec).run(case.schedule, case.make_state())
    ref = sim_reference(case)
    assert run.degraded == ref.degraded is False
    assert run.wire == ref.wire
    assert states_equal(run.state, ref.state)


@pytest.mark.parametrize("seed", range(4))
@pytest.mark.parametrize("family", ["ring-rs", "bcast"])
def test_chaos_plan_matches_simulator(cluster4, family, seed):
    # the sender walks the same per-link fault indices the simulator
    # consumes, so injected faults (drops, damage, duplicates, per-op
    # degrades) leave identical state and wire accounting
    plan = FaultPlan.chaos(seed, 4, intensity=0.05)
    case = build_case(family, 4, 8192, seed=seed)
    run = MPExecutor(cluster4, case.spec, plan=plan).run(
        case.schedule, case.make_state()
    )
    ref = sim_reference(case, plan=plan)
    assert run.degraded == ref.degraded
    assert run.wire == ref.wire
    assert states_equal(run.state, ref.state)


def test_chaos_replay_is_deterministic(cluster4):
    plan = FaultPlan.chaos(42, 4, intensity=0.08)
    case = build_case("ring-rs", 4, 8192, seed=1)
    runs = [
        MPExecutor(cluster4, case.spec, plan=plan).run(
            case.schedule, case.make_state()
        )
        for _ in range(2)
    ]
    assert runs[0].wire == runs[1].wire
    assert runs[0].stats == runs[1].stats
    assert states_equal(runs[0].state, runs[1].state)


def test_schedule_degrade_poisons_the_cluster():
    # an unrecoverable compressed stream with degrade="schedule" aborts
    # the whole run; sim and MP abort at rank-dependent points, so the
    # contract is the matching degraded flag — and the cluster refuses
    # further jobs (undelivered frames may sit in the rings)
    plan = FaultPlan(seed=3, corrupt_rate=0.9)
    case = build_case("ring-rs-hz", 4, 8192, seed=1)
    with MPCluster(4) as cluster:
        run = MPExecutor(cluster, case.spec, plan=plan).run(
            case.schedule, case.make_state()
        )
        ref = sim_reference(case, plan=plan)
        assert run.degraded is True
        assert ref.degraded is True
        with pytest.raises(MPClusterError, match="poisoned"):
            cluster.run_schedule(
                case.schedule, case.spec, case.make_state()
            )


def test_worker_exception_fails_clean():
    # an empty initial state makes every rank's pack blow up; the parent
    # must surface one MPClusterError with the worker traceback and tear
    # the cluster down instead of hanging
    case = build_case("ring-rs", 2, 4096, seed=1)
    with MPCluster(2) as cluster:
        with pytest.raises(MPClusterError, match="KeyError"):
            cluster.run_schedule(
                case.schedule, case.spec, [{}, {}]
            )
        with pytest.raises(MPClusterError):
            cluster.run_schedule(case.schedule, case.spec, case.make_state())


def test_dead_worker_detected_not_hung():
    case = build_case("ring-rs", 2, 4096, seed=1)
    with MPCluster(2) as cluster:
        cluster._procs[1].terminate()
        cluster._procs[1].join(timeout=5.0)
        with pytest.raises(MPClusterError):
            cluster.run_schedule(case.schedule, case.spec, case.make_state())


def test_wrong_rank_count_rejected_eagerly(cluster4):
    case = build_case("ring-rs", 2, 4096, seed=1)
    with pytest.raises(MPClusterError, match="ranks"):
        cluster4.run_schedule(case.schedule, case.spec, case.make_state())
