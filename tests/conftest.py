"""Shared fixtures for the test suite.

Everything is seeded: any failure reproduces with the same pytest
invocation.  Data fixtures are sized to keep the full suite fast while
still crossing block/thread-block boundaries (sizes are deliberately not
multiples of 32 or 36).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.compression import FZLight, OmpSZp
from repro.core.config import CollectiveConfig
from repro.homomorphic import HZDynamic
from repro.runtime import NetworkModel


@pytest.fixture(scope="session")
def rng() -> np.random.Generator:
    return np.random.default_rng(0xC0FFEE)


@pytest.fixture()
def smooth_data(rng) -> np.ndarray:
    """Random-walk field — compresses well, exercises many code lengths."""
    return np.cumsum(rng.normal(0, 0.01, 100_003)).astype(np.float32)


@pytest.fixture()
def rough_data(rng) -> np.ndarray:
    """White noise — the hard case (pipeline 4 everywhere)."""
    return rng.normal(0, 1, 50_021).astype(np.float32)


@pytest.fixture()
def sparse_data(rng) -> np.ndarray:
    """Mostly exact zeros with a few bursts — pipeline 1/2/3 territory."""
    data = np.zeros(80_009, dtype=np.float32)
    burst = rng.normal(0, 1, 500).astype(np.float32)
    data[10_000:10_500] = burst
    data[60_000:60_500] = burst[::-1]
    return data


@pytest.fixture()
def compressor() -> FZLight:
    return FZLight()


@pytest.fixture()
def small_compressor() -> FZLight:
    """Geometry that makes block/thread-block edge cases cheap to hit."""
    return FZLight(block_size=8, n_threadblocks=3)


@pytest.fixture()
def ompszp() -> OmpSZp:
    return OmpSZp()


@pytest.fixture()
def engine() -> HZDynamic:
    return HZDynamic()


@pytest.fixture()
def fast_network() -> NetworkModel:
    """Deterministic tiny-latency network for collective tests."""
    return NetworkModel(latency_s=1e-6, bandwidth_Bps=1e9, congestion_per_log2=0.1)


@pytest.fixture()
def config(fast_network) -> CollectiveConfig:
    return CollectiveConfig(error_bound=1e-4, network=fast_network)
