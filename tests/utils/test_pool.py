"""Process-wide cached executor semantics."""

import pytest

from repro.utils.pool import shared_executor, shutdown_executors


@pytest.fixture(autouse=True)
def clean_pools():
    shutdown_executors()
    yield
    shutdown_executors()


class TestSharedExecutor:
    def test_same_width_returns_same_pool(self):
        assert shared_executor(2) is shared_executor(2)

    def test_different_widths_are_distinct(self):
        assert shared_executor(2) is not shared_executor(3)

    def test_executes_work(self):
        pool = shared_executor(4)
        assert sorted(pool.map(lambda x: x * x, range(5))) == [0, 1, 4, 9, 16]

    def test_rejects_nonpositive_width(self):
        with pytest.raises(ValueError):
            shared_executor(0)

    def test_shutdown_then_recreate(self):
        first = shared_executor(2)
        shutdown_executors()
        second = shared_executor(2)
        assert second is not first
        assert list(second.map(lambda x: x + 1, [1])) == [2]

    def test_survives_across_calls(self):
        """The FZLight hot path reuses one pool across compress calls."""
        import numpy as np

        from repro.compression.fzlight import FZLight

        comp = FZLight(n_threadblocks=4, parallel=True, max_workers=2)
        data = np.sin(np.linspace(0, 20, 4096)).astype(np.float32)
        f1 = comp.compress(data, rel_eb=1e-3)
        pool_after_first = shared_executor(2)
        comp.compress(data, rel_eb=1e-3)
        assert shared_executor(2) is pool_after_first
        out = comp.decompress(f1)
        assert np.max(np.abs(out - data)) <= f1.error_bound
