"""Unit tests for repro.utils.rng determinism guarantees."""

import numpy as np

from repro.utils.rng import derive_rng, make_rng


class TestMakeRng:
    def test_default_seed_is_stable(self):
        a = make_rng().integers(0, 2**32, 10)
        b = make_rng().integers(0, 2**32, 10)
        np.testing.assert_array_equal(a, b)

    def test_explicit_seed(self):
        a = make_rng(42).random(5)
        b = make_rng(42).random(5)
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self):
        assert make_rng(1).random() != make_rng(2).random()


class TestDeriveRng:
    def test_same_keys_same_stream(self):
        a = derive_rng(make_rng(7), "field", 3).random(4)
        b = derive_rng(make_rng(7), "field", 3).random(4)
        np.testing.assert_array_equal(a, b)

    def test_different_keys_differ(self):
        parent = make_rng(7)
        a = derive_rng(parent, "x").random()
        parent = make_rng(7)
        b = derive_rng(parent, "y").random()
        assert a != b

    def test_child_independent_of_parent_consumption(self):
        """Deriving after drawing from the parent changes entropy — the
        point is only that (seed, keys) fully determines the child."""
        p1, p2 = make_rng(9), make_rng(9)
        np.testing.assert_array_equal(
            derive_rng(p1, 1, 2).random(3), derive_rng(p2, 1, 2).random(3)
        )
