"""Unit tests for repro.utils.chunking — the paper's partitioning rules."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.utils.chunking import (
    iter_threadblocks,
    num_blocks,
    pad_to_multiple,
    threadblock_bounds,
    threadblock_slices,
)


class TestThreadblockBounds:
    def test_even_split(self):
        np.testing.assert_array_equal(threadblock_bounds(12, 4), [0, 3, 6, 9, 12])

    def test_remainder_goes_to_last_thread(self):
        # Paper: "the last D%N data points are managed by the (N-1)-th thread"
        bounds = threadblock_bounds(14, 4)
        np.testing.assert_array_equal(bounds, [0, 3, 6, 9, 14])
        assert bounds[-1] - bounds[-2] == 3 + 14 % 4

    def test_single_thread(self):
        np.testing.assert_array_equal(threadblock_bounds(7, 1), [0, 7])

    def test_more_threads_than_data(self):
        bounds = threadblock_bounds(2, 5)
        assert bounds[0] == 0 and bounds[-1] == 2
        assert (np.diff(bounds) >= 0).all()

    def test_rejects_zero_total(self):
        with pytest.raises(ValueError):
            threadblock_bounds(0, 4)

    def test_rejects_zero_threads(self):
        with pytest.raises(ValueError):
            threadblock_bounds(10, 0)

    @given(total=st.integers(1, 10_000), n=st.integers(1, 64))
    def test_partition_property(self, total, n):
        """Bounds are monotone, start at 0, end at total."""
        bounds = threadblock_bounds(total, n)
        assert bounds[0] == 0
        assert bounds[-1] == total
        assert (np.diff(bounds) >= 0).all()
        # first n-1 chunks are exactly total // n long
        assert all(np.diff(bounds)[:-1] == total // n)


class TestSlicesAndIter:
    def test_slices_cover_everything(self):
        data = np.arange(17)
        got = np.concatenate([data[s] for s in threadblock_slices(17, 5)])
        np.testing.assert_array_equal(got, data)

    def test_iter_yields_views_not_copies(self):
        data = np.arange(20)
        for view in iter_threadblocks(data, 3):
            assert view.base is data

    def test_iter_skips_empty(self):
        data = np.arange(2)
        chunks = list(iter_threadblocks(data, 5))
        assert all(c.size > 0 for c in chunks)
        assert sum(c.size for c in chunks) == 2


class TestNumBlocks:
    @pytest.mark.parametrize(
        "length,bs,expected", [(32, 32, 1), (33, 32, 2), (1, 32, 1), (64, 32, 2)]
    )
    def test_values(self, length, bs, expected):
        assert num_blocks(length, bs) == expected


class TestPadToMultiple:
    def test_no_copy_when_aligned(self):
        data = np.arange(8, dtype=np.float32)
        assert pad_to_multiple(data, 4) is data

    def test_pads_with_fill(self):
        out = pad_to_multiple(np.ones(5, dtype=np.float32), 4, fill=7.0)
        assert out.size == 8
        np.testing.assert_array_equal(out[5:], [7.0, 7.0, 7.0])

    def test_preserves_dtype(self):
        out = pad_to_multiple(np.ones(5, dtype=np.int64), 4)
        assert out.dtype == np.int64

    @given(n=st.integers(1, 500), mult=st.integers(1, 64))
    def test_result_is_multiple(self, n, mult):
        out = pad_to_multiple(np.ones(n, dtype=np.float32), mult)
        assert out.size % mult == 0
        assert out.size >= n
