"""Unit tests for repro.utils.validation."""

import numpy as np
import pytest

from repro.utils.validation import (
    ensure_float_array,
    ensure_in,
    ensure_positive,
    ensure_positive_int,
    ensure_power_of_two,
    ensure_same_shape,
)


class TestEnsureFloatArray:
    def test_passthrough_float32(self):
        a = np.ones(4, dtype=np.float32)
        out = ensure_float_array(a)
        assert out.dtype == np.float32
        assert out.shape == (4,)

    def test_converts_float64(self):
        out = ensure_float_array(np.ones(4, dtype=np.float64))
        assert out.dtype == np.float32

    def test_converts_int(self):
        out = ensure_float_array(np.arange(5))
        assert out.dtype == np.float32
        np.testing.assert_array_equal(out, np.arange(5, dtype=np.float32))

    def test_flattens_c_order(self):
        a = np.arange(6, dtype=np.float32).reshape(2, 3)
        np.testing.assert_array_equal(ensure_float_array(a), np.arange(6))

    def test_accepts_list(self):
        out = ensure_float_array([1.0, 2.0, 3.0])
        assert out.shape == (3,)

    def test_rejects_strings(self):
        with pytest.raises(TypeError, match="numeric"):
            ensure_float_array(np.array(["a", "b"]))

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="non-empty"):
            ensure_float_array(np.array([], dtype=np.float32))

    def test_rejects_nan(self):
        with pytest.raises(ValueError, match="NaN"):
            ensure_float_array(np.array([1.0, np.nan], dtype=np.float32))

    def test_rejects_inf(self):
        with pytest.raises(ValueError):
            ensure_float_array(np.array([np.inf], dtype=np.float32))

    def test_error_names_argument(self):
        with pytest.raises(ValueError, match="payload"):
            ensure_float_array(np.array([np.nan]), name="payload")


class TestScalarValidators:
    def test_positive_ok(self):
        assert ensure_positive(0.5, "x") == 0.5

    @pytest.mark.parametrize("bad", [0.0, -1.0, float("nan"), float("inf")])
    def test_positive_rejects(self, bad):
        with pytest.raises(ValueError):
            ensure_positive(bad, "x")

    def test_positive_int_ok(self):
        assert ensure_positive_int(3, "n") == 3

    @pytest.mark.parametrize("bad", [0, -2, 2.5])
    def test_positive_int_rejects(self, bad):
        with pytest.raises(ValueError):
            ensure_positive_int(bad, "n")

    def test_positive_int_accepts_integral_float(self):
        assert ensure_positive_int(4.0, "n") == 4

    @pytest.mark.parametrize("value", [1, 2, 4, 64, 1024])
    def test_power_of_two_ok(self, value):
        assert ensure_power_of_two(value, "p") == value

    @pytest.mark.parametrize("bad", [3, 6, 12, 100])
    def test_power_of_two_rejects(self, bad):
        with pytest.raises(ValueError, match="power of two"):
            ensure_power_of_two(bad, "p")

    def test_ensure_in_ok(self):
        assert ensure_in("b", ("a", "b"), "opt") == "b"

    def test_ensure_in_rejects(self):
        with pytest.raises(ValueError, match="opt"):
            ensure_in("z", ("a", "b"), "opt")


class TestEnsureSameShape:
    def test_ok(self):
        ensure_same_shape(np.zeros(3), np.ones(3))

    def test_rejects(self):
        with pytest.raises(ValueError, match="shape"):
            ensure_same_shape(np.zeros(3), np.zeros(4))
