"""Run the public-API doctests as part of the suite.

The examples embedded in docstrings are the first thing a user copies;
they must stay executable.
"""

import doctest

import pytest

import repro
import repro.compression.fzlight
import repro.compression.fzlight2d
import repro.compression.fzlightnd
import repro.core.api
import repro.homomorphic.hzdynamic

MODULES = [
    repro,
    repro.compression.fzlight,
    repro.compression.fzlight2d,
    repro.compression.fzlightnd,
    repro.core.api,
    repro.homomorphic.hzdynamic,
]


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_doctests(module):
    result = doctest.testmod(module, verbose=False)
    assert result.failed == 0, f"{result.failed} doctest failure(s) in {module.__name__}"
    assert result.attempted > 0, f"no doctests collected from {module.__name__}"
