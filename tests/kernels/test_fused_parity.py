"""Property-based parity for the fused kernels across every backend.

Two invariants pin the fused hot path:

* ``classify_encode`` (single-sweep classification + serialisation) is
  **bit-identical** to the two-pass reference — same code lengths, same
  payload bytes, same offsets — for every backend and for the uncompiled
  scalar loops the Numba backend JIT-compiles;
* ``reduce_fused`` (k-way accumulate) emits the same stream as encoding
  the explicitly computed weighted sum, and its ``zero_after`` Z-matrix
  matches the ground-truth "partial sum through operands 0..j is zero"
  flags the pipeline statistics are derived from.

Hypothesis drives dtypes × block sizes × adversarial block mixes
(constant blocks, cancellation pairs, single-owner blocks, max-magnitude
blocks) so the classes the dynamic pipeline dispatches on all appear.
Backends that are not installed (numba, cupy) are skipped per-backend;
the scalar loops always run, so the JIT layout is exercised everywhere.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kernels import _kernels_py
from repro.kernels.dispatch import available_backends, get_backend
from repro.kernels.plan import payload_offsets

BLOCK_SIZES = (8, 32, 64)
DTYPES = (np.int32, np.int64)


@st.composite
def delta_blocks(draw, max_blocks=24):
    """``(deltas, block_size)`` with an adversarial mix of block classes."""
    bs = draw(st.sampled_from(BLOCK_SIZES))
    dtype = draw(st.sampled_from(DTYPES))
    nb = draw(st.integers(min_value=0, max_value=max_blocks))
    max_bits = 31 if dtype is np.int32 else 32
    rng = np.random.default_rng(draw(st.integers(0, 2**31 - 1)))
    deltas = np.zeros((nb, bs), dtype=dtype)
    for i in range(nb):
        kind = draw(
            st.sampled_from(["zero", "tiny", "wide", "max", "negative"])
        )
        if kind == "zero":
            continue
        c = {
            "tiny": draw(st.integers(1, 3)),
            "wide": draw(st.integers(4, max_bits)),
            "max": max_bits,
            "negative": draw(st.integers(1, max_bits)),
        }[kind]
        hi = (1 << c) - 1
        row = rng.integers(0, hi + 1, size=bs, dtype=np.int64)
        row[rng.integers(0, bs)] = hi  # pin the class to exactly c bits
        sign = -1 if kind == "negative" else rng.choice([-1, 1], size=bs)
        deltas[i] = (row * sign).astype(dtype)
    return deltas, bs


@st.composite
def operand_sets(draw, max_k=5, max_blocks=12):
    """Compatible operands + weights with overlap/cancellation structure."""
    bs = draw(st.sampled_from(BLOCK_SIZES))
    nb = draw(st.integers(min_value=1, max_value=max_blocks))
    k = draw(st.integers(min_value=2, max_value=max_k))
    rng = np.random.default_rng(draw(st.integers(0, 2**31 - 1)))
    ops = []
    for _ in range(k):
        d = rng.integers(-(1 << 12), 1 << 12, size=(nb, bs), dtype=np.int64)
        d[rng.random(nb) < 0.4] = 0  # constant / single-owner blocks
        ops.append(d)
    if k >= 2 and draw(st.booleans()):
        ops[1] = -ops[0]  # exact cancellation under unit weights
    weights = np.asarray(
        draw(
            st.lists(
                st.integers(-3, 3), min_size=k, max_size=k
            )
        ),
        dtype=np.int64,
    )
    return ops, weights, bs


def _two_pass_reference(deltas, bs):
    """The committed layout: NumPy's explicit classify-then-encode path."""
    return get_backend("numpy").encode_with_offsets(deltas, bs)


@settings(max_examples=30, deadline=None)
@given(delta_blocks())
def test_classify_encode_bit_identical_across_backends(case):
    deltas, bs = case
    lens, payload, offsets = _two_pass_reference(deltas, bs)
    for name in available_backends():
        b_lens, b_payload, b_offsets = get_backend(name).classify_encode(
            deltas, bs
        )
        np.testing.assert_array_equal(b_lens, lens, err_msg=name)
        np.testing.assert_array_equal(b_payload, payload, err_msg=name)
        np.testing.assert_array_equal(b_offsets, offsets, err_msg=name)


@settings(max_examples=30, deadline=None)
@given(delta_blocks())
def test_fused_scalar_loops_bit_identical(case):
    """The uncompiled JIT source of the fused sweep matches the reference."""
    deltas, bs = case
    lens, payload, offsets = _two_pass_reference(deltas, bs)
    loop_lens = np.empty(deltas.shape[0], dtype=np.uint8)
    _kernels_py.classify_blocks_loop(deltas, loop_lens)
    np.testing.assert_array_equal(loop_lens, lens)
    loop_payload = np.zeros_like(payload)
    _kernels_py.encode_from_deltas_loop(deltas, loop_lens, offsets, loop_payload)
    np.testing.assert_array_equal(loop_payload, payload)


@settings(max_examples=30, deadline=None)
@given(operand_sets())
def test_reduce_fused_parity_across_backends(case):
    ops, weights, bs = case
    nb = ops[0].shape[0]
    streams = [_two_pass_reference(d, bs) for d in ops]
    lens_mat = np.stack([s[0] for s in streams])
    offs_mat = np.stack([s[2] for s in streams])
    payloads = [s[1] for s in streams]

    expected = np.zeros((nb, bs), dtype=np.int64)
    truth_zero = np.empty((len(ops), nb), dtype=bool)
    for j, d in enumerate(ops):
        expected += int(weights[j]) * d
        truth_zero[j] = ~expected.any(axis=1)
    exp_lens, exp_payload, exp_offsets = _two_pass_reference(expected, bs)

    for name in available_backends():
        out_lens, out_payload, out_offsets, zero_after = get_backend(
            name
        ).reduce_fused(lens_mat, offs_mat, payloads, weights, bs, track=True)
        np.testing.assert_array_equal(out_lens, exp_lens, err_msg=name)
        np.testing.assert_array_equal(out_payload, exp_payload, err_msg=name)
        np.testing.assert_array_equal(out_offsets, exp_offsets, err_msg=name)
        np.testing.assert_array_equal(
            np.asarray(zero_after, dtype=bool), truth_zero, err_msg=name
        )


@settings(max_examples=30, deadline=None)
@given(operand_sets())
def test_reduce_scalar_loop_parity(case):
    """The uncompiled k-way accumulate sweep matches the explicit sum."""
    ops, weights, bs = case
    nb = ops[0].shape[0]
    k = len(ops)
    streams = [_two_pass_reference(d, bs) for d in ops]
    lens_mat = np.stack([s[0] for s in streams]).astype(np.uint8)
    offs_mat = np.stack([s[2] for s in streams]).astype(np.int64)
    sizes = np.array([s[1].size for s in streams], dtype=np.int64)
    bases = np.zeros(k, dtype=np.int64)
    np.cumsum(sizes[:-1], out=bases[1:])
    payload_cat = (
        np.concatenate([s[1] for s in streams])
        if sizes.sum()
        else np.empty(0, dtype=np.uint8)
    )

    expected = np.zeros((nb, bs), dtype=np.int64)
    truth_zero = np.empty((k, nb), dtype=bool)
    for j, d in enumerate(ops):
        expected += int(weights[j]) * d
        truth_zero[j] = ~expected.any(axis=1)

    acc = np.empty((nb, bs), dtype=np.int64)
    out_lengths = np.empty(nb, dtype=np.uint8)
    zero_after = np.empty((k, nb), dtype=np.uint8)
    _kernels_py.reduce_accumulate_loop(
        lens_mat, offs_mat, payload_cat, bases, weights, acc,
        out_lengths, zero_after, True,
    )
    np.testing.assert_array_equal(acc, expected)
    exp_lens, _, _ = _two_pass_reference(expected, bs)
    np.testing.assert_array_equal(out_lengths, exp_lens)
    np.testing.assert_array_equal(zero_after.astype(bool), truth_zero)


class TestFusedOverflow:
    def test_classify_encode_rejects_33_bit_magnitudes(self):
        deltas = np.full((1, 8), 1 << 32, dtype=np.int64)
        for name in available_backends():
            with pytest.raises(OverflowError):
                get_backend(name).classify_encode(deltas, 8)

    def test_reduce_fused_rejects_accumulated_overflow(self):
        """Two max-magnitude operands overflow only after accumulation."""
        deltas = np.full((1, 8), (1 << 32) - 1, dtype=np.int64)
        lens, payload, offsets = _two_pass_reference(deltas, 8)
        lens_mat = np.stack([lens, lens])
        offs_mat = np.stack([offsets, offsets])
        w = np.ones(2, dtype=np.int64)
        for name in available_backends():
            with pytest.raises(OverflowError):
                get_backend(name).reduce_fused(
                    lens_mat, offs_mat, [payload, payload], w, 8
                )


def test_reduce_fused_empty_and_single_operand_edges():
    """nb with zero payload bytes everywhere and k=1 pass through cleanly."""
    bs = 8
    zeros = np.zeros((3, bs), dtype=np.int64)
    lens, payload, offsets = _two_pass_reference(zeros, bs)
    for name in available_backends():
        out_lens, out_payload, out_offsets, zero_after = get_backend(
            name
        ).reduce_fused(
            np.stack([lens]),
            np.stack([offsets]),
            [payload],
            np.ones(1, dtype=np.int64),
            bs,
            track=True,
        )
        assert not out_lens.any() and out_payload.size == 0
        np.testing.assert_array_equal(
            out_offsets, payload_offsets(out_lens, bs)
        )
        assert np.asarray(zero_after, dtype=bool).all()
