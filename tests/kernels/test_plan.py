"""GroupingPlan: the one-argsort replacement for np.unique + per-c masks."""

import numpy as np
import pytest

from repro.kernels.plan import (
    GroupingPlan,
    block_payload_nbytes,
    payload_offsets,
    required_bits,
)


class TestGroupingPlan:
    def test_matches_unique_nonzero(self):
        rng = np.random.default_rng(0)
        lens = rng.integers(0, 33, size=500).astype(np.uint8)
        plan = GroupingPlan.from_code_lengths(lens)
        expected = {int(c): np.nonzero(lens == c)[0] for c in np.unique(lens)}
        got = {c: idx for c, idx in plan.groups()}
        assert sorted(got) == sorted(expected)
        for c, idx in expected.items():
            np.testing.assert_array_equal(got[c], idx)

    def test_groups_ascending_by_code_length(self):
        lens = np.array([5, 1, 5, 0, 3], dtype=np.uint8)
        plan = GroupingPlan.from_code_lengths(lens)
        assert [c for c, _ in plan.groups()] == [0, 1, 3, 5]

    def test_within_group_positions_ascending(self):
        # stability of the argsort is what enables the contiguous-run
        # fast paths; it must hold for every group
        rng = np.random.default_rng(1)
        lens = rng.integers(0, 4, size=1000).astype(np.uint8)
        for _, idx in GroupingPlan.from_code_lengths(lens).groups():
            assert np.all(np.diff(idx) > 0)

    def test_contiguous_runs_visible_in_order(self):
        lens = np.array([2, 2, 2, 7, 7], dtype=np.uint8)
        plan = GroupingPlan.from_code_lengths(lens)
        groups = dict(plan.groups())
        np.testing.assert_array_equal(groups[2], [0, 1, 2])
        np.testing.assert_array_equal(groups[7], [3, 4])

    def test_empty(self):
        plan = GroupingPlan.from_code_lengths(np.zeros(0, dtype=np.uint8))
        assert plan.n_groups == 0
        assert list(plan.groups()) == []

    def test_single_value(self):
        plan = GroupingPlan.from_code_lengths(np.full(7, 9, dtype=np.uint8))
        assert plan.n_groups == 1
        ((c, idx),) = plan.groups()
        assert c == 9
        np.testing.assert_array_equal(idx, np.arange(7))


class TestGeometryHelpers:
    """The canonical helpers moved here; encoding.py re-exports them."""

    @pytest.mark.parametrize(
        "value,bits",
        [(0, 0), (1, 1), (2, 2), (3, 2), (4, 3), (255, 8), (256, 9),
         (2**31 - 1, 31), (2**31, 32), (2**32 - 1, 32)],
    )
    def test_required_bits_boundaries(self, value, bits):
        assert required_bits(np.array([value]))[0] == bits

    def test_offsets_prefix_sum(self):
        offs = payload_offsets(np.array([0, 2, 0, 1]), 32)
        np.testing.assert_array_equal(offs, [0, 0, 12, 12, 20])

    def test_block_nbytes(self):
        np.testing.assert_array_equal(
            block_payload_nbytes(np.array([0, 1, 32]), 32), [0, 8, 132]
        )

    def test_reexport_is_same_object(self):
        from repro.compression import encoding

        assert encoding.required_bits is required_bits
        assert encoding.payload_offsets is payload_offsets
        assert encoding.block_payload_nbytes is block_payload_nbytes
